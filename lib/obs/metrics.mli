(** Named counters / gauges / histograms.

    A registry is the single aggregation point for run statistics: caches
    register their hit/miss counters here, DD its query counters, the
    platform its invocation counts. Views that need a per-run delta
    (Pipeline.report.caches, Dd.stats) snapshot counter values before and
    after — the counter is the source, the record a view over it.

    Instruments are handed out once ({!counter} is get-or-create) and then
    incremented directly, so hot paths never pay a lookup. Not internally
    locked: share instruments across threads only under external
    synchronization (the caches increment under their own mutexes). *)

type counter
type gauge
type histogram

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type registry

val create : unit -> registry

(** The default registry, shared by every layer not handed an explicit
    one. *)
val global : registry

(** Get-or-create by name.
    @raise Invalid_argument if the name is bound to another kind. *)
val counter : registry -> string -> counter

val gauge : registry -> string -> gauge
val histogram : registry -> string -> histogram

val incr : ?by:int -> counter -> unit
val value : counter -> int
val counter_name : counter -> string

val set : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

(** O(1): histograms keep moment summaries (count/sum/min/max), not
    samples. *)
val observe : histogram -> float -> unit

val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val histogram_name : histogram -> string

(** 0.0 on an empty histogram. *)
val histogram_min : histogram -> float

val histogram_max : histogram -> float
val histogram_mean : histogram -> float

(** Zero every instrument; handles already handed out stay valid. *)
val reset : registry -> unit

(** Fold over instruments in name order — the exporters' stable order. *)
val fold : registry -> ('a -> instrument -> 'a) -> 'a -> 'a
