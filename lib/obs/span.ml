(* Virtual-clock span tracing.

   The substrate never reads a clock itself: every [begin_]/[end_]/[instant]
   takes an explicit timestamp, so each layer records against its natural
   timeline — the interpreter's virtual clock, the fleet simulator's event
   time, or host wall-clock for the debloating pipeline (which has no virtual
   timeline of its own). Timelines that cannot be compared live in separate
   *domains* (exported as Chrome trace pids); within a domain, spans are laid
   out on *tracks* (tids) and must be well-nested per track.

   The null sink makes disabled tracing measurement-neutral by construction:
   [begin_] returns the preallocated [none] handle without allocating, and
   every other operation is a single pattern match. Virtual measurements
   could not be perturbed either way (the clock and byte ledger are charged
   at fixed points), but allocation-freedom keeps host-side benchmarks honest
   too. *)

type attr = string * string

type kind = Complete | Instant

type span = {
  sp_name : string;
  sp_cat : string;            (* instrumented layer: minipy, platform, ... *)
  sp_domain : int;            (* clock domain; Chrome pid *)
  sp_track : int;             (* lane within the domain; Chrome tid *)
  sp_start_ms : float;
  mutable sp_dur_ms : float;  (* -1 while open; 0 for instants *)
  mutable sp_attrs : attr list;
  sp_kind : kind;
  sp_seq : int;               (* begin order, for stable export *)
}

(* Sink contract: a completed span (or instant) is pushed exactly once, at
   [end_]/[instant] time. [keep = false] sinks only observe the stream. *)
type state = {
  mutable spans : span list;  (* completed, newest first *)
  mutable seq : int;
  mutable next_track : int;
  keep : bool;
  on_complete : span -> unit;
  st_lock : Mutex.t;
      (* Worker domains of the parallel pool record spans concurrently (each
         on its own track), so the shared sink state — seq counter, span
         list, track allocator, custom callbacks — is mutex-guarded. Span
         records themselves need no lock: a handle is owned by the domain
         that opened it until [end_] publishes it under this lock. *)
}

type sink = Null | Active of state

let with_lock st f =
  Mutex.lock st.st_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.st_lock) f

let null = Null

let recorder () =
  Active
    { spans = []; seq = 0; next_track = 0; keep = true; on_complete = ignore;
      st_lock = Mutex.create () }

let custom ~on_complete =
  Active
    { spans = []; seq = 0; next_track = 0; keep = false; on_complete;
      st_lock = Mutex.create () }

let enabled = function Null -> false | Active _ -> true

let spans = function
  | Null -> []
  | Active st ->
    let snapshot = with_lock st (fun () -> st.spans) in
    List.sort (fun a b -> compare a.sp_seq b.sp_seq) snapshot

let fresh_track = function
  | Null -> 0
  | Active st ->
    with_lock st (fun () ->
        st.next_track <- st.next_track + 1;
        st.next_track)

(* --- clock domains -------------------------------------------------------- *)

let domain_virtual = 1  (* interpreter / platform-simulator virtual clock *)
let domain_wall = 2     (* host wall-clock: pipeline, DD, oracle queries *)
let domain_fleet = 3    (* fleet discrete-event simulation time *)

let domain_name = function
  | 1 -> "virtual-clock"
  | 2 -> "wall-clock"
  | 3 -> "fleet-sim"
  | d -> Printf.sprintf "domain-%d" d

(* The shared wall clock for [domain_wall] spans, relative to a process
   epoch: absolute epoch microseconds (~1.8e15) exceed the double mantissa
   (ULP ≈ 0.25 µs), so exported timestamps would lose the sub-µs ordering
   that nesting checks rely on. All wall-clock instrumentation must use
   this one clock — mixing epochs breaks cross-module nesting.

   The epoch is captured once, atomically: were each domain to lazily set
   its own ref, two domains racing on first use could observe different
   epochs and their spans would no longer share a timeline. The CAS must
   compare against the exact boxed NaN read (Atomic uses physical
   equality); on CAS failure another domain won and we read its epoch. *)
let wall_epoch_s = Atomic.make Float.nan

let wall_ms () =
  let now = Unix.gettimeofday () in
  let e = Atomic.get wall_epoch_s in
  let epoch =
    if Float.is_nan e then begin
      ignore (Atomic.compare_and_set wall_epoch_s e now : bool);
      Atomic.get wall_epoch_s
    end
    else e
  in
  (now -. epoch) *. 1000.0

(* --- the global tracer ---------------------------------------------------- *)

(* One process-wide sink, installed by the CLI's [--trace] (or a test) and
   consulted by every instrumented layer. Defaults to [Null]: tracing is off
   unless something turns it on. *)
let current = ref Null

let install s = current := s

let installed () = !current

(* --- span lifecycle ------------------------------------------------------- *)

type h = No_span | Open of state * span

let none = No_span

let begin_ t ~domain ~track ~cat ~name ~ts_ms =
  match t with
  | Null -> No_span
  | Active st ->
    let seq =
      with_lock st (fun () ->
          st.seq <- st.seq + 1;
          st.seq)
    in
    Open
      ( st,
        { sp_name = name;
          sp_cat = cat;
          sp_domain = domain;
          sp_track = track;
          sp_start_ms = ts_ms;
          sp_dur_ms = -1.0;
          sp_attrs = [];
          sp_kind = Complete;
          sp_seq = seq } )

let add_attr h key value =
  match h with
  | No_span -> ()
  | Open (_, sp) -> sp.sp_attrs <- sp.sp_attrs @ [ (key, value) ]

let end_ ?(attrs = []) h ~ts_ms =
  match h with
  | No_span -> ()
  | Open (st, sp) ->
    (* defensive clamp: wall clocks are not guaranteed monotone *)
    sp.sp_dur_ms <- Float.max 0.0 (ts_ms -. sp.sp_start_ms);
    if attrs <> [] then sp.sp_attrs <- sp.sp_attrs @ attrs;
    with_lock st (fun () ->
        if st.keep then st.spans <- sp :: st.spans;
        st.on_complete sp)

let instant ?(attrs = []) t ~domain ~track ~cat ~name ~ts_ms =
  match t with
  | Null -> ()
  | Active st ->
    with_lock st (fun () ->
        st.seq <- st.seq + 1;
        let sp =
          { sp_name = name;
            sp_cat = cat;
            sp_domain = domain;
            sp_track = track;
            sp_start_ms = ts_ms;
            sp_dur_ms = 0.0;
            sp_attrs = attrs;
            sp_kind = Instant;
            sp_seq = st.seq }
        in
        if st.keep then st.spans <- sp :: st.spans;
        st.on_complete sp)

let with_span t ~domain ~track ~cat ~name ~clock f =
  match t with
  | Null -> f ()
  | Active _ ->
    let h = begin_ t ~domain ~track ~cat ~name ~ts_ms:(clock ()) in
    Fun.protect ~finally:(fun () -> end_ h ~ts_ms:(clock ())) f

(* --- invariant checking (tests, CI) --------------------------------------- *)

(* Complete spans on the same (domain, track) must pairwise nest or be
   disjoint; instants are points and always fine. Returns the first offending
   pair, if any. *)
let nesting_violation all =
  let completes =
    List.filter (fun s -> s.sp_kind = Complete && s.sp_dur_ms >= 0.0) all
  in
  let by_track = Hashtbl.create 16 in
  List.iter
    (fun s ->
       let k = (s.sp_domain, s.sp_track) in
       Hashtbl.replace by_track k
         (s :: (Option.value ~default:[] (Hashtbl.find_opt by_track k))))
    completes;
  let bad = ref None in
  Hashtbl.iter
    (fun _ spans ->
       if !bad = None then
         let arr = Array.of_list spans in
         let n = Array.length arr in
         for i = 0 to n - 1 do
           for j = i + 1 to n - 1 do
             if !bad = None then begin
               let a = arr.(i) and b = arr.(j) in
               let a_end = a.sp_start_ms +. a.sp_dur_ms in
               let b_end = b.sp_start_ms +. b.sp_dur_ms in
               let nested =
                 (b.sp_start_ms >= a.sp_start_ms && b_end <= a_end)
                 || (a.sp_start_ms >= b.sp_start_ms && a_end <= b_end)
               in
               let disjoint = b.sp_start_ms >= a_end || a.sp_start_ms >= b_end in
               if not (nested || disjoint) then bad := Some (a, b)
             end
           done
         done)
    by_track;
  !bad

let well_nested all = nesting_violation all = None
