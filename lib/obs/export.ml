(* Exporters: Chrome trace-event JSON (chrome://tracing / Perfetto) and flat
   CSV summaries.

   The JSON is hand-rolled (the substrate is dependency-free); all floats
   are printed with fixed precision so identical runs export identical
   bytes — the golden test depends on it. *)

(* --- JSON plumbing -------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Timestamps leave the substrate in ms; Chrome wants µs. Three decimals of
   a µs (ns resolution) is finer than any virtual charge in the system. *)
let us ms = Printf.sprintf "%.3f" (ms *. 1000.0)

let args_json attrs =
  match attrs with
  | [] -> "{}"
  | attrs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
              Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
           attrs)
    ^ "}"

let event_json (s : Span.span) =
  match s.sp_kind with
  | Span.Complete ->
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\
       \"ts\":%s,\"dur\":%s,\"args\":%s}"
      (escape s.sp_name) (escape s.sp_cat) s.sp_domain s.sp_track
      (us s.sp_start_ms)
      (us (Float.max 0.0 s.sp_dur_ms))
      (args_json s.sp_attrs)
  | Span.Instant ->
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\
       \"tid\":%d,\"ts\":%s,\"args\":%s}"
      (escape s.sp_name) (escape s.sp_cat) s.sp_domain s.sp_track
      (us s.sp_start_ms)
      (args_json s.sp_attrs)

let process_meta domain =
  Printf.sprintf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\
     \"args\":{\"name\":\"%s\"}}"
    domain
    (escape (Span.domain_name domain))

let metrics_json registry =
  let rows =
    Metrics.fold registry
      (fun acc i ->
         (match i with
          | Metrics.Counter c ->
            Printf.sprintf "\"%s\":%d"
              (escape (Metrics.counter_name c))
              (Metrics.value c)
          | Metrics.Gauge g ->
            Printf.sprintf "\"%s\":%.6g"
              (escape (Metrics.gauge_name g))
              (Metrics.gauge_value g)
          | Metrics.Histogram h ->
            Printf.sprintf
              "\"%s\":{\"count\":%d,\"sum\":%.6g,\"min\":%.6g,\"max\":%.6g}"
              (escape (Metrics.histogram_name h))
              (Metrics.histogram_count h) (Metrics.histogram_sum h)
              (Metrics.histogram_min h) (Metrics.histogram_max h))
         :: acc)
      []
  in
  "{" ^ String.concat "," (List.rev rows) ^ "}"

(* The full trace document. Events are ordered by begin sequence; one
   process-name metadata record per clock domain present. *)
let chrome_json ?metrics sink =
  let spans = Span.spans sink in
  let domains =
    List.sort_uniq compare (List.map (fun s -> s.Span.sp_domain) spans)
  in
  let events =
    List.map process_meta domains @ List.map event_json spans
  in
  let metrics_field =
    match metrics with
    | None -> ""
    | Some r -> Printf.sprintf ",\"otherData\":{\"metrics\":%s}" (metrics_json r)
  in
  Printf.sprintf
    "{\"traceEvents\":[%s],\"displayTimeUnit\":\"ms\"%s}\n"
    (String.concat ",\n" events)
    metrics_field

(* --- flat CSV summaries --------------------------------------------------- *)

(* Per (domain, cat, name): span count and duration aggregate. *)
let summary_csv sink =
  let spans = Span.spans sink in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (s : Span.span) ->
       let k = (s.sp_domain, s.sp_cat, s.sp_name) in
       let count, total, mx =
         Option.value ~default:(0, 0.0, 0.0) (Hashtbl.find_opt tbl k)
       in
       let d = Float.max 0.0 s.sp_dur_ms in
       Hashtbl.replace tbl k (count + 1, total +. d, Float.max mx d))
    spans;
  let rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort compare
    |> List.map (fun ((domain, cat, name), (count, total, mx)) ->
        Printf.sprintf "%s,%s,%s,%d,%.6f,%.6f,%.6f\n"
          (Span.domain_name domain) cat name count total
          (total /. float_of_int count)
          mx)
  in
  "clock,cat,name,count,total_ms,mean_ms,max_ms\n" ^ String.concat "" rows

let metrics_csv registry =
  let rows =
    Metrics.fold registry
      (fun acc i ->
         (match i with
          | Metrics.Counter c ->
            Printf.sprintf "%s,counter,%d,,,\n" (Metrics.counter_name c)
              (Metrics.value c)
          | Metrics.Gauge g ->
            Printf.sprintf "%s,gauge,%.6g,,,\n" (Metrics.gauge_name g)
              (Metrics.gauge_value g)
          | Metrics.Histogram h ->
            Printf.sprintf "%s,histogram,%d,%.6g,%.6g,%.6g\n"
              (Metrics.histogram_name h) (Metrics.histogram_count h)
              (Metrics.histogram_sum h) (Metrics.histogram_min h)
              (Metrics.histogram_max h))
         :: acc)
      []
  in
  "name,kind,count_or_value,sum,min,max\n" ^ String.concat "" (List.rev rows)

(* Write-temp-then-rename in the destination directory: a crash mid-export
   never leaves a torn trace on disk. (Same idiom as Trim.Journal's atomic
   writes — duplicated here because obs sits below trim.) *)
let to_file ~path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".obs-export" ".tmp" in
  (try
     let oc = open_out_bin tmp in
     Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
         output_string oc contents)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path
