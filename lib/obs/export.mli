(** Exporters for recorded spans and metrics.

    Deterministic by construction: identical runs export identical bytes
    (fixed float precision, name-sorted metrics, begin-ordered events) —
    the golden trace test depends on it. *)

(** Chrome trace-event JSON, loadable in [chrome://tracing] or Perfetto.
    Spans become ["X"] (complete) events, instants ["i"] events; clock
    domains map to pids (with [process_name] metadata), tracks to tids.
    [?metrics] embeds a registry snapshot under [otherData.metrics]. *)
val chrome_json : ?metrics:Metrics.registry -> Span.sink -> string

(** Per (clock, cat, name) span aggregate:
    [clock,cat,name,count,total_ms,mean_ms,max_ms]. *)
val summary_csv : Span.sink -> string

(** Registry snapshot: [name,kind,count_or_value,sum,min,max]. *)
val metrics_csv : Metrics.registry -> string

val to_file : path:string -> string -> unit
