(** Virtual-clock span tracing.

    The substrate never reads a clock: every operation takes an explicit
    timestamp, so each layer records against its natural timeline. Timelines
    that cannot be compared live in separate {e domains} (exported as Chrome
    trace pids): the interpreter/platform virtual clock, host wall-clock
    (the debloating pipeline has no virtual timeline), and fleet simulation
    time. Within a domain, spans are laid out on {e tracks} (tids) and must
    be well-nested per track — {!well_nested} checks the invariant.

    Disabled tracing is measurement-neutral by construction: with the
    {!null} sink, {!begin_} returns the preallocated {!none} handle without
    allocating and every other operation is a single pattern match. *)

type attr = string * string

type kind = Complete | Instant

type span = {
  sp_name : string;
  sp_cat : string;  (** instrumented layer: minipy, platform, dd, oracle, … *)
  sp_domain : int;  (** clock domain; Chrome pid *)
  sp_track : int;   (** lane within the domain; Chrome tid *)
  sp_start_ms : float;
  mutable sp_dur_ms : float;  (** -1 while open; 0 for instants *)
  mutable sp_attrs : attr list;
  sp_kind : kind;
  sp_seq : int;  (** begin order, for stable export *)
}

(** Sink contract: a sink observes each span exactly once, when it
    completes ({!end_} / {!instant}); open spans are never exported. *)
type sink

(** The no-op sink. *)
val null : sink

(** A sink that accumulates completed spans (read them with {!spans}). *)
val recorder : unit -> sink

(** A pluggable sink: [on_complete] observes each completed span; nothing is
    retained. *)
val custom : on_complete:(span -> unit) -> sink

val enabled : sink -> bool

(** Completed spans in begin order ([[]] for null/custom sinks). *)
val spans : sink -> span list

(** Allocate a fresh track id (per sink, starting at 1; 0 on null). *)
val fresh_track : sink -> int

(** {1 Clock domains} *)

val domain_virtual : int
val domain_wall : int
val domain_fleet : int
val domain_name : int -> string

(** Milliseconds of host wall-clock since a lazily-captured process epoch —
    the single clock for {!domain_wall} spans. Relative time keeps exported
    microsecond timestamps well inside double precision; epoch-absolute
    stamps would round to ≈0.25 µs and scramble span nesting. *)
val wall_ms : unit -> float

(** {1 The global tracer}

    One process-wide sink, installed by the CLI's [--trace] (or a test) and
    consulted by every instrumented layer. Defaults to {!null}. *)

val install : sink -> unit
val installed : unit -> sink

(** {1 Span lifecycle} *)

(** Handle to an open span. [none] on a disabled sink. *)
type h

val none : h

val begin_ :
  sink ->
  domain:int ->
  track:int ->
  cat:string ->
  name:string ->
  ts_ms:float ->
  h

(** No-op on {!none}. Attributes are appended in call order. *)
val add_attr : h -> string -> string -> unit

(** Complete the span: duration is [ts_ms - start], clamped to 0 (wall
    clocks are not guaranteed monotone). *)
val end_ : ?attrs:attr list -> h -> ts_ms:float -> unit

(** A zero-duration point event (breaker transitions, retries). *)
val instant :
  ?attrs:attr list ->
  sink ->
  domain:int ->
  track:int ->
  cat:string ->
  name:string ->
  ts_ms:float ->
  unit

(** [with_span sink … ~clock f] wraps [f] in a span, reading [clock] at
    entry and exit (exception-safe). On the null sink, calls [f] directly
    without touching [clock]. *)
val with_span :
  sink ->
  domain:int ->
  track:int ->
  cat:string ->
  name:string ->
  clock:(unit -> float) ->
  (unit -> 'a) ->
  'a

(** {1 Invariant checking (tests, CI)} *)

(** First pair of completed spans on the same (domain, track) that neither
    nest nor are disjoint, if any. *)
val nesting_violation : span list -> (span * span) option

val well_nested : span list -> bool
