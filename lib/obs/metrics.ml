(* Named counters / gauges / histograms.

   A registry is the single aggregation point the scattered per-layer stat
   records used to be: caches register their hit/miss counters here, DD its
   query counters, the platform its invocation counts. Views that need a
   per-run or per-call delta (Pipeline.report.caches, Dd.stats) snapshot
   counter values before and after — the counter is the source, the record
   is a view.

   Instruments are handed out once and then incremented directly (a field
   write), so hot paths never pay a hashtable lookup. The registry itself is
   not locked: callers that share an instrument across threads must
   synchronize externally (the caches increment under their own mutexes). *)

type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; mutable g_value : float }

(* Histograms keep moment summaries, not samples: count/sum/min/max is what
   the flat CSV exporter reports, and it is O(1) per observation. *)
type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type registry = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

(* The default registry, shared by every layer not handed an explicit one. *)
let global = create ()

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find_or_add r name make expect =
  match Hashtbl.find_opt r.tbl name with
  | Some i ->
    (match expect i with
     | Some v -> v
     | None ->
       invalid_arg
         (Printf.sprintf "Obs.Metrics: %S is already a %s" name (kind_name i)))
  | None ->
    let i, v = make () in
    Hashtbl.replace r.tbl name i;
    v

let counter r name =
  find_or_add r name
    (fun () ->
       let c = { c_name = name; c_value = 0 } in
       (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let gauge r name =
  find_or_add r name
    (fun () ->
       let g = { g_name = name; g_value = 0.0 } in
       (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let histogram r name =
  find_or_add r name
    (fun () ->
       let h =
         { h_name = name;
           h_count = 0;
           h_sum = 0.0;
           h_min = infinity;
           h_max = neg_infinity }
       in
       (Histogram h, h))
    (function Histogram h -> Some h | _ -> None)

let incr ?(by = 1) c = c.c_value <- c.c_value + by

let value c = c.c_value

let counter_name c = c.c_name

let set g v = g.g_value <- v

let gauge_value g = g.g_value

let gauge_name g = g.g_name

let observe h x =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. x;
  if x < h.h_min then h.h_min <- x;
  if x > h.h_max then h.h_max <- x

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum
let histogram_name h = h.h_name
let histogram_min h = if h.h_count = 0 then 0.0 else h.h_min
let histogram_max h = if h.h_count = 0 then 0.0 else h.h_max
let histogram_mean h =
  if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count

(* Zero every instrument without invalidating handles already handed out. *)
let reset r =
  Hashtbl.iter
    (fun _ i ->
       match i with
       | Counter c -> c.c_value <- 0
       | Gauge g -> g.g_value <- 0.0
       | Histogram h ->
         h.h_count <- 0;
         h.h_sum <- 0.0;
         h.h_min <- infinity;
         h.h_max <- neg_infinity)
    r.tbl

(* Instruments sorted by name — the exporters' stable iteration order. *)
let fold r f init =
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) r.tbl [] in
  List.fold_left
    (fun acc name -> f acc (Hashtbl.find r.tbl name))
    init
    (List.sort compare names)
