(* The discrete-event loop.

   Event classes are ranked so that same-instant events resolve the way the
   analytic replay does: completions free instances before arrivals claim
   them, arrivals beat expiry checks (an arrival at exactly the keep-alive
   boundary is warm — [Trace.replay]'s inclusive boundary), and timeouts
   fire only if no completion at the same instant rescued the request. *)

type start_kind = Cold | Warm

let start_kind_name = function Cold -> "cold" | Warm -> "warm"

type outcome =
  | Served of start_kind
  | Fallback_served of { trimmed : start_kind; original : start_kind }
  | Rejected
  | Timed_out

type record = {
  req : int;
  arrival_s : float;
  start_s : float;
  finish_s : float;
  wait_s : float;
  e2e_s : float;
  outcome : outcome;
  billed_ms : float;
  fb_billed_ms : float;
}

type deployment_profile = {
  exec_s : float;
  func_init_s : float;
  instance_init_s : float;
  memory_mb : float;
}

type fallback = {
  fb_rate : float;
  fb_seed : int;
  fb_profile : deployment_profile;
  fb_policy : Pool.policy;
  fb_setup_s : float;
}

type config = {
  profile : deployment_profile;
  policy : Pool.policy;
  max_instances : int;
  max_pending : int;
  pending_timeout_s : float;
  fallback : fallback option;
}

let default_config ~profile policy =
  { profile;
    policy;
    max_instances = max_int;
    max_pending = 1024;
    pending_timeout_s = 60.0;
    fallback = None }

type result = {
  records : record list;
  peak_instances : int;
  resident_instance_s : float;
  evictions : int;
  fb_peak_instances : int;
  fb_resident_instance_s : float;
  events_processed : int;
}

(* --- per-request state --------------------------------------------------- *)

type status = Waiting | Running | Done

type req = {
  idx : int;
  arrival : float;
  needs_fb : bool;
  mutable status : status;
  mutable start : float;
  mutable kind : start_kind option;
}

type event =
  | Complete of req * Pool.instance
  | Fb_complete of req * Pool.instance * start_kind
  | Arrival of req
  | Fb_arrival of req
  | Timeout of req
  | Expire of Pool.instance * int      (* generation at scheduling time *)
  | Fb_expire of Pool.instance * int

let rank = function
  | Complete _ | Fb_complete _ -> 0
  | Arrival _ | Fb_arrival _ -> 1
  | Timeout _ -> 2
  | Expire _ | Fb_expire _ -> 3

(* --- the simulation ------------------------------------------------------ *)

let run cfg (trace : Platform.Trace.t) : result =
  let q : event Events.t = Events.create () in
  let push ~time ev = Events.push q ~time ~rank:(rank ev) ev in
  let pool = Pool.create cfg.policy in
  let fb_pool =
    match cfg.fallback with
    | Some fb -> Some (Pool.create fb.fb_policy)
    | None -> None
  in
  (* deterministic per-request fallback draws, in arrival order *)
  let draws =
    match cfg.fallback with
    | None -> fun _ -> false
    | Some fb ->
      let rng = Random.State.make [| fb.fb_seed |] in
      let flags =
        List.map
          (fun _ -> Random.State.float rng 1.0 < fb.fb_rate)
          trace.Platform.Trace.arrivals_s
      in
      let arr = Array.of_list flags in
      fun i -> arr.(i)
  in
  List.iteri
    (fun idx arrival ->
       let r =
         { idx; arrival; needs_fb = draws idx; status = Waiting;
           start = arrival; kind = None }
       in
       push ~time:arrival (Arrival r))
    trace.Platform.Trace.arrivals_s;
  let pending : req Queue.t = Queue.create () in
  let pending_count = ref 0 in
  let records = ref [] in
  let events_processed = ref 0 in
  let billed_ms profile kind =
    1000.0
    *. (match kind with
        | Cold -> profile.func_init_s +. profile.exec_s
        | Warm -> profile.exec_s)
  in
  let service_s profile kind =
    match kind with
    | Cold -> profile.instance_init_s +. profile.func_init_s +. profile.exec_s
    | Warm -> profile.exec_s
  in
  let finalize (r : req) ~start ~finish ~outcome ~billed ~fb_billed =
    r.status <- Done;
    records :=
      { req = r.idx;
        arrival_s = r.arrival;
        start_s = start;
        finish_s = finish;
        wait_s = start -. r.arrival;
        e2e_s = finish -. r.arrival;
        outcome;
        billed_ms = billed;
        fb_billed_ms = fb_billed }
      :: !records
  in
  let serve (r : req) inst ~now ~kind =
    r.status <- Running;
    r.start <- now;
    r.kind <- Some kind;
    let finish = now +. service_s cfg.profile kind in
    inst.Pool.busy_until <- finish;
    push ~time:finish (Complete (r, inst))
  in
  (* dispatch from the pending queue while capacity allows; stale entries
     (timed out) are dropped lazily *)
  let rec drain_pending ~now =
    match Queue.peek_opt pending with
    | None -> ()
    | Some r when r.status <> Waiting ->
      ignore (Queue.pop pending);
      drain_pending ~now
    | Some r ->
      (match Pool.acquire pool ~now with
       | Some inst ->
         ignore (Queue.pop pending);
         decr pending_count;
         serve r inst ~now ~kind:Warm;
         drain_pending ~now
       | None ->
         if Pool.live_count pool < cfg.max_instances then begin
           ignore (Queue.pop pending);
           decr pending_count;
           serve r (Pool.spawn pool ~now) ~now ~kind:Cold;
           drain_pending ~now
         end)
  in
  let dispatch (r : req) ~now =
    match Pool.acquire pool ~now with
    | Some inst -> serve r inst ~now ~kind:Warm
    | None ->
      if Pool.live_count pool < cfg.max_instances then
        serve r (Pool.spawn pool ~now) ~now ~kind:Cold
      else if !pending_count < cfg.max_pending then begin
        Queue.push r pending;
        incr pending_count;
        if cfg.pending_timeout_s < infinity then
          push ~time:(now +. cfg.pending_timeout_s) (Timeout r)
      end
      else
        finalize r ~start:now ~finish:now ~outcome:Rejected ~billed:0.0
          ~fb_billed:0.0
  in
  let release_and_schedule pool inst ~now ~expire =
    let expiry = Pool.release pool inst ~now in
    if expiry < infinity then
      push ~time:expiry (expire inst inst.Pool.generation)
  in
  let rec loop () =
    match Events.pop q with
    | None -> ()
    | Some (now, ev) ->
      incr events_processed;
      (match ev with
       | Arrival r -> dispatch r ~now
       | Complete (r, inst) ->
         release_and_schedule pool inst ~now ~expire:(fun i g -> Expire (i, g));
         (match cfg.fallback with
          | Some fb when r.needs_fb ->
            push ~time:(now +. fb.fb_setup_s) (Fb_arrival r)
          | _ ->
            let kind = Option.get r.kind in
            finalize r ~start:r.start ~finish:now ~outcome:(Served kind)
              ~billed:(billed_ms cfg.profile kind) ~fb_billed:0.0);
         drain_pending ~now
       | Fb_arrival r ->
         let fb = Option.get cfg.fallback in
         let fbp = Option.get fb_pool in
         let kind, inst =
           match Pool.acquire fbp ~now with
           | Some inst -> (Warm, inst)
           | None -> (Cold, Pool.spawn fbp ~now)
         in
         let finish = now +. service_s fb.fb_profile kind in
         inst.Pool.busy_until <- finish;
         push ~time:finish (Fb_complete (r, inst, kind))
       | Fb_complete (r, inst, fb_kind) ->
         let fb = Option.get cfg.fallback in
         let fbp = Option.get fb_pool in
         release_and_schedule fbp inst ~now
           ~expire:(fun i g -> Fb_expire (i, g));
         let trimmed = Option.get r.kind in
         finalize r ~start:r.start ~finish:now
           ~outcome:(Fallback_served { trimmed; original = fb_kind })
           ~billed:(billed_ms cfg.profile trimmed)
           ~fb_billed:(billed_ms fb.fb_profile fb_kind)
       | Timeout r ->
         if r.status = Waiting then begin
           decr pending_count;
           finalize r ~start:now ~finish:now ~outcome:Timed_out ~billed:0.0
             ~fb_billed:0.0
         end
       | Expire (inst, generation) ->
         ignore (Pool.try_expire pool inst ~generation ~now);
         drain_pending ~now
       | Fb_expire (inst, generation) ->
         let fbp = Option.get fb_pool in
         ignore (Pool.try_expire fbp inst ~generation ~now));
      loop ()
  in
  loop ();
  (* the queue drained, so every instance has been released and expired;
     drain is a no-op safety net for infinite keep-alives *)
  Pool.drain pool;
  Option.iter Pool.drain fb_pool;
  { records =
      List.sort (fun a b -> compare a.req b.req) !records;
    peak_instances = Pool.peak_live pool;
    resident_instance_s = Pool.resident_s pool;
    evictions = Pool.evictions pool;
    fb_peak_instances =
      (match fb_pool with Some p -> Pool.peak_live p | None -> 0);
    fb_resident_instance_s =
      (match fb_pool with Some p -> Pool.resident_s p | None -> 0.0);
    events_processed = !events_processed }
