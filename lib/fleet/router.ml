(* The discrete-event loop.

   Event classes are ranked so that same-instant events resolve the way the
   analytic replay does: completions (and fault detections, which free or
   kill instances) resolve before arrivals claim capacity, arrivals beat
   expiry checks (an arrival at exactly the keep-alive boundary is warm —
   [Trace.replay]'s inclusive boundary), and timeouts fire only if no
   completion at the same instant rescued the request.

   Faults are injected from a per-request plan ([Faults]): every draw is a
   pure hash of (seed, request, attempt, stream), so crash/retry/hedge
   interleavings cannot perturb each other's outcomes. With [Faults.none]
   and [Resilience.none] the simulator emits exactly the same event
   sequence as the pre-fault router — zero-fault runs are bit-identical. *)

type start_kind = Cold | Warm

let start_kind_name = function Cold -> "cold" | Warm -> "warm"

type failure = Init_failed | Crashed | Errored

let failure_name = function
  | Init_failed -> "init-failed"
  | Crashed -> "crashed"
  | Errored -> "errored"

type outcome =
  | Served of start_kind
  | Fallback_served of { trimmed : start_kind; original : start_kind }
  | Shed of start_kind
  | Rejected
  | Timed_out
  | Failed of failure

type record = {
  req : int;
  arrival_s : float;
  start_s : float;
  finish_s : float;
  wait_s : float;
  e2e_s : float;
  outcome : outcome;
  billed_ms : float;
  fb_billed_ms : float;
  attempts : int;
  hedged : bool;
}

type deployment_profile = {
  exec_s : float;
  func_init_s : float;
  instance_init_s : float;
  memory_mb : float;
}

type fallback = {
  fb_rate : float;
  fb_seed : int;
  fb_profile : deployment_profile;
  fb_policy : Pool.policy;
  fb_setup_s : float;
}

(* Lazy-loading model (ARCHITECTURE §14): [profile] describes a lazy
   deployment's measured costs (stubbed init, warm exec); the deferred
   remainder lives here. A cold instance starts with [lz_deferred_s] of
   unresolved init; each request forces at most [lz_first_touch_s] of what
   remains (added to its service time and billed duration), and with
   [lz_preload] a warm instance resolves pending stubs during its
   keep-alive idle gap in the manifest's preload order, so the next warm
   hit finds the work already done. *)
type lazy_profile = {
  lz_deferred_s : float;
  lz_first_touch_s : float;
  lz_preload : bool;
}

type config = {
  profile : deployment_profile;
  policy : Pool.policy;
  max_instances : int;
  max_pending : int;
  pending_timeout_s : float;
  fallback : fallback option;
  faults : Faults.config;
  resilience : Resilience.policy;
  lazy_load : lazy_profile option;
}

let default_config ~profile policy =
  { profile;
    policy;
    max_instances = max_int;
    max_pending = 1024;
    pending_timeout_s = 60.0;
    fallback = None;
    faults = Faults.none;
    resilience = Resilience.none;
    lazy_load = None }

type totals = {
  peak : int;
  resident_s : float;
  evicted : int;
  fb_peak : int;
  fb_resident_s : float;
  total_events : int;
}

type result = {
  records : record list;
  peak_instances : int;
  resident_instance_s : float;
  evictions : int;
  fb_peak_instances : int;
  fb_resident_instance_s : float;
  events_processed : int;
}

(* --- per-request state --------------------------------------------------- *)

type status = Waiting | Running | Retrying | Done

type breaker_role = Sample | Probe_req | Unsampled

type req = {
  idx : int;
  arrival : float;
  needs_fb : bool;
  mutable status : status;
  mutable start : float;
  mutable kind : start_kind option;
  mutable attempt : int;        (* current attempt index, 0-based *)
  mutable attempts : int;       (* service attempts started (incl. hedge) *)
  mutable retries : int;        (* backoff retries consumed *)
  mutable hedged : bool;        (* a hedge has been scheduled or fired *)
  mutable hedge_inflight : bool;
  mutable shed : bool;          (* breaker routed this straight to original *)
  mutable role : breaker_role;
  mutable acc_billed_ms : float;
  mutable touch_s : float;      (* stub-forcing time of the live attempt *)
  mutable lane : int;           (* trace lane while the request is live *)
  mutable span : Obs.Span.h;    (* open request span (none when untraced) *)
}

type event =
  | Complete of req * Pool.instance
  | Fault_hit of req * int * Pool.instance * failure * float
      (* attempt at scheduling time; billed ms for the doomed attempt *)
  | Fb_complete of req * Pool.instance * start_kind
  | Arrival of req
  | Fb_arrival of req
  | Retry of req
  | Hedge of req
  | Timeout of req * int               (* attempt at scheduling time *)
  | Expire of Pool.instance * int      (* generation at scheduling time *)
  | Fb_expire of Pool.instance * int

(* Trace arrivals get a rank of their own, strictly below every event the
   simulation schedules at the same instant and the same old tier (retries,
   hedges, fallback arrivals). This encodes what used to be implicit in
   pushing all arrivals up front — their sequence numbers preceded every
   runtime push, so they won (time, rank, seq) ties — and is what lets the
   loop feed arrivals lazily from a cursor instead, keeping the event queue
   at the in-flight population rather than the whole trace. *)
let rank = function
  | Complete _ | Fb_complete _ | Fault_hit _ -> 0
  | Arrival _ -> 1
  | Fb_arrival _ | Retry _ | Hedge _ -> 2
  | Timeout _ -> 3
  | Expire _ | Fb_expire _ -> 4

let outcome_label = function
  | Served k -> "served-" ^ start_kind_name k
  | Fallback_served { trimmed; original } ->
    Printf.sprintf "fallback-%s-%s" (start_kind_name trimmed)
      (start_kind_name original)
  | Shed k -> "shed-" ^ start_kind_name k
  | Rejected -> "rejected"
  | Timed_out -> "timed-out"
  | Failed f -> "failed-" ^ failure_name f

(* Trace geometry (domain_fleet; simulation seconds exported as ms):
   request spans live on a small set of reused lanes (allocated at arrival,
   freed at finalize — concurrent requests get distinct lanes, so each lane
   is a disjoint sequence of request intervals), while attempt spans live on
   per-instance tracks: a hedged request's stale attempt can outlive the
   request span that spawned it, so attempts cannot share the request's
   lane without breaking well-nesting. Instance busy periods never overlap,
   which makes per-instance tracks well-nested by construction.

   Every [run] gets its own track namespace (a disjoint [run_base] stride):
   two runs in one process replay overlapping simulation-time ranges with
   colliding lane/instance numbering, so sharing tracks would interleave
   their spans. *)
let run_stride = 1_000_000

(* --- the simulation ------------------------------------------------------ *)

(* Pick an event-queue backend for a trace: all arrivals are enqueued up
   front, so the expected population is roughly the arrival count plus the
   completion/expiry churn riding on it. The horizon gets headroom because
   completions and keep-alive expiries outlive the last arrival. Backend
   choice can never change output — both backends pop in the same order. *)
let queue_kind_for (trace : Platform.Trace.t) =
  Events.auto
    ~horizon_s:(1.25 *. Platform.Trace.duration_s trace)
    ~expected_events:(2 * Platform.Trace.length trace)

let run_with ?queue ~(emit : record -> unit) cfg (trace : Platform.Trace.t) :
  totals =
  Faults.validate cfg.faults;
  Resilience.validate cfg.resilience;
  let sink = Obs.Span.installed () in
  let traced = Obs.Span.enabled sink in
  let run_base =
    if traced then run_stride * Obs.Span.fresh_track sink else 0
  in
  let attempt_track inst = run_base + 100_000 + inst.Pool.id in
  let fb_attempt_track inst = run_base + 200_000 + inst.Pool.id in
  let free_lanes = ref [] in
  let next_lane = ref 0 in
  let alloc_lane () =
    match !free_lanes with
    | l :: rest ->
      free_lanes := rest;
      l
    | [] ->
      incr next_lane;
      run_base + !next_lane
  in
  (* an attempt's extent is known the moment it is scheduled: emit the span
     immediately with both endpoints *)
  let attempt_span ~track ~name ~start_s ~end_s ~(r : req) ~result =
    if traced then begin
      let sp =
        Obs.Span.begin_ sink ~domain:Obs.Span.domain_fleet ~track ~cat:"fleet"
          ~name ~ts_ms:(start_s *. 1000.0)
      in
      Obs.Span.end_ sp
        ~attrs:
          [ ("req", string_of_int r.idx);
            ("attempt", string_of_int r.attempt);
            ("result", result) ]
        ~ts_ms:(end_s *. 1000.0)
    end
  in
  let queue_kind =
    match queue with Some k -> k | None -> queue_kind_for trace
  in
  let q : event Events.t = Events.create ~kind:queue_kind () in
  let push ~time ev = Events.push q ~time ~rank:(rank ev) ev in
  let pool = Pool.create cfg.policy in
  let fb_pool =
    match cfg.fallback with
    | Some fb -> Some (Pool.create fb.fb_policy)
    | None -> None
  in
  (* deterministic per-request §7 draws, in arrival order (the legacy
     sequential coin flip, part of the request's fault plan) *)
  let draws =
    match cfg.fallback with
    | None -> fun _ -> false
    | Some fb ->
      Faults.fallback_flags ~seed:fb.fb_seed ~rate:fb.fb_rate
        ~n:(Platform.Trace.length trace)
  in
  let breaker =
    match cfg.resilience.Resilience.breaker, cfg.fallback with
    | Some bcfg, Some _ ->
      Some (Resilience.Breaker.create ~obs_track:run_base bcfg)
    | Some _, None ->
      invalid_arg "Router: a circuit breaker requires a configured fallback"
    | None, _ -> None
  in
  (* arrivals are fed lazily, one cursor step per popped arrival: the
     trace is sorted, so the queue only ever holds the in-flight events
     plus the single next arrival — not the whole trace. Arrival rank 1
     preserves the pre-push tie order (see [rank]). *)
  let arrivals = Array.of_list trace.Platform.Trace.arrivals_s in
  let next_arrival = ref 0 in
  let feed_arrival () =
    if !next_arrival < Array.length arrivals then begin
      let idx = !next_arrival in
      incr next_arrival;
      let arrival = arrivals.(idx) in
      let r =
        { idx; arrival; needs_fb = draws idx; status = Waiting;
          start = arrival; kind = None; attempt = 0; attempts = 0;
          retries = 0; hedged = false; hedge_inflight = false; shed = false;
          role = Unsampled; acc_billed_ms = 0.0; touch_s = 0.0; lane = 0;
          span = Obs.Span.none }
      in
      push ~time:arrival (Arrival r)
    end
  in
  feed_arrival ();
  let pending : req Queue.t = Queue.create () in
  let pending_count = ref 0 in
  let events_processed = ref 0 in
  let billed_ms profile kind =
    1000.0
    *. (match kind with
        | Cold -> profile.func_init_s +. profile.exec_s
        | Warm -> profile.exec_s)
  in
  let service_s profile kind =
    match kind with
    | Cold -> profile.instance_init_s +. profile.func_init_s +. profile.exec_s
    | Warm -> profile.exec_s
  in
  (* the single place record invariants are enforced *)
  let finalize (r : req) ~start ~finish ~outcome ~billed ~fb_billed =
    assert (billed >= 0.0);
    assert (fb_billed >= 0.0);
    assert (finish >= start);
    assert (start >= r.arrival);
    r.status <- Done;
    emit
      { req = r.idx;
        arrival_s = r.arrival;
        start_s = start;
        finish_s = finish;
        wait_s = start -. r.arrival;
        e2e_s = finish -. r.arrival;
        outcome;
        billed_ms = billed;
        fb_billed_ms = fb_billed;
        attempts = r.attempts;
        hedged = r.hedged };
    if traced then begin
      Obs.Span.end_ r.span
        ~attrs:
          [ ("outcome", outcome_label outcome);
            ("attempts", string_of_int r.attempts);
            ("retries", string_of_int r.retries);
            ("hedged", string_of_bool r.hedged);
            ("billed_ms", Printf.sprintf "%.3f" (billed +. fb_billed)) ]
        ~ts_ms:(finish *. 1000.0);
      free_lanes := r.lane :: !free_lanes
    end
  in
  let serve (r : req) inst ~now ~kind =
    r.status <- Running;
    r.start <- now;
    r.kind <- Some kind;
    r.attempts <- r.attempts + 1;
    let attempt = r.attempt in
    (* lazy deployments (ARCHITECTURE §14): settle the instance's
       deferred-init ledger. A cold start records the full deferred amount;
       a warm start with preloading on first resolves whatever the idle gap
       covered. The attempt then forces at most [lz_first_touch_s] of the
       remainder, extending its service time and billed duration. Doomed
       attempts (init failure, crash) leave the ledger untouched — the
       instance is reclaimed anyway. *)
    let touch =
      match cfg.lazy_load with
      | None -> 0.0
      | Some lz ->
        (match kind with
         | Cold -> Pool.set_pending inst lz.lz_deferred_s
         | Warm -> if lz.lz_preload then Pool.preload_idle pool inst ~now);
        Float.min (Pool.pending_s inst) lz.lz_first_touch_s
    in
    r.touch_s <- 0.0;
    match
      Faults.attempt_fault cfg.faults ~cold:(kind = Cold) ~req:r.idx ~attempt
    with
    | Faults.No_fault ->
      Pool.consume_pending inst touch;
      r.touch_s <- touch;
      let finish = now +. service_s cfg.profile kind +. touch in
      inst.Pool.busy_until <- finish;
      attempt_span ~track:(attempt_track inst)
        ~name:("attempt:" ^ start_kind_name kind) ~start_s:now ~end_s:finish
        ~r ~result:"ok";
      push ~time:finish (Complete (r, inst))
    | Faults.Init_failure ->
      (* only drawn for cold starts: init runs to its end, fails, and the
         instance dies; the init duration is billed *)
      let t_fail =
        now +. cfg.profile.instance_init_s +. cfg.profile.func_init_s
      in
      inst.Pool.busy_until <- t_fail;
      attempt_span ~track:(attempt_track inst)
        ~name:("attempt:" ^ start_kind_name kind) ~start_s:now ~end_s:t_fail
        ~r ~result:(failure_name Init_failed);
      push ~time:t_fail
        (Fault_hit (r, attempt, inst, Init_failed,
                    1000.0 *. cfg.profile.func_init_s));
      (match cfg.resilience.Resilience.hedge with
       | Some h when not r.hedged ->
         (* speculative recovery: re-dispatch hedge_delay after the cold
            start began, without waiting for the failure to be detected *)
         r.hedged <- true;
         r.hedge_inflight <- true;
         push ~time:(now +. h.Resilience.hedge_delay_s) (Hedge r)
       | _ -> ())
    | Faults.Crash { after_fraction } ->
      let init_s =
        match kind with
        | Cold -> cfg.profile.instance_init_s +. cfg.profile.func_init_s
        | Warm -> 0.0
      in
      let t_crash = now +. init_s +. (after_fraction *. cfg.profile.exec_s) in
      inst.Pool.busy_until <- t_crash;
      let billed =
        (match kind with
         | Cold -> 1000.0 *. cfg.profile.func_init_s
         | Warm -> 0.0)
        +. (1000.0 *. after_fraction *. cfg.profile.exec_s)
      in
      attempt_span ~track:(attempt_track inst)
        ~name:("attempt:" ^ start_kind_name kind) ~start_s:now ~end_s:t_crash
        ~r ~result:(failure_name Crashed);
      push ~time:t_crash (Fault_hit (r, attempt, inst, Crashed, billed))
    | Faults.Transient_error ->
      (* runs to completion, billed in full, but returns an error *)
      Pool.consume_pending inst touch;
      let finish = now +. service_s cfg.profile kind +. touch in
      inst.Pool.busy_until <- finish;
      attempt_span ~track:(attempt_track inst)
        ~name:("attempt:" ^ start_kind_name kind) ~start_s:now ~end_s:finish
        ~r ~result:(failure_name Errored);
      push ~time:finish
        (Fault_hit (r, attempt, inst, Errored,
                    billed_ms cfg.profile kind +. (1000.0 *. touch)))
  in
  (* dispatch from the pending queue while capacity allows; stale entries
     (timed out) are dropped lazily *)
  let rec drain_pending ~now =
    match Queue.peek_opt pending with
    | None -> ()
    | Some r when r.status <> Waiting ->
      ignore (Queue.pop pending);
      drain_pending ~now
    | Some r ->
      (match Pool.acquire pool ~now with
       | Some inst ->
         ignore (Queue.pop pending);
         decr pending_count;
         serve r inst ~now ~kind:Warm;
         drain_pending ~now
       | None ->
         if Pool.live_count pool < cfg.max_instances then begin
           ignore (Queue.pop pending);
           decr pending_count;
           serve r (Pool.spawn pool ~now) ~now ~kind:Cold;
           drain_pending ~now
         end)
  in
  let breaker_record (r : req) ~now ~failed =
    match breaker with
    | None -> ()
    | Some b ->
      (match r.role with
       | Sample -> Resilience.Breaker.record b ~now ~failed
       | Probe_req -> Resilience.Breaker.probe_result b ~now ~failed
       | Unsampled -> ())
  in
  (* a probe that dies, bounces, or times out must not wedge the breaker
     half-open; its loss re-opens the breaker *)
  let resolve_probe_failure (r : req) ~now =
    match r.role with
    | Probe_req -> breaker_record r ~now ~failed:true
    | Sample | Unsampled -> ()
  in
  let dispatch_primary (r : req) ~now =
    match Pool.acquire pool ~now with
    | Some inst -> serve r inst ~now ~kind:Warm
    | None ->
      if Pool.live_count pool < cfg.max_instances then
        serve r (Pool.spawn pool ~now) ~now ~kind:Cold
      else if !pending_count < cfg.max_pending then begin
        r.status <- Waiting;
        Queue.push r pending;
        incr pending_count;
        if cfg.pending_timeout_s < infinity then
          push ~time:(now +. cfg.pending_timeout_s) (Timeout (r, r.attempt))
      end
      else begin
        resolve_probe_failure r ~now;
        finalize r ~start:now ~finish:now ~outcome:Rejected
          ~billed:r.acc_billed_ms ~fb_billed:0.0
      end
  in
  let dispatch (r : req) ~now =
    match breaker with
    | None -> dispatch_primary r ~now
    | Some b ->
      (match Resilience.Breaker.admit b ~now with
       | Resilience.Breaker.Admit ->
         r.role <- Sample;
         dispatch_primary r ~now
       | Resilience.Breaker.Probe ->
         r.role <- Probe_req;
         dispatch_primary r ~now
       | Resilience.Breaker.Shed ->
         (* breaker open: pay the wrapper overhead and run the original
            image directly — no trimmed execution, no removal risk *)
         let fb = Option.get cfg.fallback in
         r.role <- Unsampled;
         r.shed <- true;
         r.status <- Running;
         r.start <- now;
         push ~time:(now +. fb.fb_setup_s) (Fb_arrival r))
  in
  (* releasing an instance back to its pool, unless churn reclaims it *)
  let release_and_schedule pool inst ~now ~expire =
    let expiry = Pool.release pool inst ~now in
    if expiry < infinity then
      push ~time:expiry (expire inst inst.Pool.generation)
  in
  let release_primary (r : req) inst ~now =
    if Faults.churned cfg.faults ~fb:false ~req:r.idx ~attempt:r.attempt then
      Pool.reclaim pool inst ~now
    else
      release_and_schedule pool inst ~now ~expire:(fun i g -> Expire (i, g))
  in
  (* a failed attempt: consume a retry if the budget and the request's
     timeout budget allow, otherwise the failure is final *)
  let fail_or_retry (r : req) ~now ~failure =
    let give_up () =
      resolve_probe_failure r ~now;
      finalize r ~start:r.start ~finish:now ~outcome:(Failed failure)
        ~billed:r.acc_billed_ms ~fb_billed:0.0
    in
    match cfg.resilience.Resilience.retry with
    | Some rp when r.retries < rp.Resilience.max_retries ->
      let jitter_u = Faults.jitter cfg.faults ~req:r.idx ~retry:r.retries in
      let wait =
        Resilience.backoff_s rp ~retry_index:r.retries ~jitter_u
      in
      let t = now +. wait in
      if t -. r.arrival > cfg.resilience.Resilience.request_timeout_s then
        give_up ()
      else begin
        r.retries <- r.retries + 1;
        r.status <- Retrying;
        push ~time:t (Retry r)
      end
    | _ -> give_up ()
  in
  let rec loop () =
    match Events.pop q with
    | None -> ()
    | Some (now, ev) ->
      incr events_processed;
      (match ev with
       | Arrival r ->
         feed_arrival ();
         if traced then begin
           r.lane <- alloc_lane ();
           r.span <-
             Obs.Span.begin_ sink ~domain:Obs.Span.domain_fleet ~track:r.lane
               ~cat:"fleet"
               ~name:(Printf.sprintf "request:%d" r.idx)
               ~ts_ms:(now *. 1000.0)
         end;
         dispatch r ~now
       | Complete (r, inst) ->
         release_primary r inst ~now;
         r.acc_billed_ms <-
           r.acc_billed_ms
           +. billed_ms cfg.profile (Option.get r.kind)
           +. (1000.0 *. r.touch_s);
         breaker_record r ~now ~failed:r.needs_fb;
         (match cfg.fallback with
          | Some fb when r.needs_fb ->
            push ~time:(now +. fb.fb_setup_s) (Fb_arrival r)
          | _ ->
            let kind = Option.get r.kind in
            finalize r ~start:r.start ~finish:now ~outcome:(Served kind)
              ~billed:r.acc_billed_ms ~fb_billed:0.0);
         drain_pending ~now
       | Fault_hit (r, attempt, inst, failure, billed) ->
         (match failure with
          | Errored -> release_primary r inst ~now
          | Init_failed | Crashed -> Pool.reclaim pool inst ~now);
         r.acc_billed_ms <- r.acc_billed_ms +. billed;
         (* act only if this is still the request's live attempt (a hedge
            may already have taken over) *)
         if r.attempt = attempt && r.status = Running then begin
           if r.hedge_inflight then
             (* the hedge scheduled at serve time will re-dispatch *)
             r.status <- Retrying
           else fail_or_retry r ~now ~failure
         end;
         drain_pending ~now
       | Retry r ->
         if r.status = Retrying then begin
           if traced then
             Obs.Span.instant sink ~domain:Obs.Span.domain_fleet ~track:r.lane
               ~cat:"fleet" ~name:"retry"
               ~attrs:[ ("retry", string_of_int r.retries) ]
               ~ts_ms:(now *. 1000.0);
           r.attempt <- r.attempt + 1;
           dispatch r ~now
         end
       | Hedge r ->
         r.hedge_inflight <- false;
         if r.status = Running || r.status = Retrying then begin
           if traced then
             Obs.Span.instant sink ~domain:Obs.Span.domain_fleet ~track:r.lane
               ~cat:"fleet" ~name:"hedge" ~ts_ms:(now *. 1000.0);
           r.attempt <- r.attempt + 1;
           dispatch r ~now
         end
       | Fb_arrival r ->
         let fb = Option.get cfg.fallback in
         let fbp = Option.get fb_pool in
         let kind, inst =
           match Pool.acquire fbp ~now with
           | Some inst -> (Warm, inst)
           | None -> (Cold, Pool.spawn fbp ~now)
         in
         let finish = now +. service_s fb.fb_profile kind in
         inst.Pool.busy_until <- finish;
         attempt_span ~track:(fb_attempt_track inst)
           ~name:("fb-attempt:" ^ start_kind_name kind) ~start_s:now
           ~end_s:finish ~r ~result:"ok";
         push ~time:finish (Fb_complete (r, inst, kind))
       | Fb_complete (r, inst, fb_kind) ->
         let fb = Option.get cfg.fallback in
         let fbp = Option.get fb_pool in
         if Faults.churned cfg.faults ~fb:true ~req:r.idx ~attempt:r.attempt
         then Pool.reclaim fbp inst ~now
         else
           release_and_schedule fbp inst ~now
             ~expire:(fun i g -> Fb_expire (i, g));
         let fb_billed = billed_ms fb.fb_profile fb_kind in
         if r.shed then
           finalize r ~start:r.start ~finish:now ~outcome:(Shed fb_kind)
             ~billed:r.acc_billed_ms ~fb_billed
         else
           let trimmed = Option.get r.kind in
           finalize r ~start:r.start ~finish:now
             ~outcome:(Fallback_served { trimmed; original = fb_kind })
             ~billed:r.acc_billed_ms ~fb_billed
       | Timeout (r, attempt) ->
         (* the attempt tag rejects stale timers: a request served and
            later re-queued by a retry must not inherit the old deadline *)
         if r.status = Waiting && r.attempt = attempt then begin
           decr pending_count;
           resolve_probe_failure r ~now;
           finalize r ~start:now ~finish:now ~outcome:Timed_out
             ~billed:r.acc_billed_ms ~fb_billed:0.0
         end
       | Expire (inst, generation) ->
         ignore (Pool.try_expire pool inst ~generation ~now);
         drain_pending ~now
       | Fb_expire (inst, generation) ->
         let fbp = Option.get fb_pool in
         ignore (Pool.try_expire fbp inst ~generation ~now));
      loop ()
  in
  loop ();
  (* the queue drained, so every instance has been released and expired;
     drain is a no-op safety net for infinite keep-alives *)
  Pool.drain pool;
  Option.iter Pool.drain fb_pool;
  { peak = Pool.peak_live pool;
    resident_s = Pool.resident_s pool;
    evicted = Pool.evictions pool;
    fb_peak = (match fb_pool with Some p -> Pool.peak_live p | None -> 0);
    fb_resident_s =
      (match fb_pool with Some p -> Pool.resident_s p | None -> 0.0);
    total_events = !events_processed }

(* Record mode: every arrival finalizes exactly once with [req] equal to
   its trace index, so the records slot straight into a pre-sized array —
   no accumulation list, no final sort. *)
let run ?queue cfg (trace : Platform.Trace.t) : result =
  let n = Platform.Trace.length trace in
  let dummy =
    { req = -1; arrival_s = 0.0; start_s = 0.0; finish_s = 0.0; wait_s = 0.0;
      e2e_s = 0.0; outcome = Rejected; billed_ms = 0.0; fb_billed_ms = 0.0;
      attempts = 0; hedged = false }
  in
  let slots = Array.make (max 1 n) dummy in
  let emitted = ref 0 in
  let emit r =
    assert (slots.(r.req) == dummy);
    slots.(r.req) <- r;
    incr emitted
  in
  let t = run_with ?queue ~emit cfg trace in
  assert (!emitted = n);
  { records = (if n = 0 then [] else Array.to_list slots);
    peak_instances = t.peak;
    resident_instance_s = t.resident_s;
    evictions = t.evicted;
    fb_peak_instances = t.fb_peak;
    fb_resident_instance_s = t.fb_resident_s;
    events_processed = t.total_events }
