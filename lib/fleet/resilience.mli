(** Resilience policies the router applies when the fault layer bites:
    bounded retries with exponential backoff and full jitter, a per-request
    end-to-end timeout budget, a circuit breaker that sheds a regressed
    trimmed deployment to the original image (§7), and cold-start hedging.

    Everything here is deterministic: jitter draws come from the request's
    {!Faults} plan, and the breaker's transitions are driven entirely by
    event times in virtual time. *)

(** Bounded retries. Retry [i] (0-based) waits
    [min max_backoff_s (base_backoff_s *. 2^i)], scaled by a uniform draw
    when [full_jitter] (AWS-style full jitter: the wait is uniform in
    [0, cap]). *)
type retry = {
  max_retries : int;
  base_backoff_s : float;
  max_backoff_s : float;
  full_jitter : bool;
}

(** 3 retries, 200 ms base, 10 s cap, full jitter. *)
val default_retry : retry

(** The backoff before retry [retry_index] (0-based); [jitter_u] is a
    uniform [0, 1) draw, ignored unless [full_jitter]. *)
val backoff_s : retry -> retry_index:int -> jitter_u:float -> float

(** Cold-start hedging: when a cold start's init fails, the recovery
    attempt is dispatched [hedge_delay_s] after the {e original} cold start
    began — speculatively, possibly before the failure is even detected —
    without consuming a retry or paying backoff. At most one hedge fires
    per request; both attempts are billed. *)
type hedge = { hedge_delay_s : float }

(** Circuit breaker on the §7 fallback path. While [Closed], completed
    trimmed invocations are sampled over a sliding window; when at least
    [min_samples] are present and the removal-error (fallback-hit) rate
    reaches [error_threshold], the breaker opens and the router sheds
    every request directly to the original image. After [cooldown_s] it
    half-opens: a single probe request tries the trimmed image again —
    success closes the breaker, failure re-opens it. *)
module Breaker : sig
  type config = {
    error_threshold : float;  (** open at this windowed error rate *)
    window : int;             (** sliding sample window size *)
    min_samples : int;        (** samples required before tripping *)
    cooldown_s : float;       (** open duration before half-opening *)
  }

  (** Threshold 0.5 over a 20-sample window (min 10), 30 s cooldown. *)
  val default : config

  val validate : config -> unit

  type t

  (** [obs_track] is the fleet-domain trace track on which state
      transitions are marked when a tracer is installed (default 0). *)
  val create : ?obs_track:int -> config -> t

  type state = Closed | Open | Half_open

  (** Current state as of the last observation ([admit]/[record] drive
      transitions, so an elapsed cooldown shows up only at the next
      [admit]). *)
  val state : t -> state

  type admission =
    | Admit  (** closed: serve on the trimmed image, sample the outcome *)
    | Probe  (** half-open: this request is the single trial *)
    | Shed   (** open: route directly to the original image *)

  val admit : t -> now:float -> admission

  (** Sample a completed trimmed invocation ([failed] = it hit removed
      code). Ignored unless [Closed]. *)
  val record : t -> now:float -> failed:bool -> unit

  (** Resolve the half-open probe. Ignored unless [Half_open]. *)
  val probe_result : t -> now:float -> failed:bool -> unit
end

type policy = {
  retry : retry option;          (** [None]: failures are final *)
  request_timeout_s : float;
      (** end-to-end budget: a retry that would begin later than
          [arrival + request_timeout_s] is abandoned ([infinity]: none) *)
  breaker : Breaker.config option;  (** requires a configured fallback *)
  hedge : hedge option;
}

(** No retries, no budget, no breaker, no hedging — failures are final,
    which reproduces the pre-fault simulator exactly when no faults are
    injected. *)
val none : policy

val validate : policy -> unit
