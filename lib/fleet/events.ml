(* Deterministic event queue: array-backed binary min-heap keyed on
   (time, rank, seq). The monotone sequence counter gives stable FIFO
   ordering among equal (time, rank) keys, which keeps whole-fleet replays
   bit-identical across runs — the simulator's determinism rests here. *)

type 'a entry = {
  e_time : float;
  e_rank : int;
  e_seq : int;
  e_payload : 'a;
}

type 'a t = {
  mutable heap : 'a entry array;  (* heap.(0 .. size-1) is a valid min-heap *)
  mutable size : int;
  mutable seq : int;
}

let create () = { heap = [||]; size = 0; seq = 0 }
let length q = q.size
let is_empty q = q.size = 0

let precedes a b =
  a.e_time < b.e_time
  || (a.e_time = b.e_time
      && (a.e_rank < b.e_rank || (a.e_rank = b.e_rank && a.e_seq < b.e_seq)))

let ensure_capacity q entry =
  let cap = Array.length q.heap in
  if q.size >= cap then begin
    (* grow by doubling; the new entry serves as filler for fresh slots *)
    let grown = Array.make (max 16 (2 * cap)) entry in
    Array.blit q.heap 0 grown 0 q.size;
    q.heap <- grown
  end

let push q ~time ?(rank = 0) payload =
  let entry = { e_time = time; e_rank = rank; e_seq = q.seq; e_payload = payload } in
  q.seq <- q.seq + 1;
  ensure_capacity q entry;
  (* sift up *)
  let i = ref q.size in
  q.size <- q.size + 1;
  q.heap.(!i) <- entry;
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    precedes q.heap.(!i) q.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = q.heap.(parent) in
    q.heap.(parent) <- q.heap.(!i);
    q.heap.(!i) <- tmp;
    i := parent
  done

let peek_time q = if q.size = 0 then None else Some q.heap.(0).e_time

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.size && precedes q.heap.(l) q.heap.(!smallest) then
          smallest := l;
        if r < q.size && precedes q.heap.(r) q.heap.(!smallest) then
          smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = q.heap.(!smallest) in
          q.heap.(!smallest) <- q.heap.(!i);
          q.heap.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.e_time, top.e_payload)
  end

let drain q =
  let rec go acc = match pop q with
    | None -> List.rev acc
    | Some ev -> go (ev :: acc)
  in
  go []
