(* Deterministic event queue keyed on (time, rank, seq). The monotone
   sequence counter gives stable FIFO ordering among equal (time, rank)
   keys, which keeps whole-fleet replays bit-identical across runs — the
   simulator's determinism rests here.

   Two backends share the exact same pop order:

   - [Heap]: array-backed binary min-heap, O(log n) per op at any schedule
     shape. The default for small or unknown horizons.
   - [Calendar]: a calendar queue (Brown 1988) — [n_buckets] time slots of
     [width] seconds each, events bucketed by [floor(time / width)] modulo
     the bucket count and kept key-sorted within a bucket. With events
     spread over the horizon (the dense-trace case the sharded replay
     hits), push and pop are O(1) amortised. Pop scans forward from the
     slot of the last popped event, persisting its progress across pops so
     empty stretches are swept once per run; if a full wrap finds nothing
     (events a whole wrap ahead, clamped slots) an authoritative min-scan
     over all bucket heads takes over, so ordering never depends on the
     slot arithmetic being exact.

   Slot membership is decided by [slot_of] alone (never by recomputing
   boundaries as [slot * width], which can disagree with float division by
   an ulp), so the scan accepts a bucket head exactly when its own slot has
   been reached — the property that makes the two backends bit-identical,
   and what [test_fleet]'s heap ≡ calendar QCheck property pins down. *)

type 'a entry = {
  e_time : float;
  e_rank : int;
  e_seq : int;
  mutable e_payload : 'a;
      (* mutable only so the heap can recycle one filler entry; a live
         entry's payload is never mutated *)
}

type kind =
  | Heap
  | Calendar of { width : float; n_buckets : int }

let precedes a b =
  a.e_time < b.e_time
  || (a.e_time = b.e_time
      && (a.e_rank < b.e_rank || (a.e_rank = b.e_rank && a.e_seq < b.e_seq)))

(* --- binary heap backend ------------------------------------------------- *)

type 'a heap_q = {
  mutable heap : 'a entry array;  (* heap.(0 .. hsize-1) is a valid min-heap *)
  mutable hsize : int;
  mutable hseq : int;
  mutable filler : 'a entry option;
      (* single shared sentinel for vacated and fresh slots: without it,
         pop's vacated slot heap.(hsize) would pin the moved entry (and its
         payload) until overwritten — a drained queue kept every payload
         reachable. The filler recycles in place, so a drained queue pins at
         most the most recently popped payload. *)
}

let heap_create () = { heap = [||]; hsize = 0; hseq = 0; filler = None }

let filler_of q (entry : 'a entry) =
  match q.filler with
  | Some f -> f
  | None ->
    let f =
      { e_time = neg_infinity; e_rank = 0; e_seq = -1;
        e_payload = entry.e_payload }
    in
    q.filler <- Some f;
    f

let heap_ensure_capacity q entry =
  let cap = Array.length q.heap in
  if q.hsize >= cap then begin
    let grown = Array.make (max 16 (2 * cap)) (filler_of q entry) in
    Array.blit q.heap 0 grown 0 q.hsize;
    q.heap <- grown
  end

let heap_push q ~time ~rank payload =
  let entry =
    { e_time = time; e_rank = rank; e_seq = q.hseq; e_payload = payload }
  in
  q.hseq <- q.hseq + 1;
  heap_ensure_capacity q entry;
  (* sift up *)
  let i = ref q.hsize in
  q.hsize <- q.hsize + 1;
  q.heap.(!i) <- entry;
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    precedes q.heap.(!i) q.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = q.heap.(parent) in
    q.heap.(parent) <- q.heap.(!i);
    q.heap.(!i) <- tmp;
    i := parent
  done

let heap_pop q =
  if q.hsize = 0 then None
  else begin
    let top = q.heap.(0) in
    q.hsize <- q.hsize - 1;
    let filler = filler_of q top in
    filler.e_payload <- top.e_payload;
    if q.hsize > 0 then begin
      q.heap.(0) <- q.heap.(q.hsize);
      q.heap.(q.hsize) <- filler;
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.hsize && precedes q.heap.(l) q.heap.(!smallest) then
          smallest := l;
        if r < q.hsize && precedes q.heap.(r) q.heap.(!smallest) then
          smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = q.heap.(!smallest) in
          q.heap.(!smallest) <- q.heap.(!i);
          q.heap.(!i) <- tmp;
          i := !smallest
        end
      done
    end
    else q.heap.(0) <- filler;
    Some (top.e_time, top.e_payload)
  end

(* --- calendar queue backend ---------------------------------------------- *)

type 'a cal_q = {
  width : float;
  mask : int;                           (* n_buckets - 1, power of two *)
  buckets : 'a entry list array;        (* key-sorted ascending *)
  mutable csize : int;
  mutable cseq : int;
  mutable cur_slot : int;
      (* invariant: no queued event's slot precedes cur_slot *)
}

(* capped so slot * anything stays far from int overflow; times past the
   cap all collapse into one slot and are handled by the min-scan *)
let max_slot = 1 lsl 60

let slot_of cal t =
  let s = Float.floor (t /. cal.width) in
  if Float.is_nan s || s <= 0.0 then 0
  else if s >= float_of_int max_slot then max_slot
  else int_of_float s

let cal_create ~width ~n_buckets =
  let n_buckets = max 4 n_buckets in
  (* round up to a power of two *)
  let n = ref 4 in
  while !n < n_buckets do n := !n * 2 done;
  { width = Float.max 1e-9 width;
    mask = !n - 1;
    buckets = Array.make !n [];
    csize = 0;
    cseq = 0;
    cur_slot = 0 }

let rec sorted_insert e = function
  | [] -> [ e ]
  | x :: _ as l when precedes e x -> e :: l
  | x :: rest -> x :: sorted_insert e rest

let cal_push cal ~time ~rank payload =
  let e =
    { e_time = time; e_rank = rank; e_seq = cal.cseq; e_payload = payload }
  in
  cal.cseq <- cal.cseq + 1;
  let slot = slot_of cal time in
  let b = slot land cal.mask in
  cal.buckets.(b) <- sorted_insert e cal.buckets.(b);
  cal.csize <- cal.csize + 1;
  if slot < cal.cur_slot then cal.cur_slot <- slot

(* authoritative fallback: minimum over all bucket heads *)
let cal_min_scan cal =
  let best = ref (-1) in
  let best_e = ref None in
  Array.iteri
    (fun i l ->
       match l with
       | [] -> ()
       | e :: _ ->
         (match !best_e with
          | Some b when precedes b e -> ()
          | _ ->
            best := i;
            best_e := Some e))
    cal.buckets;
  (!best, !best_e)

let cal_take cal ~slot ~bucket =
  match cal.buckets.(bucket) with
  | [] -> assert false
  | e :: rest ->
    cal.buckets.(bucket) <- rest;
    cal.csize <- cal.csize - 1;
    cal.cur_slot <- slot;
    Some (e.e_time, e.e_payload)

let cal_pop cal =
  if cal.csize = 0 then None
  else begin
    let n = cal.mask + 1 in
    let rec scan slot remaining =
      if remaining = 0 then begin
        (* a full wrap found nothing: every queued event is at least one
           wrap ahead (or slot-clamped); fall back to the authoritative
           min over bucket heads *)
        let bucket, e = cal_min_scan cal in
        match e with
        | None -> assert false
        | Some e -> cal_take cal ~slot:(slot_of cal e.e_time) ~bucket
      end
      else
        let b = slot land cal.mask in
        match cal.buckets.(b) with
        | e :: _ when slot_of cal e.e_time <= slot ->
          cal_take cal ~slot ~bucket:b
        | _ ->
          (* nothing queued at or before [slot] (this bucket's head, the
             minimum of every slot mapping here, is past it) — persist the
             progress so sparse stretches are swept once per run, not once
             per pop *)
          cal.cur_slot <- slot + 1;
          scan (slot + 1) (remaining - 1)
    in
    scan cal.cur_slot n
  end

let cal_peek cal =
  if cal.csize = 0 then None
  else
    match cal_min_scan cal with
    | _, Some e -> Some e.e_time
    | _, None -> assert false

(* --- unified front -------------------------------------------------------- *)

type 'a t = H of 'a heap_q | C of 'a cal_q

let calendar ~horizon_s ~expected_events =
  let expected = max 1 expected_events in
  (* ~1 expected event per bucket: keeping buckets near-singleton makes the
     sorted insert O(1), and the persistent pop scan makes the resulting
     empty-slot stretches free; 2^21 * one word caps the table at ~16 MB *)
  let n_buckets = max 256 (min (1 lsl 21) expected) in
  let horizon =
    if Float.is_finite horizon_s && horizon_s > 0.0 then horizon_s else 1.0
  in
  Calendar { width = horizon /. float_of_int n_buckets; n_buckets }

(* Calendar queues win when many events spread across the horizon (the
   dense-trace replay case); for small schedules the heap's constant
   factor wins and nothing is at stake. Both orders are identical, so the
   choice can never change simulation output. *)
let auto ~horizon_s ~expected_events =
  if
    expected_events >= 4096
    && Float.is_finite horizon_s
    && horizon_s > 0.0
  then calendar ~horizon_s ~expected_events
  else Heap

let kind_name = function Heap -> "heap" | Calendar _ -> "calendar"

let create ?(kind = Heap) () =
  match kind with
  | Heap -> H (heap_create ())
  | Calendar { width; n_buckets } -> C (cal_create ~width ~n_buckets)

let length = function H q -> q.hsize | C q -> q.csize
let is_empty q = length q = 0

let push q ~time ?(rank = 0) payload =
  match q with
  | H h -> heap_push h ~time ~rank payload
  | C c -> cal_push c ~time ~rank payload

let peek_time = function
  | H q -> if q.hsize = 0 then None else Some q.heap.(0).e_time
  | C c -> cal_peek c

let pop = function H q -> heap_pop q | C c -> cal_pop c

let drain q =
  let rec go acc = match pop q with
    | None -> List.rev acc
    | Some ev -> go (ev :: acc)
  in
  go []
