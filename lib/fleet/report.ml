(* Fleet-run aggregation. Latency statistics cover served requests only;
   rejected, timed-out, and failed requests are counted separately (a
   dropped request has no meaningful latency, and folding zeros in would
   flatter the tail). Percentile helpers come from [Platform.Metrics] and
   are total on the empty list, so a run where everything was rejected
   still summarizes. *)

type summary = {
  label : string;
  requests : int;
  served : int;
  cold : int;
  warm : int;
  fallbacks : int;
  fb_cold : int;
  rejected : int;
  timed_out : int;
  failed : int;
  shed : int;
  cold_fraction : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  mean_wait_ms : float;
  peak_instances : int;
  resident_instance_s : float;
  evictions : int;
  cost_usd : float;
  attempts : int;
  retried : int;
  hedged : int;
  availability : float;
  goodput_per_s : float;
  retry_amplification : float;
}

let summarize ?(pricing = Platform.Pricing.aws) ~label (cfg : Router.config)
    (res : Router.result) : summary =
  let cold = ref 0 and warm = ref 0 in
  let fallbacks = ref 0 and fb_cold = ref 0 in
  let rejected = ref 0 and timed_out = ref 0 in
  let failed = ref 0 and shed = ref 0 in
  let attempts = ref 0 and retried = ref 0 and hedged = ref 0 in
  let fb_invocations = ref 0 in
  let latencies = ref [] and waits = ref [] in
  let cost = ref 0.0 in
  let first_arrival = ref infinity and last_finish = ref neg_infinity in
  let count_primary = function
    | Router.Cold -> incr cold
    | Router.Warm -> incr warm
  in
  let count_served (r : Router.record) =
    latencies := (r.Router.e2e_s *. 1000.0) :: !latencies;
    waits := (r.Router.wait_s *. 1000.0) :: !waits
  in
  let fb_memory =
    match cfg.Router.fallback with
    | Some fb -> fb.Router.fb_profile.Router.memory_mb
    | None -> 0.0
  in
  List.iter
    (fun (r : Router.record) ->
       attempts := !attempts + r.Router.attempts;
       if r.Router.attempts > 1 then incr retried;
       if r.Router.hedged then incr hedged;
       first_arrival := Float.min !first_arrival r.Router.arrival_s;
       (match r.Router.outcome with
        | Router.Served kind ->
          count_primary kind;
          count_served r;
          last_finish := Float.max !last_finish r.Router.finish_s
        | Router.Fallback_served { trimmed; original } ->
          count_primary trimmed;
          incr fallbacks;
          incr fb_invocations;
          (match original with
           | Router.Cold -> incr fb_cold
           | Router.Warm -> ());
          count_served r;
          last_finish := Float.max !last_finish r.Router.finish_s
        | Router.Shed kind ->
          incr shed;
          incr fb_invocations;
          (match kind with
           | Router.Cold -> incr fb_cold
           | Router.Warm -> ());
          count_served r;
          last_finish := Float.max !last_finish r.Router.finish_s
        | Router.Rejected -> incr rejected
        | Router.Timed_out -> incr timed_out
        | Router.Failed _ -> incr failed);
       if r.Router.billed_ms > 0.0 then
         cost :=
           !cost
           +. Platform.Pricing.invocation_cost pricing
                ~duration_ms:r.Router.billed_ms
                ~memory_mb:cfg.Router.profile.Router.memory_mb;
       if r.Router.fb_billed_ms > 0.0 then
         cost :=
           !cost
           +. Platform.Pricing.invocation_cost pricing
                ~duration_ms:r.Router.fb_billed_ms ~memory_mb:fb_memory)
    res.Router.records;
  let requests = List.length res.Router.records in
  let served = !cold + !warm + !shed in
  let primary_starts = !cold + !warm in
  let lat = !latencies in
  let window = !last_finish -. !first_arrival in
  { label;
    requests;
    served;
    cold = !cold;
    warm = !warm;
    fallbacks = !fallbacks;
    fb_cold = !fb_cold;
    rejected = !rejected;
    timed_out = !timed_out;
    failed = !failed;
    shed = !shed;
    cold_fraction =
      (if primary_starts = 0 then 0.0
       else float_of_int !cold /. float_of_int primary_starts);
    mean_ms = Platform.Metrics.mean lat;
    p50_ms = Platform.Metrics.median lat;
    p95_ms = Platform.Metrics.p95 lat;
    p99_ms = Platform.Metrics.p99 lat;
    max_ms = List.fold_left Float.max 0.0 lat;
    mean_wait_ms = Platform.Metrics.mean !waits;
    peak_instances = res.Router.peak_instances;
    resident_instance_s =
      res.Router.resident_instance_s +. res.Router.fb_resident_instance_s;
    evictions = res.Router.evictions;
    cost_usd = !cost;
    attempts = !attempts;
    retried = !retried;
    hedged = !hedged;
    availability =
      (if requests = 0 then 1.0
       else float_of_int served /. float_of_int requests);
    goodput_per_s =
      (if served = 0 || window <= 0.0 then 0.0
       else float_of_int served /. window);
    retry_amplification =
      (if requests = 0 then 1.0
       else
         float_of_int (!attempts + !fb_invocations) /. float_of_int requests) }

let table_header =
  Printf.sprintf
    "  %-26s %6s %5s %5s %4s %4s %4s %4s %4s %6s %8s %8s %8s %5s %10s %6s %10s"
    "" "req" "cold" "warm" "fb" "rej" "t/o" "fail" "shed" "cold%" "p50ms"
    "p95ms" "p99ms" "peak" "resident-s" "avail" "cost $"

let table_row s =
  Printf.sprintf
    "  %-26s %6d %5d %5d %4d %4d %4d %4d %4d %5.1f%% %8.1f %8.1f %8.1f %5d \
     %10.0f %5.1f%% %10.6f"
    s.label s.requests s.cold s.warm s.fallbacks s.rejected s.timed_out
    s.failed s.shed (100.0 *. s.cold_fraction) s.p50_ms s.p95_ms s.p99_ms
    s.peak_instances s.resident_instance_s
    (100.0 *. s.availability) s.cost_usd

let csv_header =
  "label,requests,served,cold,warm,fallbacks,fb_cold,rejected,timed_out,\
   cold_fraction,mean_ms,p50_ms,p95_ms,p99_ms,max_ms,mean_wait_ms,\
   peak_instances,resident_instance_s,evictions,cost_usd,\
   failed,shed,attempts,retried,hedged,availability,goodput_per_s,\
   retry_amplification"

let csv_row s =
  Printf.sprintf
    "%s,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%d,%.3f,%d,\
     %.9f,%d,%d,%d,%d,%d,%.6f,%.6f,%.6f"
    s.label s.requests s.served s.cold s.warm s.fallbacks s.fb_cold s.rejected
    s.timed_out s.cold_fraction s.mean_ms s.p50_ms s.p95_ms s.p99_ms s.max_ms
    s.mean_wait_ms s.peak_instances s.resident_instance_s s.evictions
    s.cost_usd s.failed s.shed s.attempts s.retried s.hedged s.availability
    s.goodput_per_s s.retry_amplification
