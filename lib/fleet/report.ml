(* Fleet-run aggregation. Latency statistics cover served requests only;
   rejected and timed-out requests are counted separately (a dropped request
   has no meaningful latency, and folding zeros in would flatter the tail).
   Percentile helpers come from [Platform.Metrics] and are total on the
   empty list, so a run where everything was rejected still summarizes. *)

type summary = {
  label : string;
  requests : int;
  served : int;
  cold : int;
  warm : int;
  fallbacks : int;
  fb_cold : int;
  rejected : int;
  timed_out : int;
  cold_fraction : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  mean_wait_ms : float;
  peak_instances : int;
  resident_instance_s : float;
  evictions : int;
  cost_usd : float;
}

let summarize ?(pricing = Platform.Pricing.aws) ~label (cfg : Router.config)
    (res : Router.result) : summary =
  let cold = ref 0 and warm = ref 0 in
  let fallbacks = ref 0 and fb_cold = ref 0 in
  let rejected = ref 0 and timed_out = ref 0 in
  let latencies = ref [] and waits = ref [] in
  let cost = ref 0.0 in
  let count_primary = function
    | Router.Cold -> incr cold
    | Router.Warm -> incr warm
  in
  let fb_memory =
    match cfg.Router.fallback with
    | Some fb -> fb.Router.fb_profile.Router.memory_mb
    | None -> 0.0
  in
  List.iter
    (fun (r : Router.record) ->
       (match r.Router.outcome with
        | Router.Served kind ->
          count_primary kind;
          latencies := (r.Router.e2e_s *. 1000.0) :: !latencies;
          waits := (r.Router.wait_s *. 1000.0) :: !waits
        | Router.Fallback_served { trimmed; original } ->
          count_primary trimmed;
          incr fallbacks;
          (match original with
           | Router.Cold -> incr fb_cold
           | Router.Warm -> ());
          latencies := (r.Router.e2e_s *. 1000.0) :: !latencies;
          waits := (r.Router.wait_s *. 1000.0) :: !waits
        | Router.Rejected -> incr rejected
        | Router.Timed_out -> incr timed_out);
       if r.Router.billed_ms > 0.0 then
         cost :=
           !cost
           +. Platform.Pricing.invocation_cost pricing
                ~duration_ms:r.Router.billed_ms
                ~memory_mb:cfg.Router.profile.Router.memory_mb;
       if r.Router.fb_billed_ms > 0.0 then
         cost :=
           !cost
           +. Platform.Pricing.invocation_cost pricing
                ~duration_ms:r.Router.fb_billed_ms ~memory_mb:fb_memory)
    res.Router.records;
  let served = !cold + !warm in
  let lat = !latencies in
  { label;
    requests = List.length res.Router.records;
    served;
    cold = !cold;
    warm = !warm;
    fallbacks = !fallbacks;
    fb_cold = !fb_cold;
    rejected = !rejected;
    timed_out = !timed_out;
    cold_fraction =
      (if served = 0 then 0.0 else float_of_int !cold /. float_of_int served);
    mean_ms = Platform.Metrics.mean lat;
    p50_ms = Platform.Metrics.median lat;
    p95_ms = Platform.Metrics.p95 lat;
    p99_ms = Platform.Metrics.p99 lat;
    max_ms = List.fold_left Float.max 0.0 lat;
    mean_wait_ms = Platform.Metrics.mean !waits;
    peak_instances = res.Router.peak_instances;
    resident_instance_s =
      res.Router.resident_instance_s +. res.Router.fb_resident_instance_s;
    evictions = res.Router.evictions;
    cost_usd = !cost }

let table_header =
  Printf.sprintf "  %-26s %6s %5s %5s %4s %4s %4s %6s %8s %8s %8s %5s %10s %10s"
    "" "req" "cold" "warm" "fb" "rej" "t/o" "cold%" "p50ms" "p95ms" "p99ms"
    "peak" "resident-s" "cost $"

let table_row s =
  Printf.sprintf
    "  %-26s %6d %5d %5d %4d %4d %4d %5.1f%% %8.1f %8.1f %8.1f %5d %10.0f %10.6f"
    s.label s.requests s.cold s.warm s.fallbacks s.rejected s.timed_out
    (100.0 *. s.cold_fraction) s.p50_ms s.p95_ms s.p99_ms s.peak_instances
    s.resident_instance_s s.cost_usd

let csv_header =
  "label,requests,served,cold,warm,fallbacks,fb_cold,rejected,timed_out,\
   cold_fraction,mean_ms,p50_ms,p95_ms,p99_ms,max_ms,mean_wait_ms,\
   peak_instances,resident_instance_s,evictions,cost_usd"

let csv_row s =
  Printf.sprintf
    "%s,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%d,%.3f,%d,%.9f"
    s.label s.requests s.served s.cold s.warm s.fallbacks s.fb_cold s.rejected
    s.timed_out s.cold_fraction s.mean_ms s.p50_ms s.p95_ms s.p99_ms s.max_ms
    s.mean_wait_ms s.peak_instances s.resident_instance_s s.evictions
    s.cost_usd
