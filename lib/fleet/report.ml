(* Fleet-run aggregation. Latency statistics cover served requests only;
   rejected, timed-out, and failed requests are counted separately (a
   dropped request has no meaningful latency, and folding zeros in would
   flatter the tail). Percentile helpers come from [Platform.Metrics] and
   are total on the empty list, so a run where everything was rejected
   still summarizes. *)

type summary = {
  label : string;
  requests : int;
  served : int;
  cold : int;
  warm : int;
  fallbacks : int;
  fb_cold : int;
  rejected : int;
  timed_out : int;
  failed : int;
  shed : int;
  cold_fraction : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  mean_wait_ms : float;
  peak_instances : int;
  resident_instance_s : float;
  evictions : int;
  cost_usd : float;
  attempts : int;
  retried : int;
  hedged : int;
  availability : float;
  goodput_per_s : float;
  retry_amplification : float;
}

let summarize ?(pricing = Platform.Pricing.aws) ~label (cfg : Router.config)
    (res : Router.result) : summary =
  let cold = ref 0 and warm = ref 0 in
  let fallbacks = ref 0 and fb_cold = ref 0 in
  let rejected = ref 0 and timed_out = ref 0 in
  let failed = ref 0 and shed = ref 0 in
  let attempts = ref 0 and retried = ref 0 and hedged = ref 0 in
  let fb_invocations = ref 0 in
  let latencies = ref [] and waits = ref [] in
  let cost = ref 0.0 in
  let first_arrival = ref infinity and last_finish = ref neg_infinity in
  let count_primary = function
    | Router.Cold -> incr cold
    | Router.Warm -> incr warm
  in
  let count_served (r : Router.record) =
    latencies := (r.Router.e2e_s *. 1000.0) :: !latencies;
    waits := (r.Router.wait_s *. 1000.0) :: !waits
  in
  let fb_memory =
    match cfg.Router.fallback with
    | Some fb -> fb.Router.fb_profile.Router.memory_mb
    | None -> 0.0
  in
  List.iter
    (fun (r : Router.record) ->
       attempts := !attempts + r.Router.attempts;
       if r.Router.attempts > 1 then incr retried;
       if r.Router.hedged then incr hedged;
       first_arrival := Float.min !first_arrival r.Router.arrival_s;
       (match r.Router.outcome with
        | Router.Served kind ->
          count_primary kind;
          count_served r;
          last_finish := Float.max !last_finish r.Router.finish_s
        | Router.Fallback_served { trimmed; original } ->
          count_primary trimmed;
          incr fallbacks;
          incr fb_invocations;
          (match original with
           | Router.Cold -> incr fb_cold
           | Router.Warm -> ());
          count_served r;
          last_finish := Float.max !last_finish r.Router.finish_s
        | Router.Shed kind ->
          incr shed;
          incr fb_invocations;
          (match kind with
           | Router.Cold -> incr fb_cold
           | Router.Warm -> ());
          count_served r;
          last_finish := Float.max !last_finish r.Router.finish_s
        | Router.Rejected -> incr rejected
        | Router.Timed_out -> incr timed_out
        | Router.Failed _ -> incr failed);
       if r.Router.billed_ms > 0.0 then
         cost :=
           !cost
           +. Platform.Pricing.invocation_cost pricing
                ~duration_ms:r.Router.billed_ms
                ~memory_mb:cfg.Router.profile.Router.memory_mb;
       if r.Router.fb_billed_ms > 0.0 then
         cost :=
           !cost
           +. Platform.Pricing.invocation_cost pricing
                ~duration_ms:r.Router.fb_billed_ms ~memory_mb:fb_memory)
    res.Router.records;
  let requests = List.length res.Router.records in
  let served = !cold + !warm + !shed in
  let primary_starts = !cold + !warm in
  let lat = !latencies in
  let window = !last_finish -. !first_arrival in
  { label;
    requests;
    served;
    cold = !cold;
    warm = !warm;
    fallbacks = !fallbacks;
    fb_cold = !fb_cold;
    rejected = !rejected;
    timed_out = !timed_out;
    failed = !failed;
    shed = !shed;
    cold_fraction =
      (if primary_starts = 0 then 0.0
       else float_of_int !cold /. float_of_int primary_starts);
    mean_ms = Platform.Metrics.mean lat;
    p50_ms = Platform.Metrics.median lat;
    p95_ms = Platform.Metrics.p95 lat;
    p99_ms = Platform.Metrics.p99 lat;
    max_ms = List.fold_left Float.max 0.0 lat;
    mean_wait_ms = Platform.Metrics.mean !waits;
    peak_instances = res.Router.peak_instances;
    resident_instance_s =
      res.Router.resident_instance_s +. res.Router.fb_resident_instance_s;
    evictions = res.Router.evictions;
    cost_usd = !cost;
    attempts = !attempts;
    retried = !retried;
    hedged = !hedged;
    availability =
      (if requests = 0 then 1.0
       else float_of_int served /. float_of_int requests);
    goodput_per_s =
      (if served = 0 || window <= 0.0 then 0.0
       else float_of_int served /. window);
    retry_amplification =
      (if requests = 0 then 1.0
       else
         float_of_int (!attempts + !fb_invocations) /. float_of_int requests) }

(* --- streaming aggregation ------------------------------------------------

   The record-mode pipeline above keeps every record alive and re-sorts the
   latency population once per percentile. [Stream] folds each record away
   the moment the router emits it: integer counters, running sums, and two
   fixed-size [Sketch]es. Only p50/p95/p99 become approximate (bounded by
   [Sketch.rel_error]); every other summary field is computed by the same
   formulas as [summarize]. Merging accumulators adds integer bucket
   counts (exact, order-independent) — merge in a canonical order anyway so
   the float cost/sum fields are bit-reproducible at any shard layout. *)

module Stream = struct
  type t = {
    pricing : Platform.Pricing.t;
    memory_mb : float;
    fb_memory_mb : float;
    mutable requests : int;
    mutable cold : int;
    mutable warm : int;
    mutable fallbacks : int;
    mutable fb_cold : int;
    mutable rejected : int;
    mutable timed_out : int;
    mutable failed : int;
    mutable shed : int;
    mutable attempts : int;
    mutable retried : int;
    mutable hedged : int;
    mutable fb_invocations : int;
    lat : Sketch.t;
    waits : Sketch.t;
    mutable cost : float;
    mutable first_arrival : float;
    mutable last_finish : float;
    (* engine totals absorbed after each run; [peak] is the sum of per-app
       peaks when streams merge (apps have independent pools) *)
    mutable peak : int;
    mutable resident_s : float;
    mutable evictions : int;
    mutable apps : int;
    mutable events : int;
  }

  let create ?(pricing = Platform.Pricing.aws) (cfg : Router.config) =
    { pricing;
      memory_mb = cfg.Router.profile.Router.memory_mb;
      fb_memory_mb =
        (match cfg.Router.fallback with
         | Some fb -> fb.Router.fb_profile.Router.memory_mb
         | None -> 0.0);
      requests = 0; cold = 0; warm = 0; fallbacks = 0; fb_cold = 0;
      rejected = 0; timed_out = 0; failed = 0; shed = 0;
      attempts = 0; retried = 0; hedged = 0; fb_invocations = 0;
      lat = Sketch.create (); waits = Sketch.create ();
      cost = 0.0;
      first_arrival = infinity; last_finish = neg_infinity;
      peak = 0; resident_s = 0.0; evictions = 0; apps = 0; events = 0 }

  let observe t (r : Router.record) =
    t.requests <- t.requests + 1;
    t.attempts <- t.attempts + r.Router.attempts;
    if r.Router.attempts > 1 then t.retried <- t.retried + 1;
    if r.Router.hedged then t.hedged <- t.hedged + 1;
    if r.Router.arrival_s < t.first_arrival then
      t.first_arrival <- r.Router.arrival_s;
    let count_primary = function
      | Router.Cold -> t.cold <- t.cold + 1
      | Router.Warm -> t.warm <- t.warm + 1
    in
    let count_served () =
      Sketch.add t.lat (r.Router.e2e_s *. 1000.0);
      Sketch.add t.waits (r.Router.wait_s *. 1000.0);
      if r.Router.finish_s > t.last_finish then
        t.last_finish <- r.Router.finish_s
    in
    (match r.Router.outcome with
     | Router.Served kind ->
       count_primary kind;
       count_served ()
     | Router.Fallback_served { trimmed; original } ->
       count_primary trimmed;
       t.fallbacks <- t.fallbacks + 1;
       t.fb_invocations <- t.fb_invocations + 1;
       (match original with
        | Router.Cold -> t.fb_cold <- t.fb_cold + 1
        | Router.Warm -> ());
       count_served ()
     | Router.Shed kind ->
       t.shed <- t.shed + 1;
       t.fb_invocations <- t.fb_invocations + 1;
       (match kind with
        | Router.Cold -> t.fb_cold <- t.fb_cold + 1
        | Router.Warm -> ());
       count_served ()
     | Router.Rejected -> t.rejected <- t.rejected + 1
     | Router.Timed_out -> t.timed_out <- t.timed_out + 1
     | Router.Failed _ -> t.failed <- t.failed + 1);
    if r.Router.billed_ms > 0.0 then
      t.cost <-
        t.cost
        +. Platform.Pricing.invocation_cost t.pricing
             ~duration_ms:r.Router.billed_ms ~memory_mb:t.memory_mb;
    if r.Router.fb_billed_ms > 0.0 then
      t.cost <-
        t.cost
        +. Platform.Pricing.invocation_cost t.pricing
             ~duration_ms:r.Router.fb_billed_ms ~memory_mb:t.fb_memory_mb

  let absorb_totals t (tot : Router.totals) =
    t.peak <- t.peak + tot.Router.peak;
    t.resident_s <-
      t.resident_s +. tot.Router.resident_s +. tot.Router.fb_resident_s;
    t.evictions <- t.evictions + tot.Router.evicted;
    t.apps <- t.apps + 1;
    t.events <- t.events + tot.Router.total_events

  let merge_into ~into src =
    into.requests <- into.requests + src.requests;
    into.cold <- into.cold + src.cold;
    into.warm <- into.warm + src.warm;
    into.fallbacks <- into.fallbacks + src.fallbacks;
    into.fb_cold <- into.fb_cold + src.fb_cold;
    into.rejected <- into.rejected + src.rejected;
    into.timed_out <- into.timed_out + src.timed_out;
    into.failed <- into.failed + src.failed;
    into.shed <- into.shed + src.shed;
    into.attempts <- into.attempts + src.attempts;
    into.retried <- into.retried + src.retried;
    into.hedged <- into.hedged + src.hedged;
    into.fb_invocations <- into.fb_invocations + src.fb_invocations;
    Sketch.merge_into ~into:into.lat src.lat;
    Sketch.merge_into ~into:into.waits src.waits;
    into.cost <- into.cost +. src.cost;
    if src.first_arrival < into.first_arrival then
      into.first_arrival <- src.first_arrival;
    if src.last_finish > into.last_finish then
      into.last_finish <- src.last_finish;
    into.peak <- into.peak + src.peak;
    into.resident_s <- into.resident_s +. src.resident_s;
    into.evictions <- into.evictions + src.evictions;
    into.apps <- into.apps + src.apps;
    into.events <- into.events + src.events

  let apps t = t.apps
  let events t = t.events

  let summary ~label t : summary =
    let served = t.cold + t.warm + t.shed in
    let primary_starts = t.cold + t.warm in
    let window = t.last_finish -. t.first_arrival in
    { label;
      requests = t.requests;
      served;
      cold = t.cold;
      warm = t.warm;
      fallbacks = t.fallbacks;
      fb_cold = t.fb_cold;
      rejected = t.rejected;
      timed_out = t.timed_out;
      failed = t.failed;
      shed = t.shed;
      cold_fraction =
        (if primary_starts = 0 then 0.0
         else float_of_int t.cold /. float_of_int primary_starts);
      mean_ms = Sketch.mean t.lat;
      p50_ms = Sketch.quantile t.lat ~p:50.0;
      p95_ms = Sketch.quantile t.lat ~p:95.0;
      p99_ms = Sketch.quantile t.lat ~p:99.0;
      max_ms = Sketch.max_seen t.lat;
      mean_wait_ms = Sketch.mean t.waits;
      peak_instances = t.peak;
      resident_instance_s = t.resident_s;
      evictions = t.evictions;
      cost_usd = t.cost;
      attempts = t.attempts;
      retried = t.retried;
      hedged = t.hedged;
      availability =
        (if t.requests = 0 then 1.0
         else float_of_int served /. float_of_int t.requests);
      goodput_per_s =
        (if served = 0 || window <= 0.0 then 0.0
         else float_of_int served /. window);
      retry_amplification =
        (if t.requests = 0 then 1.0
         else
           float_of_int (t.attempts + t.fb_invocations)
           /. float_of_int t.requests) }
end

(* One app, streamed end to end: the router emits each record into the
   accumulator and nothing per-request survives the call. *)
let run_stream ?pricing ?queue cfg trace =
  let st = Stream.create ?pricing cfg in
  let totals = Router.run_with ?queue ~emit:(Stream.observe st) cfg trace in
  Stream.absorb_totals st totals;
  st

let table_header =
  Printf.sprintf
    "  %-26s %6s %5s %5s %4s %4s %4s %4s %4s %6s %8s %8s %8s %5s %10s %6s %10s"
    "" "req" "cold" "warm" "fb" "rej" "t/o" "fail" "shed" "cold%" "p50ms"
    "p95ms" "p99ms" "peak" "resident-s" "avail" "cost $"

let table_row s =
  Printf.sprintf
    "  %-26s %6d %5d %5d %4d %4d %4d %4d %4d %5.1f%% %8.1f %8.1f %8.1f %5d \
     %10.0f %5.1f%% %10.6f"
    s.label s.requests s.cold s.warm s.fallbacks s.rejected s.timed_out
    s.failed s.shed (100.0 *. s.cold_fraction) s.p50_ms s.p95_ms s.p99_ms
    s.peak_instances s.resident_instance_s
    (100.0 *. s.availability) s.cost_usd

let csv_header =
  "label,requests,served,cold,warm,fallbacks,fb_cold,rejected,timed_out,\
   cold_fraction,mean_ms,p50_ms,p95_ms,p99_ms,max_ms,mean_wait_ms,\
   peak_instances,resident_instance_s,evictions,cost_usd,\
   failed,shed,attempts,retried,hedged,availability,goodput_per_s,\
   retry_amplification"

let csv_row s =
  Printf.sprintf
    "%s,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%d,%.3f,%d,\
     %.9f,%d,%d,%d,%d,%d,%.6f,%.6f,%.6f"
    s.label s.requests s.served s.cold s.warm s.fallbacks s.fb_cold s.rejected
    s.timed_out s.cold_fraction s.mean_ms s.p50_ms s.p95_ms s.p99_ms s.max_ms
    s.mean_wait_ms s.peak_instances s.resident_instance_s s.evictions
    s.cost_usd s.failed s.shed s.attempts s.retried s.hedged s.availability
    s.goodput_per_s s.retry_amplification
