(** Sharded fleet engine: replay many independent apps (function/tenant
    workloads) across the [Parallel.Pool] work pool and merge their
    streaming accumulators into per-group reports.

    Determinism contract: each app's simulation is self-contained (its
    trace is materialized inside whichever shard runs it, from the app's
    own seeded thunk), and the reduction folds per-app accumulators in
    global app order — never per-shard completion order. Shard assignment
    decides only where an app runs, so the merged report is bit-identical
    at any shard count and any pool size. This is what CI byte-diffs for
    the trace-replay CSV at [--shards 1|4] x [--jobs 1|4]. *)

(** One (label, router config) pair replayed over an app's trace. Variants
    of one app share the materialized trace. *)
type variant = {
  v_group : string;  (** aggregation key, e.g. ["fixed-ttl/trimmed"] *)
  v_cfg : Router.config;
}

type app = {
  app_id : int;
  app_trace : unit -> Platform.Trace.t;
      (** called inside the owning shard; must be deterministic *)
  app_variants : variant list;
}

(** Per-group merged report. [peak_instances] in the summary is the sum of
    per-app peaks (apps own independent pools). *)
type group = {
  g_label : string;
  g_apps : int;       (** app runs folded into this group *)
  g_requests : int;
  g_summary : Report.summary;
}

(** Process-wide default shard count, settable by the CLI's [--shards].
    [0] (the initial value) follows [Parallel.Pool.jobs ()]. *)
val default_shards : int ref

(** Effective shard count: [?shards] if given, else the default above.
    @raise Invalid_argument on a non-positive explicit count. *)
val shard_count : ?shards:int -> unit -> int

(** Replay every app under each of its variants and merge per group, in
    the order groups first appear in app order. Work is split into
    contiguous app blocks, one per shard, mapped over the configured pool.
    Feeds the [fleet.sharded.*] metrics family and, when tracing is on,
    one wall-clock span per shard. *)
val run : ?pricing:Platform.Pricing.t -> ?shards:int -> app list -> group list

(** Small-scale record mode: full per-request records of every app, k-way
    merged by (finish time, app id, request) — the merge-by-timestamp
    view the streaming path folds away. Materializes everything; meant for
    tests and small committed CSVs. *)
val run_records :
  (int * Router.config * Platform.Trace.t) list ->
  (int * Router.record) list
