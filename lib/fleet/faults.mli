(** Seeded, deterministic fault injection for the fleet simulator.

    Every draw is a pure hash of [(seed, request, attempt, stream)] — no
    mutable generator state — so fault outcomes are independent of event
    ordering and reproducible from one seed: two runs over the same trace
    see exactly the same init failures, crashes, transient errors, and
    keep-alive churn, regardless of how retries and hedges interleave. The
    only stateful draws are the §7 fallback flags, which deliberately
    replay the original coin-flip sequence ([fallback_flags]) so that
    zero-fault runs stay bit-identical to the pre-fault simulator. *)

type config = {
  seed : int;
  init_failure_rate : float;
      (** probability a {e cold} start's Function Initialization fails;
          the instance dies and the init duration is still billed *)
  crash_rate : float;
      (** probability an invocation crashes mid-execution (uniform crash
          point over the execution window); the instance dies *)
  transient_error_rate : float;
      (** probability an invocation runs to completion but returns an
          error (billed in full); the instance survives *)
  churn_rate : float;
      (** probability the platform reclaims an instance immediately on
          release instead of granting its keep-alive (applies to both the
          primary and the fallback pool, on independent draw streams) *)
}

(** All rates zero, seed 0: injects nothing. *)
val none : config

(** True iff every rate is zero (the fast path skips all draws). *)
val is_none : config -> bool

(** Raise [Invalid_argument] unless every rate is within [0, 1]. *)
val validate : config -> unit

(** What the plan holds for one service attempt. At most one fault fires
    per attempt; init failure (cold only) shadows crash shadows transient
    error, each on an independent draw stream. *)
type fault =
  | No_fault
  | Init_failure  (** cold starts only *)
  | Crash of { after_fraction : float }
      (** dies after this fraction of Function Execution *)
  | Transient_error

val fault_name : fault -> string

(** The planned fault for attempt [attempt] (0-based) of request [req],
    served cold or warm. *)
val attempt_fault : config -> cold:bool -> req:int -> attempt:int -> fault

(** Keep-alive churn draw for the instance released by attempt [attempt]
    of request [req]; [fb] selects the fallback pool's stream. *)
val churned : config -> fb:bool -> req:int -> attempt:int -> bool

(** Uniform [0, 1) draw for retry backoff jitter (retry index [retry],
    0-based). Defined even under [none] — jitter needs no fault rates. *)
val jitter : config -> req:int -> retry:int -> float

(** The §7 removal-hit coin flips, exactly as the pre-fault router drew
    them: a [Random.State] seeded with [seed], one [float] draw per
    request in arrival order. Returns a lookup by request index. *)
val fallback_flags : seed:int -> rate:float -> n:int -> int -> bool
