(** Bridges between the single-instance platform simulator and the fleet:
    derive a [Router.deployment_profile] from measured [Lambda_sim] records
    so fleet runs are driven by the same numbers the paper's figures use. *)

(** Profile from a measured {e cold} invocation record: execution and
    Function-Initialization times, platform-side setup (instance init +
    image transmission — zero on a warm record, so pass the cold one), and
    the peak footprint. *)
val profile_of_record :
  Platform.Lambda_sim.record -> Router.deployment_profile

(** Measure a deployment (one forced cold start on [Lambda_sim]) and build
    its profile. [params] defaults to [Lambda_sim.default_params]; the event
    is the deployment's first test case when present. *)
val profile_of_deployment :
  ?params:Platform.Lambda_sim.params ->
  Platform.Deployment.t ->
  Router.deployment_profile

(** Derive the lazy fleet model (ARCHITECTURE §14) from measured records of
    a deployment's eager and lazy twins: the returned profile carries the
    lazy cold init (stubs only) and lazy warm exec (all forced); the
    [Router.lazy_profile] carries the deferred init remainder
    ([eager_cold.init - lazy_cold.init]) and the forcing request's first
    touch ([lazy_cold.exec - lazy_warm.exec]), both clamped at zero. *)
val lazy_profile_of_records :
  eager_cold:Platform.Lambda_sim.record ->
  lazy_cold:Platform.Lambda_sim.record ->
  lazy_warm:Platform.Lambda_sim.record ->
  preload:bool ->
  Router.deployment_profile * Router.lazy_profile

(** [fallback ~rate ~seed ~original ?policy ()] — the §7 re-invocation
    setup: [rate] of requests hit removed code and re-invoke the [original]
    profile on its own pool ([policy] defaults to a 600 s fixed TTL), paying
    a 50 ms wrapper setup (§8.7). *)
val fallback :
  rate:float ->
  seed:int ->
  original:Router.deployment_profile ->
  ?policy:Pool.policy ->
  unit ->
  Router.fallback
