(** Bridges between the single-instance platform simulator and the fleet:
    derive a [Router.deployment_profile] from measured [Lambda_sim] records
    so fleet runs are driven by the same numbers the paper's figures use. *)

(** Profile from a measured {e cold} invocation record: execution and
    Function-Initialization times, platform-side setup (instance init +
    image transmission — zero on a warm record, so pass the cold one), and
    the peak footprint. *)
val profile_of_record :
  Platform.Lambda_sim.record -> Router.deployment_profile

(** Measure a deployment (one forced cold start on [Lambda_sim]) and build
    its profile. [params] defaults to [Lambda_sim.default_params]; the event
    is the deployment's first test case when present. *)
val profile_of_deployment :
  ?params:Platform.Lambda_sim.params ->
  Platform.Deployment.t ->
  Router.deployment_profile

(** [fallback ~rate ~seed ~original ?policy ()] — the §7 re-invocation
    setup: [rate] of requests hit removed code and re-invoke the [original]
    profile on its own pool ([policy] defaults to a 600 s fixed TTL), paying
    a 50 ms wrapper setup (§8.7). *)
val fallback :
  rate:float ->
  seed:int ->
  original:Router.deployment_profile ->
  ?policy:Pool.policy ->
  unit ->
  Router.fallback
