(** Deterministic discrete-event queue ordered by
    (virtual time, rank, insertion sequence).

    Ties on time are broken first by [rank] — a caller-assigned event class,
    e.g. "completions before arrivals before expiries" — and then by
    insertion order (FIFO), so two runs over the same schedule pop events in
    exactly the same order. This stability is what makes the fleet simulator
    reproducible and is property-tested in [test_fleet.ml].

    Two backends implement the same contract with bit-identical pop order:
    a binary min-heap (default) and a calendar queue sized for a known
    horizon, which is O(1) amortised when events are spread densely over
    the horizon — the trace-replay regime. Because the order is identical,
    backend choice can never change simulation output. *)

type 'a t

(** Queue backend. [Calendar] holds [n_buckets] slots of [width] virtual
    seconds each; events land in [floor(time / width)] mod [n_buckets]. *)
type kind =
  | Heap
  | Calendar of { width : float; n_buckets : int }

(** Calendar sized for [expected_events] spread over [horizon_s]
    (~1 event per slot, slot table capped at 2^21). *)
val calendar : horizon_s:float -> expected_events:int -> kind

(** [Calendar] for dense schedules (≥ 4096 events over a finite positive
    horizon), [Heap] otherwise. *)
val auto : horizon_s:float -> expected_events:int -> kind

val kind_name : kind -> string

(** [create ()] is a heap; pass [~kind] to select a backend. *)
val create : ?kind:kind -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push q ~time ?rank x] schedules [x] at virtual time [time]. Among
    events with equal time, lower [rank] pops first (default [0]); equal
    (time, rank) pairs pop in insertion order. *)
val push : 'a t -> time:float -> ?rank:int -> 'a -> unit

(** Earliest scheduled time, if any. *)
val peek_time : 'a t -> float option

(** Remove and return the earliest event as [(time, payload)]. A drained
    queue retains no popped payload except, for the heap backend, the most
    recently popped one (a single recycled filler slot). *)
val pop : 'a t -> (float * 'a) option

(** Pop everything, earliest first (testing convenience). *)
val drain : 'a t -> (float * 'a) list
