(** Deterministic discrete-event queue: a binary min-heap ordered by
    (virtual time, rank, insertion sequence).

    Ties on time are broken first by [rank] — a caller-assigned event class,
    e.g. "completions before arrivals before expiries" — and then by
    insertion order (FIFO), so two runs over the same schedule pop events in
    exactly the same order. This stability is what makes the fleet simulator
    reproducible and is property-tested in [test_fleet.ml]. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push q ~time ?rank x] schedules [x] at virtual time [time]. Among
    events with equal time, lower [rank] pops first (default [0]); equal
    (time, rank) pairs pop in insertion order. *)
val push : 'a t -> time:float -> ?rank:int -> 'a -> unit

(** Earliest scheduled time, if any. *)
val peek_time : 'a t -> float option

(** Remove and return the earliest event as [(time, payload)]. *)
val pop : 'a t -> (float * 'a) option

(** Pop everything, earliest first (testing convenience). *)
val drain : 'a t -> (float * 'a) list
