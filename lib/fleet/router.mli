(** The fleet simulator: a request router dispatching an arrival trace over
    a pool of simulated instances in virtual time.

    Each arrival is served by a warm idle instance when one exists,
    cold-starts a new instance when under the concurrency cap, and otherwise
    waits in a bounded pending queue with a per-request timeout. Requests
    that hit debloated-away code on a λ-trim-optimized deployment re-invoke
    the {e original} image on a separate instance pool (§7's fallback), with
    its own cold/warm dynamics.

    The whole simulation is deterministic: generators are seeded, fallback
    draws are seeded, and the event queue breaks ties stably. *)

type start_kind = Cold | Warm

val start_kind_name : start_kind -> string

type outcome =
  | Served of start_kind
  | Fallback_served of { trimmed : start_kind; original : start_kind }
      (** the request reached a removed attribute on the trimmed instance
          and was re-invoked on a separate original-image instance *)
  | Rejected   (** pending queue full at arrival *)
  | Timed_out  (** queued longer than [pending_timeout_s] *)

type record = {
  req : int;            (** arrival index within the trace *)
  arrival_s : float;
  start_s : float;      (** when an instance was assigned (provisioning
                            starts here on cold) *)
  finish_s : float;
  wait_s : float;       (** queueing delay only *)
  e2e_s : float;        (** finish - arrival; includes cold latency *)
  outcome : outcome;
  billed_ms : float;    (** Eq.-1 billable duration on the primary image *)
  fb_billed_ms : float; (** billable duration on the fallback image, if any *)
}

(** The latency/footprint profile of one deployed image, as measured by
    [Platform.Lambda_sim] (see [Scenario.profile_of_record]). *)
type deployment_profile = {
  exec_s : float;           (** Function Execution *)
  func_init_s : float;      (** Function Initialization — billed on cold *)
  instance_init_s : float;  (** platform setup + image pull — unbilled *)
  memory_mb : float;        (** peak footprint, prices Eq. 1 *)
}

type fallback = {
  fb_rate : float;   (** fraction of requests hitting removed code *)
  fb_seed : int;     (** per-request draws are deterministic in this seed *)
  fb_profile : deployment_profile;  (** the original image *)
  fb_policy : Pool.policy;
  fb_setup_s : float;  (** wrapper overhead before re-invocation (§8.7) *)
}

type config = {
  profile : deployment_profile;
  policy : Pool.policy;
  max_instances : int;        (** concurrency cap; [max_int] = unbounded *)
  max_pending : int;          (** pending-queue bound *)
  pending_timeout_s : float;  (** [infinity] = wait forever *)
  fallback : fallback option;
}

(** Unbounded concurrency, a 1024-deep pending queue, 60 s timeout, no
    fallback. *)
val default_config : profile:deployment_profile -> Pool.policy -> config

type result = {
  records : record list;  (** one per arrival, in arrival order *)
  peak_instances : int;
  resident_instance_s : float;
  evictions : int;
  fb_peak_instances : int;
  fb_resident_instance_s : float;
  events_processed : int;
}

(** Run the trace to completion (the event queue drains fully, so every
    instance is expired and residency accounting is exact). *)
val run : config -> Platform.Trace.t -> result
