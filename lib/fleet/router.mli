(** The fleet simulator: a request router dispatching an arrival trace over
    a pool of simulated instances in virtual time.

    Each arrival is served by a warm idle instance when one exists,
    cold-starts a new instance when under the concurrency cap, and otherwise
    waits in a bounded pending queue with a per-request timeout. Requests
    that hit debloated-away code on a λ-trim-optimized deployment re-invoke
    the {e original} image on a separate instance pool (§7's fallback), with
    its own cold/warm dynamics.

    A seeded fault layer ({!Faults}) can inject cold-start init failures,
    mid-execution crashes, transient invocation errors, and keep-alive
    churn; a {!Resilience} policy reacts with bounded retries (exponential
    backoff + full jitter), a per-request timeout budget, cold-start
    hedging, and a circuit breaker that sheds a regressed trimmed
    deployment to the original image.

    The whole simulation is deterministic: generators are seeded, the §7
    and fault draws form a per-request plan reproducible from their seeds,
    and the event queue breaks ties stably. With [Faults.none] and
    [Resilience.none] the simulator behaves bit-identically to the
    fault-free router. *)

type start_kind = Cold | Warm

val start_kind_name : start_kind -> string

(** How a request's last attempt died. *)
type failure =
  | Init_failed  (** cold-start Function Initialization failed *)
  | Crashed      (** the instance crashed mid-execution *)
  | Errored      (** the invocation completed with a transient error *)

val failure_name : failure -> string

type outcome =
  | Served of start_kind
  | Fallback_served of { trimmed : start_kind; original : start_kind }
      (** the request reached a removed attribute on the trimmed instance
          and was re-invoked on a separate original-image instance *)
  | Shed of start_kind
      (** the circuit breaker was open: the request skipped the trimmed
          image and ran directly on the original-image pool *)
  | Rejected   (** pending queue full at arrival *)
  | Timed_out  (** queued longer than [pending_timeout_s] *)
  | Failed of failure
      (** all attempts failed (retries exhausted or timeout budget spent) *)

type record = {
  req : int;            (** arrival index within the trace *)
  arrival_s : float;
  start_s : float;      (** when the {e final} attempt was assigned an
                            instance (provisioning starts here on cold) *)
  finish_s : float;
  wait_s : float;       (** [start_s - arrival_s]: queueing delay; under
                            retries also failed attempts and backoff *)
  e2e_s : float;        (** finish - arrival; includes cold latency *)
  outcome : outcome;
  billed_ms : float;    (** Eq.-1 billable duration on the primary image,
                            summed over {e all} attempts (failed inits and
                            partial crashes are billed) *)
  fb_billed_ms : float; (** billable duration on the fallback image, if any *)
  attempts : int;       (** primary service attempts started, incl. hedge *)
  hedged : bool;        (** a cold-start hedge fired for this request *)
}

(** The latency/footprint profile of one deployed image, as measured by
    [Platform.Lambda_sim] (see [Scenario.profile_of_record]). *)
type deployment_profile = {
  exec_s : float;           (** Function Execution *)
  func_init_s : float;      (** Function Initialization — billed on cold *)
  instance_init_s : float;  (** platform setup + image pull — unbilled *)
  memory_mb : float;        (** peak footprint, prices Eq. 1 *)
}

type fallback = {
  fb_rate : float;   (** fraction of requests hitting removed code *)
  fb_seed : int;     (** per-request draws are deterministic in this seed *)
  fb_profile : deployment_profile;  (** the original image *)
  fb_policy : Pool.policy;
  fb_setup_s : float;  (** wrapper overhead before re-invocation (§8.7) *)
}

(** Lazy-loading model (ARCHITECTURE §14). With a lazy deployment the
    [config.profile] carries the {e measured} lazy costs (stubbed init,
    warm exec); this record carries the deferred remainder. A cold instance
    starts with [lz_deferred_s] of unresolved init; each request forces at
    most [lz_first_touch_s] of what remains, added to its service time and
    billed duration; with [lz_preload] a warm instance resolves pending
    stubs during its keep-alive idle gap (profile-guided preloading), so
    the next warm hit finds that work already done. *)
type lazy_profile = {
  lz_deferred_s : float;
  lz_first_touch_s : float;
  lz_preload : bool;
}

type config = {
  profile : deployment_profile;
  policy : Pool.policy;
  max_instances : int;        (** concurrency cap; [max_int] = unbounded *)
  max_pending : int;          (** pending-queue bound *)
  pending_timeout_s : float;  (** [infinity] = wait forever *)
  fallback : fallback option;
  faults : Faults.config;     (** [Faults.none] = nothing ever goes wrong *)
  resilience : Resilience.policy;  (** [Resilience.none] = failures final *)
  lazy_load : lazy_profile option;  (** [None] = eager deployment *)
}

(** Unbounded concurrency, a 1024-deep pending queue, 60 s timeout, no
    fallback, no faults, no resilience, eager loading. *)
val default_config : profile:deployment_profile -> Pool.policy -> config

(** Pool/engine aggregates of a run, independent of how records were
    consumed. *)
type totals = {
  peak : int;             (** peak live primary instances *)
  resident_s : float;     (** primary-pool residency *)
  evicted : int;          (** incl. crash/churn reclaims *)
  fb_peak : int;
  fb_resident_s : float;
  total_events : int;     (** events the loop processed *)
}

type result = {
  records : record list;  (** one per arrival, in arrival order *)
  peak_instances : int;
  resident_instance_s : float;
  evictions : int;        (** incl. crash/churn reclaims *)
  fb_peak_instances : int;
  fb_resident_instance_s : float;
  events_processed : int;
}

(** Event-queue backend {!run} and {!run_with} select when [?queue] is
    omitted: a calendar queue for dense traces, a heap otherwise. Both pop
    in the same order, so the choice never changes simulation output. *)
val queue_kind_for : Platform.Trace.t -> Events.kind

(** Streaming mode: run the trace to completion, handing each finalized
    {!record} to [emit] the moment its outcome is sealed (in virtual-time
    finalization order, {e not} arrival order) without retaining it. Every
    arrival is emitted exactly once. This is the allocation-light hot path
    the sharded fleet engine drives; [Report.Stream.observe] is the usual
    consumer.

    Raises [Invalid_argument] if the fault or resilience config is out of
    range, or if a breaker is configured without a fallback. *)
val run_with :
  ?queue:Events.kind ->
  emit:(record -> unit) ->
  config ->
  Platform.Trace.t ->
  totals

(** Record mode: {!run_with} collecting records into a pre-sized array
    indexed by arrival, returned in arrival order. Same validation
    behaviour as {!run_with}. *)
val run : ?queue:Events.kind -> config -> Platform.Trace.t -> result
