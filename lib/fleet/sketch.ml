(* Fixed-size streaming moment + quantile accumulator.

   Values land in log-spaced buckets with growth factor [gamma]: bucket 0
   absorbs everything below [min_value] (sub-microsecond latencies report as
   0), the last bucket absorbs everything past [max_value] (its quantile
   estimate is clamped to the exact running max). A quantile answer is the
   geometric midpoint of the bucket holding the requested order statistic,
   so its relative error is bounded by [sqrt gamma - 1] (< 5% at gamma =
   1.1) — see [rel_error]. Counts are ints, so merging two sketches is
   exact and order-independent; only the running [sum] is float and needs a
   canonical merge order for bit-reproducibility. *)

let gamma = 1.1
let min_value = 1e-3
let max_value = 1e8
let log_gamma = log gamma

(* bucket 0 = [0, min_value); bucket i >= 1 covers
   [min_value * gamma^(i-1), min_value * gamma^i); the last bucket is open *)
let n_buckets =
  2 + int_of_float (Float.ceil (log (max_value /. min_value) /. log_gamma))

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

let create () =
  { counts = Array.make n_buckets 0;
    n = 0;
    sum = 0.0;
    mn = infinity;
    mx = neg_infinity }

let bucket_of v =
  if v < min_value then 0
  else
    let i = 1 + int_of_float (Float.floor (log (v /. min_value) /. log_gamma)) in
    if i >= n_buckets then n_buckets - 1 else i

(* NaN observations are dropped, not coerced: a NaN counted as 0.0 poisons
   min/mean/sum (the Platform.Metrics NaN policy). Sketches fill on worker
   domains, so the shared counter is updated under a lock. *)
let nan_lock = Mutex.create ()
let c_nan_dropped = Obs.Metrics.counter Obs.Metrics.global "fleet.sketch.nan_dropped"

let add t v =
  if Float.is_nan v then begin
    Mutex.lock nan_lock;
    Obs.Metrics.incr c_nan_dropped;
    Mutex.unlock nan_lock
  end
  else begin
    let v = Float.max 0.0 v in
    t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. v;
    if v < t.mn then t.mn <- v;
    if v > t.mx then t.mx <- v
  end

let count t = t.n
let sum t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
let min_seen t = if t.n = 0 then 0.0 else t.mn
let max_seen t = if t.n = 0 then 0.0 else t.mx

let merge_into ~into src =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.n <- into.n + src.n;
  into.sum <- into.sum +. src.sum;
  if src.mn < into.mn then into.mn <- src.mn;
  if src.mx > into.mx then into.mx <- src.mx

let representative t i =
  if i = 0 then 0.0
  else if i = n_buckets - 1 then t.mx
  else
    let lo = min_value *. (gamma ** float_of_int (i - 1)) in
    let r = lo *. sqrt gamma in
    (* never report outside the observed range *)
    Float.min t.mx (Float.max t.mn r)

(* value of the k-th order statistic (0-based), by bucket walk *)
let value_at t k =
  let rec go i cum =
    if i >= n_buckets then t.mx
    else
      let cum = cum + t.counts.(i) in
      if cum > k then representative t i else go (i + 1) cum
  in
  go 0 0

(* Same interpolating-rank definition as [Platform.Metrics.percentile]:
   rank = p/100 * (n-1), linear between the two adjacent order stats. *)
let quantile t ~p =
  if t.n = 0 then 0.0
  else
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (t.n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then value_at t lo
    else
      let frac = rank -. float_of_int lo in
      let vlo = value_at t lo and vhi = value_at t hi in
      vlo +. ((vhi -. vlo) *. frac)

let rel_error = sqrt gamma -. 1.0
let abs_error = min_value
