(* Instance pool: lifecycle, warm selection, and the three eviction
   policies. Selection scans the live table — fleets are tens to a few
   thousand instances, so O(n) scans with deterministic id tie-breaks beat
   the bookkeeping cost of an indexed structure at this scale. *)

type policy =
  | Fixed_ttl of { keep_alive_s : float }
  | Lru of { keep_alive_s : float; max_idle : int }
  | Adaptive of { min_s : float; max_s : float; percentile : float }

let policy_name = function
  | Fixed_ttl { keep_alive_s } -> Printf.sprintf "fixed-ttl-%gs" keep_alive_s
  | Lru { keep_alive_s; max_idle } ->
    Printf.sprintf "lru-%gs-cap%d" keep_alive_s max_idle
  | Adaptive { percentile; _ } -> Printf.sprintf "adaptive-p%g" percentile

type state = Idle | Busy

type instance = {
  id : int;
  born_s : float;
  mutable state : state;
  mutable busy_until : float;
  mutable idle_since : float;
  mutable expires_at : float;
  mutable generation : int;
  mutable pending_s : float;
      (* deferred lazy-init work this instance has not resolved yet
         (ARCHITECTURE §14); 0 for eager deployments *)
}

(* Idle-gap histogram for the adaptive policy: 1 s buckets, capped at one
   hour (gaps beyond that land in the last bucket — by then the clamp to
   [max_s] dominates anyway). *)
module Histogram = struct
  type t = {
    buckets : int array;
    mutable total : int;
  }

  let bucket_count = 3600

  let create () = { buckets = Array.make bucket_count 0; total = 0 }

  let observe h gap_s =
    let i = min (bucket_count - 1) (max 0 (int_of_float gap_s)) in
    h.buckets.(i) <- h.buckets.(i) + 1;
    h.total <- h.total + 1

  (* Upper edge of the bucket containing the p-th percentile observation. *)
  let percentile h p =
    if h.total = 0 then 0.0
    else begin
      let threshold =
        int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.total))
      in
      let threshold = max 1 threshold in
      let seen = ref 0 and result = ref (float_of_int bucket_count) in
      (try
         for i = 0 to bucket_count - 1 do
           seen := !seen + h.buckets.(i);
           if !seen >= threshold then begin
             result := float_of_int (i + 1);
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end
end

type t = {
  policy : policy;
  live : (int, instance) Hashtbl.t;
  mutable next_id : int;
  mutable peak : int;
  mutable evicted : int;
  mutable resident : float;
  hist : Histogram.t;
  mutable observations : int;
  mutable preloaded : float;
      (* total seconds of pending lazy-init work resolved during keep-alive
         idle time (see [preload_idle]) *)
  mutable idle_mru : (instance * float) list;
      (* warm-selection fast path for Fixed_ttl/Adaptive: one (instance,
         idle_since stamp) entry per idle period, most recent first.
         Release times are nondecreasing, so pushing keeps the list sorted
         by (idle_since desc, id asc) — the head valid entry is exactly
         what the O(live) [pick] scan would choose. Entries go stale in
         place (re-acquired, evicted, expired) and are dropped lazily on
         pop. Unused by [Lru], whose eviction scan needs the full table
         anyway. *)
}

let create policy =
  { policy;
    live = Hashtbl.create 64;
    next_id = 0;
    peak = 0;
    evicted = 0;
    resident = 0.0;
    hist = Histogram.create ();
    observations = 0;
    preloaded = 0.0;
    idle_mru = [] }

let live_count t = Hashtbl.length t.live
let peak_live t = t.peak
let evictions t = t.evicted
let resident_s t = t.resident

(* Warm-up threshold before the adaptive histogram is trusted. *)
let min_observations = 10

let current_keep_alive_s t =
  match t.policy with
  | Fixed_ttl { keep_alive_s } | Lru { keep_alive_s; _ } -> keep_alive_s
  | Adaptive { min_s; max_s; percentile } ->
    if t.observations < min_observations then max_s
    else
      let p = Histogram.percentile t.hist percentile in
      Float.min max_s (Float.max min_s (p *. 1.1))

let fold_live t f init =
  Hashtbl.fold (fun _ inst acc -> f acc inst) t.live init

(* Deterministic arg-best over live instances: [better a b] decides whether
   [a] beats [b]; exact ties fall back to the smaller id. *)
let pick t ~pred ~better =
  fold_live t
    (fun best inst ->
       if not (pred inst) then best
       else
         match best with
         | None -> Some inst
         | Some b ->
           if better inst b then Some inst
           else if better b inst then best
           else if inst.id < b.id then Some inst
           else best)
    None

(* Insert an idle entry keeping the (idle_since desc, id asc) order: the
   new stamp is >= every stamped entry, so it belongs at the front, behind
   any same-stamp entries with smaller ids (the leading run is almost
   always empty — equal release instants are rare). *)
let push_idle t inst =
  let stamp = inst.idle_since in
  let rec ins = function
    | ((h, hs) :: rest) as l ->
      if hs = stamp && h.id < inst.id then (h, hs) :: ins rest
      else (inst, stamp) :: l
    | [] -> [ (inst, stamp) ]
  in
  t.idle_mru <- ins t.idle_mru

(* Head valid entry of the MRU list. A stale entry — re-acquired (stamp
   mismatch or busy), evicted ([evict] poisons [expires_at]), or expired
   ([now] is nondecreasing, so it can never become valid again) — is
   dropped for good. *)
let rec pop_idle t ~now =
  match t.idle_mru with
  | [] -> None
  | (inst, stamp) :: rest ->
    if inst.state = Idle && inst.idle_since = stamp && inst.expires_at >= now
    then begin
      t.idle_mru <- rest;
      Some inst
    end
    else begin
      t.idle_mru <- rest;
      pop_idle t ~now
    end

let acquire t ~now =
  let warm =
    match t.policy with
    | Fixed_ttl _ | Adaptive _ -> pop_idle t ~now
    | Lru _ ->
      pick t
        ~pred:(fun i -> i.state = Idle && i.expires_at >= now)
        ~better:(fun a b -> a.idle_since > b.idle_since)  (* MRU *)
  in
  match warm with
  | None -> None
  | Some inst ->
    (match t.policy with
     | Adaptive _ ->
       Histogram.observe t.hist (now -. inst.idle_since);
       t.observations <- t.observations + 1
     | Fixed_ttl _ | Lru _ -> ());
    inst.state <- Busy;
    inst.generation <- inst.generation + 1;
    Some inst

let spawn t ~now =
  let inst =
    { id = t.next_id;
      born_s = now;
      state = Busy;
      busy_until = now;
      idle_since = now;
      expires_at = infinity;
      generation = 0;
      pending_s = 0.0 }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.live inst.id inst;
  t.peak <- max t.peak (Hashtbl.length t.live);
  inst

let evict t inst ~now =
  Hashtbl.remove t.live inst.id;
  (* ids are never reused, so poisoning the expiry is enough to invalidate
     any idle_mru entry still pointing here *)
  inst.expires_at <- neg_infinity;
  t.evicted <- t.evicted + 1;
  t.resident <- t.resident +. (now -. inst.born_s)

let release t inst ~now =
  inst.state <- Idle;
  inst.idle_since <- now;
  inst.expires_at <- now +. current_keep_alive_s t;
  (match t.policy with
   | Lru { max_idle; _ } ->
     let idle_count =
       fold_live t (fun n i -> if i.state = Idle then n + 1 else n) 0
     in
     if idle_count > max_idle then begin
       match
         pick t
           ~pred:(fun i -> i.state = Idle)
           ~better:(fun a b -> a.idle_since < b.idle_since)  (* LRU *)
       with
       | Some victim -> evict t victim ~now
       | None -> ()
     end
   | Fixed_ttl _ | Adaptive _ -> push_idle t inst);
  inst.expires_at

let reclaim t inst ~now =
  if Hashtbl.mem t.live inst.id then begin
    (* bump the generation so any expiry check already scheduled for this
       instance is recognized as stale *)
    inst.generation <- inst.generation + 1;
    evict t inst ~now
  end

let try_expire t inst ~generation ~now =
  match Hashtbl.find_opt t.live inst.id with
  | Some live
    when live == inst && inst.state = Idle && inst.generation = generation ->
    evict t inst ~now;
    true
  | _ -> false

(* --- lazy-init pending ledger (ARCHITECTURE §14) ------------------------ *)

let set_pending inst s = inst.pending_s <- s
let pending_s inst = inst.pending_s

let consume_pending inst s =
  inst.pending_s <- Float.max 0.0 (inst.pending_s -. s)

(* Profile-driven preloading: a warm instance spends its keep-alive idle
   gap resolving pending stubs in the manifest's preload order, so the
   acquiring request finds (part of) the deferred work already done. Called
   at warm-acquire time, when the just-ended idle gap [now - idle_since] is
   known. *)
let preload_idle t inst ~now =
  let gap = Float.max 0.0 (now -. inst.idle_since) in
  let resolved = Float.min gap inst.pending_s in
  if resolved > 0.0 then begin
    inst.pending_s <- inst.pending_s -. resolved;
    t.preloaded <- t.preloaded +. resolved
  end

let preloaded_s t = t.preloaded

let drain t =
  let survivors = fold_live t (fun acc i -> i :: acc) [] in
  List.iter
    (fun (i : instance) ->
       let until =
         if i.state = Busy then Float.max i.busy_until i.born_s
         else i.expires_at
       in
       evict t i ~now:until)
    survivors
