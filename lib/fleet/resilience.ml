(* Retry/backoff math, the fallback circuit breaker, and the policy record.
   The breaker is a plain state machine over virtual time; its sample window
   is a ring buffer so a long run costs O(window) memory. *)

type retry = {
  max_retries : int;
  base_backoff_s : float;
  max_backoff_s : float;
  full_jitter : bool;
}

let default_retry =
  { max_retries = 3;
    base_backoff_s = 0.2;
    max_backoff_s = 10.0;
    full_jitter = true }

let backoff_s r ~retry_index ~jitter_u =
  let cap =
    Float.min r.max_backoff_s
      (r.base_backoff_s *. Float.of_int (1 lsl min retry_index 30))
  in
  if r.full_jitter then jitter_u *. cap else cap

type hedge = { hedge_delay_s : float }

module Breaker = struct
  type config = {
    error_threshold : float;
    window : int;
    min_samples : int;
    cooldown_s : float;
  }

  let default =
    { error_threshold = 0.5; window = 20; min_samples = 10; cooldown_s = 30.0 }

  let validate c =
    if not (c.error_threshold > 0.0 && c.error_threshold <= 1.0) then
      invalid_arg
        (Printf.sprintf "Breaker: error_threshold must be in (0, 1] (got %g)"
           c.error_threshold);
    if c.window <= 0 then invalid_arg "Breaker: window must be positive";
    if c.min_samples <= 0 || c.min_samples > c.window then
      invalid_arg "Breaker: min_samples must be in [1, window]";
    if not (c.cooldown_s >= 0.0) then
      invalid_arg "Breaker: cooldown_s must be non-negative"

  type internal =
    | St_closed
    | St_open of float  (* half-open at this time *)
    | St_half_open of bool ref  (* probe in flight? *)

  type t = {
    cfg : config;
    obs_track : int;  (* fleet-domain trace track for transition marks *)
    samples : bool array;  (* ring buffer; [true] = removal error *)
    mutable count : int;
    mutable head : int;
    mutable failures : int;
    mutable st : internal;
  }

  let create ?(obs_track = 0) cfg =
    validate cfg;
    { cfg;
      obs_track;
      samples = Array.make cfg.window false;
      count = 0;
      head = 0;
      failures = 0;
      st = St_closed }

  type state = Closed | Open | Half_open

  let state t =
    match t.st with
    | St_closed -> Closed
    | St_open _ -> Open
    | St_half_open _ -> Half_open

  let reset_window t =
    Array.fill t.samples 0 (Array.length t.samples) false;
    t.count <- 0;
    t.head <- 0;
    t.failures <- 0

  (* state transitions are marked on the trace (the breaker's own track in
     the fleet domain) so its behaviour can be read against request lanes *)
  let obs_transition t name ~now =
    Obs.Span.instant (Obs.Span.installed ()) ~domain:Obs.Span.domain_fleet
      ~track:t.obs_track ~cat:"fleet" ~name ~ts_ms:(now *. 1000.0)

  let trip t ~now =
    reset_window t;
    obs_transition t "breaker:open" ~now;
    t.st <- St_open (now +. t.cfg.cooldown_s)

  type admission = Admit | Probe | Shed

  let admit t ~now =
    match t.st with
    | St_closed -> Admit
    | St_open until when now < until -> Shed
    | St_open _ ->
      obs_transition t "breaker:half-open" ~now;
      t.st <- St_half_open (ref true);
      Probe
    | St_half_open probing ->
      if !probing then Shed
      else begin
        probing := true;
        Probe
      end

  let record t ~now ~failed =
    match t.st with
    | St_open _ | St_half_open _ -> ()
    | St_closed ->
      if t.count = t.cfg.window then begin
        (* evict the oldest sample *)
        if t.samples.(t.head) then t.failures <- t.failures - 1
      end
      else t.count <- t.count + 1;
      t.samples.(t.head) <- failed;
      if failed then t.failures <- t.failures + 1;
      t.head <- (t.head + 1) mod t.cfg.window;
      if
        t.count >= t.cfg.min_samples
        && float_of_int t.failures
           >= t.cfg.error_threshold *. float_of_int t.count
      then trip t ~now

  let probe_result t ~now ~failed =
    match t.st with
    | St_closed | St_open _ -> ()
    | St_half_open _ ->
      if failed then trip t ~now
      else begin
        reset_window t;
        obs_transition t "breaker:close" ~now;
        t.st <- St_closed
      end
end

type policy = {
  retry : retry option;
  request_timeout_s : float;
  breaker : Breaker.config option;
  hedge : hedge option;
}

let none =
  { retry = None; request_timeout_s = infinity; breaker = None; hedge = None }

let validate p =
  (match p.retry with
   | None -> ()
   | Some r ->
     if r.max_retries < 0 then
       invalid_arg "Resilience: max_retries must be non-negative";
     if not (r.base_backoff_s >= 0.0) then
       invalid_arg "Resilience: base_backoff_s must be non-negative";
     if not (r.max_backoff_s >= r.base_backoff_s) then
       invalid_arg "Resilience: max_backoff_s must be >= base_backoff_s");
  if not (p.request_timeout_s > 0.0) then
    invalid_arg "Resilience: request_timeout_s must be positive";
  (match p.breaker with
   | None -> ()
   | Some b -> Breaker.validate b);
  match p.hedge with
  | None -> ()
  | Some h ->
    if not (h.hedge_delay_s >= 0.0) then
      invalid_arg "Resilience: hedge_delay_s must be non-negative"
