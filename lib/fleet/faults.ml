(* Stateless fault draws: each uniform variate is splitmix64 applied to a
   mix of (seed, req, attempt, stream tag). Statelessness is the load-bearing
   property — retries and hedges reorder events, and a sequential generator
   would make fault outcomes depend on that order. The §7 fallback flags are
   the one exception: they replay the original sequential coin-flip so the
   zero-fault simulator stays bit-identical to its pre-fault behaviour. *)

type config = {
  seed : int;
  init_failure_rate : float;
  crash_rate : float;
  transient_error_rate : float;
  churn_rate : float;
}

let none =
  { seed = 0;
    init_failure_rate = 0.0;
    crash_rate = 0.0;
    transient_error_rate = 0.0;
    churn_rate = 0.0 }

let is_none c =
  c.init_failure_rate = 0.0 && c.crash_rate = 0.0
  && c.transient_error_rate = 0.0 && c.churn_rate = 0.0

let validate c =
  let check name r =
    if not (r >= 0.0 && r <= 1.0) then
      invalid_arg (Printf.sprintf "Faults: %s must be in [0, 1] (got %g)" name r)
  in
  check "init_failure_rate" c.init_failure_rate;
  check "crash_rate" c.crash_rate;
  check "transient_error_rate" c.transient_error_rate;
  check "churn_rate" c.churn_rate

type fault =
  | No_fault
  | Init_failure
  | Crash of { after_fraction : float }
  | Transient_error

let fault_name = function
  | No_fault -> "none"
  | Init_failure -> "init-failure"
  | Crash _ -> "crash"
  | Transient_error -> "transient-error"

(* --- the hash ------------------------------------------------------------- *)

let splitmix64 z =
  let open Int64 in
  let z = add z 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Independent draw streams, one tag per decision. *)
let tag_init = 1
let tag_crash = 2
let tag_crash_point = 3
let tag_transient = 4
let tag_churn = 5
let tag_fb_churn = 6
let tag_jitter = 7

(* Uniform [0, 1): chain the inputs through splitmix64 and keep 53 bits. *)
let uniform ~seed ~req ~attempt ~tag =
  let mix acc x = splitmix64 (Int64.logxor acc (Int64.of_int x)) in
  let h = mix (mix (mix (splitmix64 (Int64.of_int seed)) req) attempt) tag in
  Int64.to_float (Int64.shift_right_logical h 11) *. (1.0 /. 9007199254740992.0)

let attempt_fault c ~cold ~req ~attempt =
  if is_none c then No_fault
  else
    let u tag = uniform ~seed:c.seed ~req ~attempt ~tag in
    if cold && c.init_failure_rate > 0.0 && u tag_init < c.init_failure_rate
    then Init_failure
    else if c.crash_rate > 0.0 && u tag_crash < c.crash_rate then
      Crash { after_fraction = u tag_crash_point }
    else if
      c.transient_error_rate > 0.0 && u tag_transient < c.transient_error_rate
    then Transient_error
    else No_fault

let churned c ~fb ~req ~attempt =
  c.churn_rate > 0.0
  && uniform ~seed:c.seed ~req ~attempt
       ~tag:(if fb then tag_fb_churn else tag_churn)
     < c.churn_rate

let jitter c ~req ~retry =
  uniform ~seed:c.seed ~req ~attempt:retry ~tag:tag_jitter

(* --- legacy §7 draws ------------------------------------------------------ *)

let fallback_flags ~seed ~rate ~n =
  let rng = Random.State.make [| seed |] in
  let flags = Array.init n (fun _ -> Random.State.float rng 1.0 < rate) in
  fun i -> flags.(i)
