(** Aggregation of a fleet run into the numbers the experiments plot:
    cold/warm mix, latency percentiles, concurrency, residency, total
    Eq.-1 cost, and the resilience picture — availability, goodput, and
    retry amplification under injected faults. *)

type summary = {
  label : string;
  requests : int;
  served : int;        (** completed: primary, fallback, or breaker-shed *)
  cold : int;          (** cold starts on the primary image (final attempt) *)
  warm : int;
  fallbacks : int;     (** requests that re-invoked the original image *)
  fb_cold : int;       (** cold starts among original-image invocations
                           (fallback re-invocations and breaker sheds) *)
  rejected : int;
  timed_out : int;
  failed : int;        (** all attempts failed — retries/budget exhausted *)
  shed : int;          (** breaker-open requests routed to the original *)
  cold_fraction : float;   (** of primary starts (cold + warm) *)
  mean_ms : float;         (** e2e over served requests *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  mean_wait_ms : float;    (** delay before the final attempt began *)
  peak_instances : int;
  resident_instance_s : float;  (** primary + fallback pools *)
  evictions : int;
  cost_usd : float;  (** Eq. 1 over all billed durations, both images,
                         including failed/hedged/retried attempts *)
  attempts : int;    (** primary service attempts, incl. hedges *)
  retried : int;     (** requests that took more than one attempt *)
  hedged : int;      (** requests whose cold-start hedge fired *)
  availability : float;      (** served / requests; 1 on the empty trace *)
  goodput_per_s : float;     (** served per second of makespan *)
  retry_amplification : float;
      (** (primary attempts + original-image invocations) / requests;
          exactly 1 with no faults, retries, or fallback *)
}

(** Price and summarize a run. [pricing] defaults to AWS. *)
val summarize :
  ?pricing:Platform.Pricing.t ->
  label:string ->
  Router.config ->
  Router.result ->
  summary

(** Fixed-width table row plus a matching header line. *)
val table_header : string

val table_row : summary -> string

(** CSV column names (no trailing newline). *)
val csv_header : string

val csv_row : summary -> string
