(** Aggregation of a fleet run into the numbers the experiments plot:
    cold/warm mix, latency percentiles, concurrency, residency, total
    Eq.-1 cost, and the resilience picture — availability, goodput, and
    retry amplification under injected faults. *)

type summary = {
  label : string;
  requests : int;
  served : int;        (** completed: primary, fallback, or breaker-shed *)
  cold : int;          (** cold starts on the primary image (final attempt) *)
  warm : int;
  fallbacks : int;     (** requests that re-invoked the original image *)
  fb_cold : int;       (** cold starts among original-image invocations
                           (fallback re-invocations and breaker sheds) *)
  rejected : int;
  timed_out : int;
  failed : int;        (** all attempts failed — retries/budget exhausted *)
  shed : int;          (** breaker-open requests routed to the original *)
  cold_fraction : float;   (** of primary starts (cold + warm) *)
  mean_ms : float;         (** e2e over served requests *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  mean_wait_ms : float;    (** delay before the final attempt began *)
  peak_instances : int;
  resident_instance_s : float;  (** primary + fallback pools *)
  evictions : int;
  cost_usd : float;  (** Eq. 1 over all billed durations, both images,
                         including failed/hedged/retried attempts *)
  attempts : int;    (** primary service attempts, incl. hedges *)
  retried : int;     (** requests that took more than one attempt *)
  hedged : int;      (** requests whose cold-start hedge fired *)
  availability : float;      (** served / requests; 1 on the empty trace *)
  goodput_per_s : float;     (** served per second of makespan *)
  retry_amplification : float;
      (** (primary attempts + original-image invocations) / requests;
          exactly 1 with no faults, retries, or fallback *)
}

(** Price and summarize a run. [pricing] defaults to AWS. *)
val summarize :
  ?pricing:Platform.Pricing.t ->
  label:string ->
  Router.config ->
  Router.result ->
  summary

(** Streaming aggregation: fold records away as the router emits them —
    integer counters, running sums, and fixed-size {!Sketch}es instead of a
    per-request record list. All {!summary} fields are computed by the
    same formulas as {!summarize}; only p50/p95/p99 become approximate,
    within [Sketch.rel_error] (≈ 4.9% relative) of the exact percentiles.
    Accumulators merge exactly (integer bucket counts); merge in a
    canonical order so float sums are bit-reproducible at any shard
    layout. *)
module Stream : sig
  type t

  (** Pricing and memory footprints are captured from [cfg]; all
      accumulators merged together must share them. *)
  val create : ?pricing:Platform.Pricing.t -> Router.config -> t

  val observe : t -> Router.record -> unit

  (** Fold one finished run's engine totals in (peaks sum across apps —
      each app owns an independent pool). *)
  val absorb_totals : t -> Router.totals -> unit

  (** Fold [src] into [into]; [src] is unchanged. *)
  val merge_into : into:t -> t -> unit

  (** Number of app runs absorbed. *)
  val apps : t -> int

  (** Router events processed across absorbed runs. *)
  val events : t -> int

  val summary : label:string -> t -> summary
end

(** Run one trace in streaming mode: records are observed as emitted and
    never retained. Engine totals are already absorbed. *)
val run_stream :
  ?pricing:Platform.Pricing.t ->
  ?queue:Events.kind ->
  Router.config ->
  Platform.Trace.t ->
  Stream.t

(** Fixed-width table row plus a matching header line. *)
val table_header : string

val table_row : summary -> string

(** CSV column names (no trailing newline). *)
val csv_header : string

val csv_row : summary -> string
