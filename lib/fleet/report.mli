(** Aggregation of a fleet run into the numbers the experiments plot:
    cold/warm mix, latency percentiles, concurrency, residency, and total
    Eq.-1 cost. *)

type summary = {
  label : string;
  requests : int;
  served : int;        (** completed, with or without fallback *)
  cold : int;          (** cold starts on the primary image *)
  warm : int;
  fallbacks : int;     (** requests that re-invoked the original image *)
  fb_cold : int;       (** cold starts among those re-invocations *)
  rejected : int;
  timed_out : int;
  cold_fraction : float;   (** of served primary starts *)
  mean_ms : float;         (** e2e over served requests *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  mean_wait_ms : float;    (** queueing delay over served requests *)
  peak_instances : int;
  resident_instance_s : float;  (** primary + fallback pools *)
  evictions : int;
  cost_usd : float;  (** Eq. 1 over all billed durations, both images *)
}

(** Price and summarize a run. [pricing] defaults to AWS. *)
val summarize :
  ?pricing:Platform.Pricing.t ->
  label:string ->
  Router.config ->
  Router.result ->
  summary

(** Fixed-width table row plus a matching header line. *)
val table_header : string

val table_row : summary -> string

(** CSV column names (no trailing newline). *)
val csv_header : string

val csv_row : summary -> string
