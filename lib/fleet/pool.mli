(** Warm-instance pool with pluggable keep-alive / eviction policies.

    The pool owns instance lifecycle and residency accounting; the router
    decides *when* to acquire, spawn, and expire (it drives virtual time).
    Warm selection is most-recently-used — the instance idle for the
    shortest time — which both matches observed FaaS platform behaviour and
    lets surplus instances age out. All choices are deterministic (ties
    broken by instance id). *)

type policy =
  | Fixed_ttl of { keep_alive_s : float }
      (** The paper's baseline: an idle instance is evicted a fixed
          [keep_alive_s] after its last request completes. *)
  | Lru of { keep_alive_s : float; max_idle : int }
      (** Capacity-capped warm pool: same TTL, but at most [max_idle]
          instances may sit idle; releasing one more immediately evicts the
          least-recently-used (longest-idle) instance. *)
  | Adaptive of { min_s : float; max_s : float; percentile : float }
      (** Histogram-based keep-alive in the spirit of Serverless in the
          Wild (Shahrad et al., ATC'20): observed idle gaps (completion to
          next reuse) feed a 1-second-bucketed histogram, and the TTL is the
          [percentile] of that histogram plus a 10% margin, clamped to
          [min_s, max_s]. Until enough gaps are observed the pool keeps the
          conservative [max_s]. *)

val policy_name : policy -> string

type state = Idle | Busy

type instance = {
  id : int;
  born_s : float;
  mutable state : state;
  mutable busy_until : float;
  mutable idle_since : float;
  mutable expires_at : float;
  mutable generation : int;
      (** bumped on every acquire so stale expiry checks can be ignored *)
  mutable pending_s : float;
      (** deferred lazy-init work not yet resolved on this instance
          (ARCHITECTURE §14); 0 for eager deployments *)
}

type t

val create : policy -> t

(** The MRU idle instance whose keep-alive covers [now], marked [Busy] with
    its generation bumped; [None] if every instance is busy or expired. *)
val acquire : t -> now:float -> instance option

(** Cold-start a fresh instance at [now], already [Busy]. *)
val spawn : t -> now:float -> instance

(** Request completion: the instance turns [Idle] and its policy expiry is
    computed and returned so the caller can schedule an expiry check. Under
    [Lru] this may immediately evict the longest-idle instance. Under
    [Adaptive] an acquire-after-release records the observed idle gap. *)
val release : t -> instance -> now:float -> float

(** Forced eviction regardless of state: a crashed or platform-reclaimed
    (keep-alive churn) instance leaves the pool immediately, counting as an
    eviction and charging residency up to [now]. Safe to call on an already
    evicted instance (no-op); any scheduled expiry check becomes stale. *)
val reclaim : t -> instance -> now:float -> unit

(** Expiry check: evicts and returns [true] iff the instance is still live,
    still idle, and [generation] matches (it was not reused since the check
    was scheduled). *)
val try_expire : t -> instance -> generation:int -> now:float -> bool

val live_count : t -> int
val peak_live : t -> int
val evictions : t -> int

(** Instance-seconds (born to eviction) accumulated by evicted instances;
    call [drain] to charge and evict survivors at their expiry time. *)
val resident_s : t -> float

val drain : t -> unit

(** The TTL the policy would hand out right now (adaptive introspection). *)
val current_keep_alive_s : t -> float

(** {1 Lazy-init pending ledger (ARCHITECTURE §14)}

    Lazy deployments defer part of Function Initialization to first touch.
    The router records the deferred amount on each cold instance with
    {!set_pending}; requests consume it as stubs force, and — with
    profile-driven preloading on — a warm instance resolves pending stubs
    during its keep-alive idle gap. *)

val set_pending : instance -> float -> unit
val pending_s : instance -> float

(** Subtract resolved work, clamping at zero. *)
val consume_pending : instance -> float -> unit

(** Resolve up to the just-ended idle gap [now - idle_since] worth of
    pending work; call at warm-acquire time. Accounted in {!preloaded_s}. *)
val preload_idle : t -> instance -> now:float -> unit

(** Total seconds of deferred init resolved during idle time. *)
val preloaded_s : t -> float
