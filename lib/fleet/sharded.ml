(* Sharded fleet engine: replay many independent apps (function/tenant
   workloads) across the [Parallel.Pool] work pool and merge their
   streaming accumulators into per-group reports.

   Determinism contract (the one CI byte-diffs):
   - Each app is a self-contained simulation: its trace is materialized
     inside whichever shard runs it from the app's own thunk (seeded by
     the scenario, not by shard layout), and the router/pool stack is
     deterministic per app. Shard assignment therefore decides only
     *where* an app runs, never what it computes.
   - The reduction folds per-app accumulators in global (app list) order,
     not per-shard completion order. Integer counters and sketch buckets
     merge commutatively anyway; the canonical fold order is what makes
     the float sums (cost, residency) bit-identical at any [--shards] and
     [--jobs] combination.

   Shards are coarse work units (contiguous blocks of the app list), so a
   1M-request replay schedules a handful of pool tasks, not thousands. *)

type variant = {
  v_group : string;
  v_cfg : Router.config;
}

type app = {
  app_id : int;
  app_trace : unit -> Platform.Trace.t;
  app_variants : variant list;
}

type group = {
  g_label : string;
  g_apps : int;
  g_requests : int;
  g_summary : Report.summary;
}

let default_shards = ref 0

let shard_count ?shards () =
  match shards with
  | Some s when s >= 1 -> s
  | Some s -> invalid_arg (Printf.sprintf "Sharded.run: shards = %d" s)
  | None -> if !default_shards >= 1 then !default_shards else Parallel.Pool.jobs ()

(* fleet.sharded.* instruments are incremented from worker domains, so all
   updates go through one lock (Obs.Metrics is not internally locked) *)
let m_lock = Mutex.create ()
let m_runs = Obs.Metrics.counter Obs.Metrics.global "fleet.sharded.runs"
let m_apps = Obs.Metrics.counter Obs.Metrics.global "fleet.sharded.apps"
let m_requests = Obs.Metrics.counter Obs.Metrics.global "fleet.sharded.requests"
let m_events = Obs.Metrics.counter Obs.Metrics.global "fleet.sharded.events"

let m_shard_wall =
  Obs.Metrics.histogram Obs.Metrics.global "fleet.sharded.shard_wall_ms"

(* split [apps] into [shards] contiguous blocks (sizes differing by at most
   one), each tagged with the global index of its first app *)
let partition ~shards apps =
  let n = List.length apps in
  let base = n / shards and extra = n mod shards in
  let rec take k xs =
    if k = 0 then ([], xs)
    else
      match xs with
      | [] -> ([], [])
      | x :: rest ->
        let taken, left = take (k - 1) rest in
        (x :: taken, left)
  in
  let rec go i start xs acc =
    if i >= shards then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      let block, rest = take size xs in
      go (i + 1) (start + size) rest ((i, start, block) :: acc)
  in
  go 0 0 apps []

(* run one shard: every app materializes its trace once and replays it
   under each variant; results carry the app's global position so the
   reducer can fold them in canonical order *)
let run_shard ?pricing ~shard_idx (start, block) =
  let t0 = Obs.Span.wall_ms () in
  let sink = Obs.Span.installed () in
  let traced = Obs.Span.enabled sink in
  let sp =
    if traced then
      Obs.Span.begin_ sink ~domain:Obs.Span.domain_wall
        ~track:(Parallel.Pool.obs_wall_track ())
        ~cat:"fleet"
        ~name:(Printf.sprintf "shard:%d" shard_idx)
        ~ts_ms:t0
    else Obs.Span.none
  in
  let requests = ref 0 and events = ref 0 in
  let out =
    List.mapi
      (fun off app ->
         let trace = app.app_trace () in
         requests := !requests + Platform.Trace.length trace;
         let streams =
           List.map
             (fun v ->
                let st = Report.run_stream ?pricing v.v_cfg trace in
                (v.v_group, st))
             app.app_variants
         in
         List.iter
           (fun (_, st) -> events := !events + Report.Stream.events st)
           streams;
         (start + off, streams))
      block
  in
  let t1 = Obs.Span.wall_ms () in
  Mutex.lock m_lock;
  Obs.Metrics.incr m_apps ~by:(List.length block);
  Obs.Metrics.incr m_requests ~by:!requests;
  Obs.Metrics.incr m_events ~by:!events;
  Obs.Metrics.observe m_shard_wall (t1 -. t0);
  Mutex.unlock m_lock;
  if traced then
    Obs.Span.end_ sp
      ~attrs:
        [ ("apps", string_of_int (List.length block));
          ("requests", string_of_int !requests) ]
      ~ts_ms:t1;
  out

let run ?pricing ?shards (apps : app list) : group list =
  if apps = [] then []
  else begin
    let shards = min (shard_count ?shards ()) (List.length apps) in
    Mutex.lock m_lock;
    Obs.Metrics.incr m_runs;
    Mutex.unlock m_lock;
    let parts = partition ~shards apps in
    let results =
      Parallel.Pool.map_default
        (fun (i, start, block) -> run_shard ?pricing ~shard_idx:i (start, block))
        parts
    in
    (* canonical fold: per-app accumulators in global app order, so the
       merged float sums cannot depend on the shard layout *)
    let per_app =
      List.concat results
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    let order : string list ref = ref [] in
    let tbl : (string, Report.Stream.t) Hashtbl.t = Hashtbl.create 8 in
    let apps_per_group : (string, int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (_, streams) ->
         List.iter
           (fun (g, st) ->
              (match Hashtbl.find_opt tbl g with
               | Some acc -> Report.Stream.merge_into ~into:acc st
               | None ->
                 order := g :: !order;
                 Hashtbl.replace tbl g st);
              Hashtbl.replace apps_per_group g
                (1 + Option.value ~default:0 (Hashtbl.find_opt apps_per_group g)))
           streams)
      per_app;
    List.rev_map
      (fun g ->
         let st = Hashtbl.find tbl g in
         let s = Report.Stream.summary ~label:g st in
         { g_label = g;
           g_apps = Hashtbl.find apps_per_group g;
           g_requests = s.Report.requests;
           g_summary = s })
      !order
  end

(* Small-scale record mode: full per-request records of every app, k-way
   merged by (finish time, app, request) — the merge-by-timestamp view the
   streaming path folds away. Meant for tests and small committed CSVs;
   materializes everything. *)
let run_records (apps : (int * Router.config * Platform.Trace.t) list) :
  (int * Router.record) list =
  let per_app =
    Parallel.Pool.map_default
      (fun (app_id, cfg, trace) ->
         let res = Router.run cfg trace in
         List.map (fun r -> (app_id, r)) res.Router.records)
      apps
  in
  let cmp (ida, (a : Router.record)) (idb, (b : Router.record)) =
    let c = Float.compare a.Router.finish_s b.Router.finish_s in
    if c <> 0 then c
    else
      let c = Int.compare ida idb in
      if c <> 0 then c else Int.compare a.Router.req b.Router.req
  in
  List.concat per_app |> List.sort cmp
