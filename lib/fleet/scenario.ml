(* Deriving fleet inputs from platform measurements. *)

let profile_of_record (r : Platform.Lambda_sim.record) :
  Router.deployment_profile =
  { Router.exec_s = r.Platform.Lambda_sim.exec_ms /. 1000.0;
    func_init_s = r.Platform.Lambda_sim.init_ms /. 1000.0;
    instance_init_s =
      (r.Platform.Lambda_sim.instance_init_ms
       +. r.Platform.Lambda_sim.transmission_ms)
      /. 1000.0;
    memory_mb = r.Platform.Lambda_sim.peak_memory_mb }

let profile_of_deployment ?params (d : Platform.Deployment.t) =
  let sim = Platform.Lambda_sim.create ?params d in
  let event =
    match d.Platform.Deployment.test_cases with
    | tc :: _ -> tc.Platform.Deployment.tc_event
    | [] -> "{}"
  in
  let cold, _ = Platform.Lambda_sim.measure_cold_and_warm ~event sim in
  profile_of_record cold

(* Derive the lazy fleet model (ARCHITECTURE §14) from measured records of
   the eager and lazy twins of one deployment. The deployment profile uses
   the lazy cold record's init (stubs only) and the lazy warm record's exec
   (everything already forced); the deferred remainder is the init time the
   stubs moved off the cold path, and the first touch is the extra exec
   time the forcing request pays. *)
let lazy_profile_of_records ~(eager_cold : Platform.Lambda_sim.record)
    ~(lazy_cold : Platform.Lambda_sim.record)
    ~(lazy_warm : Platform.Lambda_sim.record) ~preload :
  Router.deployment_profile * Router.lazy_profile =
  let profile =
    { (profile_of_record lazy_cold) with
      Router.exec_s = lazy_warm.Platform.Lambda_sim.exec_ms /. 1000.0 }
  in
  let lz =
    { Router.lz_deferred_s =
        Float.max 0.0
          ((eager_cold.Platform.Lambda_sim.init_ms
            -. lazy_cold.Platform.Lambda_sim.init_ms)
           /. 1000.0);
      lz_first_touch_s =
        Float.max 0.0
          ((lazy_cold.Platform.Lambda_sim.exec_ms
            -. lazy_warm.Platform.Lambda_sim.exec_ms)
           /. 1000.0);
      lz_preload = preload }
  in
  (profile, lz)

let fallback ~rate ~seed ~original
    ?(policy = Pool.Fixed_ttl { keep_alive_s = 600.0 }) () : Router.fallback =
  { Router.fb_rate = rate;
    fb_seed = seed;
    fb_profile = original;
    fb_policy = policy;
    fb_setup_s = 0.05 }
