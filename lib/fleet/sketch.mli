(** Fixed-size streaming quantile/moment sketch for the fleet's streaming
    aggregation mode.

    Log-spaced buckets (growth factor 1.1, ~250 ints covering 1e-3..1e8)
    give quantiles with relative error at most {!rel_error} (≈ 4.9%) plus
    an absolute floor of {!abs_error} for values under 1e-3; count, sum,
    mean, min and max are exact. Merging adds integer bucket counts, so the
    merged quantiles are independent of merge order; the float [sum] is the
    only merge-order-sensitive field (merge in a canonical order when
    bit-reproducibility matters). *)

type t

val create : unit -> t

(** Record one value. Negative inputs clamp to 0; NaN is dropped (it would
    poison min/mean/sum) and counted in the [Obs.Metrics.global] counter
    [fleet.sketch.nan_dropped]. *)
val add : t -> float -> unit

(** Fold [src] into [into]; [src] is unchanged. *)
val merge_into : into:t -> t -> unit

val count : t -> int
val sum : t -> float

(** Exact moments; all return 0 on an empty sketch. *)
val mean : t -> float

val min_seen : t -> float
val max_seen : t -> float

(** [quantile t ~p] for [p] in [0, 100], interpolating between order
    statistics with the same rank rule as [Platform.Metrics.percentile].
    Error bound: [rel_error * exact + abs_error]. *)
val quantile : t -> p:float -> float

(** Documented accuracy bounds: relative (sqrt gamma - 1) and the absolute
    floor for sub-[1e-3] values. *)
val rel_error : float

val abs_error : float
