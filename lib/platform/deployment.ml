(* A deployable serverless application: the image (a virtual filesystem with
   handler code and site-packages), the handler entry point, and the oracle
   test cases that define observable correctness (§5: program inputs).

   Test-case events and contexts are minipy expression sources — the same
   role the paper's JSON oracle files play — evaluated in the application's
   interpreter at invocation time. *)

type test_case = {
  tc_name : string;
  tc_event : string;    (* minipy expression, e.g. {"body": "hi"} *)
  tc_context : string;  (* minipy expression *)
}

type t = {
  name : string;
  vfs : Minipy.Vfs.t;
  handler_file : string;   (* vfs path of the handler module *)
  handler_name : string;   (* function name within that module *)
  test_cases : test_case list;
}

let make ~name ~vfs ~handler_file ~handler_name ~test_cases =
  { name; vfs; handler_file; handler_name; test_cases }

let default_context = "{\"function_name\": \"f\", \"memory_limit_in_mb\": 1024}"

let test_case ?(context = default_context) ~name event =
  { tc_name = name; tc_event = event; tc_context = context }

let image_mb t = Minipy.Vfs.image_mb t.vfs

(* A copy sharing nothing mutable with the original — a failed DD iteration
   can never corrupt the deployed image. *)
let copy t = { t with vfs = Minipy.Vfs.copy t.vfs }

(* A copy-on-write view: O(1) to build, rewrites stay in the overlay. The
   debloater builds one per DD candidate instead of deep-copying the image. *)
let overlay t = { t with vfs = Minipy.Vfs.overlay t.vfs }

(* Content address of the image; the oracle memo keys observations by it. *)
let image_digest t = Minipy.Vfs.image_digest t.vfs

let handler_source t = Minipy.Vfs.read_exn t.vfs t.handler_file

let parse_handler t = Minipy.Parse_cache.parse_vfs t.vfs t.handler_file
