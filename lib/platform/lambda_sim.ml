(* The serverless platform simulator: instance lifecycle, cold/warm starts,
   keep-alive, and the billing boundary of Figure 1.

   A cold start runs four phases:
     1. instance init        — platform-side VM/runtime setup (NOT billed)
     2. image transmission   — image size / network bandwidth (NOT billed)
     3. function init        — module-level code of the handler file (billed)
     4. function execution   — the handler call (billed)

   A warm start reuses a live instance and runs only phase 4. Instances
   expire after the keep-alive period; invoke with increasing [now_s]. *)

type params = {
  instance_init_ms : float;        (* phase-1 constant *)
  transmission_mb_per_s : float;   (* image download bandwidth *)
  keep_alive_s : float;
  max_steps : int;                 (* interpreter budget per invocation *)
  runtime_overhead_ms : float;     (* billed per-request runtime overhead:
                                      event marshalling, logging, response
                                      serialisation *)
}

let default_params =
  { instance_init_ms = 620.0;
    transmission_mb_per_s = 85.0;
    keep_alive_s = 15.0 *. 60.0;
    max_steps = 20_000_000;
    runtime_overhead_ms = 75.0 }

type start_kind = Cold | Warm

let start_kind_name = function Cold -> "cold" | Warm -> "warm"

type outcome =
  | Ok of Minipy.Value.value
  | Error of Minipy.Value.exc

type record = {
  kind : start_kind;
  instance_init_ms : float;     (* 0 on warm starts *)
  transmission_ms : float;      (* 0 on warm starts *)
  init_ms : float;              (* Function Initialization; 0 on warm *)
  exec_ms : float;              (* Function Execution *)
  e2e_ms : float;
  billed_ms : float;
  peak_memory_mb : float;       (* instance footprint after the call *)
  cost : float;
  outcome : outcome;
  stdout : string;
  external_calls : string list;   (* intercepted remote-service operations *)
}

type instance = {
  interp : Minipy.Interp.t;
  namespace : Minipy.Value.namespace;
  init_ms_measured : float;
  mutable expires_at : float;
}

type t = {
  deployment : Deployment.t;
  pricing : Pricing.t;
  params : params;
  obs : bool;   (* emit Fig.-1 phase spans on the installed tracer; the
                   oracle's probe sims turn this off to keep DD's thousands
                   of runs out of the trace *)
  backend : Minipy.Backend.choice;  (* engine for this sim's interpreters *)
  mutable live : instance option;   (* single-concurrency pool *)
  mutable records : record list;    (* newest first *)
}

let create ?(pricing = Pricing.aws) ?(params = default_params) ?(obs = true)
    ?backend deployment =
  let backend =
    match backend with Some b -> b | None -> Minipy.Backend.current ()
  in
  { deployment; pricing; params; obs; backend; live = None; records = [] }

let eval_expr interp src =
  (* test-case events repeat across thousands of oracle invocations; the
     parse cache answers all but the first *)
  let prog = Minipy.Parse_cache.parse ~file:"<event>" (src ^ "\n") in
  match prog with
  | [ { Minipy.Ast.sdesc = Minipy.Ast.Expr_stmt e; _ } ] ->
    let ns = Hashtbl.create 4 in
    let m = { Minipy.Value.mname = "<event>"; mfile = "<event>"; mattrs = ns } in
    Minipy.Interp.eval interp (Minipy.Interp.module_env m) e
  | _ -> invalid_arg (Printf.sprintf "not a single expression: %S" src)

(* Run Function Initialization: execute the handler module top-level.
   [sink]/[track]/[at_ms] aim the interpreter's import spans at this
   invocation's trace lane, with vtime 0 mapped to [at_ms] (the phase's
   position in simulation time). *)
let initialize ?(sink = Obs.Span.null) ?(track = 0) ?(at_ms = 0.0) t :
    instance * float =
  let interp =
    Minipy.Backend.create ~choice:t.backend ~max_steps:t.params.max_steps
      t.deployment.Deployment.vfs
  in
  interp.Minipy.Interp.obs_sink <- sink;
  interp.Minipy.Interp.obs_track <- track;
  interp.Minipy.Interp.obs_offset_ms <- at_ms -. interp.Minipy.Interp.vtime_ms;
  let prog = Deployment.parse_handler t.deployment in
  let t0 = interp.Minipy.Interp.vtime_ms in
  let namespace = Minipy.Interp.exec_main interp prog in
  let init_ms = interp.Minipy.Interp.vtime_ms -. t0 in
  ({ interp; namespace; init_ms_measured = init_ms; expires_at = 0.0 }, init_ms)

let transmission_ms t =
  Deployment.image_mb t.deployment /. t.params.transmission_mb_per_s *. 1000.0

(* Invoke the deployed function at time [now_s] with oracle test case inputs
   given as minipy expression sources. *)
let invoke ?(event = "{}") ?(context = Deployment.default_context) t ~now_s () =
  (* each invocation gets its own trace lane: overlapping invocations
     (cold at sim time 0, warm at 1000 ms) would otherwise collide on one
     track and break well-nesting *)
  let sink = if t.obs then Obs.Span.installed () else Obs.Span.null in
  let track = Obs.Span.fresh_track sink in
  let base_ms = now_s *. 1000.0 in
  let inv_sp =
    Obs.Span.begin_ sink ~domain:Obs.Span.domain_virtual ~track ~cat:"platform"
      ~name:"invoke" ~ts_ms:base_ms
  in
  let reusable =
    match t.live with
    | Some inst when inst.expires_at >= now_s -> Some inst
    | _ -> t.live <- None; None
  in
  let kind, inst, instance_init_ms, trans_ms, init_ms, init_error =
    match reusable with
    | Some inst -> (Warm, inst, 0.0, 0.0, 0.0, None)
    | None ->
      (* an init-phase crash is billed for the time spent and surfaces as a
         function error, exactly as the platform reports it *)
      (match
         initialize t ~sink ~track
           ~at_ms:(base_ms +. t.params.instance_init_ms +. transmission_ms t)
       with
       | inst, init_ms ->
         (Cold, inst, t.params.instance_init_ms, transmission_ms t, init_ms,
          None)
       | exception Minipy.Value.Py_error e ->
         let interp =
           Minipy.Backend.create ~choice:t.backend ~max_steps:t.params.max_steps
             t.deployment.Deployment.vfs
         in
         let inst =
           { interp; namespace = Hashtbl.create 1; init_ms_measured = 0.0;
             expires_at = 0.0 }
         in
         (Cold, inst, t.params.instance_init_ms, transmission_ms t, 0.0,
          Some e))
  in
  let interp = inst.interp in
  let stdout_before = Buffer.length interp.Minipy.Interp.stdout_buf in
  let calls_before = List.length interp.Minipy.Interp.external_calls in
  let t0 = interp.Minipy.Interp.vtime_ms in
  let exec_base_ms = base_ms +. instance_init_ms +. trans_ms +. init_ms in
  (* retarget the (possibly reused) interpreter at this invocation's lane:
     lazy imports made inside the handler trace into the exec phase *)
  interp.Minipy.Interp.obs_sink <- sink;
  interp.Minipy.Interp.obs_track <- track;
  interp.Minipy.Interp.obs_offset_ms <- exec_base_ms -. t0;
  let outcome =
    match init_error with
    | Some e -> Error e
    | None ->
      (try
         let ev = eval_expr interp event in
         let ctx = eval_expr interp context in
         Ok
           (Minipy.Interp.call_in_namespace interp inst.namespace
              t.deployment.Deployment.handler_name [ ev; ctx ])
       with Minipy.Value.Py_error e -> Error e)
  in
  let exec_ms =
    interp.Minipy.Interp.vtime_ms -. t0 +. t.params.runtime_overhead_ms
  in
  let stdout =
    let b = Buffer.contents interp.Minipy.Interp.stdout_buf in
    String.sub b stdout_before (String.length b - stdout_before)
  in
  let billed_raw = init_ms +. exec_ms in
  let peak_memory_mb = Minipy.Interp.heap_mb interp in
  let billed_ms = Pricing.billed_duration_ms t.pricing billed_raw in
  let cost =
    Pricing.invocation_cost t.pricing ~duration_ms:billed_raw
      ~memory_mb:peak_memory_mb
  in
  let e2e_ms = instance_init_ms +. trans_ms +. init_ms +. exec_ms in
  (* keep-alive timer resets after the request completes; a crashed init
     leaves no reusable instance behind *)
  (match init_error with
   | None ->
     inst.expires_at <- now_s +. (e2e_ms /. 1000.0) +. t.params.keep_alive_s;
     t.live <- Some inst
   | Some _ -> t.live <- None);
  let external_calls =
    let all = Minipy.Interp.external_calls interp in
    (* only the calls issued by this invocation (init-time calls belong to
       the cold start that made them) *)
    let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
    drop calls_before all
  in
  let record =
    { kind; instance_init_ms; transmission_ms = trans_ms; init_ms; exec_ms;
      e2e_ms; billed_ms; peak_memory_mb; cost; outcome; stdout; external_calls }
  in
  t.records <- record :: t.records;
  if Obs.Span.enabled sink then begin
    (* phase boundaries are all known now; emit the Fig.-1 breakdown as
       immediate spans on this invocation's lane *)
    let phase name start_ms dur_ms =
      let sp =
        Obs.Span.begin_ sink ~domain:Obs.Span.domain_virtual ~track
          ~cat:"platform" ~name ~ts_ms:start_ms
      in
      Obs.Span.end_ sp ~ts_ms:(start_ms +. dur_ms)
    in
    (match kind with
     | Cold ->
       phase "phase:instance_init" base_ms instance_init_ms;
       phase "phase:transmission" (base_ms +. instance_init_ms) trans_ms;
       phase "phase:function_init"
         (base_ms +. instance_init_ms +. trans_ms)
         init_ms
     | Warm -> ());
    phase "phase:function_exec" exec_base_ms exec_ms
  end;
  Obs.Span.end_ inv_sp
    ~attrs:
      [ ("kind", start_kind_name kind);
        ("billed_ms", Printf.sprintf "%.3f" billed_ms);
        ("cost_usd", Printf.sprintf "%.9f" cost);
        ("memory_mb", Printf.sprintf "%.2f" peak_memory_mb) ]
    ~ts_ms:(base_ms +. e2e_ms);
  record

(* Force the platform to discard the warm instance — the evaluation triggers
   cold starts this way ("we update the function description field"). *)
let evict t = t.live <- None

let records t = List.rev t.records

(* One cold start followed by one warm start; the basis for most figures. *)
let measure_cold_and_warm ?event ?context t =
  evict t;
  let cold = invoke ?event ?context t ~now_s:0.0 () in
  let warm = invoke ?event ?context t ~now_s:1.0 () in
  (cold, warm)
