(** Serverless pricing models (§2.1, Eq. 1):

    {v C = Configured Memory × Billed Duration × Unit Price v}

    AWS bills in 1 ms increments; GCP rounds up to 100 ms; Azure to 1 s.
    Memory is configured from a floor (128 MB on AWS) up to a cap, and §2.2.2
    uses the measured peak footprint as the configuration lower bound. *)

type provider = Aws | Gcp | Azure

type t = {
  provider : provider;
  unit_price_per_gb_s : float;
  per_request_fee : float;
  billing_granularity_ms : float;
  min_memory_mb : float;
  max_memory_mb : float;
}

(** $0.0000162109 per GB-s — the rate §2.2.2 prices its figures at. *)
val aws : t

val gcp : t
val azure : t
val provider_name : provider -> string

(** Round a raw duration up to the provider's billing granularity.
    Epsilon-safe on exact boundaries: a duration within one part in 10^9 of
    a whole number of ticks (float error accumulated from summed charges)
    bills that tick count, not an extra one. *)
val billed_duration_ms : t -> float -> float

(** The memory configuration implied by a measured peak footprint: rounded up
    to a whole MB, clamped to the provider's floor and ceiling. *)
val configured_memory_mb : t -> float -> float

(** Eq. 1 for one invocation, from the raw duration and peak footprint. *)
val invocation_cost : t -> duration_ms:float -> memory_mb:float -> float

(** [n] identical invocations — Figure 2 prices 100 K. *)
val cost_of_invocations :
  t -> n:int -> duration_ms:float -> memory_mb:float -> float
