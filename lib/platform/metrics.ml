(* Summary statistics for experiment reporting: means, percentiles, CDFs. *)

(* NaN policy for the order statistics: polymorphic [compare] places NaN
   inconsistently (its comparisons all lie), so a single NaN used to poison
   every rank. NaNs carry no order information — drop them before sorting,
   counting each drop so a polluted data set is visible in the metrics
   export rather than silently shrunk. *)
let nan_dropped = Obs.Metrics.counter Obs.Metrics.global "platform.metrics.nan_dropped"

let drop_nans xs =
  let kept = List.filter (fun x -> not (Float.is_nan x)) xs in
  let dropped = List.length xs - List.length kept in
  if dropped > 0 then Obs.Metrics.incr ~by:dropped nan_dropped;
  kept

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Sort into an array once: [List.nth] over a sorted list made each lookup
   O(n), which turned report aggregation over large fleets quadratic. *)
let percentile p xs =
  match drop_nans xs with
  | [] -> 0.0
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    let v i = a.(max 0 (min (n - 1) i)) in
    (v lo *. (1.0 -. frac)) +. (v hi *. frac)

let median xs = percentile 50.0 xs
let p95 xs = percentile 95.0 xs
let p99 xs = percentile 99.0 xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

(* CDF sample points: fraction of values <= x for each x in the sorted data. *)
let cdf xs =
  let sorted = List.sort Float.compare (drop_nans xs) in
  let n = float_of_int (List.length sorted) in
  List.mapi (fun i x -> (x, float_of_int (i + 1) /. n)) sorted

(* Relative improvement of [after] over [before]: positive = better
   (smaller). Reported as a percentage, as in Figures 8-10. *)
let improvement_pct ~before ~after =
  if before = 0.0 then 0.0 else (before -. after) /. before *. 100.0

let speedup ~before ~after = if after = 0.0 then 0.0 else before /. after
