(** Summary statistics for experiment reporting.

    Every function here is total: on the empty list, [mean], [percentile]
    (and its [median]/[p95]/[p99] conveniences) and [stddev] return [0.0]
    rather than raising, so report code can aggregate sparse buckets (e.g. a
    fleet run where no request timed out) without guarding.

    NaN policy: the order statistics ([percentile]/[median]/[p95]/[p99] and
    [cdf]) sort with [Float.compare] and drop NaN inputs, counting each drop
    in the [platform.metrics.nan_dropped] counter of {!Obs.Metrics.global}
    so polluted data is visible rather than rank-poisoning. *)

(** [0.0] on the empty list. *)
val mean : float list -> float

(** Linear-interpolated percentile; [percentile 50.0] is the median.
    [0.0] on the empty list. *)
val percentile : float -> float list -> float

val median : float list -> float

(** [percentile 95.0] / [percentile 99.0] — the fleet report's tail-latency
    summaries. *)
val p95 : float list -> float

val p99 : float list -> float

(** Sample standard deviation; [0.0] on the empty and singleton lists. *)
val stddev : float list -> float

(** CDF sample points: (value, fraction ≤ value) over the sorted data. *)
val cdf : float list -> (float * float) list

(** Relative improvement in percent; positive = [after] is smaller. *)
val improvement_pct : before:float -> after:float -> float

val speedup : before:float -> after:float -> float
