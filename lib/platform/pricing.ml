(* Serverless pricing models (§2.1, Eq. 1).

   C = Configured Memory × Billed Duration × Unit Price

   AWS bills in 1 ms increments, GCP rounds up to 100 ms, Azure to 1 s.
   Memory is configurable from a floor (128 MB on AWS) and should be set to
   the application's peak footprint plus headroom (§2.2.2 uses the measured
   maximum as the lower bound, which we reproduce). *)

type provider = Aws | Gcp | Azure

type t = {
  provider : provider;
  unit_price_per_gb_s : float;   (* $ per GB-second *)
  per_request_fee : float;       (* $ per invocation *)
  billing_granularity_ms : float;
  min_memory_mb : float;
  max_memory_mb : float;
}

(* $0.0000162109 per GB-s: the rate §2.2.2 uses for its cost figures. *)
let aws =
  { provider = Aws;
    unit_price_per_gb_s = 0.0000162109;
    per_request_fee = 0.0000002;
    billing_granularity_ms = 1.0;
    min_memory_mb = 128.0;
    max_memory_mb = 10240.0 }

let gcp =
  { provider = Gcp;
    unit_price_per_gb_s = 0.0000165;
    per_request_fee = 0.0000004;
    billing_granularity_ms = 100.0;
    min_memory_mb = 128.0;
    max_memory_mb = 32768.0 }

let azure =
  { provider = Azure;
    unit_price_per_gb_s = 0.000016;
    per_request_fee = 0.0000002;
    billing_granularity_ms = 1000.0;
    min_memory_mb = 128.0;
    max_memory_mb = 1536.0 }

let provider_name = function Aws -> "aws" | Gcp -> "gcp" | Azure -> "azure"

(* Round a raw duration up to the billing granularity.

   Durations arrive as sums of many small float charges, so a run that is
   exactly on a tick boundary can land at e.g. 1000.0000000002 ms and a
   naive ceil would bill a whole extra tick (a 100% overcharge at Azure's
   1 s granularity). Snap quotients within one part in 10^9 of an integer
   tick count before rounding up. *)
let billed_duration_ms t raw_ms =
  if raw_ms <= 0.0 then 0.0
  else
    let g = t.billing_granularity_ms in
    let q = raw_ms /. g in
    let nearest = Float.round q in
    let ticks =
      if Float.abs (q -. nearest) <= 1e-9 *. Float.max 1.0 (Float.abs q)
      then nearest
      else Float.ceil q
    in
    ticks *. g

(* The memory configuration implied by a measured peak footprint: the peak
   rounded up to a whole MB, clamped to the provider's floor and ceiling. *)
let configured_memory_mb t peak_mb =
  let rounded = Float.ceil peak_mb in
  Float.min t.max_memory_mb (Float.max t.min_memory_mb rounded)

(* Eq. 1. [duration_ms] is the raw billed duration before granularity
   rounding; [memory_mb] the measured peak footprint. *)
let invocation_cost t ~duration_ms ~memory_mb =
  let billed_ms = billed_duration_ms t duration_ms in
  let mem_gb = configured_memory_mb t memory_mb /. 1024.0 in
  (mem_gb *. (billed_ms /. 1000.0) *. t.unit_price_per_gb_s) +. t.per_request_fee

(* Cost of [n] identical invocations — Figure 2 prices 100 K. *)
let cost_of_invocations t ~n ~duration_ms ~memory_mb =
  float_of_int n *. invocation_cost t ~duration_ms ~memory_mb
