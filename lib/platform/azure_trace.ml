(* Synthetic stand-in for the Microsoft Azure Functions trace (Shahrad et al.,
   ATC'20) used by Figures 13 and 14.

   The real dataset is not available offline, so we reproduce its headline
   shape, which is what those figures depend on:
   - invocation rates are heavily skewed: most functions are invoked rarely
     (large inter-arrival times relative to keep-alive), a few are hot;
     modelled with a log-normal over per-function mean inter-arrival times,
     spanning seconds to many hours;
   - per-function arrivals are Poisson (the trace's per-function processes
     are well approximated by Poisson for the cost analysis here);
   - memory footprints and execution durations follow log-normals centred on
     a few hundred MB and a few hundred ms. *)

type fn = {
  fn_id : int;
  memory_mb : float;
  exec_ms : float;
  trace : Trace.t;
}

type t = { functions : fn list; horizon_s : float }

let lognormal rng ~mu ~sigma =
  (* Box-Muller *)
  let u1 = Random.State.float rng 1.0 +. 1e-12 in
  let u2 = Random.State.float rng 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  exp (mu +. (sigma *. z))

let generate ?(n_functions = 200) ?(horizon_s = 86_400.0) ~seed () : t =
  let rng = Random.State.make [| seed |] in
  let functions =
    List.init n_functions (fun fn_id ->
        (* mean inter-arrival: median ~2 min, spanning seconds (hot
           functions that amortize their snapshot) to many hours *)
        let mean_gap_s = lognormal rng ~mu:(log 120.0) ~sigma:2.5 in
        let mean_gap_s = Float.max 2.0 (Float.min (horizon_s /. 2.0) mean_gap_s) in
        let rate = 1.0 /. mean_gap_s in
        let trace =
          Trace.poisson ~seed:(seed + (fn_id * 7919)) ~rate_per_s:rate
            ~duration_s:horizon_s
            ~name:(Printf.sprintf "azure-fn-%d" fn_id)
        in
        let memory_mb = Float.max 128.0 (lognormal rng ~mu:(log 220.0) ~sigma:0.7) in
        let exec_ms = Float.max 1.0 (lognormal rng ~mu:(log 500.0) ~sigma:1.5) in
        { fn_id; memory_mb; exec_ms; trace })
  in
  { functions; horizon_s }

(* --- spec mode for large replays -----------------------------------------

   [generate] materializes every function's arrival list up front, which is
   fine for the few hundred functions of Figures 13-14 but not for a
   million-request fleet replay. A [fn_spec] is the function's metadata
   plus the seed of its arrival process; the trace itself is materialized
   later — inside whichever shard replays the function — by
   [trace_of_spec]. Specs also carry init-time draws (cold-start Function
   Initialization and platform setup) that the figure path never needed.

   The metadata RNG is a single sequential stream over ascending fn ids,
   so the spec list is a pure function of (seed, n_functions, horizon_s)
   and cannot depend on shard or job count. [generate]'s own draw sequence
   is untouched — Figures 13-14 stay byte-identical. *)

type fn_spec = {
  fs_id : int;
  fs_memory_mb : float;
  fs_exec_ms : float;
  fs_cold_init_ms : float;      (* Function Initialization, original image *)
  fs_instance_init_ms : float;  (* platform setup + image pull — unbilled *)
  fs_mean_gap_s : float;
  fs_trace_seed : int;
}

let specs ?(n_functions = 200) ?(horizon_s = 86_400.0) ~seed () :
  fn_spec list =
  let rng = Random.State.make [| seed; 0x5bec |] in
  List.init n_functions (fun fs_id ->
      let mean_gap_s = lognormal rng ~mu:(log 120.0) ~sigma:2.5 in
      let mean_gap_s =
        Float.max 2.0 (Float.min (horizon_s /. 2.0) mean_gap_s)
      in
      let memory_mb =
        Float.max 128.0 (lognormal rng ~mu:(log 220.0) ~sigma:0.7)
      in
      let exec_ms = Float.max 1.0 (lognormal rng ~mu:(log 500.0) ~sigma:1.5) in
      (* import-dominated cold starts: hundreds of ms to seconds (§2) *)
      let cold_init_ms =
        Float.max 50.0 (lognormal rng ~mu:(log 800.0) ~sigma:0.8)
      in
      let instance_init_ms =
        Float.max 50.0 (lognormal rng ~mu:(log 250.0) ~sigma:0.4)
      in
      { fs_id;
        fs_memory_mb = memory_mb;
        fs_exec_ms = exec_ms;
        fs_cold_init_ms = cold_init_ms;
        fs_instance_init_ms = instance_init_ms;
        fs_mean_gap_s = mean_gap_s;
        fs_trace_seed = seed + (fs_id * 7919) })

let trace_of_spec ~horizon_s (s : fn_spec) : Trace.t =
  Trace.poisson ~seed:s.fs_trace_seed ~rate_per_s:(1.0 /. s.fs_mean_gap_s)
    ~duration_s:horizon_s
    ~name:(Printf.sprintf "azure-fn-%d" s.fs_id)

(* Find the function whose (memory, duration) is nearest to the given app in
   L2 norm — the matching rule of §8.6 for Figure 14. Both axes are
   normalised by the trace's spread so neither dominates. *)
let nearest_function (t : t) ~memory_mb ~exec_ms : fn =
  match t.functions with
  | [] -> invalid_arg "Azure_trace.nearest_function: empty trace"
  | fns ->
    let mem_scale =
      Float.max 1.0 (Metrics.mean (List.map (fun f -> f.memory_mb) fns))
    in
    let dur_scale =
      Float.max 1.0 (Metrics.mean (List.map (fun f -> f.exec_ms) fns))
    in
    let dist f =
      let dm = (f.memory_mb -. memory_mb) /. mem_scale in
      let dd = (f.exec_ms -. exec_ms) /. dur_scale in
      (dm *. dm) +. (dd *. dd)
    in
    List.fold_left
      (fun best f -> if dist f < dist best then f else best)
      (List.hd fns) fns
