(** The serverless platform simulator: instance lifecycle, cold/warm starts,
    keep-alive, and the Figure-1 billing boundary.

    A cold start runs instance init and image transmission (platform-side,
    not billed), then Function Initialization and Function Execution
    (billed). A warm start reuses a live instance and runs only execution.
    Instances expire after the keep-alive period; invoke with increasing
    [now_s]. *)

type params = {
  instance_init_ms : float;       (** phase-1 platform setup *)
  transmission_mb_per_s : float;  (** image download bandwidth *)
  keep_alive_s : float;
  max_steps : int;                (** interpreter budget per invocation *)
  runtime_overhead_ms : float;    (** billed per-request runtime overhead *)
}

val default_params : params

type start_kind = Cold | Warm

val start_kind_name : start_kind -> string

type outcome =
  | Ok of Minipy.Value.value
  | Error of Minipy.Value.exc

type record = {
  kind : start_kind;
  instance_init_ms : float;  (** 0 on warm starts *)
  transmission_ms : float;   (** 0 on warm starts *)
  init_ms : float;           (** Function Initialization; 0 on warm *)
  exec_ms : float;           (** Function Execution incl. runtime overhead *)
  e2e_ms : float;
  billed_ms : float;         (** init + exec, granularity-rounded *)
  peak_memory_mb : float;    (** instance footprint after the call *)
  cost : float;              (** Eq. 1 at the measured footprint *)
  outcome : outcome;
  stdout : string;           (** this invocation's stdout slice *)
  external_calls : string list;  (** intercepted remote-service operations *)
}

type instance = {
  interp : Minipy.Interp.t;
  namespace : Minipy.Value.namespace;
  init_ms_measured : float;
  mutable expires_at : float;
}

type t = {
  deployment : Deployment.t;
  pricing : Pricing.t;
  params : params;
  obs : bool;  (** emit Fig.-1 phase spans on the installed tracer *)
  backend : Minipy.Backend.choice;  (** engine for this sim's interpreters *)
  mutable live : instance option;
  mutable records : record list;
}

(** [obs] (default [true]) records each invocation on the installed tracer:
    an [invoke] span per request on a fresh lane, with the Fig.-1 phase
    breakdown and the interpreter's import spans nested inside. The oracle's
    probe sims pass [~obs:false].

    [backend] selects the execution engine for this sim's interpreters
    (default: the process-wide {!Minipy.Backend.current}; {!Minipy.Backend.Compare}
    runs the reference tree-walker — dual-run diffing lives in the oracle). *)
val create :
  ?pricing:Pricing.t -> ?params:params -> ?obs:bool ->
  ?backend:Minipy.Backend.choice -> Deployment.t -> t

(** Time to pull the deployment image at the configured bandwidth. *)
val transmission_ms : t -> float

(** Invoke the deployed function at time [now_s]. [event]/[context] are
    minipy expression sources. Init-phase crashes are billed for the time
    spent and surface as [Error] outcomes; the failed instance is not kept
    warm. *)
val invoke : ?event:string -> ?context:string -> t -> now_s:float -> unit -> record

(** Discard the warm instance — how the evaluation forces cold starts. *)
val evict : t -> unit

(** All invocation records, oldest first. *)
val records : t -> record list

(** One forced cold start followed by one warm start. *)
val measure_cold_and_warm :
  ?event:string -> ?context:string -> t -> record * record
