(** A deployable serverless application: the image (virtual filesystem with
    handler code and site-packages), the handler entry point, and the oracle
    test cases that define observable correctness (§5).

    Test-case events and contexts are minipy expression sources — the role
    the paper's JSON oracle files play — evaluated in the application's
    interpreter at invocation time. *)

type test_case = {
  tc_name : string;
  tc_event : string;    (** minipy expression, e.g. [{"body": "hi"}] *)
  tc_context : string;  (** minipy expression *)
}

type t = {
  name : string;
  vfs : Minipy.Vfs.t;
  handler_file : string;  (** vfs path of the handler module *)
  handler_name : string;  (** entry-point function within that module *)
  test_cases : test_case list;
}

val make :
  name:string ->
  vfs:Minipy.Vfs.t ->
  handler_file:string ->
  handler_name:string ->
  test_cases:test_case list ->
  t

val default_context : string

val test_case : ?context:string -> name:string -> string -> test_case

val image_mb : t -> float

(** A copy sharing nothing mutable: a failed DD iteration can never corrupt
    the deployed image. *)
val copy : t -> t

(** A copy-on-write view of the image (see {!Minipy.Vfs.overlay}): O(1) to
    build, rewrites stay in the overlay. The debloater builds one per DD
    candidate. The base deployment must not be mutated while the overlay is
    alive. *)
val overlay : t -> t

(** Content address of the effective image, used as the oracle memo key. *)
val image_digest : t -> string

val handler_source : t -> string
val parse_handler : t -> Minipy.Ast.program
