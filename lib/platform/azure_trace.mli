(** Synthetic stand-in for the Microsoft Azure Functions trace (Shahrad et
    al., ATC'20) used by Figures 13-14: heavy-tailed per-function invocation
    rates (log-normal mean inter-arrival, seconds to hours), Poisson
    arrivals, log-normal memory and duration. Deterministic per seed. *)

type fn = {
  fn_id : int;
  memory_mb : float;
  exec_ms : float;
  trace : Trace.t;
}

type t = {
  functions : fn list;
  horizon_s : float;
}

val generate : ?n_functions:int -> ?horizon_s:float -> seed:int -> unit -> t

(** Function metadata without a materialized arrival list, for replays too
    large to hold every trace at once: the shard that replays a function
    builds its trace from the spec with {!trace_of_spec}. Also carries
    cold-start init draws the figure path never needed. Deterministic in
    (seed, n_functions, horizon_s); independent of {!generate}'s draw
    sequence. *)
type fn_spec = {
  fs_id : int;
  fs_memory_mb : float;
  fs_exec_ms : float;
  fs_cold_init_ms : float;      (** Function Initialization, original image *)
  fs_instance_init_ms : float;  (** platform setup + image pull — unbilled *)
  fs_mean_gap_s : float;        (** mean inter-arrival, clamped as in
                                    {!generate} *)
  fs_trace_seed : int;
}

val specs :
  ?n_functions:int -> ?horizon_s:float -> seed:int -> unit -> fn_spec list

(** Materialize the spec's Poisson arrival process over [horizon_s]. *)
val trace_of_spec : horizon_s:float -> fn_spec -> Trace.t

(** The function nearest to (memory, duration) in normalised L2 distance —
    the §8.6 matching rule for Figure 14. *)
val nearest_function : t -> memory_mb:float -> exec_ms:float -> fn
