(* Bytecode for the minipy VM backend.

   A code unit is a flat instruction array over four side tables: a constant
   pool of prebuilt values, an interned name array, a statement table for
   tree-walker fallbacks, and function templates for def/lambda sites.

   Accounting contract (ARCHITECTURE §11): the compiler emits interpreter
   steps at exactly the tree-walker's program points — one [Tick] (or a
   tick-fused leaf load) per expression-node entry and one per statement
   entry — and every allocation charge is performed by the same shared
   helpers the tree-walker uses, in the same order. A code unit is therefore
   backend-invariant with respect to the virtual clock and byte ledger.

   Exception semantics are inherited rather than reimplemented: [try] (and
   any loop whose subtree contains one) compiles to an [Sfallback] that runs
   the reference tree-walker on the original statement, so compiled frames
   never need handler stacks. *)

type instr =
  (* steps / leaf loads — these four are the only ticking instructions *)
  | Tick                    (* one interpreter step (expr/stmt entry) *)
  | Const of int            (* tick; push consts.(i) *)
  | Load_slot of int        (* tick; slot, else globals/builtins by name *)
  | Load_global of int      (* tick; names.(i) via globals/builtins *)
  | Load_name of int        (* tick; names.(i) via env (dict mode) *)
  (* non-ticking loads (AugAssign current-value reads) *)
  | Load_slot_ref of int
  | Load_name_ref of int
  | Push_none               (* implicit None (return with no value) *)
  (* stores *)
  | Store_slot of int
  | Store_name of int       (* env-aware: honors `global` declarations *)
  | Store_local of int      (* always locals (def bindings) *)
  | Unpack of int           (* iterate top into n items, first on top *)
  (* data flow *)
  | Pop
  | Getattr of int          (* names.(i); may import submodules *)
  | Setattr of int          (* stack: [... value; obj] *)
  | Getitem
  | Setitem                 (* stack: [... value; obj; key] *)
  | Getslice of bool * bool (* has_lo, has_hi *)
  | Binop of Ast.binop      (* non-short-circuit operators *)
  | Unop of Ast.unop
  | Build_list of int       (* charges the allocation *)
  | Build_tuple of int
  | Build_dict of int       (* pops 2n key/value pairs *)
  | Push_list               (* uncharged comprehension builder *)
  | Push_dict
  | List_append             (* stack: [... builder; elt] *)
  | Map_add                 (* stack: [... builder; key; value] *)
  | Charge_top              (* charge_alloc on the finished builder *)
  | Call of int * int array (* positional argc, kwarg name indices *)
  | Make_function of int    (* funcs.(i); pops its default values *)
  (* control flow *)
  | Jump of int
  | Pop_jump_if_false of int
  | Pop_jump_if_true of int
  | Jump_if_falsy_keep of int  (* `and`: keep falsy lhs *)
  | Jump_if_truthy_keep of int (* `or`: keep truthy lhs *)
  | Get_iter                (* materialize top onto the iterator stack *)
  | For_iter of int         (* push next item, or pop iter and jump *)
  | Pop_iter                (* loop exit via break *)
  | Return                  (* function: return top; module: Return_exc *)
  | Raise_top
  | Raise_bare
  | Assert_msg              (* pops the failure message value *)
  | Assert_plain
  (* reference-interpreter escape hatch (dict mode only) *)
  | Sfallback of int        (* exec stmts.(i) with the tree-walker *)

(* A function template: everything [Make_function] needs besides the
   defaults sitting on the stack and the enclosing globals. [mk_body] is
   allocated once at compile time so every closure made at this site shares
   it physically — the VM's compile memo keys on that identity. *)
type template = {
  mk_name : string;
  mk_module : string;
  mk_params : (string * bool) list;  (* name, has-default *)
  mk_body : Ast.stmt list;
}

(* Local-variable representation. Module bodies and functions containing
   namespace-dependent statements (global/del/import/class/try) run in
   [Dict] mode against a real environment; everything else gets [Slots]. *)
type mode =
  | Slots
  | Dict

type code = {
  instrs : instr array;
  consts : Value.value array;   (* prebuilt immutable values; never charged *)
  names : string array;         (* interned attribute/global names *)
  stmts : Ast.stmt array;       (* Sfallback table *)
  funcs : template array;
  mode : mode;
  nslots : int;
  slot_names : string array;    (* for unbound-slot fallback and disasm *)
  max_stack : int;
}
