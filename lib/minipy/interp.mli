(** Tree-walking evaluator with the pieces λ-trim instruments:

    - a module cache and full import machinery with before/after import
      hooks — the profiler measures marginal import time and memory through
      these hooks exactly as §5.2 patches CPython's loader;
    - a virtual clock and byte ledger: every statement costs interpreter
      time, every allocation is charged, and library init code expresses
      native work through the builtin [simrt] module;
    - stdout capture and external-call recording, which the debloating
      oracle compares (§5.3).

    Builtin modules provided without filesystem backing: [simrt] (cost
    model), [json] (encode/decode), [cloud] (intercepted remote services). *)

(** Raised when the step budget is exhausted (runaway loop). *)
exception Timeout of string

type import_hook = {
  on_before : string -> unit;  (** dotted module name, before body exec *)
  on_after : string -> unit;   (** after body exec (also on failure) *)
}

type t = {
  vfs : Vfs.t;
  modules : (string, Value.module_obj) Hashtbl.t;
      (** the module cache ("sys.modules"), keyed by dotted name *)
  stdout_buf : Buffer.t;
  mutable vtime_ms : float;   (** virtual elapsed CPU time *)
  mutable heap_bytes : int;   (** monotone footprint ledger *)
  mutable steps : int;
  max_steps : int;
  mutable import_hooks : import_hook list;
  mutable import_stack : string list;
  builtins : Value.namespace;
  mutable external_calls : string list;  (** newest first; see {!external_calls} *)
  remote_store : (string, Value.value) Hashtbl.t;
  parse_cache : Parse_cache.t;
      (** content-addressed AST store consulted on import *)
  mutable exec_backend : exec_backend;
      (** the engine running module bodies and function calls; virtual
          measurements are backend-invariant (ARCHITECTURE §11) *)
  mutable obs_sink : Obs.Span.sink;
      (** sink for import spans; embedders (Lambda_sim) may retarget it *)
  mutable obs_track : int;  (** trace lane for this interpreter's spans *)
  mutable obs_offset_ms : float;
      (** maps vtime (starts at 0) onto the embedding timeline *)
  lazy_roots : (string, unit) Hashtbl.t;
      (** import roots the image's {!lazy_manifest_file} marks for lazy
          (stub-on-import, force-on-touch) loading — ARCHITECTURE §14 *)
  lazy_pending : (string, unit) Hashtbl.t;
      (** stub modules whose body has not run yet *)
  mutable lazy_forcing : int;
      (** force nesting depth; imports run eagerly while a body is being
          forced, so a force replays the eager import subtree in order *)
}

and env = {
  locals : Value.namespace;
  globals : Value.namespace;
  global_decls : (string, unit) Hashtbl.t;
}

(** An execution backend: how module bodies and minipy closures run.
    [xb_exec_module] receives the module's content-addressed parse-cache key
    when one is known (imports; [None] for [__main__]), so a compiling
    backend can reuse code units across interpreters. [xb_call_function] is
    invoked from the shared call path {e after} the per-call cost charge. *)
and exec_backend = {
  xb_name : string;
  xb_exec_module : t -> env -> string option -> Ast.program -> unit;
  xb_call_function :
    t -> Value.func -> Value.value list ->
    (string * Value.value) list -> Value.value;
}

(** The reference backend: the tree-walking evaluator itself. *)
val treewalk_backend : exec_backend

val default_max_steps : int

(** Fresh interpreter over an image. Starts at a ~3 MB runtime footprint.
    [parse_cache] defaults to {!Parse_cache.global}: imports of unchanged
    sources reuse previously parsed ASTs (virtual measurements unaffected).
    [obs] (default [false]) records one span per executed module import on
    the installed tracer; oracle interpreters leave it off so DD's
    thousands of probe runs do not flood the trace.
    [exec_backend] defaults to {!treewalk_backend}. *)
val create :
  ?max_steps:int -> ?parse_cache:Parse_cache.t -> ?obs:bool ->
  ?exec_backend:exec_backend -> Vfs.t -> t

val heap_mb : t -> float
val stdout_contents : t -> string

(** Intercepted remote-service operations, in issue order. *)
val external_calls : t -> string list

(** Register a measurement hook on the import machinery (§5.2). *)
val add_import_hook : t -> import_hook -> unit

(** {1 Lazy loading (ARCHITECTURE §14)} *)

(** VFS path of the lazy-loading manifest ([".lazy-manifest"]). Its leading
    dot keeps it out of import resolution, so shipping it can never shadow
    application code. When present, {!create} arms stub-on-import loading
    for the listed roots. *)
val lazy_manifest_file : string

(** Parse manifest source into [(lazified roots, preload order)]; directives
    are [lazy <root>] and [preload <dotted>], in file order. *)
val parse_lazy_manifest : string -> string list * string list

(** Stub-configuration tag for cache/journal keys: ["eager"] without a
    manifest, ["lazy:<digest>"] with one. Lazy and eager twins of an image
    must never share oracle verdicts. *)
val lazy_config_of_vfs : Vfs.t -> string

(** Run a pending stub's body (ancestors first); no-op on initialized
    modules. Import hooks fire and the deferred loader fee plus body ticks
    are charged here, at touch time. *)
val force_module : t -> Value.module_obj -> unit

(** The module-level environment (locals = globals = the namespace). *)
val module_env : Value.module_obj -> env

(** Evaluate one expression. May raise [Value.Py_error] or {!Timeout}. *)
val eval : t -> env -> Ast.expr -> Value.value

(** Execute a top-level program as [__main__]; returns its namespace. *)
val exec_main : t -> Ast.program -> Value.namespace

(** Call a function bound in a namespace (the Lambda handler entry point). *)
val call_in_namespace :
  t -> Value.namespace -> string -> Value.value list -> Value.value

(** {1 Shared runtime helpers}

    The pieces of the reference semantics the VM backend reuses verbatim, so
    every virtual-clock tick and byte-ledger charge happens in the same code
    whichever backend runs. Raising conventions are those of the
    tree-walker; all may raise [Value.Py_error] or {!Timeout}. *)

exception Return_exc of Value.value
exception Break_exc
exception Continue_exc

(** One interpreter step: bumps the step counter, charges the per-step cost,
    enforces [max_steps]. *)
val tick : t -> unit

val charge_time : t -> float -> unit
val charge_alloc : t -> Value.value -> unit
val charge_bytes : t -> int -> unit

(** locals → globals → builtins. *)
val lookup : t -> env -> string -> Value.value option

val binop_values : t -> Ast.binop -> Value.value -> Value.value -> Value.value
val iter_values : Value.value -> Value.value list
val getattr : t -> Value.value -> string -> Value.value
val setattr : t -> Value.value -> string -> Value.value -> unit
val subscript : t -> Value.value -> Value.value -> Value.value
val store_subscript : t -> Value.value -> Value.value -> Value.value -> unit
val slice :
  t -> Value.value -> Value.value option -> Value.value option -> Value.value

(** Charges the per-call cost, then dispatches (closures go through the
    active backend). *)
val call_value :
  t -> Value.value -> Value.value list -> (string * Value.value) list ->
  Value.value

(** Bind call arguments into a fresh locals table with the reference
    TypeErrors (used by the VM's dict-mode frames). *)
val bind_args :
  Value.func -> Value.value list -> (string * Value.value) list ->
  Value.namespace -> unit

(** Execute one statement / a block with the tree-walker (the VM's
    [Sfallback] escape hatch). *)
val exec_stmt : t -> env -> Ast.stmt -> unit
val exec_block : t -> env -> Ast.stmt list -> unit
