(** In-memory virtual filesystem holding a serverless application image: the
    handler file plus a site-packages tree of library sources.

    Paths are '/'-separated and relative, e.g.
    ["site-packages/torch/__init__.py"]. The debloater overlays the vfs,
    rewrites files, and re-runs the app — mirroring λ-trim's manipulation of
    the real site-packages directory (§7).

    A value is either a {e root} image owning all of its files, or a
    copy-on-write {e overlay} of a base image: reads fall through to the
    base, writes and removals stay in the overlay. File contents are
    content-addressed: {!file_digest} and {!image_digest} provide stable
    cache keys for the parse cache and the oracle memo. *)

type t

val create : unit -> t

(** [overlay base] is a copy-on-write view of [base]: O(1) to build, reads
    fall through, [add_file]/[remove_file] affect only the overlay. The base
    must not be mutated while the overlay is alive.

    Domain safety: a frozen base (no further mutation — the invariant above)
    may be read, overlaid, and digested from many domains at once; the
    lazily-written digest memo is mutex-guarded per layer. A single overlay
    is still single-writer: only the domain that built it may mutate it. *)
val overlay : t -> t

val is_overlay : t -> bool

val add_file : t -> string -> string -> unit

(** Register a binary payload (shared object, model weights) by size only:
    it contributes to the image footprint but is never read as source. *)
val add_phantom : t -> string -> bytes:int -> unit

(** On an overlay this writes a tombstone hiding the base file. *)
val remove_file : t -> string -> unit

val read : t -> string -> string option

(** @raise Invalid_argument when the path is absent. *)
val read_exn : t -> string -> string

val exists : t -> string -> bool

(** A deep copy sharing no mutable state; overlay chains are flattened. *)
val copy : t -> t

(** Source paths, sorted (phantoms excluded). *)
val paths : t -> string list

val file_count : t -> int

(** Image size: source bytes plus per-file packaging overhead plus phantoms. *)
val image_bytes : t -> int

val image_mb : t -> float

(** Source paths under a directory prefix. *)
val files_under : t -> string -> string list

(** Hex content digest of one file, memoized per owning layer and invalidated
    when the file is rewritten. [None] when the path is absent. *)
val file_digest : t -> string -> string option

(** Content address of the whole effective image: every (path, file digest)
    pair plus every phantom entry. Two images with identical effective
    contents have equal digests regardless of overlay structure. *)
val image_digest : t -> string
