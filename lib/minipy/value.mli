(** Runtime values for the minipy interpreter.

    Everything is an object wrapping a namespace — exactly the model §6.1 of
    the paper relies on: a module is a dict from names to objects, and
    attributes are the building blocks the debloater removes. *)

type value =
  | Vnone
  | Vbool of bool
  | Vint of int
  | Vfloat of float
  | Vstr of string
  | Vlist of vlist
  | Vtuple of value array
  | Vdict of vdict
  | Vfunc of func
  | Vbuiltin of builtin
  | Vclass of cls
  | Vinstance of instance
  | Vmodule of module_obj
  | Vexc of exc

and vlist = { mutable items : value array }

and vdict = { mutable pairs : (value * value) list }
(** Association list with structural key equality and insertion order —
    serverless payloads are small, so O(n) lookups keep key handling trivial. *)

and func = {
  fname : string;
  fparams : (string * value option) list;
      (** defaults are evaluated at def time *)
  fbody : Ast.stmt list;
  fglobals : namespace;  (** the defining module's namespace *)
  fmodule : string;
  mutable fcode : code_ref option;
      (** per-closure cache of the VM backend's compiled body; an execution
          artifact ignored by equality, display, and the byte ledger *)
}

(** Compiled-code handle — extensible so [func] need not depend on the
    bytecode representation (the VM layer declares the one case). *)
and code_ref = ..

and builtin = {
  bname : string;
  bcall : value list -> (string * value) list -> value;
}

and cls = {
  cname : string;
  cattrs : namespace;
  cbases : cls list;
  cmodule : string;
}

and instance = {
  icls : cls;
  iattrs : namespace;
}

and module_obj = {
  mname : string;  (** dotted name, e.g. ["torch.nn"] *)
  mfile : string;  (** vfs path, or ["<builtin>"] *)
  mattrs : namespace;
}

and exc = {
  exc_class : string;  (** e.g. ["AttributeError"] *)
  exc_msg : string;
}

and namespace = (string, value) Hashtbl.t

(** Raised for every Python-level error; caught by try/except and, at the
    boundary, surfaced as an invocation error. *)
exception Py_error of exc

(** [py_error "TypeError" fmt …] raises {!Py_error} with a formatted message. *)
val py_error : string -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val type_name : value -> string
val truthy : value -> bool

(** Structural equality as used by [==] and dict keys; functions, classes,
    instances, and modules compare physically. *)
val equal : value -> value -> bool

(** Ordering for [<] and [sorted].
    @raise Py_error ([TypeError]) on incomparable types. *)
val compare_values : value -> value -> int

val compare_arrays : value array -> value array -> int
val float_repr : float -> string

(** [str()] — used by print. *)
val to_display : value -> string

(** [repr()] — used inside containers. *)
val to_repr : value -> string

(** Virtual-memory cost of allocating this value (bytes); approximates
    CPython object overheads. The absolute constants matter less than the
    fact that removing a def/class/import genuinely removes its footprint. *)
val bytes_of_alloc : value -> int

val dict_lookup : vdict -> value -> value option
val dict_set : vdict -> value -> value -> unit

(** @raise Py_error ([KeyError]) when absent. *)
val dict_del : vdict -> value -> unit

(** Attribute lookup through bases, left-to-right depth-first. *)
val class_lookup : cls -> string -> value option

val is_subclass : cls -> string -> bool
