(* Module path resolution against the virtual filesystem.

   Search order mirrors a Lambda image layout: the application root first
   (handler-adjacent modules), then site-packages. A dotted path a.b.c
   resolves each component in turn; packages are directories containing
   __init__.py, plain modules are .py files. *)

type resolution =
  | Package of string   (* vfs path of the package's __init__.py *)
  | Module of string    (* vfs path of the module's .py file *)
  | Not_found

let search_roots = [ ""; "site-packages/" ]

let join root parts = root ^ String.concat "/" parts

(* Resolve the full dotted path [parts]. *)
let resolve (vfs : Vfs.t) (parts : string list) : resolution =
  let try_root root =
    let base = join root parts in
    if Vfs.exists vfs (base ^ "/__init__.py") then Some (Package (base ^ "/__init__.py"))
    else if Vfs.exists vfs (base ^ ".py") then Some (Module (base ^ ".py"))
    else None
  in
  let rec go = function
    | [] -> Not_found
    | root :: rest ->
      (match try_root root with Some r -> r | None -> go rest)
  in
  go search_roots

(* All dotted prefixes of a path: a.b.c -> [a]; [a;b]; [a;b;c]. The running
   prefix is kept reversed so extending it is a cons, not a list append. *)
let prefixes (parts : string list) : string list list =
  let rec go acc rev_prefix = function
    | [] -> List.rev acc
    | p :: rest ->
      let rev_prefix = p :: rev_prefix in
      go (List.rev rev_prefix :: acc) rev_prefix rest
  in
  go [] [] parts

let dotted = Ast.dotted_to_string

(* The site-packages path prefix owning a top-level module, if resolvable;
   used by the debloater to locate the file to rewrite. *)
let init_file_of (vfs : Vfs.t) (module_name : string) : string option =
  match resolve vfs (String.split_on_char '.' module_name) with
  | Package p -> Some p
  | Module p -> Some p
  | Not_found -> None
