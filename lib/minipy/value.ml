(* Runtime values for the minipy interpreter.

   Everything is an object wrapping a namespace, exactly the model §6.1 of the
   paper relies on: a module is a dict from names to objects, and attributes
   are the building blocks the debloater removes. *)

type value =
  | Vnone
  | Vbool of bool
  | Vint of int
  | Vfloat of float
  | Vstr of string
  | Vlist of vlist
  | Vtuple of value array
  | Vdict of vdict
  | Vfunc of func
  | Vbuiltin of builtin
  | Vclass of cls
  | Vinstance of instance
  | Vmodule of module_obj
  | Vexc of exc

and vlist = { mutable items : value array }

and vdict = { mutable pairs : (value * value) list }
(* association list with structural key equality; serverless payloads are
   small, so O(n) lookups are fine and keep key hashing trivial *)

and func = {
  fname : string;
  fparams : (string * value option) list;  (* defaults evaluated at def time *)
  fbody : Ast.stmt list;
  fglobals : namespace;                    (* defining module's namespace *)
  fmodule : string;                        (* dotted module name *)
  mutable fcode : code_ref option;
      (* per-closure cache of the VM backend's compiled body; [None] until
         the VM first calls this closure. Purely an execution artifact:
         ignored by equality, display, and the byte ledger. *)
}

(* Compiled-code handle. An extensible variant so [func] need not depend on
   the bytecode representation (the VM layer declares the one case). *)
and code_ref = ..

and builtin = {
  bname : string;
  bcall : value list -> (string * value) list -> value;
}

and cls = {
  cname : string;
  cattrs : namespace;
  cbases : cls list;
  cmodule : string;
}

and instance = {
  icls : cls;
  iattrs : namespace;
}

and module_obj = {
  mname : string;       (* dotted name, e.g. "torch.nn" *)
  mfile : string;       (* vfs path *)
  mattrs : namespace;
}

and exc = {
  exc_class : string;   (* e.g. "AttributeError" *)
  exc_msg : string;
}

and namespace = (string, value) Hashtbl.t

(* Raised for every Python-level error; caught by try/except. *)
exception Py_error of exc

let py_error exc_class fmt =
  Fmt.kstr (fun exc_msg -> raise (Py_error { exc_class; exc_msg })) fmt

let type_name = function
  | Vnone -> "NoneType"
  | Vbool _ -> "bool"
  | Vint _ -> "int"
  | Vfloat _ -> "float"
  | Vstr _ -> "str"
  | Vlist _ -> "list"
  | Vtuple _ -> "tuple"
  | Vdict _ -> "dict"
  | Vfunc _ -> "function"
  | Vbuiltin _ -> "builtin_function_or_method"
  | Vclass _ -> "type"
  | Vinstance i -> i.icls.cname
  | Vmodule _ -> "module"
  | Vexc e -> e.exc_class

let truthy = function
  | Vnone -> false
  | Vbool b -> b
  | Vint i -> i <> 0
  | Vfloat f -> f <> 0.0
  | Vstr s -> s <> ""
  | Vlist l -> Array.length l.items > 0
  | Vtuple a -> Array.length a > 0
  | Vdict d -> d.pairs <> []
  | Vfunc _ | Vbuiltin _ | Vclass _ | Vinstance _ | Vmodule _ | Vexc _ -> true

(* Structural equality as used by == and dict keys. *)
let rec equal a b =
  match a, b with
  | Vnone, Vnone -> true
  | Vbool x, Vbool y -> x = y
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> x = y
  | Vint x, Vfloat y | Vfloat y, Vint x -> float_of_int x = y
  | Vstr x, Vstr y -> String.equal x y
  | Vlist x, Vlist y ->
    Array.length x.items = Array.length y.items
    && Array.for_all2 equal x.items y.items
  | Vtuple x, Vtuple y -> Array.length x = Array.length y && Array.for_all2 equal x y
  | Vdict x, Vdict y ->
    List.length x.pairs = List.length y.pairs
    && List.for_all
         (fun (k, v) ->
            match List.find_opt (fun (k', _) -> equal k k') y.pairs with
            | Some (_, v') -> equal v v'
            | None -> false)
         x.pairs
  | Vexc x, Vexc y -> x.exc_class = y.exc_class && x.exc_msg = y.exc_msg
  | Vfunc x, Vfunc y -> x == y
  | Vbuiltin x, Vbuiltin y -> x == y
  | Vclass x, Vclass y -> x == y
  | Vinstance x, Vinstance y -> x == y
  | Vmodule x, Vmodule y -> x == y
  | _ -> false

let rec compare_values a b =
  match a, b with
  | Vint x, Vint y -> compare x y
  | Vfloat x, Vfloat y -> compare x y
  | Vint x, Vfloat y -> compare (float_of_int x) y
  | Vfloat x, Vint y -> compare x (float_of_int y)
  | Vstr x, Vstr y -> String.compare x y
  | Vbool x, Vbool y -> compare x y
  | Vlist x, Vlist y -> compare_arrays x.items y.items
  | Vtuple x, Vtuple y -> compare_arrays x y
  | _ ->
    py_error "TypeError" "'<' not supported between instances of '%s' and '%s'"
      (type_name a) (type_name b)

and compare_arrays x y =
  let n = min (Array.length x) (Array.length y) in
  let rec go i =
    if i >= n then compare (Array.length x) (Array.length y)
    else
      let c = compare_values x.(i) y.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

(* str() — used by print *)
let rec to_display v =
  match v with
  | Vnone -> "None"
  | Vbool true -> "True"
  | Vbool false -> "False"
  | Vint i -> string_of_int i
  | Vfloat f -> float_repr f
  | Vstr s -> s
  | Vlist _ | Vtuple _ | Vdict _ | Vfunc _ | Vbuiltin _ | Vclass _
  | Vinstance _ | Vmodule _ | Vexc _ -> to_repr v

(* repr() — used inside containers *)
and to_repr v =
  match v with
  | Vstr s -> "'" ^ String.concat "\\'" (String.split_on_char '\'' s) ^ "'"
  | Vlist l ->
    "[" ^ String.concat ", " (Array.to_list (Array.map to_repr l.items)) ^ "]"
  | Vtuple [| x |] -> "(" ^ to_repr x ^ ",)"
  | Vtuple a ->
    "(" ^ String.concat ", " (Array.to_list (Array.map to_repr a)) ^ ")"
  | Vdict d ->
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> to_repr k ^ ": " ^ to_repr v) d.pairs)
    ^ "}"
  | Vfunc f -> Printf.sprintf "<function %s>" f.fname
  | Vbuiltin b -> Printf.sprintf "<built-in function %s>" b.bname
  | Vclass c -> Printf.sprintf "<class '%s'>" c.cname
  | Vinstance i -> Printf.sprintf "<%s object>" i.icls.cname
  | Vmodule m -> Printf.sprintf "<module '%s'>" m.mname
  | Vexc e -> Printf.sprintf "%s('%s')" e.exc_class e.exc_msg
  | Vnone | Vbool _ | Vint _ | Vfloat _ -> to_display v

(* --- virtual memory model ---------------------------------------------

   Every allocation is charged to the interpreter's byte ledger. The constants
   approximate CPython object overheads; their absolute values matter less
   than the fact that removing a def/class/import genuinely removes its
   footprint, which is what drives Figure 8's memory column. *)

let bytes_of_alloc = function
  | Vnone | Vbool _ -> 0
  | Vint _ -> 28
  | Vfloat _ -> 24
  | Vstr s -> 49 + String.length s
  | Vlist l -> 56 + (8 * Array.length l.items)
  | Vtuple a -> 40 + (8 * Array.length a)
  | Vdict d -> 64 + (72 * List.length d.pairs)
  | Vfunc _ -> 1200         (* code object + closure *)
  | Vbuiltin _ -> 72
  | Vclass _ -> 1600        (* type object + method table *)
  | Vinstance _ -> 56
  | Vmodule _ -> 1400       (* module object + namespace dict *)
  | Vexc _ -> 120

let dict_lookup (d : vdict) k =
  List.find_opt (fun (k', _) -> equal k k') d.pairs |> Option.map snd

let dict_set (d : vdict) k v =
  if List.exists (fun (k', _) -> equal k k') d.pairs then
    d.pairs <- List.map (fun (k', v') -> if equal k k' then (k', v) else (k', v')) d.pairs
  else d.pairs <- d.pairs @ [ (k, v) ]

let dict_del (d : vdict) k =
  if not (List.exists (fun (k', _) -> equal k k') d.pairs) then
    py_error "KeyError" "%s" (to_repr k);
  d.pairs <- List.filter (fun (k', _) -> not (equal k k')) d.pairs

(* Class attribute lookup through bases (C3 not needed: single/multiple
   inheritance with left-to-right depth-first search). *)
let rec class_lookup (c : cls) name =
  match Hashtbl.find_opt c.cattrs name with
  | Some v -> Some v
  | None ->
    let rec search = function
      | [] -> None
      | base :: rest ->
        (match class_lookup base name with
         | Some v -> Some v
         | None -> search rest)
    in
    search c.cbases

let rec is_subclass (c : cls) name =
  String.equal c.cname name || List.exists (fun b -> is_subclass b name) c.cbases
