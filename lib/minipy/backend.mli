(** Execution-backend selection for minipy interpreters: the process-wide
    [--backend] knob and the constructor embedders use instead of
    {!Interp.create}. Virtual-clock and byte-ledger measurements are
    backend-invariant (ARCHITECTURE §11); only host wall-clock changes. *)

type choice =
  | Treewalk  (** the reference tree-walking evaluator *)
  | Vm        (** the bytecode compiler + stack VM *)
  | Compare
      (** dual-run differential mode; layers that can run a workload twice
          (the oracle, [ltrim invoke]) diff the two engines, and a plain
          {!create} builds the reference tree-walker *)

val to_string : choice -> string

(** Accepts ["treewalk"]/["tw"], ["vm"]/["bytecode"], ["compare"]. *)
val of_string : string -> choice option

(** Process-wide default, set once at CLI startup (default {!Treewalk}). *)
val configure : choice -> unit

val current : unit -> choice

(** The {!Interp.exec_backend} a choice denotes ({!Compare} maps to the
    reference engine). *)
val exec_backend_of : choice -> Interp.exec_backend

(** {!Interp.create} with the backend for [?choice] (default: {!current}). *)
val create :
  ?max_steps:int -> ?parse_cache:Parse_cache.t -> ?obs:bool ->
  ?choice:choice -> Vfs.t -> Interp.t
