(* In-memory virtual filesystem holding a serverless application image:
   the handler file plus a site-packages tree of library sources.

   Paths are '/'-separated, relative, e.g. "site-packages/torch/__init__.py".
   The debloater overlays the vfs, rewrites files, and re-runs the app, which
   mirrors λ-trim's manipulation of the real site-packages directory (§7).

   Two representations share one type:

   - a *root* image ([parent = None]) owns every file;
   - an *overlay* ([parent = Some base]) is a copy-on-write view: reads fall
     through to the base, writes and removals land in the overlay's own delta
     table (removals as tombstones). Building a DD candidate is therefore
     O(rewritten files) instead of O(image files). A base must not be mutated
     while overlays of it are alive — the debloater and baselines obey this
     by constructing images fully before the first overlay is taken.

   Every file content has a content digest, memoized per owning layer and
   invalidated by rewrites; [image_digest] combines them into a single
   content address for the whole image, which the oracle memo and the parse
   cache use as keys. *)

type entry =
  | Source of string
  | Tombstone       (* overlay-level removal of a base file *)

type t = {
  parent : t option;
  files : (string, entry) Hashtbl.t;
  (* phantom entries: binary payloads (shared objects, model weights)
     represented by size only — they contribute to the image footprint but
     are never read as source *)
  phantoms : (string, int) Hashtbl.t;
  (* path -> hex content digest, for entries owned by THIS layer only; a
     lookup that falls through to the parent also shares the parent's memo *)
  digests : (string, string) Hashtbl.t;
  (* The digest memo is written lazily on reads, and parallel DD evaluates
     candidate overlays that share one base layer from several domains at
     once — so [digests] alone among the tables is mutex-guarded. The other
     tables need no lock because of the structural invariant (see overlay):
     a layer's [files]/[phantoms] are only mutated before any overlay of it
     exists, after which all access is read-only. *)
  dig_lock : Mutex.t;
}

let create () =
  { parent = None;
    files = Hashtbl.create 64;
    phantoms = Hashtbl.create 4;
    digests = Hashtbl.create 64;
    dig_lock = Mutex.create () }

let overlay base =
  { parent = Some base;
    files = Hashtbl.create 8;
    phantoms = Hashtbl.create 2;
    digests = Hashtbl.create 8;
    dig_lock = Mutex.create () }

let is_overlay t = t.parent <> None

let add_file t path content =
  Hashtbl.replace t.files path (Source content);
  Mutex.lock t.dig_lock;
  Hashtbl.remove t.digests path;
  Mutex.unlock t.dig_lock

let add_phantom t path ~bytes = Hashtbl.replace t.phantoms path bytes

let remove_file t path =
  (match t.parent with
   | None -> Hashtbl.remove t.files path
   | Some _ -> Hashtbl.replace t.files path Tombstone);
  Mutex.lock t.dig_lock;
  Hashtbl.remove t.digests path;
  Mutex.unlock t.dig_lock

let rec read t path =
  match Hashtbl.find_opt t.files path with
  | Some (Source c) -> Some c
  | Some Tombstone -> None
  | None ->
    (match t.parent with Some p -> read p path | None -> None)

let read_exn t path =
  match read t path with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Vfs.read_exn: no such file %S" path)

let exists t path = read t path <> None

(* Effective (merged) views. Layers are applied root-first so that nearer
   deltas shadow: a Source replaces, a Tombstone deletes. *)
let layers t =
  let rec go acc t =
    let acc = t :: acc in
    match t.parent with None -> acc | Some p -> go acc p
  in
  go [] t

let effective_files t : (string, string) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun layer ->
       Hashtbl.iter
         (fun p e ->
            match e with
            | Source c -> Hashtbl.replace tbl p c
            | Tombstone -> Hashtbl.remove tbl p)
         layer.files)
    (layers t);
  tbl

let effective_phantoms t : (string, int) Hashtbl.t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun layer -> Hashtbl.iter (Hashtbl.replace tbl) layer.phantoms)
    (layers t);
  tbl

(* A deep copy sharing no mutable state: overlay chains are flattened into a
   fresh root image. *)
let copy t =
  let t' = create () in
  Hashtbl.iter (fun p c -> Hashtbl.replace t'.files p (Source c))
    (effective_files t);
  Hashtbl.iter (fun p b -> Hashtbl.replace t'.phantoms p b)
    (effective_phantoms t);
  t'

let paths t =
  Hashtbl.fold (fun p _ acc -> p :: acc) (effective_files t) []
  |> List.sort compare

let file_count t = Hashtbl.length (effective_files t)

(* Total image size in bytes: source plus a per-file packaging overhead
   standing in for bytecode caches and package metadata. *)
let image_bytes t =
  Hashtbl.fold (fun _ c acc -> acc + String.length c + 512)
    (effective_files t) 0
  + Hashtbl.fold (fun _ b acc -> acc + b) (effective_phantoms t) 0

let image_mb t = float_of_int (image_bytes t) /. (1024.0 *. 1024.0)

(* Paths under a directory prefix, e.g. files_under t "site-packages/torch". *)
let files_under t prefix =
  let prefix = if String.length prefix > 0 then prefix ^ "/" else prefix in
  List.filter (fun p -> String.length p >= String.length prefix
                        && String.sub p 0 (String.length prefix) = prefix)
    (paths t)

(* --- content addressing -------------------------------------------------- *)

let rec file_digest t path =
  match Hashtbl.find_opt t.files path with
  | Some (Source c) ->
    let memo =
      Mutex.lock t.dig_lock;
      let d = Hashtbl.find_opt t.digests path in
      Mutex.unlock t.dig_lock;
      d
    in
    (match memo with
     | Some d -> Some d
     | None ->
       (* hash outside the lock; a racing duplicate computes the same value *)
       let d = Digest.to_hex (Digest.string c) in
       Mutex.lock t.dig_lock;
       Hashtbl.replace t.digests path d;
       Mutex.unlock t.dig_lock;
       Some d)
  | Some Tombstone -> None
  | None ->
    (match t.parent with Some p -> file_digest p path | None -> None)

let image_digest t =
  let files = effective_files t in
  let file_paths =
    Hashtbl.fold (fun p _ acc -> p :: acc) files [] |> List.sort compare
  in
  let b = Buffer.create 1024 in
  List.iter
    (fun p ->
       Buffer.add_string b p;
       Buffer.add_char b '\x00';
       (match file_digest t p with
        | Some d -> Buffer.add_string b d
        | None -> assert false (* p came from the effective view *));
       Buffer.add_char b '\x01')
    file_paths;
  let phantom_entries =
    Hashtbl.fold (fun p bytes acc -> (p, bytes) :: acc) (effective_phantoms t) []
    |> List.sort compare
  in
  List.iter
    (fun (p, bytes) ->
       Buffer.add_char b '\x02';
       Buffer.add_string b p;
       Buffer.add_string b (string_of_int bytes))
    phantom_entries;
  Digest.to_hex (Digest.string (Buffer.contents b))
