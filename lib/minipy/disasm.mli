(** Stable textual bytecode listings — golden tests pin the format so
    compiler regressions are diffable in review. Jump operands are absolute
    instruction targets; name/const/template indices resolve inline. *)

(** Disassemble a code unit. *)
val to_string : Bytecode.code -> string

(** Compile [def name] from a source snippet (default name ["f"]).
    @raise Invalid_argument when no such def exists at top level. *)
val function_of_source : ?name:string -> string -> Bytecode.code

(** Compile a source snippet as a module body. *)
val module_of_source : string -> Bytecode.code
