(* Stack VM for compiled minipy code units.

   Every instruction that touches the virtual clock or byte ledger does so
   through the shared [Interp] helpers — the charge sites are literally the
   tree-walker's code, so measurements are backend-invariant by construction
   (ARCHITECTURE §11). The VM adds only data movement: slot-indexed locals,
   an operand stack, and pre-resolved jumps.

   Compiled frames contain no exception handling. [try] and any loop
   containing one compile to [Sfallback] (the tree-walker runs the original
   statement), so [Break_exc]/[Continue_exc] never unwind across a compiled
   frame, and [Return_exc] crosses at most one frame boundary — a fallback
   statement raising it lands in the function-frame catch below, exactly
   where [tw_call_function] would catch it. *)

open Value

(* Unbound-slot sentinel, compared physically: a program-constructed string
   of the same contents is a different object. *)
let unbound : value = Vstr "<vm:unbound>"

type frame = {
  code : Bytecode.code;
  stack : value array;
  slots : value array;                    (* Slots mode; [||] otherwise *)
  env : Interp.env option;                (* Dict mode; None otherwise *)
  globals : namespace;
  mutable iters : value list ref list;    (* loop iterator stack *)
}

let frame_of code ~slots ~env ~globals =
  { code;
    stack = Array.make code.Bytecode.max_stack Vnone;
    slots;
    env;
    globals;
    iters = [] }

let the_env frame =
  match frame.env with Some e -> e | None -> assert false

(* locals missed (slot unbound): globals, then builtins — the tail of the
   tree-walker's lookup chain. Exception-style Hashtbl.find keeps option
   allocations out of the hot name path. *)
let global_fallback (t : Interp.t) frame name =
  match Hashtbl.find frame.globals name with
  | v -> v
  | exception Not_found ->
    (match Hashtbl.find t.Interp.builtins name with
     | v -> v
     | exception Not_found ->
       py_error "NameError" "name '%s' is not defined" name)

let load_env (t : Interp.t) env name =
  match Interp.lookup t env name with
  | Some v -> v
  | None -> py_error "NameError" "name '%s' is not defined" name

(* Execute a frame. [in_function] selects what [Return] means: a function
   frame returns its operand, a module frame re-raises Return_exc so a
   module-level [return] behaves exactly as under the tree-walker.

   The dispatch loop carries [pc] and [sp] as loop parameters so they live
   in registers, and uses unsafe array accesses: [sp] bounds are exact by
   construction (the compiler tracks depth linearly and sizes [max_stack]
   from it), and jump targets are in range by [Compiler.finish]. *)
let rec run (t : Interp.t) frame ~in_function : value =
  let code = frame.code in
  let instrs = code.Bytecode.instrs in
  let consts = code.Bytecode.consts in
  let names = code.Bytecode.names in
  let stack = frame.stack in
  let slots = frame.slots in
  let n = Array.length instrs in
  let rec loop pc sp =
    if pc >= n then Vnone
    else
      match Array.unsafe_get instrs pc with
      | Bytecode.Tick ->
        Interp.tick t;
        loop (pc + 1) sp
      | Bytecode.Const i ->
        Interp.tick t;
        Array.unsafe_set stack sp (Array.unsafe_get consts i);
        loop (pc + 1) (sp + 1)
      | Bytecode.Load_slot i ->
        Interp.tick t;
        let v = Array.unsafe_get slots i in
        let v =
          if v == unbound then
            global_fallback t frame code.Bytecode.slot_names.(i)
          else v
        in
        Array.unsafe_set stack sp v;
        loop (pc + 1) (sp + 1)
      | Bytecode.Load_global i ->
        Interp.tick t;
        Array.unsafe_set stack sp (global_fallback t frame (Array.unsafe_get names i));
        loop (pc + 1) (sp + 1)
      | Bytecode.Load_name i ->
        Interp.tick t;
        Array.unsafe_set stack sp (load_env t (the_env frame) names.(i));
        loop (pc + 1) (sp + 1)
      | Bytecode.Load_slot_ref i ->
        let v = Array.unsafe_get slots i in
        let v =
          if v == unbound then
            global_fallback t frame code.Bytecode.slot_names.(i)
          else v
        in
        Array.unsafe_set stack sp v;
        loop (pc + 1) (sp + 1)
      | Bytecode.Load_name_ref i ->
        Array.unsafe_set stack sp (load_env t (the_env frame) names.(i));
        loop (pc + 1) (sp + 1)
      | Bytecode.Push_none ->
        Array.unsafe_set stack sp Vnone;
        loop (pc + 1) (sp + 1)
      | Bytecode.Store_slot i ->
        Array.unsafe_set slots i (Array.unsafe_get stack (sp - 1));
        loop (pc + 1) (sp - 1)
      | Bytecode.Store_name i ->
        let env = the_env frame in
        let name = names.(i) in
        let v = Array.unsafe_get stack (sp - 1) in
        if Hashtbl.mem env.Interp.global_decls name then
          Hashtbl.replace env.Interp.globals name v
        else Hashtbl.replace env.Interp.locals name v;
        loop (pc + 1) (sp - 1)
      | Bytecode.Store_local i ->
        Hashtbl.replace (the_env frame).Interp.locals names.(i)
          (Array.unsafe_get stack (sp - 1));
        loop (pc + 1) (sp - 1)
      | Bytecode.Unpack k ->
        let vs = Interp.iter_values (Array.unsafe_get stack (sp - 1)) in
        let got = List.length vs in
        if got <> k then
          py_error "ValueError" "cannot unpack %d values into %d targets" got k;
        let base = sp - 1 in
        List.iteri (fun j v -> stack.(base + j) <- v) (List.rev vs);
        loop (pc + 1) (base + k)
      | Bytecode.Pop -> loop (pc + 1) (sp - 1)
      | Bytecode.Getattr i ->
        let obj = Array.unsafe_get stack (sp - 1) in
        Array.unsafe_set stack (sp - 1) (Interp.getattr t obj names.(i));
        loop (pc + 1) sp
      | Bytecode.Setattr i ->
        let obj = Array.unsafe_get stack (sp - 1) in
        let v = Array.unsafe_get stack (sp - 2) in
        Interp.setattr t obj names.(i) v;
        loop (pc + 1) (sp - 2)
      | Bytecode.Getitem ->
        let key = Array.unsafe_get stack (sp - 1) in
        let obj = Array.unsafe_get stack (sp - 2) in
        Array.unsafe_set stack (sp - 2) (Interp.subscript t obj key);
        loop (pc + 1) (sp - 1)
      | Bytecode.Setitem ->
        let key = Array.unsafe_get stack (sp - 1) in
        let obj = Array.unsafe_get stack (sp - 2) in
        let v = Array.unsafe_get stack (sp - 3) in
        Interp.store_subscript t obj key v;
        loop (pc + 1) (sp - 3)
      | Bytecode.Getslice (has_lo, has_hi) ->
        let nhi = if has_hi then 1 else 0 in
        let nlo = if has_lo then 1 else 0 in
        let hi = if has_hi then Some stack.(sp - 1) else None in
        let lo = if has_lo then Some stack.(sp - 1 - nhi) else None in
        let base = sp - 1 - nhi - nlo in
        let obj = stack.(base) in
        stack.(base) <- Interp.slice t obj lo hi;
        loop (pc + 1) (base + 1)
      | Bytecode.Binop op ->
        let rv = Array.unsafe_get stack (sp - 1) in
        let lv = Array.unsafe_get stack (sp - 2) in
        Array.unsafe_set stack (sp - 2) (Interp.binop_values t op lv rv);
        loop (pc + 1) (sp - 1)
      | Bytecode.Unop op ->
        let v = Array.unsafe_get stack (sp - 1) in
        Array.unsafe_set stack (sp - 1)
          (match op, v with
           | Ast.Not, v -> Vbool (not (truthy v))
           | Ast.Neg, Vint i -> Vint (-i)
           | Ast.Neg, Vfloat f -> Vfloat (-.f)
           | Ast.Neg, v ->
             py_error "TypeError" "bad operand type for unary -: '%s'"
               (type_name v)
           | Ast.Pos, ((Vint _ | Vfloat _) as v) -> v
           | Ast.Pos, v ->
             py_error "TypeError" "bad operand type for unary +: '%s'"
               (type_name v));
        loop (pc + 1) sp
      | Bytecode.Build_list k ->
        let base = sp - k in
        let items = Array.init k (fun j -> stack.(base + j)) in
        let v = Vlist { items } in
        Interp.charge_alloc t v;
        stack.(base) <- v;
        loop (pc + 1) (base + 1)
      | Bytecode.Build_tuple k ->
        let base = sp - k in
        let items = Array.init k (fun j -> stack.(base + j)) in
        let v = Vtuple items in
        Interp.charge_alloc t v;
        stack.(base) <- v;
        loop (pc + 1) (base + 1)
      | Bytecode.Build_dict k ->
        let d = { pairs = [] } in
        let base = sp - (2 * k) in
        for j = 0 to k - 1 do
          dict_set d stack.(base + (2 * j)) stack.(base + (2 * j) + 1)
        done;
        let v = Vdict d in
        Interp.charge_alloc t v;
        stack.(base) <- v;
        loop (pc + 1) (base + 1)
      | Bytecode.Push_list ->
        Array.unsafe_set stack sp (Vlist { items = [||] });
        loop (pc + 1) (sp + 1)
      | Bytecode.Push_dict ->
        Array.unsafe_set stack sp (Vdict { pairs = [] });
        loop (pc + 1) (sp + 1)
      | Bytecode.List_append ->
        let elt = Array.unsafe_get stack (sp - 1) in
        (match Array.unsafe_get stack (sp - 2) with
         | Vlist l -> l.items <- Array.append l.items [| elt |]
         | _ -> assert false);
        loop (pc + 1) (sp - 1)
      | Bytecode.Map_add ->
        let v = Array.unsafe_get stack (sp - 1) in
        let k = Array.unsafe_get stack (sp - 2) in
        (match Array.unsafe_get stack (sp - 3) with
         | Vdict d -> dict_set d k v
         | _ -> assert false);
        loop (pc + 1) (sp - 2)
      | Bytecode.Charge_top ->
        Interp.charge_alloc t (Array.unsafe_get stack (sp - 1));
        loop (pc + 1) sp
      | Bytecode.Call (nargs, kwnames) ->
        let nk = Array.length kwnames in
        let kwargs =
          List.init nk (fun j -> (names.(kwnames.(j)), stack.(sp - nk + j)))
        in
        let args = List.init nargs (fun j -> stack.(sp - nk - nargs + j)) in
        let base = sp - nk - nargs - 1 in
        let callee = stack.(base) in
        stack.(base) <- Interp.call_value t callee args kwargs;
        loop (pc + 1) (base + 1)
      | Bytecode.Make_function fi ->
        let tmpl = code.Bytecode.funcs.(fi) in
        let nd =
          List.fold_left
            (fun acc (_, has_default) -> if has_default then acc + 1 else acc)
            0 tmpl.Bytecode.mk_params
        in
        let j = ref 0 in
        let fparams =
          List.map
            (fun (name, has_default) ->
               if has_default then begin
                 let v = stack.(sp - nd + !j) in
                 incr j;
                 (name, Some v)
               end
               else (name, None))
            tmpl.Bytecode.mk_params
        in
        let base = sp - nd in
        let f =
          Vfunc
            { fname = tmpl.Bytecode.mk_name;
              fparams;
              fbody = tmpl.Bytecode.mk_body;
              fglobals = frame.globals;
              fmodule = tmpl.Bytecode.mk_module;
              fcode = None }
        in
        Interp.charge_alloc t f;
        stack.(base) <- f;
        loop (pc + 1) (base + 1)
      | Bytecode.Jump target -> loop target sp
      | Bytecode.Pop_jump_if_false target ->
        if truthy (Array.unsafe_get stack (sp - 1)) then loop (pc + 1) (sp - 1)
        else loop target (sp - 1)
      | Bytecode.Pop_jump_if_true target ->
        if truthy (Array.unsafe_get stack (sp - 1)) then loop target (sp - 1)
        else loop (pc + 1) (sp - 1)
      | Bytecode.Jump_if_falsy_keep target ->
        if truthy (Array.unsafe_get stack (sp - 1)) then loop (pc + 1) (sp - 1)
        else loop target sp
      | Bytecode.Jump_if_truthy_keep target ->
        if truthy (Array.unsafe_get stack (sp - 1)) then loop target sp
        else loop (pc + 1) (sp - 1)
      | Bytecode.Get_iter ->
        frame.iters <-
          ref (Interp.iter_values (Array.unsafe_get stack (sp - 1)))
          :: frame.iters;
        loop (pc + 1) (sp - 1)
      | Bytecode.For_iter target ->
        (match frame.iters with
         | r :: rest ->
           (match !r with
            | [] ->
              frame.iters <- rest;
              loop target sp
            | v :: tl ->
              r := tl;
              Array.unsafe_set stack sp v;
              loop (pc + 1) (sp + 1))
         | [] -> assert false)
      | Bytecode.Pop_iter ->
        frame.iters <- List.tl frame.iters;
        loop (pc + 1) sp
      | Bytecode.Return ->
        let v = Array.unsafe_get stack (sp - 1) in
        if in_function then v else raise (Interp.Return_exc v)
      | Bytecode.Raise_top ->
        (match Array.unsafe_get stack (sp - 1) with
         | Vexc exc -> raise (Py_error exc)
         | Vstr msg ->
           raise (Py_error { exc_class = "Exception"; exc_msg = msg })
         | v ->
           py_error "TypeError"
             "exceptions must derive from BaseException, got %s" (type_name v))
      | Bytecode.Raise_bare ->
        py_error "RuntimeError" "No active exception to re-raise"
      | Bytecode.Assert_msg ->
        py_error "AssertionError" "%s"
          (to_display (Array.unsafe_get stack (sp - 1)))
      | Bytecode.Assert_plain -> py_error "AssertionError" ""
      | Bytecode.Sfallback i ->
        Interp.exec_stmt t (the_env frame) code.Bytecode.stmts.(i);
        loop (pc + 1) sp
  in
  loop 0 0

(* Bind arguments into parameter slots, raising the same TypeErrors in the
   same order as [Interp.bind_args]. Parameters occupy slots 0..n-1. *)
and bind_slots (f : func) args kwargs (slots : value array) =
  let rec bind i params args =
    match params, args with
    | [], [] -> ()
    | [], extra ->
      py_error "TypeError" "%s() takes %d positional arguments but %d were given"
        f.fname (List.length f.fparams)
        (List.length f.fparams + List.length extra)
    | (name, default) :: ps, [] ->
      (match List.assoc_opt name kwargs with
       | Some v -> slots.(i) <- v
       | None ->
         (match default with
          | Some v -> slots.(i) <- v
          | None ->
            py_error "TypeError" "%s() missing required argument: '%s'" f.fname name));
      bind (i + 1) ps []
    | (_, _) :: ps, a :: rest ->
      slots.(i) <- a;
      bind (i + 1) ps rest
  in
  bind 0 f.fparams args;
  List.iter
    (fun (k, _) ->
       if not (List.mem_assoc k f.fparams) then
         py_error "TypeError" "%s() got an unexpected keyword argument '%s'" f.fname k)
    kwargs

and call_function (t : Interp.t) (f : func) args kwargs : value =
  let code = Compiler.compile_function f in
  match code.Bytecode.mode with
  | Bytecode.Slots ->
    let slots = Array.make (max 1 code.Bytecode.nslots) unbound in
    bind_slots f args kwargs slots;
    let frame = frame_of code ~slots ~env:None ~globals:f.fglobals in
    run t frame ~in_function:true
  | Bytecode.Dict ->
    let locals = Hashtbl.create 8 in
    Interp.bind_args f args kwargs locals;
    let env =
      { Interp.locals; globals = f.fglobals; global_decls = Hashtbl.create 4 }
    in
    let frame = frame_of code ~slots:[||] ~env:(Some env) ~globals:f.fglobals in
    (* Return_exc can only arrive from an Sfallback statement; compiled
       returns take the direct path inside [run] *)
    (try run t frame ~in_function:true with Interp.Return_exc v -> v)

let exec_module (t : Interp.t) (env : Interp.env) (cache_key : string option)
    (prog : Ast.program) : unit =
  let code =
    match cache_key with
    | Some key ->
      Parse_cache.find_or_compile t.Interp.parse_cache key (fun () ->
          Compiler.compile_program prog)
    | None -> Compiler.compile_program_memo prog
  in
  let frame = frame_of code ~slots:[||] ~env:(Some env) ~globals:env.Interp.globals in
  ignore (run t frame ~in_function:false)

let backend : Interp.exec_backend =
  { Interp.xb_name = "vm";
    xb_exec_module = exec_module;
    xb_call_function = call_function }
