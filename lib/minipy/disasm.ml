(* Textual bytecode listings.

   The format is stable and diffable — golden tests pin it so compiler
   regressions show up as listing diffs in review. One instruction per line:

     {pc:>4}  OPCODE operand   ; resolved detail

   Jump operands are absolute targets. Details resolve name/const/template
   indices so a listing reads without the side tables. *)

open Bytecode

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let const_repr v = escape (Value.to_repr v)

let stmt_kind (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Expr_stmt _ -> "expr"
  | Ast.Assign _ -> "assign"
  | Ast.AugAssign _ -> "augassign"
  | Ast.Import _ -> "import"
  | Ast.From_import _ -> "from_import"
  | Ast.Def _ -> "def"
  | Ast.Class _ -> "class"
  | Ast.Return _ -> "return"
  | Ast.If _ -> "if"
  | Ast.While _ -> "while"
  | Ast.For _ -> "for"
  | Ast.Try _ -> "try"
  | Ast.Raise _ -> "raise"
  | Ast.Pass -> "pass"
  | Ast.Break -> "break"
  | Ast.Continue -> "continue"
  | Ast.Global _ -> "global"
  | Ast.Del _ -> "del"
  | Ast.Assert _ -> "assert"

let unop_str = function
  | Ast.Not -> "not"
  | Ast.Neg -> "-"
  | Ast.Pos -> "+"

let instr_str (code : code) = function
  | Tick -> "TICK"
  | Const i -> Printf.sprintf "CONST %d            ; %s" i (const_repr code.consts.(i))
  | Load_slot i -> Printf.sprintf "LOAD_SLOT %d        ; %s" i code.slot_names.(i)
  | Load_global i -> Printf.sprintf "LOAD_GLOBAL %d      ; %s" i code.names.(i)
  | Load_name i -> Printf.sprintf "LOAD_NAME %d        ; %s" i code.names.(i)
  | Load_slot_ref i ->
    Printf.sprintf "LOAD_SLOT_REF %d    ; %s" i code.slot_names.(i)
  | Load_name_ref i -> Printf.sprintf "LOAD_NAME_REF %d    ; %s" i code.names.(i)
  | Push_none -> "PUSH_NONE"
  | Store_slot i -> Printf.sprintf "STORE_SLOT %d       ; %s" i code.slot_names.(i)
  | Store_name i -> Printf.sprintf "STORE_NAME %d       ; %s" i code.names.(i)
  | Store_local i -> Printf.sprintf "STORE_LOCAL %d      ; %s" i code.names.(i)
  | Unpack n -> Printf.sprintf "UNPACK %d" n
  | Pop -> "POP"
  | Getattr i -> Printf.sprintf "GETATTR %d          ; %s" i code.names.(i)
  | Setattr i -> Printf.sprintf "SETATTR %d          ; %s" i code.names.(i)
  | Getitem -> "GETITEM"
  | Setitem -> "SETITEM"
  | Getslice (lo, hi) ->
    Printf.sprintf "GETSLICE %s%s"
      (if lo then "lo" else "-") (if hi then ":hi" else ":-")
  | Binop op -> Printf.sprintf "BINOP %s" (Pretty.binop_str op)
  | Unop op -> Printf.sprintf "UNOP %s" (unop_str op)
  | Build_list n -> Printf.sprintf "BUILD_LIST %d" n
  | Build_tuple n -> Printf.sprintf "BUILD_TUPLE %d" n
  | Build_dict n -> Printf.sprintf "BUILD_DICT %d" n
  | Push_list -> "PUSH_LIST"
  | Push_dict -> "PUSH_DICT"
  | List_append -> "LIST_APPEND"
  | Map_add -> "MAP_ADD"
  | Charge_top -> "CHARGE_TOP"
  | Call (n, kwnames) ->
    if Array.length kwnames = 0 then Printf.sprintf "CALL %d" n
    else
      Printf.sprintf "CALL %d            ; kw=[%s]" n
        (String.concat ", "
           (Array.to_list (Array.map (fun i -> code.names.(i)) kwnames)))
  | Make_function i ->
    let t = code.funcs.(i) in
    Printf.sprintf "MAKE_FUNCTION %d    ; %s(%s)" i t.mk_name
      (String.concat ", "
         (List.map
            (fun (p, has_default) -> if has_default then p ^ "=…" else p)
            t.mk_params))
  | Jump t -> Printf.sprintf "JUMP %d" t
  | Pop_jump_if_false t -> Printf.sprintf "POP_JUMP_IF_FALSE %d" t
  | Pop_jump_if_true t -> Printf.sprintf "POP_JUMP_IF_TRUE %d" t
  | Jump_if_falsy_keep t -> Printf.sprintf "JUMP_IF_FALSY_KEEP %d" t
  | Jump_if_truthy_keep t -> Printf.sprintf "JUMP_IF_TRUTHY_KEEP %d" t
  | Get_iter -> "GET_ITER"
  | For_iter t -> Printf.sprintf "FOR_ITER %d" t
  | Pop_iter -> "POP_ITER"
  | Return -> "RETURN"
  | Raise_top -> "RAISE_TOP"
  | Raise_bare -> "RAISE_BARE"
  | Assert_msg -> "ASSERT_MSG"
  | Assert_plain -> "ASSERT_PLAIN"
  | Sfallback i ->
    Printf.sprintf "SFALLBACK %d        ; %s" i (stmt_kind code.stmts.(i))

let to_string (code : code) =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "mode=%s nslots=%d max_stack=%d\n"
    (match code.mode with Slots -> "slots" | Dict -> "dict")
    code.nslots code.max_stack;
  if Array.length code.slot_names > 0 then
    Printf.bprintf buf "slots: %s\n"
      (String.concat " " (Array.to_list code.slot_names));
  Array.iteri
    (fun pc i -> Printf.bprintf buf "%4d  %s\n" pc (instr_str code i))
    code.instrs;
  Buffer.contents buf

(* Convenience entry points for golden tests and debugging. *)

let function_of_source ?(name = "f") source =
  let prog = Parser.parse ~file:"<disasm>" source in
  let rec find = function
    | [] -> invalid_arg (Printf.sprintf "Disasm.function_of_source: no def %s" name)
    | s :: rest ->
      (match s.Ast.sdesc with
       | Ast.Def d when String.equal d.Ast.dname name -> d
       | _ -> find rest)
  in
  let d = find prog in
  Compiler.compile_body
    ~params:(List.map (fun p -> p.Ast.pname) d.Ast.dparams)
    d.Ast.dbody

let module_of_source source =
  Compiler.compile_program (Parser.parse ~file:"<disasm>" source)
