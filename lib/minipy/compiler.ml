(* AST → bytecode compiler for the minipy VM backend.

   The compiler's one hard obligation is accounting parity with the
   tree-walker (ARCHITECTURE §11): it emits a [Tick] — or a tick-fused leaf
   load — at exactly the program points where [Interp.eval] / [exec_stmt]
   tick, in the same order, and routes every allocation through the same
   shared helpers. Compilation is tiered:

   - functions whose bodies contain only compilable statement kinds get
     [Slots] mode: locals are array slots resolved at compile time, with an
     unbound sentinel falling back to globals/builtins (matching the
     tree-walker's locals → globals → builtins chain);
   - module bodies and functions that use namespace- or exception-dependent
     statements (import/from/class/try/global/del) get [Dict] mode against a
     real [Interp.env], where those statements compile to [Sfallback] — the
     reference tree-walker runs the original statement in place;
   - a loop whose subtree contains [try] falls back wholly, so
     [Break_exc]/[Continue_exc] can never unwind across a compiled frame.

   Code units are immutable and shared freely across domains; the memo
   tables below are mutex-guarded. *)

open Bytecode

type Value.code_ref += Compiled of code

(* --- what compiles, what falls back -------------------------------------- *)

(* Statement kinds a compiled frame can execute directly. [in_loop] tracks
   whether break/continue have a compiled loop to target; a stray one must
   fall back so it raises Break_exc/Continue_exc like the reference. Def
   bodies are separate compilation units and are not descended into. *)
let rec stmt_supported ~in_loop (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Import _ | Ast.From_import _ | Ast.Class _ | Ast.Try _
  | Ast.Global _ | Ast.Del _ -> false
  | Ast.AugAssign (Ast.Ttuple _, _, _) -> false
  | Ast.Break | Ast.Continue -> in_loop
  | Ast.If (branches, orelse) ->
    List.for_all (fun (_, b) -> block_supported ~in_loop b) branches
    && block_supported ~in_loop orelse
  | Ast.While (_, body) | Ast.For (_, _, body) ->
    block_supported ~in_loop:true body
  | Ast.Expr_stmt _ | Ast.Assign _ | Ast.AugAssign _ | Ast.Def _
  | Ast.Return _ | Ast.Raise _ | Ast.Pass | Ast.Assert _ -> true

and block_supported ~in_loop body = List.for_all (stmt_supported ~in_loop) body

(* In dict mode, a loop containing try anywhere in its compiled subtree must
   fall back wholly: the tree-walker's finally clauses re-raise
   Break_exc/Continue_exc, which compiled loops cannot observe. Class and
   Def subtrees don't count — they are Sfallback/separate units anyway. *)
let rec contains_try (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Try _ -> true
  | Ast.If (branches, orelse) ->
    List.exists (fun (_, b) -> List.exists contains_try b) branches
    || List.exists contains_try orelse
  | Ast.While (_, body) | Ast.For (_, _, body) -> List.exists contains_try body
  | _ -> false

(* --- assigned-name analysis (Slots mode) --------------------------------- *)

(* Every name the body can bind, in first-binding order: assignment targets,
   for-targets, def names, and comprehension variables (comprehensions share
   the enclosing scope, exactly like the tree-walker's assign_target).
   Lambda bodies are separate scopes and are skipped; def default
   expressions evaluate in the enclosing scope and are scanned. *)
let collect_assigned add body =
  let rec target = function
    | Ast.Tname n -> add n
    | Ast.Tattr (b, _) -> expr b
    | Ast.Tsubscript (b, i) -> expr b; expr i
    | Ast.Ttuple ts -> List.iter target ts
  and expr (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.Const _ | Ast.Name _ -> ()
    | Ast.Attr (b, _) -> expr b
    | Ast.Subscript (b, i) -> expr b; expr i
    | Ast.Call (f, args, kwargs) ->
      expr f; List.iter expr args; List.iter (fun (_, v) -> expr v) kwargs
    | Ast.Binop (_, l, r) -> expr l; expr r
    | Ast.Unop (_, x) -> expr x
    | Ast.ListLit items | Ast.TupleLit items -> List.iter expr items
    | Ast.DictLit pairs -> List.iter (fun (k, v) -> expr k; expr v) pairs
    | Ast.Lambda _ -> ()
    | Ast.IfExp (c, a, b) -> expr c; expr a; expr b
    | Ast.Slice (b, lo, hi) -> expr b; Option.iter expr lo; Option.iter expr hi
    | Ast.ListComp { Ast.celt; cvar; citer; ccond } ->
      target cvar; expr citer; Option.iter expr ccond; expr celt
    | Ast.DictComp { Ast.dckey; dcval; dcvar; dciter; dccond } ->
      target dcvar; expr dciter; Option.iter expr dccond; expr dckey; expr dcval
  and stmt (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Ast.Expr_stmt e -> expr e
    | Ast.Assign (tg, e) | Ast.AugAssign (tg, _, e) -> target tg; expr e
    | Ast.Def d ->
      add d.Ast.dname;
      List.iter (fun p -> Option.iter expr p.Ast.pdefault) d.Ast.dparams
    | Ast.Return e -> Option.iter expr e
    | Ast.If (branches, orelse) ->
      List.iter (fun (c, b) -> expr c; List.iter stmt b) branches;
      List.iter stmt orelse
    | Ast.While (c, b) -> expr c; List.iter stmt b
    | Ast.For (tg, it, b) -> target tg; expr it; List.iter stmt b
    | Ast.Raise e -> Option.iter expr e
    | Ast.Assert (c, m) -> expr c; Option.iter expr m
    | Ast.Pass | Ast.Break | Ast.Continue -> ()
    | Ast.Import _ | Ast.From_import _ | Ast.Class _ | Ast.Try _
    | Ast.Global _ | Ast.Del _ -> ()  (* unreachable in Slots mode *)
  in
  List.iter stmt body

(* --- emitter -------------------------------------------------------------- *)

type scope =
  | Sslots of (string, int) Hashtbl.t
  | Sdict

type loop_ctx = { l_cont : int; l_brk : int; l_is_for : bool }

type emitter = {
  mutable ins : instr array;
  mutable len : int;
  mutable consts : Value.value list;   (* reversed *)
  mutable nconsts : int;
  mutable names : (string * int) list; (* interned, reversed *)
  mutable nnames : int;
  mutable stms : Ast.stmt list;        (* reversed *)
  mutable nstms : int;
  mutable funcs : template list;       (* reversed *)
  mutable nfuncs : int;
  mutable labels : int array;          (* label id -> pc, patched at finish *)
  mutable nlabels : int;
  mutable depth : int;                 (* linear operand-stack tracking *)
  mutable maxd : int;
  mutable loops : loop_ctx list;
  scope : scope;
}

let fresh scope =
  { ins = Array.make 32 Tick; len = 0;
    consts = []; nconsts = 0;
    names = []; nnames = 0;
    stms = []; nstms = 0;
    funcs = []; nfuncs = 0;
    labels = Array.make 8 (-1); nlabels = 0;
    depth = 0; maxd = 0; loops = []; scope }

(* Net operand-stack effect. [For_iter]'s exhaust edge and the keep-jumps'
   taken edges are handled by the structured emission patterns below (every
   label is bound at the depth its jumps carry), so linear tracking is exact. *)
let stack_effect = function
  | Tick | Getattr _ | Unop _ | Jump _ | Pop_iter | Raise_bare | Assert_plain
  | Charge_top | Sfallback _ -> 0
  | Const _ | Load_slot _ | Load_global _ | Load_name _ | Load_slot_ref _
  | Load_name_ref _ | Push_none | Push_list | Push_dict | For_iter _ -> 1
  | Store_slot _ | Store_name _ | Store_local _ | Pop | Getitem | Binop _
  | Pop_jump_if_false _ | Pop_jump_if_true _ | Jump_if_falsy_keep _
  | Jump_if_truthy_keep _ | List_append | Return | Raise_top | Assert_msg
  | Get_iter -> -1
  | Unpack n -> n - 1
  | Setattr _ | Map_add -> -2
  | Setitem -> -3
  | Getslice (l, h) -> -(Bool.to_int l + Bool.to_int h)
  | Build_list n | Build_tuple n -> 1 - n
  | Build_dict n -> 1 - (2 * n)
  | Call (n, kw) -> -(n + Array.length kw)
  | Make_function _ -> 1  (* minus defaults, adjusted at the emit site *)

let emit em i =
  if em.len = Array.length em.ins then begin
    let bigger = Array.make (2 * em.len) Tick in
    Array.blit em.ins 0 bigger 0 em.len;
    em.ins <- bigger
  end;
  em.ins.(em.len) <- i;
  em.len <- em.len + 1;
  em.depth <- em.depth + stack_effect i;
  if em.depth > em.maxd then em.maxd <- em.depth

let adjust em d = em.depth <- em.depth + d

let set_depth em d = em.depth <- d

let new_label em =
  if em.nlabels = Array.length em.labels then begin
    let bigger = Array.make (2 * em.nlabels) (-1) in
    Array.blit em.labels 0 bigger 0 em.nlabels;
    em.labels <- bigger
  end;
  let l = em.nlabels in
  em.nlabels <- l + 1;
  l

let bind em l = em.labels.(l) <- em.len

let add_const em v =
  let i = em.nconsts in
  em.consts <- v :: em.consts;
  em.nconsts <- i + 1;
  i

let add_name em n =
  match List.assoc_opt n em.names with
  | Some i -> i
  | None ->
    let i = em.nnames in
    em.names <- (n, i) :: em.names;
    em.nnames <- i + 1;
    i

let add_stmt em s =
  let i = em.nstms in
  em.stms <- s :: em.stms;
  em.nstms <- i + 1;
  i

let add_func em f =
  let i = em.nfuncs in
  em.funcs <- f :: em.funcs;
  em.nfuncs <- i + 1;
  i

let value_of_const = function
  | Ast.Cint i -> Value.Vint i
  | Ast.Cfloat f -> Value.Vfloat f
  | Ast.Cstr s -> Value.Vstr s
  | Ast.Cbool b -> Value.Vbool b
  | Ast.Cnone -> Value.Vnone

let finish em ~mode ~nslots ~slot_names =
  let resolve l =
    let pc = em.labels.(l) in
    assert (pc >= 0);
    pc
  in
  let instrs =
    Array.init em.len (fun i ->
        match em.ins.(i) with
        | Jump l -> Jump (resolve l)
        | Pop_jump_if_false l -> Pop_jump_if_false (resolve l)
        | Pop_jump_if_true l -> Pop_jump_if_true (resolve l)
        | Jump_if_falsy_keep l -> Jump_if_falsy_keep (resolve l)
        | Jump_if_truthy_keep l -> Jump_if_truthy_keep (resolve l)
        | For_iter l -> For_iter (resolve l)
        | i -> i)
  in
  let names = Array.make em.nnames "" in
  List.iter (fun (n, i) -> names.(i) <- n) em.names;
  { instrs;
    consts = Array.of_list (List.rev em.consts);
    names;
    stmts = Array.of_list (List.rev em.stms);
    funcs = Array.of_list (List.rev em.funcs);
    mode; nslots; slot_names;
    max_stack = em.maxd + 4 }

(* --- expression / statement compilation ----------------------------------

   Tick discipline: [Interp.eval] ticks on entry of every expression node,
   parent before children; [exec_stmt] ticks on entry of every statement.
   Leaf loads fuse their tick; internal nodes emit an explicit [Tick] before
   their operands. [Sfallback] emits no tick — exec_stmt ticks itself. *)

let slot_of em n =
  match em.scope with
  | Sslots tbl ->
    (match Hashtbl.find_opt tbl n with
     | Some i -> Some i
     | None -> None)
  | Sdict -> None

let rec cx em (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Const c -> emit em (Const (add_const em (value_of_const c)))
  | Ast.Name n ->
    (match em.scope with
     | Sslots _ ->
       (match slot_of em n with
        | Some i -> emit em (Load_slot i)
        | None -> emit em (Load_global (add_name em n)))
     | Sdict -> emit em (Load_name (add_name em n)))
  | Ast.Attr (base, name) ->
    emit em Tick;
    cx em base;
    emit em (Getattr (add_name em name))
  | Ast.Subscript (base, idx) ->
    emit em Tick;
    cx em base;
    cx em idx;
    emit em Getitem
  | Ast.Call (f, args, kwargs) ->
    emit em Tick;
    cx em f;
    List.iter (cx em) args;
    let kwn = Array.of_list (List.map (fun (k, _) -> add_name em k) kwargs) in
    List.iter (fun (_, v) -> cx em v) kwargs;
    emit em (Call (List.length args, kwn))
  | Ast.Binop (Ast.And, l, r) ->
    emit em Tick;
    cx em l;
    let l_end = new_label em in
    emit em (Jump_if_falsy_keep l_end);
    cx em r;
    bind em l_end
  | Ast.Binop (Ast.Or, l, r) ->
    emit em Tick;
    cx em l;
    let l_end = new_label em in
    emit em (Jump_if_truthy_keep l_end);
    cx em r;
    bind em l_end
  | Ast.Binop (op, l, r) ->
    emit em Tick;
    cx em l;
    cx em r;
    emit em (Binop op)
  | Ast.Unop (op, x) ->
    emit em Tick;
    cx em x;
    emit em (Unop op)
  | Ast.ListLit items ->
    emit em Tick;
    List.iter (cx em) items;
    emit em (Build_list (List.length items))
  | Ast.TupleLit items ->
    emit em Tick;
    List.iter (cx em) items;
    emit em (Build_tuple (List.length items))
  | Ast.DictLit pairs ->
    emit em Tick;
    List.iter (fun (k, v) -> cx em k; cx em v) pairs;
    emit em (Build_dict (List.length pairs))
  | Ast.Lambda (params, body) ->
    emit em Tick;
    let tmpl =
      { mk_name = "<lambda>"; mk_module = "<lambda>";
        mk_params = List.map (fun p -> (p, false)) params;
        (* allocated once here: every closure made at this site shares the
           body physically, so the compile memo hits *)
        mk_body = [ Ast.s (Ast.Return (Some body)) ] }
    in
    emit em (Make_function (add_func em tmpl))
  | Ast.IfExp (cond, then_, else_) ->
    emit em Tick;
    cx em cond;
    let l_else = new_label em and l_end = new_label em in
    emit em (Pop_jump_if_false l_else);
    let d0 = em.depth in
    cx em then_;
    emit em (Jump l_end);
    bind em l_else;
    set_depth em d0;
    cx em else_;
    bind em l_end
  | Ast.Slice (base, lo, hi) ->
    emit em Tick;
    cx em base;
    Option.iter (cx em) lo;
    Option.iter (cx em) hi;
    emit em (Getslice (lo <> None, hi <> None))
  | Ast.ListComp { Ast.celt; cvar; citer; ccond } ->
    emit em Tick;
    cx em citer;
    emit em Get_iter;
    emit em Push_list;
    let l_top = new_label em and l_end = new_label em in
    bind em l_top;
    emit em (For_iter l_end);
    store_target em cvar;
    (match ccond with
     | Some c -> cx em c; emit em (Pop_jump_if_false l_top)
     | None -> ());
    cx em celt;
    emit em List_append;
    emit em (Jump l_top);
    bind em l_end;
    (* the tree-walker charges the finished list once, at the end *)
    emit em Charge_top
  | Ast.DictComp { Ast.dckey; dcval; dcvar; dciter; dccond } ->
    emit em Tick;
    cx em dciter;
    emit em Get_iter;
    emit em Push_dict;
    let l_top = new_label em and l_end = new_label em in
    bind em l_top;
    emit em (For_iter l_end);
    store_target em dcvar;
    (match dccond with
     | Some c -> cx em c; emit em (Pop_jump_if_false l_top)
     | None -> ());
    cx em dckey;
    cx em dcval;
    emit em Map_add;
    emit em (Jump l_top);
    bind em l_end;
    emit em Charge_top

and store_target em (tg : Ast.target) =
  match tg with
  | Ast.Tname n ->
    (match em.scope with
     | Sslots _ ->
       (match slot_of em n with
        | Some i -> emit em (Store_slot i)
        | None -> assert false (* every assigned name has a slot *))
     | Sdict -> emit em (Store_name (add_name em n)))
  | Ast.Tattr (base, name) ->
    cx em base;
    emit em (Setattr (add_name em name))
  | Ast.Tsubscript (base, idx) ->
    cx em base;
    cx em idx;
    emit em Setitem
  | Ast.Ttuple ts ->
    emit em (Unpack (List.length ts));
    List.iter (store_target em) ts

and cs em (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Expr_stmt e ->
    emit em Tick;
    cx em e;
    emit em Pop
  | Ast.Assign (tg, e) ->
    emit em Tick;
    cx em e;
    store_target em tg
  | Ast.AugAssign ((Ast.Ttuple _), _, _) -> fallback em s
  | Ast.AugAssign (tg, op, e) ->
    emit em Tick;
    (* current value: a non-ticking read for names, a re-evaluating read for
       attr/subscript bases — both exactly as the tree-walker sequences it *)
    (match tg with
     | Ast.Tname n ->
       (match em.scope with
        | Sslots _ ->
          (match slot_of em n with
           | Some i -> emit em (Load_slot_ref i)
           | None -> assert false)
        | Sdict -> emit em (Load_name_ref (add_name em n)))
     | Ast.Tattr (base, name) ->
       cx em base;
       emit em (Getattr (add_name em name))
     | Ast.Tsubscript (base, idx) ->
       cx em base;
       cx em idx;
       emit em Getitem
     | Ast.Ttuple _ -> assert false);
    cx em e;
    emit em (Binop op);
    store_target em tg
  | Ast.Def d ->
    emit em Tick;
    let ndefaults =
      List.fold_left
        (fun acc p -> acc + (match p.Ast.pdefault with Some _ -> 1 | None -> 0))
        0 d.Ast.dparams
    in
    List.iter (fun p -> Option.iter (cx em) p.Ast.pdefault) d.Ast.dparams;
    let tmpl =
      { mk_name = d.Ast.dname; mk_module = "<module>";
        mk_params =
          List.map (fun p -> (p.Ast.pname, p.Ast.pdefault <> None)) d.Ast.dparams;
        mk_body = d.Ast.dbody }
    in
    emit em (Make_function (add_func em tmpl));
    adjust em (-ndefaults);
    (* def binds into locals unconditionally (no global_decls check) *)
    (match em.scope with
     | Sslots _ ->
       (match slot_of em d.Ast.dname with
        | Some i -> emit em (Store_slot i)
        | None -> assert false)
     | Sdict -> emit em (Store_local (add_name em d.Ast.dname)))
  | Ast.Return e ->
    emit em Tick;
    (match e with
     | Some e -> cx em e
     | None -> emit em Push_none);
    emit em Return
  | Ast.If (branches, orelse) ->
    emit em Tick;
    let l_end = new_label em in
    let d0 = em.depth in
    List.iter
      (fun (cond, body) ->
         cx em cond;
         let l_next = new_label em in
         emit em (Pop_jump_if_false l_next);
         cblock em body;
         emit em (Jump l_end);
         bind em l_next;
         set_depth em d0)
      branches;
    cblock em orelse;
    bind em l_end
  | Ast.While (cond, body) ->
    if List.exists contains_try body then fallback em s
    else begin
      emit em Tick;
      let l_top = new_label em and l_end = new_label em in
      bind em l_top;
      cx em cond;
      emit em (Pop_jump_if_false l_end);
      em.loops <- { l_cont = l_top; l_brk = l_end; l_is_for = false } :: em.loops;
      cblock em body;
      em.loops <- List.tl em.loops;
      emit em (Jump l_top);
      bind em l_end
    end
  | Ast.For (tg, iter, body) ->
    if List.exists contains_try body then fallback em s
    else begin
      emit em Tick;
      cx em iter;
      emit em Get_iter;
      let l_top = new_label em and l_end = new_label em in
      bind em l_top;
      emit em (For_iter l_end);
      store_target em tg;
      em.loops <- { l_cont = l_top; l_brk = l_end; l_is_for = true } :: em.loops;
      cblock em body;
      em.loops <- List.tl em.loops;
      emit em (Jump l_top);
      bind em l_end
    end
  | Ast.Break ->
    emit em Tick;
    (match em.loops with
     | { l_brk; l_is_for; _ } :: _ ->
       if l_is_for then emit em Pop_iter;
       emit em (Jump l_brk)
     | [] -> assert false (* stray break is unsupported, caught by analysis *))
  | Ast.Continue ->
    emit em Tick;
    (match em.loops with
     | { l_cont; _ } :: _ -> emit em (Jump l_cont)
     | [] -> assert false)
  | Ast.Raise (Some e) ->
    emit em Tick;
    cx em e;
    emit em Raise_top
  | Ast.Raise None ->
    emit em Tick;
    emit em Raise_bare
  | Ast.Pass -> emit em Tick
  | Ast.Assert (cond, msg) ->
    emit em Tick;
    cx em cond;
    let l_end = new_label em in
    emit em (Pop_jump_if_true l_end);
    (match msg with
     | Some m -> cx em m; emit em Assert_msg
     | None -> emit em Assert_plain);
    bind em l_end
  | Ast.Import _ | Ast.From_import _ | Ast.Class _ | Ast.Try _
  | Ast.Global _ | Ast.Del _ -> fallback em s

and fallback em s =
  (match em.scope with
   | Sdict -> ()
   | Sslots _ -> assert false (* analysis routes these bodies to Dict mode *));
  emit em (Sfallback (add_stmt em s))

and cblock em body = List.iter (cs em) body

(* --- compilation units ---------------------------------------------------- *)

(* A function body. Parameters claim the first slots in order; the trailing
   Push_none/Return covers falling off the end (the tree-walker returns
   Vnone when no Return_exc fires). *)
let compile_body ~params (body : Ast.stmt list) : code =
  if block_supported ~in_loop:false body then begin
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    let add n =
      if not (Hashtbl.mem tbl n) then begin
        Hashtbl.add tbl n (Hashtbl.length tbl);
        order := n :: !order
      end
    in
    List.iter add params;
    collect_assigned add body;
    let slot_names = Array.of_list (List.rev !order) in
    let em = fresh (Sslots tbl) in
    cblock em body;
    emit em Push_none;
    emit em Return;
    finish em ~mode:Slots ~nslots:(Array.length slot_names) ~slot_names
  end
  else begin
    let em = fresh Sdict in
    cblock em body;
    emit em Push_none;
    emit em Return;
    finish em ~mode:Dict ~nslots:0 ~slot_names:[||]
  end

(* A module body: always Dict mode against the module namespace; execution
   simply runs off the end (a module-level [return] raises Return_exc from
   the VM, mirroring the tree-walker). *)
let compile_program (prog : Ast.program) : code =
  let em = fresh Sdict in
  cblock em prog;
  finish em ~mode:Dict ~nslots:0 ~slot_names:[||]

(* --- memoization ----------------------------------------------------------

   Keyed by physical identity of the statement list. Sound because the parse
   cache already dedups ASTs by content: every interpreter importing the
   same bytes holds the same AST object, so one compile serves all of them.
   Function bodies additionally cache on the closure itself ([fcode]), which
   skips the lock on the hot call path. *)

module Phys = struct
  type t = Obj.t

  let equal = ( == )

  let hash = Hashtbl.hash
end

module Ptbl = Hashtbl.Make (Phys)

let fn_memo : code Ptbl.t = Ptbl.create 256
let mod_memo : code Ptbl.t = Ptbl.create 64
let memo_lock = Mutex.create ()

let locked f =
  Mutex.lock memo_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock memo_lock) f

let memo tbl key compile =
  match locked (fun () -> Ptbl.find_opt tbl key) with
  | Some code -> code
  | None ->
    let code = compile () in
    locked (fun () -> Ptbl.replace tbl key code);
    code

let compile_function (f : Value.func) : code =
  match f.Value.fcode with
  | Some (Compiled code) -> code
  | _ ->
    let params = List.map fst f.Value.fparams in
    let code =
      match f.Value.fbody with
      | [] ->
        (* the empty list is a shared immediate, so it cannot key a memo
           that must distinguish parameter lists; compile fresh *)
        compile_body ~params []
      | body -> memo fn_memo (Obj.repr body) (fun () -> compile_body ~params body)
    in
    f.Value.fcode <- Some (Compiled code);
    code

let compile_program_memo (prog : Ast.program) : code =
  match prog with
  | [] -> compile_program []
  | _ -> memo mod_memo (Obj.repr prog) (fun () -> compile_program prog)
