(** Content-addressed parse cache: a [digest → Ast.program] store consulted
    by every interpreter instead of re-parsing unchanged module sources.

    Keys combine the file name with the content digest (AST locations embed
    the file name). ASTs are immutable shared values; the store is guarded by
    a mutex, and parsing runs outside the lock. Parse failures propagate and
    are never cached. Hits are invisible to the virtual clock and byte
    ledger: the interpreter's import-resolve charge is independent of how
    the AST was obtained. *)

type t

(** Hit/miss counts live in an {!Obs.Metrics} registry (default: a fresh
    private one; pass [~registry:Obs.Metrics.global] to aggregate with the
    rest of the run) under [<prefix>.hits] / [<prefix>.misses]. *)
val create :
  ?enabled:bool -> ?registry:Obs.Metrics.registry -> ?prefix:string -> unit -> t

(** The default store shared by every interpreter not handed an explicit
    cache ({!Interp.create}'s [?parse_cache]). *)
val global : t

(** A disabled cache parses unconditionally and counts nothing. *)
val set_enabled : t -> bool -> unit

val enabled : t -> bool

val hits : t -> int
val misses : t -> int

(** Number of distinct (file, digest) entries currently stored. *)
val size : t -> int

(** Drop all entries and reset the hit/miss counters. *)
val clear : t -> unit

(** [parse ?cache ~file source] returns the cached AST for this
    (file, content) pair, parsing on a miss.
    @raise Parser.Error or [Lexer.Error] exactly as {!Parser.parse} would. *)
val parse : ?cache:t -> file:string -> string -> Ast.program

(** [parse_vfs ?cache vfs path] is {!parse} for a vfs-backed file, reusing
    the vfs's memoized content digest.
    @raise Invalid_argument when the path is absent. *)
val parse_vfs : ?cache:t -> Vfs.t -> string -> Ast.program

(** [key ~file digest] is the store key for a (file, content) pair — exposed
    so the import machinery can address the compiled-code sidecar with the
    same keys the AST store uses. *)
val key : file:string -> string -> string

(** [find_or_compile t key compile] consults the compiled-code sidecar: the
    VM backend's code units under the same (file, digest) keys as the ASTs
    they were compiled from. Compilation runs outside the lock; a disabled
    cache compiles unconditionally. *)
val find_or_compile : t -> string -> (unit -> Bytecode.code) -> Bytecode.code

val code_hits : t -> int
val code_misses : t -> int
