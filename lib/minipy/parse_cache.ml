(* Content-addressed parse cache.

   Every fresh interpreter (the oracle spawns one per test case, §7) used to
   re-lex and re-parse every imported module from scratch. Source text is
   immutable once written into a Vfs, and ASTs are immutable values, so a
   global digest-keyed store can hand the same Ast.program to every
   interpreter that imports the same bytes.

   Keys combine the file name with the content digest: locations inside an
   AST embed the file name, so two identical sources under different paths
   must not share a parse. Virtual measurements are unaffected by hits —
   the interpreter charges its fixed import-resolve cost independently of
   how the AST was obtained, and parsing itself never touches the virtual
   clock or the byte ledger.

   The store is thread-safe by construction (a mutex guards every table
   access; parsing runs outside the lock). Parse failures are never cached:
   the exception propagates and a retry re-parses. *)

(* Hit/miss counts live in an Obs.Metrics registry rather than in private
   mutable fields, so one aggregation point serves both the cache-stats CLI
   line and the trace exporters. Private caches default to a fresh registry
   (names must be unique per registry); the global cache registers in
   Obs.Metrics.global. *)
type t = {
  store : (string, Ast.program) Hashtbl.t;
  (* sidecar: compiled code units for the VM backend, under the same
     (file, digest) keys — a module compiles once per content digest, no
     matter how many interpreters import it *)
  code_store : (string, Bytecode.code) Hashtbl.t;
  lock : Mutex.t;
  c_hits : Obs.Metrics.counter;
  c_misses : Obs.Metrics.counter;
  c_code_hits : Obs.Metrics.counter;
  c_code_misses : Obs.Metrics.counter;
  mutable enabled : bool;
}

let make ~registry ~prefix ~enabled =
  { store = Hashtbl.create 256;
    code_store = Hashtbl.create 256;
    lock = Mutex.create ();
    c_hits = Obs.Metrics.counter registry (prefix ^ ".hits");
    c_misses = Obs.Metrics.counter registry (prefix ^ ".misses");
    c_code_hits = Obs.Metrics.counter registry (prefix ^ ".code_hits");
    c_code_misses = Obs.Metrics.counter registry (prefix ^ ".code_misses");
    enabled }

let create ?(enabled = true) ?registry ?(prefix = "minipy.parse_cache") () =
  let registry =
    match registry with Some r -> r | None -> Obs.Metrics.create ()
  in
  make ~registry ~prefix ~enabled

(* The default store shared by every interpreter that is not handed an
   explicit cache. *)
let global =
  make ~registry:Obs.Metrics.global ~prefix:"minipy.parse_cache" ~enabled:true

let set_enabled t flag = t.enabled <- flag

let enabled t = t.enabled

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let hits t = locked t (fun () -> Obs.Metrics.value t.c_hits)

let misses t = locked t (fun () -> Obs.Metrics.value t.c_misses)

let size t = locked t (fun () -> Hashtbl.length t.store)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.store;
      Hashtbl.reset t.code_store;
      Obs.Metrics.incr ~by:(-Obs.Metrics.value t.c_hits) t.c_hits;
      Obs.Metrics.incr ~by:(-Obs.Metrics.value t.c_misses) t.c_misses;
      Obs.Metrics.incr ~by:(-Obs.Metrics.value t.c_code_hits) t.c_code_hits;
      Obs.Metrics.incr ~by:(-Obs.Metrics.value t.c_code_misses) t.c_code_misses)

(* Look up [key]; on a miss run [parse ()] outside the lock and store the
   result. Concurrent misses on the same key parse twice and converge — the
   ASTs are equal, and last-write-wins is harmless for an immutable value. *)
let find_or_parse t key parse =
  if not t.enabled then parse ()
  else
    let cached =
      locked t (fun () ->
          match Hashtbl.find_opt t.store key with
          | Some prog ->
            Obs.Metrics.incr t.c_hits;
            Some prog
          | None ->
            Obs.Metrics.incr t.c_misses;
            None)
    in
    match cached with
    | Some prog -> prog
    | None ->
      let prog = parse () in
      locked t (fun () -> Hashtbl.replace t.store key prog);
      prog

let key ~file digest = file ^ ":" ^ digest

(* Compiled-code sidecar: same discipline as [find_or_parse] — compile
   outside the lock, last-write-wins on a race (code units are immutable
   values of the same source bytes, so either copy is correct). *)
let find_or_compile t key compile =
  if not t.enabled then compile ()
  else
    let cached =
      locked t (fun () ->
          match Hashtbl.find_opt t.code_store key with
          | Some code ->
            Obs.Metrics.incr t.c_code_hits;
            Some code
          | None ->
            Obs.Metrics.incr t.c_code_misses;
            None)
    in
    match cached with
    | Some code -> code
    | None ->
      let code = compile () in
      locked t (fun () -> Hashtbl.replace t.code_store key code);
      code

let code_hits t = locked t (fun () -> Obs.Metrics.value t.c_code_hits)

let code_misses t = locked t (fun () -> Obs.Metrics.value t.c_code_misses)

let parse ?(cache = global) ~file source =
  find_or_parse cache
    (key ~file (Digest.to_hex (Digest.string source)))
    (fun () -> Parser.parse ~file source)

(* Parse a vfs-backed file: the content digest comes from the vfs's own memo,
   so repeated imports of an unchanged file cost two hashtable lookups. *)
let parse_vfs ?(cache = global) vfs path =
  if not cache.enabled then Parser.parse ~file:path (Vfs.read_exn vfs path)
  else
    match Vfs.file_digest vfs path with
    | None ->
      invalid_arg (Printf.sprintf "Parse_cache.parse_vfs: no such file %S" path)
    | Some digest ->
      find_or_parse cache (key ~file:path digest)
        (fun () -> Parser.parse ~file:path (Vfs.read_exn vfs path))
