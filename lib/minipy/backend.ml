(* Execution-backend selection: the process-wide `--backend` knob and the
   constructor embedders use instead of calling Interp.create directly.

   [Compare] is a differential mode owned by the layers that can run a
   workload twice (the oracle, `ltrim invoke`): a single interpreter cannot
   be "in compare mode", so plain [create] under Compare builds a reference
   tree-walker and the dual-run drivers ask for each engine explicitly via
   [?choice]. *)

type choice =
  | Treewalk
  | Vm
  | Compare

let to_string = function
  | Treewalk -> "treewalk"
  | Vm -> "vm"
  | Compare -> "compare"

let of_string = function
  | "treewalk" | "tw" -> Some Treewalk
  | "vm" | "bytecode" -> Some Vm
  | "compare" -> Some Compare
  | _ -> None

(* Set once at CLI startup, read by every interpreter construction —
   mirrors Parallel.Pool.configure. Atomic so worker domains read it safely. *)
let state = Atomic.make Treewalk

let configure c = Atomic.set state c

let current () = Atomic.get state

let exec_backend_of = function
  | Treewalk | Compare -> Interp.treewalk_backend
  | Vm -> Vm.backend

let create ?max_steps ?parse_cache ?obs ?choice vfs =
  let c = match choice with Some c -> c | None -> current () in
  Interp.create ?max_steps ?parse_cache ?obs
    ~exec_backend:(exec_backend_of c) vfs
