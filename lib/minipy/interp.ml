(* Tree-walking evaluator with the pieces λ-trim instruments:

   - a module cache ("sys.modules") and full import machinery with
     before/after import hooks — the profiler measures marginal import time
     and memory through these hooks exactly as §5.2 patches CPython's loader;
   - a virtual clock and byte ledger: every statement costs interpreter time,
     every allocation is charged, and library init code expresses native work
     through the builtin [simrt] module (simrt.cpu_ms / simrt.alloc_mb);
   - stdout capture, which the debloating oracle compares (§5.3). *)

open Value

exception Return_exc of value
exception Break_exc
exception Continue_exc
exception Timeout of string

type import_hook = {
  on_before : string -> unit;   (* dotted module name, before body exec *)
  on_after : string -> unit;    (* after body exec *)
}

type t = {
  vfs : Vfs.t;
  modules : (string, module_obj) Hashtbl.t;   (* cache, keyed by dotted name *)
  stdout_buf : Buffer.t;
  mutable vtime_ms : float;       (* virtual elapsed CPU time *)
  mutable heap_bytes : int;       (* monotone footprint ledger *)
  mutable steps : int;
  max_steps : int;
  mutable import_hooks : import_hook list;
  mutable import_stack : string list;
  builtins : namespace;
  (* external side effects (§5.3): calls to remote services made through the
     builtin [cloud] module, recorded in order for oracle equivalence *)
  mutable external_calls : string list;   (* newest first *)
  remote_store : (string, value) Hashtbl.t;  (* "service/key" -> value *)
  (* content-addressed AST store consulted on import instead of re-parsing *)
  parse_cache : Parse_cache.t;
  (* which engine runs module bodies and function calls; the tree-walker by
     default, the bytecode VM when the embedder opts in. Whatever the
     backend, the virtual clock and byte ledger advance identically
     (ARCHITECTURE §11) *)
  mutable exec_backend : exec_backend;
  (* tracing: import spans are recorded on [obs_sink] against the virtual
     clock; [obs_offset_ms] maps this interpreter's vtime (which starts at
     0) onto the embedding timeline (e.g. a Lambda_sim invocation's
     position in simulation time), and [obs_track] is the lane spans land
     on. All three are owned by the embedder; the defaults trace nothing. *)
  mutable obs_sink : Obs.Span.sink;
  mutable obs_track : int;
  mutable obs_offset_ms : float;
  (* lazy loading (ARCHITECTURE §14): import roots listed in the image's
     [lazy_manifest_file] get stub modules at the import statement; the
     module body runs — and its ticks are charged — at first attribute
     touch instead. [lazy_pending] marks stubs whose body has not run;
     [lazy_forcing] counts the force nesting depth — imports executed while
     a body is being forced run eagerly, so forcing a root replays exactly
     the eager import subtree (partial-init order included). *)
  lazy_roots : (string, unit) Hashtbl.t;
  lazy_pending : (string, unit) Hashtbl.t;
  mutable lazy_forcing : int;
}

and env = {
  locals : namespace;          (* == globals at module level *)
  globals : namespace;
  global_decls : (string, unit) Hashtbl.t;  (* names declared `global` *)
}

(* An execution backend. [xb_exec_module] runs a module body in its
   namespace environment; the [string option] is the content-addressed
   parse-cache key of the module source when known (imports), letting a
   compiling backend reuse code units across interpreters. [xb_call_function]
   applies a minipy closure; it is invoked from [call_value] *after* the
   call-cost charge, so backends only pay for argument binding and body
   execution. *)
and exec_backend = {
  xb_name : string;
  xb_exec_module : t -> env -> string option -> Ast.program -> unit;
  xb_call_function :
    t -> func -> value list -> (string * value) list -> value;
}

(* Cost model constants (virtual). *)
let step_cost_ms = 0.0008      (* per executed statement *)
let call_cost_ms = 0.0012      (* per function call *)
let import_resolve_ms = 0.03   (* loader overhead per module: find + parse *)

let charge_time t ms = t.vtime_ms <- t.vtime_ms +. ms

let charge_alloc t v = t.heap_bytes <- t.heap_bytes + bytes_of_alloc v

let charge_bytes t b = t.heap_bytes <- t.heap_bytes + b

let heap_mb t = float_of_int t.heap_bytes /. (1024.0 *. 1024.0)

let tick t =
  t.steps <- t.steps + 1;
  charge_time t step_cost_ms;
  if t.steps > t.max_steps then
    raise (Timeout (Printf.sprintf "interpreter exceeded %d steps" t.max_steps))

let output t s = Buffer.add_string t.stdout_buf s

let stdout_contents t = Buffer.contents t.stdout_buf

(* --- lazy-loading manifest (ARCHITECTURE §14) --------------------------- *)

(* VFS path of the lazy-loading manifest. The leading dot keeps it out of
   import resolution ([Importer] maps dotted names to <root>/...py paths),
   so adding it can never shadow application code. *)
let lazy_manifest_file = ".lazy-manifest"

(* One directive per line: `lazy <root>` defers that import root's body to
   first attribute touch; `preload <dotted>` records the profile-guided
   resolution order fleet instances follow during keep-alive idle time.
   Blank lines and `#` comments are ignored; both lists keep file order. *)
let parse_lazy_manifest src =
  let lazified = ref [] and preload = ref [] in
  String.split_on_char '\n' src
  |> List.iter (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        match String.index_opt line ' ' with
        | None -> ()
        | Some i ->
          let kw = String.sub line 0 i in
          let arg =
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          if arg <> "" then (
            match kw with
            | "lazy" -> lazified := arg :: !lazified
            | "preload" -> preload := arg :: !preload
            | _ -> ()));
  (List.rev !lazified, List.rev !preload)

(* Stub-configuration tag for oracle memo and journal run-digest keys: the
   lazy and eager twins of an image must never share verdicts. The manifest
   already feeds the image digest, but keys state the variant explicitly. *)
let lazy_config_of_vfs vfs =
  match Vfs.read vfs lazy_manifest_file with
  | None -> "eager"
  | Some src -> "lazy:" ^ Digest.to_hex (Digest.string src)

(* --- arithmetic --------------------------------------------------------- *)

let as_float = function
  | Vint i -> float_of_int i
  | Vfloat f -> f
  | Vbool true -> 1.0
  | Vbool false -> 0.0
  | v -> py_error "TypeError" "expected a number, got %s" (type_name v)

let numeric_binop op a b =
  match a, b, op with
  | Vint x, Vint y, Ast.Add -> Vint (x + y)
  | Vint x, Vint y, Ast.Sub -> Vint (x - y)
  | Vint x, Vint y, Ast.Mul -> Vint (x * y)
  | Vint _, Vint 0, Ast.Div -> py_error "ZeroDivisionError" "division by zero"
  | Vint x, Vint y, Ast.Div -> Vfloat (float_of_int x /. float_of_int y)
  | Vint _, Vint 0, (Ast.FloorDiv | Ast.Mod) ->
    py_error "ZeroDivisionError" "integer division or modulo by zero"
  | Vint x, Vint y, Ast.FloorDiv ->
    let q = x / y and r = x mod y in
    Vint (if (r <> 0) && ((r < 0) <> (y < 0)) then q - 1 else q)
  | Vint x, Vint y, Ast.Mod ->
    let r = x mod y in
    Vint (if r <> 0 && (r < 0) <> (y < 0) then r + y else r)
  | Vint x, Vint y, Ast.Pow ->
    if y >= 0 then begin
      let rec pow acc b e = if e = 0 then acc else pow (acc * b) b (e - 1) in
      Vint (pow 1 x y)
    end
    else Vfloat (Float.pow (float_of_int x) (float_of_int y))
  | (Vfloat _ | Vint _ | Vbool _), (Vfloat _ | Vint _ | Vbool _), _ ->
    let x = as_float a and y = as_float b in
    (match op with
     | Ast.Add -> Vfloat (x +. y)
     | Ast.Sub -> Vfloat (x -. y)
     | Ast.Mul -> Vfloat (x *. y)
     | Ast.Div ->
       if y = 0.0 then py_error "ZeroDivisionError" "float division by zero"
       else Vfloat (x /. y)
     | Ast.FloorDiv -> Vfloat (Float.of_int (int_of_float (Float.floor (x /. y))))
     | Ast.Mod -> Vfloat (x -. (y *. Float.floor (x /. y)))
     | Ast.Pow -> Vfloat (Float.pow x y)
     | _ -> assert false)
  | _ ->
    py_error "TypeError" "unsupported operand type(s) for %s: '%s' and '%s'"
      (Pretty.binop_str op) (type_name a) (type_name b)

let rec binop_values t op a b =
  match op, a, b with
  | Ast.Add, Vstr x, Vstr y ->
    let v = Vstr (x ^ y) in
    charge_alloc t v; v
  | Ast.Add, Vlist x, Vlist y ->
    let v = Vlist { items = Array.append x.items y.items } in
    charge_alloc t v; v
  | Ast.Add, Vtuple x, Vtuple y ->
    let v = Vtuple (Array.append x y) in
    charge_alloc t v; v
  | Ast.Mul, Vstr s, Vint n | Ast.Mul, Vint n, Vstr s ->
    let v = Vstr (String.concat "" (List.init (max 0 n) (fun _ -> s))) in
    charge_alloc t v; v
  | Ast.Mul, Vlist l, Vint n | Ast.Mul, Vint n, Vlist l ->
    let parts = List.init (max 0 n) (fun _ -> l.items) in
    let v = Vlist { items = Array.concat parts } in
    charge_alloc t v; v
  | Ast.Eq, _, _ -> Vbool (equal a b)
  | Ast.Ne, _, _ -> Vbool (not (equal a b))
  | Ast.Lt, _, _ -> Vbool (compare_values a b < 0)
  | Ast.Le, _, _ -> Vbool (compare_values a b <= 0)
  | Ast.Gt, _, _ -> Vbool (compare_values a b > 0)
  | Ast.Ge, _, _ -> Vbool (compare_values a b >= 0)
  | Ast.In, x, Vlist l -> Vbool (Array.exists (equal x) l.items)
  | Ast.In, x, Vtuple a -> Vbool (Array.exists (equal x) a)
  | Ast.In, x, Vdict d -> Vbool (List.exists (fun (k, _) -> equal x k) d.pairs)
  | Ast.In, Vstr x, Vstr y ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      if nn = 0 then true
      else
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
    in
    Vbool (contains y x)
  | Ast.NotIn, x, container ->
    (match binop_values t Ast.In x container with
     | Vbool b -> Vbool (not b)
     | _ -> assert false)
  | (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.FloorDiv | Ast.Mod | Ast.Pow), _, _ ->
    numeric_binop op a b
  | (Ast.And | Ast.Or | Ast.In), _, _ ->
    py_error "TypeError" "argument of type '%s' is not iterable" (type_name b)

(* --- environments ------------------------------------------------------- *)

let module_env (m : module_obj) =
  { locals = m.mattrs; globals = m.mattrs; global_decls = Hashtbl.create 4 }

let lookup t env name =
  match Hashtbl.find_opt env.locals name with
  | Some v -> Some v
  | None ->
    (match Hashtbl.find_opt env.globals name with
     | Some v -> Some v
     | None -> Hashtbl.find_opt t.builtins name)

(* Bind call arguments into a fresh locals table, raising the exact
   TypeErrors CPython would. Shared verbatim by the tree-walker and the VM's
   dict-mode frames so binding errors and their order are backend-invariant. *)
let bind_args (f : func) args kwargs (locals : namespace) =
  let rec bind params args =
    match params, args with
    | [], [] -> ()
    | [], extra ->
      py_error "TypeError" "%s() takes %d positional arguments but %d were given"
        f.fname (List.length f.fparams)
        (List.length f.fparams + List.length extra)
    | (name, default) :: ps, [] ->
      (match List.assoc_opt name kwargs with
       | Some v -> Hashtbl.replace locals name v
       | None ->
         (match default with
          | Some v -> Hashtbl.replace locals name v
          | None ->
            py_error "TypeError" "%s() missing required argument: '%s'" f.fname name));
      bind ps []
    | (name, _) :: ps, a :: rest ->
      Hashtbl.replace locals name a;
      bind ps rest
  in
  bind f.fparams args;
  List.iter
    (fun (k, v) ->
       if not (List.mem_assoc k (List.map (fun (n, d) -> (n, d)) f.fparams)) then
         py_error "TypeError" "%s() got an unexpected keyword argument '%s'" f.fname k
       else if not (Hashtbl.mem locals k) then Hashtbl.replace locals k v)
    kwargs

(* --- iteration helper --------------------------------------------------- *)

let iter_values v : value list =
  match v with
  | Vlist l -> Array.to_list l.items
  | Vtuple a -> Array.to_list a
  | Vstr s -> List.init (String.length s) (fun i -> Vstr (String.make 1 s.[i]))
  | Vdict d -> List.map fst d.pairs
  | _ -> py_error "TypeError" "'%s' object is not iterable" (type_name v)

(* --- attribute access on builtin types ---------------------------------- *)

let str_method t s name =
  let b bname f = Vbuiltin { bname = "str." ^ bname; bcall = f } in
  let ret_str x = let v = Vstr x in charge_alloc t v; v in
  match name with
  | "upper" -> Some (b "upper" (fun _ _ -> ret_str (String.uppercase_ascii s)))
  | "lower" -> Some (b "lower" (fun _ _ -> ret_str (String.lowercase_ascii s)))
  | "strip" -> Some (b "strip" (fun _ _ -> ret_str (String.trim s)))
  | "split" ->
    Some
      (b "split" (fun args _ ->
           let sep = match args with
             | [ Vstr sep ] -> sep
             | [] -> " "
             | _ -> py_error "TypeError" "split: bad arguments"
           in
           let parts =
             if String.length sep = 1 then String.split_on_char sep.[0] s
             else [ s ]
           in
           let v = Vlist { items = Array.of_list (List.map (fun p -> Vstr p) parts) } in
           charge_alloc t v; v))
  | "join" ->
    Some
      (b "join" (fun args _ ->
           match args with
           | [ items ] ->
             let strs =
               List.map
                 (function
                   | Vstr x -> x
                   | v -> py_error "TypeError" "join: expected str, got %s" (type_name v))
                 (iter_values items)
             in
             ret_str (String.concat s strs)
           | _ -> py_error "TypeError" "join takes one argument"))
  | "startswith" ->
    Some
      (b "startswith" (fun args _ ->
           match args with
           | [ Vstr p ] ->
             Vbool
               (String.length s >= String.length p
                && String.sub s 0 (String.length p) = p)
           | _ -> py_error "TypeError" "startswith: bad arguments"))
  | "endswith" ->
    Some
      (b "endswith" (fun args _ ->
           match args with
           | [ Vstr p ] ->
             let ls = String.length s and lp = String.length p in
             Vbool (ls >= lp && String.sub s (ls - lp) lp = p)
           | _ -> py_error "TypeError" "endswith: bad arguments"))
  | "format" ->
    Some
      (b "format" (fun args _ ->
           (* positional {} substitution, in order *)
           let buf = Buffer.create (String.length s) in
           let args = ref args in
           let i = ref 0 in
           let n = String.length s in
           while !i < n do
             if !i + 1 < n && s.[!i] = '{' && s.[!i + 1] = '}' then begin
               (match !args with
                | v :: rest ->
                  Buffer.add_string buf (to_display v);
                  args := rest
                | [] ->
                  py_error "IndexError"
                    "Replacement index out of range for positional args");
               i := !i + 2
             end
             else begin
               Buffer.add_char buf s.[!i];
               incr i
             end
           done;
           ret_str (Buffer.contents buf)))
  | "count" ->
    Some
      (b "count" (fun args _ ->
           match args with
           | [ Vstr needle ] when needle <> "" ->
             let ln = String.length needle and ls = String.length s in
             let rec go i acc =
               if i + ln > ls then acc
               else if String.sub s i ln = needle then go (i + ln) (acc + 1)
               else go (i + 1) acc
             in
             Vint (go 0 0)
           | _ -> py_error "TypeError" "count: bad arguments"))
  | "find" ->
    Some
      (b "find" (fun args _ ->
           match args with
           | [ Vstr needle ] ->
             let ln = String.length needle and ls = String.length s in
             let rec go i =
               if i + ln > ls then -1
               else if String.sub s i ln = needle then i
               else go (i + 1)
             in
             Vint (if ln = 0 then 0 else go 0)
           | _ -> py_error "TypeError" "find: bad arguments"))
  | "replace" ->
    Some
      (b "replace" (fun args _ ->
           match args with
           | [ Vstr old_s; Vstr new_s ] when old_s <> "" ->
             let buf = Buffer.create (String.length s) in
             let lo = String.length old_s in
             let i = ref 0 in
             while !i <= String.length s - lo do
               if String.sub s !i lo = old_s then begin
                 Buffer.add_string buf new_s;
                 i := !i + lo
               end
               else begin
                 Buffer.add_char buf s.[!i];
                 incr i
               end
             done;
             Buffer.add_string buf (String.sub s !i (String.length s - !i));
             ret_str (Buffer.contents buf)
           | _ -> py_error "TypeError" "replace: bad arguments"))
  | _ -> None

let list_method t (l : vlist) name =
  let b bname f = Vbuiltin { bname = "list." ^ bname; bcall = f } in
  match name with
  | "append" ->
    Some
      (b "append" (fun args _ ->
           match args with
           | [ v ] ->
             l.items <- Array.append l.items [| v |];
             charge_bytes t 8;
             Vnone
           | _ -> py_error "TypeError" "append takes one argument"))
  | "pop" ->
    Some
      (b "pop" (fun args _ ->
           let n = Array.length l.items in
           if n = 0 then py_error "IndexError" "pop from empty list";
           let idx = match args with
             | [] -> n - 1
             | [ Vint i ] -> if i < 0 then n + i else i
             | _ -> py_error "TypeError" "pop: bad arguments"
           in
           if idx < 0 || idx >= n then py_error "IndexError" "pop index out of range";
           let v = l.items.(idx) in
           l.items <- Array.append (Array.sub l.items 0 idx)
               (Array.sub l.items (idx + 1) (n - idx - 1));
           v))
  | "extend" ->
    Some
      (b "extend" (fun args _ ->
           match args with
           | [ other ] ->
             l.items <- Array.append l.items (Array.of_list (iter_values other));
             Vnone
           | _ -> py_error "TypeError" "extend takes one argument"))
  | "sort" ->
    Some
      (b "sort" (fun _ _ ->
           let copy = Array.copy l.items in
           Array.sort compare_values copy;
           l.items <- copy;
           Vnone))
  | "index" ->
    Some
      (b "index" (fun args _ ->
           match args with
           | [ v ] ->
             let rec find i =
               if i >= Array.length l.items then
                 py_error "ValueError" "%s is not in list" (to_repr v)
               else if equal l.items.(i) v then Vint i
               else find (i + 1)
             in
             find 0
           | _ -> py_error "TypeError" "index takes one argument"))
  | _ -> None

let dict_method t (d : vdict) name =
  let b bname f = Vbuiltin { bname = "dict." ^ bname; bcall = f } in
  match name with
  | "get" ->
    Some
      (b "get" (fun args _ ->
           match args with
           | [ k ] -> Option.value (dict_lookup d k) ~default:Vnone
           | [ k; default ] -> Option.value (dict_lookup d k) ~default
           | _ -> py_error "TypeError" "get: bad arguments"))
  | "keys" ->
    Some
      (b "keys" (fun _ _ ->
           let v = Vlist { items = Array.of_list (List.map fst d.pairs) } in
           charge_alloc t v; v))
  | "values" ->
    Some
      (b "values" (fun _ _ ->
           let v = Vlist { items = Array.of_list (List.map snd d.pairs) } in
           charge_alloc t v; v))
  | "items" ->
    Some
      (b "items" (fun _ _ ->
           let v =
             Vlist
               { items =
                   Array.of_list
                     (List.map (fun (k, v) -> Vtuple [| k; v |]) d.pairs) }
           in
           charge_alloc t v; v))
  | "update" ->
    Some
      (b "update" (fun args _ ->
           match args with
           | [ Vdict other ] ->
             List.iter (fun (k, v) -> dict_set d k v) other.pairs;
             Vnone
           | _ -> py_error "TypeError" "update: bad arguments"))
  | "pop" ->
    Some
      (b "pop" (fun args _ ->
           match args with
           | [ k ] ->
             (match dict_lookup d k with
              | Some v -> d.pairs <- List.filter (fun (k', _) -> not (equal k k')) d.pairs; v
              | None -> py_error "KeyError" "%s" (to_repr k))
           | [ k; default ] ->
             (match dict_lookup d k with
              | Some v -> d.pairs <- List.filter (fun (k', _) -> not (equal k k')) d.pairs; v
              | None -> default)
           | _ -> py_error "TypeError" "pop: bad arguments"))
  | _ -> None

(* --- the interpreter ---------------------------------------------------- *)

let rec getattr t obj name =
  match obj with
  | Vmodule m ->
    (* first attribute touch materializes a lazy stub (ARCHITECTURE §14) *)
    force_module t m;
    (match Hashtbl.find_opt m.mattrs name with
     | Some v -> v
     | None ->
       (* attribute may be an unimported submodule: torch.optim *)
       (match import_submodule t m name with
        | Some v -> v
        | None ->
          py_error "AttributeError" "module '%s' has no attribute '%s'" m.mname name))
  | Vinstance i ->
    (match Hashtbl.find_opt i.iattrs name with
     | Some v -> v
     | None ->
       (match class_lookup i.icls name with
        | Some (Vfunc _ as f) -> bind_method t obj f
        | Some v -> v
        | None ->
          py_error "AttributeError" "'%s' object has no attribute '%s'"
            i.icls.cname name))
  | Vclass c ->
    (match class_lookup c name with
     | Some v -> v
     | None ->
       py_error "AttributeError" "type object '%s' has no attribute '%s'" c.cname name)
  | Vstr s ->
    (match str_method t s name with
     | Some m -> m
     | None -> py_error "AttributeError" "'str' object has no attribute '%s'" name)
  | Vlist l ->
    (match list_method t l name with
     | Some m -> m
     | None -> py_error "AttributeError" "'list' object has no attribute '%s'" name)
  | Vdict d ->
    (match dict_method t d name with
     | Some m -> m
     | None -> py_error "AttributeError" "'dict' object has no attribute '%s'" name)
  | Vexc e ->
    (match name with
     | "args" -> Vtuple [| Vstr e.exc_msg |]
     | "message" -> Vstr e.exc_msg
     | _ ->
       py_error "AttributeError" "'%s' object has no attribute '%s'" e.exc_class name)
  | v -> py_error "AttributeError" "'%s' object has no attribute '%s'" (type_name v) name

and bind_method t self f =
  match f with
  | Vfunc fn ->
    Vbuiltin
      { bname = fn.fname;
        bcall = (fun args kwargs -> call_function t fn (self :: args) kwargs) }
  | _ -> f

and setattr t obj name v =
  match obj with
  | Vinstance i -> Hashtbl.replace i.iattrs name v
  | Vmodule m ->
    (* setting an attribute is a touch too: the body must run first so the
       write is not clobbered when the stub is later forced *)
    force_module t m;
    Hashtbl.replace m.mattrs name v
  | Vclass c -> Hashtbl.replace c.cattrs name v
  | other ->
    py_error "AttributeError" "cannot set attribute '%s' on '%s'" name
      (type_name other)

and call_value t callee args kwargs =
  charge_time t call_cost_ms;
  match callee with
  | Vfunc f -> call_function t f args kwargs
  | Vbuiltin b -> b.bcall args kwargs
  | Vclass c -> instantiate t c args kwargs
  | Vinstance i as self ->
    (match class_lookup i.icls "__call__" with
     | Some (Vfunc f) -> call_function t f (self :: args) kwargs
     | Some _ | None ->
       py_error "TypeError" "'%s' object is not callable" i.icls.cname)
  | v -> py_error "TypeError" "'%s' object is not callable" (type_name v)

and call_function t (f : func) args kwargs =
  t.exec_backend.xb_call_function t f args kwargs

(* The tree-walking closure application — also the reference semantics the
   VM's dict-mode frames reproduce. *)
and tw_call_function t (f : func) args kwargs =
  let locals = Hashtbl.create 8 in
  bind_args f args kwargs locals;
  let env = { locals; globals = f.fglobals; global_decls = Hashtbl.create 4 } in
  try
    exec_block t env f.fbody;
    Vnone
  with Return_exc v -> v

and instantiate t (c : cls) args kwargs =
  let inst = { icls = c; iattrs = Hashtbl.create 8 } in
  let v = Vinstance inst in
  charge_alloc t v;
  (match class_lookup c "__init__" with
   | Some (Vfunc f) -> ignore (call_function t f (v :: args) kwargs)
   | Some _ | None ->
     if args <> [] || kwargs <> [] then
       py_error "TypeError" "%s() takes no arguments" c.cname);
  v

and eval t env (e : Ast.expr) : value =
  tick t;
  match e.Ast.desc with
  | Ast.Const (Ast.Cint i) -> Vint i
  | Ast.Const (Ast.Cfloat f) -> Vfloat f
  | Ast.Const (Ast.Cstr s) -> Vstr s
  | Ast.Const (Ast.Cbool b) -> Vbool b
  | Ast.Const Ast.Cnone -> Vnone
  | Ast.Name n ->
    (match lookup t env n with
     | Some v -> v
     | None -> py_error "NameError" "name '%s' is not defined" n)
  | Ast.Attr (base, name) ->
    let obj = eval t env base in
    getattr t obj name
  | Ast.Subscript (base, idx) ->
    let obj = eval t env base in
    let key = eval t env idx in
    subscript t obj key
  | Ast.Call (f, args, kwargs) ->
    let callee = eval t env f in
    let args = List.map (eval t env) args in
    let kwargs = List.map (fun (k, v) -> (k, eval t env v)) kwargs in
    call_value t callee args kwargs
  | Ast.Binop (Ast.And, l, r) ->
    let lv = eval t env l in
    if truthy lv then eval t env r else lv
  | Ast.Binop (Ast.Or, l, r) ->
    let lv = eval t env l in
    if truthy lv then lv else eval t env r
  | Ast.Binop (op, l, r) ->
    let lv = eval t env l in
    let rv = eval t env r in
    binop_values t op lv rv
  | Ast.Unop (Ast.Not, x) -> Vbool (not (truthy (eval t env x)))
  | Ast.Unop (Ast.Neg, x) ->
    (match eval t env x with
     | Vint i -> Vint (-i)
     | Vfloat f -> Vfloat (-.f)
     | v -> py_error "TypeError" "bad operand type for unary -: '%s'" (type_name v))
  | Ast.Unop (Ast.Pos, x) ->
    (match eval t env x with
     | (Vint _ | Vfloat _) as v -> v
     | v -> py_error "TypeError" "bad operand type for unary +: '%s'" (type_name v))
  | Ast.ListLit items ->
    let v = Vlist { items = Array.of_list (List.map (eval t env) items) } in
    charge_alloc t v; v
  | Ast.TupleLit items ->
    let v = Vtuple (Array.of_list (List.map (eval t env) items)) in
    charge_alloc t v; v
  | Ast.DictLit items ->
    let d = { pairs = [] } in
    List.iter
      (fun (k, ve) ->
         let kv = eval t env k in
         let vv = eval t env ve in
         dict_set d kv vv)
      items;
    let v = Vdict d in
    charge_alloc t v; v
  | Ast.Lambda (params, body) ->
    let f =
      Vfunc
        { fname = "<lambda>";
          fparams = List.map (fun p -> (p, None)) params;
          fbody = [ Ast.s (Ast.Return (Some body)) ];
          fglobals = env.globals;
          fmodule = "<lambda>";
          fcode = None }
    in
    charge_alloc t f; f
  | Ast.IfExp (cond, then_, else_) ->
    if truthy (eval t env cond) then eval t env then_ else eval t env else_
  | Ast.Slice (base, lo, hi) ->
    let obj = eval t env base in
    let eval_bound = Option.map (fun b -> eval t env b) in
    (* bounds evaluate left to right, and the VM compiles them that way *)
    let lo_v = eval_bound lo in
    let hi_v = eval_bound hi in
    slice t obj lo_v hi_v
  | Ast.ListComp { Ast.celt; cvar; citer; ccond } ->
    let items = iter_values (eval t env citer) in
    let out =
      List.filter_map
        (fun item ->
           assign_target t env cvar item;
           match ccond with
           | Some c when not (truthy (eval t env c)) -> None
           | Some _ | None -> Some (eval t env celt))
        items
    in
    let v = Vlist { items = Array.of_list out } in
    charge_alloc t v;
    v
  | Ast.DictComp { Ast.dckey; dcval; dcvar; dciter; dccond } ->
    let items = iter_values (eval t env dciter) in
    let d = { pairs = [] } in
    List.iter
      (fun item ->
         assign_target t env dcvar item;
         match dccond with
         | Some c when not (truthy (eval t env c)) -> ()
         | Some _ | None ->
           let k = eval t env dckey in
           let v = eval t env dcval in
           dict_set d k v)
      items;
    let v = Vdict d in
    charge_alloc t v;
    v

and slice t obj lo hi =
  let bound n = function
    | None -> None
    | Some (Vint i) -> Some (if i < 0 then max 0 (n + i) else min n i)
    | Some v -> py_error "TypeError" "slice indices must be integers, got %s"
                  (type_name v)
  in
  let clip n =
    let lo = Option.value (bound n lo) ~default:0 in
    let hi = Option.value (bound n hi) ~default:n in
    (lo, max lo hi)
  in
  match obj with
  | Vlist l ->
    let n = Array.length l.items in
    let lo, hi = clip n in
    let v = Vlist { items = Array.sub l.items lo (hi - lo) } in
    charge_alloc t v; v
  | Vtuple a ->
    let n = Array.length a in
    let lo, hi = clip n in
    let v = Vtuple (Array.sub a lo (hi - lo)) in
    charge_alloc t v; v
  | Vstr s ->
    let n = String.length s in
    let lo, hi = clip n in
    let v = Vstr (String.sub s lo (hi - lo)) in
    charge_alloc t v; v
  | v -> py_error "TypeError" "'%s' object is not sliceable" (type_name v)

and subscript t obj key =
  ignore t;
  match obj, key with
  | Vlist l, Vint i ->
    let n = Array.length l.items in
    let i = if i < 0 then n + i else i in
    if i < 0 || i >= n then py_error "IndexError" "list index out of range"
    else l.items.(i)
  | Vtuple a, Vint i ->
    let n = Array.length a in
    let i = if i < 0 then n + i else i in
    if i < 0 || i >= n then py_error "IndexError" "tuple index out of range" else a.(i)
  | Vstr s, Vint i ->
    let n = String.length s in
    let i = if i < 0 then n + i else i in
    if i < 0 || i >= n then py_error "IndexError" "string index out of range"
    else Vstr (String.make 1 s.[i])
  | Vdict d, k ->
    (match dict_lookup d k with
     | Some v -> v
     | None -> py_error "KeyError" "%s" (to_repr k))
  | v, _ -> py_error "TypeError" "'%s' object is not subscriptable" (type_name v)

and assign_target t env (target : Ast.target) v =
  match target with
  | Ast.Tname n ->
    if Hashtbl.mem env.global_decls n then Hashtbl.replace env.globals n v
    else Hashtbl.replace env.locals n v
  | Ast.Tattr (base, name) ->
    let obj = eval t env base in
    setattr t obj name v
  | Ast.Tsubscript (base, idx) ->
    let obj = eval t env base in
    let key = eval t env idx in
    store_subscript t obj key v
  | Ast.Ttuple targets ->
    let vs = iter_values v in
    if List.length vs <> List.length targets then
      py_error "ValueError" "cannot unpack %d values into %d targets"
        (List.length vs) (List.length targets);
    List.iter2 (assign_target t env) targets vs

and store_subscript _t obj key v =
  match obj, key with
  | Vlist l, Vint i ->
    let n = Array.length l.items in
    let i = if i < 0 then n + i else i in
    if i < 0 || i >= n then py_error "IndexError" "list assignment index out of range"
    else l.items.(i) <- v
  | Vdict d, k -> dict_set d k v
  | o, _ ->
    py_error "TypeError" "'%s' object does not support item assignment" (type_name o)

and exec_block t env stmts = List.iter (exec_stmt t env) stmts

and exec_stmt t env (s : Ast.stmt) =
  tick t;
  match s.Ast.sdesc with
  | Ast.Expr_stmt e -> ignore (eval t env e)
  | Ast.Assign (target, e) ->
    let v = eval t env e in
    assign_target t env target v
  | Ast.AugAssign (target, op, e) ->
    let current =
      match target with
      | Ast.Tname n ->
        (match lookup t env n with
         | Some v -> v
         | None -> py_error "NameError" "name '%s' is not defined" n)
      | Ast.Tattr (base, name) -> getattr t (eval t env base) name
      | Ast.Tsubscript (base, idx) ->
        subscript t (eval t env base) (eval t env idx)
      | Ast.Ttuple _ ->
        py_error "TypeError" "illegal expression for augmented assignment"
    in
    let v = binop_values t op current (eval t env e) in
    assign_target t env target v
  | Ast.Import (path, alias) -> exec_import t env path alias
  | Ast.From_import (clause, names) -> exec_from_import t env clause names
  | Ast.Def d ->
    let fparams =
      List.map
        (fun { Ast.pname; pdefault } ->
           (pname, Option.map (eval t env) pdefault))
        d.Ast.dparams
    in
    let f =
      Vfunc
        { fname = d.Ast.dname; fparams; fbody = d.Ast.dbody;
          fglobals = env.globals; fmodule = "<module>"; fcode = None }
    in
    charge_alloc t f;
    Hashtbl.replace env.locals d.Ast.dname f
  | Ast.Class c ->
    let bases =
      List.map
        (fun be ->
           match eval t env be with
           | Vclass b -> b
           | v -> py_error "TypeError" "base must be a class, got %s" (type_name v))
        c.Ast.cbases
    in
    let cattrs = Hashtbl.create 8 in
    let cls_env = { locals = cattrs; globals = env.globals;
                    global_decls = Hashtbl.create 2 } in
    exec_block t cls_env c.Ast.cbody;
    let cls = Vclass { cname = c.Ast.cname; cattrs; cbases = bases; cmodule = "" } in
    charge_alloc t cls;
    Hashtbl.replace env.locals c.Ast.cname cls
  | Ast.Return e ->
    let v = match e with Some e -> eval t env e | None -> Vnone in
    raise (Return_exc v)
  | Ast.If (branches, orelse) ->
    let rec go = function
      | [] -> exec_block t env orelse
      | (cond, body) :: rest ->
        if truthy (eval t env cond) then exec_block t env body else go rest
    in
    go branches
  | Ast.While (cond, body) ->
    (try
       while truthy (eval t env cond) do
         try exec_block t env body with Continue_exc -> ()
       done
     with Break_exc -> ())
  | Ast.For (target, iter, body) ->
    let vs = iter_values (eval t env iter) in
    (try
       List.iter
         (fun v ->
            assign_target t env target v;
            try exec_block t env body with Continue_exc -> ())
         vs
     with Break_exc -> ())
  | Ast.Try (body, handlers, finally) ->
    let run_finally () = exec_block t env finally in
    (try
       exec_block t env body;
       run_finally ()
     with
     | Py_error exc as original ->
       let matching =
         List.find_opt
           (fun h ->
              match h.Ast.hexc with
              | None -> true
              | Some name ->
                String.equal name exc.exc_class || String.equal name "Exception")
           handlers
       in
       (match matching with
        | Some h ->
          (match h.Ast.hbind with
           | Some b -> Hashtbl.replace env.locals b (Vexc exc)
           | None -> ());
          (try exec_block t env h.Ast.hbody; run_finally ()
           with e -> run_finally (); raise e)
        | None -> run_finally (); raise original)
     | (Return_exc _ | Break_exc | Continue_exc) as control ->
       run_finally (); raise control)
  | Ast.Raise (Some e) ->
    (match eval t env e with
     | Vexc exc -> raise (Py_error exc)
     | Vstr msg -> raise (Py_error { exc_class = "Exception"; exc_msg = msg })
     | v -> py_error "TypeError" "exceptions must derive from BaseException, got %s"
              (type_name v))
  | Ast.Raise None -> py_error "RuntimeError" "No active exception to re-raise"
  | Ast.Pass -> ()
  | Ast.Break -> raise Break_exc
  | Ast.Continue -> raise Continue_exc
  | Ast.Global names ->
    List.iter (fun n -> Hashtbl.replace env.global_decls n ()) names
  | Ast.Del target ->
    (match target with
     | Ast.Tname n ->
       if Hashtbl.mem env.locals n then Hashtbl.remove env.locals n
       else py_error "NameError" "name '%s' is not defined" n
     | Ast.Tattr (base, name) ->
       (match eval t env base with
        | Vinstance i -> Hashtbl.remove i.iattrs name
        | Vmodule m -> force_module t m; Hashtbl.remove m.mattrs name
        | Vclass c -> Hashtbl.remove c.cattrs name
        | v -> py_error "AttributeError" "cannot delete attribute of '%s'" (type_name v))
     | Ast.Tsubscript (base, idx) ->
       (match eval t env base, eval t env idx with
        | Vdict d, k -> dict_del d k
        | v, _ -> py_error "TypeError" "cannot delete item of '%s'" (type_name v))
     | Ast.Ttuple _ -> py_error "TypeError" "cannot delete tuple")
  | Ast.Assert (cond, msg) ->
    if not (truthy (eval t env cond)) then
      let m = match msg with Some m -> to_display (eval t env m) | None -> "" in
      py_error "AssertionError" "%s" m

(* --- import machinery --------------------------------------------------- *)

and import_dotted t (parts : string list) : module_obj =
  (* Import every prefix in order, as CPython does; returns the *last*
     component's module. *)
  let rec go last = function
    | [] -> (match last with Some m -> m | None -> assert false)
    | prefix :: rest ->
      let m = import_one t prefix in
      go (Some m) rest
  in
  go None (Importer.prefixes parts)

and import_one t (parts : string list) : module_obj =
  let name = Ast.dotted_to_string parts in
  match Hashtbl.find_opt t.modules name with
  | Some m ->
    (* an eager import of a pending stub (from-imports, submodule access)
       demands the initialized module, exactly like eager mode *)
    force_module t m;
    m
  | None ->
    if List.mem name t.import_stack then
      (* circular import: return the partially-initialized module if present *)
      (match Hashtbl.find_opt t.modules name with
       | Some m -> m
       | None -> py_error "ImportError" "circular import of '%s'" name)
    else begin
      match Importer.resolve t.vfs parts with
      | Importer.Not_found ->
        py_error "ModuleNotFoundError" "No module named '%s'" name
      | Importer.Package file | Importer.Module file ->
        (* one span per executed module import, on the virtual clock (§5.2's
           loader hook, as a trace); cached imports return above and cost
           nothing, so they emit nothing *)
        let sp =
          Obs.Span.begin_ t.obs_sink ~domain:Obs.Span.domain_virtual
            ~track:t.obs_track ~cat:"minipy" ~name:("import:" ^ name)
            ~ts_ms:(t.obs_offset_ms +. t.vtime_ms)
        in
        charge_time t import_resolve_ms;
        (* the virtual import-resolve charge above is fixed, so a parse-cache
           hit changes no measurement — only host wall-clock *)
        let prog =
          try Parse_cache.parse_vfs ~cache:t.parse_cache t.vfs file
          with
          | Parser.Error (msg, loc) ->
            py_error "SyntaxError" "%s at %s" msg (Loc.to_string loc)
          | Lexer.Error (msg, loc) ->
            py_error "SyntaxError" "%s at %s" msg (Loc.to_string loc)
        in
        let mattrs = Hashtbl.create 16 in
        Hashtbl.replace mattrs "__name__" (Vstr name);
        Hashtbl.replace mattrs "__file__" (Vstr file);
        let m = { mname = name; mfile = file; mattrs } in
        charge_alloc t (Vmodule m);
        Hashtbl.replace t.modules name m;
        t.import_stack <- name :: t.import_stack;
        let hooks = t.import_hooks in
        List.iter (fun h -> h.on_before name) hooks;
        let finish () =
          t.import_stack <- List.tl t.import_stack;
          List.iter (fun h -> h.on_after name) hooks;
          Obs.Span.end_ sp
            ~attrs:[ ("file", file) ]
            ~ts_ms:(t.obs_offset_ms +. t.vtime_ms)
        in
        (* content-addressed key for the backend's compiled-code sidecar;
           absent when the cache is off or the file vanished mid-import *)
        let code_key =
          if Parse_cache.enabled t.parse_cache then
            Option.map
              (fun digest -> Parse_cache.key ~file digest)
              (Vfs.file_digest t.vfs file)
          else None
        in
        (try
           t.exec_backend.xb_exec_module t (module_env m) code_key prog;
           finish ()
         with e ->
           finish ();
           Hashtbl.remove t.modules name;
           raise e);
        (* bind into parent package's namespace: a.b becomes attr b of a *)
        (match List.rev parts with
         | _ :: (_ :: _ as rev_parent) ->
           let parent = Ast.dotted_to_string (List.rev rev_parent) in
           (match Hashtbl.find_opt t.modules parent with
            | Some pm ->
              Hashtbl.replace pm.mattrs
                (List.nth parts (List.length parts - 1))
                (Vmodule m)
            | None -> ())
         | _ -> ());
        m
    end

and import_submodule t (m : module_obj) name : value option =
  let parts = String.split_on_char '.' m.mname @ [ name ] in
  match Importer.resolve t.vfs parts with
  | Importer.Not_found -> None
  | Importer.Package _ | Importer.Module _ ->
    let sub = import_one t parts in
    Some (Vmodule sub)

(* --- lazy stubs (ARCHITECTURE §14) -------------------------------------- *)

(* Can [path] be imported as lazy stubs? Never while a force is replaying a
   body (its nested imports must run in eager order — see [force_body]).
   The root must be in the image's lazy set and every prefix either already
   cached or resolvable, so an unresolvable name still raises eagerly at
   the import statement — exactly where eager mode raises it. *)
and lazy_importable t (path : string list) =
  t.lazy_forcing = 0
  && Hashtbl.mem t.lazy_roots (List.hd path)
  && List.for_all
       (fun parts ->
          Hashtbl.mem t.modules (Ast.dotted_to_string parts)
          || (match Importer.resolve t.vfs parts with
              | Importer.Package _ | Importer.Module _ -> true
              | Importer.Not_found -> false))
       (Importer.prefixes path)

(* Stub every missing prefix of [path]; returns the last component's module
   (stub or already materialized). Mirrors [import_dotted]'s shape: `import
   a.b.c` stubs a, a.b and a.b.c with each child bound into its parent, and
   forcing later re-runs the bodies in that same root-first order. *)
and lazy_import_dotted t (path : string list) : module_obj =
  let rec go last = function
    | [] -> (match last with Some m -> m | None -> assert false)
    | parts :: rest ->
      let name = Ast.dotted_to_string parts in
      let m =
        match Hashtbl.find_opt t.modules name with
        | Some m -> m
        | None -> make_stub t parts name
      in
      go (Some m) rest
  in
  go None (Importer.prefixes path)

and make_stub t parts name : module_obj =
  let file =
    match Importer.resolve t.vfs parts with
    | Importer.Package file | Importer.Module file -> file
    | Importer.Not_found -> assert false  (* guarded by [lazy_importable] *)
  in
  let mattrs = Hashtbl.create 16 in
  Hashtbl.replace mattrs "__name__" (Vstr name);
  Hashtbl.replace mattrs "__file__" (Vstr file);
  let m = { mname = name; mfile = file; mattrs } in
  (* the module shell is allocated now; the loader fee and body ticks move
     to force time, so a fully-forced run charges the same multiset of
     time/bytes/steps as its eager twin *)
  charge_alloc t (Vmodule m);
  Hashtbl.replace t.modules name m;
  Hashtbl.replace t.lazy_pending name ();
  (match List.rev parts with
   | leaf :: (_ :: _ as rev_parent) ->
     let parent = Ast.dotted_to_string (List.rev rev_parent) in
     (match Hashtbl.find_opt t.modules parent with
      | Some pm -> Hashtbl.replace pm.mattrs leaf (Vmodule m)
      | None -> ())
   | _ -> ());
  m

(* Run a pending stub's body; a no-op on initialized modules. Ancestors
   force first (eager `import a.b` ran a's body before a.b's), and the
   pending mark clears *before* the body runs, so a circular re-entrant
   touch observes the partially-initialized module exactly as eager mode
   does. *)
and force_module t (m : module_obj) =
  if Hashtbl.mem t.lazy_pending m.mname then begin
    (match String.rindex_opt m.mname '.' with
     | Some i ->
       (match Hashtbl.find_opt t.modules (String.sub m.mname 0 i) with
        | Some parent -> force_module t parent
        | None -> ())
     | None -> ());
    (* forcing an ancestor can re-enter and force [m] itself *)
    if Hashtbl.mem t.lazy_pending m.mname then force_body t m
  end

and force_body t (m : module_obj) =
  Hashtbl.remove t.lazy_pending m.mname;
  let name = m.mname and file = m.mfile in
  let sp =
    Obs.Span.begin_ t.obs_sink ~domain:Obs.Span.domain_virtual
      ~track:t.obs_track ~cat:"minipy" ~name:("lazy-force:" ^ name)
      ~ts_ms:(t.obs_offset_ms +. t.vtime_ms)
  in
  (* the deferred loader fee eager mode charged at the import statement *)
  charge_time t import_resolve_ms;
  let prog =
    try Parse_cache.parse_vfs ~cache:t.parse_cache t.vfs file with
    | Parser.Error (msg, loc) ->
      py_error "SyntaxError" "%s at %s" msg (Loc.to_string loc)
    | Lexer.Error (msg, loc) ->
      py_error "SyntaxError" "%s at %s" msg (Loc.to_string loc)
  in
  t.import_stack <- name :: t.import_stack;
  let hooks = t.import_hooks in
  List.iter (fun h -> h.on_before name) hooks;
  t.lazy_forcing <- t.lazy_forcing + 1;
  let finish () =
    t.lazy_forcing <- t.lazy_forcing - 1;
    t.import_stack <- List.tl t.import_stack;
    List.iter (fun h -> h.on_after name) hooks;
    Obs.Span.end_ sp
      ~attrs:[ ("file", file) ]
      ~ts_ms:(t.obs_offset_ms +. t.vtime_ms)
  in
  let code_key =
    if Parse_cache.enabled t.parse_cache then
      Option.map
        (fun digest -> Parse_cache.key ~file digest)
        (Vfs.file_digest t.vfs file)
    else None
  in
  (try
     t.exec_backend.xb_exec_module t (module_env m) code_key prog;
     finish ()
   with e ->
     finish ();
     Hashtbl.remove t.modules name;
     raise e);
  (* eager mode binds a child into its parent *after* the parent body runs,
     so a body-level name shadowed by a submodule must end up bound to the
     module — re-assert every registered direct child *)
  let pfx = name ^ "." in
  let pl = String.length pfx in
  Hashtbl.iter
    (fun cname cm ->
       if
         String.length cname > pl
         && String.sub cname 0 pl = pfx
         && not (String.contains_from cname pl '.')
       then
         Hashtbl.replace m.mattrs
           (String.sub cname pl (String.length cname - pl))
           (Vmodule cm))
    t.modules

and exec_import t env (path : Ast.dotted) alias =
  let last =
    if lazy_importable t path then lazy_import_dotted t path
    else import_dotted t path
  in
  match alias with
  | Some a -> Hashtbl.replace env.locals a (Vmodule last)
  | None ->
    (* `import a.b.c` binds `a` *)
    let root = List.hd path in
    let root_mod = Hashtbl.find t.modules root in
    Hashtbl.replace env.locals root (Vmodule root_mod)

(* Resolve a relative from-clause against the importing module. A package's
   __init__ resolves level 1 to the package itself; a plain module resolves
   it to its parent package; each extra dot strips one more component. *)
and resolve_from_clause t env (clause : Ast.from_clause) : Ast.dotted =
  ignore t;
  if clause.Ast.fc_level = 0 then clause.Ast.fc_path
  else begin
    let current_name =
      match Hashtbl.find_opt env.globals "__name__" with
      | Some (Vstr n) -> n
      | _ -> "__main__"
    in
    let is_package =
      match Hashtbl.find_opt env.globals "__file__" with
      | Some (Vstr f) ->
        String.length f >= 11
        && String.sub f (String.length f - 11) 11 = "__init__.py"
      | _ -> false
    in
    if String.equal current_name "__main__" then
      py_error "ImportError"
        "attempted relative import with no known parent package";
    let parts = String.split_on_char '.' current_name in
    let rec drop_last = function
      | [] | [ _ ] -> []
      | x :: rest -> x :: drop_last rest
    in
    let base = if is_package then parts else drop_last parts in
    let rec strip base n =
      if n <= 1 then base
      else
        match base with
        | [] -> py_error "ImportError" "attempted relative import beyond top-level package"
        | _ -> strip (drop_last base) (n - 1)
    in
    let base = strip base clause.Ast.fc_level in
    if base = [] then
      py_error "ImportError" "attempted relative import beyond top-level package";
    base @ clause.Ast.fc_path
  end

and exec_from_import t env (clause : Ast.from_clause) names =
  let path = resolve_from_clause t env clause in
  let m = import_dotted t path in
  List.iter
    (fun (name, alias) ->
       let v =
         match Hashtbl.find_opt m.mattrs name with
         | Some v -> v
         | None ->
           (* from pkg import submodule *)
           (match import_submodule t m name with
            | Some v -> v
            | None ->
              py_error "ImportError" "cannot import name '%s' from '%s'" name m.mname)
       in
       Hashtbl.replace env.locals (Option.value alias ~default:name) v)
    names

(* --- construction ------------------------------------------------------- *)

let treewalk_backend : exec_backend =
  { xb_name = "treewalk";
    xb_exec_module = (fun t env _key prog -> exec_block t env prog);
    xb_call_function = tw_call_function }

let default_max_steps = 5_000_000

let create ?(max_steps = default_max_steps) ?(parse_cache = Parse_cache.global)
    ?(obs = false) ?(exec_backend = treewalk_backend) (vfs : Vfs.t) : t =
  let obs_sink = if obs then Obs.Span.installed () else Obs.Span.null in
  let t =
    { vfs;
      parse_cache;
      exec_backend;
      obs_sink;
      obs_track = Obs.Span.fresh_track obs_sink;
      obs_offset_ms = 0.0;
      modules = Hashtbl.create 32;
      stdout_buf = Buffer.create 256;
      vtime_ms = 0.0;
      heap_bytes = 3 * 1024 * 1024;  (* bare runtime footprint ~3 MB *)
      steps = 0;
      max_steps;
      import_hooks = [];
      import_stack = [];
      builtins = Hashtbl.create 64;
      external_calls = [];
      remote_store = Hashtbl.create 8;
      lazy_roots = Hashtbl.create 4;
      lazy_pending = Hashtbl.create 4;
      lazy_forcing = 0 }
  in
  (* arm lazy loading when the image ships a manifest (ARCHITECTURE §14) *)
  (match Vfs.read vfs lazy_manifest_file with
   | None -> ()
   | Some src ->
     let lazified, _preload = parse_lazy_manifest src in
     List.iter (fun r -> Hashtbl.replace t.lazy_roots r ()) lazified);
  Builtins.install
    ~output:(fun s -> output t s)
    ~charge_time:(fun ms -> charge_time t ms)
    ~charge_bytes:(fun b -> charge_bytes t b)
    t.builtins;
  (* simrt: the synthetic-native-work module used by workload libraries *)
  let simrt_attrs = Hashtbl.create 8 in
  Hashtbl.replace simrt_attrs "__name__" (Vstr "simrt");
  Hashtbl.replace simrt_attrs "cpu_ms"
    (Vbuiltin
       { bname = "simrt.cpu_ms";
         bcall =
           (fun args _ ->
              match args with
              | [ v ] -> charge_time t (as_float v); Vnone
              | _ -> py_error "TypeError" "cpu_ms takes one argument") });
  Hashtbl.replace simrt_attrs "alloc_mb"
    (Vbuiltin
       { bname = "simrt.alloc_mb";
         bcall =
           (fun args _ ->
              match args with
              | [ v ] ->
                charge_bytes t (int_of_float (as_float v *. 1024.0 *. 1024.0));
                Vnone
              | _ -> py_error "TypeError" "alloc_mb takes one argument") });
  Hashtbl.replace simrt_attrs "io_ms"
    (Vbuiltin
       { bname = "simrt.io_ms";
         bcall =
           (fun args _ ->
              match args with
              | [ v ] -> charge_time t (as_float v); Vnone
              | _ -> py_error "TypeError" "io_ms takes one argument") });
  let simrt = { mname = "simrt"; mfile = "<builtin>"; mattrs = simrt_attrs } in
  Hashtbl.replace t.modules "simrt" simrt;
  (* json: encode/decode events and responses *)
  let json_attrs = Hashtbl.create 4 in
  Hashtbl.replace json_attrs "__name__" (Vstr "json");
  Hashtbl.replace json_attrs "dumps"
    (Vbuiltin
       { bname = "json.dumps";
         bcall =
           (fun args _ ->
              match args with
              | [ v ] ->
                let s = Vstr (Json_support.dumps v) in
                charge_alloc t s; s
              | _ -> py_error "TypeError" "dumps takes one argument") });
  Hashtbl.replace json_attrs "loads"
    (Vbuiltin
       { bname = "json.loads";
         bcall =
           (fun args _ ->
              match args with
              | [ Vstr s ] ->
                (try
                   let v = Json_support.loads s in
                   charge_alloc t v; v
                 with Json_support.Decode_error m ->
                   py_error "ValueError" "%s" m)
              | _ -> py_error "TypeError" "loads takes a string") });
  let json_mod = { mname = "json"; mfile = "<builtin>"; mattrs = json_attrs } in
  Hashtbl.replace t.modules "json" json_mod;
  (* cloud: intercepted remote-service calls (§5.3) — every operation is
     recorded so the oracle can check external side effects for equivalence,
     and reads are deterministic per interpreter run *)
  let record op = t.external_calls <- op :: t.external_calls in
  let cloud_attrs = Hashtbl.create 4 in
  Hashtbl.replace cloud_attrs "__name__" (Vstr "cloud");
  Hashtbl.replace cloud_attrs "put"
    (Vbuiltin
       { bname = "cloud.put";
         bcall =
           (fun args _ ->
              match args with
              | [ Vstr service; Vstr key; v ] ->
                charge_time t 2.5;  (* network round-trip *)
                record
                  (Printf.sprintf "put %s/%s = %s" service key (to_repr v));
                Hashtbl.replace t.remote_store (service ^ "/" ^ key) v;
                Vbool true
              | _ -> py_error "TypeError" "put(service, key, value)") });
  Hashtbl.replace cloud_attrs "get"
    (Vbuiltin
       { bname = "cloud.get";
         bcall =
           (fun args _ ->
              match args with
              | [ Vstr service; Vstr key ] ->
                charge_time t 2.5;
                record (Printf.sprintf "get %s/%s" service key);
                (match Hashtbl.find_opt t.remote_store (service ^ "/" ^ key) with
                 | Some v -> v
                 | None ->
                   (* deterministic synthetic blob for unseen keys *)
                   let v = Vstr (Printf.sprintf "blob:%s/%s" service key) in
                   charge_alloc t v; v)
              | _ -> py_error "TypeError" "get(service, key)") });
  Hashtbl.replace cloud_attrs "invoke"
    (Vbuiltin
       { bname = "cloud.invoke";
         bcall =
           (fun args _ ->
              match args with
              | [ Vstr fn; payload ] ->
                charge_time t 8.0;
                record
                  (Printf.sprintf "invoke %s(%s)" fn (to_repr payload));
                let v = Vdict { pairs = [ (Vstr "ok", Vbool true) ] } in
                charge_alloc t v; v
              | _ -> py_error "TypeError" "invoke(function_name, payload)") });
  let cloud_mod = { mname = "cloud"; mfile = "<builtin>"; mattrs = cloud_attrs } in
  Hashtbl.replace t.modules "cloud" cloud_mod;
  t

(* External calls in issue order. *)
let external_calls t = List.rev t.external_calls

let add_import_hook t hook = t.import_hooks <- t.import_hooks @ [ hook ]

(* Execute a top-level program (the handler file) in a fresh __main__ module;
   returns its namespace. *)
let exec_main t (prog : Ast.program) : namespace =
  let mattrs = Hashtbl.create 16 in
  Hashtbl.replace mattrs "__name__" (Vstr "__main__");
  let m = { mname = "__main__"; mfile = "<main>"; mattrs } in
  Hashtbl.replace t.modules "__main__" m;
  t.exec_backend.xb_exec_module t (module_env m) None prog;
  mattrs

(* Call a function defined in a namespace (the lambda handler). *)
let call_in_namespace t (ns : namespace) fname args =
  match Hashtbl.find_opt ns fname with
  | Some (Vfunc f) -> call_function t f args []
  | Some (Vbuiltin b) -> b.bcall args []
  | Some v -> py_error "TypeError" "'%s' object is not callable" (type_name v)
  | None -> py_error "NameError" "name '%s' is not defined" fname
