(** Optimizer-family selection ([--optimizer dd,lazy,combined,none]) and
    dispatch. [Dd] is λ-trim's attribute debloating; [Lazy] is the
    profile-guided lazy loader ({!Lazy_loader}), which removes nothing;
    [Combined] stacks lazy loading on the DD-trimmed image; [Off] deploys
    the original untouched. *)

type variant = Dd | Lazy | Combined | Off

(** ["dd"], ["lazy"], ["combined"], ["none"]. *)
val to_string : variant -> string

val of_string : string -> variant option
val all : variant list

(** Process-wide selection, set once at CLI startup (default [Dd]);
    mirrors [Minipy.Backend.configure]. *)
val configure : variant -> unit
val current : unit -> variant

type outcome = {
  o_variant : variant;
  o_deployment : Platform.Deployment.t;  (** what gets deployed *)
  o_dd : Pipeline.report option;
  o_lazy : Lazy_loader.report option;
}

(** Optimize [d] with the given family. [options]/[jobs] flow to
    {!Pipeline.run} for the families that run DD. *)
val run :
  ?options:Pipeline.options -> ?jobs:int -> variant ->
  Platform.Deployment.t -> outcome
