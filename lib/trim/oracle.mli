(** The correctness oracle (§5.3).

    A candidate program passes iff, for every test case in the oracle
    specification, it reproduces the original's observable output: captured
    stdout, the handler's return value (or raised exception), and the
    sequence of intercepted external-service calls. Each test case runs in a
    fresh interpreter — the per-process module isolation of §7.

    Observations are memoized by (image digest, test case): the simulated
    platform is deterministic, so identical effective images yield identical
    canonical outputs. Memoized answers are the same values the interpreter
    would produce, so virtual measurements are unaffected. *)

type observation = {
  per_test : (string * string) list;
      (** test-case name → canonical output string *)
}

(** The observation memo. Thread-safe; a disabled cache always re-runs. *)
module Cache : sig
  type t

  (** Hit/miss counts live in an {!Obs.Metrics} registry (default: a fresh
      private one) under [<prefix>.hits] / [<prefix>.misses]; the {!global}
      memo registers as [oracle.memo.*] in [Obs.Metrics.global]. *)
  val create :
    ?enabled:bool -> ?registry:Obs.Metrics.registry -> ?prefix:string ->
    unit -> t

  (** The default memo shared by {!observe} and {!for_reference} callers
      that do not inject their own — this is what lets continuous re-runs
      and baseline comparisons reuse earlier answers. *)
  val global : t

  val set_enabled : t -> bool -> unit
  val enabled : t -> bool
  val hits : t -> int
  val misses : t -> int

  (** Hits answered by the attached persistent store (a subset of
      {!hits}); [<prefix>.store_hits]. *)
  val store_hits : t -> int

  (** In-memory entries dropped by the capacity bound;
      [<prefix>.evicted]. *)
  val evicted : t -> int

  (** Number of memoized (image, test case) observations held in memory. *)
  val size : t -> int

  (** Bound the in-memory table. [None] (the default) is unbounded; with
      [Some cap], inserting into a full table evicts the oldest in-memory
      entries (FIFO). An attached persistent store is unaffected by
      eviction — evicted keys re-promote from it on their next miss.
      @raise Invalid_argument if [cap < 1]. *)
  val set_capacity : t -> int option -> unit

  val capacity : t -> int option

  (** Attach (or with [None] detach) a persistent {!Memo_store} beneath
      this cache: misses consult the store and promote hits into memory
      (counted as a hit plus [<prefix>.store_hits]); fresh observations
      write through durably. Off by default. *)
  val attach_store : t -> Memo_store.t option -> unit

  val backing : t -> Memo_store.t option

  (** Drop all in-memory entries and reset the hit/miss/store-hit/evicted
      counters. The attached persistent store (if any) keeps its
      contents. *)
  val clear : t -> unit
end

(** Canonical output of one invocation record: stdout, then [RET:]/[ERR:],
    then [CALLS:] when external calls were made. *)
val canonical_of_record : Platform.Lambda_sim.record -> string

(** Raised (under {!Minipy.Backend.Compare}) when the two engines disagree
    on a test case's strict canonicalization — observable output plus exact
    virtual-time/byte-ledger accounting. *)
exception
  Divergence of { div_test : string; div_treewalk : string; div_vm : string }

(** Observe a deployment across its test cases, consulting [cache] (default
    {!Cache.global}) per (backend, image digest, test case). Init-time
    crashes appear as [INITERR:<class>]; interpreter timeouts as
    [CRASH:timeout]. Under {!Minipy.Backend.Compare} every uncached test
    case runs on both engines and raises {!Divergence} if they disagree.
    [params] overrides the probe simulator's parameters (e.g. a small
    [max_steps] to provoke timeouts); runs with a custom budget memoize
    under a distinct key. *)
val observe :
  ?cache:Cache.t -> ?params:Platform.Lambda_sim.params ->
  Platform.Deployment.t -> observation

val equivalent : observation -> observation -> bool

(** [for_reference d] runs [d] once and returns the DD oracle (candidates
    pass iff they reproduce the reference observation) plus the reference. *)
val for_reference :
  ?cache:Cache.t ->
  ?params:Platform.Lambda_sim.params ->
  Platform.Deployment.t ->
  (Platform.Deployment.t -> bool) * observation

(** {1 Hardened oracle}

    A wrapper defending the observation memo against flaky or hung
    executions: fresh keys are confirmed by a second execution (and decided
    by a [2·retries + 1] quorum on disagreement), the first memo hit per
    key is re-verified once, divergent tests land in a quarantine list
    classified flaky vs genuinely behaviour-changing, and an optional
    wall-clock watchdog turns an over-budget execution into an ordinary
    [CRASH:watchdog-timeout] observation. The memoized baseline always
    stays authoritative, so a hardened search remains deterministic; the
    quarantine report tells the operator what diverged.

    Metrics (in [Obs.Metrics.global]): [oracle.quorum.retries]
    (disagreement-triggered re-executions — zero on a deterministic
    suite), [oracle.quorum.quarantined], [oracle.watchdog.trips]. *)
module Hardened : sig
  type classification = Flaky | Behavior_changed

  val classification_name : classification -> string

  type quarantine_entry = {
    q_test : string;
    q_class : classification;
    q_events : int;           (** divergent quorums observed *)
    q_executions : int;       (** executions those quorums consumed *)
    q_outputs : string list;  (** distinct outputs, first-seen order *)
  }

  type config = {
    retries : int;            (** k: a quorum is [2k + 1] total attempts *)
    verify_hits : bool;       (** re-execute the first memo hit per key *)
    watchdog_ms : float option;  (** per-execution wall budget, off = None *)
    clock : unit -> float;    (** wall-clock source (injectable in tests) *)
    inject : Chaos.injector option;  (** fault injection for chaos runs *)
  }

  (** retries = 1, verify_hits = true, no watchdog, wall clock, no
      injection. *)
  val default_config : config

  type t

  (** @raise Invalid_argument if [retries < 0]. [retries = 0] disables
      quorums and verification (watchdog still applies). *)
  val create : ?cache:Cache.t -> config -> t

  val observe :
    t -> ?params:Platform.Lambda_sim.params -> Platform.Deployment.t ->
    observation

  val for_reference :
    t -> ?params:Platform.Lambda_sim.params -> Platform.Deployment.t ->
    (Platform.Deployment.t -> bool) * observation

  (** Number of quarantined tests. *)
  val quarantined : t -> int

  (** Quarantine entries sorted by test name. *)
  val report : t -> quarantine_entry list

  (** CSV rendering of {!report}:
      [test,class,events,executions,distinct_outputs]. *)
  val report_csv : t -> string
end
