(** The correctness oracle (§5.3).

    A candidate program passes iff, for every test case in the oracle
    specification, it reproduces the original's observable output: captured
    stdout, the handler's return value (or raised exception), and the
    sequence of intercepted external-service calls. Each test case runs in a
    fresh interpreter — the per-process module isolation of §7.

    Observations are memoized by (image digest, test case): the simulated
    platform is deterministic, so identical effective images yield identical
    canonical outputs. Memoized answers are the same values the interpreter
    would produce, so virtual measurements are unaffected. *)

type observation = {
  per_test : (string * string) list;
      (** test-case name → canonical output string *)
}

(** The observation memo. Thread-safe; a disabled cache always re-runs. *)
module Cache : sig
  type t

  (** Hit/miss counts live in an {!Obs.Metrics} registry (default: a fresh
      private one) under [<prefix>.hits] / [<prefix>.misses]; the {!global}
      memo registers as [oracle.memo.*] in [Obs.Metrics.global]. *)
  val create :
    ?enabled:bool -> ?registry:Obs.Metrics.registry -> ?prefix:string ->
    unit -> t

  (** The default memo shared by {!observe} and {!for_reference} callers
      that do not inject their own — this is what lets continuous re-runs
      and baseline comparisons reuse earlier answers. *)
  val global : t

  val set_enabled : t -> bool -> unit
  val enabled : t -> bool
  val hits : t -> int
  val misses : t -> int

  (** Number of memoized (image, test case) observations. *)
  val size : t -> int

  (** Drop all entries and reset the hit/miss counters. *)
  val clear : t -> unit
end

(** Canonical output of one invocation record: stdout, then [RET:]/[ERR:],
    then [CALLS:] when external calls were made. *)
val canonical_of_record : Platform.Lambda_sim.record -> string

(** Raised (under {!Minipy.Backend.Compare}) when the two engines disagree
    on a test case's strict canonicalization — observable output plus exact
    virtual-time/byte-ledger accounting. *)
exception
  Divergence of { div_test : string; div_treewalk : string; div_vm : string }

(** Observe a deployment across its test cases, consulting [cache] (default
    {!Cache.global}) per (backend, image digest, test case). Init-time
    crashes appear as [INITERR:<class>]; interpreter timeouts as
    [CRASH:timeout]. Under {!Minipy.Backend.Compare} every uncached test
    case runs on both engines and raises {!Divergence} if they disagree. *)
val observe : ?cache:Cache.t -> Platform.Deployment.t -> observation

val equivalent : observation -> observation -> bool

(** [for_reference d] runs [d] once and returns the DD oracle (candidates
    pass iff they reproduce the reference observation) plus the reference. *)
val for_reference :
  ?cache:Cache.t ->
  Platform.Deployment.t ->
  (Platform.Deployment.t -> bool) * observation
