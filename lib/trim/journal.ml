(* Durable DD decision journal.

   One journal file per module search. The header binds the file to a run
   digest (base image digest + module + candidate list + backend), so a
   stale journal from a different revision or job layout is discarded
   instead of replayed. Every record is an append-only line

     o|<seq>|<subset key>|<T or F>|<md5 of the payload before the checksum>
     k|<seq>|<final keep-set key>|<md5 ...>                (completion mark)

   flushed before control returns to DD — the crash model is "power loss
   after any single write". Replay therefore tolerates exactly one torn
   record at the tail (and, defensively, any checksum/sequence-invalid
   suffix): the valid prefix is kept, the rest is dropped and the file is
   repaired via write-temp-then-rename. A resumed DD run answers its
   queries from the replay table in place of the oracle, reproducing the
   uninterrupted run's keep-set and counters bit for bit.

   A repair is written atomically — temp file in the same directory, then
   rename — because the valid prefix must survive a crash mid-repair. A
   fresh start writes its header straight onto the append channel instead:
   a header torn by a crash fails the header check on the next resume and
   the file starts over, which loses nothing a fresh file had. Appends go
   through that channel with a flush per record; after each flush the
   chaos harness is notified, which is how the simulated
   kill-after-record-N lands exactly on a durable boundary. *)

let magic = "ltrim-journal/1"

(* --- atomic file helpers (shared by the CSV/report writers) --------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Journal.mkdir_p: %s exists and is not a directory" dir)

(* Write [contents] to [path] via a temp file in the same directory plus
   [Sys.rename] (atomic on POSIX): a crash leaves either the old file or
   the new one, never a torn mix. *)
let write_file_atomic ~path contents =
  let dir = Filename.dirname path in
  mkdir_p dir;
  let tmp = Filename.temp_file ~temp_dir:dir ".ltrim" ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* --- metrics --------------------------------------------------------------

   Global registry counters; guarded by a module-level mutex because
   parallel pipeline groups journal concurrently and counters are plain
   mutable ints. *)

let counters_lock = Mutex.create ()
let c_appended = Obs.Metrics.counter Obs.Metrics.global "trim.journal.appended"
let c_replayed = Obs.Metrics.counter Obs.Metrics.global "trim.journal.replayed"
let c_truncated = Obs.Metrics.counter Obs.Metrics.global "trim.journal.truncated"

let count ?by c =
  Mutex.lock counters_lock;
  Obs.Metrics.incr ?by c;
  Mutex.unlock counters_lock

(* --- the journal ---------------------------------------------------------- *)

type t = {
  path : string;
  mutable oc : out_channel option;
  replay : (string, bool) Hashtbl.t;
  mutable keepset : string option;    (* completion mark, when present *)
  mutable next_seq : int;
  mutable replayed_served : int;      (* replay-table answers handed out *)
  mutable truncated_records : int;    (* invalid suffix lines dropped on open *)
  buf : Buffer.t;                     (* record scratch; guarded by [lock] *)
  lock : Mutex.t;
}

let checksum payload = Digest.to_hex (Digest.string payload)

(* A record body travels as one '|'-field; DD keys are index lists
   ("3,7,19") so this never fires in practice. *)
let check_key key =
  if String.exists (fun c -> c = '|' || c = '\n') key then
    invalid_arg "Journal: record keys must not contain '|' or newlines"

type parsed =
  | P_obs of int * string * bool
  | P_keepset of int * string
  | P_invalid

let parse_line line =
  match String.split_on_char '|' line with
  | [ kind; seq; body; verdict; sum ] when kind = "o" ->
    let payload = Printf.sprintf "%s|%s|%s|%s" kind seq body verdict in
    (match (int_of_string_opt seq, verdict) with
     | Some s, ("T" | "F") when String.equal (checksum payload) sum ->
       P_obs (s, body, String.equal verdict "T")
     | _ -> P_invalid)
  | [ kind; seq; body; sum ] when kind = "k" ->
    let payload = Printf.sprintf "%s|%s|%s" kind seq body in
    (match int_of_string_opt seq with
     | Some s when String.equal (checksum payload) sum -> P_keepset (s, body)
     | _ -> P_invalid)
  | _ -> P_invalid

let read_lines path =
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = go [] in
  close_in ic;
  lines

let header_line ~run_digest = Printf.sprintf "%s|%s" magic run_digest

(* Open (or create) the journal at [path] for a search identified by
   [run_digest]. With [resume] an existing compatible file is replayed:
   the valid record prefix fills the replay table, any invalid suffix is
   dropped and the file repaired atomically. Without [resume] — or when
   the header does not match this run — the file starts fresh. *)
let open_ ?(resume = false) ~path ~run_digest () =
  let header = header_line ~run_digest in
  let t =
    { path;
      oc = None;
      replay = Hashtbl.create 256;
      keepset = None;
      next_seq = 0;
      replayed_served = 0;
      truncated_records = 0;
      buf = Buffer.create 256;
      lock = Mutex.create () }
  in
  let existing =
    if resume && Sys.file_exists path then
      match read_lines path with
      | first :: rest when String.equal first header -> Some rest
      | _ -> None (* foreign/torn header or different run: start fresh *)
    else None
  in
  (match existing with
   | Some record_lines ->
     let rec replay_valid kept = function
       | [] -> (List.rev kept, 0)
       | line :: rest ->
         (match parse_line line with
          | P_obs (seq, key, verdict) when seq = t.next_seq ->
            Hashtbl.replace t.replay key verdict;
            t.next_seq <- t.next_seq + 1;
            replay_valid (line :: kept) rest
          | P_keepset (seq, keys) when seq = t.next_seq ->
            t.keepset <- Some keys;
            t.next_seq <- t.next_seq + 1;
            replay_valid (line :: kept) rest
          | _ -> (List.rev kept, 1 + List.length rest))
     in
     let kept, dropped = replay_valid [] record_lines in
     t.truncated_records <- dropped;
     if dropped > 0 then begin
       count ~by:dropped c_truncated;
       write_file_atomic ~path
         (String.concat "\n" (header :: kept) ^ "\n")
     end;
     t.oc <-
       Some (open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path)
   | None ->
     (* fresh start: truncate and write the header straight on the append
        channel — no atomicity needed, since a torn header reads as a
        foreign file on the next resume and the journal starts over *)
     mkdir_p (Filename.dirname path);
     let oc =
       open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
         0o644 path
     in
     output_string oc header;
     output_char oc '\n';
     flush oc;
     t.oc <- Some oc);
  t

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Replayed verdict for [key], if the journal recorded one. *)
let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.replay key with
      | Some v ->
        t.replayed_served <- t.replayed_served + 1;
        count c_replayed;
        Some v
      | None -> None)

let out_channel_exn t =
  match t.oc with
  | Some oc -> oc
  | None -> invalid_arg "Journal: already closed"

(* Build "kind|seq|body[|verdict]" in the scratch buffer, append the
   checksum field, write the line and flush. Called with [t.lock] held —
   one allocation (the checksummed payload) and one write per record; the
   flush is the durability boundary. *)
let append_record t ~kind ~body ~verdict =
  let oc = out_channel_exn t in
  let buf = t.buf in
  Buffer.clear buf;
  Buffer.add_string buf kind;
  Buffer.add_char buf '|';
  Buffer.add_string buf (string_of_int t.next_seq);
  Buffer.add_char buf '|';
  Buffer.add_string buf body;
  (match verdict with
   | Some v ->
     Buffer.add_char buf '|';
     Buffer.add_char buf (if v then 'T' else 'F')
   | None -> ());
  let sum = checksum (Buffer.contents buf) in
  Buffer.add_char buf '|';
  Buffer.add_string buf sum;
  Buffer.add_char buf '\n';
  Buffer.output_buffer oc buf;
  flush oc;
  t.next_seq <- t.next_seq + 1;
  count c_appended;
  (* the record is durable; a chaos kill lands exactly here *)
  Chaos.note_journal_append ()

(* Record one oracle verdict. Durable (flushed) before returning. *)
let append t ~key verdict =
  check_key key;
  locked t (fun () -> append_record t ~kind:"o" ~body:key ~verdict:(Some verdict))

(* Record the final keep-set — the completion mark. Idempotent on resume:
   a replayed identical mark is not re-appended. *)
let append_keepset t keys =
  check_key keys;
  locked t (fun () ->
      match t.keepset with
      | Some k when String.equal k keys -> ()
      | _ ->
        t.keepset <- Some keys;
        append_record t ~kind:"k" ~body:keys ~verdict:None)

let final_keepset t = locked t (fun () -> t.keepset)

let replayed t = locked t (fun () -> t.replayed_served)

let truncated t = locked t (fun () -> t.truncated_records)

let records t = locked t (fun () -> t.next_seq)

let close t =
  locked t (fun () ->
      match t.oc with
      | Some oc ->
        flush oc;
        close_out oc;
        t.oc <- None
      | None -> ())

(* --- per-search spec and process-wide configuration -----------------------

   The pipeline hands the debloater a [spec] (directory + resume flag); the
   debloater derives the per-module path and run digest. [configure] is the
   CLI's way to journal experiment runs whose pipeline options it cannot
   reach (the experiment registry builds its own): [Pipeline.run] falls back
   to the configured directory when its options carry none. *)

type spec = { journal_dir : string; journal_resume : bool }

let conf = ref (None : spec option)
let conf_lock = Mutex.create ()

let configure ~dir ~resume =
  Mutex.lock conf_lock;
  conf :=
    (match dir with
     | Some d -> Some { journal_dir = d; journal_resume = resume }
     | None -> None);
  Mutex.unlock conf_lock

let configured () =
  Mutex.lock conf_lock;
  let c = !conf in
  Mutex.unlock conf_lock;
  c
