(** Run manifest: the durable record of one debloat pipeline run that makes
    the next run incremental.

    A manifest binds the run configuration (app, backend, optimizer
    variant, scoring, k) to the ranked module list and, per module, the
    reachable-image search digest ({!Debloater.module_search_digest}), the
    removed attributes, and the search's counters. A later run given the
    manifest as [--baseline] replays recorded results for modules whose
    digest is unchanged and warm-starts DD for the rest.

    The file is line-oriented with an [ltrim-manifest/1] header and one
    md5-checksummed record per line. Parsing is strict — any malformed or
    corrupt line rejects the whole manifest (callers then fall back to a
    cold run); manifests are written atomically after a completed run, so
    unlike a {!Journal} there is no torn-tail recovery to perform. *)

type module_entry = {
  me_module : string;
  me_file : string;          (** ["<none>"] for built-in modules *)
  me_digest : string;        (** search digest at run time *)
  me_removed : string list;  (** removed attributes, source order *)
  me_queries : int;
  me_cache_hits : int;
  me_iterations : int;
}

type t = {
  mf_app : string;
  mf_backend : string;
  mf_variant : string;       (** lazy-stub tag, ["eager"] when none *)
  mf_scoring : string;
  mf_k : int;
  mf_input_digest : string;  (** image digest before debloating *)
  mf_output_digest : string; (** image digest of the debloated result *)
  mf_ranked : string list;   (** modules in debloat order *)
  mf_modules : module_entry list;  (** same order as [mf_ranked] *)
}

val magic : string

(** Render to the on-disk text format.
    @raise Invalid_argument if any field contains ['|'] or newlines. *)
val render : t -> string

(** Strict inverse of {!render}: [None] on a foreign header, checksum
    mismatch, malformed record, or ranked/module-list disagreement. *)
val parse : string -> t option

(** Atomic write-temp-then-rename of {!render}, creating parent
    directories as needed. *)
val save : path:string -> t -> unit

(** [None] if the file is absent or fails {!parse}. *)
val load : path:string -> t option

val find_module : t -> string -> module_entry option
