(* The DD-based debloater (§5.3, §6.3).

   For each module in the profiler's top-K:
     1. load the module to enumerate its attributes;
     2. back up its __init__ file so every DD iteration starts clean;
     3. candidates = attributes − PyCG-protected − magic;
     4. run Algorithm 1: each query rewrites the file on a copy-on-write
        overlay of the deployment and re-runs the oracle test cases in a
        fresh interpreter.

   The output is a deployment whose image contains the 1-minimal module.

   Candidate images are Vfs overlays (base + one rewritten file), so building
   one is O(1) instead of O(image files); the oracle memoizes observations by
   image digest, and the per-module [Dd.stats] record the memo's hit/miss
   traffic for this module's search ([oracle_cache] names the memo those
   queries went through — pass the same cache the oracle closure uses). *)

module String_set = Callgraph.Pycg.String_set

type module_result = {
  dm_module : string;            (* dotted module name *)
  dm_file : string;              (* rewritten vfs path *)
  attrs_before : int;
  attrs_after : int;
  removed_attrs : string list;
  protected : string list;       (* PyCG exclusions *)
  oracle_queries : int;
  cache_hits : int;
  dd_iterations : int;
  oracle_cache_hits : int;       (* observation-memo hits during this search *)
  oracle_cache_misses : int;
}

let pp_module_result ppf r =
  Fmt.pf ppf "%s: %d/%d attrs kept (%d removed, %d protected, %d queries, \
              %d memo hits)"
    r.dm_module r.attrs_after r.attrs_before
    (List.length r.removed_attrs) (List.length r.protected) r.oracle_queries
    r.oracle_cache_hits

let empty_result module_name =
  { dm_module = module_name; dm_file = "<none>"; attrs_before = 0;
    attrs_after = 0; removed_attrs = []; protected = [];
    oracle_queries = 0; cache_hits = 0; dd_iterations = 0;
    oracle_cache_hits = 0; oracle_cache_misses = 0 }

(* Rewrite [file] inside a copy-on-write overlay of [d] keeping exactly
   [keep]: the candidate image shares every other file with the base. *)
let with_restricted (d : Platform.Deployment.t) ~file ~keep =
  let d' = Platform.Deployment.overlay d in
  let source = Minipy.Vfs.read_exn d'.Platform.Deployment.vfs file in
  let keep_set =
    List.fold_left (fun s n -> Attrs.String_set.add n s) Attrs.String_set.empty keep
  in
  let rewritten = Attrs.rewrite_source ~file source ~keep:keep_set in
  Minipy.Vfs.add_file d'.Platform.Deployment.vfs file rewritten;
  d'

(* DD has no virtual timeline — its spans run on the host wall clock
   (Obs.Span.wall_ms, shared with the pipeline). Sequentially they share
   the pipeline phases' lane (see Pipeline.obs_track) so dd:<module> nests
   inside phase:debloat and oracle:query inside dd:<module>; under the
   parallel pool each worker domain records on its own private track
   instead, so concurrent spans stay well-nested per (domain, track). *)
let wall_ms = Obs.Span.wall_ms

let obs_track () = Parallel.Pool.obs_wall_track ~default:1 ()

let obs_dd_span ~module_name f =
  Obs.Span.with_span (Obs.Span.installed ()) ~domain:Obs.Span.domain_wall
    ~track:(obs_track ()) ~cat:"dd" ~name:("dd:" ^ module_name)
    ~clock:wall_ms f

(* Wrap a DD oracle so every query is a span carrying its verdict, the
   candidate size, and the observation-memo traffic it generated. Off the
   tracer this is the bare oracle call. *)
let traced_oracle ~module_name ~(cache : Oracle.Cache.t) dd_oracle subset =
  let sink = Obs.Span.installed () in
  if not (Obs.Span.enabled sink) then dd_oracle subset
  else begin
    let sp =
      Obs.Span.begin_ sink ~domain:Obs.Span.domain_wall ~track:(obs_track ())
        ~cat:"oracle" ~name:"oracle:query" ~ts_ms:(wall_ms ())
    in
    let h0 = Oracle.Cache.hits cache and m0 = Oracle.Cache.misses cache in
    match dd_oracle subset with
    | pass ->
      Obs.Span.end_ sp
        ~attrs:
          [ ("module", module_name);
            ("subset_size", string_of_int (List.length subset));
            ("pass", string_of_bool pass);
            ("memo_hits", string_of_int (Oracle.Cache.hits cache - h0));
            ("memo_misses", string_of_int (Oracle.Cache.misses cache - m0)) ]
        ~ts_ms:(wall_ms ());
      pass
    | exception e ->
      Obs.Span.end_ sp ~ts_ms:(wall_ms ());
      raise e
  end

(* Run DD on [pool] when one of size > 1 is supplied, sequentially
   otherwise. The parallel stats are re-expressed as the sequential [Dd.stats]
   view — legitimate because the committed-prefix discipline makes
   [p_oracle_queries]/[p_cache_hits]/[p_iterations] equal the sequential
   run's numbers (see Dd.minimize_parallel). [on_step] fires only on the
   sequential path: speculative evaluation has no sequential step order to
   report. *)
let dd_minimize ?on_step ?pool ?journal ~oracle candidates =
  match pool with
  | Some p when Parallel.Pool.size p > 1 ->
    let kept, ps = Dd.minimize_parallel ~pool:p ?journal ~oracle candidates in
    ( kept,
      { Dd.oracle_queries = ps.Dd.p_oracle_queries;
        cache_hits = ps.Dd.p_cache_hits;
        iterations = ps.Dd.p_iterations;
        oracle_cache_hits = 0;
        oracle_cache_misses = 0;
        ws_queries = 0;
        ws_hits = 0 } )
  | _ -> Dd.minimize ?on_step ?journal ~oracle candidates

(* --- journal wiring --------------------------------------------------------

   One journal file per module search, named after the module inside the
   run's journal directory. The run digest binds the file to everything
   the verdict stream depends on: the *base* deployment image this module
   is searched against (which differs between sequential and parallel
   pipeline folds — hence resume requires the same --jobs), the module,
   its candidate/protected split, and the execution backend. A journal
   whose digest mismatches is discarded, never replayed: revision safety
   over resume speed. *)

let sanitize_module_name m =
  String.map
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
       | _ -> '_')
    m

let journal_run_digest (d : Platform.Deployment.t) ~module_name ~file
    ~protected_list ~candidates =
  (* optimizer variant / stub configuration: a --resume of a lazy run must
     never replay eager-run verdicts. Eager images keep the historical
     digest, so existing journals stay resumable. *)
  let variant_tag =
    match Minipy.Interp.lazy_config_of_vfs d.Platform.Deployment.vfs with
    | "eager" -> []
    | lazy_cfg -> [ lazy_cfg ]
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          ("ltrim-dd/1"
           :: Minipy.Backend.to_string (Minipy.Backend.current ())
           :: (variant_tag
               @ Platform.Deployment.image_digest d
                 :: module_name :: file
                 :: (protected_list @ ("\x01" :: candidates))))))

let open_journal (spec : Journal.spec option) d ~module_name ~file
    ~protected_list ~candidates =
  match spec with
  | None -> None
  | Some { Journal.journal_dir; journal_resume } ->
    let path =
      Filename.concat journal_dir (sanitize_module_name module_name ^ ".journal")
    in
    let run_digest =
      journal_run_digest d ~module_name ~file ~protected_list ~candidates
    in
    Some
      (Obs.Span.with_span (Obs.Span.installed ()) ~domain:Obs.Span.domain_wall
         ~track:(obs_track ()) ~cat:"journal" ~name:("journal:" ^ module_name)
         ~clock:wall_ms (fun () ->
             Journal.open_ ~resume:journal_resume ~path ~run_digest ()))

(* Record the observation-memo traffic of [f ()] into [stats]. *)
let with_memo_stats (cache : Oracle.Cache.t) (f : unit -> 'a * Dd.stats) :
  'a * Dd.stats =
  let h0 = Oracle.Cache.hits cache and m0 = Oracle.Cache.misses cache in
  let result, stats = f () in
  stats.Dd.oracle_cache_hits <- Oracle.Cache.hits cache - h0;
  stats.Dd.oracle_cache_misses <- Oracle.Cache.misses cache - m0;
  (result, stats)

let result_of_stats ~module_name ~file ~all_attrs ~final_keep ~protected_list
    (stats : Dd.stats) =
  { dm_module = module_name;
    dm_file = file;
    attrs_before = List.length all_attrs;
    attrs_after = List.length final_keep;
    removed_attrs =
      List.filter (fun a -> not (List.mem a final_keep)) all_attrs;
    protected = protected_list;
    oracle_queries = stats.Dd.oracle_queries;
    cache_hits = stats.Dd.cache_hits;
    dd_iterations = stats.Dd.iterations;
    oracle_cache_hits = stats.Dd.oracle_cache_hits;
    oracle_cache_misses = stats.Dd.oracle_cache_misses }

(* Debloat one module of [d]; returns the updated deployment (an overlay
   sharing no *mutable* state with the input) and the per-module report.
   [oracle] judges candidate deployments; [protected] attributes are never
   offered to DD. *)
let debloat_module ?(on_step = fun (_ : string Dd.step) -> ())
    ?(oracle_cache = Oracle.Cache.global) ?pool ?journal
    ~(oracle : Platform.Deployment.t -> bool) ~(protected : String_set.t)
    (d : Platform.Deployment.t) ~module_name : Platform.Deployment.t * module_result
  =
  match Minipy.Importer.init_file_of d.Platform.Deployment.vfs module_name with
  | None ->
    (* not file-backed (builtin) — nothing to debloat *)
    (d, empty_result module_name)
  | Some file ->
    let source = Minipy.Vfs.read_exn d.Platform.Deployment.vfs file in
    let prog = Minipy.Parse_cache.parse ~file source in
    let all_attrs = Attrs.attrs_of_program prog in
    let protected_list =
      List.filter (fun a -> String_set.mem a protected) all_attrs
    in
    let candidates =
      List.filter (fun a -> not (String_set.mem a protected)) all_attrs
    in
    (* O(subset) = oracle passes when the module keeps protected ∪ subset *)
    let dd_oracle subset =
      oracle (with_restricted d ~file ~keep:(protected_list @ subset))
    in
    let dd_oracle = traced_oracle ~module_name ~cache:oracle_cache dd_oracle in
    let jnl =
      open_journal journal d ~module_name ~file ~protected_list ~candidates
    in
    let kept, stats =
      Fun.protect
        ~finally:(fun () -> Option.iter Journal.close jnl)
        (fun () ->
           obs_dd_span ~module_name (fun () ->
               with_memo_stats oracle_cache (fun () ->
                   dd_minimize ~on_step ?pool ?journal:jnl ~oracle:dd_oracle
                     candidates)))
    in
    let final_keep = protected_list @ kept in
    let d' = with_restricted d ~file ~keep:final_keep in
    ( d',
      result_of_stats ~module_name ~file ~all_attrs ~final_keep
        ~protected_list stats )

(* Re-apply a finished module search to [d]: rebuild the keep-set the
   search arrived at (everything the module has minus [removed_attrs]) and
   rewrite the file on a fresh overlay. Each search restricts only its own
   module's __init__, so folding results over the input app in ranking
   order reconstructs — file for file — the deployment the sequential
   module-by-module pipeline builds; this is the merge step of
   Pipeline.run's inter-module parallel mode. Results for non-file-backed
   modules ([dm_file = "<none>"]) are no-ops. *)
let apply_result (d : Platform.Deployment.t) (r : module_result) =
  if not (Minipy.Vfs.exists d.Platform.Deployment.vfs r.dm_file) then d
  else begin
    let source = Minipy.Vfs.read_exn d.Platform.Deployment.vfs r.dm_file in
    let prog = Minipy.Parse_cache.parse ~file:r.dm_file source in
    let keep =
      List.filter
        (fun a -> not (List.mem a r.removed_attrs))
        (Attrs.attrs_of_program prog)
    in
    with_restricted d ~file:r.dm_file ~keep
  end

(* --- statement-granularity variant (§6.1 ablation) ------------------------ *)

let with_restricted_statements (d : Platform.Deployment.t) ~file ~keep =
  let d' = Platform.Deployment.overlay d in
  let source = Minipy.Vfs.read_exn d'.Platform.Deployment.vfs file in
  let prog = Minipy.Parse_cache.parse ~file source in
  let rewritten =
    Minipy.Pretty.program_to_string (Attrs.restrict_statements prog ~keep)
  in
  Minipy.Vfs.add_file d'.Platform.Deployment.vfs file rewritten;
  d'

(* DD over whole statements instead of attributes. Statements binding a
   PyCG-protected name are excluded from the candidate list. *)
let debloat_module_statements ?(oracle_cache = Oracle.Cache.global)
    ~(oracle : Platform.Deployment.t -> bool)
    ~(protected : String_set.t) (d : Platform.Deployment.t) ~module_name :
  Platform.Deployment.t * module_result =
  match Minipy.Importer.init_file_of d.Platform.Deployment.vfs module_name with
  | None -> (d, empty_result module_name)
  | Some file ->
    let source = Minipy.Vfs.read_exn d.Platform.Deployment.vfs file in
    let prog = Minipy.Parse_cache.parse ~file source in
    let prog_arr = Array.of_list prog in
    let components = Attrs.statement_components prog in
    let stmt_protected i =
      List.exists (fun n -> String_set.mem n protected)
        (Attrs.bound_names prog_arr.(i))
    in
    let always_keep = List.filter stmt_protected components in
    let candidates = List.filter (fun i -> not (stmt_protected i)) components in
    let dd_oracle subset =
      oracle (with_restricted_statements d ~file ~keep:(always_keep @ subset))
    in
    let dd_oracle = traced_oracle ~module_name ~cache:oracle_cache dd_oracle in
    let kept, stats =
      obs_dd_span ~module_name (fun () ->
          with_memo_stats oracle_cache (fun () ->
              Dd.minimize ~oracle:dd_oracle candidates))
    in
    let final_keep = always_keep @ kept in
    let d' = with_restricted_statements d ~file ~keep:final_keep in
    let all_attrs = Attrs.attrs_of_program prog in
    let surviving =
      Attrs.attrs_of_program (Attrs.restrict_statements prog ~keep:final_keep)
    in
    ( d',
      { dm_module = module_name;
        dm_file = file;
        attrs_before = List.length all_attrs;
        attrs_after = List.length surviving;
        removed_attrs =
          List.filter (fun a -> not (List.mem a surviving)) all_attrs;
        protected =
          List.filter (fun a -> String_set.mem a protected) all_attrs;
        oracle_queries = stats.Dd.oracle_queries;
        cache_hits = stats.Dd.cache_hits;
        dd_iterations = stats.Dd.iterations;
        oracle_cache_hits = stats.Dd.oracle_cache_hits;
        oracle_cache_misses = stats.Dd.oracle_cache_misses } )

(* --- seeded variant for the continuous pipeline (§9) ---------------------- *)

(* Like [debloat_module], but primes DD with the keep-set from a previous
   run. When the application changed little, the seed passes immediately and
   DD only has to re-verify 1-minimality inside it. *)
let debloat_module_seeded ?(oracle_cache = Oracle.Cache.global)
    ~(oracle : Platform.Deployment.t -> bool)
    ~(protected : String_set.t) ~(seed_keep : string list)
    (d : Platform.Deployment.t) ~module_name :
  Platform.Deployment.t * module_result * bool =
  match Minipy.Importer.init_file_of d.Platform.Deployment.vfs module_name with
  | None -> (d, empty_result module_name, false)
  | Some file ->
    let source = Minipy.Vfs.read_exn d.Platform.Deployment.vfs file in
    let prog = Minipy.Parse_cache.parse ~file source in
    let all_attrs = Attrs.attrs_of_program prog in
    let protected_list =
      List.filter (fun a -> String_set.mem a protected) all_attrs
    in
    let candidates =
      List.filter (fun a -> not (String_set.mem a protected)) all_attrs
    in
    let dd_oracle subset =
      oracle (with_restricted d ~file ~keep:(protected_list @ subset))
    in
    let dd_oracle = traced_oracle ~module_name ~cache:oracle_cache dd_oracle in
    let seed = List.filter (fun a -> List.mem a candidates) seed_keep in
    let (kept, seed_hit), stats =
      obs_dd_span ~module_name (fun () ->
          with_memo_stats oracle_cache (fun () ->
              let kept, stats, seed_hit =
                Dd.minimize_with_seed ~oracle:dd_oracle ~seed candidates
              in
              ((kept, seed_hit), stats)))
    in
    let final_keep = protected_list @ kept in
    let d' = with_restricted d ~file ~keep:final_keep in
    ( d',
      result_of_stats ~module_name ~file ~all_attrs ~final_keep
        ~protected_list stats,
      seed_hit )

(* --- incremental re-debloating (digest-diffed searches) -------------------

   One module's DD search is a pure function of its *reachable image*: the
   module's own library subtree (every file a query can read or rewrite),
   the handler and test cases driving the oracle, the candidate/protected
   split, and the execution configuration (backend, lazy-stub variant).
   [module_search_digest] hashes exactly that set, so across two revisions
   an equal digest means the search would replay move for move — the
   recorded keep-set can be applied without a single oracle query — while
   an unequal digest localizes re-search to the changed module.

   The digest deliberately excludes files outside the module's top-level
   library subtree. That is the same library-separability invariant the
   parallel pipeline's per-root grouping rests on (see
   Pipeline.debloat_parallel): a query for module [a.b] overlays only files
   under [site-packages/a], so edits elsewhere cannot change its verdicts.
   It also makes the digest identical between the sequential fold (where
   earlier-ranked foreign modules are already trimmed in [d]) and the
   parallel per-root group fold (where they are not) — hence warm runs are
   [--jobs]-invariant. A module whose file does not live under
   [site-packages/<root>] falls back to the whole image digest:
   conservative, never wrong. *)

let module_search_digest (d : Platform.Deployment.t) ~module_name ~file
    ~protected_list ~candidates =
  let vfs = d.Platform.Deployment.vfs in
  let root =
    match String.index_opt module_name '.' with
    | Some i -> String.sub module_name 0 i
    | None -> module_name
  in
  let subtree = "site-packages/" ^ root in
  let in_subtree =
    String.length file > String.length subtree
    && String.sub file 0 (String.length subtree + 1) = subtree ^ "/"
  in
  let digest_of f =
    match Minipy.Vfs.file_digest vfs f with Some dg -> dg | None -> "absent"
  in
  let scope =
    if not in_subtree then [ "image"; Platform.Deployment.image_digest d ]
    else
      List.concat_map
        (fun f -> [ f; digest_of f ])
        (Minipy.Vfs.files_under vfs subtree)
  in
  let tests =
    List.concat_map
      (fun (tc : Platform.Deployment.test_case) ->
         [ tc.Platform.Deployment.tc_name;
           tc.Platform.Deployment.tc_event;
           tc.Platform.Deployment.tc_context ])
      d.Platform.Deployment.test_cases
  in
  let variant_tag =
    match Minipy.Interp.lazy_config_of_vfs vfs with
    | "eager" -> []
    | lazy_cfg -> [ lazy_cfg ]
  in
  let parts =
    List.concat
      [ [ "ltrim-module/1";
          Minipy.Backend.to_string (Minipy.Backend.current ()) ];
        variant_tag;
        [ module_name;
          file;
          d.Platform.Deployment.handler_file;
          d.Platform.Deployment.handler_name;
          digest_of d.Platform.Deployment.handler_file ];
        "\x01" :: tests;
        "\x02" :: protected_list;
        "\x03" :: candidates;
        "\x04" :: scope ]
  in
  Digest.to_hex (Digest.string (String.concat "\x00" parts))

(* Digest for built-in modules: no file, no search, nothing to hash. *)
let builtin_digest = "none"

type search_kind =
  | Fresh                 (* full DD: no baseline entry, or a builtin *)
  | Replayed              (* digest unchanged: keep-set applied, zero queries *)
  | Seeded of bool        (* digest changed: warm-started (did the seed hit?) *)

(* Like [debloat_module], but consulting a previous run's manifest entry.
   Digest unchanged → replay the recorded keep-set (no oracle traffic at
   all). Digest changed → warm-start DD with the recorded keep-set as seed
   (one confirming query; full ddmin on failure). No entry → fresh search.
   Always returns the search digest so the caller can record a new
   manifest. The fresh path honors [pool]/[journal] exactly like
   [debloat_module]; replayed and seeded searches are sequential (a replay
   has nothing to parallelize, a seeded search is expected to be tiny). *)
let debloat_module_incremental ?(oracle_cache = Oracle.Cache.global) ?pool
    ?journal ~(oracle : Platform.Deployment.t -> bool)
    ~(protected : String_set.t) ~(baseline : Manifest.module_entry option)
    (d : Platform.Deployment.t) ~module_name :
  Platform.Deployment.t * module_result * search_kind * string =
  match Minipy.Importer.init_file_of d.Platform.Deployment.vfs module_name with
  | None -> (d, empty_result module_name, Fresh, builtin_digest)
  | Some file ->
    let source = Minipy.Vfs.read_exn d.Platform.Deployment.vfs file in
    let prog = Minipy.Parse_cache.parse ~file source in
    let all_attrs = Attrs.attrs_of_program prog in
    let protected_list =
      List.filter (fun a -> String_set.mem a protected) all_attrs
    in
    let candidates =
      List.filter (fun a -> not (String_set.mem a protected)) all_attrs
    in
    let digest =
      module_search_digest d ~module_name ~file ~protected_list ~candidates
    in
    (match baseline with
     | Some e when String.equal e.Manifest.me_digest digest ->
       (* unchanged reachable image: the recorded search replays exactly *)
       let removed =
         List.filter
           (fun a -> List.mem a e.Manifest.me_removed)
           all_attrs
       in
       let keep = List.filter (fun a -> not (List.mem a removed)) all_attrs in
       let d' = with_restricted d ~file ~keep in
       ( d',
         { dm_module = module_name;
           dm_file = file;
           attrs_before = List.length all_attrs;
           attrs_after = List.length keep;
           removed_attrs = removed;
           protected = protected_list;
           oracle_queries = 0;
           cache_hits = 0;
           dd_iterations = 0;
           oracle_cache_hits = 0;
           oracle_cache_misses = 0 },
         Replayed,
         digest )
     | Some e ->
       let seed_keep =
         List.filter
           (fun a -> not (List.mem a e.Manifest.me_removed))
           all_attrs
       in
       let d', r, hit =
         debloat_module_seeded ~oracle_cache ~oracle ~protected ~seed_keep d
           ~module_name
       in
       (d', r, Seeded hit, digest)
     | None ->
       let d', r =
         debloat_module ~oracle_cache ?pool ?journal ~oracle ~protected d
           ~module_name
       in
       (d', r, Fresh, digest))
