(* Persistent on-disk oracle memo.

   One append-only file (`observations.memo`) per store directory holding
   content-addressed oracle observations:

     ltrim-memo/1
     o|<seq>|<key>|<escaped canonical output>|<md5 of the payload>

   The key is {!Oracle.test_key} — an md5 over everything the canonical
   output can depend on (backend, optimizer variant, effective image digest,
   entry point, test-case inputs) — so entries are revision-safe by
   construction and one store can be shared across applications and process
   restarts: a key either means exactly one observation or is absent.

   Durability model follows {!Journal}: every record is checksummed and
   flushed before [add] returns, and a reload keeps only the valid record
   prefix — a torn or corrupt tail is dropped and the file repaired via
   write-temp-then-rename, never replayed. Unlike a DD journal the file has
   no run digest in its header: cross-revision sharing is the whole point,
   and the per-record content addressing already provides the safety a run
   digest buys a journal.

   Canonical outputs are arbitrary interpreter text (newlines and '|'
   included), so values travel escaped: '\\' -> "\\\\", '\n' -> "\\n",
   '\r' -> "\\r", '|' -> "\\p". The escaping is injective, so a checksummed
   record decodes to exactly the stored observation or not at all.

   Metrics (Obs.Metrics.global): oracle.memo_store.loaded (records replayed
   at open), oracle.memo_store.appended, oracle.memo_store.truncated
   (invalid-suffix lines dropped at open). Store *hits* are counted by the
   in-memory {!Oracle.Cache} sitting on top (oracle.memo.store_hits). *)

let magic = "ltrim-memo/1"

let file_name = "observations.memo"

let counters_lock = Mutex.create ()
let c_loaded = Obs.Metrics.counter Obs.Metrics.global "oracle.memo_store.loaded"
let c_appended =
  Obs.Metrics.counter Obs.Metrics.global "oracle.memo_store.appended"
let c_truncated =
  Obs.Metrics.counter Obs.Metrics.global "oracle.memo_store.truncated"

let count ?by c =
  Mutex.lock counters_lock;
  Obs.Metrics.incr ?by c;
  Mutex.unlock counters_lock

(* --- value escaping ------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '|' -> Buffer.add_string b "\\p"
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Inverse of [escape]; [None] on any malformed escape (a corrupt record
   must never decode to a plausible-but-wrong observation). *)
let unescape s =
  let n = String.length s in
  let b = Buffer.create n in
  let rec go i =
    if i >= n then Some (Buffer.contents b)
    else if s.[i] <> '\\' then begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
    else if i + 1 >= n then None
    else begin
      (match s.[i + 1] with
       | '\\' -> Buffer.add_char b '\\'
       | 'n' -> Buffer.add_char b '\n'
       | 'r' -> Buffer.add_char b '\r'
       | 'p' -> Buffer.add_char b '|'
       | _ -> Buffer.add_char b '\x00' (* poisoned below *));
      match s.[i + 1] with
      | '\\' | 'n' | 'r' | 'p' -> go (i + 2)
      | _ -> None
    end
  in
  go 0

(* --- the store ------------------------------------------------------------ *)

type t = {
  path : string;
  mutable oc : out_channel option;
  table : (string, string) Hashtbl.t;
  mutable next_seq : int;
  mutable loaded_records : int;
  mutable appended_records : int;
  mutable truncated_records : int;
  buf : Buffer.t;
  lock : Mutex.t;
}

let checksum payload = Digest.to_hex (Digest.string payload)

let check_key key =
  if String.exists (fun c -> c = '|' || c = '\n' || c = '\r') key then
    invalid_arg "Memo_store: keys must not contain '|' or newlines"

let parse_line line =
  match String.split_on_char '|' line with
  | [ kind; seq; key; value; sum ] when kind = "o" ->
    let payload = Printf.sprintf "%s|%s|%s|%s" kind seq key value in
    (match (int_of_string_opt seq, unescape value) with
     | Some s, Some v when String.equal (checksum payload) sum ->
       Some (s, key, v)
     | _ -> None)
  | _ -> None

let read_lines path =
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = go [] in
  close_in ic;
  lines

(* Open (or create) the store under [dir]. An existing file is always
   replayed: the valid record prefix fills the table, any invalid suffix
   (torn tail, flipped bytes, missing lines) is dropped and the file is
   repaired atomically. A foreign or torn header starts the file over. *)
let open_ ~dir =
  Journal.mkdir_p dir;
  let path = Filename.concat dir file_name in
  let t =
    { path;
      oc = None;
      table = Hashtbl.create 1024;
      next_seq = 0;
      loaded_records = 0;
      appended_records = 0;
      truncated_records = 0;
      buf = Buffer.create 256;
      lock = Mutex.create () }
  in
  let existing =
    if Sys.file_exists path then
      match read_lines path with
      | first :: rest when String.equal first magic -> Some rest
      | _ -> None
    else None
  in
  (match existing with
   | Some record_lines ->
     let rec replay kept = function
       | [] -> (List.rev kept, 0)
       | line :: rest ->
         (match parse_line line with
          | Some (seq, key, value) when seq = t.next_seq ->
            Hashtbl.replace t.table key value;
            t.next_seq <- t.next_seq + 1;
            replay (line :: kept) rest
          | _ -> (List.rev kept, 1 + List.length rest))
     in
     let kept, dropped = replay [] record_lines in
     t.loaded_records <- t.next_seq;
     t.truncated_records <- dropped;
     count ~by:t.loaded_records c_loaded;
     if dropped > 0 then begin
       count ~by:dropped c_truncated;
       Journal.write_file_atomic ~path
         (String.concat "\n" (magic :: kept) ^ "\n")
     end;
     t.oc <-
       Some (open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path)
   | None ->
     (* fresh start (or unreadable header): a torn header reads as foreign
        on the next open and the file starts over, losing nothing *)
     let oc =
       open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
         0o644 path
     in
     output_string oc magic;
     output_char oc '\n';
     flush oc;
     t.oc <- Some oc);
  t

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t key = locked t (fun () -> Hashtbl.find_opt t.table key)

let mem t key = locked t (fun () -> Hashtbl.mem t.table key)

(* Record one observation durably (flushed before returning). Idempotent:
   a key already in the store is never re-appended — the file stays
   append-only and duplicate-free even when shared across many runs. *)
let add t ~key value =
  check_key key;
  locked t (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        match t.oc with
        | None -> invalid_arg "Memo_store: already closed"
        | Some oc ->
          let buf = t.buf in
          Buffer.clear buf;
          Buffer.add_string buf "o|";
          Buffer.add_string buf (string_of_int t.next_seq);
          Buffer.add_char buf '|';
          Buffer.add_string buf key;
          Buffer.add_char buf '|';
          Buffer.add_string buf (escape value);
          let sum = checksum (Buffer.contents buf) in
          Buffer.add_char buf '|';
          Buffer.add_string buf sum;
          Buffer.add_char buf '\n';
          Buffer.output_buffer oc buf;
          flush oc;
          Hashtbl.replace t.table key value;
          t.next_seq <- t.next_seq + 1;
          t.appended_records <- t.appended_records + 1;
          count c_appended
      end)

let size t = locked t (fun () -> Hashtbl.length t.table)

let loaded t = locked t (fun () -> t.loaded_records)

let appended t = locked t (fun () -> t.appended_records)

let truncated t = locked t (fun () -> t.truncated_records)

let path t = t.path

let close t =
  locked t (fun () ->
      match t.oc with
      | Some oc ->
        flush oc;
        close_out oc;
        t.oc <- None
      | None -> ())
