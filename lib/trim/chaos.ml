(* Seeded fault injection for the *pipeline itself* (the fleet simulator got
   its own fault plans in Faults; this module aims the same idioms at the
   debloater): oracle flakiness by hash plan, a simulated crash after the
   N-th durable journal record, and journal-record corruption helpers for
   the recovery tests.

   Draws are stateless — splitmix64 over (seed, key, attempt, tag) — so a
   fault outcome never depends on evaluation order. That is what makes the
   durability experiment deterministic: the same (seed, rate) always flakes
   the same (observation key, attempt) pairs, whatever the pool schedule. *)

exception Killed of { killed_after : int }
(* simulated crash: raised after the [killed_after]-th journal record was
   already durable on disk *)

let () =
  Printexc.register_printer (function
    | Killed { killed_after } ->
      Some
        (Printf.sprintf "Trim.Chaos.Killed(after %d journal records)"
           killed_after)
    | _ -> None)

(* --- the hash (Faults' splitmix64, re-derived here: trim does not link
       against the fleet library) ------------------------------------------- *)

let splitmix64 z =
  let open Int64 in
  let z = add z 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let tag_flake = 1
let tag_poison = 2

(* Fold a string key into the stream: the observation keys the oracle draws
   on are digests, not small ints like the fleet's request ids. *)
let mix_string acc s =
  let h = ref acc in
  String.iter (fun c -> h := splitmix64 (Int64.logxor !h (Int64.of_int (Char.code c)))) s;
  !h

let hash ~seed ~key ~attempt ~tag =
  let mix acc x = splitmix64 (Int64.logxor acc (Int64.of_int x)) in
  mix (mix (mix_string (splitmix64 (Int64.of_int seed)) key) attempt) tag

(* Uniform [0, 1): keep 53 bits, as Faults does. *)
let uniform ~seed ~key ~attempt ~tag =
  Int64.to_float (Int64.shift_right_logical (hash ~seed ~key ~attempt ~tag) 11)
  *. (1.0 /. 9007199254740992.0)

type injector = key:string -> attempt:int -> string -> string

(* A flaky oracle: with probability [rate], replace the observation with a
   poison string distinct per (key, attempt) — two flakes on the same key
   never agree with each other, so a quorum can only ever be won by the
   genuine observation (or detected as divergent). *)
let flake ~seed ~rate : injector =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg (Printf.sprintf "Chaos.flake: rate must be in [0, 1] (got %g)" rate);
  fun ~key ~attempt out ->
    if rate > 0.0 && uniform ~seed ~key ~attempt ~tag:tag_flake < rate then
      Printf.sprintf "FLAKE:%Lx"
        (hash ~seed ~key ~attempt ~tag:tag_poison)
    else out

(* A genuinely changed behaviour: from [attempt >= after] on, a matching key
   deterministically produces the same *new* output on every re-execution —
   what the quarantine classifier must tell apart from flakiness. *)
let drift ~seed ~rate ~after : injector =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg (Printf.sprintf "Chaos.drift: rate must be in [0, 1] (got %g)" rate);
  fun ~key ~attempt out ->
    if
      rate > 0.0 && attempt >= after
      && uniform ~seed ~key ~attempt:0 ~tag:tag_flake < rate
    then
      (* attempt-independent: stable across re-executions *)
      Printf.sprintf "DRIFT:%Lx" (hash ~seed ~key ~attempt:0 ~tag:tag_poison)
    else out

(* --- kill-after-record-N -------------------------------------------------

   Process-wide on purpose: the CLI arms it from the environment before any
   pipeline work, and the journal (the only writer of durable records)
   reports each append from whatever thread orchestrates the DD search. The
   counter is mutex-guarded because parallel pipeline groups journal
   concurrently. *)

let kill_lock = Mutex.create ()
let kill_remaining : int option ref = ref None
let kill_recorded = ref 0

let arm_kill_after n =
  if n < 1 then invalid_arg "Chaos.arm_kill_after: n must be >= 1";
  Mutex.lock kill_lock;
  kill_remaining := Some n;
  kill_recorded := 0;
  Mutex.unlock kill_lock

let disarm () =
  Mutex.lock kill_lock;
  kill_remaining := None;
  kill_recorded := 0;
  Mutex.unlock kill_lock

let armed () =
  Mutex.lock kill_lock;
  let r = !kill_remaining in
  Mutex.unlock kill_lock;
  r

(* Called by the journal after each record is flushed. The record that
   exhausts the budget is already durable when [Killed] propagates — the
   crash model is "power loss immediately after a successful write". *)
let note_journal_append () =
  Mutex.lock kill_lock;
  let verdict =
    match !kill_remaining with
    | None -> None
    | Some n ->
      incr kill_recorded;
      if n <= 1 then begin
        kill_remaining := None;
        Some !kill_recorded
      end
      else begin
        kill_remaining := Some (n - 1);
        None
      end
  in
  Mutex.unlock kill_lock;
  match verdict with
  | Some recorded -> raise (Killed { killed_after = recorded })
  | None -> ()

(* --- journal corruption --------------------------------------------------- *)

(* Overwrite the body of the last non-empty line with 'X's (in place, same
   length): a checksum-invalid record the journal must drop on replay. *)
let corrupt_last_record path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  let last = String.length contents - 1 in
  let stop = if last >= 0 && contents.[last] = '\n' then last - 1 else last in
  if stop < 0 then false
  else begin
    let start =
      match String.rindex_from_opt contents stop '\n' with
      | Some i -> i + 1
      | None -> 0
    in
    let b = Bytes.of_string contents in
    for i = start to stop do
      Bytes.set b i 'X'
    done;
    let oc = open_out_bin path in
    output_bytes oc b;
    close_out oc;
    true
  end

(* --- environment plumbing -------------------------------------------------

   LTRIM_CHAOS_KILL_AFTER=N   arm the simulated crash after N records
   LTRIM_CHAOS_FLAKE_RATE=R   flake the hardened oracle at rate R
   LTRIM_CHAOS_SEED=S         seed for both (default 2025)

   The CLI calls [arm_from_env] before pipeline work and builds the
   hardened-oracle injector from [flake_of_env]. *)

let env_seed () =
  match Sys.getenv_opt "LTRIM_CHAOS_SEED" with
  | Some s -> (try int_of_string (String.trim s) with _ -> 2025)
  | None -> 2025

let arm_from_env () =
  match Sys.getenv_opt "LTRIM_CHAOS_KILL_AFTER" with
  | None -> ()
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> arm_kill_after n
     | _ ->
       invalid_arg
         (Printf.sprintf "LTRIM_CHAOS_KILL_AFTER: expected int >= 1, got %S" s))

let flake_of_env () =
  match Sys.getenv_opt "LTRIM_CHAOS_FLAKE_RATE" with
  | None -> None
  | Some s ->
    (match float_of_string_opt (String.trim s) with
     | Some r when r > 0.0 && r <= 1.0 ->
       Some (flake ~seed:(env_seed ()) ~rate:r)
     | Some r when r = 0.0 -> None
     | _ ->
       invalid_arg
         (Printf.sprintf "LTRIM_CHAOS_FLAKE_RATE: expected rate in [0, 1], got %S" s))
