(** Seeded fault injection aimed at the debloating pipeline itself: flaky
    oracles by hash plan, a simulated crash after the N-th durable journal
    record, and journal-corruption helpers.

    Like [Fleet.Faults], every draw is stateless — splitmix64 over
    (seed, key, attempt, tag) — so outcomes never depend on evaluation
    order or pool scheduling. *)

(** Simulated crash, raised by {!note_journal_append} once the armed budget
    is exhausted. The [killed_after]-th record is already durable on disk
    when this propagates (the crash model is power loss immediately after a
    successful write). *)
exception Killed of { killed_after : int }

(** [key]/[attempt] identify one oracle execution; the return value replaces
    its observation. *)
type injector = key:string -> attempt:int -> string -> string

(** [flake ~seed ~rate]: with probability [rate] per (key, attempt), replace
    the observation with a poison string distinct per (key, attempt) — two
    flakes never agree, so a quorum is only ever won by the genuine
    observation. @raise Invalid_argument if [rate] is outside [0, 1]. *)
val flake : seed:int -> rate:float -> injector

(** [drift ~seed ~rate ~after]: from [attempt >= after] on, a hit key
    deterministically produces the same {e new} output on every
    re-execution — a genuine behaviour change, not a flake. *)
val drift : seed:int -> rate:float -> after:int -> injector

(** Raw uniform [0, 1) draw over (seed, key, attempt, tag) — exposed for
    tests that build their own injectors. *)
val uniform : seed:int -> key:string -> attempt:int -> tag:int -> float

(** {1 Simulated kill-after-record-N}

    Process-wide: armed once (CLI or test), then the journal reports every
    durable record via {!note_journal_append}, which raises {!Killed} when
    the budget runs out. *)

(** Arm the crash: the [n]-th subsequently recorded journal append raises.
    @raise Invalid_argument if [n < 1]. *)
val arm_kill_after : int -> unit

(** Disarm and reset the counter (also called implicitly when the kill
    fires). Always disarm in a [Fun.protect] finally when arming in-process. *)
val disarm : unit -> unit

(** Remaining budget, when armed. *)
val armed : unit -> int option

(** Called by {!Journal.append} after each record is flushed.
    @raise Killed when the armed budget is exhausted. *)
val note_journal_append : unit -> unit

(** {1 Journal corruption} *)

(** Overwrite the last non-empty line of [path] with ['X']s in place —
    a checksum-invalid record replay must drop. Returns [false] when the
    file has no line to corrupt. *)
val corrupt_last_record : string -> bool

(** {1 Environment plumbing}

    [LTRIM_CHAOS_KILL_AFTER=N] arms the kill, [LTRIM_CHAOS_FLAKE_RATE=R]
    flakes the hardened oracle, [LTRIM_CHAOS_SEED=S] seeds both
    (default 2025). *)

val env_seed : unit -> int

(** Arm the kill from [LTRIM_CHAOS_KILL_AFTER], if set.
    @raise Invalid_argument on a malformed value. *)
val arm_from_env : unit -> unit

(** An injector at [LTRIM_CHAOS_FLAKE_RATE], or [None] when unset/zero.
    @raise Invalid_argument on a malformed value. *)
val flake_of_env : unit -> injector option
