(* The correctness oracle (§5.3): a candidate program passes iff, for every
   test case in the oracle specification, it produces the same observable
   output as the original program.

   Observable output = captured stdout plus the handler's return value (or
   the raised exception). Each test case runs in a fresh interpreter — the
   paper's per-process module isolation (§7) — so module caching can never
   leak state between oracle queries. Interpreter timeouts and init-time
   crashes count as failures.

   Observations are memoized by (image digest, test case): the simulated
   platform is deterministic, so two deployments with identical effective
   images and identical test cases produce identical canonical outputs. DD
   complement re-tests, seeded/continuous re-runs, and baseline comparisons
   over the same image answer from the cache instead of re-interpreting.
   Memoization returns the same observation values, so it cannot perturb any
   virtual-time or virtual-memory measurement. *)

type observation = {
  per_test : (string * string) list;  (* test-case name -> canonical output *)
}

(* --- observation memo ----------------------------------------------------- *)

module Cache = struct
  (* Hit/miss counts live in an Obs.Metrics registry (the global memo in
     Obs.Metrics.global as oracle.memo.hits/misses) so trace exports see the
     same numbers the cache-stats line prints. *)
  type t = {
    store : (string, string) Hashtbl.t;  (* per-test key -> canonical output *)
    lock : Mutex.t;
    c_hits : Obs.Metrics.counter;
    c_misses : Obs.Metrics.counter;
    mutable enabled : bool;
  }

  let make ~registry ~prefix ~enabled =
    { store = Hashtbl.create 1024;
      lock = Mutex.create ();
      c_hits = Obs.Metrics.counter registry (prefix ^ ".hits");
      c_misses = Obs.Metrics.counter registry (prefix ^ ".misses");
      enabled }

  let create ?(enabled = true) ?registry ?(prefix = "oracle.memo") () =
    let registry =
      match registry with Some r -> r | None -> Obs.Metrics.create ()
    in
    make ~registry ~prefix ~enabled

  let global =
    make ~registry:Obs.Metrics.global ~prefix:"oracle.memo" ~enabled:true

  let set_enabled t flag = t.enabled <- flag

  let enabled t = t.enabled

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let hits t = locked t (fun () -> Obs.Metrics.value t.c_hits)

  let misses t = locked t (fun () -> Obs.Metrics.value t.c_misses)

  let size t = locked t (fun () -> Hashtbl.length t.store)

  let clear t =
    locked t (fun () ->
        Hashtbl.reset t.store;
        Obs.Metrics.incr ~by:(-Obs.Metrics.value t.c_hits) t.c_hits;
        Obs.Metrics.incr ~by:(-Obs.Metrics.value t.c_misses) t.c_misses)

  let find t key =
    locked t (fun () ->
        match Hashtbl.find_opt t.store key with
        | Some out ->
          Obs.Metrics.incr t.c_hits;
          Some out
        | None ->
          Obs.Metrics.incr t.c_misses;
          None)

  let store t key out = locked t (fun () -> Hashtbl.replace t.store key out)
end

let canonical_of_record (r : Platform.Lambda_sim.record) =
  let calls =
    match r.Platform.Lambda_sim.external_calls with
    | [] -> ""
    | cs -> "CALLS:[" ^ String.concat "; " cs ^ "]"
  in
  match r.Platform.Lambda_sim.outcome with
  | Platform.Lambda_sim.Ok v ->
    Printf.sprintf "%sRET:%s%s" r.Platform.Lambda_sim.stdout
      (Minipy.Value.to_repr v) calls
  | Platform.Lambda_sim.Error e ->
    Printf.sprintf "%sERR:%s:%s%s" r.Platform.Lambda_sim.stdout
      e.Minipy.Value.exc_class e.Minipy.Value.exc_msg calls

exception
  Divergence of { div_test : string; div_treewalk : string; div_vm : string }

(* Run one test case in a fresh interpreter — the uncached path. The probe
   sim is untraced: DD issues thousands of these per module, and their
   per-invocation spans would drown the trace (the query itself is spanned
   at the DD layer, with memo traffic attached). *)
let invoke_result ~backend (d : Platform.Deployment.t)
    (tc : Platform.Deployment.test_case) :
  (Platform.Lambda_sim.record, string) result =
  let sim = Platform.Lambda_sim.create ~obs:false ~backend d in
  match
    Platform.Lambda_sim.invoke sim ~now_s:0.0
      ~event:tc.Platform.Deployment.tc_event
      ~context:tc.Platform.Deployment.tc_context ()
  with
  | r -> Ok r
  | exception Minipy.Value.Py_error e ->
    (* initialization-time failure *)
    Error (Printf.sprintf "INITERR:%s" e.Minipy.Value.exc_class)
  | exception Minipy.Interp.Timeout _ -> Error "CRASH:timeout"
  | exception Stack_overflow -> Error "CRASH:stack-overflow"

let canonical_of_result = function
  | Ok r -> canonical_of_record r
  | Error s -> s

(* Compare mode diffs the *strict* canonicalization: observable output plus
   the exact virtual-time/byte-ledger accounting, printed with %.17g so any
   float drift between engines is visible. *)
let strict_of_result = function
  | Error s -> s
  | Ok (r : Platform.Lambda_sim.record) ->
    Printf.sprintf "%s | init=%.17g exec=%.17g billed=%.17g mem=%.17g cost=%.17g"
      (canonical_of_record r) r.Platform.Lambda_sim.init_ms
      r.Platform.Lambda_sim.exec_ms r.Platform.Lambda_sim.billed_ms
      r.Platform.Lambda_sim.peak_memory_mb r.Platform.Lambda_sim.cost

let run_test_case (d : Platform.Deployment.t)
    (tc : Platform.Deployment.test_case) : string =
  match Minipy.Backend.current () with
  | Minipy.Backend.Compare ->
    let tw = invoke_result ~backend:Minipy.Backend.Treewalk d tc in
    let vm = invoke_result ~backend:Minipy.Backend.Vm d tc in
    let tws = strict_of_result tw and vms = strict_of_result vm in
    if not (String.equal tws vms) then
      raise
        (Divergence
           { div_test = tc.Platform.Deployment.tc_name;
             div_treewalk = tws;
             div_vm = vms });
    canonical_of_result tw
  | backend -> canonical_of_result (invoke_result ~backend d tc)

(* Memo key: everything the canonical output can depend on — the effective
   image, the entry point, and the test case's inputs. The active backend is
   included too: observations are backend-invariant by contract, but letting
   engines share memo entries would mask exactly the divergences the compare
   mode exists to catch. *)
let test_key ~image_digest (d : Platform.Deployment.t)
    (tc : Platform.Deployment.test_case) =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ Minipy.Backend.to_string (Minipy.Backend.current ());
            image_digest;
            d.Platform.Deployment.handler_file;
            d.Platform.Deployment.handler_name;
            tc.Platform.Deployment.tc_name;
            tc.Platform.Deployment.tc_event;
            tc.Platform.Deployment.tc_context ]))

(* Observe one deployment across its test cases. Any non-Python-level crash
   (timeout, stack overflow) yields a distinguished CRASH observation. *)
let observe ?(cache = Cache.global) (d : Platform.Deployment.t) : observation =
  if not (Cache.enabled cache) then
    { per_test =
        List.map
          (fun (tc : Platform.Deployment.test_case) ->
             (tc.Platform.Deployment.tc_name, run_test_case d tc))
          d.Platform.Deployment.test_cases }
  else begin
    let image_digest = Platform.Deployment.image_digest d in
    let per_test =
      List.map
        (fun (tc : Platform.Deployment.test_case) ->
           let key = test_key ~image_digest d tc in
           let out =
             match Cache.find cache key with
             | Some out -> out
             | None ->
               let out = run_test_case d tc in
               Cache.store cache key out;
               out
           in
           (tc.Platform.Deployment.tc_name, out))
        d.Platform.Deployment.test_cases
    in
    { per_test }
  end

let equivalent (a : observation) (b : observation) =
  List.length a.per_test = List.length b.per_test
  && List.for_all2
       (fun (n1, o1) (n2, o2) -> String.equal n1 n2 && String.equal o1 o2)
       a.per_test b.per_test

(* Build the oracle predicate for DD: candidate deployments pass iff they
   reproduce the reference observation. The reference runs once (or is
   answered by the memo when an identical image was already observed). *)
let for_reference ?(cache = Cache.global) (reference : Platform.Deployment.t) :
  (Platform.Deployment.t -> bool) * observation =
  let expected = observe ~cache reference in
  ((fun candidate -> equivalent (observe ~cache candidate) expected), expected)
