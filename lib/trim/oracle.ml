(* The correctness oracle (§5.3): a candidate program passes iff, for every
   test case in the oracle specification, it produces the same observable
   output as the original program.

   Observable output = captured stdout plus the handler's return value (or
   the raised exception). Each test case runs in a fresh interpreter — the
   paper's per-process module isolation (§7) — so module caching can never
   leak state between oracle queries. Interpreter timeouts and init-time
   crashes count as failures.

   Observations are memoized by (image digest, test case): the simulated
   platform is deterministic, so two deployments with identical effective
   images and identical test cases produce identical canonical outputs. DD
   complement re-tests, seeded/continuous re-runs, and baseline comparisons
   over the same image answer from the cache instead of re-interpreting.
   Memoization returns the same observation values, so it cannot perturb any
   virtual-time or virtual-memory measurement. *)

type observation = {
  per_test : (string * string) list;  (* test-case name -> canonical output *)
}

(* --- observation memo ----------------------------------------------------- *)

module Cache = struct
  (* Hit/miss counts live in an Obs.Metrics registry (the global memo in
     Obs.Metrics.global as oracle.memo.hits/misses) so trace exports see the
     same numbers the cache-stats line prints.

     Two optional extensions, both off by default so historical behavior is
     byte-identical:

     - [backing]: a persistent Memo_store underneath the table. Misses
       consult the store and promote hits into memory (counted as a hit
       plus <prefix>.store_hits); fresh observations write through
       durably. Keys are content-addressed, so store answers are exactly
       what a fresh execution would produce.

     - [capacity]: a bound on the in-memory table for long multi-app runs.
       Insertion-order (FIFO) eviction via [order]; evictions count in
       <prefix>.evicted. An evicted key backed by a store is re-promoted
       on its next miss, so with a store attached the bound trades memory
       for re-reads, never for re-executions. *)
  type t = {
    store : (string, string) Hashtbl.t;  (* per-test key -> canonical output *)
    order : string Queue.t;              (* in-memory insertion order *)
    lock : Mutex.t;
    c_hits : Obs.Metrics.counter;
    c_misses : Obs.Metrics.counter;
    c_store_hits : Obs.Metrics.counter;
    c_evicted : Obs.Metrics.counter;
    mutable enabled : bool;
    mutable capacity : int option;
    mutable backing : Memo_store.t option;
  }

  let make ~registry ~prefix ~enabled =
    { store = Hashtbl.create 1024;
      order = Queue.create ();
      lock = Mutex.create ();
      c_hits = Obs.Metrics.counter registry (prefix ^ ".hits");
      c_misses = Obs.Metrics.counter registry (prefix ^ ".misses");
      c_store_hits = Obs.Metrics.counter registry (prefix ^ ".store_hits");
      c_evicted = Obs.Metrics.counter registry (prefix ^ ".evicted");
      enabled;
      capacity = None;
      backing = None }

  let create ?(enabled = true) ?registry ?(prefix = "oracle.memo") () =
    let registry =
      match registry with Some r -> r | None -> Obs.Metrics.create ()
    in
    make ~registry ~prefix ~enabled

  let global =
    make ~registry:Obs.Metrics.global ~prefix:"oracle.memo" ~enabled:true

  let set_enabled t flag = t.enabled <- flag

  let enabled t = t.enabled

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let hits t = locked t (fun () -> Obs.Metrics.value t.c_hits)

  let misses t = locked t (fun () -> Obs.Metrics.value t.c_misses)

  let store_hits t = locked t (fun () -> Obs.Metrics.value t.c_store_hits)

  let evicted t = locked t (fun () -> Obs.Metrics.value t.c_evicted)

  let size t = locked t (fun () -> Hashtbl.length t.store)

  let set_capacity t cap =
    (match cap with
     | Some n when n < 1 -> invalid_arg "Oracle.Cache.set_capacity: cap < 1"
     | _ -> ());
    locked t (fun () -> t.capacity <- cap)

  let capacity t = locked t (fun () -> t.capacity)

  let attach_store t backing = locked t (fun () -> t.backing <- backing)

  let backing t = locked t (fun () -> t.backing)

  let clear t =
    locked t (fun () ->
        Hashtbl.reset t.store;
        Queue.clear t.order;
        List.iter
          (fun c -> Obs.Metrics.incr ~by:(-Obs.Metrics.value c) c)
          [ t.c_hits; t.c_misses; t.c_store_hits; t.c_evicted ])

  (* Insert under the lock, enforcing the capacity bound. The order queue
     only ever holds keys present in the table (eviction is the only
     removal apart from [clear]), so popping is always productive. *)
  let insert_locked t key out =
    if Hashtbl.mem t.store key then Hashtbl.replace t.store key out
    else begin
      (match t.capacity with
       | Some cap ->
         while Hashtbl.length t.store >= cap && not (Queue.is_empty t.order) do
           let victim = Queue.pop t.order in
           Hashtbl.remove t.store victim;
           Obs.Metrics.incr t.c_evicted
         done
       | None -> ());
      Hashtbl.replace t.store key out;
      Queue.push key t.order
    end

  let find t key =
    locked t (fun () ->
        match Hashtbl.find_opt t.store key with
        | Some out ->
          Obs.Metrics.incr t.c_hits;
          Some out
        | None ->
          let promoted =
            match t.backing with
            | None -> None
            | Some ms ->
              (match Memo_store.find ms key with
               | Some out ->
                 Obs.Metrics.incr t.c_hits;
                 Obs.Metrics.incr t.c_store_hits;
                 insert_locked t key out;
                 Some out
               | None -> None)
          in
          (match promoted with
           | Some _ -> promoted
           | None ->
             Obs.Metrics.incr t.c_misses;
             None))

  let store t key out =
    locked t (fun () ->
        insert_locked t key out;
        match t.backing with
        | Some ms -> Memo_store.add ms ~key out
        | None -> ())
end

let canonical_of_record (r : Platform.Lambda_sim.record) =
  let calls =
    match r.Platform.Lambda_sim.external_calls with
    | [] -> ""
    | cs -> "CALLS:[" ^ String.concat "; " cs ^ "]"
  in
  match r.Platform.Lambda_sim.outcome with
  | Platform.Lambda_sim.Ok v ->
    Printf.sprintf "%sRET:%s%s" r.Platform.Lambda_sim.stdout
      (Minipy.Value.to_repr v) calls
  | Platform.Lambda_sim.Error e ->
    Printf.sprintf "%sERR:%s:%s%s" r.Platform.Lambda_sim.stdout
      e.Minipy.Value.exc_class e.Minipy.Value.exc_msg calls

exception
  Divergence of { div_test : string; div_treewalk : string; div_vm : string }

(* Run one test case in a fresh interpreter — the uncached path. The probe
   sim is untraced: DD issues thousands of these per module, and their
   per-invocation spans would drown the trace (the query itself is spanned
   at the DD layer, with memo traffic attached). *)
let invoke_result ~backend ?params (d : Platform.Deployment.t)
    (tc : Platform.Deployment.test_case) :
  (Platform.Lambda_sim.record, string) result =
  let sim = Platform.Lambda_sim.create ?params ~obs:false ~backend d in
  match
    Platform.Lambda_sim.invoke sim ~now_s:0.0
      ~event:tc.Platform.Deployment.tc_event
      ~context:tc.Platform.Deployment.tc_context ()
  with
  | r -> Ok r
  | exception Minipy.Value.Py_error e ->
    (* initialization-time failure *)
    Error (Printf.sprintf "INITERR:%s" e.Minipy.Value.exc_class)
  | exception Minipy.Interp.Timeout _ -> Error "CRASH:timeout"
  | exception Stack_overflow -> Error "CRASH:stack-overflow"

let canonical_of_result = function
  | Ok r -> canonical_of_record r
  | Error s -> s

(* Compare mode diffs the *strict* canonicalization: observable output plus
   the exact virtual-time/byte-ledger accounting, printed with %.17g so any
   float drift between engines is visible. *)
let strict_of_result = function
  | Error s -> s
  | Ok (r : Platform.Lambda_sim.record) ->
    Printf.sprintf "%s | init=%.17g exec=%.17g billed=%.17g mem=%.17g cost=%.17g"
      (canonical_of_record r) r.Platform.Lambda_sim.init_ms
      r.Platform.Lambda_sim.exec_ms r.Platform.Lambda_sim.billed_ms
      r.Platform.Lambda_sim.peak_memory_mb r.Platform.Lambda_sim.cost

let run_test_case ?params (d : Platform.Deployment.t)
    (tc : Platform.Deployment.test_case) : string =
  match Minipy.Backend.current () with
  | Minipy.Backend.Compare ->
    let tw = invoke_result ~backend:Minipy.Backend.Treewalk ?params d tc in
    let vm = invoke_result ~backend:Minipy.Backend.Vm ?params d tc in
    let tws = strict_of_result tw and vms = strict_of_result vm in
    if not (String.equal tws vms) then
      raise
        (Divergence
           { div_test = tc.Platform.Deployment.tc_name;
             div_treewalk = tws;
             div_vm = vms });
    canonical_of_result tw
  | backend -> canonical_of_result (invoke_result ~backend ?params d tc)

(* Memo key: everything the canonical output can depend on — the effective
   image, the entry point, and the test case's inputs. The active backend is
   included too: observations are backend-invariant by contract, but letting
   engines share memo entries would mask exactly the divergences the compare
   mode exists to catch. Of custom simulator params only [max_steps] can
   change a canonical output (it decides [CRASH:timeout]); runs with a
   custom budget key separately, default-param runs keep the historical
   key. *)
let test_key ?params ~image_digest (d : Platform.Deployment.t)
    (tc : Platform.Deployment.test_case) =
  (* optimizer variant / stub configuration: a lazy image must never share
     verdicts with its eager twin, even if digests collide. Eager images
     keep the historical key (like default-param runs below). *)
  let lazy_cfg =
    Minipy.Interp.lazy_config_of_vfs d.Platform.Deployment.vfs
  in
  let variant_tag =
    if String.equal lazy_cfg "eager" then [] else [ lazy_cfg ]
  in
  let base =
    variant_tag
    @ [ Minipy.Backend.to_string (Minipy.Backend.current ());
      image_digest;
      d.Platform.Deployment.handler_file;
      d.Platform.Deployment.handler_name;
      tc.Platform.Deployment.tc_name;
      tc.Platform.Deployment.tc_event;
      tc.Platform.Deployment.tc_context ]
  in
  let parts =
    match params with
    | None -> base
    | Some (p : Platform.Lambda_sim.params) ->
      base @ [ Printf.sprintf "max_steps=%d" p.Platform.Lambda_sim.max_steps ]
  in
  Digest.to_hex (Digest.string (String.concat "\x00" parts))

(* Observe one deployment across its test cases. Any non-Python-level crash
   (timeout, stack overflow) yields a distinguished CRASH observation. *)
let observe ?(cache = Cache.global) ?params (d : Platform.Deployment.t) :
  observation =
  if not (Cache.enabled cache) then
    { per_test =
        List.map
          (fun (tc : Platform.Deployment.test_case) ->
             (tc.Platform.Deployment.tc_name, run_test_case ?params d tc))
          d.Platform.Deployment.test_cases }
  else begin
    let image_digest = Platform.Deployment.image_digest d in
    let per_test =
      List.map
        (fun (tc : Platform.Deployment.test_case) ->
           let key = test_key ?params ~image_digest d tc in
           let out =
             match Cache.find cache key with
             | Some out -> out
             | None ->
               let out = run_test_case ?params d tc in
               Cache.store cache key out;
               out
           in
           (tc.Platform.Deployment.tc_name, out))
        d.Platform.Deployment.test_cases
    in
    { per_test }
  end

let equivalent (a : observation) (b : observation) =
  List.length a.per_test = List.length b.per_test
  && List.for_all2
       (fun (n1, o1) (n2, o2) -> String.equal n1 n2 && String.equal o1 o2)
       a.per_test b.per_test

(* Build the oracle predicate for DD: candidate deployments pass iff they
   reproduce the reference observation. The reference runs once (or is
   answered by the memo when an identical image was already observed). *)
let for_reference ?(cache = Cache.global) ?params
    (reference : Platform.Deployment.t) :
  (Platform.Deployment.t -> bool) * observation =
  let expected = observe ~cache ?params reference in
  ( (fun candidate -> equivalent (observe ~cache ?params candidate) expected),
    expected )

(* --- hardened oracle (quorum + quarantine + watchdog) ---------------------

   The plain oracle trusts every execution; one flaky observation silently
   poisons the memo and with it the keep-set. The hardened wrapper defends
   the memo at both boundaries:

   - store time: a fresh key is executed twice; on agreement the value is
     stored, on disagreement a k-of-n quorum (n = 2·retries + 1 total
     attempts, extended while no absolute majority emerges) decides, and
     the test is quarantined as flaky. Flaky injections produce distinct
     outputs per attempt, so the genuine observation is the only value that
     can accumulate votes.

   - hit time: the first memo hit per key re-executes once and compares
     against the memoized baseline. Disagreement escalates to a quorum
     whose shape classifies the divergence — re-executions unanimous
     against the baseline mean the behaviour genuinely changed
     (Behavior_changed); anything unstable is Flaky. Either way the
     memoized baseline stays authoritative, keeping the search
     deterministic; the report tells the operator what to re-baseline.

   A test already in quarantine skips the cheap dual-attempt and goes
   straight to a full quorum on every fresh key.

   The wall-clock watchdog bounds one *execution* (the virtual-step budget
   [Interp.Timeout] remains the primary in-interpreter limit): an attempt
   over budget observes as CRASH:watchdog-timeout, so a hung-host query
   degrades into an ordinary failing observation instead of wedging DD.

   Metrics (Obs.Metrics.global): oracle.quorum.retries counts
   disagreement-triggered re-executions (beyond the routine confirmation /
   verification probes — zero on a deterministic suite),
   oracle.quorum.quarantined counts quarantined tests,
   oracle.watchdog.trips counts over-budget executions. *)

module Hardened = struct
  type classification = Flaky | Behavior_changed

  let classification_name = function
    | Flaky -> "flaky"
    | Behavior_changed -> "behavior-changed"

  type quarantine_entry = {
    q_test : string;
    q_class : classification;
    q_events : int;          (* divergent quorums observed for this test *)
    q_executions : int;      (* executions those quorums consumed *)
    q_outputs : string list; (* distinct outputs seen, first-seen order *)
  }

  type config = {
    retries : int;             (* k: quorum is 2k + 1 total attempts *)
    verify_hits : bool;        (* re-execute first memo hit per key *)
    watchdog_ms : float option;
    clock : unit -> float;     (* wall-clock source, injectable for tests *)
    inject : Chaos.injector option;  (* fault injection (tests, chaos runs) *)
  }

  let default_config =
    { retries = 1;
      verify_hits = true;
      watchdog_ms = None;
      clock = Obs.Span.wall_ms;
      inject = None }

  type entry = {
    mutable e_class : classification;
    mutable e_events : int;
    mutable e_executions : int;
    mutable e_outputs : string list;  (* reversed first-seen order *)
  }

  type t = {
    h_cache : Cache.t;
    cfg : config;
    attempts : (string, int) Hashtbl.t;    (* key -> next attempt index *)
    verified : (string, unit) Hashtbl.t;   (* keys whose memo hit re-checked *)
    quarantine : (string, entry) Hashtbl.t;  (* by test-case name *)
    h_lock : Mutex.t;
    c_retries : Obs.Metrics.counter;
    c_quarantined : Obs.Metrics.counter;
    c_watchdog : Obs.Metrics.counter;
  }

  let create ?(cache = Cache.global) cfg =
    if cfg.retries < 0 then invalid_arg "Oracle.Hardened: retries < 0";
    { h_cache = cache;
      cfg;
      attempts = Hashtbl.create 256;
      verified = Hashtbl.create 256;
      quarantine = Hashtbl.create 16;
      h_lock = Mutex.create ();
      c_retries = Obs.Metrics.counter Obs.Metrics.global "oracle.quorum.retries";
      c_quarantined =
        Obs.Metrics.counter Obs.Metrics.global "oracle.quorum.quarantined";
      c_watchdog =
        Obs.Metrics.counter Obs.Metrics.global "oracle.watchdog.trips" }

  let locked t f =
    Mutex.lock t.h_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.h_lock) f

  let full t = (2 * t.cfg.retries) + 1

  (* One oracle execution: attempt indices per key are monotonic so the
     (seeded, stateless) injector sees a deterministic stream. *)
  let exec_once t ?params d tc ~key =
    let attempt =
      locked t (fun () ->
          let a =
            match Hashtbl.find_opt t.attempts key with Some a -> a | None -> 0
          in
          Hashtbl.replace t.attempts key (a + 1);
          a)
    in
    let t0 = t.cfg.clock () in
    let out = run_test_case ?params d tc in
    let elapsed = t.cfg.clock () -. t0 in
    match t.cfg.watchdog_ms with
    | Some budget when elapsed > budget ->
      locked t (fun () -> Obs.Metrics.incr t.c_watchdog);
      "CRASH:watchdog-timeout"
    | _ ->
      (match t.cfg.inject with
       | Some f -> f ~key ~attempt out
       | None -> out)

  (* Modal value with first-seen tie-break. *)
  let majority outs =
    let tbl = Hashtbl.create 8 in
    List.iteri
      (fun i o ->
         match Hashtbl.find_opt tbl o with
         | Some (c, first) -> Hashtbl.replace tbl o (c + 1, first)
         | None -> Hashtbl.add tbl o (1, i))
      outs;
    let best =
      Hashtbl.fold
        (fun o (c, first) best ->
           match best with
           | Some (_, bc, bfirst) when bc > c || (bc = c && bfirst < first) ->
             best
           | _ -> Some (o, c, first))
        tbl None
    in
    match best with
    | Some (o, c, _) -> (o, c)
    | None -> invalid_arg "Hardened.majority: empty"

  (* Extend the quorum until an absolute majority emerges (or a hard cap —
     all-distinct votes mean near-total corruption; first-seen then wins). *)
  let rec settle t exec atts =
    let value, count = majority atts in
    let n = List.length atts in
    if 2 * count > n || n >= full t + (2 * t.cfg.retries) then (value, atts)
    else settle t exec (atts @ [ exec (); exec () ])

  let all_equal = function
    | [] -> true
    | x :: rest -> List.for_all (String.equal x) rest

  let distinct outs =
    List.rev
      (List.fold_left
         (fun acc o -> if List.exists (String.equal o) acc then acc else o :: acc)
         [] outs)

  let note_quarantine t ~test ~cls ~outputs ~executions =
    locked t (fun () ->
        let outs = distinct outputs in
        match Hashtbl.find_opt t.quarantine test with
        | Some e ->
          e.e_events <- e.e_events + 1;
          e.e_executions <- e.e_executions + executions;
          if cls = Behavior_changed then e.e_class <- Behavior_changed;
          List.iter
            (fun o ->
               if not (List.exists (String.equal o) e.e_outputs) then
                 e.e_outputs <- o :: e.e_outputs)
            outs
        | None ->
          Obs.Metrics.incr t.c_quarantined;
          Hashtbl.add t.quarantine test
            { e_class = cls;
              e_events = 1;
              e_executions = executions;
              e_outputs = List.rev outs })

  let is_quarantined t test =
    locked t (fun () -> Hashtbl.mem t.quarantine test)

  let retried t ~by = locked t (fun () -> Obs.Metrics.incr ~by t.c_retries)

  (* One hardened query: returns the canonical output to memoize/compare. *)
  let query t ?params d tc ~key =
    let test = tc.Platform.Deployment.tc_name in
    let exec () = exec_once t ?params d tc ~key in
    match Cache.find t.h_cache key with
    | Some memo ->
      let should_verify =
        t.cfg.verify_hits && t.cfg.retries > 0
        && locked t (fun () ->
               if Hashtbl.mem t.verified key then false
               else begin
                 Hashtbl.replace t.verified key ();
                 true
               end)
      in
      if not should_verify then memo
      else begin
        let v0 = exec () in
        if String.equal v0 memo then memo
        else begin
          (* the baseline is contested: quorum to classify, baseline kept *)
          let n = full t - 1 in
          retried t ~by:n;
          let rest = List.init n (fun _ -> exec ()) in
          let cls =
            if rest <> [] && all_equal rest then begin
              let r = List.hd rest in
              if String.equal r memo then Flaky (* v0 itself was the flake *)
              else if String.equal r v0 then Behavior_changed
              else Flaky
            end
            else Flaky
          in
          note_quarantine t ~test ~cls
            ~outputs:(memo :: v0 :: rest)
            ~executions:(n + 1);
          memo
        end
      end
    | None ->
      let out =
        if t.cfg.retries = 0 then exec ()
        else if is_quarantined t test then begin
          (* no trust left: full quorum up front *)
          let atts = List.init (full t) (fun _ -> exec ()) in
          let value, atts = settle t exec atts in
          retried t ~by:(List.length atts - 1);
          if not (all_equal atts) then
            note_quarantine t ~test ~cls:Flaky ~outputs:atts
              ~executions:(List.length atts);
          value
        end
        else begin
          let a0 = exec () in
          let a1 = exec () in
          if String.equal a0 a1 then a0
          else begin
            let more = List.init (full t - 2) (fun _ -> exec ()) in
            let value, atts = settle t exec (a0 :: a1 :: more) in
            retried t ~by:(List.length atts - 2);
            note_quarantine t ~test ~cls:Flaky ~outputs:atts
              ~executions:(List.length atts);
            value
          end
        end
      in
      Cache.store t.h_cache key out;
      out

  let observe t ?params (d : Platform.Deployment.t) : observation =
    let image_digest = Platform.Deployment.image_digest d in
    { per_test =
        List.map
          (fun (tc : Platform.Deployment.test_case) ->
             let key = test_key ?params ~image_digest d tc in
             (tc.Platform.Deployment.tc_name, query t ?params d tc ~key))
          d.Platform.Deployment.test_cases }

  let for_reference t ?params (reference : Platform.Deployment.t) :
    (Platform.Deployment.t -> bool) * observation =
    let expected = observe t ?params reference in
    ( (fun candidate -> equivalent (observe t ?params candidate) expected),
      expected )

  let quarantined t = locked t (fun () -> Hashtbl.length t.quarantine)

  let report t : quarantine_entry list =
    let entries =
      locked t (fun () ->
          Hashtbl.fold
            (fun test e acc ->
               { q_test = test;
                 q_class = e.e_class;
                 q_events = e.e_events;
                 q_executions = e.e_executions;
                 q_outputs = List.rev e.e_outputs }
               :: acc)
            t.quarantine [])
    in
    List.sort (fun a b -> compare a.q_test b.q_test) entries

  (* Divergence-classification report. Outputs are arbitrary interpreter
     text, so the CSV carries their count, not their bytes; the typed
     [report] keeps the strings. *)
  let report_csv t =
    let buf = Buffer.create 256 in
    Buffer.add_string buf "test,class,events,executions,distinct_outputs\n";
    List.iter
      (fun q ->
         Buffer.add_string buf
           (Printf.sprintf "%s,%s,%d,%d,%d\n" q.q_test
              (classification_name q.q_class)
              q.q_events q.q_executions
              (List.length q.q_outputs)))
      (report t);
    Buffer.contents buf
end
