(* The end-to-end λ-trim pipeline (Figure 3):

     input app ──> static analyzer ──> profiler ──> debloater ──> output app

   The optimized deployment is directly runnable on the platform simulator
   and carries no dependency on the pipeline.

   Every run records the caching substrate's traffic: parse-cache hits
   (sources answered without re-parsing) and oracle-memo hits (DD queries
   answered without re-interpreting). Both caches are read-through — they
   change host wall-clock only, never a virtual measurement. *)

type options = {
  k : int;                        (* modules to debloat (§8.4: default 20) *)
  scoring : Scoring.method_;
  log : bool;
  (* durability & oracle hardening (all off by default — the defaults keep
     every committed CSV byte-identical to the unhardened pipeline) *)
  journal_dir : string option;    (* record DD verdicts under this dir *)
  resume : bool;                  (* replay compatible journals first *)
  oracle_retries : int;           (* k of the 2k+1 quorum; 0 = unhardened *)
  oracle_inject : Chaos.injector option;  (* fault injection (chaos runs) *)
  oracle_cache : Oracle.Cache.t option;   (* private memo; default global *)
  quarantine_report : string option;      (* write divergence CSV here *)
  (* incremental re-debloating (both off by default — with no baseline and
     no manifest to write, stage 3 runs the exact historical code path) *)
  baseline : Manifest.t option;           (* previous run's manifest *)
  manifest_path : string option;          (* write this run's manifest here *)
}

let default_options =
  { k = 20;
    scoring = Scoring.Combined;
    log = false;
    journal_dir = None;
    resume = false;
    oracle_retries = 0;
    oracle_inject = None;
    oracle_cache = None;
    quarantine_report = None;
    baseline = None;
    manifest_path = None }

type cache_stats = {
  parse_hits : int;
  parse_misses : int;
  oracle_hits : int;
  oracle_misses : int;
}

type report = {
  app_name : string;
  original : Platform.Deployment.t;
  optimized : Platform.Deployment.t;
  analysis : Static_analyzer.t;
  profile : Profiler.result;
  ranked : string list;               (* top-K module names, best first *)
  module_results : Debloater.module_result list;
  debloat_wall_s : float;             (* host wall-clock spent debloating *)
  total_oracle_queries : int;
  caches : cache_stats;               (* cache traffic during this run *)
  quarantined_tests : int;            (* hardened oracle's quarantine size *)
  (* incremental accounting (empty/zero on non-incremental runs) *)
  manifest : Manifest.t option;       (* this run's manifest, when requested *)
  replayed_modules : string list;     (* digest-unchanged, zero queries *)
  warm_seeded : int;                  (* modules warm-started from baseline *)
  warm_seed_hits : int;               (* warm starts whose seed passed *)
}

let src = Logs.Src.create "lambda-trim" ~doc:"lambda-trim pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

let pp_cache_stats ppf c =
  Fmt.pf ppf "parse cache %d hits / %d misses, oracle memo %d hits / %d misses"
    c.parse_hits c.parse_misses c.oracle_hits c.oracle_misses

(* Snapshot the global caches around [f] so the report shows this run's own
   traffic even when the caches are shared across runs. *)
let with_cache_stats f =
  let pc = Minipy.Parse_cache.global and oc = Oracle.Cache.global in
  let ph0 = Minipy.Parse_cache.hits pc
  and pm0 = Minipy.Parse_cache.misses pc
  and oh0 = Oracle.Cache.hits oc
  and om0 = Oracle.Cache.misses oc in
  let result = f () in
  ( result,
    { parse_hits = Minipy.Parse_cache.hits pc - ph0;
      parse_misses = Minipy.Parse_cache.misses pc - pm0;
      oracle_hits = Oracle.Cache.hits oc - oh0;
      oracle_misses = Oracle.Cache.misses oc - om0 } )

(* Pipeline stages have no virtual timeline, so their spans live on the
   host wall clock (Obs.Span.wall_ms — the process-epoch-relative clock
   every wall-clock span must share). The stages are sequential, so every
   wall-clock span in a process (pipeline phases, per-module DD, oracle
   queries) shares one lane and nests by construction. *)
let wall_ms = Obs.Span.wall_ms

let obs_track = 1

let obs_phase name f =
  Obs.Span.with_span (Obs.Span.installed ()) ~domain:Obs.Span.domain_wall
    ~track:obs_track ~cat:"pipeline" ~name ~clock:wall_ms f

(* Journal spec for this run: explicit options win, else the process-wide
   configuration the CLI installs (how `ltrim experiments --journal` reaches
   runs whose pipeline options the registry builds internally). One
   subdirectory per (app, scoring, k) keeps concurrent runs and re-runs
   with different settings from replaying each other's journals. *)
let journal_spec options (app : Platform.Deployment.t) =
  let dir, resume =
    match (options.journal_dir, Journal.configured ()) with
    | Some d, _ -> (Some d, options.resume)
    | None, Some c ->
      (Some c.Journal.journal_dir, c.Journal.journal_resume || options.resume)
    | None, None -> (None, false)
  in
  match dir with
  | None -> None
  | Some dir ->
    let sub =
      Printf.sprintf "%s-%s-k%d" app.Platform.Deployment.name
        (Scoring.method_name options.scoring)
        options.k
    in
    let jdir = Filename.concat dir sub in
    Journal.mkdir_p jdir;
    Some { Journal.journal_dir = jdir; journal_resume = resume }

(* The DD oracle for this run — hardened (quorum + quarantine) when
   [oracle_retries > 0], plain otherwise. A chaos flake rate from the
   environment reaches only the hardened path: injecting faults into an
   oracle with no defence would just corrupt results silently. *)
let make_oracle options (app : Platform.Deployment.t) =
  let cache =
    match options.oracle_cache with
    | Some c -> c
    | None -> Oracle.Cache.global
  in
  if options.oracle_retries > 0 then begin
    let inject =
      match options.oracle_inject with
      | Some _ as i -> i
      | None -> Chaos.flake_of_env ()
    in
    let h =
      Oracle.Hardened.create ~cache
        { Oracle.Hardened.default_config with
          retries = options.oracle_retries;
          inject }
    in
    let oracle, _expected = Oracle.Hardened.for_reference h app in
    (oracle, Some h)
  end
  else begin
    let oracle, _expected = Oracle.for_reference ~cache app in
    (oracle, None)
  end

(* Stage 3 of [run], parallel mode.

   Modules of one library are NOT independent — debloating a parent package
   can drop the import that was the only reason a child's attribute had to
   survive, so the child's search must see the parent's trim exactly as the
   sequential fold provides it. Distinct top-level libraries ARE
   independent: no generated workload library imports another, and the
   oracle's observable output separates per library, so one library's trim
   never changes another's verdicts.

   Hence: group the ranked modules by top-level package, keep the
   sequential fold inside each group (in rank order), and debloat the
   groups concurrently against the *input* app. Every per-module search
   then answers its oracle queries exactly as in the sequential run —
   keep-sets, query counts and cache hits included — and folding the
   results back over the app in global ranking order rebuilds the
   sequential deployment file for file (each search rewrites only its own
   module's __init__). That is the bit-identical-CSV guarantee. Each group
   task additionally fans its DD oracle batches out on the same pool
   (nested submission is safe). *)
let group_by_root ranked : (string * string list) list =
  let root m =
    match String.index_opt m '.' with Some i -> String.sub m 0 i | None -> m
  in
  List.fold_left
    (fun acc m ->
       let r = root m in
       match List.assoc_opt r acc with
       | Some ms -> (r, m :: ms) :: List.remove_assoc r acc
       | None -> (r, [ m ]) :: acc)
    [] ranked
  |> List.rev_map (fun (r, ms) -> (r, List.rev ms))

(* Run [f] on the configured pool when its size matches [jobs], else on a
   transient pool shut down afterwards. *)
let with_group_pool ~jobs f =
  let pool, transient =
    match Parallel.Pool.configured () with
    | Some p when Parallel.Pool.size p = jobs -> (p, false)
    | _ -> (Parallel.Pool.create ~domains:jobs, true)
  in
  Fun.protect
    ~finally:(fun () -> if transient then Parallel.Pool.shutdown pool)
    (fun () -> f pool)

(* Fan per-root groups out on the pool, each group folded sequentially
   against the input [app] by [step pool d module_name]; merge the
   [Debloater.module_result]s (projected by [result_of]) back in global
   ranking order and rebuild the output deployment. *)
let debloat_grouped ~options ~jobs ~result_of ~step
    (app : Platform.Deployment.t) ranked =
  with_group_pool ~jobs (fun pool ->
      let group_results =
        Parallel.Pool.map pool
          (fun (_root, modules) ->
             let _, results =
               List.fold_left
                 (fun (d, acc) module_name ->
                    let d', r = step pool d module_name in
                    (d', r :: acc))
                 (app, []) modules
             in
             List.rev results)
          (group_by_root ranked)
      in
      (* back to global ranking order, as the sequential fold reports *)
      let by_module = Hashtbl.create 32 in
      List.iter
        (List.iter (fun r ->
             Hashtbl.replace by_module (result_of r).Debloater.dm_module r))
        group_results;
      let entries = List.map (fun m -> Hashtbl.find by_module m) ranked in
      let module_results = List.map result_of entries in
      if options.log then
        List.iter
          (fun r -> Log.info (fun m -> m "%a" Debloater.pp_module_result r))
          module_results;
      let optimized =
        List.fold_left Debloater.apply_result app module_results
      in
      (optimized, entries))

let debloat_parallel ?oracle_cache ?journal ~options ~analysis ~jobs ~oracle
    (app : Platform.Deployment.t) ranked =
  let optimized, results =
    debloat_grouped ~options ~jobs ~result_of:Fun.id
      ~step:(fun pool d module_name ->
          let protected =
            Static_analyzer.protected_attrs analysis ~module_name
          in
          Debloater.debloat_module ?oracle_cache ?journal ~pool ~oracle
            ~protected d ~module_name)
      app ranked
  in
  (optimized, results)

(* Incremental parallel mode: identical grouping, but each module first
   diffs its search digest against the baseline manifest. The digest hashes
   only the module's own library subtree plus the oracle configuration
   (see Debloater.module_search_digest), so it is the same value the
   sequential fold computes — replay/seed decisions, counters and keep-sets
   are [--jobs]-invariant. *)
let debloat_parallel_incremental ?oracle_cache ?journal ~options ~analysis
    ~jobs ~oracle ~baseline (app : Platform.Deployment.t) ranked =
  debloat_grouped ~options ~jobs
    ~result_of:(fun (r, _kind, _digest) -> r)
    ~step:(fun pool d module_name ->
        let protected =
          Static_analyzer.protected_attrs analysis ~module_name
        in
        let entry =
          Option.bind baseline (fun m -> Manifest.find_module m module_name)
        in
        let d', r, kind, digest =
          Debloater.debloat_module_incremental ?oracle_cache ?journal ~pool
            ~oracle ~protected ~baseline:entry d ~module_name
        in
        (d', (r, kind, digest)))
    app ranked

let run ?(options = default_options) ?jobs (app : Platform.Deployment.t) :
  report =
  let jobs = match jobs with Some j -> j | None -> Parallel.Pool.jobs () in
  if jobs < 1 then invalid_arg "Pipeline.run: jobs < 1";
  (* A baseline for a different app is operator error; ignore it rather
     than let [find_module] silently miss every entry. *)
  let baseline =
    match options.baseline with
    | Some m when String.equal m.Manifest.mf_app app.Platform.Deployment.name
      ->
      Some m
    | _ -> None
  in
  (* the incremental stage-3 path runs only when asked for: with neither a
     baseline nor a manifest to write, the historical code path runs
     untouched (and byte-identical) *)
  let incremental = baseline <> None || options.manifest_path <> None in
  let wall_start = Unix.gettimeofday () in
  let (analysis, profile, ranked, optimized, entries, hardened), caches
    =
    with_cache_stats (fun () ->
        obs_phase "pipeline:run" (fun () ->
        (* Stage 1: static analysis *)
        let analysis =
          obs_phase "phase:static_analysis" (fun () ->
              Static_analyzer.analyze app)
        in
        if options.log then
          Log.info (fun m ->
              m "static analysis: %d imported roots"
                (List.length analysis.Static_analyzer.imported_roots));
        (* Stage 2: profiling + top-K ranking by marginal monetary cost *)
        let profile, ranked =
          obs_phase "phase:profile" (fun () ->
              let profile = Profiler.profile app in
              let top = Scoring.top_k options.scoring profile ~k:options.k in
              (profile, List.map (fun mp -> mp.Profiler.mp_name) top))
        in
        if options.log then
          Log.info (fun m -> m "profiler ranked top-%d: %s" options.k
                       (String.concat ", " ranked));
        (* Stage 3: DD-based debloating, module by module. The oracle's
           reference observation comes from the *input* app and stays fixed;
           sequentially each module is debloated against the deployment
           produced so far, so later modules see earlier trims (the paper
           debloats the top-K sequentially). With [jobs > 1] the modules
           are searched concurrently and merged in ranking order — same
           output, see [debloat_parallel]. *)
        let optimized, entries, hardened =
          obs_phase "phase:debloat" (fun () ->
              let journal = journal_spec options app in
              let oracle, hardened = make_oracle options app in
              match (incremental, jobs > 1) with
              | false, true ->
                let optimized, module_results =
                  debloat_parallel ?oracle_cache:options.oracle_cache
                    ?journal ~options ~analysis ~jobs ~oracle app ranked
                in
                ( optimized,
                  List.map (fun r -> (r, Debloater.Fresh, "")) module_results,
                  hardened )
              | false, false ->
                let optimized, module_results =
                  List.fold_left
                    (fun (d, results) module_name ->
                       let protected =
                         Static_analyzer.protected_attrs analysis ~module_name
                       in
                       let d', r =
                         Debloater.debloat_module
                           ?oracle_cache:options.oracle_cache ?journal
                           ~oracle ~protected d ~module_name
                       in
                       if options.log then
                         Log.info
                           (fun m -> m "%a" Debloater.pp_module_result r);
                       (d', r :: results))
                    (app, []) ranked
                in
                ( optimized,
                  List.rev_map (fun r -> (r, Debloater.Fresh, "")) module_results,
                  hardened )
              | true, true ->
                let optimized, entries =
                  debloat_parallel_incremental
                    ?oracle_cache:options.oracle_cache ?journal ~options
                    ~analysis ~jobs ~oracle ~baseline app ranked
                in
                (optimized, entries, hardened)
              | true, false ->
                let optimized, entries =
                  List.fold_left
                    (fun (d, entries) module_name ->
                       let protected =
                         Static_analyzer.protected_attrs analysis ~module_name
                       in
                       let entry =
                         Option.bind baseline (fun m ->
                             Manifest.find_module m module_name)
                       in
                       let d', r, kind, digest =
                         Debloater.debloat_module_incremental
                           ?oracle_cache:options.oracle_cache ?journal ~oracle
                           ~protected ~baseline:entry d ~module_name
                       in
                       if options.log then
                         Log.info
                           (fun m -> m "%a" Debloater.pp_module_result r);
                       (d', (r, kind, digest) :: entries))
                    (app, []) ranked
                in
                (optimized, List.rev entries, hardened))
        in
        (analysis, profile, ranked, optimized, entries, hardened)))
  in
  (match options.quarantine_report with
   | Some path ->
     let contents =
       match hardened with
       | Some h -> Oracle.Hardened.report_csv h
       | None -> "test,class,events,executions,distinct_outputs\n"
     in
     Journal.write_file_atomic ~path contents
   | None -> ());
  let module_results = List.map (fun (r, _, _) -> r) entries in
  let replayed_modules =
    List.filter_map
      (fun ((r : Debloater.module_result), kind, _) ->
         match kind with
         | Debloater.Replayed -> Some r.Debloater.dm_module
         | _ -> None)
      entries
  in
  let warm_seeded, warm_seed_hits =
    List.fold_left
      (fun (s, h) (_, kind, _) ->
         match kind with
         | Debloater.Seeded hit -> (s + 1, if hit then h + 1 else h)
         | _ -> (s, h))
      (0, 0) entries
  in
  let manifest =
    if not incremental then None
    else
      Some
        { Manifest.mf_app = app.Platform.Deployment.name;
          mf_backend = Minipy.Backend.to_string (Minipy.Backend.current ());
          mf_variant =
            Minipy.Interp.lazy_config_of_vfs app.Platform.Deployment.vfs;
          mf_scoring = Scoring.method_name options.scoring;
          mf_k = options.k;
          mf_input_digest = Platform.Deployment.image_digest app;
          mf_output_digest = Platform.Deployment.image_digest optimized;
          mf_ranked = ranked;
          mf_modules =
            List.map2
              (fun m ((r : Debloater.module_result), _, digest) ->
                 { Manifest.me_module = m;
                   me_file = r.Debloater.dm_file;
                   me_digest = digest;
                   me_removed = r.Debloater.removed_attrs;
                   me_queries = r.Debloater.oracle_queries;
                   me_cache_hits = r.Debloater.cache_hits;
                   me_iterations = r.Debloater.dd_iterations })
              ranked entries }
  in
  (match (options.manifest_path, manifest) with
   | Some path, Some m -> Manifest.save ~path m
   | _ -> ());
  { app_name = app.Platform.Deployment.name;
    original = app;
    optimized;
    analysis;
    profile;
    ranked;
    module_results;
    debloat_wall_s = Unix.gettimeofday () -. wall_start;
    total_oracle_queries =
      List.fold_left (fun acc r -> acc + r.Debloater.oracle_queries) 0
        module_results;
    caches;
    quarantined_tests =
      (match hardened with
       | Some h -> Oracle.Hardened.quarantined h
       | None -> 0);
    manifest;
    replayed_modules;
    warm_seeded;
    warm_seed_hits }

(* Total attributes removed across all debloated modules. *)
let attrs_removed (r : report) =
  List.fold_left
    (fun acc m -> acc + List.length m.Debloater.removed_attrs)
    0 r.module_results

(* The module with the largest attribute count — Table 3's "example module"
   column picks a representative this way. *)
let representative_module (r : report) : Debloater.module_result option =
  List.fold_left
    (fun best m ->
       match best with
       | None -> Some m
       | Some b ->
         if m.Debloater.attrs_before > b.Debloater.attrs_before then Some m
         else best)
    None r.module_results

(* --- continuous debloating (§9) -------------------------------------------

   After a function update, re-debloating from scratch repeats almost all
   oracle queries. The continuous pipeline reuses the previous run's per-
   module keep-sets as DD seeds: when the update did not change what a module
   must provide, the seed passes its single confirmation query and DD only
   re-verifies minimality inside it. The oracle memo compounds the effect:
   any candidate image the previous run already observed is answered without
   re-interpreting. *)

type continuous_report = {
  base : report;
  seed_hits : int;          (* modules whose previous keep-set still passed *)
  seeded_modules : int;
}

let run_continuous ?(options = default_options)
    ~(previous : report) (app : Platform.Deployment.t) : continuous_report =
  let wall_start = Unix.gettimeofday () in
  let ( (analysis, profile, ranked, optimized, module_results, seed_hits,
         seeded),
        caches ) =
    with_cache_stats (fun () ->
        obs_phase "pipeline:run_continuous" (fun () ->
        let analysis =
          obs_phase "phase:static_analysis" (fun () ->
              Static_analyzer.analyze app)
        in
        let profile, ranked =
          obs_phase "phase:profile" (fun () ->
              let profile = Profiler.profile app in
              let top = Scoring.top_k options.scoring profile ~k:options.k in
              (profile, List.map (fun mp -> mp.Profiler.mp_name) top))
        in
        let oracle, _expected = Oracle.for_reference app in
        (* previous keep-set per module: everything it did NOT remove *)
        let seed_for module_name =
          match
            List.find_opt
              (fun m -> String.equal m.Debloater.dm_module module_name)
              previous.module_results
          with
          | Some m ->
            let removed = m.Debloater.removed_attrs in
            (* read the module as deployed now and drop previously-removed
               attrs *)
            (match
               Minipy.Importer.init_file_of app.Platform.Deployment.vfs
                 module_name
             with
             | None -> []
             | Some file ->
               let prog =
                 Minipy.Parse_cache.parse_vfs app.Platform.Deployment.vfs file
               in
               List.filter
                 (fun a -> not (List.mem a removed))
                 (Attrs.attrs_of_program prog))
          | None -> []
        in
        let optimized, module_results, seed_hits, seeded =
          obs_phase "phase:debloat" (fun () ->
              List.fold_left
                (fun (d, results, hits, seeded) module_name ->
                   let protected =
                     Static_analyzer.protected_attrs analysis ~module_name
                   in
                   let seed_keep = seed_for module_name in
                   if seed_keep = [] then
                     let d', r =
                       Debloater.debloat_module ~oracle ~protected d
                         ~module_name
                     in
                     (d', r :: results, hits, seeded)
                   else
                     let d', r, hit =
                       Debloater.debloat_module_seeded ~oracle ~protected
                         ~seed_keep d ~module_name
                     in
                     (d', r :: results, (if hit then hits + 1 else hits),
                      seeded + 1))
                (app, [], 0, 0) ranked)
        in
        (analysis, profile, ranked, optimized, List.rev module_results,
         seed_hits, seeded)))
  in
  { base =
      { app_name = app.Platform.Deployment.name;
        original = app;
        optimized;
        analysis;
        profile;
        ranked;
        module_results;
        debloat_wall_s = Unix.gettimeofday () -. wall_start;
        total_oracle_queries =
          List.fold_left (fun acc r -> acc + r.Debloater.oracle_queries) 0
            module_results;
        caches;
        quarantined_tests = 0;
        manifest = None;
        replayed_modules = [];
        warm_seeded = seeded;
        warm_seed_hits = seed_hits };
    seed_hits;
    seeded_modules = seeded }
