(** Durable DD decision journal: an append-only, per-record-checksummed log
    of (subset key → oracle verdict) plus a final keep-set completion mark,
    one file per module search.

    Records are flushed before control returns to DD, so after a crash the
    file holds every verdict the search consumed plus at most one torn
    record at the tail. Reopening with [resume] replays the valid prefix
    into a lookup table, drops any invalid suffix (repairing the file via
    write-temp-then-rename), and lets {!Dd.minimize} /
    {!Dd.minimize_parallel} answer queries from the table — reproducing
    the uninterrupted run's keep-set and counters bit for bit. A header
    run-digest binds the file to one search (base image, module, candidate
    list, backend, job layout); a mismatched header discards the journal
    rather than replaying stale verdicts.

    Metrics (in [Obs.Metrics.global]): [trim.journal.appended],
    [trim.journal.replayed], [trim.journal.truncated]. *)

type t

(** [open_ ~resume ~path ~run_digest ()] opens or creates the journal.
    With [resume = false] (default) — or when the existing header does not
    match [run_digest] — the file is atomically reset to a bare header. *)
val open_ : ?resume:bool -> path:string -> run_digest:string -> unit -> t

(** Replayed verdict for a subset key, if one was recorded. *)
val find : t -> string -> bool option

(** Append one verdict; the record is durable (flushed) before returning.
    The chaos harness is notified after the flush — {!Chaos.Killed} out of
    this call means the record is already on disk.
    @raise Invalid_argument if [key] contains ['|'] or a newline. *)
val append : t -> key:string -> bool -> unit

(** Append the final keep-set completion mark. Idempotent when the journal
    already carries an identical mark (the resume-of-a-finished-run case). *)
val append_keepset : t -> string -> unit

(** The completion mark, when present. *)
val final_keepset : t -> string option

(** Replay-table answers served since [open_]. *)
val replayed : t -> int

(** Invalid suffix records dropped when the file was opened. *)
val truncated : t -> int

(** Records currently in the file (replayed + appended). *)
val records : t -> int

val close : t -> unit

(** {1 Atomic file helpers} *)

val mkdir_p : string -> unit

(** Write [contents] via temp-file-plus-rename in [path]'s directory: a
    crash leaves the old file or the new one, never a torn mix. Creates
    missing parent directories. *)
val write_file_atomic : path:string -> string -> unit

(** {1 Per-search spec and process-wide configuration} *)

(** What the pipeline hands the debloater: where this run's journals live
    and whether to replay existing ones. *)
type spec = { journal_dir : string; journal_resume : bool }

(** Process-wide default spec, used by [Pipeline.run] when its options
    carry no journal directory — the CLI sets it so experiment runs
    (whose pipeline options the registry builds internally) journal too.
    [configure ~dir:None ~resume:_] clears it. *)
val configure : dir:string option -> resume:bool -> unit

val configured : unit -> spec option
