(** The end-to-end λ-trim pipeline (Figure 3):

    {v input app -> static analyzer -> profiler -> debloater -> output app v}

    The optimized deployment runs on the platform simulator directly and
    carries no dependency on the pipeline. *)

type options = {
  k : int;                   (** modules to debloat; §8.4's default is 20 *)
  scoring : Scoring.method_;
  log : bool;                (** emit progress through [Logs] *)
  journal_dir : string option;
      (** record every DD verdict in per-module journals under this
          directory (see {!Journal}); [None] falls back to the
          process-wide {!Journal.configure}d directory, if any *)
  resume : bool;
      (** replay compatible existing journals before querying the oracle —
          a killed run resumed with the same options and job layout
          reproduces the uninterrupted run bit for bit *)
  oracle_retries : int;
      (** harden the oracle with a [2k + 1] quorum and quarantine
          ({!Oracle.Hardened}); 0 (the default) keeps the plain oracle *)
  oracle_inject : Chaos.injector option;
      (** fault injection for the hardened oracle (chaos/durability runs);
          [None] falls back to [LTRIM_CHAOS_FLAKE_RATE] when hardened *)
  oracle_cache : Oracle.Cache.t option;
      (** private observation memo; [None] = the global memo. Fault-injected
          runs must use a private memo so poison never reaches other runs *)
  quarantine_report : string option;
      (** write the divergence-classification CSV here (atomically) *)
  baseline : Manifest.t option;
      (** a previous run's manifest: modules whose
          {!Debloater.module_search_digest} is unchanged replay their
          recorded keep-set with zero oracle queries, changed modules
          warm-start DD from the recorded keep-set, unknown modules run
          fresh. A manifest for a different app is ignored. Warm keep-sets
          are bit-identical to a cold run's at any [jobs] *)
  manifest_path : string option;
      (** write this run's manifest here (atomically, after the run) *)
}

val default_options : options

(** Traffic through the caching substrate during one run: parse-cache and
    oracle-memo hit/miss deltas (the caches are global; these are this run's
    own counts). Read-through caches — wall-clock only, no virtual
    measurement depends on them. *)
type cache_stats = {
  parse_hits : int;
  parse_misses : int;
  oracle_hits : int;
  oracle_misses : int;
}

type report = {
  app_name : string;
  original : Platform.Deployment.t;
  optimized : Platform.Deployment.t;
  analysis : Static_analyzer.t;
  profile : Profiler.result;
  ranked : string list;   (** top-K module names, best first *)
  module_results : Debloater.module_result list;  (** in debloating order *)
  debloat_wall_s : float; (** host wall-clock spent in the pipeline *)
  total_oracle_queries : int;
  caches : cache_stats;
  quarantined_tests : int;
      (** tests the hardened oracle quarantined; 0 when not hardened *)
  manifest : Manifest.t option;
      (** this run's manifest — present iff a [baseline] or
          [manifest_path] was given *)
  replayed_modules : string list;
      (** baseline modules whose digest was unchanged: recorded keep-set
          applied, zero oracle queries *)
  warm_seeded : int;   (** modules warm-started from a stale baseline entry *)
  warm_seed_hits : int;  (** warm starts whose seed passed confirmation *)
}

val src : Logs.src

val pp_cache_stats : Format.formatter -> cache_stats -> unit

(** Run the pipeline. [jobs] (default: the configured pool's parallelism,
    see [Parallel.Pool.configure]; 1 when none) sets the debloat stage's
    parallelism: with [jobs > 1] the ranked modules are searched
    concurrently — each search also fanning its DD oracle batches out on
    the pool — and merged back in ranking order. The optimized deployment,
    module results, and every query/cache-hit count are identical at any
    [jobs]; only wall-clock fields differ. Per-module observation-memo
    deltas ([oracle_cache_hits]/[misses]) are approximate under [jobs > 1]
    (concurrent searches share the memo); the aggregate {!cache_stats} stay
    exact.
    @raise Invalid_argument if [jobs < 1]. *)
val run : ?options:options -> ?jobs:int -> Platform.Deployment.t -> report

(** Total attributes removed across all debloated modules. *)
val attrs_removed : report -> int

(** The module with the most attributes — Table 3's representative. *)
val representative_module : report -> Debloater.module_result option

(** {1 Continuous debloating (§9)} *)

type continuous_report = {
  base : report;
  seed_hits : int;       (** modules whose previous keep-set still passed *)
  seeded_modules : int;  (** modules that had a seed available *)
}

(** Re-debloat an updated application, seeding each module's DD with the
    keep-set from [previous]. Far fewer oracle queries when little changed. *)
val run_continuous :
  ?options:options ->
  previous:report ->
  Platform.Deployment.t ->
  continuous_report
