(* Delta Debugging — Algorithm 1 of the paper (the ddmin variant of Zeller &
   Hildebrandt adapted for debloating by Heo et al.).

   Given a component list A and an oracle O over component subsets, find a
   1-minimal passing subset A-star of A:

     n ← 2
     repeat
       split A into n partitions a_1 … a_n
       if ∃i. O(a_i) = T          then (A, n) ← (a_i, 2)
       else if ∃i. O(A \ a_i) = T then (A, n) ← (A \ a_i, n − 1)
       else                            n ← 2n
     until n > |A|

   1-minimality: removing any single component from the result makes the
   oracle return F (checked by the property tests). Oracle queries are
   memoized — DD revisits subsets across granularity changes. The search
   runs over component *indices*; items are mapped back at the boundary. *)

type stats = {
  mutable oracle_queries : int;     (* distinct subsets actually tested *)
  mutable cache_hits : int;
  mutable iterations : int;         (* granularity rounds *)
  (* observation-memo traffic underneath the subset cache: queries answered
     by Oracle.Cache instead of fresh interpreters. Filled in by the
     debloater (DD itself only sees an opaque subset oracle). *)
  mutable oracle_cache_hits : int;
  mutable oracle_cache_misses : int;
}

type 'a step = {
  step_candidate : 'a list;   (* subset under test *)
  step_passed : bool;
}

(* Split [items] into [n] contiguous partitions of near-equal size. *)
let partitions items n =
  let len = List.length items in
  let arr = Array.of_list items in
  let base = len / n and extra = len mod n in
  let rec go i start acc =
    if i >= n then List.rev acc
    else
      let size = base + (if i < extra then 1 else 0) in
      let part = Array.to_list (Array.sub arr start size) in
      go (i + 1) (start + size) (part :: acc)
  in
  List.filter (fun p -> p <> []) (go 0 0 [])

let complement ~of_:all part = List.filter (fun x -> not (List.mem x part)) all

(* [minimize ~oracle items] assumes [oracle items = true] (the full program
   passes its own test cases) and returns a 1-minimal passing subset. The
   optional [on_step] observer receives every oracle query, enabling the
   Figure-6-style walkthrough in the quickstart example. *)
let minimize ?(on_step = fun (_ : 'a step) -> ()) ~oracle items =
  let stats =
    { oracle_queries = 0; cache_hits = 0; iterations = 0;
      oracle_cache_hits = 0; oracle_cache_misses = 0 }
  in
  let arr = Array.of_list items in
  let cache : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  let to_items idxs = List.map (fun i -> arr.(i)) idxs in
  let test idxs =
    let k = String.concat "," (List.map string_of_int idxs) in
    match Hashtbl.find_opt cache k with
    | Some r ->
      stats.cache_hits <- stats.cache_hits + 1;
      r
    | None ->
      stats.oracle_queries <- stats.oracle_queries + 1;
      let subset = to_items idxs in
      let r = oracle subset in
      Hashtbl.replace cache k r;
      on_step { step_candidate = subset; step_passed = r };
      r
  in
  let rec loop current n =
    stats.iterations <- stats.iterations + 1;
    let len = List.length current in
    (* unlike crash-minimisation, debloating admits an empty keep-set: a
       singleton is only 1-minimal if the empty set fails *)
    if len <= 1 then (if len = 1 && test [] then [] else current)
    else begin
      let parts = partitions current n in
      match List.find_opt test parts with
      | Some winner -> loop winner 2
      | None ->
        (* complements coincide with partitions at n = 2; skip re-testing *)
        let complements =
          if n = 2 then []
          else List.map (fun p -> complement ~of_:current p) parts
        in
        (match List.find_opt test complements with
         | Some winner -> loop winner (max 2 (n - 1))
         | None ->
           if n >= len then current
           else loop current (min (2 * n) len))
    end
  in
  let all_idxs = List.init (Array.length arr) Fun.id in
  let result = if items = [] then [] else loop all_idxs 2 in
  (to_items result, stats)

(* Check 1-minimality of [subset] under [oracle]: the subset passes and no
   single-element removal does. Exposed for tests and EXPERIMENTS.md.

   Removal is positional: filtering on the element value would drop every
   duplicate at once (and OCaml's [!=] on immediate ints compares like [=],
   so [5; 5] minus one 5 came out as [] — testing a 2-element removal and
   misreporting minimality). *)
let is_one_minimal ~oracle subset =
  oracle subset
  && List.for_all
       (fun i -> not (oracle (List.filteri (fun j _ -> j <> i) subset)))
       (List.init (List.length subset) Fun.id)

(* --- §9 extensions ------------------------------------------------------- *)

type parallel_stats = {
  p_oracle_queries : int;   (* total oracle evaluations *)
  p_rounds : int;           (* batches of concurrent evaluations *)
  p_max_batch : int;        (* widest batch issued *)
}

(* Intra-module parallel DD (§9: "multiple sets of attributes of the same
   module in parallel"). Algorithm 1's partition tests within one iteration
   are independent, so a worker pool evaluates each phase as ⌈tests/workers⌉
   rounds. The search is the same — each phase still commits to the first
   passing candidate in partition order, so the result equals the sequential
   algorithm's — but the critical-path length drops from #queries to #rounds. *)
let minimize_parallel ?(workers = 8) ~oracle items =
  if workers < 1 then invalid_arg "Dd.minimize_parallel: workers < 1";
  let stats = { p_oracle_queries = 0; p_rounds = 0; p_max_batch = 0 } in
  let stats = ref stats in
  let cache : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  let arr = Array.of_list items in
  let to_items idxs = List.map (fun i -> arr.(i)) idxs in
  (* evaluate a batch of candidate subsets "concurrently" *)
  let test_batch idxs_list =
    let fresh =
      List.filter
        (fun idxs ->
           not (Hashtbl.mem cache (String.concat "," (List.map string_of_int idxs))))
        idxs_list
    in
    if fresh <> [] then begin
      let n = List.length fresh in
      stats :=
        { p_oracle_queries = !stats.p_oracle_queries + n;
          p_rounds =
            !stats.p_rounds + ((n + workers - 1) / workers);
          p_max_batch = max !stats.p_max_batch (min n workers) };
      List.iter
        (fun idxs ->
           let k = String.concat "," (List.map string_of_int idxs) in
           Hashtbl.replace cache k (oracle (to_items idxs)))
        fresh
    end;
    List.map
      (fun idxs ->
         (idxs, Hashtbl.find cache (String.concat "," (List.map string_of_int idxs))))
      idxs_list
  in
  let rec loop current n =
    let len = List.length current in
    if len <= 1 then begin
      if len = 1 then begin
        match test_batch [ [] ] with
        | [ (_, true) ] -> []
        | _ -> current
      end
      else current
    end
    else begin
      let parts = partitions current n in
      let results = test_batch parts in
      match List.find_opt snd results with
      | Some (winner, _) -> loop winner 2
      | None ->
        let complements =
          if n = 2 then []
          else List.map (fun p -> complement ~of_:current p) parts
        in
        let cresults = if complements = [] then [] else test_batch complements in
        (match List.find_opt snd cresults with
         | Some (winner, _) -> loop winner (max 2 (n - 1))
         | None -> if n >= len then current else loop current (min (2 * n) len))
    end
  in
  let all_idxs = List.init (Array.length arr) Fun.id in
  let result = if items = [] then [] else loop all_idxs 2 in
  (to_items result, !stats)

(* Seeded DD (§9 continuous pipeline; Heo et al.'s learned prediction): test
   the predicted keep-set first — if it already passes, minimize inside it,
   skipping the whole coarse-granularity descent. Falls back to plain DD when
   the prediction is stale. The result is still 1-minimal w.r.t. the oracle
   restricted to the seed (or the full set on fallback). *)
let minimize_with_seed ?on_step ~oracle ~seed items =
  let seed = List.filter (fun x -> List.mem x items) seed in
  let seed_distinct = List.sort_uniq compare seed in
  if seed_distinct <> List.sort_uniq compare items && oracle seed then begin
    let kept, stats = minimize ?on_step ~oracle seed in
    (* +1 for the seed test itself *)
    stats.oracle_queries <- stats.oracle_queries + 1;
    (kept, stats, true)
  end
  else begin
    let kept, stats = minimize ?on_step ~oracle items in
    let stats =
      if seed_distinct <> List.sort_uniq compare items then begin
        stats.oracle_queries <- stats.oracle_queries + 1;
        stats
      end
      else stats
    in
    (kept, stats, false)
  end
