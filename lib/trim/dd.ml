(* Delta Debugging — Algorithm 1 of the paper (the ddmin variant of Zeller &
   Hildebrandt adapted for debloating by Heo et al.).

   Given a component list A and an oracle O over component subsets, find a
   1-minimal passing subset A-star of A:

     n ← 2
     repeat
       split A into n partitions a_1 … a_n
       if ∃i. O(a_i) = T          then (A, n) ← (a_i, 2)
       else if ∃i. O(A \ a_i) = T then (A, n) ← (A \ a_i, n − 1)
       else                            n ← 2n
     until n > |A|

   1-minimality: removing any single component from the result makes the
   oracle return F (checked by the property tests). Oracle queries are
   memoized — DD revisits subsets across granularity changes. The search
   runs over component *indices*; items are mapped back at the boundary. *)

type stats = {
  mutable oracle_queries : int;     (* distinct subsets actually tested *)
  mutable cache_hits : int;
  mutable iterations : int;         (* granularity rounds *)
  (* observation-memo traffic underneath the subset cache: queries answered
     by Oracle.Cache instead of fresh interpreters. Filled in by the
     debloater (DD itself only sees an opaque subset oracle). *)
  mutable oracle_cache_hits : int;
  mutable oracle_cache_misses : int;
  (* warm-start accounting ({!minimize_with_seed}): confirming queries spent
     testing a previous keep-set, and how many of them passed (a hit skips
     the whole coarse-granularity descent). *)
  mutable ws_queries : int;
  mutable ws_hits : int;
}

type 'a step = {
  step_candidate : 'a list;   (* subset under test *)
  step_passed : bool;
}

(* Split [items] into [n] contiguous partitions of near-equal size. *)
let partitions items n =
  let len = List.length items in
  let arr = Array.of_list items in
  let base = len / n and extra = len mod n in
  let rec go i start acc =
    if i >= n then List.rev acc
    else
      let size = base + (if i < extra then 1 else 0) in
      let part = Array.to_list (Array.sub arr start size) in
      go (i + 1) (start + size) (part :: acc)
  in
  List.filter (fun p -> p <> []) (go 0 0 [])

let complement ~of_:all part = List.filter (fun x -> not (List.mem x part)) all

(* Answer a fresh subset query: replay the journal when it already holds a
   verdict for this key, otherwise ask the oracle and record the verdict
   durably before it becomes visible to the search. Counters treat both
   paths identically — a resumed run's stats equal the uninterrupted
   run's. *)
let journaled_query ~journal ~oracle ~key subset =
  match journal with
  | None -> oracle subset
  | Some j ->
    (match Journal.find j key with
     | Some verdict -> verdict
     | None ->
       let verdict = oracle subset in
       Journal.append j ~key verdict;
       verdict)

let journal_keepset ~journal result =
  match journal with
  | None -> ()
  | Some j ->
    Journal.append_keepset j
      (String.concat "," (List.map string_of_int result))

(* [minimize ~oracle items] assumes [oracle items = true] (the full program
   passes its own test cases) and returns a 1-minimal passing subset. The
   optional [on_step] observer receives every oracle query, enabling the
   Figure-6-style walkthrough in the quickstart example. With [journal],
   every verdict is recorded durably before use and a resumed run replays
   recorded verdicts instead of re-querying — see {!Journal}. *)
let minimize ?(on_step = fun (_ : 'a step) -> ()) ?journal ~oracle items =
  let stats =
    { oracle_queries = 0; cache_hits = 0; iterations = 0;
      oracle_cache_hits = 0; oracle_cache_misses = 0;
      ws_queries = 0; ws_hits = 0 }
  in
  let arr = Array.of_list items in
  let cache : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  let to_items idxs = List.map (fun i -> arr.(i)) idxs in
  let test idxs =
    let k = String.concat "," (List.map string_of_int idxs) in
    match Hashtbl.find_opt cache k with
    | Some r ->
      stats.cache_hits <- stats.cache_hits + 1;
      r
    | None ->
      stats.oracle_queries <- stats.oracle_queries + 1;
      let subset = to_items idxs in
      let r = journaled_query ~journal ~oracle ~key:k subset in
      Hashtbl.replace cache k r;
      on_step { step_candidate = subset; step_passed = r };
      r
  in
  let rec loop current n =
    stats.iterations <- stats.iterations + 1;
    let len = List.length current in
    (* unlike crash-minimisation, debloating admits an empty keep-set: a
       singleton is only 1-minimal if the empty set fails *)
    if len <= 1 then (if len = 1 && test [] then [] else current)
    else begin
      let parts = partitions current n in
      match List.find_opt test parts with
      | Some winner -> loop winner 2
      | None ->
        (* complements coincide with partitions at n = 2; skip re-testing *)
        let complements =
          if n = 2 then []
          else List.map (fun p -> complement ~of_:current p) parts
        in
        (match List.find_opt test complements with
         | Some winner -> loop winner (max 2 (n - 1))
         | None ->
           if n >= len then current
           else loop current (min (2 * n) len))
    end
  in
  let all_idxs = List.init (Array.length arr) Fun.id in
  let result = if items = [] then [] else loop all_idxs 2 in
  journal_keepset ~journal result;
  (to_items result, stats)

(* Check 1-minimality of [subset] under [oracle]: the subset passes and no
   single-element removal does. Exposed for tests and EXPERIMENTS.md.

   Removal is positional: filtering on the element value would drop every
   duplicate at once (and OCaml's [!=] on immediate ints compares like [=],
   so [5; 5] minus one 5 came out as [] — testing a 2-element removal and
   misreporting minimality). *)
let is_one_minimal ~oracle subset =
  oracle subset
  && List.for_all
       (fun i -> not (oracle (List.filteri (fun j _ -> j <> i) subset)))
       (List.init (List.length subset) Fun.id)

(* --- §9 extensions ------------------------------------------------------- *)

type parallel_stats = {
  p_oracle_queries : int;   (* issued queries — equals sequential minimize's *)
  p_cache_hits : int;       (* subset-cache hits — equals sequential's *)
  p_speculative : int;      (* extra evaluations that were never committed *)
  p_rounds : int;           (* critical-path length in worker batches *)
  p_max_batch : int;        (* widest issued batch (≤ workers) *)
  p_iterations : int;       (* granularity rounds — equals sequential's *)
}

(* Intra-module parallel DD (§9: "multiple sets of attributes of the same
   module in parallel"). Algorithm 1's candidate tests within one phase are
   independent, so the pool evaluates a whole phase's batch concurrently —
   *speculatively*, because the sequential algorithm stops at the first
   passing candidate and never looks at the rest.

   The committed-prefix discipline keeps the search byte-identical to
   [minimize] anyway: verdicts live in a [speculative] table until a commit
   walk revisits the candidates in partition order, replaying exactly the
   sequential control flow against a [committed] table that therefore always
   equals the sequential cache. A candidate the walk reaches is either a
   committed-cache hit ([p_cache_hits]) or an issue ([p_oracle_queries]);
   the walk stops at the first pass. Speculative verdicts the walk never
   reached stay in their table: if a later phase's walk reaches that subset,
   committing it counts as an issue — the sequential algorithm would have
   queried the oracle right there — it just costs no oracle time anymore.

   Net effect: keep-set, [p_oracle_queries], [p_cache_hits] and
   [p_iterations] all equal the sequential run's numbers regardless of
   [workers] or scheduling, while the oracle calls themselves run on
   [pool]; the surplus [p_speculative] evaluations are the price of the
   wall-clock win (and they pre-warm the observation memo). [p_rounds] is
   the modelled critical path: each phase contributes ⌈issued/workers⌉.
   Without a [pool], evaluation falls back to sequential execution of the
   same batches — accounting (and result) stay identical.

   With [journal], every *execution* (speculative included — the resumed
   run re-speculates the same batches) is recorded: replayed keys skip the
   pool, fresh keys are evaluated and then journaled sequentially in
   submission order from the orchestrating thread, keeping record order —
   and therefore the chaos kill point — scheduling-independent. *)
let minimize_parallel ?workers ?pool ?journal ~oracle items =
  let workers =
    match (workers, pool) with
    | Some w, _ -> w
    | None, Some p -> Parallel.Pool.size p
    | None, None -> 8
  in
  if workers < 1 then invalid_arg "Dd.minimize_parallel: workers < 1";
  let arr = Array.of_list items in
  let to_items idxs = List.map (fun i -> arr.(i)) idxs in
  let key idxs = String.concat "," (List.map string_of_int idxs) in
  let committed : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  let speculative : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  let issued = ref 0 and hits = ref 0 and evals = ref 0 in
  let rounds = ref 0 and max_batch = ref 0 and iters = ref 0 in
  (* concurrently evaluate every candidate of the phase not yet known *)
  let evaluate idxs_list =
    let needed =
      List.filter
        (fun idxs ->
           let k = key idxs in
           not (Hashtbl.mem committed k || Hashtbl.mem speculative k))
        idxs_list
    in
    if needed <> [] then begin
      evals := !evals + List.length needed;
      let lookups =
        List.map
          (fun idxs ->
             ( idxs,
               match journal with
               | Some j -> Journal.find j (key idxs)
               | None -> None ))
          needed
      in
      let fresh =
        List.filter_map
          (fun (idxs, v) -> if v = None then Some idxs else None)
          lookups
      in
      let verdicts =
        if fresh = [] then []
        else
          match pool with
          | Some p when Parallel.Pool.size p > 1 ->
            Parallel.Pool.map p (fun idxs -> oracle (to_items idxs)) fresh
          | _ -> List.map (fun idxs -> oracle (to_items idxs)) fresh
      in
      (* durable before visible: journal fresh verdicts in submission order *)
      List.iter2
        (fun idxs verdict ->
           (match journal with
            | Some j -> Journal.append j ~key:(key idxs) verdict
            | None -> ());
           Hashtbl.replace speculative (key idxs) verdict)
        fresh verdicts;
      List.iter
        (fun (idxs, v) ->
           match v with
           | Some verdict -> Hashtbl.replace speculative (key idxs) verdict
           | None -> ())
        lookups
    end
  in
  (* replay the sequential walk over the batch: first pass wins; rounds are
     counted over the candidates actually issued, not the whole batch *)
  let commit_walk idxs_list =
    let batch_issued = ref 0 in
    let rec walk = function
      | [] -> None
      | idxs :: rest ->
        let verdict =
          let k = key idxs in
          match Hashtbl.find_opt committed k with
          | Some v ->
            incr hits;
            v
          | None ->
            let v = Hashtbl.find speculative k in
            Hashtbl.remove speculative k;
            Hashtbl.replace committed k v;
            incr issued;
            incr batch_issued;
            v
        in
        if verdict then Some idxs else walk rest
    in
    let result = walk idxs_list in
    if !batch_issued > 0 then begin
      rounds := !rounds + ((!batch_issued + workers - 1) / workers);
      max_batch := max !max_batch (min !batch_issued workers)
    end;
    result
  in
  let test_phase idxs_list =
    evaluate idxs_list;
    commit_walk idxs_list
  in
  let rec loop current n =
    incr iters;
    let len = List.length current in
    if len <= 1 then begin
      if len = 1 && test_phase [ [] ] <> None then [] else current
    end
    else begin
      let parts = partitions current n in
      match test_phase parts with
      | Some winner -> loop winner 2
      | None ->
        let complements =
          if n = 2 then []
          else List.map (fun p -> complement ~of_:current p) parts
        in
        let cwinner =
          if complements = [] then None else test_phase complements
        in
        (match cwinner with
         | Some winner -> loop winner (max 2 (n - 1))
         | None -> if n >= len then current else loop current (min (2 * n) len))
    end
  in
  let all_idxs = List.init (Array.length arr) Fun.id in
  let result = if items = [] then [] else loop all_idxs 2 in
  journal_keepset ~journal result;
  ( to_items result,
    { p_oracle_queries = !issued;
      p_cache_hits = !hits;
      p_speculative = !evals - !issued;
      p_rounds = !rounds;
      p_max_batch = !max_batch;
      p_iterations = !iters } )

(* Seeded DD (§9 continuous pipeline; Heo et al.'s learned prediction): test
   the predicted keep-set first — if it already passes, minimize inside it,
   skipping the whole coarse-granularity descent. Falls back to plain DD when
   the prediction is stale. The result is still 1-minimal w.r.t. the oracle
   restricted to the seed (or the full set on fallback). *)
let minimize_with_seed ?on_step ~oracle ~seed items =
  let seed = List.filter (fun x -> List.mem x items) seed in
  let seed_distinct = List.sort_uniq compare seed in
  if seed_distinct <> List.sort_uniq compare items && oracle seed then begin
    let kept, stats = minimize ?on_step ~oracle seed in
    (* +1 for the seed test itself *)
    stats.oracle_queries <- stats.oracle_queries + 1;
    stats.ws_queries <- stats.ws_queries + 1;
    stats.ws_hits <- stats.ws_hits + 1;
    (kept, stats, true)
  end
  else begin
    let kept, stats = minimize ?on_step ~oracle items in
    let stats =
      if seed_distinct <> List.sort_uniq compare items then begin
        stats.oracle_queries <- stats.oracle_queries + 1;
        stats.ws_queries <- stats.ws_queries + 1;
        stats
      end
      else stats
    in
    (kept, stats, false)
  end
