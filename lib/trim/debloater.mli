(** The DD-based debloater (§5.3, §6.3): for each top-K module, enumerate its
    attributes, exclude PyCG-protected and magic ones, and run Algorithm 1 —
    every query rewrites the module on a copy-on-write overlay of the
    deployment and re-runs the oracle test cases in a fresh interpreter.

    Each [?oracle_cache] below names the observation memo the [oracle]
    closure consults (default {!Oracle.Cache.global}); it is sampled around
    the DD search to fill the memo hit/miss counters of {!Dd.stats} and
    {!module_result}. *)

module String_set = Callgraph.Pycg.String_set

type module_result = {
  dm_module : string;        (** dotted module name *)
  dm_file : string;          (** rewritten vfs path, or ["<none>"] *)
  attrs_before : int;
  attrs_after : int;
  removed_attrs : string list;
  protected : string list;   (** PyCG exclusions present in the module *)
  oracle_queries : int;
  cache_hits : int;
  dd_iterations : int;
  oracle_cache_hits : int;
      (** oracle queries answered by the observation memo *)
  oracle_cache_misses : int;
}

val pp_module_result : Format.formatter -> module_result -> unit

(** Rewrite [file] inside a copy-on-write overlay of the deployment keeping
    exactly [keep] (plus magic names) — O(1), not O(image files). Exposed for
    the ablation harness and tests. *)
val with_restricted :
  Platform.Deployment.t ->
  file:string ->
  keep:string list ->
  Platform.Deployment.t

(** Debloat one module. The result is an overlay sharing no mutable state
    with the input deployment. Builtin (non-file-backed) modules are a
    no-op.

    With [?pool] (of size > 1) the DD search runs its oracle batches
    concurrently via {!Dd.minimize_parallel}; keep-set and query/cache-hit
    counts are identical to the sequential search by that function's
    committed-prefix contract. [on_step] only fires on the sequential
    path.

    With [?journal], the search records every verdict in
    [<journal_dir>/<module>.journal] and — when the spec says resume — a
    compatible existing journal is replayed first, so a killed search
    continues where it crashed with bit-identical results. The journal's
    run digest covers the base deployment image this module is searched
    against, so resume requires the same pipeline job layout ([--jobs]) as
    the killed run; anything else safely discards the journal. *)
val debloat_module :
  ?on_step:(string Dd.step -> unit) ->
  ?oracle_cache:Oracle.Cache.t ->
  ?pool:Parallel.Pool.t ->
  ?journal:Journal.spec ->
  oracle:(Platform.Deployment.t -> bool) ->
  protected:String_set.t ->
  Platform.Deployment.t ->
  module_name:string ->
  Platform.Deployment.t * module_result

(** The journal header digest for one module search: covers the DD revision,
    execution backend, optimizer variant / stub configuration (lazy images
    get a distinct digest, so a [--resume] of a lazy run never replays
    eager-run verdicts — eager images keep the historical digest), image
    digest, module, file, protections, and candidate order. Exposed so
    tests can assert the separation. *)
val journal_run_digest :
  Platform.Deployment.t ->
  module_name:string ->
  file:string ->
  protected_list:string list ->
  candidates:string list ->
  string

(** [apply_result d r] re-applies a finished module search to [d]: rewrites
    [r.dm_file] on a fresh overlay keeping everything except
    [r.removed_attrs]. Folding module results over the input app in ranking
    order rebuilds the sequential pipeline's output deployment — the merge
    step of [Pipeline.run ~jobs]. No-op for builtin modules. *)
val apply_result :
  Platform.Deployment.t -> module_result -> Platform.Deployment.t

(** {1 Variants} *)

(** Statement-granularity DD — the coarser alternative §6.1 argues against;
    used by the granularity ablation. *)
val debloat_module_statements :
  ?oracle_cache:Oracle.Cache.t ->
  oracle:(Platform.Deployment.t -> bool) ->
  protected:String_set.t ->
  Platform.Deployment.t ->
  module_name:string ->
  Platform.Deployment.t * module_result

(** Seeded debloating for the continuous pipeline (§9): primes DD with a
    previous run's keep-set. The flag is [true] iff the seed passed. *)
val debloat_module_seeded :
  ?oracle_cache:Oracle.Cache.t ->
  oracle:(Platform.Deployment.t -> bool) ->
  protected:String_set.t ->
  seed_keep:string list ->
  Platform.Deployment.t ->
  module_name:string ->
  Platform.Deployment.t * module_result * bool

(** {1 Incremental re-debloating} *)

(** The reachable-image digest of one module's DD search: md5 over the
    module's top-level library subtree (path + content digest of every
    file a query can read or rewrite), the handler file/name/content and
    test cases driving the oracle, the candidate/protected split, the
    execution backend, and the optimizer variant. Equal digests across two
    revisions mean the search would replay move for move, so its recorded
    keep-set can be applied without any oracle query.

    Files outside the module's [site-packages/<root>] subtree are
    deliberately excluded — the library-separability invariant the
    parallel pipeline's per-root grouping already rests on — which also
    makes the digest identical between the sequential fold and the
    parallel group fold, keeping warm runs [--jobs]-invariant. A module
    whose file lives outside its subtree falls back to the whole image
    digest (conservative, never wrong). *)
val module_search_digest :
  Platform.Deployment.t ->
  module_name:string ->
  file:string ->
  protected_list:string list ->
  candidates:string list ->
  string

(** Digest recorded for built-in (non-file-backed) modules: ["none"]. *)
val builtin_digest : string

type search_kind =
  | Fresh          (** full DD: no baseline entry, or a builtin module *)
  | Replayed       (** digest unchanged: keep-set applied, zero queries *)
  | Seeded of bool (** digest changed: warm-started ([true] = seed passed) *)

(** [debloat_module_incremental ~baseline d ~module_name] is
    {!debloat_module} consulting a previous run's manifest entry: an entry
    with an unchanged {!module_search_digest} replays its recorded
    keep-set with zero oracle traffic; a stale entry warm-starts DD with
    the recorded keep-set as seed (one confirming query, full ddmin on
    failure); no entry runs a fresh search. Returns the current search
    digest for the caller's new manifest. [pool]/[journal] apply to the
    fresh path only; replayed and seeded searches are sequential. *)
val debloat_module_incremental :
  ?oracle_cache:Oracle.Cache.t ->
  ?pool:Parallel.Pool.t ->
  ?journal:Journal.spec ->
  oracle:(Platform.Deployment.t -> bool) ->
  protected:String_set.t ->
  baseline:Manifest.module_entry option ->
  Platform.Deployment.t ->
  module_name:string ->
  Platform.Deployment.t * module_result * search_kind * string
