(* Attribute-granularity view of a module (§6.1).

   A module's attributes are the names its top-level statements bind:
     import x            — binds x          (one attribute)
     import x as y       — binds y
     from m import a, b  — binds a and b    (one attribute PER NAME — finer
                                             than statement granularity)
     def f / class C     — binds f / C
     name = expr         — binds name

   Magic attributes (__name__, __all__, …) are excluded from DD (§6.3).
   Non-binding statements (expression statements, control flow) are left
   untouched — "all other code is untouched". *)

module String_set = Set.Make (String)

let is_magic name =
  String.length name > 4
  && String.sub name 0 2 = "__"
  && String.sub name (String.length name - 2) 2 = "__"

(* Names bound by one top-level statement, in source order. *)
let bound_names (s_ : Minipy.Ast.stmt) : string list =
  let open Minipy.Ast in
  match s_.sdesc with
  | Import (path, alias) ->
    [ (match alias with Some a -> a | None -> List.hd path) ]
  | From_import (_, names) ->
    List.map (fun (n, alias) -> Option.value alias ~default:n) names
  | Def { dname; _ } -> [ dname ]
  | Class { cname; _ } -> [ cname ]
  | Assign (Tname n, _) -> [ n ]
  | Assign (Ttuple ts, _) ->
    List.filter_map (function Tname n -> Some n | _ -> None) ts
  | Assign ((Tattr _ | Tsubscript _), _)
  | AugAssign _ | Expr_stmt _ | Return _ | If _ | While _ | For _ | Try _
  | Raise _ | Pass | Break | Continue | Global _ | Del _ | Assert _ -> []

(* The module's debloatable attributes: every non-magic bound name, first
   occurrence order, deduplicated. *)
let attrs_of_program (prog : Minipy.Ast.program) : string list =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun stmt ->
       List.filter_map
         (fun n ->
            if is_magic n || Hashtbl.mem seen n then None
            else begin
              Hashtbl.replace seen n ();
              Some n
            end)
         (bound_names stmt))
    prog

(* Rewrite the module so that only attributes in [keep] (plus magic names and
   non-binding statements) survive. From-import statements are filtered
   name-by-name; statements binding no kept name are dropped (Figure 7). *)
let restrict (prog : Minipy.Ast.program) ~keep : Minipy.Ast.program =
  let open Minipy.Ast in
  let keep_name n = is_magic n || String_set.mem n keep in
  List.filter_map
    (fun stmt ->
       match stmt.sdesc with
       | From_import (clause, names) ->
         let kept =
           List.filter
             (fun (n, alias) -> keep_name (Option.value alias ~default:n))
             names
         in
         if kept = [] then None
         else Some { stmt with sdesc = From_import (clause, kept) }
       | Import _ | Def _ | Class _ | Assign ((Tname _ | Ttuple _), _) ->
         let bound = bound_names stmt in
         if bound <> [] && not (List.exists keep_name bound) then None
         else Some stmt
       | Assign ((Tattr _ | Tsubscript _), _)
       | AugAssign _ | Expr_stmt _ | Return _ | If _ | While _ | For _
       | Try _ | Raise _ | Pass | Break | Continue | Global _ | Del _
       | Assert _ -> Some stmt)
    prog

(* Parse a module file, restrict it, and print it back — the per-iteration
   rewrite step of §6.3 ("a single traversal of the AST"). DD rewrites the
   same source hundreds of times with different keep-sets; the parse cache
   answers every parse after the first. *)
let rewrite_source ~file source ~keep =
  let prog = Minipy.Parse_cache.parse ~file source in
  Minipy.Pretty.program_to_string (restrict prog ~keep)

(* --- statement granularity (§6.1 comparison) ------------------------------

   The coarser alternative λ-trim argues against: components are whole
   top-level binding statements, so `from m import a, b, c` lives or dies as
   one unit and unused names inside a kept statement can never be dropped. *)

(* Indices of the removable (binding, non-magic) top-level statements. *)
let statement_components (prog : Minipy.Ast.program) : int list =
  List.filteri
    (fun _ _ -> true)
    (List.mapi (fun i s_ -> (i, s_)) prog)
  |> List.filter_map
       (fun (i, s_) ->
          match bound_names s_ with
          | [] -> None
          | names -> if List.for_all is_magic names then None else Some i)

(* Keep only the statements whose index is in [keep] (plus every non-binding
   or magic statement). *)
let restrict_statements (prog : Minipy.Ast.program) ~keep : Minipy.Ast.program =
  List.filteri
    (fun i s_ ->
       match bound_names s_ with
       | [] -> true
       | names -> List.for_all is_magic names || List.mem i keep)
    prog
