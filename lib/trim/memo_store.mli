(** Persistent on-disk oracle memo: a content-addressed, append-only,
    per-record checksummed observation store shared across process
    restarts, app revisions, and applications.

    Keys are {!Oracle.test_key} digests — md5 over everything a canonical
    output can depend on (backend, optimizer variant, effective image
    digest, entry point, test-case inputs) — so a key either denotes
    exactly one observation or is absent; there is nothing to invalidate
    across revisions. The file format mirrors {!Journal}: a magic header
    followed by flushed, checksummed records; on open only the valid
    record prefix is replayed, and any torn or corrupt tail is discarded
    (and the file atomically repaired), never replayed.

    A store is attached beneath the in-memory {!Oracle.Cache} with
    {!Oracle.Cache.attach_store} (CLI: [--memo-dir DIR]); the cache
    promotes store hits into memory and writes fresh observations
    through. *)

type t

(** The header line of the store file, [ltrim-memo/1]. *)
val magic : string

(** Basename of the store file inside its directory,
    [observations.memo]. *)
val file_name : string

(** [open_ ~dir] opens (creating [dir] and the file as needed) the store
    at [dir]/[file_name]. An existing file is replayed: the valid record
    prefix populates the table; an invalid suffix is dropped, counted in
    {!truncated}, and repaired on disk via write-temp-then-rename. A file
    with a foreign or torn header is started over empty. *)
val open_ : dir:string -> t

(** Lookup by exact key. *)
val find : t -> string -> string option

val mem : t -> string -> bool

(** [add t ~key value] durably records one observation: the record is
    checksummed and flushed before returning. Idempotent — a key already
    present is not re-appended (first write wins; keys are
    content-addressed so any later value would be identical anyway).
    Raises [Invalid_argument] if [key] contains ['|'] or newlines, or if
    the store is closed. *)
val add : t -> key:string -> string -> unit

(** Number of distinct observations currently held. *)
val size : t -> int

(** Records replayed from disk by {!open_}. *)
val loaded : t -> int

(** Records appended since {!open_}. *)
val appended : t -> int

(** Invalid trailing lines discarded by {!open_}. *)
val truncated : t -> int

(** Full path of the backing file. *)
val path : t -> string

(** Flush and close the append channel. Reads keep working; further
    {!add}s raise. *)
val close : t -> unit

(** Escape an observation payload for single-line storage:
    ['\\'] → ["\\\\"], ['\n'] → ["\\n"], ['\r'] → ["\\r"],
    ['|'] → ["\\p"]. Exposed for tests. *)
val escape : string -> string

(** Inverse of {!escape}; [None] on any malformed escape sequence so a
    corrupt record can never decode to a wrong observation. Exposed for
    tests. *)
val unescape : string -> string option
