(* The serverless cost profiler (§5.2).

   λ-trim patches the import machinery: measurement hooks record virtual time
   and memory before and after each module body executes. For module x:

     t(x), m(x)  — inclusive marginal import time / memory: the full window
                   of x's execution, covering x's own submodule imports
                   ("modules and all their submodules");
     self values — the window minus child windows (reported for diagnosis).

   T and M are the totals over the whole Function Initialization phase. *)

type module_profile = {
  mp_name : string;      (* dotted module name *)
  mp_incl_ms : float;    (* t in Eq. 2 *)
  mp_incl_mb : float;    (* m in Eq. 2 *)
  mp_self_ms : float;
  mp_self_mb : float;
  mp_order : int;        (* import order, for stable reporting *)
}

type result = {
  modules : module_profile list;   (* in import order *)
  total_ms : float;                (* T: full init time *)
  total_mb : float;                (* M: full init memory *)
  init_error : string option;      (* init crash, if any *)
}

type frame = {
  f_name : string;
  t0 : float;
  m0 : int;
  mutable child_ms : float;
  mutable child_mb : int;
}

(* Profile Function Initialization of a deployment by executing the handler
   module with measurement hooks installed, in a fresh interpreter. *)
let profile (d : Platform.Deployment.t) : result =
  (* obs: the profiler's import tree is exactly what §5.2's hooks measure,
     so it doubles as the trace's per-module import breakdown *)
  let interp =
    Minipy.Backend.create ~max_steps:20_000_000 ~obs:true
      d.Platform.Deployment.vfs
  in
  let stack : frame list ref = ref [] in
  let finished : module_profile list ref = ref [] in
  let order = ref 0 in
  Minipy.Interp.add_import_hook interp
    { Minipy.Interp.on_before =
        (fun name ->
           stack :=
             { f_name = name;
               t0 = interp.Minipy.Interp.vtime_ms;
               m0 = interp.Minipy.Interp.heap_bytes;
               child_ms = 0.0;
               child_mb = 0 }
             :: !stack);
      on_after =
        (fun name ->
           match !stack with
           | frame :: rest when String.equal frame.f_name name ->
             stack := rest;
             let incl_ms = interp.Minipy.Interp.vtime_ms -. frame.t0 in
             let incl_bytes = interp.Minipy.Interp.heap_bytes - frame.m0 in
             (match rest with
              | parent :: _ ->
                parent.child_ms <- parent.child_ms +. incl_ms;
                parent.child_mb <- parent.child_mb + incl_bytes
              | [] -> ());
             incr order;
             let mb b = float_of_int b /. (1024.0 *. 1024.0) in
             finished :=
               { mp_name = name;
                 mp_incl_ms = incl_ms;
                 mp_incl_mb = mb incl_bytes;
                 mp_self_ms = incl_ms -. frame.child_ms;
                 mp_self_mb = mb (incl_bytes - frame.child_mb);
                 mp_order = !order }
               :: !finished
           | _ -> ()) };
  let t0 = interp.Minipy.Interp.vtime_ms in
  let m0 = interp.Minipy.Interp.heap_bytes in
  let init_error =
    try
      let prog = Platform.Deployment.parse_handler d in
      ignore (Minipy.Interp.exec_main interp prog);
      None
    with
    | Minipy.Value.Py_error e -> Some e.Minipy.Value.exc_class
    | Minipy.Interp.Timeout _ -> Some "Timeout"
  in
  { modules = List.rev !finished;
    total_ms = interp.Minipy.Interp.vtime_ms -. t0;
    total_mb = float_of_int (interp.Minipy.Interp.heap_bytes - m0) /. (1024.0 *. 1024.0);
    init_error }

(* Profiles of importable *candidate* modules: everything measured except the
   interpreter-provided simrt. Submodules are candidates in their own right,
   exactly as in the paper (Table 3 debloats e.g. lxml.html, wand.image). *)
let candidates (r : result) : module_profile list =
  List.filter (fun mp -> not (String.equal mp.mp_name "simrt")) r.modules

let find (r : result) name =
  List.find_opt (fun mp -> String.equal mp.mp_name name) r.modules
