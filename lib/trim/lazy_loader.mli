(** Profile-guided lazy/partial loading — the second optimizer family.

    Marks every file-backed import root the {!Profiler} observed during
    Function Initialization as lazy in the image's
    {!Minipy.Interp.lazy_manifest_file}: the interpreter stubs those roots
    at the import statement and runs each body at first attribute touch,
    charging the deferred ticks on the same virtual clock (ARCHITECTURE
    §14). Nothing is deleted, so — unlike DD debloating — no §7 fallback
    re-invocation is ever possible. The rewrite is validated against the
    oracle once before being reported. *)

type report = {
  lz_app : string;
  lz_original : Platform.Deployment.t;
  lz_optimized : Platform.Deployment.t;
      (** the original plus a manifest overlay; equals [lz_original] when
          nothing was lazified or validation failed *)
  lz_lazified : string list;
      (** stubbed import roots, first-import order *)
  lz_preload : string list;
      (** profile-guided idle-time resolution order for fleet preloading *)
  lz_deferred_ms : float;
      (** profiler estimate of init-window ms moved off the cold path *)
  lz_deferred_mb : float;
  lz_validated : bool;  (** oracle equivalence of the rewrite *)
}

(** Render a manifest: one [lazy <root>] line per lazified root, one
    [preload <dotted>] line per preload entry, in order. *)
val manifest : lazified:string list -> preload:string list -> string

(** Profile [d], lazify its file-backed import roots, validate with the
    oracle ([cache] defaults to {!Oracle.Cache.global}), and report.
    Returns the original deployment unchanged (with [lz_validated = false])
    if the stubbed image is not observationally equivalent. *)
val optimize :
  ?cache:Oracle.Cache.t -> ?params:Platform.Lambda_sim.params ->
  Platform.Deployment.t -> report
