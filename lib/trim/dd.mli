(** Delta Debugging — Algorithm 1 of the paper.

    Given a list of program components and an oracle over component subsets,
    [minimize] returns a 1-minimal subset that still satisfies the oracle:
    the subset passes, and removing any single component makes it fail.
    Oracle queries are memoized across granularity changes. *)

type stats = {
  mutable oracle_queries : int;  (** distinct subsets actually tested *)
  mutable cache_hits : int;      (** repeated subsets answered from cache *)
  mutable iterations : int;      (** granularity rounds of the main loop *)
  mutable oracle_cache_hits : int;
      (** queries answered by the observation memo ({!Oracle.Cache}) instead
          of fresh interpreters; filled in by the debloater *)
  mutable oracle_cache_misses : int;
  mutable ws_queries : int;
      (** warm-start confirmation queries issued by {!minimize_with_seed}
          (testing a previous keep-set before searching) *)
  mutable ws_hits : int;
      (** warm-start confirmations that passed, skipping the
          coarse-granularity descent entirely *)
}

type 'a step = {
  step_candidate : 'a list;  (** the subset under test *)
  step_passed : bool;        (** the oracle's verdict *)
}

(** [partitions items n] splits [items] into at most [n] contiguous,
    non-empty partitions of near-equal size, covering [items] exactly. *)
val partitions : 'a list -> int -> 'a list list

(** [complement ~of_ part] is [of_] without the elements of [part]. *)
val complement : of_:'a list -> 'a list -> 'a list

(** [minimize ~oracle items] runs Algorithm 1. Assumes [oracle items = true]
    (the full program passes its own test cases — §5's precondition).
    [on_step] observes every actual (non-cached) oracle query, enabling the
    Figure-6 walkthrough of [examples/quickstart.ml]. Unlike crash
    minimisation, the empty subset is a legal result: a singleton is tested
    against [[]] before being returned.

    With [journal], every verdict is recorded durably before the search can
    observe it, and a resumed run (a journal opened with [resume] on the
    same run digest) replays recorded verdicts instead of re-querying —
    keep-set and all counters are bit-identical to the uninterrupted run. *)
val minimize :
  ?on_step:('a step -> unit) ->
  ?journal:Journal.t ->
  oracle:('a list -> bool) ->
  'a list ->
  'a list * stats

(** [is_one_minimal ~oracle subset]: [subset] passes and no single-element
    removal does. The property tests check [minimize]'s output with this. *)
val is_one_minimal : oracle:('a list -> bool) -> 'a list -> bool

(** {1 §9 extensions} *)

type parallel_stats = {
  p_oracle_queries : int;
      (** issued queries — equals the sequential [minimize]'s
          [oracle_queries] on the same input *)
  p_cache_hits : int;      (** subset-cache hits — equals sequential's *)
  p_speculative : int;
      (** surplus concurrent evaluations the sequential walk never reached;
          total oracle executions = [p_oracle_queries + p_speculative] *)
  p_rounds : int;
      (** modelled critical path: each phase contributes ⌈issued/workers⌉
          batches, counted over issued queries only (cache hits are free) *)
  p_max_batch : int;       (** widest issued batch (≤ [workers]) *)
  p_iterations : int;      (** granularity rounds — equals sequential's *)
}

(** Intra-module parallel DD (§9): each phase's candidate batch is evaluated
    concurrently on [pool] (sequentially when absent or of size 1), then
    verdicts are committed in partition order replaying exactly the
    sequential control flow — so the keep-set, [p_oracle_queries],
    [p_cache_hits] and [p_iterations] are scheduling-independent and equal
    [minimize]'s, whatever [workers] is. [workers] (default: the pool's
    size, else 8) only scales the [p_rounds]/[p_max_batch] model.

    With [journal], every execution (speculative included) is recorded in
    submission order from the orchestrating thread — record order, and
    hence any chaos kill point, is scheduling-independent — and a resumed
    run replays recorded verdicts, reproducing keep-set and every counter
    ([p_speculative] included).
    @raise Invalid_argument if [workers < 1]. *)
val minimize_parallel :
  ?workers:int ->
  ?pool:Parallel.Pool.t ->
  ?journal:Journal.t ->
  oracle:('a list -> bool) ->
  'a list ->
  'a list * parallel_stats

(** Seeded DD for the continuous pipeline: tests the predicted keep-set
    [seed] first; on a pass, minimises inside it (skipping the coarse
    descent), otherwise falls back to full DD. The returned flag is [true]
    iff the seed passed. *)
val minimize_with_seed :
  ?on_step:('a step -> unit) ->
  oracle:('a list -> bool) ->
  seed:'a list ->
  'a list ->
  'a list * stats * bool
