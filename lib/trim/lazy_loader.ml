(* Profile-guided lazy/partial loading: the second optimizer family
   (ROADMAP item 2). Where DD debloating *deletes* unused attributes and
   therefore needs the §7 fallback re-invocation safety net, this optimizer
   removes nothing: every file-backed import root the profiler saw during
   Function Initialization is marked lazy in the image's manifest, so the
   interpreter stubs it at the import statement and runs its body — charging
   the deferred ticks on the same virtual clock — at first attribute touch
   (ARCHITECTURE §14). A handler that touches everything pays eager cost;
   one that touches a slice pays only that slice's init, with zero
   correctness risk by construction.

   The rewrite is still validated against the oracle once (stub forcing
   must be observationally invisible), and the report carries the
   profiler's estimate of how much init work moved off the cold path. *)

type report = {
  lz_app : string;
  lz_original : Platform.Deployment.t;
  lz_optimized : Platform.Deployment.t;
      (* original + manifest overlay; = lz_original when nothing lazified
         or validation failed *)
  lz_lazified : string list;   (* stubbed import roots, first-import order *)
  lz_preload : string list;    (* idle-time resolution order *)
  lz_deferred_ms : float;      (* profiler estimate of init ms deferred *)
  lz_deferred_mb : float;
  lz_validated : bool;
}

let manifest ~lazified ~preload =
  let b = Buffer.create 128 in
  Buffer.add_string b "# lazy-loading manifest (ltrim, ARCHITECTURE \xc2\xa714)\n";
  List.iter (fun m -> Buffer.add_string b ("lazy " ^ m ^ "\n")) lazified;
  List.iter (fun m -> Buffer.add_string b ("preload " ^ m ^ "\n")) preload;
  Buffer.contents b

(* File-backed import roots observed during init, in first-import order —
   the lazifiable set. Builtin modules (simrt/json/cloud) resolve to no
   file and are skipped; dotted submodules ride along with their root. *)
let lazifiable_roots (d : Platform.Deployment.t)
    (profile : Profiler.result) : Profiler.module_profile list =
  List.filter
    (fun (mp : Profiler.module_profile) ->
       (not (String.contains mp.Profiler.mp_name '.'))
       && (match
             Minipy.Importer.resolve d.Platform.Deployment.vfs
               [ mp.Profiler.mp_name ]
           with
           | Minipy.Importer.Package _ | Minipy.Importer.Module _ -> true
           | Minipy.Importer.Not_found -> false))
    profile.Profiler.modules

let optimize ?(cache = Oracle.Cache.global) ?params
    (d : Platform.Deployment.t) : report =
  let profile = Profiler.profile d in
  let roots = lazifiable_roots d profile in
  let lazified = List.map (fun mp -> mp.Profiler.mp_name) roots in
  let unchanged ~validated =
    { lz_app = d.Platform.Deployment.name;
      lz_original = d;
      lz_optimized = d;
      lz_lazified = [];
      lz_preload = [];
      lz_deferred_ms = 0.0;
      lz_deferred_mb = 0.0;
      lz_validated = validated }
  in
  if lazified = [] then unchanged ~validated:true
  else begin
    (* preload order = first-import order: during init every root was
       touched in exactly this order, so it is the profile's best guess at
       which stub a warm instance will need next *)
    let preload = lazified in
    let optimized = Platform.Deployment.overlay d in
    Minipy.Vfs.add_file optimized.Platform.Deployment.vfs
      Minipy.Interp.lazy_manifest_file
      (manifest ~lazified ~preload);
    let ok =
      Oracle.equivalent
        (Oracle.observe ~cache ?params d)
        (Oracle.observe ~cache ?params optimized)
    in
    if not ok then unchanged ~validated:false
    else
      let deferred_ms, deferred_mb =
        List.fold_left
          (fun (ms, mb) (mp : Profiler.module_profile) ->
             (ms +. mp.Profiler.mp_incl_ms, mb +. mp.Profiler.mp_incl_mb))
          (0.0, 0.0) roots
      in
      { lz_app = d.Platform.Deployment.name;
        lz_original = d;
        lz_optimized = optimized;
        lz_lazified = lazified;
        lz_preload = preload;
        lz_deferred_ms = deferred_ms;
        lz_deferred_mb = deferred_mb;
        lz_validated = true }
  end
