(* The static analysis stage (§5.1): one AST pass over the input program to
   identify imported modules, plus a PyCG call-graph pass marking attributes
   that are definitely accessed — these are excluded from DD, which both
   speeds up debloating and guarantees they survive it. *)

module String_set = Callgraph.Pycg.String_set

type t = {
  imported_roots : string list;          (* top-level external modules *)
  imported_dotted : string list;         (* every dotted path imported *)
  pycg : Callgraph.Pycg.result;          (* analysis of the handler file *)
  image_pycg : (string * Callgraph.Pycg.result) list;
      (* per-file analyses of library code, keyed by vfs path *)
}

let analyze (d : Platform.Deployment.t) : t =
  let handler_prog = Platform.Deployment.parse_handler d in
  let pycg = Callgraph.Pycg.analyze handler_prog in
  (* Other libraries also access this module's attributes (pandas uses numpy);
     analyse every parseable file in the image so those accesses can be
     protected too. *)
  (* derive each file's dotted module name so its relative imports resolve *)
  let module_of_path path =
    let stripped =
      if String.length path > 14 && String.sub path 0 14 = "site-packages/"
      then String.sub path 14 (String.length path - 14)
      else path
    in
    let no_ext =
      if Filename.check_suffix stripped ".py" then
        Filename.chop_suffix stripped ".py"
      else stripped
    in
    match List.rev (String.split_on_char '/' no_ext) with
    | "__init__" :: rev_pkg ->
      (String.concat "." (List.rev rev_pkg), true)
    | parts -> (String.concat "." (List.rev parts), false)
  in
  let image_pycg =
    List.filter_map
      (fun path ->
         if String.equal path d.Platform.Deployment.handler_file then None
         else
           match Minipy.Parse_cache.parse_vfs d.Platform.Deployment.vfs path with
           | prog ->
             let current_module, is_package = module_of_path path in
             Some
               (path, Callgraph.Pycg.analyze ~current_module ~is_package prog)
           | exception (Minipy.Parser.Error _ | Minipy.Lexer.Error _) -> None)
      (Minipy.Vfs.paths d.Platform.Deployment.vfs)
  in
  { imported_roots = Callgraph.Import_scan.root_modules handler_prog;
    imported_dotted = Callgraph.Import_scan.dotted_modules handler_prog;
    pycg;
    image_pycg }

(* vfs directory prefix of the package that owns [module_name]'s root. *)
let package_prefix module_name =
  let root = List.hd (String.split_on_char '.' module_name) in
  "site-packages/" ^ root ^ "/"

(* Attributes of [module_name] (dotted) that the application or *another*
   package definitely accesses; DD must keep them. Accesses from files inside
   the module's own package are deliberately not counted: a package's
   internal wiring (its __init__ re-exporting from private submodules) is
   exactly what DD is allowed to dismantle — the oracle still protects any
   internal dependency that matters. *)
let protected_attrs (t : t) ~module_name : String_set.t =
  let own_prefix = package_prefix module_name in
  let own path =
    String.length path >= String.length own_prefix
    && String.sub path 0 (String.length own_prefix) = own_prefix
  in
  let union_from r = Callgraph.Pycg.accessed_under r module_name in
  List.fold_left
    (fun acc (path, r) ->
       if own path then acc else String_set.union acc (union_from r))
    (union_from t.pycg) t.image_pycg

(* Conservative variant for oracle-less tools (the FaaSLight baseline):
   attributes accessed by ANY file other than the one being rewritten —
   including the module's own package — are protected. *)
let protected_attrs_excluding_file (t : t) ~module_name ~file : String_set.t =
  let union_from r = Callgraph.Pycg.accessed_under r module_name in
  List.fold_left
    (fun acc (path, r) ->
       if String.equal path file then acc
       else String_set.union acc (union_from r))
    (union_from t.pycg) t.image_pycg
