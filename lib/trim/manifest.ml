(* Run manifest: the durable record of one debloat pipeline run that makes
   the next run incremental.

   A manifest binds the run configuration (app, backend, optimizer variant,
   scoring, k) to the ranked module list and, per module, the reachable-image
   search digest ({!Debloater.module_search_digest}), the removed attrs (the
   keep-set's complement), and the search's counters. `ltrim debloat
   --baseline MANIFEST` replays the recorded result for every module whose
   digest is unchanged and warm-starts DD for the rest.

   Format — line-oriented like {!Journal}, one checksummed record per line:

     ltrim-manifest/1
     a|<app>|<backend>|<variant>|<scoring>|<k>|<input digest>|<output digest>|<md5>
     r|<ranked modules, comma-joined>|<md5>
     m|<module>|<file>|<digest>|<removed attrs, +-joined>|<queries>|<cache_hits>|<iterations>|<md5>

   Parsing is strict: a foreign header, a bad checksum, a malformed record,
   or a missing section invalidates the *whole* manifest (the caller falls
   back to a cold run). Unlike the journal there is no valid-prefix replay:
   a manifest is written atomically after a completed run, so a partial file
   is not a crash to recover from but a corruption to reject. *)

let magic = "ltrim-manifest/1"

type module_entry = {
  me_module : string;
  me_file : string;            (* "<none>" for built-in modules *)
  me_digest : string;          (* Debloater.module_search_digest at run time *)
  me_removed : string list;    (* removed attrs, source order *)
  me_queries : int;
  me_cache_hits : int;
  me_iterations : int;
}

type t = {
  mf_app : string;
  mf_backend : string;
  mf_variant : string;         (* lazy-stub configuration tag, "eager" if none *)
  mf_scoring : string;
  mf_k : int;
  mf_input_digest : string;    (* image digest before debloating *)
  mf_output_digest : string;   (* image digest of the debloated result *)
  mf_ranked : string list;     (* modules in debloat order *)
  mf_modules : module_entry list;  (* same order as mf_ranked *)
}

let checksum payload = Digest.to_hex (Digest.string payload)

let check_field what s =
  if String.exists (fun c -> c = '|' || c = '\n' || c = '\r') s then
    invalid_arg (Printf.sprintf "Manifest: %s must not contain '|' or newlines" what)

let sealed payload = payload ^ "|" ^ checksum payload

let render_app m =
  check_field "app" m.mf_app;
  check_field "backend" m.mf_backend;
  check_field "variant" m.mf_variant;
  check_field "scoring" m.mf_scoring;
  sealed
    (Printf.sprintf "a|%s|%s|%s|%s|%d|%s|%s" m.mf_app m.mf_backend m.mf_variant
       m.mf_scoring m.mf_k m.mf_input_digest m.mf_output_digest)

let render_ranked m =
  List.iter (check_field "module") m.mf_ranked;
  sealed (Printf.sprintf "r|%s" (String.concat "," m.mf_ranked))

let render_module (e : module_entry) =
  check_field "module" e.me_module;
  check_field "file" e.me_file;
  check_field "digest" e.me_digest;
  List.iter (check_field "attr") e.me_removed;
  sealed
    (Printf.sprintf "m|%s|%s|%s|%s|%d|%d|%d" e.me_module e.me_file e.me_digest
       (String.concat "+" e.me_removed) e.me_queries e.me_cache_hits
       e.me_iterations)

let render m =
  String.concat "\n"
    (magic :: render_app m :: render_ranked m
     :: List.map render_module m.mf_modules)
  ^ "\n"

(* --- strict parsing ------------------------------------------------------- *)

(* Split "<payload>|<sum>" and verify; [None] on any mismatch. *)
let unseal line =
  match String.rindex_opt line '|' with
  | None -> None
  | Some i ->
    let payload = String.sub line 0 i in
    let sum = String.sub line (i + 1) (String.length line - i - 1) in
    if String.equal (checksum payload) sum then Some payload else None

let split_list ~on = function
  | "" -> []
  | s -> String.split_on_char on s

let parse_module line =
  match Option.map (String.split_on_char '|') (unseal line) with
  | Some [ "m"; m; file; digest; removed; q; ch; it ] ->
    (match (int_of_string_opt q, int_of_string_opt ch, int_of_string_opt it) with
     | Some q, Some ch, Some it ->
       Some
         { me_module = m;
           me_file = file;
           me_digest = digest;
           me_removed = split_list ~on:'+' removed;
           me_queries = q;
           me_cache_hits = ch;
           me_iterations = it }
     | _ -> None)
  | _ -> None

let parse text =
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  match lines with
  | header :: app_line :: ranked_line :: module_lines
    when String.equal header magic ->
    let app =
      match Option.map (String.split_on_char '|') (unseal app_line) with
      | Some [ "a"; app; backend; variant; scoring; k; din; dout ] ->
        Option.map
          (fun k -> (app, backend, variant, scoring, k, din, dout))
          (int_of_string_opt k)
      | _ -> None
    in
    let ranked =
      match Option.map (String.split_on_char '|') (unseal ranked_line) with
      | Some [ "r"; mods ] -> Some (split_list ~on:',' mods)
      | _ -> None
    in
    let modules =
      List.fold_left
        (fun acc line ->
           match (acc, parse_module line) with
           | Some acc, Some e -> Some (e :: acc)
           | _ -> None)
        (Some []) module_lines
    in
    (match (app, ranked, modules) with
     | ( Some (app, backend, variant, scoring, k, din, dout),
         Some ranked,
         Some rev_modules )
       when List.length ranked = List.length rev_modules ->
       let modules = List.rev rev_modules in
       if
         List.for_all2
           (fun r (e : module_entry) -> String.equal r e.me_module)
           ranked modules
       then
         Some
           { mf_app = app;
             mf_backend = backend;
             mf_variant = variant;
             mf_scoring = scoring;
             mf_k = k;
             mf_input_digest = din;
             mf_output_digest = dout;
             mf_ranked = ranked;
             mf_modules = modules }
       else None
     | _ -> None)
  | _ -> None

let save ~path m =
  Journal.mkdir_p (Filename.dirname path);
  Journal.write_file_atomic ~path (render m)

let load ~path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    parse text
  end

let find_module m name =
  List.find_opt
    (fun (e : module_entry) -> String.equal e.me_module name)
    m.mf_modules
