(* Optimizer-family selection: the process-wide `--optimizer` knob and the
   dispatcher that turns a deployment into its optimized form. Mirrors
   Minipy.Backend's configure/current shape so CLI setup and worker domains
   interact with it the same way. *)

type variant =
  | Dd        (* λ-trim DD attribute debloating (the default family) *)
  | Lazy      (* profile-guided lazy loading: nothing removed *)
  | Combined  (* lazy loading applied over the DD-trimmed image *)
  | Off       (* identity: deploy the original *)

let to_string = function
  | Dd -> "dd"
  | Lazy -> "lazy"
  | Combined -> "combined"
  | Off -> "none"

let of_string = function
  | "dd" -> Some Dd
  | "lazy" -> Some Lazy
  | "combined" -> Some Combined
  | "none" | "off" -> Some Off
  | _ -> None

let all = [ Dd; Lazy; Combined; Off ]

(* Set once at CLI startup, read wherever a command needs the selected
   family. Atomic so worker domains read it safely. *)
let state = Atomic.make Dd

let configure v = Atomic.set state v

let current () = Atomic.get state

type outcome = {
  o_variant : variant;
  o_deployment : Platform.Deployment.t;  (* what gets deployed *)
  o_dd : Pipeline.report option;         (* when the family ran DD *)
  o_lazy : Lazy_loader.report option;    (* when the family lazified *)
}

let run ?options ?jobs variant (d : Platform.Deployment.t) : outcome =
  match variant with
  | Off -> { o_variant = Off; o_deployment = d; o_dd = None; o_lazy = None }
  | Dd ->
    let r = Pipeline.run ?options ?jobs d in
    { o_variant = Dd;
      o_deployment = r.Pipeline.optimized;
      o_dd = Some r;
      o_lazy = None }
  | Lazy ->
    let lz = Lazy_loader.optimize d in
    { o_variant = Lazy;
      o_deployment = lz.Lazy_loader.lz_optimized;
      o_dd = None;
      o_lazy = Some lz }
  | Combined ->
    let r = Pipeline.run ?options ?jobs d in
    let lz = Lazy_loader.optimize r.Pipeline.optimized in
    { o_variant = Combined;
      o_deployment = lz.Lazy_loader.lz_optimized;
      o_dd = Some r;
      o_lazy = Some lz }
