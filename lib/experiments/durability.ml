(* Durability experiment: crash/resume and flaky-oracle sweeps.

   Part A (mode = kill): journal a debloating run, kill it after record N
   via the chaos harness, resume from the journal, and check the resumed
   run reproduces the uninterrupted baseline bit for bit (optimized image
   digest, removed attrs, every DD counter).

   Part B (mode = flake): harden the oracle (2K+1 quorum + quarantine),
   inject seeded flaky observations at a swept rate, and check the final
   trimmed image still equals the zero-flake baseline while genuinely
   flaky tests land in quarantine — with zero false quarantines at rate 0.

   Everything here is pinned to jobs = 1 and a fixed seed, so the CSV is
   byte-identical across runs and machines at any `ltrim --jobs`. *)

let app = "markdown"

let sweep_k = 3

let seed = 2025

let kill_points = [ 1; 5; 25; 100 ]   (* 100 > total records: never fires *)

let flake_rates = [ 0.0; 0.01; 0.05; 0.10 ]

let quorum_retries_k = 2

type row = {
  mode : string;             (* "kill" | "flake" *)
  kill_after : int;          (* 0 for flake rows *)
  flake_rate : float;        (* 0.0 for kill rows *)
  killed : bool;             (* did the chaos kill actually fire? *)
  replayed_records : int;    (* journal records served on resume *)
  identical : bool;          (* resumed/hardened run == baseline *)
  quarantined : int;
  quorum_retries : int;
}

(* Everything DD-level that must survive a crash or a flaky oracle: the
   optimized image plus every per-module search counter. Memo hit/miss
   deltas are deliberately excluded — a resumed run answers replayed
   queries before they reach the observation memo. *)
let fingerprint (r : Trim.Pipeline.report) =
  let d = Minipy.Vfs.image_digest r.Trim.Pipeline.optimized.Platform.Deployment.vfs in
  let modules =
    List.map
      (fun (m : Trim.Debloater.module_result) ->
         Printf.sprintf "%s:%s:%d:%d:%d" m.Trim.Debloater.dm_module
           (String.concat "+" m.Trim.Debloater.removed_attrs)
           m.Trim.Debloater.oracle_queries m.Trim.Debloater.cache_hits
           m.Trim.Debloater.dd_iterations)
      r.Trim.Pipeline.module_results
  in
  String.concat "|" (d :: string_of_int r.Trim.Pipeline.total_oracle_queries
                     :: modules)

let run_pipeline ?journal_dir ?(resume = false) ?(oracle_retries = 0)
    ?oracle_inject () =
  let d = Workloads.Suite.deployment_of app in
  Trim.Pipeline.run
    ~options:{ Trim.Pipeline.default_options with
               k = sweep_k;
               journal_dir; resume; oracle_retries; oracle_inject;
               (* private memo: runs stay independent, and injected flakes
                  can never poison the process-global memo *)
               oracle_cache = Some (Trim.Oracle.Cache.create ()) }
    ~jobs:1 d

let counter name = Obs.Metrics.counter Obs.Metrics.global name

let with_delta c f =
  let before = Obs.Metrics.value c in
  let x = f () in
  (x, Obs.Metrics.value c - before)

let kill_row ~root ~baseline n =
  let journal_dir = Filename.concat root (Printf.sprintf "kill%d" n) in
  let killed =
    Trim.Chaos.arm_kill_after n;
    Fun.protect ~finally:Trim.Chaos.disarm (fun () ->
        try
          ignore (run_pipeline ~journal_dir ());
          false
        with Trim.Chaos.Killed _ -> true)
  in
  let resumed, replayed_records =
    with_delta (counter "trim.journal.replayed") (fun () ->
        run_pipeline ~journal_dir ~resume:true ())
  in
  { mode = "kill"; kill_after = n; flake_rate = 0.0; killed;
    replayed_records;
    identical = String.equal (fingerprint resumed) baseline;
    quarantined = 0; quorum_retries = 0 }

let flake_row ~baseline rate =
  let report, quorum_retries =
    with_delta (counter "oracle.quorum.retries") (fun () ->
        run_pipeline ~oracle_retries:quorum_retries_k
          ~oracle_inject:(Trim.Chaos.flake ~seed ~rate) ())
  in
  { mode = "flake"; kill_after = 0; flake_rate = rate; killed = false;
    replayed_records = 0;
    identical = String.equal (fingerprint report) baseline;
    quarantined = report.Trim.Pipeline.quarantined_tests;
    quorum_retries }

let rows =
  lazy
    (let root = Filename.temp_dir "ltrim-durability" "" in
     let baseline = fingerprint (run_pipeline ()) in
     List.map (kill_row ~root ~baseline) kill_points
     @ List.map (flake_row ~baseline) flake_rates)

let print () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Common.header
       (Printf.sprintf
          "Durability: kill/resume and flaky-oracle sweeps (%s, K = %d, \
           seed %d, jobs pinned to 1)" app sweep_k seed));
  Buffer.add_string b
    (Printf.sprintf "  %-6s %-11s %-11s %-7s %-9s %-10s %-12s %s\n" "mode"
       "kill_after" "flake_rate" "killed" "replayed" "identical"
       "quarantined" "quorum_retries");
  List.iter
    (fun r ->
       Buffer.add_string b
         (Printf.sprintf "  %-6s %-11d %-11.2f %-7s %-9d %-10s %-12d %d\n"
            r.mode r.kill_after r.flake_rate
            (if r.killed then "yes" else "no") r.replayed_records
            (if r.identical then "yes" else "NO") r.quarantined
            r.quorum_retries))
    (Lazy.force rows);
  Buffer.contents b

let csv () =
  "mode,app,kill_after,flake_rate,killed,replayed_records,identical,\
   quarantined,quorum_retries\n"
  ^ String.concat ""
      (List.map
         (fun r ->
            Printf.sprintf "%s,%s,%d,%.2f,%d,%d,%d,%d,%d\n" r.mode app
              r.kill_after r.flake_rate
              (if r.killed then 1 else 0)
              r.replayed_records
              (if r.identical then 1 else 0)
              r.quarantined r.quorum_retries)
         (Lazy.force rows))
