(* Fleet experiment: cost and tail latency vs arrival rate and eviction
   policy, original vs lambda-trim-optimized deployment.

   Extends the paper's single-instance cost replay (Figures 13-14) to fleet
   dynamics: Poisson arrivals are dispatched over an autoscaled instance
   pool, so cold-start frequency is governed by concurrency and eviction
   policy rather than one keep-alive timer. The trimmed variant carries the
   Section-7 fallback: 1% of requests hit debloated-away code and re-invoke
   the original image on its own pool. Fully deterministic per seed. *)

let app = "resnet"
let rates_per_s = [ 0.2; 1.0; 5.0 ]
let duration_s = 1800.0
let seed = 2025

let policies =
  [ ("fixed-ttl", Fleet.Pool.Fixed_ttl { keep_alive_s = 600.0 });
    ("lru-cap4", Fleet.Pool.Lru { keep_alive_s = 600.0; max_idle = 4 });
    ("adaptive",
     Fleet.Pool.Adaptive { min_s = 60.0; max_s = 900.0; percentile = 99.0 }) ]

type row = {
  policy : string;
  rate_per_s : float;
  variant : string;  (* "original" | "trimmed" *)
  summary : Fleet.Report.summary;
}

let run () : row list =
  let t = Common.trimmed app in
  let original = Fleet.Scenario.profile_of_record t.Common.original_m.Common.cold in
  let trimmed = Fleet.Scenario.profile_of_record t.Common.trimmed_m.Common.cold in
  List.concat_map
    (fun (policy, pol) ->
       List.concat_map
         (fun rate_per_s ->
            let trace =
              Platform.Trace.poisson ~seed ~rate_per_s ~duration_s
                ~name:(Printf.sprintf "poisson-%g" rate_per_s)
            in
            let make variant profile fallback =
              let cfg =
                { (Fleet.Router.default_config ~profile pol) with
                  Fleet.Router.fallback }
              in
              let label =
                Printf.sprintf "%s r=%g %s" policy rate_per_s variant
              in
              { policy; rate_per_s; variant;
                summary =
                  Fleet.Report.summarize ~label cfg
                    (Fleet.Router.run cfg trace) }
            in
            [ make "original" original None;
              make "trimmed" trimmed
                (Some
                   (Fleet.Scenario.fallback ~rate:0.01 ~seed:(seed + 1)
                      ~original ())) ])
         rates_per_s)
    policies

let print () =
  let rows = run () in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Common.header
       (Printf.sprintf
          "Fleet simulation (%s): cost and p99 vs arrival rate and eviction \
           policy, original vs trimmed"
          app));
  Buffer.add_string b (Fleet.Report.table_header ^ "\n");
  List.iter
    (fun r -> Buffer.add_string b (Fleet.Report.table_row r.summary ^ "\n"))
    rows;
  (* headline: per (policy, rate), trimming's cost and p99 improvement *)
  Buffer.add_string b "\n  cost/p99 saving from lambda-trim:\n";
  List.iter
    (fun (policy, _) ->
       List.iter
         (fun rate ->
            let find variant =
              (List.find
                 (fun r ->
                    r.policy = policy && r.rate_per_s = rate
                    && r.variant = variant)
                 rows)
                .summary
            in
            let o = find "original" and t = find "trimmed" in
            Buffer.add_string b
              (Printf.sprintf
                 "    %-10s r=%-4g cost %6.1f%%  p99 %6.1f%%  (peak %d -> %d)\n"
                 policy rate
                 (Common.pct ~before:o.Fleet.Report.cost_usd
                    ~after:t.Fleet.Report.cost_usd)
                 (Common.pct ~before:o.Fleet.Report.p99_ms
                    ~after:t.Fleet.Report.p99_ms)
                 o.Fleet.Report.peak_instances t.Fleet.Report.peak_instances))
         rates_per_s)
    policies;
  Buffer.contents b

let csv () =
  "policy,rate_per_s,variant," ^ Fleet.Report.csv_header ^ "\n"
  ^ String.concat ""
      (List.map
         (fun r ->
            Printf.sprintf "%s,%g,%s,%s\n" r.policy r.rate_per_s r.variant
              (Fleet.Report.csv_row r.summary))
         (run ()))
