(* Ablations of λ-trim's design choices, beyond the paper's own figures:

   - attribute vs statement granularity (the §6.1 design argument);
   - PyCG protection on/off (the §5.1 claim that excluding definitely-
     accessed attributes "speeds up the debloating phase");
   - intra-module parallel DD (§9 future work): critical-path rounds vs
     sequential queries;
   - continuous debloating (§9): oracle queries on re-run with seeds. *)

module SS = Callgraph.Pycg.String_set

let apps_small = [ "dna-visualization"; "lightgbm"; "markdown"; "shapely-numpy" ]

(* --- granularity ---------------------------------------------------------- *)

type granularity_row = {
  g_app : string;
  g_module : string;
  attr_kept : int;
  stmt_kept : int;
  attr_mem_pct : float;
  stmt_mem_pct : float;
}

let granularity_row app =
  let spec = Workloads.Apps.find app in
  let d = Workloads.Codegen.deployment spec in
  let oracle, _ = Trim.Oracle.for_reference d in
  let analysis = Trim.Static_analyzer.analyze d in
  let module_name =
    match spec.Workloads.Apps.libs with
    | l :: _ -> l.Workloads.Libspec.l_name
    | [] -> invalid_arg "app without libraries"
  in
  let protected = Trim.Static_analyzer.protected_attrs analysis ~module_name in
  let d_attr, r_attr =
    Trim.Debloater.debloat_module ~oracle ~protected d ~module_name
  in
  let d_stmt, r_stmt =
    Trim.Debloater.debloat_module_statements ~oracle ~protected d ~module_name
  in
  let mem dep = (Common.measure spec dep).Common.cold.Platform.Lambda_sim.peak_memory_mb in
  let base = mem d in
  { g_app = app;
    g_module = module_name;
    attr_kept = r_attr.Trim.Debloater.attrs_after;
    stmt_kept = r_stmt.Trim.Debloater.attrs_after;
    attr_mem_pct = Common.pct ~before:base ~after:(mem d_attr);
    stmt_mem_pct = Common.pct ~before:base ~after:(mem d_stmt) }

let print_granularity () =
  let rows = List.map granularity_row apps_small in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Common.header
       "Ablation: attribute vs statement granularity (§6.1) — primary module");
  Buffer.add_string b
    (Printf.sprintf "  %-18s %-12s %10s %10s %10s %10s\n" "" "module"
       "attr kept" "stmt kept" "attr mem%" "stmt mem%");
  List.iter
    (fun r ->
       Buffer.add_string b
         (Printf.sprintf "  %-18s %-12s %10d %10d %9.1f%% %9.1f%%\n" r.g_app
            r.g_module r.attr_kept r.stmt_kept r.attr_mem_pct r.stmt_mem_pct))
    rows;
  Buffer.add_string b
    "  Attribute granularity keeps no more (usually fewer) attributes and\n\
    \  never loses memory to statement granularity (per-name from-import \
     filtering).\n";
  Buffer.contents b

(* --- PyCG protection ------------------------------------------------------ *)

let print_protection () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Common.header
       "Ablation: PyCG protection (§5.1) — oracle queries with and without");
  Buffer.add_string b
    (Printf.sprintf "  %-18s %-12s %12s %12s %10s\n" "" "module" "with PyCG"
       "without" "saved");
  List.iter
    (fun app ->
       let spec = Workloads.Apps.find app in
       let d = Workloads.Codegen.deployment spec in
       let oracle, _ = Trim.Oracle.for_reference d in
       let analysis = Trim.Static_analyzer.analyze d in
       let module_name =
         match spec.Workloads.Apps.libs with
         | l :: _ -> l.Workloads.Libspec.l_name
         | [] -> assert false
       in
       let protected =
         Trim.Static_analyzer.protected_attrs analysis ~module_name
       in
       let _, with_pycg =
         Trim.Debloater.debloat_module ~oracle ~protected d ~module_name
       in
       let _, without =
         Trim.Debloater.debloat_module ~oracle ~protected:SS.empty d
           ~module_name
       in
       Buffer.add_string b
         (Printf.sprintf "  %-18s %-12s %12d %12d %9.0f%%\n" app module_name
            with_pycg.Trim.Debloater.oracle_queries
            without.Trim.Debloater.oracle_queries
            (Common.pct
               ~before:(float_of_int without.Trim.Debloater.oracle_queries)
               ~after:(float_of_int with_pycg.Trim.Debloater.oracle_queries))))
    apps_small;
  Buffer.contents b

(* --- parallel DD ---------------------------------------------------------- *)

let print_parallel () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Common.header
       "Ablation: intra-module parallel DD (§9) — measured pool wall-clock");
  let app = Workloads.Suite.tiny_app ~attrs:48 () in
  let file = "site-packages/tinylib/__init__.py" in
  let prog =
    Minipy.Parser.parse ~file
      (Minipy.Vfs.read_exn app.Platform.Deployment.vfs file)
  in
  let candidates = Trim.Attrs.attrs_of_program prog in
  let cores = Domain.recommended_domain_count () in
  Buffer.add_string b
    (Printf.sprintf
       "  queries/rounds are scheduling-invariant (committed-prefix DD);\n\
       \  wall ms/speedup are MEASURED on real domains — this host offers \
        %d core%s\n" cores (if cores = 1 then "" else "s"));
  Buffer.add_string b
    (Printf.sprintf "  %-10s %10s %10s %10s %12s %10s\n" "domains" "queries"
       "+spec" "rounds" "wall ms" "speedup");
  let base_wall = ref 0.0 in
  List.iter
    (fun domains ->
       (* a fresh observation memo per run — the shared global memo would
          answer every run after the first instantly and fake the speedup *)
       let cache = Trim.Oracle.Cache.create () in
       let oracle, _ = Trim.Oracle.for_reference ~cache app in
       let dd_oracle subset =
         oracle (Trim.Debloater.with_restricted app ~file ~keep:subset)
       in
       let t0 = Unix.gettimeofday () in
       let _, s =
         if domains = 1 then
           Trim.Dd.minimize_parallel ~workers:1 ~oracle:dd_oracle candidates
         else
           Parallel.Pool.with_pool ~domains (fun pool ->
               Trim.Dd.minimize_parallel ~pool ~oracle:dd_oracle candidates)
       in
       let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
       if domains = 1 then base_wall := wall_ms;
       Buffer.add_string b
         (Printf.sprintf "  %-10d %10d %10d %10d %12.1f %9.2fx\n" domains
            s.Trim.Dd.p_oracle_queries s.Trim.Dd.p_speculative
            s.Trim.Dd.p_rounds wall_ms
            (if wall_ms > 0.0 then !base_wall /. wall_ms else 0.0)))
    [ 1; 2; 4; 8 ];
  Buffer.contents b

(* --- continuous pipeline -------------------------------------------------- *)

let print_continuous () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Common.header
       "Ablation: continuous debloating (§9) — fresh vs seeded re-run");
  Buffer.add_string b
    (Printf.sprintf "  %-18s %12s %12s %10s %10s\n" "" "fresh" "continuous"
       "saved" "seed hits");
  List.iter
    (fun app ->
       let d = Workloads.Suite.deployment_of app in
       let options = { Trim.Pipeline.default_options with k = 8 } in
       let first = Trim.Pipeline.run ~options d in
       let second = Trim.Pipeline.run_continuous ~options ~previous:first d in
       Buffer.add_string b
         (Printf.sprintf "  %-18s %12d %12d %9.0f%% %6d/%d\n" app
            first.Trim.Pipeline.total_oracle_queries
            second.Trim.Pipeline.base.Trim.Pipeline.total_oracle_queries
            (Common.pct
               ~before:(float_of_int first.Trim.Pipeline.total_oracle_queries)
               ~after:
                 (float_of_int
                    second.Trim.Pipeline.base.Trim.Pipeline.total_oracle_queries))
            second.Trim.Pipeline.seed_hits second.Trim.Pipeline.seeded_modules))
    apps_small;
  Buffer.contents b

(* --- bursty scale-out ------------------------------------------------------

   §1 motivates λ-trim with bursty scale-out workloads: every overflow
   request in a burst pays a full cold start in parallel, so Function
   Initialization is multiplied by the burst width. This experiment replays
   a bursty day through the concurrent pool model and prices both variants. *)

let print_bursts () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Common.header
       "Ablation: bursty scale-out (§1) — concurrent pool, 24h of 40-wide \
        bursts");
  Buffer.add_string b
    (Printf.sprintf "  %-18s %6s %6s %6s %14s %8s\n" "" "cold" "warm" "peak"
       "bill o->t ($)" "saving");
  List.iter
    (fun app ->
       let t = Common.trimmed app in
       let orig = t.Common.original_m.Common.cold in
       let trim = t.Common.trimmed_m.Common.cold in
       let open Platform.Lambda_sim in
       let trace =
         Platform.Trace.bursty ~seed:17 ~burst_size:40 ~burst_rate_per_s:20.0
           ~idle_gap_s:3600.0 ~bursts:24 ~name:"burst-day"
       in
       let bill (r : record) =
         let replay =
           Platform.Trace.replay_concurrent
             ~exec_s:(r.exec_ms /. 1000.0)
             ~cold_extra_s:(r.init_ms /. 1000.0)
             trace ~keep_alive_s:900.0
         in
         let cold_cost =
           Platform.Pricing.invocation_cost Platform.Pricing.aws
             ~duration_ms:(r.init_ms +. r.exec_ms)
             ~memory_mb:r.peak_memory_mb
         in
         let warm_cost =
           Platform.Pricing.invocation_cost Platform.Pricing.aws
             ~duration_ms:r.exec_ms ~memory_mb:r.peak_memory_mb
         in
         ( (float_of_int replay.Platform.Trace.c_cold_starts *. cold_cost)
           +. (float_of_int replay.Platform.Trace.c_warm_starts *. warm_cost),
           replay )
       in
       let orig_bill, replay = bill orig in
       let trim_bill, _ = bill trim in
       Buffer.add_string b
         (Printf.sprintf "  %-18s %6d %6d %6d %6.4f->%6.4f %7.1f%%\n" app
            replay.Platform.Trace.c_cold_starts
            replay.Platform.Trace.c_warm_starts
            replay.Platform.Trace.c_peak_instances orig_bill trim_bill
            (Common.pct ~before:orig_bill ~after:trim_bill)))
    [ "resnet"; "skimage"; "lightgbm"; "spacy"; "huggingface"; "ffmpeg" ];
  Buffer.add_string b
    "  Bursts multiply Function Initialization by the burst width; trimming\n\
    \  the init phase also shrinks the concurrent cold-start pool.\n";
  Buffer.contents b

(* --- provider pricing granularity -----------------------------------------

   §2.1's footnote: AWS bills per ms, GCP rounds to 100 ms, Azure to 1 s.
   Rounding punishes short functions — a 40 ms markdown invocation bills a
   whole second on Azure — which changes both the absolute bill and how much
   of it λ-trim can recover. *)

let print_providers () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Common.header
       "Ablation: provider billing granularity (§2.1) — cold-start cost and \
        lambda-trim saving");
  Buffer.add_string b
    (Printf.sprintf "  %-18s %24s %24s %24s\n" ""
       "AWS $ o->t (sav%)" "GCP $ o->t (sav%)" "Azure $ o->t (sav%)");
  List.iter
    (fun app ->
       let t = Common.trimmed app in
       let orig = t.Common.original_m.Common.cold in
       let trim = t.Common.trimmed_m.Common.cold in
       let open Platform.Lambda_sim in
       let cost pricing (r : record) =
         Platform.Pricing.invocation_cost pricing
           ~duration_ms:(r.init_ms +. r.exec_ms) ~memory_mb:r.peak_memory_mb
       in
       let cell pricing =
         let o = cost pricing orig and tr = cost pricing trim in
         Printf.sprintf "%9.2e->%9.2e (%4.0f%%)" o tr
           (Common.pct ~before:o ~after:tr)
       in
       Buffer.add_string b
         (Printf.sprintf "  %-18s %s %s %s\n" app
            (cell Platform.Pricing.aws) (cell Platform.Pricing.gcp)
            (cell Platform.Pricing.azure)))
    [ "markdown"; "igraph"; "lightgbm"; "skimage"; "resnet" ];
  Buffer.add_string b
    "  Coarser rounding (Azure 1 s) floors short invocations, shrinking the\n\
    \  duration component lambda-trim can recover; memory savings survive.\n";
  Buffer.contents b
