(* Figure 9: ablation of the profiler's scoring method (time / memory /
   combined / random) on dna-visualization, lightgbm and spacy. The paper's
   finding: the combined Eq.-2 method consistently dominates. A small K makes
   the ranking decision actually matter (at K = 20 every method eventually
   reaches all modules in small apps). *)

let apps = [ "dna-visualization"; "lightgbm"; "spacy" ]

let methods =
  [ Trim.Scoring.Time; Trim.Scoring.Memory; Trim.Scoring.Combined;
    Trim.Scoring.Random 42 ]

type cell = {
  cost_pct : float;
  mem_pct : float;
  e2e_pct : float;
}

type row = {
  app : string;
  per_method : (string * cell) list;   (* method name -> improvements *)
}

let ablation_k = 3

let cell_of name scoring =
  let t = Common.trimmed ~scoring ~k:ablation_k name in
  let b = t.Common.original_m.Common.cold in
  let a = t.Common.trimmed_m.Common.cold in
  let open Platform.Lambda_sim in
  { cost_pct = Common.pct ~before:(Common.cost_of b) ~after:(Common.cost_of a);
    mem_pct = Common.pct ~before:b.peak_memory_mb ~after:a.peak_memory_mb;
    e2e_pct = Common.pct ~before:b.e2e_ms ~after:a.e2e_ms }

(* One task per app (--jobs fans them out); the per-app method sweep stays
   sequential inside the task. *)
let run () : row list =
  Common.map_apps
    (fun app ->
       { app;
         per_method =
           List.map
             (fun m -> (Trim.Scoring.method_name m, cell_of app m))
             methods })
    apps

let print () =
  let rows = run () in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Common.header
       (Printf.sprintf
          "Figure 9: scoring-method ablation (K = %d): cost / memory / E2E \
           improvement" ablation_k));
  List.iter
    (fun r ->
       Buffer.add_string b (Printf.sprintf "  %s\n" r.app);
       List.iter
         (fun (m, c) ->
            Buffer.add_string b
              (Printf.sprintf "    %-9s cost %6.1f%%  mem %6.1f%%  e2e %6.1f%%\n"
                 m c.cost_pct c.mem_pct c.e2e_pct))
         r.per_method)
    rows;
  Buffer.contents b

let csv () =
  "app,method,cost_pct,mem_pct,e2e_pct\n"
  ^ String.concat ""
      (List.concat_map
         (fun r ->
            List.map
              (fun (m, c) ->
                 Printf.sprintf "%s,%s,%.2f,%.2f,%.2f\n" r.app m c.cost_pct
                   c.mem_pct c.e2e_pct)
              r.per_method)
         (run ()))
