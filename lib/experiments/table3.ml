(* Table 3: debloating time, attribute counts (post/pre) of a representative
   module, and CRIU checkpoint size (post/pre) for every application.

   Debloating time here is host wall-clock for the OCaml pipeline — orders of
   magnitude below the paper's CPython hours, but the *relative* ordering
   (huggingface/resnet slowest, chdb/markdown fastest) is the comparable
   signal. Attribute counts are scaled ~1:4-8 for the giant modules (see
   DESIGN.md). *)

type row = {
  app : string;
  debloat_s : float;
  oracle_queries : int;
  example_module : string;
  attrs_removed : int;     (* paper's Post column counts removed attributes *)
  attrs_pre : int;
  ckpt_post_mb : float;
  ckpt_pre_mb : float;
}

let row_of name =
  let t = Common.trimmed name in
  let rep = Trim.Pipeline.representative_module t.Common.report in
  let example_module, attrs_removed, attrs_pre =
    match rep with
    | Some m ->
      (m.Trim.Debloater.dm_module,
       List.length m.Trim.Debloater.removed_attrs,
       m.Trim.Debloater.attrs_before)
    | None -> ("-", 0, 0)
  in
  let ckpt mb = Checkpoint.Criu.checkpoint_size_mb ~post_init_memory_mb:mb () in
  let open Platform.Lambda_sim in
  { app = name;
    debloat_s = t.Common.report.Trim.Pipeline.debloat_wall_s;
    oracle_queries = t.Common.report.Trim.Pipeline.total_oracle_queries;
    example_module;
    attrs_removed;
    attrs_pre;
    ckpt_post_mb = ckpt t.Common.trimmed_m.Common.cold.peak_memory_mb;
    ckpt_pre_mb = ckpt t.Common.original_m.Common.cold.peak_memory_mb }

let run () : row list = Common.map_apps row_of Common.all_app_names

let print () =
  let rows = run () in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Common.header
       "Table 3: debloating time (K = 20), example-module attributes, \
        checkpoint size");
  Buffer.add_string b
    (Printf.sprintf "  %-18s %10s %8s %-16s %11s %15s\n" "" "Time(s)" "Queries"
       "Module" "Rmvd/Pre" "Ckpt MB p/p");
  List.iter
    (fun r ->
       Buffer.add_string b
         (Printf.sprintf "  %-18s %10.2f %8d %-16s %5d/%-5d %7.0f/%-7.0f\n"
            r.app r.debloat_s r.oracle_queries r.example_module r.attrs_removed
            r.attrs_pre r.ckpt_post_mb r.ckpt_pre_mb))
    rows;
  let reductions =
    List.filter_map
      (fun r ->
         if r.ckpt_pre_mb > 0.0 then
           Some (Common.pct ~before:r.ckpt_pre_mb ~after:r.ckpt_post_mb)
         else None)
      rows
  in
  Buffer.add_string b
    (Printf.sprintf "  Average checkpoint reduction: %.1f%% (paper: 11%%)\n"
       (Platform.Metrics.mean reductions));
  Buffer.contents b

let csv () =
  "app,debloat_s,oracle_queries,example_module,attrs_removed,attrs_pre,\
   ckpt_post_mb,ckpt_pre_mb\n"
  ^ String.concat ""
      (List.map
         (fun r ->
            Printf.sprintf "%s,%.3f,%d,%s,%d,%d,%.1f,%.1f\n" r.app r.debloat_s
              r.oracle_queries r.example_module r.attrs_removed r.attrs_pre
              r.ckpt_post_mb r.ckpt_pre_mb)
         (run ()))
