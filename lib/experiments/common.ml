(* Shared measurement machinery for the experiment harness.

   Pipeline runs are memoized per (app, scoring method, K): Figures 8-10 and
   Tables 2-3 all reuse the default-configuration debloating result. *)

type measurement = {
  spec : Workloads.Apps.spec;
  deployment : Platform.Deployment.t;
  cold : Platform.Lambda_sim.record;
  warm : Platform.Lambda_sim.record;
}

let first_event (spec : Workloads.Apps.spec) =
  match spec.Workloads.Apps.tests with (_, e) :: _ -> e | [] -> "{}"

(* Table-1-like platform parameters: fast instance provisioning and image
   caching, so E2E ≈ init + exec + small overhead (§2.2). *)
let table1_params =
  { Platform.Lambda_sim.default_params with
    instance_init_ms = 300.0;
    transmission_mb_per_s = 2000.0 }

(* Figure-1-like parameters: the slow-path cold start with full image pull. *)
let fig1_params =
  { Platform.Lambda_sim.default_params with
    instance_init_ms = 5640.0;
    transmission_mb_per_s = 167.0 }

let measure ?(params = table1_params) (spec : Workloads.Apps.spec)
    (deployment : Platform.Deployment.t) : measurement =
  let sim = Platform.Lambda_sim.create ~params deployment in
  let event = first_event spec in
  let cold, warm = Platform.Lambda_sim.measure_cold_and_warm ~event sim in
  { spec; deployment; cold; warm }

(* --- memoized pipeline runs --------------------------------------------- *)

type trimmed = {
  report : Trim.Pipeline.report;
  original_m : measurement;
  trimmed_m : measurement;
}

(* The memo is hit from concurrent per-app tasks when the experiment runner
   fans out (--jobs), so it is mutex-guarded. Concurrent tasks use distinct
   keys (one per app), so a racing duplicate computation cannot happen
   within one experiment; were one to occur across experiments it would
   compute the identical (deterministic) value. *)
let cache : (string, trimmed) Hashtbl.t = Hashtbl.create 64

let cache_lock = Mutex.create ()

let key name scoring k =
  Printf.sprintf "%s/%s/%d" name (Trim.Scoring.method_name scoring) k

(* Forget all memoized pipeline runs. The benchmark harness uses this to time
   the same experiment twice (caching substrate off vs on) from a cold
   start. *)
let reset_cache () =
  Mutex.lock cache_lock;
  Hashtbl.reset cache;
  Mutex.unlock cache_lock

let trimmed ?(scoring = Trim.Scoring.Combined) ?(k = 20) name : trimmed =
  let cache_key = key name scoring k in
  let memo =
    Mutex.lock cache_lock;
    let m = Hashtbl.find_opt cache cache_key in
    Mutex.unlock cache_lock;
    m
  in
  match memo with
  | Some t -> t
  | None ->
    let spec = Workloads.Apps.find name in
    let deployment = Workloads.Codegen.deployment spec in
    let report =
      Trim.Pipeline.run
        ~options:{ Trim.Pipeline.default_options with k; scoring }
        deployment
    in
    let t =
      { report;
        original_m = measure spec deployment;
        trimmed_m = measure spec report.Trim.Pipeline.optimized }
    in
    Mutex.lock cache_lock;
    Hashtbl.replace cache cache_key t;
    Mutex.unlock cache_lock;
    t

(* Fan a per-app computation out on the configured pool (ltrim --jobs);
   plain List.map when none is installed. Order is preserved and every row
   is computed from deterministic virtual measurements, so experiment
   output is byte-identical at any --jobs. *)
let map_apps f names = Parallel.Pool.map_default f names

let all_app_names = Workloads.Suite.names

(* --- formatting helpers -------------------------------------------------- *)

let hr = String.make 78 '-'

let header title =
  Printf.sprintf "\n%s\n%s\n%s\n" hr title hr

let pct = Platform.Metrics.improvement_pct

(* Cost of a single cold invocation at the paper's price point. *)
let cost_of (r : Platform.Lambda_sim.record) = r.Platform.Lambda_sim.cost

(* Cost of 100K invocations as Figure 2 reports. *)
let cost_100k (r : Platform.Lambda_sim.record) =
  r.Platform.Lambda_sim.cost *. 100_000.0
