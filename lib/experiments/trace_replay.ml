(* Large-scale Azure-trace fleet replay: thousands of functions from the
   Shahrad-shaped workload model ([Platform.Azure_trace.specs]), each
   replayed as original vs lambda-trim-optimized under two keep-alive
   policies, on the sharded streaming engine ([Fleet.Sharded]).

   This is the paper's §8 cost simulation pushed to production scale:
   instead of matching a handful of benchmark apps onto trace functions,
   every trace function becomes an app whose trimming effect is modeled by
   the measured resnet ratios (Function-Initialization and footprint
   shrink), with the §7 fallback (1% of requests re-invoke the original
   image) charged against the trimmed variant.

   Determinism: specs, traces, and per-app fault draws are pure functions
   of [seed]; the sharded reduction folds per-app accumulators in global
   app order. The CSV is therefore byte-identical at any --shards/--jobs
   combination — CI diffs it. Aggregate throughput is printed (wall clock,
   not part of the CSV). *)

let seed = 2025
let default_n_functions = 1600
let default_horizon_s = 10_800.0 (* 3 h *)
let fallback_rate = 0.01

let policies =
  [ ("fixed-ttl", Fleet.Pool.Fixed_ttl { keep_alive_s = 600.0 });
    ("adaptive",
     Fleet.Pool.Adaptive { min_s = 60.0; max_s = 900.0; percentile = 99.0 }) ]

(* measured trimming ratios from the corpus app the paper headlines *)
let ratios () =
  let t = Common.trimmed "resnet" in
  let o = t.Common.original_m.Common.cold in
  let m = t.Common.trimmed_m.Common.cold in
  let init_ratio =
    m.Platform.Lambda_sim.init_ms /. o.Platform.Lambda_sim.init_ms
  in
  let mem_ratio =
    m.Platform.Lambda_sim.peak_memory_mb
    /. o.Platform.Lambda_sim.peak_memory_mb
  in
  (init_ratio, mem_ratio)

let apps ~n_functions ~horizon_s () : Fleet.Sharded.app list =
  let init_ratio, mem_ratio = ratios () in
  let specs = Platform.Azure_trace.specs ~n_functions ~horizon_s ~seed () in
  List.map
    (fun (s : Platform.Azure_trace.fn_spec) ->
       let original =
         { Fleet.Router.exec_s = s.Platform.Azure_trace.fs_exec_ms /. 1000.0;
           func_init_s = s.Platform.Azure_trace.fs_cold_init_ms /. 1000.0;
           instance_init_s =
             s.Platform.Azure_trace.fs_instance_init_ms /. 1000.0;
           memory_mb = s.Platform.Azure_trace.fs_memory_mb }
       in
       let trimmed =
         { original with
           Fleet.Router.func_init_s =
             original.Fleet.Router.func_init_s *. init_ratio;
           memory_mb = original.Fleet.Router.memory_mb *. mem_ratio }
       in
       let fn_id = s.Platform.Azure_trace.fs_id in
       let variants =
         List.concat_map
           (fun (pname, pol) ->
              [ { Fleet.Sharded.v_group = pname ^ "/original";
                  v_cfg = Fleet.Router.default_config ~profile:original pol };
                { Fleet.Sharded.v_group = pname ^ "/trimmed";
                  v_cfg =
                    { (Fleet.Router.default_config ~profile:trimmed pol) with
                      Fleet.Router.fallback =
                        Some
                          (Fleet.Scenario.fallback ~rate:fallback_rate
                             ~seed:(seed + 1 + fn_id) ~original ()) } } ])
           policies
       in
       { Fleet.Sharded.app_id = fn_id;
         app_trace =
           (fun () -> Platform.Azure_trace.trace_of_spec ~horizon_s s);
         app_variants = variants })
    specs

type run_result = {
  groups : Fleet.Sharded.group list;
  n_functions : int;
  horizon_s : float;
  wall_s : float;
  events : int;
}

let run ?(n_functions = default_n_functions)
    ?(horizon_s = default_horizon_s) ?shards () : run_result =
  let apps = apps ~n_functions ~horizon_s () in
  let t0 = Obs.Span.wall_ms () in
  let groups = Fleet.Sharded.run ?shards apps in
  let wall_s = (Obs.Span.wall_ms () -. t0) /. 1000.0 in
  let events =
    List.fold_left
      (fun acc (g : Fleet.Sharded.group) ->
         acc + g.Fleet.Sharded.g_summary.Fleet.Report.attempts)
      0 groups
  in
  { groups; n_functions; horizon_s; wall_s; events }

(* print and csv share one full-scale run *)
let memo : run_result option ref = ref None

let results () =
  match !memo with
  | Some r -> r
  | None ->
    let r = run () in
    memo := Some r;
    r

let split_label label =
  match String.index_opt label '/' with
  | Some i ->
    (String.sub label 0 i,
     String.sub label (i + 1) (String.length label - i - 1))
  | None -> (label, label)

let csv () =
  let r = results () in
  let b = Buffer.create 4096 in
  Buffer.add_string b ("policy,variant,apps," ^ Fleet.Report.csv_header ^ "\n");
  List.iter
    (fun (g : Fleet.Sharded.group) ->
       let policy, variant = split_label g.Fleet.Sharded.g_label in
       Buffer.add_string b
         (Printf.sprintf "%s,%s,%d,%s\n" policy variant
            g.Fleet.Sharded.g_apps
            (Fleet.Report.csv_row g.Fleet.Sharded.g_summary)))
    r.groups;
  Buffer.contents b

let print () =
  let r = results () in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Common.header
       (Printf.sprintf
          "Azure-trace fleet replay: %d functions, %.0f h horizon, original \
           vs trimmed x keep-alive policy (sharded streaming engine)"
          r.n_functions (r.horizon_s /. 3600.0)));
  Buffer.add_string b (Fleet.Report.table_header ^ "\n");
  List.iter
    (fun (g : Fleet.Sharded.group) ->
       Buffer.add_string b
         (Fleet.Report.table_row g.Fleet.Sharded.g_summary ^ "\n"))
    r.groups;
  let find label =
    List.find
      (fun (g : Fleet.Sharded.group) ->
         String.equal g.Fleet.Sharded.g_label label)
      r.groups
  in
  Buffer.add_string b "\n  trimming effect per policy:\n";
  List.iter
    (fun (pname, _) ->
       let o = (find (pname ^ "/original")).Fleet.Sharded.g_summary in
       let t = (find (pname ^ "/trimmed")).Fleet.Sharded.g_summary in
       Buffer.add_string b
         (Printf.sprintf
            "    %-10s cost %6.1f%%  p99 %6.1f%%  cold-starts %d -> %d\n"
            pname
            (Common.pct ~before:o.Fleet.Report.cost_usd
               ~after:t.Fleet.Report.cost_usd)
            (Common.pct ~before:o.Fleet.Report.p99_ms
               ~after:t.Fleet.Report.p99_ms)
            o.Fleet.Report.cold t.Fleet.Report.cold))
    policies;
  let requests_per_variant =
    match r.groups with
    | g :: _ -> g.Fleet.Sharded.g_requests
    | [] -> 0
  in
  Buffer.add_string b
    (Printf.sprintf
       "\n  %d requests per variant (%d routed total), %d primary attempts\n"
       requests_per_variant
       (List.fold_left
          (fun acc (g : Fleet.Sharded.group) ->
             acc + g.Fleet.Sharded.g_requests)
          0 r.groups)
       r.events);
  Buffer.add_string b
    (Printf.sprintf
       "  wall %.1f s, %.2f M requests/s aggregate (%d shard(s), %d job(s))\n"
       r.wall_s
       (float_of_int
          (List.fold_left
             (fun acc (g : Fleet.Sharded.group) ->
                acc + g.Fleet.Sharded.g_requests)
             0 r.groups)
        /. Float.max 1e-9 r.wall_s /. 1e6)
       (Fleet.Sharded.shard_count ())
       (Parallel.Pool.jobs ()));
  Buffer.contents b
