(* Experiment registry: id -> printer. Shared by `bin/ltrim experiments`
   and the benchmark harness. Order follows the paper. *)

type entry = {
  id : string;
  description : string;
  print : unit -> string;
  csv : (unit -> string) option;  (* machine-readable rows, when structured *)
}

let all : entry list =
  [ { id = "fig1"; description = "cold/warm phase breakdown (resnet)";
      print = Fig1.print; csv = Some Fig1.csv };
    { id = "table1"; description = "benchmarked applications";
      print = Table1.print; csv = Some Table1.csv };
    { id = "fig2"; description = "billed duration and cost of cold starts";
      print = Fig2.print; csv = Some Fig2.csv };
    { id = "fig8"; description = "lambda-trim latency/memory/cost improvements";
      print = Fig8.print; csv = Some Fig8.csv };
    { id = "table2"; description = "comparison with FaaSLight and Vulture";
      print = Table2.print; csv = Some Table2.csv };
    { id = "fig9"; description = "scoring-method ablation"; print = Fig9.print; csv = Some Fig9.csv };
    { id = "table3"; description = "debloating time and attribute counts";
      print = Table3.print; csv = Some Table3.csv };
    { id = "fig10"; description = "varying K"; print = Fig10.print; csv = Some Fig10.csv };
    { id = "fig11"; description = "warm-start impact"; print = Fig11.print; csv = Some Fig11.csv };
    { id = "fig12"; description = "comparison with checkpoint/restore";
      print = Fig12.print; csv = Some Fig12.csv };
    { id = "fig13"; description = "SnapStart cost share CDF (Azure trace)";
      print = Fig13.print; csv = Some Fig13.csv };
    { id = "fig14"; description = "24h SnapStart cost simulation";
      print = Fig14.print; csv = Some Fig14.csv };
    { id = "table4"; description = "fallback overhead"; print = Table4.print; csv = Some Table4.csv };
    { id = "lazy";
      description =
        "three-way optimizer comparison: DD vs lazy loading vs combined";
      print = Lazy_exp.print; csv = Some Lazy_exp.csv };
    { id = "fleet";
      description = "fleet simulation: cost/p99 vs arrival rate and policy";
      print = Fleet_exp.print; csv = Some Fleet_exp.csv };
    { id = "trace-replay";
      description =
        "1M-request Azure-trace replay on the sharded streaming engine";
      print = Trace_replay.print; csv = Some Trace_replay.csv };
    { id = "resilience";
      description =
        "availability/amplification/cost under faults x resilience policy";
      print = Resilience_exp.print; csv = Some Resilience_exp.csv };
    { id = "durability";
      description =
        "crash/resume journal and flaky-oracle quorum sweeps";
      print = Durability.print; csv = Some Durability.csv };
    { id = "incremental";
      description =
        "incremental re-debloating: warm vs cold over a synthetic history";
      print = Incremental.print; csv = Some Incremental.csv };
    { id = "abl-granularity";
      description = "attribute vs statement granularity ablation";
      print = Ablations.print_granularity; csv = None };
    { id = "abl-protection";
      description = "PyCG protection query-savings ablation";
      print = Ablations.print_protection; csv = None };
    { id = "abl-parallel";
      description = "parallel DD measured multicore speedup ablation";
      print = Ablations.print_parallel; csv = None };
    { id = "abl-continuous";
      description = "continuous debloating query-savings ablation";
      print = Ablations.print_continuous; csv = None };
    { id = "abl-bursts";
      description = "bursty scale-out cost ablation (concurrent pool)";
      print = Ablations.print_bursts; csv = None };
    { id = "abl-providers";
      description = "provider billing-granularity ablation";
      print = Ablations.print_providers; csv = None } ]

let find id = List.find_opt (fun e -> String.equal e.id id) all

let ids = List.map (fun e -> e.id) all
