(* Resilience experiment: availability, retry amplification, and Eq.-1 cost
   under injected faults, original vs lambda-trim-optimized deployment.

   Sweeps fault intensity x resilience policy over a fixed-TTL fleet. Three
   deployment variants: the original image, the trimmed image with the
   paper's 1% removal-hit rate, and a "regressed" trimmed image whose
   removal-hit rate has spiked to 30% — the §7 failure mode the circuit
   breaker exists for: with the breaker armed it opens and sheds traffic
   straight to the original image instead of paying the trimmed-then-retry
   double invocation on nearly every request. Fully deterministic per
   seed. *)

let app = "resnet"
let rate_per_s = 1.0
let duration_s = 1800.0
let seed = 2025
let policy = Fleet.Pool.Fixed_ttl { keep_alive_s = 600.0 }

(* One knob scales all fault classes: at intensity f, cold inits fail with
   probability f, invocations crash with f/2, error transiently with f, and
   released instances are churned with f/2. *)
let fault_intensities = [ 0.0; 0.02; 0.1 ]

let faults_of intensity =
  { Fleet.Faults.seed = seed + 2;
    init_failure_rate = intensity;
    crash_rate = intensity /. 2.0;
    transient_error_rate = intensity;
    churn_rate = intensity /. 2.0 }

let breaker_cfg =
  { Fleet.Resilience.Breaker.error_threshold = 0.2;
    window = 50;
    min_samples = 20;
    cooldown_s = 60.0 }

let resilience_policies ~with_breaker =
  [ ("none", Fleet.Resilience.none);
    ("retry3",
     { Fleet.Resilience.none with
       Fleet.Resilience.retry = Some Fleet.Resilience.default_retry;
       request_timeout_s = 120.0 });
    ("retry3+breaker+hedge",
     { Fleet.Resilience.retry = Some Fleet.Resilience.default_retry;
       request_timeout_s = 120.0;
       breaker = (if with_breaker then Some breaker_cfg else None);
       hedge = Some { Fleet.Resilience.hedge_delay_s = 0.5 } }) ]

type row = {
  fault_intensity : float;
  resilience : string;
  variant : string;  (* "original" | "trimmed" | "trimmed-regressed" *)
  summary : Fleet.Report.summary;
}

let run () : row list =
  let t = Common.trimmed app in
  let original =
    Fleet.Scenario.profile_of_record t.Common.original_m.Common.cold
  in
  let trimmed =
    Fleet.Scenario.profile_of_record t.Common.trimmed_m.Common.cold
  in
  let trace =
    Platform.Trace.poisson ~seed ~rate_per_s ~duration_s
      ~name:(Printf.sprintf "poisson-%g" rate_per_s)
  in
  (* the breaker needs a fallback pool to shed to, so the original-image
     variant never arms it *)
  let variants =
    [ ("original", original, None, false);
      ("trimmed", trimmed,
       Some (Fleet.Scenario.fallback ~rate:0.01 ~seed:(seed + 1) ~original ()),
       true);
      ("trimmed-regressed", trimmed,
       Some (Fleet.Scenario.fallback ~rate:0.3 ~seed:(seed + 1) ~original ()),
       true) ]
  in
  List.concat_map
    (fun intensity ->
       List.concat_map
         (fun (variant, profile, fallback, fb_configured) ->
            List.map
              (fun (rname, rpolicy) ->
                 let rpolicy =
                   if fb_configured then rpolicy
                   else
                     { rpolicy with Fleet.Resilience.breaker = None }
                 in
                 let cfg =
                   { (Fleet.Router.default_config ~profile policy) with
                     Fleet.Router.fallback;
                     faults = faults_of intensity;
                     resilience = rpolicy }
                 in
                 let label =
                   Printf.sprintf "f=%g %s %s" intensity rname variant
                 in
                 { fault_intensity = intensity;
                   resilience = rname;
                   variant;
                   summary =
                     Fleet.Report.summarize ~label cfg
                       (Fleet.Router.run cfg trace) })
              (resilience_policies ~with_breaker:fb_configured))
         variants)
    fault_intensities

let print () =
  let rows = run () in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Common.header
       (Printf.sprintf
          "Resilience (%s): availability, retry amplification, and cost \
           under injected faults (rate %g/s)"
          app rate_per_s));
  Buffer.add_string b (Fleet.Report.table_header ^ "\n");
  List.iter
    (fun r -> Buffer.add_string b (Fleet.Report.table_row r.summary ^ "\n"))
    rows;
  Buffer.add_string b
    "\n  availability / retry amplification / cost by policy:\n";
  List.iter
    (fun r ->
       let s = r.summary in
       Buffer.add_string b
         (Printf.sprintf
            "    f=%-5g %-22s %-18s avail %6.2f%%  amp %5.3f  shed %5d  \
             cost $%.6f\n"
            r.fault_intensity r.resilience r.variant
            (100.0 *. s.Fleet.Report.availability)
            s.Fleet.Report.retry_amplification s.Fleet.Report.shed
            s.Fleet.Report.cost_usd))
    rows;
  Buffer.contents b

let csv () =
  "fault_intensity,resilience,variant," ^ Fleet.Report.csv_header ^ "\n"
  ^ String.concat ""
      (List.map
         (fun r ->
            Printf.sprintf "%g,%s,%s,%s\n" r.fault_intensity r.resilience
              r.variant
              (Fleet.Report.csv_row r.summary))
         (run ()))
