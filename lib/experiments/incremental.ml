(* Incremental re-debloating experiment: replay a synthetic commit history
   over the Figure-9 corpus and measure warm (manifest-driven) vs cold
   (from-scratch) re-debloating.

   Revision r edits one app — round-robin over the corpus — by appending a
   fresh top-level assignment to its representative module file; edits
   accumulate, so every revision sees the full history. Each revision then
   re-debloats all three apps twice: cold (no baseline) and warm (baseline =
   that app's previous manifest, chained across revisions). The headline
   ratio is fresh oracle executions cold/warm — the ISSUE's >= 10x target —
   and `identical` asserts the warm output image and per-module keep-sets
   are bit-identical to the cold run's.

   Every run uses a private observation memo, so cold runs never feed warm
   runs (and vice versa); manifests round-trip through disk via
   [manifest_path]/[Manifest.load]. The wall-clock columns are last in the
   CSV and documented non-deterministic — CI diffs `cut -d, -f1-13`. *)

let apps = [ "dna-visualization"; "lightgbm"; "spacy" ]

let k = 3

let revisions = 4

type row = {
  revision : int;
  app : string;
  edited : bool;          (* was this app the one edited at this revision? *)
  edited_module : string; (* module whose file changed; "-" otherwise *)
  modules : int;
  replayed : int;         (* baseline digests unchanged: zero queries *)
  seeded : int;           (* stale baseline entries warm-started *)
  seed_hits : int;
  cold_queries : int;
  warm_queries : int;
  cold_fresh : int;       (* oracle executions not served by the memo *)
  warm_fresh : int;
  identical : bool;       (* warm image + keep-sets == cold run's *)
  cold_wall_s : float;
  warm_wall_s : float;
}

(* Returns the report plus the run's fresh oracle executions — misses of
   its own private memo (the report's [caches] field counts the global
   memo, which private-memo runs never touch). Pinned to jobs = 1 like the
   durability experiment: DD *query* counters are jobs-invariant, but a
   parallel search also executes speculative queries past the committed
   prefix, which would make the fresh-execution columns jobs-dependent. *)
let run_pipeline ?baseline ?manifest_path name d =
  let cache = Trim.Oracle.Cache.create () in
  let r =
    Trim.Pipeline.run
      ~options:{ Trim.Pipeline.default_options with
                 k; baseline; manifest_path; oracle_cache = Some cache }
      ~jobs:1
      { d with Platform.Deployment.name }
  in
  (r, Trim.Oracle.Cache.misses cache)

(* The image plus every module keep-set: what warm must reproduce bit for
   bit. Query counters are deliberately excluded — differing is the point. *)
let fingerprint (r : Trim.Pipeline.report) =
  String.concat "|"
    (Minipy.Vfs.image_digest r.Trim.Pipeline.optimized.Platform.Deployment.vfs
     :: List.map
          (fun (m : Trim.Debloater.module_result) ->
             m.Trim.Debloater.dm_module ^ ":"
             ^ String.concat "+" m.Trim.Debloater.removed_attrs)
          r.Trim.Pipeline.module_results)

(* Append a revision marker to [file] on a fresh overlay — the one-line
   commit of the synthetic history. *)
let edit d ~file ~revision =
  let d' = Platform.Deployment.overlay d in
  let src = Minipy.Vfs.read_exn d'.Platform.Deployment.vfs file in
  Minipy.Vfs.add_file d'.Platform.Deployment.vfs file
    (Printf.sprintf "%s\n_incremental_rev_%d = %d\n" src revision revision);
  d'

(* The app's representative module for edits: its first file-backed
   ranked module (fixed once, from the priming run). *)
let edit_target (r : Trim.Pipeline.report) =
  match
    List.find_opt
      (fun (m : Trim.Debloater.module_result) ->
         m.Trim.Debloater.dm_file <> "<none>")
      r.Trim.Pipeline.module_results
  with
  | Some m -> (m.Trim.Debloater.dm_module, m.Trim.Debloater.dm_file)
  | None -> invalid_arg "incremental: corpus app has no file-backed module"

type app_state = {
  mutable current : Platform.Deployment.t;  (* edits accumulated so far *)
  target_module : string;
  target_file : string;
  manifest_path : string;                   (* previous revision's manifest *)
}

let rows =
  lazy
    (let root = Filename.temp_dir "ltrim-incremental" "" in
     let states =
       List.map
         (fun app ->
            let d = Workloads.Suite.deployment_of app in
            let path = Filename.concat root (app ^ ".manifest") in
            (* priming run (revision 0): cold, writes the first manifest *)
            let r, _ = run_pipeline ~manifest_path:path app d in
            let target_module, target_file = edit_target r in
            (app, { current = d; target_module; target_file;
                    manifest_path = path }))
         apps
     in
     List.concat_map
       (fun revision ->
          let edited_app = List.nth apps ((revision - 1) mod List.length apps) in
          let st = List.assoc edited_app states in
          st.current <- edit st.current ~file:st.target_file ~revision;
          List.map
            (fun (app, st) ->
               let cold, cold_fresh = run_pipeline app st.current in
               let baseline = Trim.Manifest.load ~path:st.manifest_path in
               assert (baseline <> None);
               let warm, warm_fresh =
                 run_pipeline ?baseline ~manifest_path:st.manifest_path app
                   st.current
               in
               { revision; app;
                 edited = String.equal app edited_app;
                 edited_module =
                   (if String.equal app edited_app then st.target_module
                    else "-");
                 modules = List.length warm.Trim.Pipeline.module_results;
                 replayed = List.length warm.Trim.Pipeline.replayed_modules;
                 seeded = warm.Trim.Pipeline.warm_seeded;
                 seed_hits = warm.Trim.Pipeline.warm_seed_hits;
                 cold_queries = cold.Trim.Pipeline.total_oracle_queries;
                 warm_queries = warm.Trim.Pipeline.total_oracle_queries;
                 cold_fresh; warm_fresh;
                 identical =
                   String.equal (fingerprint cold) (fingerprint warm);
                 cold_wall_s = cold.Trim.Pipeline.debloat_wall_s;
                 warm_wall_s = warm.Trim.Pipeline.debloat_wall_s })
            states)
       (List.init revisions (fun i -> i + 1)))

let totals rs =
  List.fold_left
    (fun (c, w) r -> (c + r.cold_fresh, w + r.warm_fresh))
    (0, 0) rs

let print () =
  let rs = Lazy.force rows in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Common.header
       (Printf.sprintf
          "Incremental re-debloating: %d-revision synthetic history over \
           %s (K = %d)"
          revisions (String.concat ", " apps) k));
  Buffer.add_string b
    (Printf.sprintf "  %-4s %-18s %-8s %-9s %-7s %-10s %-11s %-11s %s\n"
       "rev" "app" "edited" "replayed" "seeded" "cold_fresh" "warm_fresh"
       "identical" "speedup");
  List.iter
    (fun r ->
       Buffer.add_string b
         (Printf.sprintf "  %-4d %-18s %-8s %5d/%-3d %-7d %-10d %-11d %-11s %s\n"
            r.revision r.app
            (if r.edited then "yes" else "no")
            r.replayed r.modules r.seeded r.cold_fresh r.warm_fresh
            (if r.identical then "yes" else "NO")
            (if r.warm_fresh = 0 then "inf"
             else
               Printf.sprintf "%.1fx"
                 (float_of_int r.cold_fresh /. float_of_int r.warm_fresh))))
    rs;
  let cold, warm = totals rs in
  Buffer.add_string b
    (Printf.sprintf
       "  total fresh oracle executions: cold %d, warm %d (%.1fx fewer)\n"
       cold warm
       (if warm = 0 then Float.infinity
        else float_of_int cold /. float_of_int warm));
  Buffer.contents b

let csv () =
  "revision,app,edited,edited_module,modules,replayed,seeded,seed_hits,\
   cold_queries,warm_queries,cold_fresh,warm_fresh,identical,\
   cold_wall_ms,warm_wall_ms\n"
  ^ String.concat ""
      (List.map
         (fun r ->
            Printf.sprintf "%d,%s,%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.1f,%.1f\n"
              r.revision r.app
              (if r.edited then 1 else 0)
              r.edited_module r.modules r.replayed r.seeded r.seed_hits
              r.cold_queries r.warm_queries r.cold_fresh r.warm_fresh
              (if r.identical then 1 else 0)
              (r.cold_wall_s *. 1000.0) (r.warm_wall_s *. 1000.0))
         (Lazy.force rows))
