(* Three-way optimizer comparison on the fig9 corpus: λ-trim DD debloating
   vs profile-guided lazy loading vs lazy-over-trimmed (combined), measured
   on the Table-1 platform parameters. DD deletes unused attributes —
   shrinking memory and cost but requiring the §7 fallback safety net —
   while lazy loading removes nothing (no fallback possible by
   construction) and attacks only the cold-start Function Initialization
   floor; combined stacks the two. The module is named Lazy_exp because
   [Lazy] is an OCaml stdlib module. *)

let apps = [ "dna-visualization"; "lightgbm"; "spacy" ]

type row = {
  app : string;
  variant : string;          (* original | dd | lazy | combined *)
  attrs_removed : int;       (* nonzero only for dd/combined *)
  lazified : int;            (* stubbed import roots *)
  cold_init_ms : float;
  cold_e2e_ms : float;
  cold_billed_ms : float;
  warm_exec_ms : float;
  warm_billed_ms : float;
  mem_mb : float;
  cost_100k_usd : float;     (* 100K cold invocations, Figure-2 style *)
}

let row_of ~app ~variant ~attrs_removed ~lazified
    (m : Common.measurement) : row =
  let open Platform.Lambda_sim in
  { app;
    variant;
    attrs_removed;
    lazified;
    cold_init_ms = m.Common.cold.init_ms;
    cold_e2e_ms = m.Common.cold.e2e_ms;
    cold_billed_ms = m.Common.cold.billed_ms;
    warm_exec_ms = m.Common.warm.exec_ms;
    warm_billed_ms = m.Common.warm.billed_ms;
    mem_mb = m.Common.cold.peak_memory_mb;
    cost_100k_usd = Common.cost_100k m.Common.cold }

(* One task per app (--jobs fans them out). DD results come from the
   memoized default-configuration pipeline run shared with fig8/table2;
   lazy rewrites are deterministic and their oracle validation hits the
   global observation memo. *)
let rows_for app : row list =
  let t = Common.trimmed app in
  let spec = t.Common.original_m.Common.spec in
  let original_d = t.Common.original_m.Common.deployment in
  let attrs = Trim.Pipeline.attrs_removed t.Common.report in
  let lz = Trim.Lazy_loader.optimize original_d in
  let lzc =
    Trim.Lazy_loader.optimize t.Common.report.Trim.Pipeline.optimized
  in
  [ row_of ~app ~variant:"original" ~attrs_removed:0 ~lazified:0
      t.Common.original_m;
    row_of ~app ~variant:"dd" ~attrs_removed:attrs ~lazified:0
      t.Common.trimmed_m;
    row_of ~app ~variant:"lazy" ~attrs_removed:0
      ~lazified:(List.length lz.Trim.Lazy_loader.lz_lazified)
      (Common.measure spec lz.Trim.Lazy_loader.lz_optimized);
    row_of ~app ~variant:"combined" ~attrs_removed:attrs
      ~lazified:(List.length lzc.Trim.Lazy_loader.lz_lazified)
      (Common.measure spec lzc.Trim.Lazy_loader.lz_optimized) ]

let run () : row list = List.concat (Common.map_apps rows_for apps)

let print () =
  let rows = run () in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Common.header
       "Three-way optimizer comparison: DD debloating vs lazy loading vs \
        combined");
  let current = ref "" in
  List.iter
    (fun r ->
       if r.app <> !current then begin
         current := r.app;
         Buffer.add_string b (Printf.sprintf "  %s\n" r.app)
       end;
       Buffer.add_string b
         (Printf.sprintf
            "    %-8s  init %8.2f ms  e2e %8.2f ms  warm %7.2f ms  mem \
             %7.2f MB  $%.4f/100K  (-%d attrs, %d lazy)\n"
            r.variant r.cold_init_ms r.cold_e2e_ms r.warm_exec_ms r.mem_mb
            r.cost_100k_usd r.attrs_removed r.lazified))
    rows;
  Buffer.add_string b
    "\n  lazy removes nothing: zero attrs removed means no fallback \
     re-invocation is possible.\n";
  Buffer.contents b

let csv () =
  "app,variant,attrs_removed,lazified,cold_init_ms,cold_e2e_ms,\
   cold_billed_ms,warm_exec_ms,warm_billed_ms,mem_mb,cost_100k_usd\n"
  ^ String.concat ""
      (List.map
         (fun r ->
            Printf.sprintf "%s,%s,%d,%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.4f\n"
              r.app r.variant r.attrs_removed r.lazified r.cold_init_ms
              r.cold_e2e_ms r.cold_billed_ms r.warm_exec_ms r.warm_billed_ms
              r.mem_mb r.cost_100k_usd)
         (run ()))
