(* Table 2: comparison with FaaSLight and Vulture on the FaaSLight subset.
   The paper compares against those tools' *reported* numbers; here both
   baselines are implemented, so the table shows measured improvements for
   all three systems side by side with the paper's reported λ-trim column. *)

type row = {
  app : string;
  mem_faaslight_pct : float;
  mem_trim_pct : float;
  import_faaslight_pct : float;
  import_trim_pct : float;
  import_vulture_pct : float;
  e2e_faaslight_pct : float;
  e2e_trim_pct : float;
}

(* Paper-reported λ-trim improvements, for the fidelity column. *)
let paper_trim_import =
  [ ("huggingface", 10.21); ("image-resize", 1.82); ("lightgbm", 54.81);
    ("lxml", 41.58); ("scikit", 19.60); ("skimage", 42.41);
    ("tensorflow", 15.58); ("wine", 13.73) ]

let row_of name =
  let spec = Workloads.Apps.find name in
  let original = Workloads.Codegen.deployment spec in
  let base = (Common.measure spec original).Common.cold in
  let t = Common.trimmed name in
  let trim = t.Common.trimmed_m.Common.cold in
  let fl_dep, _ = Baselines.Faaslight.optimize original in
  let fl = (Common.measure spec fl_dep).Common.cold in
  let v_dep, _ = Baselines.Vulture.optimize original in
  let v = (Common.measure spec v_dep).Common.cold in
  let open Platform.Lambda_sim in
  { app = name;
    mem_faaslight_pct =
      Common.pct ~before:base.peak_memory_mb ~after:fl.peak_memory_mb;
    mem_trim_pct =
      Common.pct ~before:base.peak_memory_mb ~after:trim.peak_memory_mb;
    import_faaslight_pct = Common.pct ~before:base.init_ms ~after:fl.init_ms;
    import_trim_pct = Common.pct ~before:base.init_ms ~after:trim.init_ms;
    import_vulture_pct = Common.pct ~before:base.init_ms ~after:v.init_ms;
    e2e_faaslight_pct = Common.pct ~before:base.e2e_ms ~after:fl.e2e_ms;
    e2e_trim_pct = Common.pct ~before:base.e2e_ms ~after:trim.e2e_ms }

let run () : row list = Common.map_apps row_of Workloads.Apps.faaslight_apps

let print () =
  let rows = run () in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Common.header
       "Table 2: measured improvements — FaaSLight impl / Vulture impl / \
        lambda-trim (paper lambda-trim import in last column)");
  Buffer.add_string b
    (Printf.sprintf "  %-14s %11s %11s | %11s %11s %11s | %9s %9s | %9s\n" ""
       "Mem FL%" "Mem LT%" "Imp FL%" "Imp Vult%" "Imp LT%" "E2E FL%" "E2E LT%"
       "ppr LT%");
  List.iter
    (fun r ->
       let paper_lt =
         Option.value (List.assoc_opt r.app paper_trim_import) ~default:0.0
       in
       Buffer.add_string b
         (Printf.sprintf
            "  %-14s %10.2f%% %10.2f%% | %10.2f%% %10.2f%% %10.2f%% | %8.2f%% \
             %8.2f%% | %8.2f%%\n"
            r.app r.mem_faaslight_pct r.mem_trim_pct r.import_faaslight_pct
            r.import_vulture_pct r.import_trim_pct r.e2e_faaslight_pct
            r.e2e_trim_pct paper_lt))
    rows;
  Buffer.contents b

let csv () =
  "app,mem_faaslight_pct,mem_trim_pct,import_faaslight_pct,import_vulture_pct,\
   import_trim_pct,e2e_faaslight_pct,e2e_trim_pct\n"
  ^ String.concat ""
      (List.map
         (fun r ->
            Printf.sprintf "%s,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n" r.app
              r.mem_faaslight_pct r.mem_trim_pct r.import_faaslight_pct
              r.import_vulture_pct r.import_trim_pct r.e2e_faaslight_pct
              r.e2e_trim_pct)
         (run ()))
