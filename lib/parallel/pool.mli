(** Fixed-size [Domain]-based work pool with a deterministic reduction
    contract.

    [create ~domains:n] builds a pool whose total parallelism is [n]: it
    spawns [n - 1] worker domains and the calling domain participates in
    every {!map} (it executes queued tasks while waiting for its job), so
    [n = 1] degrades to purely sequential execution through the same code
    path — no worker domains, no cross-domain communication.

    Determinism contract: {!map} and {!map_batches} always combine results
    in submission order. Scheduling decides only {e when} each task runs,
    never what the combined value is, so callers that are themselves
    deterministic produce scheduling-independent output.

    Exception contract: if tasks raise, every task of the job still settles
    (no cancellation — later results are not lost), then the exception of
    the {e lowest-indexed} failing task is re-raised in the submitter, with
    its backtrace. This keeps failure behaviour scheduling-independent too.

    Nested submission is safe: a task may itself call {!map} on the same
    pool. The inner job's submitter executes queued tasks (its own or other
    jobs') while waiting, so progress never depends on a free worker.

    Observability: the pool feeds a [parallel.pool.*] metrics family in
    [Obs.Metrics.global] — [tasks] (executed), [steals] (tasks executed by
    a worker domain rather than the submitting one), [waits] (times a
    domain blocked for lack of runnable work), [jobs] (map calls), and
    per-slot busy-time histograms [busy_ms.w<slot>] (slot 0 is the
    submitting/caller domain). Each worker domain also reserves a private
    wall-clock track id for spans (see {!obs_wall_track}), keeping traces
    well-nested per track under concurrency. *)

type t

(** [create ~domains] spawns [domains - 1] workers.
    @raise Invalid_argument if [domains < 1]. *)
val create : domains:int -> t

(** Total parallelism (the [~domains] given to {!create}). *)
val size : t -> int

(** [map t f xs] applies [f] to every element of [xs] on the pool and
    returns the results in the order of [xs]. See the determinism and
    exception contracts above. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [map_batches t ~batch f xs] chunks [xs] into groups of at most [batch]
    elements, maps each chunk as one task (amortising per-task overhead for
    cheap [f]), and returns the flattened results in order.
    @raise Invalid_argument if [batch < 1]. *)
val map_batches : t -> batch:int -> ('a -> 'b) -> 'a list -> 'b list

(** Graceful teardown: lets queued tasks drain, then joins the workers.
    Idempotent. Submitting to a shut-down pool raises [Invalid_argument].
    Must not be called while a {!map} is in flight. *)
val shutdown : t -> unit

(** [with_pool ~domains f] = create, run [f pool], always shutdown. *)
val with_pool : domains:int -> (t -> 'a) -> 'a

(** {1 Worker identity}

    Each worker domain gets a pool-wide slot in [1 .. size-1] and a
    process-wide private wall-clock span track. The submitting domain (or
    any non-worker domain) is slot [None] / the default track. *)

(** The executing domain's worker slot, if it is a pool worker. *)
val current_worker : unit -> int option

(** The wall-clock ([Obs.Span.domain_wall]) track this domain must record
    spans on: a private per-worker track inside a pool worker, [default]
    otherwise. Keeps concurrent spans well-nested per (domain, track). *)
val obs_wall_track : ?default:int -> unit -> int

(** {1 The process-wide configured pool}

    The CLI's [--jobs N] installs one shared pool here; layers that want
    parallelism-by-default ([Pipeline.run], the experiment registry) read
    it. Configure from the main domain only, before fanning out. *)

(** [configure ~jobs] replaces the configured pool: shuts the previous one
    down, installs a fresh [jobs]-domain pool ([jobs > 1]) or none
    ([jobs = 1]). Registers an [at_exit] teardown once.
    @raise Invalid_argument if [jobs < 1]. *)
val configure : jobs:int -> unit

val configured : unit -> t option

(** Parallelism of the configured pool; [1] when none is installed. *)
val jobs : unit -> int

(** [map_default f xs] runs on the configured pool, or as [List.map f xs]
    when none is installed. Same ordering/exception contract either way. *)
val map_default : ('a -> 'b) -> 'a list -> 'b list
