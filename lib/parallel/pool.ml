(* Fixed-size Domain work pool.

   One mutex + one condition variable carry all coordination: the condition
   is broadcast when tasks are pushed, when a job completes, and at
   shutdown, and every waiter re-checks its own predicate. The queue holds
   plain [unit -> unit] closures that store their own result and do their
   own completion bookkeeping, so workers know nothing about jobs.

   The submitting domain participates: while its job is unfinished it pops
   and runs queued tasks (its own or anyone's) instead of blocking. That is
   what makes nested submission safe — a task calling [map] on the same
   pool drives the inner job itself, so progress never requires a free
   worker — and what lets [domains = 1] run everything inline through the
   same code path.

   Determinism: results land in an array indexed by submission order and
   are read back only after the whole job settles, so scheduling affects
   timing, never values. Memory publication is via the pool mutex: each
   task writes its result slot before taking the lock to decrement the
   job's remaining-count, and the submitter observes count = 0 under the
   same lock before reading the slots. *)

type job = {
  mutable remaining : int;          (* guarded by the pool mutex *)
}

type t = {
  lock : Mutex.t;
  cond : Condition.t;               (* task pushed / job done / shutdown *)
  queue : (unit -> unit) Queue.t;   (* pending tasks, FIFO *)
  mutable closing : bool;
  mutable workers : unit Domain.t array;
  size : int;                       (* total parallelism incl. the caller *)
}

(* --- metrics ---------------------------------------------------------------

   Instruments live in [Obs.Metrics.global] (get-or-create by name) and are
   not internally locked; pools may share them, so updates go through one
   module-level mutex rather than any single pool's. *)

let metrics_lock = Mutex.create ()

let m_tasks = Obs.Metrics.counter Obs.Metrics.global "parallel.pool.tasks"
let m_steals = Obs.Metrics.counter Obs.Metrics.global "parallel.pool.steals"
let m_waits = Obs.Metrics.counter Obs.Metrics.global "parallel.pool.waits"
let m_jobs = Obs.Metrics.counter Obs.Metrics.global "parallel.pool.jobs"

let busy_histograms : (int, Obs.Metrics.histogram) Hashtbl.t = Hashtbl.create 8

let record_task ~slot ~busy_ms =
  Mutex.lock metrics_lock;
  Obs.Metrics.incr m_tasks;
  if slot > 0 then Obs.Metrics.incr m_steals;
  let h =
    match Hashtbl.find_opt busy_histograms slot with
    | Some h -> h
    | None ->
      let h =
        Obs.Metrics.histogram Obs.Metrics.global
          (Printf.sprintf "parallel.pool.busy_ms.w%d" slot)
      in
      Hashtbl.replace busy_histograms slot h;
      h
  in
  Obs.Metrics.observe h busy_ms;
  Mutex.unlock metrics_lock

let record_wait () =
  Mutex.lock metrics_lock;
  Obs.Metrics.incr m_waits;
  Mutex.unlock metrics_lock

let record_job () =
  Mutex.lock metrics_lock;
  Obs.Metrics.incr m_jobs;
  Mutex.unlock metrics_lock

(* --- worker identity ------------------------------------------------------ *)

(* Worker slots are process-wide (a domain serves exactly one pool), and so
   are the wall-clock span tracks: track ids must never collide across
   pools or with the sequential pipeline's lane, so they come from one
   atomic counter starting well above the handful of static track ids the
   instrumentation uses. *)

let next_slot = Atomic.make 1
let next_wall_track = Atomic.make 16

let identity : (int * int) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current_worker () =
  match Domain.DLS.get identity with Some (slot, _) -> Some slot | None -> None

let obs_wall_track ?(default = 1) () =
  match Domain.DLS.get identity with
  | Some (_, track) -> track
  | None -> default

(* --- task execution ------------------------------------------------------- *)

(* Run one queued task closure, timing the executing domain's busy span.
   Task closures never raise (they capture exceptions into their result
   slot), so no protection is needed around [task ()]. *)
let run_task task =
  let slot = match current_worker () with Some s -> s | None -> 0 in
  let t0 = Unix.gettimeofday () in
  task ();
  record_task ~slot ~busy_ms:((Unix.gettimeofday () -. t0) *. 1000.0)

let worker_body t slot () =
  Domain.DLS.set identity
    (Some (slot, Atomic.fetch_and_add next_wall_track 1));
  let rec loop () =
    Mutex.lock t.lock;
    let rec next () =
      match Queue.take_opt t.queue with
      | Some task -> Some task
      | None ->
        if t.closing then None
        else begin
          record_wait ();
          Condition.wait t.cond t.lock;
          next ()
        end
    in
    match next () with
    | None -> Mutex.unlock t.lock
    | Some task ->
      Mutex.unlock t.lock;
      run_task task;
      loop ()
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Parallel.Pool.create: domains < 1";
  let t =
    { lock = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [||];
      size = domains }
  in
  t.workers <-
    Array.init (domains - 1) (fun _ ->
        let slot = Atomic.fetch_and_add next_slot 1 in
        Domain.spawn (worker_body t slot));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.lock;
  if t.closing then Mutex.unlock t.lock
  else begin
    t.closing <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* --- map ------------------------------------------------------------------ *)

type 'b slot_result = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

let map t f xs =
  match xs with
  | [] -> []
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let results = Array.make n Pending in
    let job = { remaining = n } in
    record_job ();
    let task_for i () =
      (results.(i) <-
         (match f arr.(i) with
          | v -> Done v
          | exception e -> Failed (e, Printexc.get_raw_backtrace ())));
      Mutex.lock t.lock;
      job.remaining <- job.remaining - 1;
      if job.remaining = 0 then Condition.broadcast t.cond;
      Mutex.unlock t.lock
    in
    Mutex.lock t.lock;
    if t.closing then begin
      Mutex.unlock t.lock;
      invalid_arg "Parallel.Pool.map: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add (task_for i) t.queue
    done;
    Condition.broadcast t.cond;
    (* Help until this job settles: run any queued task — ours or a nested
       job's — rather than blocking while runnable work exists. *)
    let rec help () =
      if job.remaining = 0 then Mutex.unlock t.lock
      else
        match Queue.take_opt t.queue with
        | Some task ->
          Mutex.unlock t.lock;
          run_task task;
          Mutex.lock t.lock;
          help ()
        | None ->
          record_wait ();
          Condition.wait t.cond t.lock;
          help ()
    in
    help ();
    (* Every task settled (count observed 0 under the mutex ⇒ all result
       writes are visible). Re-raise the lowest-indexed failure, if any. *)
    let first_failure = ref None in
    for i = n - 1 downto 0 do
      match results.(i) with
      | Failed (e, bt) -> first_failure := Some (e, bt)
      | Done _ -> ()
      | Pending -> assert false
    done;
    (match !first_failure with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    Array.to_list
      (Array.map
         (function Done v -> v | Pending | Failed _ -> assert false)
         results)

let map_batches t ~batch f xs =
  if batch < 1 then invalid_arg "Parallel.Pool.map_batches: batch < 1";
  let rec chunk acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = batch then chunk (List.rev cur :: acc) [ x ] 1 rest
      else chunk acc (x :: cur) (k + 1) rest
  in
  let chunks = chunk [] [] 0 xs in
  List.concat (map t (List.map f) chunks)

(* --- the process-wide configured pool ------------------------------------- *)

(* Written only from the main domain (CLI startup, test setup) before any
   fan-out; concurrent readers just see whatever pool is installed. *)
let configured_pool : t option ref = ref None

let at_exit_registered = ref false

let configure ~jobs =
  if jobs < 1 then invalid_arg "Parallel.Pool.configure: jobs < 1";
  (match !configured_pool with Some p -> shutdown p | None -> ());
  configured_pool := (if jobs > 1 then Some (create ~domains:jobs) else None);
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit (fun () ->
        match !configured_pool with Some p -> shutdown p | None -> ())
  end

let configured () = !configured_pool

let jobs () = match !configured_pool with Some p -> p.size | None -> 1

let map_default f xs =
  match !configured_pool with Some p -> map p f xs | None -> List.map f xs
