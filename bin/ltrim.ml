(* lambda-trim command-line interface.

   Drives the pipeline against the synthesized benchmark suite:

     ltrim list                          enumerate applications
     ltrim analyze <app>                 static analysis (imports, PyCG)
     ltrim profile <app>                 per-module marginal costs + ranking
     ltrim debloat <app> [-k N] [-s M]   run the full pipeline
     ltrim invoke <app> [--trimmed]      cold+warm invocation on the simulator
     ltrim fleet <app> [--rate R] ...    multi-instance fleet simulation
     ltrim experiments [-o ID]           regenerate paper tables/figures *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let app_arg =
  let doc = "Application name (see `ltrim list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let verbose_flag =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose pipeline logging.")

let k_arg =
  Arg.(value & opt int 20 & info [ "k" ] ~docv:"K"
         ~doc:"Number of top-ranked modules to debloat (default 20).")

let scoring_arg =
  let doc = "Scoring method: combined, time, memory, or random." in
  Arg.(value & opt string "combined" & info [ "s"; "scoring" ] ~docv:"METHOD" ~doc)

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (s : Workloads.Apps.spec) ->
         Printf.printf "%-18s %-12s libs: %s\n" s.Workloads.Apps.name
           s.Workloads.Apps.origin
           (String.concat ", "
              (List.map
                 (fun l -> l.Workloads.Libspec.l_name)
                 s.Workloads.Apps.libs)))
      Workloads.Apps.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark applications.")
    Term.(const run $ const ())

(* --- analyze ------------------------------------------------------------- *)

let analyze_cmd =
  let run app =
    let d = Workloads.Suite.deployment_of app in
    let a = Trim.Static_analyzer.analyze d in
    Printf.printf "Application: %s\n" app;
    Printf.printf "Imported root modules: %s\n"
      (String.concat ", " a.Trim.Static_analyzer.imported_roots);
    Printf.printf "Imported dotted paths: %s\n"
      (String.concat ", " a.Trim.Static_analyzer.imported_dotted);
    List.iter
      (fun root ->
         let protected =
           Trim.Static_analyzer.protected_attrs a ~module_name:root
         in
         Printf.printf "PyCG-protected attrs of %s: %s\n" root
           (String.concat ", "
              (Trim.Static_analyzer.String_set.elements protected)))
      a.Trim.Static_analyzer.imported_roots
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Run the static analyzer on an application.")
    Term.(const run $ app_arg)

(* --- profile ------------------------------------------------------------- *)

let profile_cmd =
  let run app scoring =
    let method_ = Trim.Scoring.method_of_string scoring in
    let d = Workloads.Suite.deployment_of app in
    let p = Trim.Profiler.profile d in
    Printf.printf "Function Initialization: T = %.2f ms, M = %.2f MB\n\n"
      p.Trim.Profiler.total_ms p.Trim.Profiler.total_mb;
    Printf.printf "%-28s %10s %10s %12s\n" "module" "t (ms)" "m (MB)"
      "marginal $¢";
    List.iter
      (fun (mp : Trim.Profiler.module_profile) ->
         Printf.printf "%-28s %10.2f %10.2f %12.1f\n" mp.Trim.Profiler.mp_name
           mp.Trim.Profiler.mp_incl_ms mp.Trim.Profiler.mp_incl_mb
           (Trim.Scoring.score Trim.Scoring.Combined ~result:p mp))
      (Trim.Scoring.rank method_ p)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile per-module marginal import time/memory and rank them.")
    Term.(const run $ app_arg $ scoring_arg)

(* --- debloat ------------------------------------------------------------- *)

let debloat_cmd =
  let run app k scoring verbose =
    setup_logs verbose;
    let method_ = Trim.Scoring.method_of_string scoring in
    let d = Workloads.Suite.deployment_of app in
    let r =
      Trim.Pipeline.run
        ~options:{ Trim.Pipeline.k; scoring = method_; log = verbose }
        d
    in
    Printf.printf "Debloated %s in %.2f s (%d oracle queries)\n" app
      r.Trim.Pipeline.debloat_wall_s r.Trim.Pipeline.total_oracle_queries;
    List.iter
      (fun m -> Printf.printf "  %s\n" (Fmt.str "%a" Trim.Debloater.pp_module_result m))
      r.Trim.Pipeline.module_results;
    let before = Common_measure.cold d in
    let after = Common_measure.cold r.Trim.Pipeline.optimized in
    Common_measure.print_comparison ~before ~after
  in
  Cmd.v
    (Cmd.info "debloat" ~doc:"Run the full lambda-trim pipeline on an application.")
    Term.(const run $ app_arg $ k_arg $ scoring_arg $ verbose_flag)

(* --- invoke -------------------------------------------------------------- *)

let invoke_cmd =
  let trimmed_flag =
    Arg.(value & flag & info [ "trimmed" ]
           ~doc:"Invoke the lambda-trim optimized application.")
  in
  let run app trimmed =
    let spec = Workloads.Suite.spec_of app in
    let d = Workloads.Suite.deployment_of app in
    let d =
      if trimmed then (Trim.Pipeline.run d).Trim.Pipeline.optimized else d
    in
    let sim = Platform.Lambda_sim.create d in
    let event =
      match spec.Workloads.Apps.tests with (_, e) :: _ -> e | [] -> "{}"
    in
    let cold, warm = Platform.Lambda_sim.measure_cold_and_warm ~event sim in
    List.iter
      (fun (r : Platform.Lambda_sim.record) ->
         Printf.printf
           "%s start: e2e %.1f ms (init %.1f, exec %.1f), billed %.0f ms, \
            %.1f MB, $%.3e\n"
           (Platform.Lambda_sim.start_kind_name r.Platform.Lambda_sim.kind)
           r.Platform.Lambda_sim.e2e_ms r.Platform.Lambda_sim.init_ms
           r.Platform.Lambda_sim.exec_ms r.Platform.Lambda_sim.billed_ms
           r.Platform.Lambda_sim.peak_memory_mb r.Platform.Lambda_sim.cost;
         print_string r.Platform.Lambda_sim.stdout)
      [ cold; warm ]
  in
  Cmd.v
    (Cmd.info "invoke" ~doc:"Invoke an application on the platform simulator.")
    Term.(const run $ app_arg $ trimmed_flag)

(* --- fleet ---------------------------------------------------------------- *)

let fleet_cmd =
  let rate_arg =
    Arg.(value & opt float 1.0 & info [ "r"; "rate" ] ~docv:"REQ_PER_S"
           ~doc:"Poisson arrival rate in requests per second (default 1).")
  in
  let duration_arg =
    Arg.(value & opt float 1800.0 & info [ "d"; "duration" ] ~docv:"SECONDS"
           ~doc:"Trace duration in seconds (default 1800).")
  in
  let policy_arg =
    Arg.(value & opt string "fixed" & info [ "p"; "policy" ] ~docv:"POLICY"
           ~doc:"Eviction policy: fixed, lru, or adaptive.")
  in
  let keep_alive_arg =
    Arg.(value & opt float 600.0 & info [ "keep-alive" ] ~docv:"SECONDS"
           ~doc:"Keep-alive TTL for fixed/lru policies (default 600).")
  in
  let max_idle_arg =
    Arg.(value & opt int 4 & info [ "max-idle" ] ~docv:"N"
           ~doc:"Idle-instance cap for the lru policy (default 4).")
  in
  let capacity_arg =
    Arg.(value & opt int 0 & info [ "capacity" ] ~docv:"N"
           ~doc:"Concurrency cap on live instances (default unbounded).")
  in
  let max_pending_arg =
    Arg.(value & opt int 1024 & info [ "max-pending" ] ~docv:"N"
           ~doc:"Pending-queue bound (default 1024).")
  in
  let timeout_arg =
    Arg.(value & opt float 60.0 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Pending-request timeout (default 60).")
  in
  let fb_rate_arg =
    Arg.(value & opt float 0.01 & info [ "fb-rate" ] ~docv:"FRACTION"
           ~doc:"Fraction of trimmed requests hitting removed code and \
                 falling back to the original image (default 0.01).")
  in
  let seed_arg =
    Arg.(value & opt int 2025 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Trace and fallback-draw seed (default 2025).")
  in
  let run app rate duration policy keep_alive max_idle capacity max_pending
      timeout fb_rate seed =
    if rate <= 0.0 then begin
      Printf.eprintf "--rate must be positive (got %g)\n" rate;
      exit 2
    end;
    if duration < 0.0 then begin
      Printf.eprintf "--duration must be non-negative (got %g)\n" duration;
      exit 2
    end;
    let pol =
      match policy with
      | "fixed" -> Fleet.Pool.Fixed_ttl { keep_alive_s = keep_alive }
      | "lru" -> Fleet.Pool.Lru { keep_alive_s = keep_alive; max_idle }
      | "adaptive" ->
        Fleet.Pool.Adaptive
          { min_s = 60.0; max_s = keep_alive; percentile = 99.0 }
      | p ->
        Printf.eprintf "unknown policy %S (fixed, lru, adaptive)\n" p;
        exit 2
    in
    let d = Workloads.Suite.deployment_of app in
    let report = Trim.Pipeline.run d in
    let original = Fleet.Scenario.profile_of_deployment d in
    let trimmed =
      Fleet.Scenario.profile_of_deployment report.Trim.Pipeline.optimized
    in
    let trace =
      Platform.Trace.poisson ~seed ~rate_per_s:rate ~duration_s:duration
        ~name:(Printf.sprintf "poisson-%g" rate)
    in
    let base = Fleet.Router.default_config ~profile:original pol in
    let base =
      { base with
        Fleet.Router.max_instances =
          (if capacity <= 0 then max_int else capacity);
        max_pending;
        pending_timeout_s = timeout }
    in
    let simulate label cfg =
      Fleet.Report.summarize ~label cfg (Fleet.Router.run cfg trace)
    in
    Printf.printf
      "Fleet: %s, poisson %g req/s for %g s (seed %d), policy %s\n\n" app rate
      duration seed (Fleet.Pool.policy_name pol);
    print_endline Fleet.Report.table_header;
    print_endline (Fleet.Report.table_row (simulate "original" base));
    let fb_cfg =
      { base with
        Fleet.Router.profile = trimmed;
        fallback =
          (if fb_rate > 0.0 then
             Some
               (Fleet.Scenario.fallback ~rate:fb_rate ~seed:(seed + 1)
                  ~original ())
           else None) }
    in
    print_endline (Fleet.Report.table_row (simulate "trimmed" fb_cfg))
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Simulate a fleet of instances serving an arrival trace, \
             original vs lambda-trim-optimized.")
    Term.(const run $ app_arg $ rate_arg $ duration_arg $ policy_arg
          $ keep_alive_arg $ max_idle_arg $ capacity_arg $ max_pending_arg
          $ timeout_arg $ fb_rate_arg $ seed_arg)

(* --- calibrate ------------------------------------------------------------ *)

(* Check every synthesized application against its paper metrics: the
   workload generator is supposed to land within tolerance of Table 1. *)
let calibrate_cmd =
  let run () =
    Printf.printf "%-18s %22s %22s %22s %s\n" "" "size MB (ours/ppr)"
      "import s (ours/ppr)" "e2e s (ours/ppr)" "status";
    let failures = ref 0 in
    List.iter
      (fun (spec : Workloads.Apps.spec) ->
         let d = Workloads.Codegen.deployment spec in
         let sim =
           Platform.Lambda_sim.create ~params:Experiments.Common.table1_params d
         in
         let event =
           match spec.Workloads.Apps.tests with (_, e) :: _ -> e | [] -> "{}"
         in
         let cold, _ = Platform.Lambda_sim.measure_cold_and_warm ~event sim in
         let p = spec.Workloads.Apps.paper in
         let size = Platform.Deployment.image_mb d in
         let import_s = cold.Platform.Lambda_sim.init_ms /. 1000.0 in
         let e2e_s = cold.Platform.Lambda_sim.e2e_ms /. 1000.0 in
         let within tol a b = Float.abs (a -. b) <= tol *. b in
         (* size and import are generator-controlled and checked strictly;
            E2E is informational — the paper's per-app platform overheads
            (instance assignment, image caching) are not modelled per app *)
         let ok =
           within 0.05 size p.Workloads.Apps.p_size_mb
           && within 0.30 import_s p.Workloads.Apps.p_import_s
         in
         if not ok then incr failures;
         Printf.printf "%-18s %10.1f /%9.1f %10.2f /%9.2f %10.2f /%9.2f %s\n"
           spec.Workloads.Apps.name size p.Workloads.Apps.p_size_mb import_s
           p.Workloads.Apps.p_import_s e2e_s p.Workloads.Apps.p_e2e_s
           (if ok then "ok" else "OUT OF BAND"))
      Workloads.Apps.all;
    if !failures > 0 then begin
      Printf.printf "%d applications out of calibration band\n" !failures;
      exit 1
    end
    else print_endline "all applications within calibration bands"
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:"Check every synthesized app against its Table-1 paper metrics.")
    Term.(const run $ const ())

(* --- experiments ---------------------------------------------------------- *)

let experiments_cmd =
  let only_arg =
    Arg.(value & opt_all string [] & info [ "o"; "only" ] ~docv:"ID"
           ~doc:"Run only this experiment (repeatable). IDs: fig1 table1 fig2 \
                 fig8 table2 fig9 table3 fig10 fig11 fig12 fig13 fig14 table4.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Also write each experiment's output to DIR/<id>.txt.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"DIR"
             ~doc:"Write machine-readable rows to DIR/<id>.csv (experiments \
                   with structured data only).")
  in
  let run only out csv =
    let entries =
      match only with
      | [] -> Experiments.Registry.all
      | ids ->
        List.filter_map
          (fun id ->
             match Experiments.Registry.find id with
             | Some e -> Some e
             | None ->
               Printf.eprintf "unknown experiment %S (known: %s)\n" id
                 (String.concat ", " Experiments.Registry.ids);
               None)
          ids
    in
    let ensure_dir = function
      | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
      | _ -> ()
    in
    ensure_dir out;
    ensure_dir csv;
    let write dir name contents =
      let oc = open_out (Filename.concat dir name) in
      output_string oc contents;
      close_out oc
    in
    List.iter
      (fun (e : Experiments.Registry.entry) ->
         let text = e.Experiments.Registry.print () in
         print_string text;
         (match out with
          | Some dir -> write dir (e.Experiments.Registry.id ^ ".txt") text
          | None -> ());
         match csv, e.Experiments.Registry.csv with
         | Some dir, Some rows ->
           write dir (e.Experiments.Registry.id ^ ".csv") (rows ())
         | _ -> ())
      entries
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures on the simulator.")
    Term.(const run $ only_arg $ out_arg $ csv_arg)

let main =
  Cmd.group
    (Cmd.info "ltrim" ~version:"1.0.0"
       ~doc:"Cost-driven debloating for serverless applications (lambda-trim).")
    [ list_cmd; analyze_cmd; profile_cmd; debloat_cmd; invoke_cmd; fleet_cmd;
      calibrate_cmd; experiments_cmd ]

let () = exit (Cmd.eval main)
