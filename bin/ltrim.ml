(* lambda-trim command-line interface.

   Drives the pipeline against the synthesized benchmark suite:

     ltrim list                          enumerate applications
     ltrim analyze <app>                 static analysis (imports, PyCG)
     ltrim profile <app>                 per-module marginal costs + ranking
     ltrim debloat <app> [-k N] [-s M]   run the full pipeline
     ltrim invoke <app> [--trimmed]      cold+warm invocation on the simulator
     ltrim fleet <app> [--rate R] ...    multi-instance fleet simulation
     ltrim experiments [-o ID]           regenerate paper tables/figures *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let app_arg =
  let doc = "Application name (see `ltrim list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let verbose_flag =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose pipeline logging.")

let k_arg =
  Arg.(value & opt int 20 & info [ "k" ] ~docv:"K"
         ~doc:"Number of top-ranked modules to debloat (default 20).")

let scoring_arg =
  let doc = "Scoring method: combined, time, memory, or random." in
  Arg.(value & opt string "combined" & info [ "s"; "scoring" ] ~docv:"METHOD" ~doc)

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a Chrome trace-event JSON of the run to FILE \
                 (load it in chrome://tracing or Perfetto).")

let jobs_arg =
  Arg.(value & opt int (Domain.recommended_domain_count ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the debloater and the experiment runner \
                 (default: this machine's recommended domain count). \
                 Committed results are bit-identical at any N; only \
                 wall-clock columns change.")

let shards_arg =
  Arg.(value & opt int 0
       & info [ "shards" ] ~docv:"N"
           ~doc:"Shards for the sharded fleet engine (multi-tenant fleet \
                 runs and the trace-replay experiment). Default 0 follows \
                 $(b,--jobs). Results are bit-identical at any N; only \
                 wall-clock changes.")

(* Install the process-wide shard default the sharded fleet engine reads.
   0 keeps the engine following the configured pool size. *)
let setup_shards shards =
  if shards < 0 then begin
    Printf.eprintf "--shards must be >= 0 (got %d)\n" shards;
    exit 2
  end;
  Fleet.Sharded.default_shards := shards

let backend_conv =
  let parse s =
    match Minipy.Backend.of_string s with
    | Some c -> Ok c
    | None ->
      Error (`Msg (Printf.sprintf
                     "unknown backend %S (expected treewalk, vm, or compare)" s))
  in
  let print ppf c = Format.pp_print_string ppf (Minipy.Backend.to_string c) in
  Arg.conv (parse, print)

let backend_arg =
  Arg.(value & opt backend_conv Minipy.Backend.Treewalk
       & info [ "backend" ] ~docv:"ENGINE"
           ~doc:"Execution engine: $(b,treewalk) (the reference evaluator), \
                 $(b,vm) (bytecode compiler + stack VM), or $(b,compare) \
                 (run both and fail on any divergence). Virtual-time and \
                 byte-ledger measurements are backend-invariant: committed \
                 results are bit-identical across engines, only wall-clock \
                 columns change.")

let optimizer_conv =
  let parse s =
    match Trim.Optimizer.of_string s with
    | Some v -> Ok v
    | None ->
      Error (`Msg (Printf.sprintf
                     "unknown optimizer %S (expected dd, lazy, combined, or \
                      none)" s))
  in
  let print ppf v = Format.pp_print_string ppf (Trim.Optimizer.to_string v) in
  Arg.conv (parse, print)

let optimizer_arg =
  Arg.(value & opt optimizer_conv Trim.Optimizer.Dd
       & info [ "optimizer" ] ~docv:"FAMILY"
           ~doc:"Optimizer family: $(b,dd) (λ-trim attribute debloating, \
                 the default), $(b,lazy) (profile-guided lazy loading — \
                 removes nothing, defers import work off the cold path), \
                 $(b,combined) (lazy loading over the DD-trimmed image), or \
                 $(b,none) (deploy the original untouched).")

let journal_arg =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"DIR"
           ~doc:"Record every DD verdict in per-module journals under DIR so \
                 a killed run can be resumed bit-identically with \
                 $(b,--resume).")

let resume_flag =
  Arg.(value & flag & info [ "resume" ]
         ~doc:"Replay compatible journals found under --journal before \
               querying the oracle. Resume requires the same --jobs as the \
               killed run (the journal digest covers the job layout); \
               anything else safely discards the journal.")

let oracle_retries_arg =
  Arg.(value & opt int 0 & info [ "oracle-retries" ] ~docv:"K"
         ~doc:"Harden the oracle: confirm fresh observations with a second \
               execution, settle disagreements with a (2K+1)-vote quorum, \
               and quarantine flaky tests (default 0 = off).")

let quarantine_report_arg =
  Arg.(value & opt (some string) None
       & info [ "quarantine-report" ] ~docv:"FILE"
           ~doc:"Write the hardened oracle's divergence-classification CSV \
                 (test, flaky vs behavior-changed, events, executions) to \
                 FILE.")

let memo_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "memo-dir" ] ~docv:"DIR"
           ~doc:"Persist oracle observations in DIR/observations.memo \
                 beneath the in-memory memo: observations survive process \
                 restarts and are shared across apps and revisions (keys \
                 are content-addressed, so entries never go stale). \
                 Corrupt or torn tails are discarded on load, never \
                 replayed. Observations are the same values a fresh \
                 execution would produce, so results are byte-identical \
                 with or without the store.")

let memo_cap_arg =
  Arg.(value & opt (some int) None
       & info [ "memo-cap" ] ~docv:"N"
           ~doc:"Bound the in-memory oracle memo at N entries (FIFO \
                 eviction, counted in oracle.memo.evicted). Default \
                 unbounded. With $(b,--memo-dir), evicted entries re-load \
                 from the store instead of re-executing.")

let baseline_arg =
  Arg.(value & opt (some string) None
       & info [ "baseline" ] ~docv:"MANIFEST"
           ~doc:"Re-debloat incrementally against a previous run's manifest \
                 (see $(b,--manifest)): modules whose reachable-image \
                 digest is unchanged replay their recorded keep-set with \
                 zero oracle queries; changed modules warm-start DD from \
                 the recorded keep-set. Keep-sets are bit-identical to a \
                 cold run's. A missing or corrupt manifest falls back to a \
                 cold run.")

let manifest_arg =
  Arg.(value & opt (some string) None
       & info [ "manifest" ] ~docv:"FILE"
           ~doc:"Write this run's manifest (per-module search digests, \
                 keep-sets, ranking) to FILE for a later \
                 $(b,--baseline).")

(* Install the persistent memo under the global observation cache, plus the
   optional in-memory bound. Call before any work, like [setup_jobs]. *)
let setup_memo memo_dir memo_cap =
  (match memo_cap with
   | Some n when n < 1 ->
     Printf.eprintf "--memo-cap must be >= 1 (got %d)\n" n;
     exit 2
   | cap -> Trim.Oracle.Cache.set_capacity Trim.Oracle.Cache.global cap);
  match memo_dir with
  | None -> ()
  | Some dir ->
    let store = Trim.Memo_store.open_ ~dir in
    Trim.Oracle.Cache.attach_store Trim.Oracle.Cache.global (Some store);
    at_exit (fun () -> Trim.Memo_store.close store)

let load_baseline = function
  | None -> None
  | Some path ->
    (match Trim.Manifest.load ~path with
     | Some m -> Some m
     | None ->
       Printf.eprintf
         "baseline %s is missing or invalid; running cold\n%!" path;
       None)

(* Install the process-wide execution engine every interpreter construction
   reads. Call before any work, like [setup_jobs]. *)
let setup_backend backend = Minipy.Backend.configure backend

(* Install the process-wide optimizer family, next to [setup_backend]. *)
let setup_optimizer optimizer = Trim.Optimizer.configure optimizer

(* Install the process-wide pool the pipeline and the experiment registry
   fan out on. Call before any work; the pool is torn down at exit. *)
let setup_jobs jobs =
  if jobs < 1 then begin
    Printf.eprintf "--jobs must be >= 1 (got %d)\n" jobs;
    exit 2
  end;
  Parallel.Pool.configure ~jobs

(* Arm the chaos harness from LTRIM_CHAOS_* and turn a chaos kill into a
   distinct exit status the CI smoke steps assert on. Wraps outside
   [with_trace] so a killed run still exports its partial trace. *)
let with_chaos f =
  (try Trim.Chaos.arm_from_env () with
   | Invalid_argument msg ->
     Printf.eprintf "%s\n" msg;
     exit 2);
  try f () with
  | Trim.Chaos.Killed { killed_after } ->
    Printf.eprintf
      "chaos: killed after journal record %d (resume with --resume)\n%!"
      killed_after;
    exit 70

(* Install a recording tracer around [f] and export it on the way out —
   also on failure, so a crashed run still leaves its partial trace. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    let sink = Obs.Span.recorder () in
    Obs.Span.install sink;
    Fun.protect
      ~finally:(fun () ->
          Obs.Span.install Obs.Span.null;
          Obs.Export.to_file ~path
            (Obs.Export.chrome_json ~metrics:Obs.Metrics.global sink);
          Printf.eprintf "trace: %d spans written to %s\n%!"
            (List.length (Obs.Span.spans sink))
            path)
      f

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (s : Workloads.Apps.spec) ->
         Printf.printf "%-18s %-12s libs: %s\n" s.Workloads.Apps.name
           s.Workloads.Apps.origin
           (String.concat ", "
              (List.map
                 (fun l -> l.Workloads.Libspec.l_name)
                 s.Workloads.Apps.libs)))
      Workloads.Apps.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark applications.")
    Term.(const run $ const ())

(* --- analyze ------------------------------------------------------------- *)

let analyze_cmd =
  let run app =
    let d = Workloads.Suite.deployment_of app in
    let a = Trim.Static_analyzer.analyze d in
    Printf.printf "Application: %s\n" app;
    Printf.printf "Imported root modules: %s\n"
      (String.concat ", " a.Trim.Static_analyzer.imported_roots);
    Printf.printf "Imported dotted paths: %s\n"
      (String.concat ", " a.Trim.Static_analyzer.imported_dotted);
    List.iter
      (fun root ->
         let protected =
           Trim.Static_analyzer.protected_attrs a ~module_name:root
         in
         Printf.printf "PyCG-protected attrs of %s: %s\n" root
           (String.concat ", "
              (Trim.Static_analyzer.String_set.elements protected)))
      a.Trim.Static_analyzer.imported_roots
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Run the static analyzer on an application.")
    Term.(const run $ app_arg)

(* --- profile ------------------------------------------------------------- *)

let profile_cmd =
  let run app scoring backend =
    setup_backend backend;
    let method_ = Trim.Scoring.method_of_string scoring in
    let d = Workloads.Suite.deployment_of app in
    let p = Trim.Profiler.profile d in
    Printf.printf "Function Initialization: T = %.2f ms, M = %.2f MB\n\n"
      p.Trim.Profiler.total_ms p.Trim.Profiler.total_mb;
    Printf.printf "%-28s %10s %10s %12s\n" "module" "t (ms)" "m (MB)"
      "marginal $¢";
    List.iter
      (fun (mp : Trim.Profiler.module_profile) ->
         Printf.printf "%-28s %10.2f %10.2f %12.1f\n" mp.Trim.Profiler.mp_name
           mp.Trim.Profiler.mp_incl_ms mp.Trim.Profiler.mp_incl_mb
           (Trim.Scoring.score Trim.Scoring.Combined ~result:p mp))
      (Trim.Scoring.rank method_ p)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile per-module marginal import time/memory and rank them.")
    Term.(const run $ app_arg $ scoring_arg $ backend_arg)

(* --- debloat ------------------------------------------------------------- *)

let debloat_cmd =
  let run app k scoring verbose jobs trace backend optimizer journal resume
      oracle_retries quarantine_report memo_dir memo_cap baseline_path
      manifest_path =
    setup_backend backend;
    setup_optimizer optimizer;
    setup_jobs jobs;
    setup_memo memo_dir memo_cap;
    if oracle_retries < 0 then begin
      Printf.eprintf "--oracle-retries must be non-negative (got %d)\n"
        oracle_retries;
      exit 2
    end;
    with_chaos @@ fun () ->
    with_trace trace @@ fun () ->
    setup_logs verbose;
    let method_ = Trim.Scoring.method_of_string scoring in
    let baseline = load_baseline baseline_path in
    let d = Workloads.Suite.deployment_of app in
    let o =
      Trim.Optimizer.run
        ~options:{ Trim.Pipeline.default_options with
                   k; scoring = method_; log = verbose;
                   journal_dir = journal; resume;
                   oracle_retries; quarantine_report;
                   baseline; manifest_path }
        optimizer d
    in
    (match o.Trim.Optimizer.o_dd with
     | None -> ()
     | Some r ->
       Printf.printf "Debloated %s in %.2f s (%d oracle queries)\n" app
         r.Trim.Pipeline.debloat_wall_s r.Trim.Pipeline.total_oracle_queries;
       Printf.printf "Caches: %s\n"
         (Fmt.str "%a" Trim.Pipeline.pp_cache_stats r.Trim.Pipeline.caches);
       if baseline <> None then
         Printf.printf
           "Incremental: %d/%d modules replayed from baseline, %d \
            warm-started (%d seed hits)\n"
           (List.length r.Trim.Pipeline.replayed_modules)
           (List.length r.Trim.Pipeline.module_results)
           r.Trim.Pipeline.warm_seeded r.Trim.Pipeline.warm_seed_hits;
       if r.Trim.Pipeline.quarantined_tests > 0 then
         Printf.printf "Quarantined tests: %d (see --quarantine-report)\n"
           r.Trim.Pipeline.quarantined_tests;
       List.iter
         (fun m ->
            Printf.printf "  %s\n"
              (Fmt.str "%a" Trim.Debloater.pp_module_result m))
         r.Trim.Pipeline.module_results);
    (match o.Trim.Optimizer.o_lazy with
     | None -> ()
     | Some lz ->
       Printf.printf
         "Lazified %d import root%s (%s); deferred ~%.2f ms / %.2f MB of \
          init off the cold path%s\n"
         (List.length lz.Trim.Lazy_loader.lz_lazified)
         (if List.length lz.Trim.Lazy_loader.lz_lazified = 1 then "" else "s")
         (String.concat ", " lz.Trim.Lazy_loader.lz_lazified)
         lz.Trim.Lazy_loader.lz_deferred_ms lz.Trim.Lazy_loader.lz_deferred_mb
         (if lz.Trim.Lazy_loader.lz_validated then ""
          else " [validation failed; original kept]"));
    let before = Common_measure.cold d in
    let after = Common_measure.cold o.Trim.Optimizer.o_deployment in
    Common_measure.print_comparison ~before ~after
  in
  Cmd.v
    (Cmd.info "debloat"
       ~doc:"Optimize an application: run the selected $(b,--optimizer) \
             family (λ-trim DD debloating by default).")
    Term.(const run $ app_arg $ k_arg $ scoring_arg $ verbose_flag $ jobs_arg
          $ trace_arg $ backend_arg $ optimizer_arg $ journal_arg
          $ resume_flag $ oracle_retries_arg $ quarantine_report_arg
          $ memo_dir_arg $ memo_cap_arg $ baseline_arg $ manifest_arg)

(* --- invoke -------------------------------------------------------------- *)

let invoke_cmd =
  let trimmed_flag =
    Arg.(value & flag & info [ "trimmed" ]
           ~doc:"Invoke the optimized application (per $(b,--optimizer)).")
  in
  (* the strict canonicalization compare mode diffs: every float exact *)
  let record_strict (r : Platform.Lambda_sim.record) =
    Printf.sprintf
      "%s init=%.17g exec=%.17g e2e=%.17g billed=%.17g mem=%.17g cost=%.17g \
       out=%S"
      (Platform.Lambda_sim.start_kind_name r.Platform.Lambda_sim.kind)
      r.Platform.Lambda_sim.init_ms r.Platform.Lambda_sim.exec_ms
      r.Platform.Lambda_sim.e2e_ms r.Platform.Lambda_sim.billed_ms
      r.Platform.Lambda_sim.peak_memory_mb r.Platform.Lambda_sim.cost
      r.Platform.Lambda_sim.stdout
  in
  let print_record (r : Platform.Lambda_sim.record) =
    Printf.printf
      "%s start: e2e %.1f ms (init %.1f, exec %.1f), billed %.0f ms, \
       %.1f MB, $%.3e\n"
      (Platform.Lambda_sim.start_kind_name r.Platform.Lambda_sim.kind)
      r.Platform.Lambda_sim.e2e_ms r.Platform.Lambda_sim.init_ms
      r.Platform.Lambda_sim.exec_ms r.Platform.Lambda_sim.billed_ms
      r.Platform.Lambda_sim.peak_memory_mb r.Platform.Lambda_sim.cost;
    print_string r.Platform.Lambda_sim.stdout
  in
  let run app trimmed jobs trace backend optimizer =
    setup_backend backend;
    setup_optimizer optimizer;
    setup_jobs jobs;
    with_trace trace @@ fun () ->
    let spec = Workloads.Suite.spec_of app in
    let d = Workloads.Suite.deployment_of app in
    let d =
      if trimmed then
        (Trim.Optimizer.run optimizer d).Trim.Optimizer.o_deployment
      else d
    in
    let event =
      match spec.Workloads.Apps.tests with (_, e) :: _ -> e | [] -> "{}"
    in
    let measure choice =
      let sim = Platform.Lambda_sim.create ~backend:choice d in
      Platform.Lambda_sim.measure_cold_and_warm ~event sim
    in
    match backend with
    | Minipy.Backend.Compare ->
      let tw_cold, tw_warm = measure Minipy.Backend.Treewalk in
      let vm_cold, vm_warm = measure Minipy.Backend.Vm in
      let diffs =
        List.filter_map
          (fun (phase, tw, vm) ->
             let tws = record_strict tw and vms = record_strict vm in
             if String.equal tws vms then None
             else Some (Printf.sprintf "%s:\n  treewalk: %s\n  vm:       %s"
                          phase tws vms))
          [ ("cold", tw_cold, vm_cold); ("warm", tw_warm, vm_warm) ]
      in
      if diffs = [] then begin
        List.iter print_record [ tw_cold; tw_warm ];
        Printf.printf "compare: cold and warm records identical across engines\n"
      end
      else begin
        Printf.eprintf "compare: engines diverge on %s\n%s\n" app
          (String.concat "\n" diffs);
        exit 1
      end
    | _ ->
      let cold, warm = measure backend in
      List.iter print_record [ cold; warm ]
  in
  Cmd.v
    (Cmd.info "invoke" ~doc:"Invoke an application on the platform simulator.")
    Term.(const run $ app_arg $ trimmed_flag $ jobs_arg $ trace_arg
          $ backend_arg $ optimizer_arg)

(* --- fleet ---------------------------------------------------------------- *)

let fleet_cmd =
  let rate_arg =
    Arg.(value & opt float 1.0 & info [ "r"; "rate" ] ~docv:"REQ_PER_S"
           ~doc:"Poisson arrival rate in requests per second (default 1).")
  in
  let duration_arg =
    Arg.(value & opt float 1800.0 & info [ "d"; "duration" ] ~docv:"SECONDS"
           ~doc:"Trace duration in seconds (default 1800).")
  in
  let policy_arg =
    Arg.(value & opt string "fixed" & info [ "p"; "policy" ] ~docv:"POLICY"
           ~doc:"Eviction policy: fixed, lru, or adaptive.")
  in
  let keep_alive_arg =
    Arg.(value & opt float 600.0 & info [ "keep-alive" ] ~docv:"SECONDS"
           ~doc:"Keep-alive TTL for fixed/lru policies (default 600).")
  in
  let max_idle_arg =
    Arg.(value & opt int 4 & info [ "max-idle" ] ~docv:"N"
           ~doc:"Idle-instance cap for the lru policy (default 4).")
  in
  let capacity_arg =
    Arg.(value & opt int 0 & info [ "capacity" ] ~docv:"N"
           ~doc:"Concurrency cap on live instances (default unbounded).")
  in
  let max_pending_arg =
    Arg.(value & opt int 1024 & info [ "max-pending" ] ~docv:"N"
           ~doc:"Pending-queue bound (default 1024).")
  in
  let timeout_arg =
    Arg.(value & opt float 60.0 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Pending-request timeout (default 60).")
  in
  let fb_rate_arg =
    Arg.(value & opt float 0.01 & info [ "fb-rate" ] ~docv:"FRACTION"
           ~doc:"Fraction of trimmed requests hitting removed code and \
                 falling back to the original image (default 0.01).")
  in
  let seed_arg =
    Arg.(value & opt int 2025 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Trace, fallback-draw, and fault-plan seed (default 2025).")
  in
  (* fault-injection flag group *)
  let init_failure_arg =
    Arg.(value & opt float 0.0 & info [ "init-failure-rate" ] ~docv:"FRACTION"
           ~doc:"Probability a cold start's Function Initialization fails \
                 (default 0).")
  in
  let crash_arg =
    Arg.(value & opt float 0.0 & info [ "crash-rate" ] ~docv:"FRACTION"
           ~doc:"Probability an invocation crashes mid-execution (default 0).")
  in
  let error_arg =
    Arg.(value & opt float 0.0 & info [ "error-rate" ] ~docv:"FRACTION"
           ~doc:"Probability an invocation completes with a transient error \
                 (default 0).")
  in
  let churn_arg =
    Arg.(value & opt float 0.0 & info [ "churn-rate" ] ~docv:"FRACTION"
           ~doc:"Probability the platform reclaims an instance immediately \
                 on release instead of keeping it warm (default 0).")
  in
  (* resilience flag group *)
  let retries_arg =
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N"
           ~doc:"Retry budget per request; 0 disables retries (default 0).")
  in
  let retry_base_arg =
    Arg.(value & opt float 0.2 & info [ "retry-base" ] ~docv:"SECONDS"
           ~doc:"Base exponential backoff before a retry (default 0.2); \
                 full jitter is always applied.")
  in
  let retry_cap_arg =
    Arg.(value & opt float 10.0 & info [ "retry-cap" ] ~docv:"SECONDS"
           ~doc:"Backoff ceiling (default 10).")
  in
  let request_timeout_arg =
    Arg.(value & opt float infinity
         & info [ "request-timeout" ] ~docv:"SECONDS"
             ~doc:"End-to-end budget: a retry past this deadline is \
                   abandoned (default unlimited).")
  in
  let breaker_threshold_arg =
    Arg.(value & opt float 0.0 & info [ "breaker-threshold" ] ~docv:"FRACTION"
           ~doc:"Arm the fallback circuit breaker at this windowed \
                 removal-error rate; 0 disables it (default 0). Requires \
                 a positive --fb-rate.")
  in
  let breaker_window_arg =
    Arg.(value & opt int 50 & info [ "breaker-window" ] ~docv:"N"
           ~doc:"Breaker sliding sample window (default 50).")
  in
  let breaker_cooldown_arg =
    Arg.(value & opt float 30.0 & info [ "breaker-cooldown" ] ~docv:"SECONDS"
           ~doc:"Open duration before the breaker half-opens (default 30).")
  in
  let hedge_delay_arg =
    Arg.(value & opt (some float) None & info [ "hedge-delay" ] ~docv:"SECONDS"
           ~doc:"Enable cold-start hedging: a failing cold start's recovery \
                 is dispatched this long after the cold start began \
                 (default off).")
  in
  let tenants_arg =
    Arg.(value & opt int 1 & info [ "tenants" ] ~docv:"N"
           ~doc:"Replicate the app as N independent tenants (per-tenant \
                 trace/fault/fallback seeds) and route them through the \
                 sharded fleet engine, merging per-variant reports \
                 (default 1 = classic single-tenant run).")
  in
  let run app rate duration policy keep_alive max_idle capacity max_pending
      timeout fb_rate seed init_failure_rate crash_rate error_rate churn_rate
      retries retry_base retry_cap request_timeout breaker_threshold
      breaker_window breaker_cooldown hedge_delay tenants shards jobs trace
      backend =
    setup_backend backend;
    setup_jobs jobs;
    setup_shards shards;
    with_trace trace @@ fun () ->
    if rate <= 0.0 then begin
      Printf.eprintf "--rate must be positive (got %g)\n" rate;
      exit 2
    end;
    if duration < 0.0 then begin
      Printf.eprintf "--duration must be non-negative (got %g)\n" duration;
      exit 2
    end;
    List.iter
      (fun (name, r) ->
         if not (r >= 0.0 && r <= 1.0) then begin
           Printf.eprintf "--%s must be in [0, 1] (got %g)\n" name r;
           exit 2
         end)
      [ ("init-failure-rate", init_failure_rate); ("crash-rate", crash_rate);
        ("error-rate", error_rate); ("churn-rate", churn_rate);
        ("fb-rate", fb_rate) ];
    if retries < 0 then begin
      Printf.eprintf "--retries must be non-negative (got %d)\n" retries;
      exit 2
    end;
    if retry_base < 0.0 || retry_cap < retry_base then begin
      Printf.eprintf
        "--retry-base must be non-negative and --retry-cap >= --retry-base \
         (got %g, %g)\n"
        retry_base retry_cap;
      exit 2
    end;
    if request_timeout <= 0.0 then begin
      Printf.eprintf "--request-timeout must be positive (got %g)\n"
        request_timeout;
      exit 2
    end;
    if not (breaker_threshold >= 0.0 && breaker_threshold <= 1.0) then begin
      Printf.eprintf "--breaker-threshold must be in [0, 1] (got %g)\n"
        breaker_threshold;
      exit 2
    end;
    if breaker_threshold > 0.0 && fb_rate <= 0.0 then begin
      Printf.eprintf
        "--breaker-threshold requires a fallback pool to shed to \
         (positive --fb-rate)\n";
      exit 2
    end;
    if breaker_window <= 0 then begin
      Printf.eprintf "--breaker-window must be positive (got %d)\n"
        breaker_window;
      exit 2
    end;
    if breaker_cooldown < 0.0 then begin
      Printf.eprintf "--breaker-cooldown must be non-negative (got %g)\n"
        breaker_cooldown;
      exit 2
    end;
    (match hedge_delay with
     | Some d when d < 0.0 ->
       Printf.eprintf "--hedge-delay must be non-negative (got %g)\n" d;
       exit 2
     | _ -> ());
    if tenants < 1 then begin
      Printf.eprintf "--tenants must be >= 1 (got %d)\n" tenants;
      exit 2
    end;
    let pol =
      match policy with
      | "fixed" -> Fleet.Pool.Fixed_ttl { keep_alive_s = keep_alive }
      | "lru" -> Fleet.Pool.Lru { keep_alive_s = keep_alive; max_idle }
      | "adaptive" ->
        Fleet.Pool.Adaptive
          { min_s = 60.0; max_s = keep_alive; percentile = 99.0 }
      | p ->
        Printf.eprintf "unknown policy %S (fixed, lru, adaptive)\n" p;
        exit 2
    in
    let d = Workloads.Suite.deployment_of app in
    let report = Trim.Pipeline.run d in
    let original = Fleet.Scenario.profile_of_deployment d in
    let trimmed =
      Fleet.Scenario.profile_of_deployment report.Trim.Pipeline.optimized
    in
    let faults =
      { Fleet.Faults.seed = seed + 2;
        init_failure_rate = init_failure_rate;
        crash_rate;
        transient_error_rate = error_rate;
        churn_rate }
    in
    let resilience =
      { Fleet.Resilience.retry =
          (if retries > 0 then
             Some
               { Fleet.Resilience.max_retries = retries;
                 base_backoff_s = retry_base;
                 max_backoff_s = retry_cap;
                 full_jitter = true }
           else None);
        request_timeout_s = request_timeout;
        breaker =
          (if breaker_threshold > 0.0 then
             Some
               { Fleet.Resilience.Breaker.error_threshold = breaker_threshold;
                 window = breaker_window;
                 min_samples = min breaker_window 10;
                 cooldown_s = breaker_cooldown }
           else None);
        hedge =
          Option.map
            (fun d -> { Fleet.Resilience.hedge_delay_s = d })
            hedge_delay }
    in
    let base = Fleet.Router.default_config ~profile:original pol in
    let base =
      { base with
        Fleet.Router.max_instances =
          (if capacity <= 0 then max_int else capacity);
        max_pending;
        pending_timeout_s = timeout;
        faults;
        (* the original image has no fallback pool, so the breaker only
           arms on the trimmed deployment below *)
        resilience = { resilience with Fleet.Resilience.breaker = None } }
    in
    let fb_cfg =
      { base with
        Fleet.Router.profile = trimmed;
        resilience;
        fallback =
          (if fb_rate > 0.0 then
             Some
               (Fleet.Scenario.fallback ~rate:fb_rate ~seed:(seed + 1)
                  ~original ())
           else None) }
    in
    if tenants > 1 then begin
      (* multi-tenant sharded path: tenant i replays the same app on its
         own trace/fault/fallback seed stream; tenant 0 reproduces the
         single-tenant seeds exactly *)
      let apps =
        List.init tenants (fun i ->
            let tseed = seed + (7919 * i) in
            let t_faults = { faults with Fleet.Faults.seed = tseed + 2 } in
            let t_base = { base with Fleet.Router.faults = t_faults } in
            let t_fb =
              { fb_cfg with
                Fleet.Router.faults = t_faults;
                fallback =
                  (if fb_rate > 0.0 then
                     Some
                       (Fleet.Scenario.fallback ~rate:fb_rate
                          ~seed:(tseed + 1) ~original ())
                   else None) }
            in
            { Fleet.Sharded.app_id = i;
              app_trace =
                (fun () ->
                   Platform.Trace.poisson ~seed:tseed ~rate_per_s:rate
                     ~duration_s:duration
                     ~name:(Printf.sprintf "tenant-%d" i));
              app_variants =
                [ { Fleet.Sharded.v_group = "original"; v_cfg = t_base };
                  { Fleet.Sharded.v_group = "trimmed"; v_cfg = t_fb } ] })
      in
      let groups = Fleet.Sharded.run apps in
      Printf.printf
        "Fleet: %s x %d tenants, poisson %g req/s each for %g s (seed %d), \
         policy %s, %d shard(s)\n\n"
        app tenants rate duration seed (Fleet.Pool.policy_name pol)
        (Fleet.Sharded.shard_count ());
      print_endline Fleet.Report.table_header;
      List.iter
        (fun (g : Fleet.Sharded.group) ->
           print_endline (Fleet.Report.table_row g.Fleet.Sharded.g_summary))
        groups
    end else begin
      let trace =
        Platform.Trace.poisson ~seed ~rate_per_s:rate ~duration_s:duration
          ~name:(Printf.sprintf "poisson-%g" rate)
      in
      let simulate label cfg =
        Fleet.Report.summarize ~label cfg (Fleet.Router.run cfg trace)
      in
      Printf.printf
        "Fleet: %s, poisson %g req/s for %g s (seed %d), policy %s\n\n" app
        rate duration seed (Fleet.Pool.policy_name pol);
      print_endline Fleet.Report.table_header;
      print_endline (Fleet.Report.table_row (simulate "original" base));
      print_endline (Fleet.Report.table_row (simulate "trimmed" fb_cfg))
    end
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Simulate a fleet of instances serving an arrival trace, \
             original vs lambda-trim-optimized.")
    Term.(const run $ app_arg $ rate_arg $ duration_arg $ policy_arg
          $ keep_alive_arg $ max_idle_arg $ capacity_arg $ max_pending_arg
          $ timeout_arg $ fb_rate_arg $ seed_arg $ init_failure_arg
          $ crash_arg $ error_arg $ churn_arg $ retries_arg $ retry_base_arg
          $ retry_cap_arg $ request_timeout_arg $ breaker_threshold_arg
          $ breaker_window_arg $ breaker_cooldown_arg $ hedge_delay_arg
          $ tenants_arg $ shards_arg $ jobs_arg $ trace_arg $ backend_arg)

(* --- calibrate ------------------------------------------------------------ *)

(* Check every synthesized application against its paper metrics: the
   workload generator is supposed to land within tolerance of Table 1. *)
let calibrate_cmd =
  let run () =
    Printf.printf "%-18s %22s %22s %22s %s\n" "" "size MB (ours/ppr)"
      "import s (ours/ppr)" "e2e s (ours/ppr)" "status";
    let failures = ref 0 in
    List.iter
      (fun (spec : Workloads.Apps.spec) ->
         let d = Workloads.Codegen.deployment spec in
         let sim =
           Platform.Lambda_sim.create ~params:Experiments.Common.table1_params d
         in
         let event =
           match spec.Workloads.Apps.tests with (_, e) :: _ -> e | [] -> "{}"
         in
         let cold, _ = Platform.Lambda_sim.measure_cold_and_warm ~event sim in
         let p = spec.Workloads.Apps.paper in
         let size = Platform.Deployment.image_mb d in
         let import_s = cold.Platform.Lambda_sim.init_ms /. 1000.0 in
         let e2e_s = cold.Platform.Lambda_sim.e2e_ms /. 1000.0 in
         let within tol a b = Float.abs (a -. b) <= tol *. b in
         (* size and import are generator-controlled and checked strictly;
            E2E is informational — the paper's per-app platform overheads
            (instance assignment, image caching) are not modelled per app *)
         let ok =
           within 0.05 size p.Workloads.Apps.p_size_mb
           && within 0.30 import_s p.Workloads.Apps.p_import_s
         in
         if not ok then incr failures;
         Printf.printf "%-18s %10.1f /%9.1f %10.2f /%9.2f %10.2f /%9.2f %s\n"
           spec.Workloads.Apps.name size p.Workloads.Apps.p_size_mb import_s
           p.Workloads.Apps.p_import_s e2e_s p.Workloads.Apps.p_e2e_s
           (if ok then "ok" else "OUT OF BAND"))
      Workloads.Apps.all;
    if !failures > 0 then begin
      Printf.printf "%d applications out of calibration band\n" !failures;
      exit 1
    end
    else print_endline "all applications within calibration bands"
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:"Check every synthesized app against its Table-1 paper metrics.")
    Term.(const run $ const ())

(* --- experiments ---------------------------------------------------------- *)

let experiments_cmd =
  let only_arg =
    Arg.(value & opt_all string [] & info [ "o"; "only" ] ~docv:"ID"
           ~doc:"Run only this experiment (repeatable). IDs: fig1 table1 fig2 \
                 fig8 table2 fig9 table3 fig10 fig11 fig12 fig13 fig14 table4.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Also write each experiment's output to DIR/<id>.txt.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"DIR"
             ~doc:"Write machine-readable rows to DIR/<id>.csv (experiments \
                   with structured data only).")
  in
  let run only out csv shards jobs trace backend optimizer journal resume
      memo_dir memo_cap =
    setup_backend backend;
    (* committed experiments that exercise the oracle memo create private
       caches; attaching a store to the global memo only accelerates
       wall-clock, so committed CSVs stay byte-identical either way *)
    setup_memo memo_dir memo_cap;
    (* committed experiments pin their own optimizer families (the lazy
       experiment runs all of them side by side), so the process-wide knob
       is inert here by construction — the CI smoke step byte-diffs
       `--optimizer none` output against the committed CSVs to prove it *)
    setup_optimizer optimizer;
    setup_jobs jobs;
    setup_shards shards;
    (* experiments build their pipelines internally; the process-wide spec
       is how --journal/--resume reach those runs *)
    Trim.Journal.configure ~dir:journal ~resume;
    with_chaos @@ fun () ->
    with_trace trace @@ fun () ->
    let entries =
      match only with
      | [] -> Experiments.Registry.all
      | ids ->
        List.filter_map
          (fun id ->
             match Experiments.Registry.find id with
             | Some e -> Some e
             | None ->
               Printf.eprintf "unknown experiment %S (known: %s)\n" id
                 (String.concat ", " Experiments.Registry.ids);
               None)
          ids
    in
    let ensure_dir = function
      | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
      | _ -> ()
    in
    ensure_dir out;
    ensure_dir csv;
    let write dir name contents =
      (* atomic: a crash mid-export never leaves a torn result file *)
      Trim.Journal.write_file_atomic ~path:(Filename.concat dir name) contents
    in
    List.iter
      (fun (e : Experiments.Registry.entry) ->
         let text = e.Experiments.Registry.print () in
         print_string text;
         (match out with
          | Some dir -> write dir (e.Experiments.Registry.id ^ ".txt") text
          | None -> ());
         match csv, e.Experiments.Registry.csv with
         | Some dir, Some rows ->
           (* filenames use underscores (e.g. trace-replay ->
              trace_replay.csv) so ids stay CLI-friendly and files
              plot-tool-friendly *)
           let file =
             String.map
               (fun c -> if c = '-' then '_' else c)
               e.Experiments.Registry.id
           in
           write dir (file ^ ".csv") (rows ())
         | _ -> ())
      entries;
    (* machine-greppable caching-substrate summary (the CI smoke step checks
       oracle_hits > 0); virtual results never depend on cache traffic *)
    Printf.printf
      "cache-stats: parse_hits=%d parse_misses=%d oracle_hits=%d \
       oracle_misses=%d\n"
      (Minipy.Parse_cache.hits Minipy.Parse_cache.global)
      (Minipy.Parse_cache.misses Minipy.Parse_cache.global)
      (Trim.Oracle.Cache.hits Trim.Oracle.Cache.global)
      (Trim.Oracle.Cache.misses Trim.Oracle.Cache.global)
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures on the simulator.")
    Term.(const run $ only_arg $ out_arg $ csv_arg $ shards_arg $ jobs_arg
          $ trace_arg $ backend_arg $ optimizer_arg $ journal_arg
          $ resume_flag $ memo_dir_arg $ memo_cap_arg)

(* --- redebloat ------------------------------------------------------------ *)

(* Incremental fleet re-debloating: every app keeps a manifest under
   --state; runs with a manifest replay unchanged modules and warm-start
   changed ones, runs without one are cold and just prime the state. *)
let redebloat_cmd =
  let apps_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"APP"
             ~doc:"Applications to re-debloat (default: every synthesized \
                   app).")
  in
  let state_arg =
    Arg.(required & opt (some string) None
         & info [ "state" ] ~docv:"DIR"
             ~doc:"Manifest directory: <DIR>/<app>.manifest is read as the \
                   baseline (when present) and rewritten after each run.")
  in
  let run apps state k scoring verbose jobs trace backend memo_dir memo_cap =
    setup_backend backend;
    setup_jobs jobs;
    setup_memo memo_dir memo_cap;
    with_trace trace @@ fun () ->
    setup_logs verbose;
    let known = List.map (fun s -> s.Workloads.Apps.name) Workloads.Apps.all in
    let apps = if apps = [] then known else apps in
    List.iter
      (fun a ->
         if not (List.mem a known) then begin
           Printf.eprintf "unknown application %S (known: %s)\n" a
             (String.concat ", " known);
           exit 2
         end)
      apps;
    Trim.Journal.mkdir_p state;
    let method_ = Trim.Scoring.method_of_string scoring in
    let job app =
      let path = Filename.concat state (app ^ ".manifest") in
      let baseline = Trim.Manifest.load ~path in
      let d = Workloads.Suite.deployment_of app in
      let r =
        Trim.Pipeline.run
          ~options:{ Trim.Pipeline.default_options with
                     k; scoring = method_; log = verbose;
                     baseline; manifest_path = Some path }
          d
      in
      (app, baseline <> None, r)
    in
    (* per-app jobs fan out over the configured pool; each pipeline runs
       its debloat stage sequentially inside its job (nested submission is
       pool-safe, but per-app parallelism is the win here) *)
    let rows = Parallel.Pool.map_default job apps in
    Printf.printf "%-18s %5s %10s %7s %10s %8s %9s\n" "app" "mode" "replayed"
      "seeded" "seed-hits" "queries" "wall-s";
    let t_queries = ref 0 and t_replayed = ref 0 and t_mods = ref 0 in
    List.iter
      (fun (app, warm, (r : Trim.Pipeline.report)) ->
         let modules = List.length r.Trim.Pipeline.module_results in
         let replayed = List.length r.Trim.Pipeline.replayed_modules in
         t_queries := !t_queries + r.Trim.Pipeline.total_oracle_queries;
         t_replayed := !t_replayed + replayed;
         t_mods := !t_mods + modules;
         Printf.printf "%-18s %5s %7d/%2d %7d %10d %8d %9.2f\n" app
           (if warm then "warm" else "cold") replayed modules
           r.Trim.Pipeline.warm_seeded r.Trim.Pipeline.warm_seed_hits
           r.Trim.Pipeline.total_oracle_queries
           r.Trim.Pipeline.debloat_wall_s)
      rows;
    Printf.printf
      "Total: %d/%d modules replayed, %d oracle queries across %d apps\n"
      !t_replayed !t_mods !t_queries (List.length rows)
  in
  Cmd.v
    (Cmd.info "redebloat"
       ~doc:"Re-debloat applications incrementally against per-app manifests \
             kept under $(b,--state), fanning the apps out over the worker \
             pool.")
    Term.(const run $ apps_arg $ state_arg $ k_arg $ scoring_arg
          $ verbose_flag $ jobs_arg $ trace_arg $ backend_arg $ memo_dir_arg
          $ memo_cap_arg)

let main =
  Cmd.group
    (Cmd.info "ltrim" ~version:"1.0.0"
       ~doc:"Cost-driven debloating for serverless applications (lambda-trim).")
    [ list_cmd; analyze_cmd; profile_cmd; debloat_cmd; invoke_cmd; fleet_cmd;
      calibrate_cmd; experiments_cmd; redebloat_cmd ]

let () = exit (Cmd.eval main)
