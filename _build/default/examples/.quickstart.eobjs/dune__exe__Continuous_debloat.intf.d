examples/continuous_debloat.mli:
