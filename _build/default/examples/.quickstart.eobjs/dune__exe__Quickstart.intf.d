examples/quickstart.mli:
