examples/cost_explorer.ml: Array Checkpoint List Platform Printf Sys Trim Workloads
