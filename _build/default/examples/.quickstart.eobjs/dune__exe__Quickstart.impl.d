examples/quickstart.ml: Minipy Platform Printf String Trim
