examples/fallback_demo.ml: List Minipy Platform Printf String Trim
