examples/ml_inference.ml: Checkpoint Fmt List Platform Printf String Trim Workloads
