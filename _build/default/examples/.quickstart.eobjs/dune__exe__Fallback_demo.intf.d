examples/fallback_demo.mli:
