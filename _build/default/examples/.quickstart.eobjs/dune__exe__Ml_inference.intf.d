examples/ml_inference.mli:
