examples/continuous_debloat.ml: List Minipy Platform Printf Str Trim Workloads
