(* Continuous debloating (§9): a CI-style loop where the function is updated
   and re-debloated. The first run pays the full Delta-Debugging cost; later
   runs seed DD with the previous keep-sets, so an unchanged or lightly-
   edited module costs one confirmation query instead of a full search.

     dune exec examples/continuous_debloat.exe *)

let () =
  let app = Workloads.Suite.deployment_of "lightgbm" in
  let options = { Trim.Pipeline.default_options with k = 8 } in

  (* v1: initial deployment, fresh debloating *)
  let v1 = Trim.Pipeline.run ~options app in
  Printf.printf "v1 (fresh)     : %4d oracle queries, %d modules debloated\n"
    v1.Trim.Pipeline.total_oracle_queries
    (List.length v1.Trim.Pipeline.module_results);

  (* v2: a no-op redeploy (e.g. dependency pin bump) *)
  let v2 = Trim.Pipeline.run_continuous ~options ~previous:v1 app in
  Printf.printf "v2 (no change) : %4d oracle queries, %d/%d modules seeded\n"
    v2.Trim.Pipeline.base.Trim.Pipeline.total_oracle_queries
    v2.Trim.Pipeline.seed_hits v2.Trim.Pipeline.seeded_modules;

  (* v3: the handler grows a new code path using one more library function *)
  let updated = Platform.Deployment.copy app in
  let src = Platform.Deployment.handler_source updated in
  let src' =
    Str.global_replace
      (Str.regexp_string "  result = lightgbm.run_task(acc)")
      "  acc = lightgbm.f2(acc)\n  result = lightgbm.run_task(acc)"
      src
  in
  Minipy.Vfs.add_file updated.Platform.Deployment.vfs "handler.py" src';
  let v3 = Trim.Pipeline.run_continuous ~options ~previous:v1 updated in
  Printf.printf "v3 (new path)  : %4d oracle queries, %d/%d modules seeded\n"
    v3.Trim.Pipeline.base.Trim.Pipeline.total_oracle_queries
    v3.Trim.Pipeline.seed_hits v3.Trim.Pipeline.seeded_modules;

  (* the seeded results are still correct and still trimmed *)
  let check label report reference =
    let oracle, _ = Trim.Oracle.for_reference reference in
    Printf.printf "%s passes its oracle: %b\n" label
      (oracle report.Trim.Pipeline.optimized)
  in
  check "v2" v2.Trim.Pipeline.base app;
  check "v3" v3.Trim.Pipeline.base updated;

  let cold d =
    let sim = Platform.Lambda_sim.create d in
    (Platform.Lambda_sim.invoke sim ~now_s:0.0 ~event:"{\"x\": 1}" ())
      .Platform.Lambda_sim.init_ms
  in
  Printf.printf "v3 init: original %.0f ms -> continuous-debloated %.0f ms\n"
    (cold updated)
    (cold v3.Trim.Pipeline.base.Trim.Pipeline.optimized)
