(* ML-inference scenario: the resnet application (Table 1's heaviest
   RainbowCake workload, torch + numpy + PIL).

   Shows the full λ-trim pipeline, the resulting cold-start speed-up (the
   paper's headline 2×), and how λ-trim composes with checkpoint/restore
   (§8.6): debloating shrinks the CRIU checkpoint, so C/R + λ-trim beats
   either alone.

     dune exec examples/ml_inference.exe *)

let () =
  let spec = Workloads.Apps.find "resnet" in
  let app = Workloads.Codegen.deployment spec in
  Printf.printf "Application: resnet (image %.0f MB, libraries: %s)\n"
    (Platform.Deployment.image_mb app)
    (String.concat ", "
       (List.map (fun l -> l.Workloads.Libspec.l_name) spec.Workloads.Apps.libs));

  (* 1. profile: where does Function Initialization go? *)
  let profile = Trim.Profiler.profile app in
  Printf.printf "\nFunction Initialization: %.0f ms, %.0f MB across %d modules\n"
    profile.Trim.Profiler.total_ms profile.Trim.Profiler.total_mb
    (List.length profile.Trim.Profiler.modules);
  Printf.printf "Top modules by marginal monetary cost (Eq. 2):\n";
  List.iteri
    (fun i (mp : Trim.Profiler.module_profile) ->
       if i < 5 then
         Printf.printf "  %d. %-18s t = %7.1f ms, m = %6.1f MB\n" (i + 1)
           mp.Trim.Profiler.mp_name mp.Trim.Profiler.mp_incl_ms
           mp.Trim.Profiler.mp_incl_mb)
    (Trim.Scoring.rank Trim.Scoring.Combined profile);

  (* 2. debloat *)
  let report = Trim.Pipeline.run app in
  Printf.printf "\nDebloated %d modules in %.2f s (%d oracle queries):\n"
    (List.length report.Trim.Pipeline.module_results)
    report.Trim.Pipeline.debloat_wall_s
    report.Trim.Pipeline.total_oracle_queries;
  List.iteri
    (fun i m ->
       if i < 4 then
         Printf.printf "  %s\n" (Fmt.str "%a" Trim.Debloater.pp_module_result m))
    report.Trim.Pipeline.module_results;

  (* 3. deploy both and compare cold starts *)
  let cold d =
    (* fast-path platform: provisioned runtime, cached image layers *)
    let params =
      { Platform.Lambda_sim.default_params with
        instance_init_ms = 300.0;
        transmission_mb_per_s = 2000.0 }
    in
    let sim = Platform.Lambda_sim.create ~params d in
    Platform.Lambda_sim.invoke sim ~now_s:0.0 ~event:"{\"x\": 3}" ()
  in
  let b = cold app and a = cold report.Trim.Pipeline.optimized in
  let open Platform.Lambda_sim in
  Printf.printf "\nCold start  original : e2e %7.0f ms (init %6.0f), %4.0f MB, $%.3e\n"
    b.e2e_ms b.init_ms b.peak_memory_mb b.cost;
  Printf.printf "Cold start  trimmed  : e2e %7.0f ms (init %6.0f), %4.0f MB, $%.3e\n"
    a.e2e_ms a.init_ms a.peak_memory_mb a.cost;
  Printf.printf "E2E speed-up: %.2fx (paper: up to 2x on resnet)\n"
    (Platform.Metrics.speedup ~before:b.e2e_ms ~after:a.e2e_ms);

  (* 4. compose with checkpoint/restore *)
  Printf.printf "\nInitialization time under C/R (Figure 12 variants):\n";
  List.iter
    (fun v ->
       let ms =
         Checkpoint.Criu.init_time_ms ~variant:v ~orig_init_ms:b.init_ms
           ~orig_post_init_mb:b.peak_memory_mb ~trim_init_ms:a.init_ms
           ~trim_post_init_mb:a.peak_memory_mb ()
       in
       Printf.printf "  %-18s %7.0f ms\n" (Checkpoint.Criu.variant_name v) ms)
    [ Checkpoint.Criu.Original; Checkpoint.Criu.Cr; Checkpoint.Criu.Trimmed;
      Checkpoint.Criu.Cr_and_trimmed ];
  let ckpt mb = Checkpoint.Criu.checkpoint_size_mb ~post_init_memory_mb:mb () in
  Printf.printf "Checkpoint size: %.0f MB -> %.0f MB after debloating\n"
    (ckpt b.peak_memory_mb) (ckpt a.peak_memory_mb)
