(* Cost explorer: what will this function cost me per month?

   Takes an application, simulates it under three traffic patterns and all
   three provider pricing models, and shows where λ-trim moves the bill —
   including the SnapStart alternative from §8.6.

     dune exec examples/cost_explorer.exe [APP]    (default: spacy) *)

let monthly = 30.0

let traffic_patterns =
  [ ("steady (1/min)",
     fun () -> Platform.Trace.periodic ~period_s:60.0 ~count:(24 * 60) ~name:"steady");
    ("bursty (50-request bursts)",
     fun () ->
       Platform.Trace.bursty ~seed:11 ~burst_size:50 ~burst_rate_per_s:5.0
         ~idle_gap_s:3600.0 ~bursts:24 ~name:"bursty");
    ("sparse (poisson, ~1/h)",
     fun () ->
       Platform.Trace.poisson ~seed:7 ~rate_per_s:(1.0 /. 3600.0)
         ~duration_s:86400.0 ~name:"sparse") ]

let () =
  let app_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "spacy" in
  let spec = Workloads.Apps.find app_name in
  let app = Workloads.Codegen.deployment spec in
  let report = Trim.Pipeline.run app in
  let measure d =
    let sim = Platform.Lambda_sim.create d in
    Platform.Lambda_sim.measure_cold_and_warm
      ~event:(match spec.Workloads.Apps.tests with (_, e) :: _ -> e | [] -> "{}")
      sim
  in
  let orig_cold, orig_warm = measure app in
  let trim_cold, trim_warm = measure report.Trim.Pipeline.optimized in
  let open Platform.Lambda_sim in

  Printf.printf "Cost explorer for %S\n" app_name;
  Printf.printf "  original: cold %.0f ms / %.0f MB, warm %.0f ms\n"
    (orig_cold.init_ms +. orig_cold.exec_ms) orig_cold.peak_memory_mb
    orig_warm.exec_ms;
  Printf.printf "  trimmed : cold %.0f ms / %.0f MB, warm %.0f ms\n\n"
    (trim_cold.init_ms +. trim_cold.exec_ms) trim_cold.peak_memory_mb
    trim_warm.exec_ms;

  (* provider comparison for a single cold start *)
  Printf.printf "One cold start under each provider's pricing:\n";
  List.iter
    (fun pricing ->
       let cost r =
         Platform.Pricing.invocation_cost pricing
           ~duration_ms:(r.init_ms +. r.exec_ms) ~memory_mb:r.peak_memory_mb
       in
       Printf.printf "  %-6s original $%.3e -> trimmed $%.3e\n"
         (Platform.Pricing.provider_name pricing.Platform.Pricing.provider)
         (cost orig_cold) (cost trim_cold))
    [ Platform.Pricing.aws; Platform.Pricing.gcp; Platform.Pricing.azure ];

  (* monthly bills per traffic pattern (24h trace x 30) *)
  Printf.printf "\nProjected monthly bill (AWS, 15-min keep-alive):\n";
  List.iter
    (fun (label, mk_trace) ->
       let trace = mk_trace () in
       let bill cold warm =
         let r =
           Platform.Trace.replay trace ~keep_alive_s:900.0
             ~exec_s:(warm.exec_ms /. 1000.0)
         in
         let day =
           (float_of_int r.Platform.Trace.cold_starts *. cold.cost)
           +. (float_of_int r.Platform.Trace.warm_starts *. warm.cost)
         in
         (day *. monthly, r)
       in
       let orig_bill, replay = bill orig_cold orig_warm in
       let trim_bill, _ = bill trim_cold trim_warm in
       Printf.printf "  %-28s %4d cold / %5d warm per day: $%.4f -> $%.4f (%.1f%%)\n"
         label replay.Platform.Trace.cold_starts replay.Platform.Trace.warm_starts
         orig_bill trim_bill
         (Platform.Metrics.improvement_pct ~before:orig_bill ~after:trim_bill))
    traffic_patterns;

  (* SnapStart alternative *)
  Printf.printf "\nSnapStart instead of keep-alive (sparse traffic, 24h):\n";
  let sparse = (List.nth traffic_patterns 2 |> snd) () in
  let snap r =
    let replay =
      Platform.Trace.replay sparse ~keep_alive_s:900.0
        ~exec_s:(r.exec_ms /. 1000.0)
    in
    let snapshot_mb =
      Checkpoint.Snapstart.snapshot_size_mb ~post_init_memory_mb:r.peak_memory_mb
        ~image_mb:(Platform.Deployment.image_mb app)
    in
    Checkpoint.Snapstart.costs_over_window ~lambda_pricing:Platform.Pricing.aws
      ~snapshot_mb ~memory_mb:r.peak_memory_mb
      ~billed_ms_cold:(200.0 +. r.exec_ms) ~billed_ms_warm:r.exec_ms
      ~cold_starts:replay.Platform.Trace.cold_starts
      ~warm_starts:replay.Platform.Trace.warm_starts ~window_s:86400.0 ()
  in
  let so = snap orig_cold and st = snap trim_cold in
  Printf.printf
    "  original: invocation $%.5f + cache/restore $%.5f (SnapStart share %.0f%%)\n"
    so.Checkpoint.Snapstart.invocation_cost
    (so.Checkpoint.Snapstart.cache_cost +. so.Checkpoint.Snapstart.restore_cost)
    (100.0 *. Checkpoint.Snapstart.snapstart_share so);
  Printf.printf
    "  trimmed : invocation $%.5f + cache/restore $%.5f (SnapStart share %.0f%%)\n"
    st.Checkpoint.Snapstart.invocation_cost
    (st.Checkpoint.Snapstart.cache_cost +. st.Checkpoint.Snapstart.restore_cost)
    (100.0 *. Checkpoint.Snapstart.snapstart_share st)
