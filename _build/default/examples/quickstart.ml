(* Quickstart: the paper's running example (§6.2, Figures 5-7).

   We build the simplified `torch` library and the application of Figure 5,
   then run λ-trim and watch Delta Debugging discover that torch.nn.MSELoss
   and torch.optim.SGD are redundant.

     dune exec examples/quickstart.exe *)

let torch_init =
  "from torch.nn import Linear, MSELoss\n\
   from torch.optim import SGD\n\
   import simrt\n\
   simrt.cpu_ms(40)\n\
   class tensor:\n\
  \  def __init__(self, data):\n\
  \    self.data = data\n\
   def add(t1, t2):\n\
  \  return tensor(t1.data + t2.data)\n\
   def view(t, dim1, dim2):\n\
  \  return tensor(t.data)\n"

let torch_nn =
  "import simrt\n\
   simrt.cpu_ms(80)\n\
   simrt.alloc_mb(24)\n\
   class Linear:\n\
  \  def __init__(self, n_in, n_out):\n\
  \    self.n_in = n_in\n\
  \    self.n_out = n_out\n\
  \    self.weights = None\n\
  \    self.bias = None\n\
  \  def __call__(self, x):\n\
  \    return x.data * self.n_in + self.n_out\n\
   class MSELoss:\n\
  \  def __init__(self):\n\
  \    simrt.alloc_mb(16)\n\
   mse_tables = []\n\
   simrt.alloc_mb(12)\n"

let torch_optim =
  "import simrt\n\
   simrt.cpu_ms(120)\n\
   simrt.alloc_mb(32)\n\
   class SGD:\n\
  \  def __init__(self, params, lr=0.01):\n\
  \    self.lr = lr\n"

(* Figure 5, adapted: uses tensor/add/view/Linear, never MSELoss or SGD. *)
let handler =
  "import torch\n\
   def handler(event, context):\n\
  \  x = torch.tensor([1.0, 2.0])\n\
  \  y = torch.tensor([3.0, 4.0])\n\
  \  z = torch.view(torch.add(x, y), 2, 1)\n\
  \  model = torch.nn.Linear(2, 1)\n\
  \  result = model(z)\n\
  \  print(result)\n\
  \  return {\"result\": result}\n"

let () =
  let vfs = Minipy.Vfs.create () in
  Minipy.Vfs.add_file vfs "site-packages/torch/__init__.py" torch_init;
  Minipy.Vfs.add_file vfs "site-packages/torch/nn.py" torch_nn;
  Minipy.Vfs.add_file vfs "site-packages/torch/optim.py" torch_optim;
  Minipy.Vfs.add_file vfs "handler.py" handler;
  let app =
    Platform.Deployment.make ~name:"fig5-torch" ~vfs ~handler_file:"handler.py"
      ~handler_name:"handler"
      ~test_cases:[ Platform.Deployment.test_case ~name:"t1" "{}" ]
  in

  print_endline "=== Original torch/__init__.py (Figure 7a) ===";
  print_string torch_init;

  (* Watch DD at work (Figure 6): every oracle query on torch's attributes. *)
  print_endline "\n=== Delta Debugging walkthrough (Figure 6) ===";
  let oracle, _ = Trim.Oracle.for_reference app in
  let analysis = Trim.Static_analyzer.analyze app in
  let protected =
    Trim.Static_analyzer.protected_attrs analysis ~module_name:"torch"
  in
  let step_no = ref 0 in
  let optimized, result =
    Trim.Debloater.debloat_module
      ~on_step:(fun step ->
          incr step_no;
          Printf.printf "  step %2d: keep {%s} -> %s\n" !step_no
            (String.concat ", " step.Trim.Dd.step_candidate)
            (if step.Trim.Dd.step_passed then "PASS" else "fail"))
      ~oracle ~protected app ~module_name:"torch"
  in
  Printf.printf "\nProtected by PyCG (never offered to DD): %s\n"
    (String.concat ", " result.Trim.Debloater.protected);
  Printf.printf "Removed attributes: %s\n"
    (String.concat ", " result.Trim.Debloater.removed_attrs);

  print_endline "\n=== Debloated torch/__init__.py (Figure 7b) ===";
  print_string
    (Minipy.Vfs.read_exn optimized.Platform.Deployment.vfs
       "site-packages/torch/__init__.py");

  (* Deploy both and compare a cold start. *)
  print_endline "\n=== Cold start: original vs debloated ===";
  let run d =
    let sim = Platform.Lambda_sim.create d in
    Platform.Lambda_sim.invoke sim ~now_s:0.0 ()
  in
  let before = run app and after = run optimized in
  let open Platform.Lambda_sim in
  Printf.printf "original : init %6.1f ms, memory %6.1f MB, cost $%.3e\n"
    before.init_ms before.peak_memory_mb before.cost;
  Printf.printf "debloated: init %6.1f ms, memory %6.1f MB, cost $%.3e\n"
    after.init_ms after.peak_memory_mb after.cost;
  Printf.printf "stdout unchanged: %b\n"
    (String.equal before.stdout after.stdout)
