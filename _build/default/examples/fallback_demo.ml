(* Fallback demo (§5.4): what happens when the oracle set is too weak.

   We debloat the markdown app with an oracle that only ever renders plain
   text, then send an input that exercises a code path the oracle never saw.
   The wrapper catches the AttributeError, re-invokes the original function,
   returns its answer, and tells the user to re-run λ-trim with the failing
   input added — which we then do, showing the repaired deployment.

     dune exec examples/fallback_demo.exe *)

let lib_init =
  "import simrt\n\
   simrt.cpu_ms(30)\n\
   from md._render import render_text\n\
   from md._tables import render_table\n\
   simrt.alloc_mb(2)\n\
   def render(event):\n\
  \  if event.get(\"table\", False):\n\
  \    return render_table(event[\"rows\"])\n\
  \  return render_text(event[\"text\"])\n"

let lib_render =
  "import simrt\nsimrt.cpu_ms(20)\nsimrt.alloc_mb(6)\n\
   def render_text(s):\n  return \"<p>\" + s + \"</p>\"\n"

let lib_tables =
  "import simrt\nsimrt.cpu_ms(60)\nsimrt.alloc_mb(18)\n\
   def render_table(rows):\n  return \"<table rows=\" + str(rows) + \">\"\n"

(* The handler only ever names md.render — which attributes render needs is
   decided dynamically inside the library, so the static analyzer cannot
   protect render_table; only the oracle can. *)
let handler =
  "import md\n\
   def handler(event, context):\n\
  \  out = md.render(event)\n\
  \  print(out)\n\
  \  return {\"statusCode\": 200, \"body\": out}\n"

let make_app ~tests =
  let vfs = Minipy.Vfs.create () in
  Minipy.Vfs.add_file vfs "site-packages/md/__init__.py" lib_init;
  Minipy.Vfs.add_file vfs "site-packages/md/_render.py" lib_render;
  Minipy.Vfs.add_file vfs "site-packages/md/_tables.py" lib_tables;
  Minipy.Vfs.add_file vfs "handler.py" handler;
  Platform.Deployment.make ~name:"markdown-svc" ~vfs ~handler_file:"handler.py"
    ~handler_name:"handler"
    ~test_cases:
      (List.map (fun (n, e) -> Platform.Deployment.test_case ~name:n e) tests)

let weak_tests = [ ("plain", "{\"text\": \"hello\"}") ]
let table_event = "{\"table\": True, \"rows\": 3}"

let () =
  (* 1. debloat against the WEAK oracle: table rendering looks redundant *)
  let app = make_app ~tests:weak_tests in
  let report = Trim.Pipeline.run app in
  let trimmed = report.Trim.Pipeline.optimized in
  Printf.printf "Debloated with weak oracle; removed attributes: %s\n"
    (String.concat ", "
       (List.concat_map
          (fun m -> m.Trim.Debloater.removed_attrs)
          report.Trim.Pipeline.module_results));

  (* 2. a table request arrives: the wrapper falls back to the original *)
  let trimmed_sim = Platform.Lambda_sim.create trimmed in
  let original_sim = Platform.Lambda_sim.create app in
  let r =
    Trim.Fallback.invoke ~event:table_event ~trimmed_sim ~original_sim
      ~now_s:0.0 ()
  in
  Printf.printf "\nTable request against the trimmed function:\n";
  Printf.printf "  used fallback: %b\n" r.Trim.Fallback.used_fallback;
  (match r.Trim.Fallback.notification with
   | Some n -> Printf.printf "  notification: %s\n" n
   | None -> ());
  (match r.Trim.Fallback.outcome with
   | Platform.Lambda_sim.Ok v ->
     Printf.printf "  response: %s\n" (Minipy.Value.to_repr v)
   | Platform.Lambda_sim.Error e ->
     Printf.printf "  ERROR: %s: %s\n" e.Minipy.Value.exc_class
       e.Minipy.Value.exc_msg);
  Printf.printf "  e2e with fallback: %.0f ms (trimmed alone was %.0f ms)\n"
    r.Trim.Fallback.e2e_ms
    r.Trim.Fallback.trimmed_record.Platform.Lambda_sim.e2e_ms;

  (* 3. re-run lambda-trim with the failing input added to the oracle set *)
  let repaired_app =
    make_app ~tests:(weak_tests @ [ ("table", table_event) ])
  in
  let report2 = Trim.Pipeline.run repaired_app in
  let repaired = report2.Trim.Pipeline.optimized in
  let sim = Platform.Lambda_sim.create repaired in
  let r2 = Platform.Lambda_sim.invoke sim ~now_s:0.0 ~event:table_event () in
  Printf.printf "\nAfter re-running lambda-trim with the input added:\n";
  (match r2.Platform.Lambda_sim.outcome with
   | Platform.Lambda_sim.Ok v ->
     Printf.printf "  table request handled natively: %s\n"
       (Minipy.Value.to_repr v)
   | Platform.Lambda_sim.Error e ->
     Printf.printf "  still failing: %s\n" e.Minipy.Value.exc_class);
  Printf.printf "  removed attributes now: %s\n"
    (String.concat ", "
       (List.concat_map
          (fun m -> m.Trim.Debloater.removed_attrs)
          report2.Trim.Pipeline.module_results))
