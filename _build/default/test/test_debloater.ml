(* Debloater: attribute-level DD against the oracle on real deployments. *)

open Trim
module SS = Callgraph.Pycg.String_set

let debloat_tiny () =
  let tiny = Workloads.Suite.tiny_app () in
  let oracle, _ = Oracle.for_reference tiny in
  let analysis = Static_analyzer.analyze tiny in
  let protected = Static_analyzer.protected_attrs analysis ~module_name:"tinylib" in
  Debloater.debloat_module ~oracle ~protected tiny ~module_name:"tinylib"

let cases =
  [ Alcotest.test_case "removes unused attributes" `Quick (fun () ->
        let _, r = debloat_tiny () in
        Alcotest.(check bool)
          (Printf.sprintf "removed %d of %d" (List.length r.Debloater.removed_attrs)
             r.Debloater.attrs_before)
          true
          (List.length r.Debloater.removed_attrs > r.Debloater.attrs_before / 3));
    Alcotest.test_case "debloated app still passes the oracle" `Quick (fun () ->
        let tiny = Workloads.Suite.tiny_app () in
        let oracle, _ = Oracle.for_reference tiny in
        let analysis = Static_analyzer.analyze tiny in
        let protected =
          Static_analyzer.protected_attrs analysis ~module_name:"tinylib"
        in
        let d', _ = Debloater.debloat_module ~oracle ~protected tiny
            ~module_name:"tinylib"
        in
        Alcotest.(check bool) "passes" true (oracle d'));
    Alcotest.test_case "handler-used attributes survive" `Quick (fun () ->
        let d', r = debloat_tiny () in
        ignore r;
        let src =
          Minipy.Vfs.read_exn d'.Platform.Deployment.vfs
            "site-packages/tinylib/__init__.py"
        in
        let prog = Minipy.Parser.parse ~file:"<m>" src in
        let attrs = Attrs.attrs_of_program prog in
        List.iter
          (fun needed ->
             Alcotest.(check bool) (needed ^ " kept") true (List.mem needed attrs))
          [ "f0"; "f1"; "run_task"; "Engine" ]);
    Alcotest.test_case "heavy re-exports are removed" `Quick (fun () ->
        let d', _ = debloat_tiny () in
        let src =
          Minipy.Vfs.read_exn d'.Platform.Deployment.vfs
            "site-packages/tinylib/__init__.py"
        in
        Alcotest.(check bool) "no heavy imports left" false
          (let re = Str.regexp_string "_heavy_" in
           try ignore (Str.search_forward re src 0); true
           with Not_found -> false));
    Alcotest.test_case "debloating reduces init time and memory" `Quick
      (fun () ->
        let tiny = Workloads.Suite.tiny_app () in
        let d', _ = debloat_tiny () in
        let cold d =
          let sim = Platform.Lambda_sim.create d in
          Platform.Lambda_sim.invoke sim ~now_s:0.0 ~event:"{\"x\": 1}" ()
        in
        let before = cold tiny and after = cold d' in
        Alcotest.(check bool)
          (Printf.sprintf "init %.1f -> %.1f"
             before.Platform.Lambda_sim.init_ms after.Platform.Lambda_sim.init_ms)
          true
          (after.Platform.Lambda_sim.init_ms
           < 0.6 *. before.Platform.Lambda_sim.init_ms);
        Alcotest.(check bool)
          (Printf.sprintf "mem %.1f -> %.1f"
             before.Platform.Lambda_sim.peak_memory_mb
             after.Platform.Lambda_sim.peak_memory_mb)
          true
          (after.Platform.Lambda_sim.peak_memory_mb
           < before.Platform.Lambda_sim.peak_memory_mb));
    Alcotest.test_case "result is 1-minimal wrt the oracle" `Quick (fun () ->
        let tiny = Workloads.Suite.tiny_app ~attrs:14 () in
        let oracle, _ = Oracle.for_reference tiny in
        let analysis = Static_analyzer.analyze tiny in
        let protected =
          Static_analyzer.protected_attrs analysis ~module_name:"tinylib"
        in
        let file = "site-packages/tinylib/__init__.py" in
        let d', r = Debloater.debloat_module ~oracle ~protected tiny
            ~module_name:"tinylib"
        in
        (* removing any single kept non-protected attr must fail the oracle *)
        let src = Minipy.Vfs.read_exn d'.Platform.Deployment.vfs file in
        let kept =
          List.filter
            (fun a -> not (List.mem a r.Debloater.protected))
            (Attrs.attrs_of_program (Minipy.Parser.parse ~file src))
        in
        List.iter
          (fun attr ->
             let keep =
               List.filter (fun a -> a <> attr)
                 (Attrs.attrs_of_program (Minipy.Parser.parse ~file src))
             in
             let candidate = Debloater.with_restricted d' ~file ~keep in
             Alcotest.(check bool)
               (Printf.sprintf "removing %s fails" attr)
               false (oracle candidate))
          kept);
    Alcotest.test_case "protected attrs never offered to DD" `Quick (fun () ->
        let _, r = debloat_tiny () in
        List.iter
          (fun p ->
             Alcotest.(check bool) (p ^ " not removed") false
               (List.mem p r.Debloater.removed_attrs))
          r.Debloater.protected);
    Alcotest.test_case "builtin module is a no-op" `Quick (fun () ->
        let tiny = Workloads.Suite.tiny_app () in
        let oracle, _ = Oracle.for_reference tiny in
        let _, r =
          Debloater.debloat_module ~oracle ~protected:SS.empty tiny
            ~module_name:"simrt"
        in
        Alcotest.(check int) "no attrs" 0 r.Debloater.attrs_before) ]

let suite = [ ("debloater.dd", cases) ]
