(* C/R models: CRIU restore crossover (Fig 12) and SnapStart costs (Fig 13/14). *)

let criu =
  [ Alcotest.test_case "checkpoint size grows with footprint" `Quick (fun () ->
        let s m = Checkpoint.Criu.checkpoint_size_mb ~post_init_memory_mb:m () in
        Alcotest.(check bool) "monotone" true (s 50.0 < s 500.0));
    Alcotest.test_case "restore has a fixed base overhead" `Quick (fun () ->
        let r = Checkpoint.Criu.restore_ms ~checkpoint_mb:0.0 () in
        Alcotest.(check (float 1e-9)) "~100ms" 100.0 r);
    Alcotest.test_case "small apps: C/R slower than plain init" `Quick (fun () ->
        let cr =
          Checkpoint.Criu.init_time_ms ~variant:Checkpoint.Criu.Cr
            ~orig_init_ms:100.0 ~orig_post_init_mb:60.0 ~trim_init_ms:60.0
            ~trim_post_init_mb:45.0 ()
        in
        Alcotest.(check bool) (Printf.sprintf "cr %.0f > 100" cr) true (cr > 100.0));
    Alcotest.test_case "large apps: C/R beats plain init" `Quick (fun () ->
        let cr =
          Checkpoint.Criu.init_time_ms ~variant:Checkpoint.Criu.Cr
            ~orig_init_ms:5000.0 ~orig_post_init_mb:600.0 ~trim_init_ms:2000.0
            ~trim_post_init_mb:400.0 ()
        in
        Alcotest.(check bool) (Printf.sprintf "cr %.0f < 5000" cr) true (cr < 5000.0));
    Alcotest.test_case "combining trim reduces checkpoint and restore" `Quick
      (fun () ->
        let t v =
          Checkpoint.Criu.init_time_ms ~variant:v ~orig_init_ms:3000.0
            ~orig_post_init_mb:500.0 ~trim_init_ms:1200.0 ~trim_post_init_mb:300.0 ()
        in
        Alcotest.(check bool) "cr+trim < cr" true
          (t Checkpoint.Criu.Cr_and_trimmed < t Checkpoint.Criu.Cr));
    Alcotest.test_case "variant names" `Quick (fun () ->
        Alcotest.(check string) "orig" "original"
          (Checkpoint.Criu.variant_name Checkpoint.Criu.Original)) ]

let snapstart =
  [ Alcotest.test_case "total = parts" `Quick (fun () ->
        let c = { Checkpoint.Snapstart.invocation_cost = 1.0; cache_cost = 2.0;
                  restore_cost = 0.5 }
        in
        Alcotest.(check (float 1e-12)) "sum" 3.5 (Checkpoint.Snapstart.total c);
        Alcotest.(check (float 1e-12)) "share" (2.5 /. 3.5)
          (Checkpoint.Snapstart.snapstart_share c));
    Alcotest.test_case "rare functions dominated by cache cost" `Quick (fun () ->
        let c =
          Checkpoint.Snapstart.costs_over_window
            ~lambda_pricing:Platform.Pricing.aws ~snapshot_mb:300.0
            ~memory_mb:256.0 ~billed_ms_cold:400.0 ~billed_ms_warm:100.0
            ~cold_starts:1 ~warm_starts:3 ~window_s:86400.0 ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "share %.2f > 0.6" (Checkpoint.Snapstart.snapstart_share c))
          true
          (Checkpoint.Snapstart.snapstart_share c > 0.6));
    Alcotest.test_case "hot functions amortize the snapshot" `Quick (fun () ->
        let c =
          Checkpoint.Snapstart.costs_over_window
            ~lambda_pricing:Platform.Pricing.aws ~snapshot_mb:300.0
            ~memory_mb:512.0 ~billed_ms_cold:400.0 ~billed_ms_warm:200.0
            ~cold_starts:10 ~warm_starts:86000 ~window_s:86400.0 ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "share %.2f < 0.5" (Checkpoint.Snapstart.snapstart_share c))
          true
          (Checkpoint.Snapstart.snapstart_share c < 0.5));
    Alcotest.test_case "smaller snapshot, lower snapstart cost" `Quick (fun () ->
        let cost mb =
          let c =
            Checkpoint.Snapstart.costs_over_window
              ~lambda_pricing:Platform.Pricing.aws ~snapshot_mb:mb
              ~memory_mb:256.0 ~billed_ms_cold:300.0 ~billed_ms_warm:100.0
              ~cold_starts:5 ~warm_starts:50 ~window_s:86400.0 ()
          in
          c.Checkpoint.Snapstart.cache_cost +. c.Checkpoint.Snapstart.restore_cost
        in
        Alcotest.(check bool) "monotone" true (cost 150.0 < cost 400.0));
    Alcotest.test_case "snapshot size model" `Quick (fun () ->
        let s = Checkpoint.Snapstart.snapshot_size_mb ~post_init_memory_mb:100.0
            ~image_mb:200.0
        in
        Alcotest.(check bool) "bigger than process image" true
          (s > Checkpoint.Criu.checkpoint_size_mb ~post_init_memory_mb:100.0 ())) ]

let suite = [ ("checkpoint.criu", criu); ("checkpoint.snapstart", snapstart) ]
