(* Static analyzer: import scan and PyCG-style accessed-attribute analysis. *)

module SS = Callgraph.Pycg.String_set

let parse src = Minipy.Parser.parse ~file:"<t>" src

let sorted_set s = List.sort compare (SS.elements s)

let import_scan =
  [ Alcotest.test_case "collects plain and from imports" `Quick (fun () ->
        let prog =
          parse
            "import torch\nimport numpy as np\nfrom torch.nn import Linear, MSELoss\n"
        in
        Alcotest.(check (list string)) "roots" [ "numpy"; "torch" ]
          (Callgraph.Import_scan.root_modules prog));
    Alcotest.test_case "finds imports inside functions" `Quick (fun () ->
        let prog =
          parse "def handler(event, context):\n  import boto3\n  return boto3\n"
        in
        Alcotest.(check (list string)) "roots" [ "boto3" ]
          (Callgraph.Import_scan.root_modules prog));
    Alcotest.test_case "finds imports in try blocks" `Quick (fun () ->
        let prog =
          parse "try:\n  import fast_json\nexcept ImportError:\n  import slow_json\n"
        in
        Alcotest.(check (list string)) "roots" [ "fast_json"; "slow_json" ]
          (Callgraph.Import_scan.root_modules prog));
    Alcotest.test_case "simrt excluded from roots" `Quick (fun () ->
        let prog = parse "import simrt\nimport torch\n" in
        Alcotest.(check (list string)) "roots" [ "torch" ]
          (Callgraph.Import_scan.root_modules prog));
    Alcotest.test_case "dotted modules recorded" `Quick (fun () ->
        let prog = parse "import torch.nn\nfrom torch.optim import SGD\n" in
        Alcotest.(check (list string)) "dotted" [ "torch.nn"; "torch.optim" ]
          (Callgraph.Import_scan.dotted_modules prog)) ]

let accessed =
  [ Alcotest.test_case "direct attribute accesses" `Quick (fun () ->
        let prog = parse "import torch\nx = torch.tensor([1])\ny = torch.add(x, x)\n" in
        let r = Callgraph.Pycg.analyze prog in
        Alcotest.(check (list string)) "attrs" [ "add"; "tensor" ]
          (sorted_set (Callgraph.Pycg.accessed_attrs r "torch")));
    Alcotest.test_case "submodule attribute accesses" `Quick (fun () ->
        let prog = parse "import torch\nm = torch.nn.Linear(2, 1)\n" in
        let r = Callgraph.Pycg.analyze prog in
        Alcotest.(check (list string)) "torch attrs" [ "nn" ]
          (sorted_set (Callgraph.Pycg.accessed_attrs r "torch"));
        Alcotest.(check (list string)) "torch.nn attrs" [ "Linear" ]
          (sorted_set (Callgraph.Pycg.accessed_attrs r "torch.nn")));
    Alcotest.test_case "alias tracking" `Quick (fun () ->
        let prog = parse "import numpy as np\na = np.array([1, 2])\n" in
        let r = Callgraph.Pycg.analyze prog in
        Alcotest.(check (list string)) "numpy attrs" [ "array" ]
          (sorted_set (Callgraph.Pycg.accessed_attrs r "numpy")));
    Alcotest.test_case "assignment alias propagation" `Quick (fun () ->
        let prog = parse "import torch\nt = torch\nx = t.tensor([1])\n" in
        let r = Callgraph.Pycg.analyze prog in
        Alcotest.(check bool) "tensor accessed" true
          (SS.mem "tensor" (Callgraph.Pycg.accessed_attrs r "torch")));
    Alcotest.test_case "from import counts as access" `Quick (fun () ->
        let prog = parse "from torch import tensor, add\n" in
        let r = Callgraph.Pycg.analyze prog in
        Alcotest.(check (list string)) "attrs" [ "add"; "tensor" ]
          (sorted_set (Callgraph.Pycg.accessed_attrs r "torch")));
    Alcotest.test_case "accesses inside function bodies" `Quick (fun () ->
        let prog =
          parse "import torch\ndef handler(e, c):\n  return torch.view(e, 2, 1)\n"
        in
        let r = Callgraph.Pycg.analyze prog in
        Alcotest.(check bool) "view accessed" true
          (SS.mem "view" (Callgraph.Pycg.accessed_attrs r "torch")));
    Alcotest.test_case "accessed_under unions submodules" `Quick (fun () ->
        let prog =
          parse "import torch\nm = torch.nn.Linear(1, 1)\nx = torch.tensor([1])\n"
        in
        let r = Callgraph.Pycg.analyze prog in
        Alcotest.(check (list string)) "under torch" [ "Linear"; "nn"; "tensor" ]
          (sorted_set (Callgraph.Pycg.accessed_under r "torch")));
    Alcotest.test_case "fig5 example accesses" `Quick (fun () ->
        (* the running example of §6.2: MSELoss and SGD are never accessed *)
        let prog =
          parse
            "import torch\n\
             x = torch.tensor([1.0, 2.0])\n\
             y = torch.tensor([3.0, 4.0])\n\
             z = torch.view(torch.add(x, y), 2, 1)\n\
             model = torch.nn.Linear(2, 1)\n\
             print(model(z))\n"
        in
        let r = Callgraph.Pycg.analyze prog in
        let torch_attrs = Callgraph.Pycg.accessed_under r "torch" in
        Alcotest.(check bool) "tensor" true (SS.mem "tensor" torch_attrs);
        Alcotest.(check bool) "add" true (SS.mem "add" torch_attrs);
        Alcotest.(check bool) "view" true (SS.mem "view" torch_attrs);
        Alcotest.(check bool) "Linear" true (SS.mem "Linear" torch_attrs);
        Alcotest.(check bool) "MSELoss not accessed" false (SS.mem "MSELoss" torch_attrs);
        Alcotest.(check bool) "SGD not accessed" false (SS.mem "SGD" torch_attrs)) ]

let call_graph =
  [ Alcotest.test_case "reachability from handler" `Quick (fun () ->
        let prog =
          parse
            "def helper_a():\n  return 1\n\
             def helper_b():\n  return helper_a()\n\
             def unused():\n  return 2\n\
             def handler(e, c):\n  return helper_b()\n"
        in
        let r = Callgraph.Pycg.reachable prog ~entry:"handler" in
        Alcotest.(check bool) "handler" true (SS.mem "handler" r);
        Alcotest.(check bool) "helper_b" true (SS.mem "helper_b" r);
        Alcotest.(check bool) "helper_a (transitive)" true (SS.mem "helper_a" r);
        Alcotest.(check bool) "unused excluded" false (SS.mem "unused" r));
    Alcotest.test_case "callback references are reachable" `Quick (fun () ->
        let prog =
          parse "def cb():\n  return 1\ndef handler(e, c):\n  return apply(cb)\n"
        in
        let r = Callgraph.Pycg.reachable prog ~entry:"handler" in
        Alcotest.(check bool) "cb kept" true (SS.mem "cb" r));
    Alcotest.test_case "cyclic call graph terminates" `Quick (fun () ->
        let prog =
          parse
            "def ping():\n  return pong()\ndef pong():\n  return ping()\n\
             def handler(e, c):\n  return ping()\n"
        in
        let r = Callgraph.Pycg.reachable prog ~entry:"handler" in
        Alcotest.(check bool) "ping" true (SS.mem "ping" r);
        Alcotest.(check bool) "pong" true (SS.mem "pong" r)) ]

let suite =
  [ ("callgraph.import_scan", import_scan);
    ("callgraph.accessed", accessed);
    ("callgraph.call_graph", call_graph) ]
