(* Oracle: stdout+return equivalence across fresh-interpreter runs. *)

open Trim

let tiny = Workloads.Suite.tiny_app ()

let observations =
  [ Alcotest.test_case "observation is deterministic" `Quick (fun () ->
        let o1 = Oracle.observe tiny in
        let o2 = Oracle.observe tiny in
        Alcotest.(check bool) "equivalent" true (Oracle.equivalent o1 o2));
    Alcotest.test_case "one entry per test case" `Quick (fun () ->
        let o = Oracle.observe tiny in
        Alcotest.(check int) "entries" 2 (List.length o.Oracle.per_test));
    Alcotest.test_case "unmodified copy passes its own oracle" `Quick (fun () ->
        let oracle, _ = Oracle.for_reference tiny in
        Alcotest.(check bool) "passes" true
          (oracle (Platform.Deployment.copy tiny)));
    Alcotest.test_case "breaking a needed function fails the oracle" `Quick
      (fun () ->
        let oracle, _ = Oracle.for_reference tiny in
        let broken = Platform.Deployment.copy tiny in
        let path = "site-packages/tinylib/_core.py" in
        let src = Minipy.Vfs.read_exn broken.Platform.Deployment.vfs path in
        (* change f0's arithmetic: output changes, oracle must notice *)
        let src' =
          Str.global_replace (Str.regexp_string "def f0(x=0):\n  return x * 2 + 1")
            "def f0(x=0):\n  return x * 3 + 1" src
        in
        Minipy.Vfs.add_file broken.Platform.Deployment.vfs path src';
        Alcotest.(check bool) "fails" false (oracle broken));
    Alcotest.test_case "removing an unused heavy passes the oracle" `Quick
      (fun () ->
        let oracle, _ = Oracle.for_reference tiny in
        let trimmed = Platform.Deployment.copy tiny in
        let path = "site-packages/tinylib/__init__.py" in
        let src = Minipy.Vfs.read_exn trimmed.Platform.Deployment.vfs path in
        let lines = String.split_on_char '\n' src in
        let kept =
          List.filter
            (fun l ->
               not (String.length l >= 14
                    && String.sub l 0 14 = "from ._heavy_0"))
            lines
        in
        assert (List.length kept < List.length lines);
        Minipy.Vfs.add_file trimmed.Platform.Deployment.vfs path
          (String.concat "\n" kept);
        Alcotest.(check bool) "passes" true (oracle trimmed));
    Alcotest.test_case "init crash observed as an error" `Quick (fun () ->
        let broken = Platform.Deployment.copy tiny in
        Minipy.Vfs.add_file broken.Platform.Deployment.vfs
          "site-packages/tinylib/__init__.py" "raise ValueError(\"boom\")\n";
        let o = Oracle.observe broken in
        List.iter
          (fun (_, out) ->
             Alcotest.(check string) "marker" "ERR:ValueError:boom" out)
          o.Oracle.per_test);
    Alcotest.test_case "handler error observed distinctly" `Quick (fun () ->
        let broken = Platform.Deployment.copy tiny in
        let src = Platform.Deployment.handler_source broken in
        let src' =
          Str.global_replace (Str.regexp_string "acc = tinylib.f0(acc)")
            "acc = tinylib.missing_fn(acc)" src
        in
        Minipy.Vfs.add_file broken.Platform.Deployment.vfs "handler.py" src';
        let o = Oracle.observe broken in
        List.iter
          (fun (_, out) ->
             Alcotest.(check bool) "mentions AttributeError" true
               (let re = Str.regexp_string "ERR:AttributeError" in
                try ignore (Str.search_forward re out 0); true
                with Not_found -> false))
          o.Oracle.per_test) ]

let suite = [ ("oracle.observations", observations) ]
