(* Property-based tests (qcheck via QCheck_alcotest). *)

open Minipy
module Gen = QCheck2.Gen

(* --- AST generators ------------------------------------------------------ *)

let gen_name =
  let raw =
    Gen.map
      (fun (c, rest) ->
         String.init (1 + List.length rest) (fun i ->
             if i = 0 then c else List.nth rest (i - 1)))
      (Gen.pair (Gen.char_range 'a' 'z')
         (Gen.list_size (Gen.int_range 0 5)
            (Gen.oneof [ Gen.char_range 'a' 'z'; Gen.char_range '0' '9' ])))
  in
  Gen.map (fun s -> if Token.is_keyword s then s ^ "_k" else s) raw

let gen_const =
  Gen.oneof
    [ Gen.map (fun i -> Ast.Cint i) (Gen.int_range 0 10_000);
      Gen.map (fun f -> Ast.Cfloat (Float.abs f))
        (Gen.map (fun i -> float_of_int i /. 8.0) (Gen.int_range 0 1000));
      Gen.map (fun s -> Ast.Cstr s) (Gen.small_string ~gen:(Gen.char_range 'a' 'z'));
      Gen.map (fun b -> Ast.Cbool b) Gen.bool;
      Gen.return Ast.Cnone ]

let gen_binop =
  Gen.oneofl
    [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.FloorDiv; Ast.Mod; Ast.Pow;
      Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.And; Ast.Or;
      Ast.In; Ast.NotIn ]

let rec gen_expr n =
  if n <= 0 then
    Gen.oneof
      [ Gen.map (fun c -> Ast.e (Ast.Const c)) gen_const;
        Gen.map (fun v -> Ast.e (Ast.Name v)) gen_name ]
  else
    let sub = gen_expr (n / 2) in
    Gen.oneof
      [ Gen.map (fun c -> Ast.e (Ast.Const c)) gen_const;
        Gen.map (fun v -> Ast.e (Ast.Name v)) gen_name;
        Gen.map2 (fun b a -> Ast.e (Ast.Attr (b, a))) sub gen_name;
        Gen.map2 (fun b k -> Ast.e (Ast.Subscript (b, k))) sub sub;
        Gen.map3 (fun f a k -> Ast.e (Ast.Call (f, a, k)))
          sub
          (Gen.list_size (Gen.int_range 0 3) sub)
          (Gen.list_size (Gen.int_range 0 2) (Gen.pair gen_name sub));
        Gen.map3 (fun op l r -> Ast.e (Ast.Binop (op, l, r))) gen_binop sub sub;
        Gen.map (fun x -> Ast.e (Ast.Unop (Ast.Not, x))) sub;
        Gen.map (fun x -> Ast.e (Ast.Unop (Ast.Neg, x))) sub;
        Gen.map (fun xs -> Ast.e (Ast.ListLit xs))
          (Gen.list_size (Gen.int_range 0 4) sub);
        Gen.map (fun xs -> Ast.e (Ast.TupleLit xs))
          (Gen.list_size (Gen.int_range 0 3) sub);
        Gen.map (fun kvs -> Ast.e (Ast.DictLit kvs))
          (Gen.list_size (Gen.int_range 0 3) (Gen.pair sub sub));
        Gen.map2 (fun ps b -> Ast.e (Ast.Lambda (ps, b)))
          (Gen.list_size (Gen.int_range 1 3) gen_name)
          sub;
        Gen.map3 (fun c t f -> Ast.e (Ast.IfExp (c, t, f))) sub sub sub ]

let gen_target =
  Gen.oneof
    [ Gen.map (fun n -> Ast.Tname n) gen_name;
      Gen.map2 (fun b a -> Ast.Tattr (Ast.e (Ast.Name b), a)) gen_name gen_name;
      Gen.map2 (fun b k -> Ast.Tsubscript (Ast.e (Ast.Name b), Ast.e (Ast.Const k)))
        gen_name gen_const;
      Gen.map (fun ns -> Ast.Ttuple (List.map (fun n -> Ast.Tname n) ns))
        (Gen.list_size (Gen.int_range 2 3) gen_name) ]

let rec gen_stmt n =
  let e = gen_expr 2 in
  let block k = Gen.list_size (Gen.int_range 1 2) (gen_stmt k) in
  if n <= 0 then
    Gen.oneof
      [ Gen.map (fun x -> Ast.s (Ast.Expr_stmt x)) e;
        Gen.map2 (fun t x -> Ast.s (Ast.Assign (t, x))) gen_target e;
        Gen.return (Ast.s Ast.Pass);
        Gen.map (fun x -> Ast.s (Ast.Return (Some x))) e;
        Gen.map2 (fun p a -> Ast.s (Ast.Import (p, a)))
          (Gen.list_size (Gen.int_range 1 3) gen_name)
          (Gen.option gen_name);
        Gen.map3
          (fun lvl p ns ->
             (* absolute imports need a non-empty path *)
             let fc_path = if lvl = 0 && p = [] then [ "m" ] else p in
             Ast.s (Ast.From_import ({ Ast.fc_level = lvl; fc_path }, ns)))
          (Gen.int_range 0 2)
          (Gen.list_size (Gen.int_range 0 2) gen_name)
          (Gen.list_size (Gen.int_range 1 3) (Gen.pair gen_name (Gen.option gen_name))) ]
  else
    let sub = block (n - 1) in
    Gen.oneof
      [ Gen.map (fun x -> Ast.s (Ast.Expr_stmt x)) e;
        Gen.map2 (fun t x -> Ast.s (Ast.Assign (t, x))) gen_target e;
        Gen.map3 (fun c b orelse -> Ast.s (Ast.If ([ (c, b) ], orelse)))
          e sub (Gen.oneof [ Gen.return []; sub ]);
        Gen.map2 (fun c b -> Ast.s (Ast.While (c, b))) e sub;
        Gen.map3 (fun t x b -> Ast.s (Ast.For (t, x, b))) gen_target e sub;
        Gen.map3
          (fun nm ps b ->
             Ast.s (Ast.Def { Ast.dname = nm;
                              dparams = List.map (fun p -> { Ast.pname = p;
                                                             pdefault = None }) ps;
                              dbody = b }))
          gen_name
          (Gen.list_size (Gen.int_range 0 3) gen_name)
          sub;
        Gen.map2
          (fun nm b -> Ast.s (Ast.Class { Ast.cname = nm; cbases = []; cbody = b }))
          gen_name sub;
        Gen.map3
          (fun b exc fin ->
             Ast.s (Ast.Try (b, [ { Ast.hexc = Some "ValueError";
                                    hbind = Some exc; hbody = [ Ast.s Ast.Pass ] } ],
                             fin)))
          sub gen_name (Gen.oneof [ Gen.return []; sub ]) ]

let gen_program = Gen.list_size (Gen.int_range 1 8) (gen_stmt 2)

(* duplicate parameter names break re-binding; filter those out *)
let rec program_ok (stmts : Ast.stmt list) =
  List.for_all
    (fun (st : Ast.stmt) ->
       match st.Ast.sdesc with
       | Ast.Def { dparams; dbody; _ } ->
         let names = List.map (fun p -> p.Ast.pname) dparams in
         List.length names = List.length (List.sort_uniq compare names)
         && program_ok dbody
       | Ast.Class { cbody; _ } -> program_ok cbody
       | Ast.If (branches, orelse) ->
         List.for_all (fun (_, b) -> program_ok b) branches && program_ok orelse
       | Ast.While (_, b) | Ast.For (_, _, b) -> program_ok b
       | Ast.Try (b, hs, fin) ->
         program_ok b
         && List.for_all (fun h -> program_ok h.Ast.hbody) hs
         && program_ok fin
       | _ -> true)
    stmts

let roundtrip =
  QCheck2.Test.make ~name:"pretty . parse round-trips" ~count:500 ~print:Pretty.program_to_string gen_program
    (fun prog ->
       QCheck2.assume (program_ok prog);
       let printed = Pretty.program_to_string prog in
       match Parser.parse ~file:"<gen>" printed with
       | reparsed -> Ast.program_equal prog reparsed
       | exception _ -> false)

let pretty_stable =
  QCheck2.Test.make ~name:"pretty is a fixpoint after one round" ~count:300
    gen_program (fun prog ->
        QCheck2.assume (program_ok prog);
        let p1 = Pretty.program_to_string prog in
        match Parser.parse ~file:"<gen>" p1 with
        | reparsed -> String.equal p1 (Pretty.program_to_string reparsed)
        | exception _ -> false)

(* --- DD properties ------------------------------------------------------- *)

let gen_dd_case =
  Gen.bind (Gen.int_range 1 24) (fun n ->
      Gen.map
        (fun needed_mask ->
           let items = List.init n Fun.id in
           let needed = List.filter (fun i -> List.mem i needed_mask) items in
           (items, needed))
        (Gen.list_size (Gen.int_range 0 6) (Gen.int_range 0 (n - 1))))

let dd_monotone_exact =
  QCheck2.Test.make ~name:"DD finds exactly the needed set (monotone oracle)"
    ~count:300 gen_dd_case (fun (items, needed) ->
        let oracle subset = List.for_all (fun x -> List.mem x subset) needed in
        let result, _ = Trim.Dd.minimize ~oracle items in
        List.sort_uniq compare result = List.sort_uniq compare needed)

let dd_one_minimal =
  QCheck2.Test.make ~name:"DD output is 1-minimal and passing" ~count:200
    gen_dd_case (fun (items, needed) ->
        (* non-monotone twist: also pass if the subset is empty *)
        let oracle subset =
          subset = [] || List.for_all (fun x -> List.mem x subset) needed
        in
        let result, _ = Trim.Dd.minimize ~oracle items in
        Trim.Dd.is_one_minimal ~oracle result)

let dd_subset =
  QCheck2.Test.make ~name:"DD output is a subset of the input" ~count:200
    gen_dd_case (fun (items, needed) ->
        let oracle subset = List.for_all (fun x -> List.mem x subset) needed in
        let result, _ = Trim.Dd.minimize ~oracle items in
        List.for_all (fun x -> List.mem x items) result)

(* --- attrs properties ---------------------------------------------------- *)

let attrs_restrict_sound =
  (* a surviving binding is kept, magic, or co-bound in a tuple assignment
     with a kept name (tuple targets are removed all-or-nothing) *)
  QCheck2.Test.make ~name:"restrict keeps only kept/magic/tuple-co-bound"
    ~count:300
    (Gen.pair gen_program (Gen.list_size (Gen.int_range 0 4) gen_name))
    (fun (prog, keep_list) ->
       QCheck2.assume (program_ok prog);
       let keep =
         List.fold_left (fun s x -> Trim.Attrs.String_set.add x s)
           Trim.Attrs.String_set.empty keep_list
       in
       let ok_name a = Trim.Attrs.is_magic a || Trim.Attrs.String_set.mem a keep in
       let restricted = Trim.Attrs.restrict prog ~keep in
       List.for_all
         (fun (st : Minipy.Ast.stmt) ->
            match Trim.Attrs.bound_names st with
            | [] -> true
            | names ->
              (match st.Minipy.Ast.sdesc with
               | Minipy.Ast.Assign (Minipy.Ast.Ttuple _, _) ->
                 List.exists ok_name names
               | _ -> List.for_all ok_name names))
         restricted)

let attrs_restrict_idempotent =
  QCheck2.Test.make ~name:"restrict is idempotent" ~count:300
    (Gen.pair gen_program (Gen.list_size (Gen.int_range 0 4) gen_name))
    (fun (prog, keep_list) ->
       QCheck2.assume (program_ok prog);
       let keep =
         List.fold_left (fun s x -> Trim.Attrs.String_set.add x s)
           Trim.Attrs.String_set.empty keep_list
       in
       let once = Trim.Attrs.restrict prog ~keep in
       let twice = Trim.Attrs.restrict once ~keep in
       Ast.program_equal once twice)

let attrs_full_keep_identity =
  QCheck2.Test.make ~name:"restrict to all attrs is identity" ~count:300
    gen_program (fun prog ->
        QCheck2.assume (program_ok prog);
        let keep =
          List.fold_left (fun s x -> Trim.Attrs.String_set.add x s)
            Trim.Attrs.String_set.empty
            (Trim.Attrs.attrs_of_program prog)
        in
        Ast.program_equal prog (Trim.Attrs.restrict prog ~keep))

(* --- pricing / scoring properties ---------------------------------------- *)

let gen_pos = Gen.map (fun i -> float_of_int i /. 4.0) (Gen.int_range 1 100_000)

let pricing_monotone =
  QCheck2.Test.make ~name:"cost monotone in duration and memory" ~count:300
    (Gen.quad gen_pos gen_pos gen_pos gen_pos)
    (fun (d1, d2, m1, m2) ->
       let lo_d = Float.min d1 d2 and hi_d = Float.max d1 d2 in
       let lo_m = Float.min m1 m2 and hi_m = Float.max m1 m2 in
       let c d m = Platform.Pricing.invocation_cost Platform.Pricing.aws
           ~duration_ms:d ~memory_mb:m
       in
       c lo_d lo_m <= c hi_d lo_m +. 1e-15 && c lo_d lo_m <= c lo_d hi_m +. 1e-15)

let billed_duration_props =
  QCheck2.Test.make ~name:"billed duration rounds up to granularity" ~count:300
    gen_pos (fun d ->
        let b = Platform.Pricing.billed_duration_ms Platform.Pricing.aws d in
        b >= d -. 1e-9 && b -. d < 1.0 +. 1e-9
        && Float.rem b 1.0 < 1e-9)

let eq2_monotone =
  QCheck2.Test.make ~name:"marginal monetary cost monotone in t and m"
    ~count:300
    (Gen.quad gen_pos gen_pos gen_pos gen_pos)
    (fun (total_ms, total_mb, t, m) ->
       let t = Float.min t total_ms and m = Float.min m total_mb in
       let c = Trim.Scoring.marginal_monetary_cost ~total_ms ~total_mb in
       c ~t ~m <= c ~t:total_ms ~m +. 1e-6
       && c ~t ~m <= c ~t ~m:total_mb +. 1e-6)

(* --- trace properties ----------------------------------------------------- *)

let trace_replay_total =
  QCheck2.Test.make ~name:"replay accounts for every arrival" ~count:200
    (Gen.pair (Gen.int_range 0 1000) (Gen.int_range 1 50))
    (fun (seed, rate_x) ->
       let t =
         Platform.Trace.poisson ~seed ~rate_per_s:(float_of_int rate_x /. 100.0)
           ~duration_s:5000.0 ~name:"prop"
       in
       let r = Platform.Trace.replay t ~keep_alive_s:600.0 in
       r.Platform.Trace.cold_starts + r.Platform.Trace.warm_starts
       = Platform.Trace.length t)

let trace_keepalive_monotone =
  QCheck2.Test.make ~name:"warm starts monotone in keep-alive" ~count:100
    (Gen.int_range 0 1000)
    (fun seed ->
       let t =
         Platform.Trace.poisson ~seed ~rate_per_s:0.005 ~duration_s:50_000.0
           ~name:"prop"
       in
       let warm k =
         (Platform.Trace.replay t ~keep_alive_s:k).Platform.Trace.warm_starts
       in
       warm 60.0 <= warm 300.0 && warm 300.0 <= warm 1800.0)

let to_alcotest = List.map (QCheck_alcotest.to_alcotest ~long:false)

let suite =
  [ ("properties.parser", to_alcotest [ roundtrip; pretty_stable ]);
    ("properties.dd", to_alcotest [ dd_monotone_exact; dd_one_minimal; dd_subset ]);
    ("properties.attrs",
     to_alcotest
       [ attrs_restrict_sound; attrs_restrict_idempotent; attrs_full_keep_identity ]);
    ("properties.pricing",
     to_alcotest [ pricing_monotone; billed_duration_props; eq2_monotone ]);
    ("properties.trace", to_alcotest [ trace_replay_total; trace_keepalive_monotone ]) ]

(* --- json properties ------------------------------------------------------ *)

let rec gen_json_value n =
  if n <= 0 then
    Gen.oneof
      [ Gen.return Value.Vnone;
        Gen.map (fun b -> Value.Vbool b) Gen.bool;
        Gen.map (fun i -> Value.Vint i) (Gen.int_range (-10_000) 10_000);
        Gen.map (fun i -> Value.Vfloat (float_of_int i /. 8.0))
          (Gen.int_range (-1000) 1000);
        Gen.map (fun s -> Value.Vstr s)
          (Gen.small_string ~gen:(Gen.char_range 'a' 'z')) ]
  else
    let sub = gen_json_value (n / 2) in
    Gen.oneof
      [ gen_json_value 0;
        Gen.map
          (fun xs -> Value.Vlist { Value.items = Array.of_list xs })
          (Gen.list_size (Gen.int_range 0 4) sub);
        Gen.map
          (fun kvs ->
             (* distinct string keys: JSON objects cannot hold duplicates *)
             let seen = Hashtbl.create 8 in
             let pairs =
               List.filter_map
                 (fun (k, v) ->
                    if Hashtbl.mem seen k then None
                    else begin
                      Hashtbl.replace seen k ();
                      Some (Value.Vstr k, v)
                    end)
                 kvs
             in
             Value.Vdict { Value.pairs })
          (Gen.list_size (Gen.int_range 0 4)
             (Gen.pair (Gen.small_string ~gen:(Gen.char_range 'a' 'z')) sub)) ]

let json_roundtrip =
  QCheck2.Test.make ~name:"json loads . dumps round-trips" ~count:300
    (gen_json_value 3)
    (fun v ->
       let v' = Json_support.loads (Json_support.dumps v) in
       Value.equal v v')

let json_dumps_stable =
  QCheck2.Test.make ~name:"json dumps is a fixpoint after one round" ~count:300
    (gen_json_value 3)
    (fun v ->
       let s1 = Json_support.dumps v in
       String.equal s1 (Json_support.dumps (Json_support.loads s1)))

(* --- interpreter determinism ---------------------------------------------- *)

let interp_deterministic =
  QCheck2.Test.make ~name:"interpreter is deterministic" ~count:100 gen_program
    (fun prog ->
       QCheck2.assume (program_ok prog);
       let run () =
         let t = Interp.create ~max_steps:50_000 (Vfs.create ()) in
         let out =
           match Interp.exec_main t prog with
           | _ -> Interp.stdout_contents t
           | exception Value.Py_error e -> "ERR:" ^ e.Value.exc_class
           | exception Interp.Timeout _ -> "TIMEOUT"
           | exception _ -> "OTHER"
         in
         (out, t.Interp.vtime_ms, t.Interp.heap_bytes)
       in
       run () = run ())

let suite =
  suite
  @ [ ("properties.json", to_alcotest [ json_roundtrip; json_dumps_stable ]);
      ("properties.interp", to_alcotest [ interp_deterministic ]) ]

(* --- end-to-end pipeline fuzzing ------------------------------------------ *)

(* Random synthetic deployments: a generated library plus a handler that uses
   a random subset of its API. The pipeline must always produce an oracle-
   passing image, and every attribute the handler names must survive. *)

type fuzz_case = {
  fz_attrs : int;
  fz_needed : int;
  fz_heavies : int;
  fz_api_used : int list;   (* filler API indices the handler calls *)
  fz_event_x : int;
}

let gen_fuzz_case =
  Gen.bind (Gen.int_range 14 40) (fun attrs ->
      Gen.bind (Gen.int_range 1 3) (fun needed ->
          Gen.bind (Gen.int_range 1 3) (fun heavies ->
              Gen.bind
                (Gen.list_size (Gen.int_range 0 3) (Gen.int_range 0 3))
                (fun api_used ->
                   Gen.map
                     (fun x ->
                        { fz_attrs = attrs; fz_needed = needed;
                          fz_heavies = heavies;
                          fz_api_used = List.sort_uniq compare api_used;
                          fz_event_x = x })
                     (Gen.int_range 0 20)))))

let fuzz_deployment (c : fuzz_case) =
  let libspec =
    Workloads.Libspec.spec ~name:"fuzzlib" ~import_ms:20.0 ~alloc_mb:4.0
      ~image_mb:0.5 ~attrs:c.fz_attrs ~needed_funcs:c.fz_needed
      ~removable_time_frac:0.6 ~removable_mem_frac:0.5
      ~heavy_subs:c.fz_heavies ~exec_ms:1.0 ()
  in
  let vfs = Minipy.Vfs.create () in
  Workloads.Libspec.install libspec vfs;
  let api_calls =
    String.concat ""
      (List.map
         (fun i -> Printf.sprintf "  acc = fuzzlib.api_%d(acc)\n" i)
         (List.filter
            (fun i -> i < Workloads.Libspec.filler_count libspec)
            c.fz_api_used))
  in
  let handler =
    Printf.sprintf
      "import fuzzlib\n\
       def handler(event, context):\n\
      \  acc = event.get(\"x\", 1)\n\
      \  acc = fuzzlib.f0(acc)\n\
       %s\
      \  result = fuzzlib.run_task(acc)\n\
      \  print(\"fuzz:\", result)\n\
      \  return result\n"
      api_calls
  in
  Minipy.Vfs.add_file vfs "handler.py" handler;
  Platform.Deployment.make ~name:"fuzz" ~vfs ~handler_file:"handler.py"
    ~handler_name:"handler"
    ~test_cases:
      [ Platform.Deployment.test_case ~name:"t1"
          (Printf.sprintf "{\"x\": %d}" c.fz_event_x) ]

let pipeline_fuzz =
  QCheck2.Test.make ~name:"pipeline output always passes its oracle" ~count:25
    gen_fuzz_case
    (fun c ->
       let d = fuzz_deployment c in
       let report =
         Trim.Pipeline.run
           ~options:{ Trim.Pipeline.default_options with k = 4 } d
       in
       let oracle, _ = Trim.Oracle.for_reference d in
       oracle report.Trim.Pipeline.optimized)

let pipeline_fuzz_keeps_used =
  QCheck2.Test.make
    ~name:"pipeline never removes attributes the handler names" ~count:25
    gen_fuzz_case
    (fun c ->
       let d = fuzz_deployment c in
       let report =
         Trim.Pipeline.run
           ~options:{ Trim.Pipeline.default_options with k = 4 } d
       in
       let removed =
         List.concat_map
           (fun m -> m.Trim.Debloater.removed_attrs)
           report.Trim.Pipeline.module_results
       in
       let used =
         "f0" :: "run_task"
         :: List.map (fun i -> Printf.sprintf "api_%d" i)
              (List.filter
                 (fun i ->
                    i
                    < Workloads.Libspec.filler_count
                        (Workloads.Libspec.spec ~name:"fuzzlib" ~import_ms:20.0
                           ~alloc_mb:4.0 ~image_mb:0.5 ~attrs:c.fz_attrs
                           ~needed_funcs:c.fz_needed
                           ~removable_time_frac:0.6 ~removable_mem_frac:0.5
                           ~heavy_subs:c.fz_heavies ~exec_ms:1.0 ()))
                 c.fz_api_used)
       in
       List.for_all (fun u -> not (List.mem u removed)) used)

let suite =
  suite
  @ [ ("properties.pipeline_fuzz",
       to_alcotest [ pipeline_fuzz; pipeline_fuzz_keeps_used ]) ]
