(* Deeper interpreter semantics: scoping, class machinery, exception edge
   cases, iteration protocols, and builtin corner cases. *)

open Minipy

let run src =
  let t = Interp.create (Vfs.create ()) in
  ignore (Interp.exec_main t (Parser.parse ~file:"<sem>" src));
  Interp.stdout_contents t

let check_out name src expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name expected (run src))

let check_raises name src exc_class =
  Alcotest.test_case name `Quick (fun () ->
      match run src with
      | _ -> Alcotest.failf "%s: expected %s" name exc_class
      | exception Value.Py_error e ->
        Alcotest.(check string) name exc_class e.Value.exc_class)

let scoping =
  [ check_out "function locals shadow globals"
      "x = 1\ndef f():\n  x = 2\n  return x\nprint(f(), x)" "2 1\n";
    check_out "reading global without declaration"
      "x = 10\ndef f():\n  return x + 1\nprint(f())" "11\n";
    check_out "global declaration writes through"
      "x = 1\ndef f():\n  global x\n  x = 5\nf()\nprint(x)" "5\n";
    check_out "parameters are local"
      "x = 1\ndef f(x):\n  x = x + 1\n  return x\nprint(f(10), x)" "11 1\n";
    check_out "defaults evaluated at def time"
      "base = 10\ndef f(x=base):\n  return x\nbase = 99\nprint(f())" "10\n";
    check_out "closure sees later globals"
      "def f():\n  return later()\ndef later():\n  return 7\nprint(f())" "7\n";
    check_out "loop variable persists after loop"
      "for i in range(3):\n  pass\nprint(i)" "2\n";
    check_out "comprehension target is function-local here"
      "xs = [i * 2 for i in range(3)]\nprint(xs, i)" "[0, 2, 4] 2\n";
    check_raises "function local not visible outside"
      "def f():\n  inner = 1\nf()\nprint(inner)" "NameError" ]

let class_machinery =
  [ check_out "method resolution prefers instance attr"
      "class A:\n\
      \  def tag(self):\n\
      \    return \"method\"\n\
       a = A()\n\
       a.tag = lambda: \"attr\"\n\
       print(a.tag())"
      "attr\n";
    check_out "class attrs shared, instance attrs own"
      "class C:\n\
      \  count = 0\n\
       a = C()\n\
       b = C()\n\
       a.count = 5\n\
       print(a.count, b.count, C.count)"
      "5 0 0\n";
    check_out "multiple inheritance left to right"
      "class L:\n\
      \  def who(self):\n\
      \    return \"L\"\n\
       class R:\n\
      \  def who(self):\n\
      \    return \"R\"\n\
       class C(L, R):\n\
      \  pass\n\
       print(C().who())"
      "L\n";
    check_out "methods can call other methods via self"
      "class Acc:\n\
      \  def __init__(self):\n\
      \    self.total = 0\n\
      \  def add(self, x):\n\
      \    self.total = self.total + x\n\
      \    return self.total\n\
      \  def add_twice(self, x):\n\
      \    self.add(x)\n\
      \    return self.add(x)\n\
       print(Acc().add_twice(3))"
      "6\n";
    check_out "grandparent methods reachable"
      "class A:\n\
      \  def root(self):\n\
      \    return 1\n\
       class B(A):\n\
      \  pass\n\
       class C(B):\n\
      \  pass\n\
       print(C().root())"
      "1\n";
    check_raises "instance not callable without __call__"
      "class A:\n  pass\nA()()" "TypeError";
    check_raises "instantiating with wrong arity"
      "class A:\n  def __init__(self, x):\n    self.x = x\nA()" "TypeError" ]

let exceptions =
  [ check_out "finally ordering with return"
      "def f():\n\
      \  try:\n\
      \    return \"try\"\n\
      \  finally:\n\
      \    print(\"fin\")\n\
       print(f())"
      "fin\ntry\n";
    check_out "nested handlers pick innermost"
      "try:\n\
      \  try:\n\
      \    raise ValueError(\"inner\")\n\
      \  except ValueError:\n\
      \    print(\"inner handler\")\n\
       except ValueError:\n\
      \  print(\"outer handler\")"
      "inner handler\n";
    check_out "exception in handler propagates"
      "try:\n\
      \  try:\n\
      \    raise ValueError(\"a\")\n\
      \  except ValueError:\n\
      \    raise KeyError(\"b\")\n\
       except KeyError:\n\
      \  print(\"outer caught b\")"
      "outer caught b\n";
    check_out "loop break through try-finally"
      "for i in range(5):\n\
      \  try:\n\
      \    if i == 1:\n\
      \      break\n\
      \  finally:\n\
      \    print(\"fin\", i)\n\
       print(\"done\")"
      "fin 0\nfin 1\ndone\n";
    check_out "exception value accessible via args"
      "try:\n  raise ValueError(\"boom\")\nexcept ValueError as e:\n  print(e.args)"
      "('boom',)\n";
    check_out "raising a string wraps it"
      "try:\n  raise \"plain\"\nexcept Exception as e:\n  print(e)"
      "Exception('plain')\n";
    check_raises "finally runs then original propagates"
      "try:\n  raise KeyError(\"k\")\nfinally:\n  pass" "KeyError" ]

let iteration =
  [ check_out "for over dict yields keys"
      "d = {\"a\": 1, \"b\": 2}\nfor k in d:\n  print(k)" "a\nb\n";
    check_out "for over string yields chars"
      "for c in \"ab\":\n  print(c)" "a\nb\n";
    check_out "nested unpack in for"
      "for a, b in [(1, 2), (3, 4)]:\n  print(a + b)" "3\n7\n";
    check_out "mutating list during building"
      "xs = []\nfor i in range(3):\n  xs.append(xs[:])\nprint(xs)"
      "[[], [[]], [[], [[]]]]\n";
    check_raises "unpack arity mismatch"
      "a, b = [1, 2, 3]" "ValueError";
    check_raises "iterating a number" "for x in 5:\n  pass" "TypeError" ]

let builtins_corner =
  [ check_out "str of containers"
      "print(str([1, 2]), str({\"a\": None}))" "[1, 2] {'a': None}\n";
    check_out "int conversions"
      "print(int(\"42\"), int(3.9), int(True))" "42 3 1\n";
    check_out "bool conversions"
      "print(bool([]), bool(\"x\"), bool(0.0))" "False True False\n";
    check_out "sorted leaves original alone"
      "xs = [3, 1]\nys = sorted(xs)\nprint(xs, ys)" "[3, 1] [1, 3]\n";
    check_out "min max on strings" "print(min(\"cab\"), max(\"cab\"))" "a c\n";
    check_out "sum of floats" "print(sum([0.5, 0.25]))" "0.75\n";
    check_out "len of empty containers"
      "print(len(\"\"), len([]), len({}), len(()))" "0 0 0 0\n";
    check_out "range negative step" "print(range(5, 0, -2))" "[5, 3, 1]\n";
    check_out "hasattr on module"
      "import json\nprint(hasattr(json, \"dumps\"), hasattr(json, \"nope\"))"
      "True False\n";
    check_out "print sep and end kwargs"
      "print(1, 2, sep=\"-\", end=\"!\")\nprint(3)" "1-2!3\n";
    check_raises "int of garbage" "int(\"xyz\")" "ValueError";
    check_raises "min of empty" "min([])" "ValueError";
    check_raises "range zero step" "range(1, 2, 0)" "ValueError" ]

let int_conversion_fix =
  (* int(True) prints as True because bools are ints in display? no:
     int(True) must be 1 *)
  [ Alcotest.test_case "int(True) is 1" `Quick (fun () ->
        Alcotest.(check string) "one" "1\n" (run "print(int(True))")) ]



let chained_comparisons =
  [ check_out "ascending chain" "print(1 < 2 < 3, 1 < 3 < 2)" "True False\n";
    check_out "mixed ops" "print(1 <= 1 < 2, 3 > 2 > 2)" "True False\n";
    check_out "equality chain" "print(1 == 1 == 1, 1 == 1 == 2)" "True False\n";
    check_out "chain in condition"
      "x = 5\nif 0 < x < 10:\n  print(\"in range\")" "in range\n";
    check_out "explicit parens keep old meaning"
      "print((1 < 2) == True)" "True\n";
    Alcotest.test_case "chain round-trips" `Quick (fun () ->
        let p1 = Parser.parse ~file:"<t>" "b = 0 < x < 10\n" in
        let p2 =
          Parser.parse ~file:"<t>" (Pretty.program_to_string p1)
        in
        Alcotest.(check bool) "equal" true (Ast.program_equal p1 p2)) ]

let suite =
  [ ("semantics.scoping", scoping);
    ("semantics.classes", class_machinery);
    ("semantics.exceptions", exceptions);
    ("semantics.iteration", iteration);
    ("semantics.builtins", builtins_corner);
    ("semantics.int_conversion", int_conversion_fix);
    ("semantics.chained_comparisons", chained_comparisons) ]
