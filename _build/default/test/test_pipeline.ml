(* End-to-end pipeline (Figure 3): analyze -> profile -> debloat. *)

open Trim

let report =
  lazy
    (let tiny = Workloads.Suite.tiny_app () in
     Pipeline.run ~options:{ Pipeline.default_options with k = 3 } tiny)

let cases =
  [ Alcotest.test_case "pipeline produces a passing optimized app" `Quick
      (fun () ->
        let r = Lazy.force report in
        let oracle, _ = Oracle.for_reference r.Pipeline.original in
        Alcotest.(check bool) "oracle passes" true (oracle r.Pipeline.optimized));
    Alcotest.test_case "ranked list respects k" `Quick (fun () ->
        let r = Lazy.force report in
        Alcotest.(check bool) "<= 3 modules" true
          (List.length r.Pipeline.ranked <= 3));
    Alcotest.test_case "module results align with ranking" `Quick (fun () ->
        let r = Lazy.force report in
        Alcotest.(check (list string)) "same order" r.Pipeline.ranked
          (List.map (fun m -> m.Debloater.dm_module) r.Pipeline.module_results));
    Alcotest.test_case "improves cold-start latency, memory, cost" `Quick
      (fun () ->
        let r = Lazy.force report in
        let cold d =
          let sim = Platform.Lambda_sim.create d in
          Platform.Lambda_sim.invoke sim ~now_s:0.0 ~event:"{\"x\": 1}" ()
        in
        let b = cold r.Pipeline.original and a = cold r.Pipeline.optimized in
        Alcotest.(check bool) "e2e better" true
          (a.Platform.Lambda_sim.e2e_ms < b.Platform.Lambda_sim.e2e_ms);
        Alcotest.(check bool) "memory better" true
          (a.Platform.Lambda_sim.peak_memory_mb
           < b.Platform.Lambda_sim.peak_memory_mb);
        Alcotest.(check bool) "cost better" true
          (a.Platform.Lambda_sim.cost < b.Platform.Lambda_sim.cost));
    Alcotest.test_case "warm-start behaviour unchanged" `Quick (fun () ->
        let r = Lazy.force report in
        let warm d =
          let sim = Platform.Lambda_sim.create d in
          let _, w = Platform.Lambda_sim.measure_cold_and_warm
              ~event:"{\"x\": 1}" sim
          in
          w
        in
        let b = warm r.Pipeline.original and a = warm r.Pipeline.optimized in
        Alcotest.(check string) "same stdout"
          b.Platform.Lambda_sim.stdout a.Platform.Lambda_sim.stdout;
        (* within 10% as in Figure 11 *)
        Alcotest.(check bool) "exec within 10%" true
          (Float.abs
             (a.Platform.Lambda_sim.exec_ms -. b.Platform.Lambda_sim.exec_ms)
           <= 0.1 *. b.Platform.Lambda_sim.exec_ms +. 0.5));
    Alcotest.test_case "k=0 leaves the app untouched" `Quick (fun () ->
        let tiny = Workloads.Suite.tiny_app () in
        let r = Pipeline.run ~options:{ Pipeline.default_options with k = 0 } tiny in
        Alcotest.(check int) "no modules debloated" 0
          (List.length r.Pipeline.module_results);
        let oracle, _ = Oracle.for_reference tiny in
        Alcotest.(check bool) "still passes" true (oracle r.Pipeline.optimized));
    Alcotest.test_case "larger k never hurts the oracle" `Quick (fun () ->
        let tiny = Workloads.Suite.tiny_app () in
        let oracle, _ = Oracle.for_reference tiny in
        List.iter
          (fun k ->
             let r =
               Pipeline.run ~options:{ Pipeline.default_options with k } tiny
             in
             Alcotest.(check bool)
               (Printf.sprintf "k=%d passes" k)
               true
               (oracle r.Pipeline.optimized))
          [ 1; 2; 5 ]);
    Alcotest.test_case "representative module is the largest" `Quick (fun () ->
        let r = Lazy.force report in
        match Pipeline.representative_module r with
        | Some m ->
          Alcotest.(check bool) "max attrs" true
            (List.for_all
               (fun other ->
                  other.Debloater.attrs_before <= m.Debloater.attrs_before)
               r.Pipeline.module_results)
        | None -> Alcotest.fail "no modules");
    Alcotest.test_case "oracle query accounting" `Quick (fun () ->
        let r = Lazy.force report in
        Alcotest.(check int) "sum matches"
          (List.fold_left (fun a m -> a + m.Debloater.oracle_queries) 0
             r.Pipeline.module_results)
          r.Pipeline.total_oracle_queries) ]

let real_app =
  [ Alcotest.test_case "lightgbm app end-to-end (fig8 shape)" `Slow (fun () ->
        let d = Workloads.Suite.deployment_of "lightgbm" in
        let r = Pipeline.run ~options:{ Pipeline.default_options with k = 20 } d in
        let oracle, _ = Oracle.for_reference d in
        Alcotest.(check bool) "oracle passes" true (oracle r.Pipeline.optimized);
        let cold dep =
          let sim = Platform.Lambda_sim.create dep in
          Platform.Lambda_sim.invoke sim ~now_s:0.0 ~event:"{\"x\": 1}" ()
        in
        let b = cold d and a = cold r.Pipeline.optimized in
        let init_impr =
          Platform.Metrics.improvement_pct ~before:b.Platform.Lambda_sim.init_ms
            ~after:a.Platform.Lambda_sim.init_ms
        in
        (* paper: lightgbm import time improves ~55% *)
        Alcotest.(check bool)
          (Printf.sprintf "init improvement %.1f%% in [35, 75]" init_impr)
          true
          (init_impr >= 35.0 && init_impr <= 75.0)) ]

let suite = [ ("pipeline.tiny", cases); ("pipeline.real", real_app) ]
