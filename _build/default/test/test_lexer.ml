(* Lexer: token streams, indentation handling, strings, comments. *)

open Minipy

let toks src = List.map fst (Lexer.tokenize ~file:"<t>" src)

let tok = Alcotest.testable Token.pp Token.equal

let check name src expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list tok)) name expected (toks src))

open Token

let basics =
  [ check "empty" "" [ Eof ];
    check "just newline" "\n" [ Eof ];
    check "int" "42" [ Int 42; Newline; Eof ];
    check "float" "3.25" [ Float 3.25; Newline; Eof ];
    check "float exp" "1e3" [ Float 1000.0; Newline; Eof ];
    check "trailing dot float" "2." [ Float 2.0; Newline; Eof ];
    check "name" "abc_1" [ Name "abc_1"; Newline; Eof ];
    check "keyword" "def" [ Keyword "def"; Newline; Eof ];
    check "string double" "\"hi\"" [ Str "hi"; Newline; Eof ];
    check "string single" "'hi'" [ Str "hi"; Newline; Eof ];
    check "string escapes" "\"a\\n\\tb\"" [ Str "a\n\tb"; Newline; Eof ];
    check "triple string" "\"\"\"a\nb\"\"\"" [ Str "a\nb"; Newline; Eof ];
    check "two char op" "x == y" [ Name "x"; Op "=="; Name "y"; Newline; Eof ];
    check "arrow op" "->" [ Op "->"; Newline; Eof ];
    check "comment" "x # comment\n" [ Name "x"; Newline; Eof ];
    check "comment only line" "# hi\nx" [ Name "x"; Newline; Eof ];
    check "dotted" "a.b" [ Name "a"; Op "."; Name "b"; Newline; Eof ] ]

let indentation =
  [ check "simple block" "if x:\n  y\n"
      [ Keyword "if"; Name "x"; Op ":"; Newline; Indent; Name "y"; Newline;
        Dedent; Eof ];
    check "nested blocks" "if a:\n  if b:\n    c\n"
      [ Keyword "if"; Name "a"; Op ":"; Newline; Indent;
        Keyword "if"; Name "b"; Op ":"; Newline; Indent;
        Name "c"; Newline; Dedent; Dedent; Eof ];
    check "dedent to middle" "if a:\n  b\n  if c:\n    d\n  e\n"
      [ Keyword "if"; Name "a"; Op ":"; Newline; Indent;
        Name "b"; Newline;
        Keyword "if"; Name "c"; Op ":"; Newline; Indent;
        Name "d"; Newline; Dedent;
        Name "e"; Newline; Dedent; Eof ];
    check "blank lines ignored" "x\n\n\ny\n"
      [ Name "x"; Newline; Name "y"; Newline; Eof ];
    check "blank line inside block" "if a:\n  b\n\n  c\n"
      [ Keyword "if"; Name "a"; Op ":"; Newline; Indent;
        Name "b"; Newline; Name "c"; Newline; Dedent; Eof ];
    check "eof closes indents" "if a:\n  b"
      [ Keyword "if"; Name "a"; Op ":"; Newline; Indent; Name "b"; Newline;
        Dedent; Eof ];
    check "implicit joining in parens" "f(1,\n   2)\n"
      [ Name "f"; Op "("; Int 1; Op ","; Int 2; Op ")"; Newline; Eof ];
    check "implicit joining in brackets" "[1,\n 2]"
      [ Op "["; Int 1; Op ","; Int 2; Op "]"; Newline; Eof ];
    check "backslash continuation" "x \\\n+ 1"
      [ Name "x"; Op "+"; Int 1; Newline; Eof ] ]

let errors =
  [ Alcotest.test_case "inconsistent dedent" `Quick (fun () ->
        match toks "if a:\n    b\n  c\n" with
        | _ -> Alcotest.fail "expected lexer error"
        | exception Lexer.Error _ -> ());
    Alcotest.test_case "unterminated string" `Quick (fun () ->
        match toks "\"abc" with
        | _ -> Alcotest.fail "expected lexer error"
        | exception Lexer.Error _ -> ());
    Alcotest.test_case "newline in string" `Quick (fun () ->
        match toks "\"ab\ncd\"" with
        | _ -> Alcotest.fail "expected lexer error"
        | exception Lexer.Error _ -> ());
    Alcotest.test_case "stray character" `Quick (fun () ->
        match toks "x ? y" with
        | _ -> Alcotest.fail "expected lexer error"
        | exception Lexer.Error _ -> ()) ]

let suite =
  [ ("lexer.basics", basics);
    ("lexer.indentation", indentation);
    ("lexer.errors", errors) ]
