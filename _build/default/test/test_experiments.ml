(* Smoke tests over the experiment registry: every table/figure regenerates
   and carries the markers EXPERIMENTS.md quotes. Heavier checks assert the
   paper's qualitative claims hold in the output data (not just the text). *)

let contains hay needle =
  let re = Str.regexp_string needle in
  try ignore (Str.search_forward re hay 0); true with Not_found -> false

let registry =
  [ Alcotest.test_case "all experiments print non-empty output" `Slow (fun () ->
        List.iter
          (fun (e : Experiments.Registry.entry) ->
             let out = e.Experiments.Registry.print () in
             Alcotest.(check bool)
               (e.Experiments.Registry.id ^ " non-empty")
               true
               (String.length out > 100))
          Experiments.Registry.all);
    Alcotest.test_case "registry ids are unique and findable" `Quick (fun () ->
        let ids = Experiments.Registry.ids in
        Alcotest.(check int) "unique" (List.length ids)
          (List.length (List.sort_uniq compare ids));
        List.iter
          (fun id ->
             Alcotest.(check bool) (id ^ " findable") true
               (Experiments.Registry.find id <> None))
          ids) ]

let claims =
  [ Alcotest.test_case "fig1: init is billed and a large bill share" `Slow
      (fun () ->
        let r = Experiments.Fig1.run () in
        Alcotest.(check bool) "init share of bill > 40%" true
          (r.Experiments.Fig1.init_share_of_bill > 0.40);
        let billed =
          List.filter (fun row -> row.Experiments.Fig1.billed)
            r.Experiments.Fig1.rows
        in
        Alcotest.(check int) "exactly two billed phases" 2 (List.length billed));
    Alcotest.test_case "fig2: exec-bound apps have low import share" `Slow
      (fun () ->
        let r = Experiments.Fig2.run () in
        let share app =
          (List.find (fun x -> x.Experiments.Fig2.app = app)
             r.Experiments.Fig2.rows)
            .Experiments.Fig2.import_share_pct
        in
        Alcotest.(check bool) "ffmpeg < 10%" true (share "ffmpeg" < 10.0);
        Alcotest.(check bool) "spacy > 90%" true (share "spacy" > 90.0);
        Alcotest.(check bool) "median in [50, 80]" true
          (r.Experiments.Fig2.median_share_pct >= 50.0
           && r.Experiments.Fig2.median_share_pct <= 80.0));
    Alcotest.test_case "fig8: headline improvements in band" `Slow (fun () ->
        let r = Experiments.Fig8.run () in
        Alcotest.(check bool) "avg speedup in [1.1, 1.5]" true
          (r.Experiments.Fig8.avg_speedup >= 1.1
           && r.Experiments.Fig8.avg_speedup <= 1.5);
        Alcotest.(check bool) "max speedup in [1.7, 2.2] (resnet ~2x)" true
          (r.Experiments.Fig8.max_speedup >= 1.7
           && r.Experiments.Fig8.max_speedup <= 2.2);
        Alcotest.(check bool) "avg cost cut in [15%, 40%]" true
          (r.Experiments.Fig8.avg_cost_pct >= 15.0
           && r.Experiments.Fig8.avg_cost_pct <= 40.0);
        (* the no-benefit apps stay near zero *)
        let row app =
          List.find (fun x -> x.Experiments.Fig8.app = app)
            r.Experiments.Fig8.rows
        in
        Alcotest.(check bool) "ffmpeg speedup ~1.0" true
          ((row "ffmpeg").Experiments.Fig8.speedup < 1.02);
        Alcotest.(check bool) "skimage cost cut > 50%" true
          ((row "skimage").Experiments.Fig8.cost_improvement_pct > 50.0));
    Alcotest.test_case "table2: lambda-trim >= faaslight >= vulture" `Slow
      (fun () ->
        let rows = Experiments.Table2.run () in
        List.iter
          (fun r ->
             Alcotest.(check bool)
               (r.Experiments.Table2.app ^ ": LT import >= FL")
               true
               (r.Experiments.Table2.import_trim_pct
                >= r.Experiments.Table2.import_faaslight_pct -. 0.01);
             Alcotest.(check bool)
               (r.Experiments.Table2.app ^ ": FL import >= Vulture")
               true
               (r.Experiments.Table2.import_faaslight_pct
                >= r.Experiments.Table2.import_vulture_pct -. 0.01))
          rows);
    Alcotest.test_case "fig9: combined never loses" `Slow (fun () ->
        let rows = Experiments.Fig9.run () in
        List.iter
          (fun r ->
             let cell m = List.assoc m r.Experiments.Fig9.per_method in
             let combined = cell "combined" in
             List.iter
               (fun m ->
                  let c = cell m in
                  Alcotest.(check bool)
                    (r.Experiments.Fig9.app ^ ": combined >= " ^ m)
                    true
                    (combined.Experiments.Fig9.cost_pct
                     >= c.Experiments.Fig9.cost_pct -. 0.5))
               [ "time"; "memory"; "random" ])
          rows);
    Alcotest.test_case "fig10: monotone then plateau" `Slow (fun () ->
        let rows = Experiments.Fig10.run () in
        List.iter
          (fun r ->
             let costs =
               List.map (fun p -> p.Experiments.Fig10.cost_pct)
                 r.Experiments.Fig10.points
             in
             (* non-decreasing within tolerance *)
             let rec mono = function
               | a :: (b :: _ as rest) -> a <= b +. 0.5 && mono rest
               | _ -> true
             in
             Alcotest.(check bool) (r.Experiments.Fig10.app ^ " monotone") true
               (mono costs);
             (* last two K values identical: the plateau *)
             match List.rev costs with
             | last :: prev :: _ ->
               Alcotest.(check bool) "plateau" true
                 (Float.abs (last -. prev) < 0.5)
             | _ -> Alcotest.fail "needs >= 2 points")
          rows);
    Alcotest.test_case "fig12: C/R crossover and combination wins" `Slow
      (fun () ->
        let rows = Experiments.Fig12.run () in
        let row app =
          List.find (fun r -> r.Experiments.Fig12.app = app) rows
        in
        (* small app: plain C/R worse than original-or-trim *)
        let ffmpeg = row "ffmpeg" in
        Alcotest.(check bool) "ffmpeg: C/R loses to original" true
          (ffmpeg.Experiments.Fig12.cr_ms > ffmpeg.Experiments.Fig12.original_ms);
        (* large app: C/R beats original *)
        let resnet = row "resnet" in
        Alcotest.(check bool) "resnet: C/R beats original" true
          (resnet.Experiments.Fig12.cr_ms < resnet.Experiments.Fig12.original_ms);
        (* combination never loses to pure C/R *)
        List.iter
          (fun r ->
             Alcotest.(check bool) (r.Experiments.Fig12.app ^ " combo <= C/R")
               true
               (r.Experiments.Fig12.cr_trim_ms
                <= r.Experiments.Fig12.cr_ms +. 0.01))
          rows);
    Alcotest.test_case "fig13: median snapstart share > 60%" `Slow (fun () ->
        let series = Experiments.Fig13.run ~n_functions:120 () in
        List.iter
          (fun s ->
             Alcotest.(check bool)
               (s.Experiments.Fig13.label ^ " median > 0.6")
               true
               (s.Experiments.Fig13.median_share > 0.6))
          series);
    Alcotest.test_case "fig14: trimming saves snapstart costs" `Slow (fun () ->
        let rows = Experiments.Fig14.run () in
        let savings = List.map (fun r -> r.Experiments.Fig14.saving_pct) rows in
        Alcotest.(check bool) "avg saving in [5%, 20%]" true
          (let avg = Platform.Metrics.mean savings in
           avg >= 5.0 && avg <= 20.0);
        List.iter
          (fun r ->
             Alcotest.(check bool) (r.Experiments.Fig14.app ^ " non-negative")
               true
               (r.Experiments.Fig14.saving_pct >= -0.5))
          rows);
    Alcotest.test_case "table4: cold fallback ~2x cold baseline" `Slow
      (fun () ->
        let rows = Experiments.Table4.run () in
        List.iter
          (fun r ->
             let c_cold = (List.nth r.Experiments.Table4.cells 0).Experiments.Table4.e2e_s in
             Alcotest.(check bool)
               (r.Experiments.Table4.app ^ " ratio in [1.6, 2.6]")
               true
               (let ratio = c_cold /. r.Experiments.Table4.baseline_cold_s in
                ratio >= 1.6 && ratio <= 2.6))
          rows);
    Alcotest.test_case "fig11 output reports tiny impact" `Slow (fun () ->
        let out = Experiments.Fig11.print () in
        Alcotest.(check bool) "mentions max impact" true
          (contains out "Max |impact|")) ]



let ablation_claims =
  [ Alcotest.test_case "granularity: attr keeps <= stmt keeps" `Slow (fun () ->
        List.iter
          (fun r ->
             Alcotest.(check bool)
               (r.Experiments.Ablations.g_app ^ " attr <= stmt")
               true
               (r.Experiments.Ablations.attr_kept
                <= r.Experiments.Ablations.stmt_kept))
          (List.map Experiments.Ablations.granularity_row
             Experiments.Ablations.apps_small));
    Alcotest.test_case "bursts: resnet saves big, ffmpeg saves nothing" `Slow
      (fun () ->
        let out = Experiments.Ablations.print_bursts () in
        (* the printed table carries the assertions; re-derive the key pair *)
        let burst_saving app =
          let t = Experiments.Common.trimmed app in
          let orig = t.Experiments.Common.original_m.Experiments.Common.cold in
          let trim = t.Experiments.Common.trimmed_m.Experiments.Common.cold in
          let open Platform.Lambda_sim in
          let trace =
            Platform.Trace.bursty ~seed:17 ~burst_size:40 ~burst_rate_per_s:20.0
              ~idle_gap_s:3600.0 ~bursts:24 ~name:"burst-day"
          in
          let bill (r : record) =
            let replay =
              Platform.Trace.replay_concurrent ~exec_s:(r.exec_ms /. 1000.0)
                ~cold_extra_s:(r.init_ms /. 1000.0) trace ~keep_alive_s:900.0
            in
            let c_cold =
              Platform.Pricing.invocation_cost Platform.Pricing.aws
                ~duration_ms:(r.init_ms +. r.exec_ms)
                ~memory_mb:r.peak_memory_mb
            in
            let c_warm =
              Platform.Pricing.invocation_cost Platform.Pricing.aws
                ~duration_ms:r.exec_ms ~memory_mb:r.peak_memory_mb
            in
            (float_of_int replay.Platform.Trace.c_cold_starts *. c_cold)
            +. (float_of_int replay.Platform.Trace.c_warm_starts *. c_warm)
          in
          Platform.Metrics.improvement_pct ~before:(bill orig)
            ~after:(bill trim)
        in
        Alcotest.(check bool) "non-empty output" true (String.length out > 100);
        Alcotest.(check bool) "resnet > 40%" true (burst_saving "resnet" > 40.0);
        Alcotest.(check bool) "ffmpeg < 5%" true (burst_saving "ffmpeg" < 5.0));
    Alcotest.test_case "providers: azure rounding floors short apps" `Slow
      (fun () ->
        let t = Experiments.Common.trimmed "markdown" in
        let orig = t.Experiments.Common.original_m.Experiments.Common.cold in
        let trim = t.Experiments.Common.trimmed_m.Experiments.Common.cold in
        let open Platform.Lambda_sim in
        let cost pricing (r : record) =
          Platform.Pricing.invocation_cost pricing
            ~duration_ms:(r.init_ms +. r.exec_ms) ~memory_mb:r.peak_memory_mb
        in
        let saving pricing =
          Platform.Metrics.improvement_pct ~before:(cost pricing orig)
            ~after:(cost pricing trim)
        in
        Alcotest.(check bool) "aws saving > azure saving" true
          (saving Platform.Pricing.aws > saving Platform.Pricing.azure);
        (* sub-second markdown invocations bill a full second on azure *)
        Alcotest.(check (float 1e-9)) "azure saving ~0" 0.0
          (saving Platform.Pricing.azure)) ]

let suite =
  [ ("experiments.registry", registry); ("experiments.claims", claims);
    ("experiments.ablation_claims", ablation_claims) ]
