test/test_pretty.ml: Alcotest Ast Minipy Parser Pretty Printexc
