test/test_baselines.ml: Alcotest Baselines List Minipy Platform Printf Str Trim Workloads
