test/test_profiler.ml: Alcotest Float List Minipy Option Platform Printf Profiler Trim Workloads
