test/test_callgraph.ml: Alcotest Callgraph List Minipy
