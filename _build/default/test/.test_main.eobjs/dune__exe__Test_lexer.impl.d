test/test_lexer.ml: Alcotest Lexer List Minipy Token
