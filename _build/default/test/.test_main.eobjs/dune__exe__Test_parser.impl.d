test/test_parser.ml: Alcotest Ast Lexer Loc Minipy Parser Pretty
