test/test_semantics.ml: Alcotest Ast Interp Minipy Parser Pretty Value Vfs
