test/test_interp.ml: Alcotest Interp Minipy Parser Value Vfs
