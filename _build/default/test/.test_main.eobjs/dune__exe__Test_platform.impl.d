test/test_platform.ml: Alcotest Lambda_sim List Minipy Platform Workloads
