test/test_debloater.ml: Alcotest Attrs Callgraph Debloater List Minipy Oracle Platform Printf Static_analyzer Str Trim Workloads
