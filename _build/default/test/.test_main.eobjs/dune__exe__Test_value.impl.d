test/test_value.ml: Alcotest Array Hashtbl List Minipy
