test/test_importer.ml: Alcotest Callgraph Hashtbl Importer Interp List Minipy Parser Platform Trim Value Vfs
