test/test_dd_variants.ml: Alcotest Callgraph Dd Debloater Fun List Minipy Oracle Pipeline Platform Printf Static_analyzer Str Trim Workloads
