test/test_checkpoint.ml: Alcotest Checkpoint Platform Printf
