test/test_dd.ml: Alcotest Dd Fun List Printf Trim
