test/test_pipeline.ml: Alcotest Debloater Float Lazy List Oracle Pipeline Platform Printf Trim Workloads
