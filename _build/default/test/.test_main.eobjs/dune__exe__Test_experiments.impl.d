test/test_experiments.ml: Alcotest Experiments Float List Platform Str String
