test/test_properties.ml: Array Ast Float Fun Hashtbl Interp Json_support List Minipy Parser Platform Pretty Printf QCheck2 QCheck_alcotest String Token Trim Value Vfs Workloads
