test/test_oracle.ml: Alcotest List Minipy Oracle Platform Str String Trim Workloads
