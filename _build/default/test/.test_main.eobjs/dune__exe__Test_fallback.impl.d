test/test_fallback.ml: Alcotest Lambda_sim Minipy Option Platform Str Trim Workloads
