test/test_pricing.ml: Alcotest Platform Pricing
