test/test_attrs.ml: Alcotest Attrs List Minipy Trim
