test/test_trace.ml: Alcotest Azure_trace List Metrics Platform Printf Trace
