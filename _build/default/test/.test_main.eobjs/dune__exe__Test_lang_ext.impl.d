test/test_lang_ext.ml: Alcotest Ast Interp List Minipy Parser Platform Pretty Printf String Trim Value Vfs Workloads
