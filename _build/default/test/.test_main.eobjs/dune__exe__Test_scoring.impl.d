test/test_scoring.ml: Alcotest List Profiler Scoring Trim Workloads
