test/test_workloads.ml: Alcotest List Minipy Platform Printf String Trim Workloads
