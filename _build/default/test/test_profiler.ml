(* Profiler: per-module marginal time/memory via import hooks (§5.2). *)

open Trim

let tiny = Workloads.Suite.tiny_app ()

let cases =
  [ Alcotest.test_case "measures every imported module" `Quick (fun () ->
        let r = Profiler.profile tiny in
        let names = List.map (fun m -> m.Profiler.mp_name) r.Profiler.modules in
        List.iter
          (fun expected ->
             Alcotest.(check bool) (expected ^ " measured") true
               (List.mem expected names))
          [ "tinylib"; "tinylib._core"; "tinylib._heavy_0"; "tinylib._heavy_1";
            "tinylib._api" ]);
    Alcotest.test_case "no init error on healthy app" `Quick (fun () ->
        let r = Profiler.profile tiny in
        Alcotest.(check (option string)) "none" None r.Profiler.init_error);
    Alcotest.test_case "root inclusive covers submodules" `Quick (fun () ->
        let r = Profiler.profile tiny in
        let find n = Option.get (Profiler.find r n) in
        let root = find "tinylib" in
        let core = find "tinylib._core" in
        Alcotest.(check bool) "root incl >= core incl" true
          (root.Profiler.mp_incl_ms >= core.Profiler.mp_incl_ms);
        Alcotest.(check bool) "root self < root incl" true
          (root.Profiler.mp_self_ms < root.Profiler.mp_incl_ms));
    Alcotest.test_case "totals cover the sum of root modules" `Quick (fun () ->
        let r = Profiler.profile tiny in
        let root = Option.get (Profiler.find r "tinylib") in
        Alcotest.(check bool) "T >= root t" true
          (r.Profiler.total_ms >= root.Profiler.mp_incl_ms);
        Alcotest.(check bool) "M >= root m" true
          (r.Profiler.total_mb >= root.Profiler.mp_incl_mb));
    Alcotest.test_case "heavy submodules carry expected cost share" `Quick
      (fun () ->
        (* tiny app: 70% of 100ms in 2 heavies -> ~35ms each *)
        let r = Profiler.profile tiny in
        let h0 = Option.get (Profiler.find r "tinylib._heavy_0") in
        Alcotest.(check bool)
          (Printf.sprintf "h0 %.1fms in [25, 45]" h0.Profiler.mp_incl_ms)
          true
          (h0.Profiler.mp_incl_ms >= 25.0 && h0.Profiler.mp_incl_ms <= 45.0));
    Alcotest.test_case "profiling is isolated (repeatable)" `Quick (fun () ->
        let r1 = Profiler.profile tiny in
        let r2 = Profiler.profile tiny in
        Alcotest.(check int) "same module count"
          (List.length r1.Profiler.modules)
          (List.length r2.Profiler.modules);
        Alcotest.(check bool) "same total (within epsilon)" true
          (Float.abs (r1.Profiler.total_ms -. r2.Profiler.total_ms) < 0.001));
    Alcotest.test_case "init crash reported" `Quick (fun () ->
        let broken = Platform.Deployment.copy tiny in
        Minipy.Vfs.add_file broken.Platform.Deployment.vfs
          "site-packages/tinylib/__init__.py" "raise ValueError(\"x\")\n";
        let r = Profiler.profile broken in
        Alcotest.(check (option string)) "err" (Some "ValueError")
          r.Profiler.init_error);
    Alcotest.test_case "simrt excluded from candidates" `Quick (fun () ->
        let r = Profiler.profile tiny in
        Alcotest.(check bool) "no simrt" true
          (List.for_all
             (fun m -> m.Profiler.mp_name <> "simrt")
             (Profiler.candidates r))) ]

let suite = [ ("profiler.measurement", cases) ]
