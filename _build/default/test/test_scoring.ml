(* Scoring: Eq. 2 marginal monetary cost and the ranking methods of §8.2. *)

open Trim

let tiny = Workloads.Suite.tiny_app ()

let eq2 =
  [ Alcotest.test_case "marginal cost formula" `Quick (fun () ->
        (* T=10, M=8, t=2, m=3: TM - (T-t)(M-m) = 80 - 8*5 = 40 *)
        Alcotest.(check (float 1e-9)) "value" 40.0
          (Scoring.marginal_monetary_cost ~total_ms:10.0 ~total_mb:8.0 ~t:2.0
             ~m:3.0));
    Alcotest.test_case "removing everything saves the whole bill" `Quick
      (fun () ->
        Alcotest.(check (float 1e-9)) "TM" 80.0
          (Scoring.marginal_monetary_cost ~total_ms:10.0 ~total_mb:8.0 ~t:10.0
             ~m:8.0));
    Alcotest.test_case "zero-footprint module scores by time leverage" `Quick
      (fun () ->
        (* the §5.2 strawman: slow but memoryless module *)
        let slow_no_mem =
          Scoring.marginal_monetary_cost ~total_ms:10.0 ~total_mb:8.0 ~t:5.0
            ~m:0.0
        in
        let balanced =
          Scoring.marginal_monetary_cost ~total_ms:10.0 ~total_mb:8.0 ~t:3.0
            ~m:3.0
        in
        Alcotest.(check bool) "balanced beats time-only pathological" true
          (balanced > slow_no_mem)) ]

let ranking =
  [ Alcotest.test_case "combined ranks root module first" `Quick (fun () ->
        let r = Profiler.profile tiny in
        match Scoring.rank Scoring.Combined r with
        | first :: _ ->
          Alcotest.(check string) "root" "tinylib" first.Profiler.mp_name
        | [] -> Alcotest.fail "empty ranking");
    Alcotest.test_case "top_k truncates" `Quick (fun () ->
        let r = Profiler.profile tiny in
        Alcotest.(check int) "k=2" 2
          (List.length (Scoring.top_k Scoring.Combined r ~k:2)));
    Alcotest.test_case "time method orders by import time" `Quick (fun () ->
        let r = Profiler.profile tiny in
        let ranked = Scoring.rank Scoring.Time r in
        let times = List.map (fun m -> m.Profiler.mp_incl_ms) ranked in
        Alcotest.(check (list (float 1e-9))) "descending"
          (List.sort (fun a b -> compare b a) times)
          times);
    Alcotest.test_case "memory method orders by footprint" `Quick (fun () ->
        let r = Profiler.profile tiny in
        let ranked = Scoring.rank Scoring.Memory r in
        let mems = List.map (fun m -> m.Profiler.mp_incl_mb) ranked in
        Alcotest.(check (list (float 1e-9))) "descending"
          (List.sort (fun a b -> compare b a) mems)
          mems);
    Alcotest.test_case "random method is deterministic per seed" `Quick
      (fun () ->
        let r = Profiler.profile tiny in
        let names m = List.map (fun x -> x.Profiler.mp_name) m in
        Alcotest.(check (list string)) "same seed same order"
          (names (Scoring.rank (Scoring.Random 7) r))
          (names (Scoring.rank (Scoring.Random 7) r)));
    Alcotest.test_case "method_of_string round-trips" `Quick (fun () ->
        List.iter
          (fun m ->
             Alcotest.(check string) "name" m
               (Scoring.method_name (Scoring.method_of_string m)))
          [ "time"; "memory"; "combined"; "random" ]) ]

let suite = [ ("scoring.eq2", eq2); ("scoring.ranking", ranking) ]
