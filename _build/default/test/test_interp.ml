(* Interpreter semantics: expressions, statements, classes, exceptions,
   stdout capture, and the virtual time/memory ledger. *)

open Minipy

let run ?(vfs = Vfs.create ()) src =
  let t = Interp.create vfs in
  let prog = Parser.parse ~file:"<test>" src in
  ignore (Interp.exec_main t prog);
  Interp.stdout_contents t

let check_out name src expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name expected (run src))

let check_raises name src exc_class =
  Alcotest.test_case name `Quick (fun () ->
      match run src with
      | _ -> Alcotest.failf "%s: expected %s, got success" name exc_class
      | exception Value.Py_error e ->
        Alcotest.(check string) name exc_class e.Value.exc_class)

let arithmetic =
  [ check_out "int add" "print(1 + 2)" "3\n";
    check_out "precedence" "print(1 + 2 * 3)" "7\n";
    check_out "parens" "print((1 + 2) * 3)" "9\n";
    check_out "float div" "print(7 / 2)" "3.5\n";
    check_out "floor div" "print(7 // 2)" "3\n";
    check_out "neg floor div" "print(-7 // 2)" "-4\n";
    check_out "mod" "print(7 % 3)" "1\n";
    check_out "neg mod" "print(-7 % 3)" "2\n";
    check_out "pow" "print(2 ** 10)" "1024\n";
    check_out "pow right assoc" "print(2 ** 3 ** 2)" "512\n";
    check_out "unary minus" "print(-3 + 1)" "-2\n";
    check_out "float print" "print(1.5)" "1.5\n";
    check_out "float int print" "print(2.0)" "2.0\n";
    check_out "mixed arith" "print(1 + 0.5)" "1.5\n";
    check_out "str concat" "print(\"a\" + \"b\")" "ab\n";
    check_out "str mult" "print(\"ab\" * 3)" "ababab\n";
    check_raises "div by zero" "print(1 / 0)" "ZeroDivisionError";
    check_raises "bad add" "print(1 + \"a\")" "TypeError" ]

let comparisons =
  [ check_out "eq" "print(1 == 1, 1 == 2)" "True False\n";
    check_out "ne" "print(1 != 2)" "True\n";
    check_out "lt chain fold" "print(1 < 2)" "True\n";
    check_out "str compare" "print(\"a\" < \"b\")" "True\n";
    check_out "in list" "print(2 in [1, 2, 3])" "True\n";
    check_out "not in" "print(5 not in [1, 2])" "True\n";
    check_out "in str" "print(\"bc\" in \"abcd\")" "True\n";
    check_out "in dict" "print(\"k\" in {\"k\": 1})" "True\n";
    check_out "and short circuit" "print(False and undefined_name)" "False\n";
    check_out "or short circuit" "print(True or undefined_name)" "True\n";
    check_out "and value" "print(1 and 2)" "2\n";
    check_out "or value" "print(0 or 3)" "3\n";
    check_out "not" "print(not 0, not 1)" "True False\n" ]

let control_flow =
  [ check_out "if else"
      "x = 3\nif x > 2:\n  print(\"big\")\nelse:\n  print(\"small\")" "big\n";
    check_out "elif"
      "x = 2\nif x == 1:\n  print(\"one\")\nelif x == 2:\n  print(\"two\")\nelse:\n  print(\"other\")"
      "two\n";
    check_out "while"
      "i = 0\nwhile i < 3:\n  print(i)\n  i = i + 1" "0\n1\n2\n";
    check_out "for range" "for i in range(3):\n  print(i)" "0\n1\n2\n";
    check_out "for range start stop" "for i in range(2, 5):\n  print(i)" "2\n3\n4\n";
    check_out "for range step" "for i in range(0, 10, 3):\n  print(i)" "0\n3\n6\n9\n";
    check_out "break"
      "for i in range(10):\n  if i == 2:\n    break\n  print(i)" "0\n1\n";
    check_out "continue"
      "for i in range(4):\n  if i % 2 == 0:\n    continue\n  print(i)" "1\n3\n";
    check_out "nested loops"
      "for i in range(2):\n  for j in range(2):\n    print(i, j)"
      "0 0\n0 1\n1 0\n1 1\n";
    check_out "ternary" "x = 5\nprint(\"big\" if x > 3 else \"small\")" "big\n";
    check_out "tuple unpack" "a, b = 1, 2\nprint(a, b)" "1 2\n";
    check_out "tuple swap" "a, b = 1, 2\na, b = b, a\nprint(a, b)" "2 1\n";
    check_out "augassign" "x = 1\nx += 4\nprint(x)" "5\n";
    check_out "inline if" "x = 1\nif x: print(\"yes\")" "yes\n" ]

let functions =
  [ check_out "def and call" "def f(x):\n  return x * 2\nprint(f(21))" "42\n";
    check_out "default arg" "def f(x, y=10):\n  return x + y\nprint(f(1), f(1, 2))"
      "11 3\n";
    check_out "kwarg call" "def f(a, b):\n  return a - b\nprint(f(b=1, a=5))" "4\n";
    check_out "recursion"
      "def fib(n):\n  if n < 2:\n    return n\n  return fib(n - 1) + fib(n - 2)\nprint(fib(10))"
      "55\n";
    check_out "closure over globals"
      "base = 10\ndef add(x):\n  return base + x\nprint(add(5))" "15\n";
    check_out "global statement"
      "count = 0\ndef bump():\n  global count\n  count = count + 1\nbump()\nbump()\nprint(count)"
      "2\n";
    check_out "lambda" "f = lambda x, y: x * y\nprint(f(6, 7))" "42\n";
    check_out "no return is None" "def f():\n  pass\nprint(f())" "None\n";
    check_out "early return"
      "def f(x):\n  if x > 0:\n    return \"pos\"\n  return \"nonpos\"\nprint(f(1), f(-1))"
      "pos nonpos\n";
    check_raises "missing arg" "def f(x):\n  return x\nf()" "TypeError";
    check_raises "extra arg" "def f(x):\n  return x\nf(1, 2)" "TypeError";
    check_raises "unknown kwarg" "def f(x):\n  return x\nf(x=1, z=2)" "TypeError" ]

let data_structures =
  [ check_out "list index" "xs = [10, 20, 30]\nprint(xs[1], xs[-1])" "20 30\n";
    check_out "list set" "xs = [1, 2]\nxs[0] = 9\nprint(xs)" "[9, 2]\n";
    check_out "list append" "xs = []\nxs.append(1)\nxs.append(2)\nprint(xs)" "[1, 2]\n";
    check_out "list pop" "xs = [1, 2, 3]\nprint(xs.pop(), xs)" "3 [1, 2]\n";
    check_out "list extend" "xs = [1]\nxs.extend([2, 3])\nprint(xs)" "[1, 2, 3]\n";
    check_out "list sort" "xs = [3, 1, 2]\nxs.sort()\nprint(xs)" "[1, 2, 3]\n";
    check_out "list index method" "print([\"a\", \"b\"].index(\"b\"))" "1\n";
    check_out "len" "print(len([1, 2, 3]), len(\"abcd\"), len({\"a\": 1}))" "3 4 1\n";
    check_out "dict get" "d = {\"a\": 1}\nprint(d[\"a\"], d.get(\"b\"), d.get(\"b\", 0))"
      "1 None 0\n";
    check_out "dict set" "d = {}\nd[\"x\"] = 5\nprint(d)" "{'x': 5}\n";
    check_out "dict keys values"
      "d = {\"a\": 1, \"b\": 2}\nprint(d.keys(), d.values())" "['a', 'b'] [1, 2]\n";
    check_out "dict items iteration"
      "d = {\"a\": 1, \"b\": 2}\nfor k, v in d.items():\n  print(k, v)" "a 1\nb 2\n";
    check_out "dict update" "d = {\"a\": 1}\nd.update({\"b\": 2})\nprint(d)"
      "{'a': 1, 'b': 2}\n";
    check_out "tuple index" "t = (1, 2, 3)\nprint(t[0], t[-1])" "1 3\n";
    check_out "nested" "m = {\"xs\": [1, {\"y\": 2}]}\nprint(m[\"xs\"][1][\"y\"])" "2\n";
    check_out "str methods"
      "print(\"Hello\".upper(), \"WORLD\".lower(), \" x \".strip())" "HELLO world x\n";
    check_out "str split join"
      "parts = \"a,b,c\".split(\",\")\nprint(\"-\".join(parts))" "a-b-c\n";
    check_out "str startswith" "print(\"hello\".startswith(\"he\"))" "True\n";
    check_out "str replace" "print(\"aXbXc\".replace(\"X\", \"-\"))" "a-b-c\n";
    check_out "sum min max" "xs = [3, 1, 4, 1, 5]\nprint(sum(xs), min(xs), max(xs))"
      "14 1 5\n";
    check_out "sorted" "print(sorted([3, 1, 2]))" "[1, 2, 3]\n";
    check_out "enumerate" "for i, x in enumerate([\"a\", \"b\"]):\n  print(i, x)"
      "0 a\n1 b\n";
    check_out "zip" "for a, b in zip([1, 2], [\"x\", \"y\"]):\n  print(a, b)"
      "1 x\n2 y\n";
    check_out "del dict key" "d = {\"a\": 1, \"b\": 2}\ndel d[\"a\"]\nprint(d)"
      "{'b': 2}\n";
    check_raises "index error" "xs = [1]\nprint(xs[5])" "IndexError";
    check_raises "key error" "d = {}\nprint(d[\"missing\"])" "KeyError" ]

let classes =
  [ check_out "class init and method"
      "class Point:\n\
      \  def __init__(self, x, y):\n\
      \    self.x = x\n\
      \    self.y = y\n\
      \  def norm1(self):\n\
      \    return abs(self.x) + abs(self.y)\n\
       p = Point(3, -4)\n\
       print(p.x, p.norm1())"
      "3 7\n";
    check_out "class attribute"
      "class Config:\n  version = 3\nprint(Config.version)" "3\n";
    check_out "inheritance"
      "class Base:\n\
      \  def kind(self):\n\
      \    return \"base\"\n\
       class Child(Base):\n\
      \  pass\n\
       c = Child()\n\
       print(c.kind())"
      "base\n";
    check_out "override"
      "class Base:\n\
      \  def kind(self):\n\
      \    return \"base\"\n\
       class Child(Base):\n\
      \  def kind(self):\n\
      \    return \"child\"\n\
       print(Child().kind())"
      "child\n";
    check_out "callable instance"
      "class Linear:\n\
      \  def __init__(self, n):\n\
      \    self.n = n\n\
      \  def __call__(self, x):\n\
      \    return self.n * x\n\
       model = Linear(3)\n\
       print(model(7))"
      "21\n";
    check_out "isinstance"
      "class A:\n  pass\nclass B(A):\n  pass\nb = B()\nprint(isinstance(b, A), isinstance(b, B))"
      "True True\n";
    check_out "setattr on instance"
      "class Box:\n  pass\nb = Box()\nb.value = 9\nprint(b.value)" "9\n";
    check_raises "missing attribute"
      "class Box:\n  pass\nb = Box()\nprint(b.missing)" "AttributeError" ]

let exceptions =
  [ check_out "try except"
      "try:\n  raise ValueError(\"bad\")\nexcept ValueError as e:\n  print(\"caught\", e)"
      "caught ValueError('bad')\n";
    check_out "except wrong class propagates to bare"
      "try:\n  raise KeyError(\"k\")\nexcept ValueError:\n  print(\"no\")\nexcept:\n  print(\"bare\")"
      "bare\n";
    check_out "exception catch-all Exception"
      "try:\n  raise KeyError(\"k\")\nexcept Exception:\n  print(\"caught\")" "caught\n";
    check_out "finally runs on success"
      "try:\n  print(\"body\")\nfinally:\n  print(\"fin\")" "body\nfin\n";
    check_out "finally runs on error"
      "try:\n\
      \  try:\n\
      \    raise ValueError(\"x\")\n\
      \  finally:\n\
      \    print(\"fin\")\n\
       except ValueError:\n\
      \  print(\"outer\")"
      "fin\nouter\n";
    check_out "builtin raised caught"
      "try:\n  xs = []\n  xs[3]\nexcept IndexError:\n  print(\"idx\")" "idx\n";
    check_out "attribute error caught"
      "class A:\n  pass\ntry:\n  A().nope\nexcept AttributeError:\n  print(\"attr\")"
      "attr\n";
    check_out "assert pass" "assert 1 == 1\nprint(\"ok\")" "ok\n";
    check_raises "assert fail" "assert 1 == 2, \"boom\"" "AssertionError";
    check_raises "uncaught" "raise RuntimeError(\"die\")" "RuntimeError";
    check_raises "name error" "print(nope)" "NameError" ]

let resources =
  [ Alcotest.test_case "virtual time advances" `Quick (fun () ->
        let t = Interp.create (Vfs.create ()) in
        let prog = Parser.parse ~file:"<t>" "x = 0\nfor i in range(100):\n  x = x + 1" in
        ignore (Interp.exec_main t prog);
        Alcotest.(check bool) "time > 0" true (t.Interp.vtime_ms > 0.0));
    Alcotest.test_case "simrt.cpu_ms charges time" `Quick (fun () ->
        let t = Interp.create (Vfs.create ()) in
        let prog =
          Parser.parse ~file:"<t>" "import simrt\nsimrt.cpu_ms(150)"
        in
        ignore (Interp.exec_main t prog);
        Alcotest.(check bool) "time >= 150" true (t.Interp.vtime_ms >= 150.0));
    Alcotest.test_case "simrt.alloc_mb charges memory" `Quick (fun () ->
        let t = Interp.create (Vfs.create ()) in
        let before = Interp.heap_mb t in
        let prog = Parser.parse ~file:"<t>" "import simrt\nsimrt.alloc_mb(64)" in
        ignore (Interp.exec_main t prog);
        Alcotest.(check bool) "heap grew by >= 64MB" true
          (Interp.heap_mb t -. before >= 64.0));
    Alcotest.test_case "allocations charge the ledger" `Quick (fun () ->
        let t = Interp.create (Vfs.create ()) in
        let before = t.Interp.heap_bytes in
        let prog =
          Parser.parse ~file:"<t>" "xs = []\nfor i in range(1000):\n  xs.append(i)"
        in
        ignore (Interp.exec_main t prog);
        Alcotest.(check bool) "bytes grew" true (t.Interp.heap_bytes > before));
    Alcotest.test_case "step budget halts runaway loops" `Quick (fun () ->
        let t = Interp.create ~max_steps:10_000 (Vfs.create ()) in
        let prog = Parser.parse ~file:"<t>" "while True:\n  pass" in
        match Interp.exec_main t prog with
        | _ -> Alcotest.fail "expected Timeout"
        | exception Interp.Timeout _ -> ()) ]

let suite =
  [ ("interp.arithmetic", arithmetic);
    ("interp.comparisons", comparisons);
    ("interp.control_flow", control_flow);
    ("interp.functions", functions);
    ("interp.data_structures", data_structures);
    ("interp.classes", classes);
    ("interp.exceptions", exceptions);
    ("interp.resources", resources) ]
