(* Pretty-printer: parse . print round-trips structurally. *)

open Minipy

let parse src = Parser.parse ~file:"<t>" src

let roundtrip name src =
  Alcotest.test_case name `Quick (fun () ->
      let p1 = parse src in
      let printed = Pretty.program_to_string p1 in
      let p2 =
        try parse printed
        with e ->
          Alcotest.failf "re-parse of %S failed: %s" printed (Printexc.to_string e)
      in
      if not (Ast.program_equal p1 p2) then
        Alcotest.failf "round-trip changed structure:\n--- source\n%s\n--- printed\n%s"
          src printed)

let cases =
  [ roundtrip "module shaped like fig7"
      "from torch.nn import Linear, MSELoss\n\
       from torch.optim import SGD\n\
       class tensor:\n\
      \  def __init__(self, data):\n\
      \    self.data = data\n\
       def add(t1, t2):\n\
      \  return tensor(t1.data + t2.data)\n\
       def view(t, dim1, dim2):\n\
      \  return t\n";
    roundtrip "handler module"
      "import boto3\n\
       session = boto3.Session(key=\"a\", secret=\"b\")\n\
       def handler_name(event, context):\n\
      \  body = event[\"body\"]\n\
      \  return {\"status\": 200, \"body\": body}\n";
    roundtrip "deep nesting"
      "def f(x):\n\
      \  if x > 0:\n\
      \    for i in range(x):\n\
      \      while i > 0:\n\
      \        i -= 1\n\
      \        if i == 2:\n\
      \          break\n\
      \  return x\n";
    roundtrip "operators galore"
      "y = 1 + 2 * 3 - 4 / 5 % 6 // 7 ** 8\n\
       z = not a and (b or c) == (d != e)\n\
       w = -x ** 2\n\
       v = (a + b) * (c - d)\n";
    roundtrip "containers"
      "cfg = {\"a\": [1, 2, (3, 4)], \"b\": {\"c\": ()}}\n\
       t = (1,)\n\
       xs = [[1], [2, 3]]\n";
    roundtrip "try except finally"
      "try:\n\
      \  risky()\n\
       except ValueError as e:\n\
      \  handle(e)\n\
       except:\n\
      \  pass\n\
       finally:\n\
      \  cleanup()\n";
    roundtrip "ternary and lambda"
      "choose = lambda c, a, b: a if c else b\n\
       v = choose(True, 1, 2)\n";
    roundtrip "class with bases and attrs"
      "class Model(Base, Mixin):\n\
      \  version = 3\n\
      \  def run(self, x=1, y=2):\n\
      \    return self.version + x + y\n";
    roundtrip "del global assert"
      "def f():\n\
      \  global registry\n\
      \  registry = {}\n\
      \  del registry\n\
      \  assert True, \"never\"\n";
    roundtrip "empty collections and none"
      "a = None\nb = ()\nc = []\nd = {}\ne = True\nf = False\n" ]

let escaping =
  [ Alcotest.test_case "string escapes survive round-trip" `Quick (fun () ->
        let p1 = parse "s = \"line1\\nline2\\t\\\"quoted\\\"\"" in
        let p2 = parse (Pretty.program_to_string p1) in
        Alcotest.(check bool) "equal" true (Ast.program_equal p1 p2)) ]

let suite = [ ("pretty.roundtrip", cases); ("pretty.escaping", escaping) ]
