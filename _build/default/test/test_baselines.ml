(* FaaSLight and Vulture baselines (Table 2). *)

let tiny () = Workloads.Suite.tiny_app ()

let cold d =
  let sim = Platform.Lambda_sim.create d in
  Platform.Lambda_sim.invoke sim ~now_s:0.0 ~event:"{\"x\": 1}" ()

let faaslight =
  [ Alcotest.test_case "output still passes the oracle" `Quick (fun () ->
        let d = tiny () in
        let oracle, _ = Trim.Oracle.for_reference d in
        let d', _ = Baselines.Faaslight.optimize d in
        Alcotest.(check bool) "passes" true (oracle d'));
    Alcotest.test_case "removes statically-dead statements" `Quick (fun () ->
        let d = tiny () in
        let _, r = Baselines.Faaslight.optimize d in
        Alcotest.(check bool)
          (Printf.sprintf "%d statements removed" r.Baselines.Faaslight.fl_statements_removed)
          true
          (r.Baselines.Faaslight.fl_statements_removed > 0));
    Alcotest.test_case "improves init time but less than lambda-trim" `Quick
      (fun () ->
        let d = tiny () in
        let fl, _ = Baselines.Faaslight.optimize d in
        let lt = (Trim.Pipeline.run d).Trim.Pipeline.optimized in
        let base = (cold d).Platform.Lambda_sim.init_ms in
        let fl_init = (cold fl).Platform.Lambda_sim.init_ms in
        let lt_init = (cold lt).Platform.Lambda_sim.init_ms in
        Alcotest.(check bool)
          (Printf.sprintf "base %.1f > fl %.1f" base fl_init)
          true (fl_init < base);
        Alcotest.(check bool)
          (Printf.sprintf "fl %.1f > lt %.1f (DD beats static)" fl_init lt_init)
          true (lt_init < fl_init));
    Alcotest.test_case "dead-branch references block FaaSLight only" `Quick
      (fun () ->
        (* heavy_0 is referenced in the dead gpu branch: FaaSLight must keep
           its re-export, lambda-trim removes it *)
        let d = tiny () in
        let fl, _ = Baselines.Faaslight.optimize d in
        let lt = (Trim.Pipeline.run d).Trim.Pipeline.optimized in
        let init_src dep =
          Minipy.Vfs.read_exn dep.Platform.Deployment.vfs
            "site-packages/tinylib/__init__.py"
        in
        let has_heavy0 src =
          let re = Str.regexp_string "_heavy_0" in
          try ignore (Str.search_forward re src 0); true with Not_found -> false
        in
        Alcotest.(check bool) "faaslight keeps heavy_0" true (has_heavy0 (init_src fl));
        Alcotest.(check bool) "lambda-trim drops heavy_0" false (has_heavy0 (init_src lt)));
    Alcotest.test_case "safeguard backups ship in the image" `Quick (fun () ->
        let d = tiny () in
        let d', r = Baselines.Faaslight.optimize d in
        List.iter
          (fun p ->
             Alcotest.(check bool) (p ^ " exists") true
               (Minipy.Vfs.exists d'.Platform.Deployment.vfs p))
          r.Baselines.Faaslight.fl_backup_paths;
        Alcotest.(check bool) "image not smaller than original" true
          (Platform.Deployment.image_mb d' >= Platform.Deployment.image_mb d)) ]

let vulture =
  [ Alcotest.test_case "finds the dead handler helper" `Quick (fun () ->
        let d = tiny () in
        let _, r = Baselines.Vulture.optimize d in
        Alcotest.(check bool) "found _unused_debug_dump" true
          (List.mem "_unused_debug_dump" r.Baselines.Vulture.v_dead_names));
    Alcotest.test_case "output still passes the oracle" `Quick (fun () ->
        let d = tiny () in
        let oracle, _ = Trim.Oracle.for_reference d in
        let d', _ = Baselines.Vulture.optimize d in
        Alcotest.(check bool) "passes" true (oracle d'));
    Alcotest.test_case "keeps the handler" `Quick (fun () ->
        let d = tiny () in
        let d', _ = Baselines.Vulture.optimize d in
        let r = cold d' in
        match r.Platform.Lambda_sim.outcome with
        | Platform.Lambda_sim.Ok _ -> ()
        | Platform.Lambda_sim.Error e ->
          Alcotest.failf "broken: %s" e.Minipy.Value.exc_class);
    Alcotest.test_case "library bloat untouched (marginal gains)" `Quick
      (fun () ->
        let d = tiny () in
        let d', _ = Baselines.Vulture.optimize d in
        let b = cold d and a = cold d' in
        let impr =
          Platform.Metrics.improvement_pct
            ~before:b.Platform.Lambda_sim.init_ms
            ~after:a.Platform.Lambda_sim.init_ms
        in
        Alcotest.(check bool)
          (Printf.sprintf "init improvement %.2f%% < 5%%" impr)
          true (impr < 5.0)) ]

let suite =
  [ ("baselines.faaslight", faaslight); ("baselines.vulture", vulture) ]
