(* Lambda simulator: cold/warm lifecycle, keep-alive, billing boundary. *)

open Platform

let tiny () = Workloads.Suite.tiny_app ()

let lifecycle =
  [ Alcotest.test_case "first invocation is cold, second warm" `Quick (fun () ->
        let sim = Lambda_sim.create (tiny ()) in
        let c = Lambda_sim.invoke sim ~now_s:0.0 () in
        let w = Lambda_sim.invoke sim ~now_s:1.0 () in
        Alcotest.(check string) "cold" "cold" (Lambda_sim.start_kind_name c.Lambda_sim.kind);
        Alcotest.(check string) "warm" "warm" (Lambda_sim.start_kind_name w.Lambda_sim.kind));
    Alcotest.test_case "keep-alive expiry forces a cold start" `Quick (fun () ->
        let params = { Lambda_sim.default_params with keep_alive_s = 60.0 } in
        let sim = Lambda_sim.create ~params (tiny ()) in
        let _ = Lambda_sim.invoke sim ~now_s:0.0 () in
        let late = Lambda_sim.invoke sim ~now_s:120.0 () in
        Alcotest.(check string) "cold again" "cold"
          (Lambda_sim.start_kind_name late.Lambda_sim.kind));
    Alcotest.test_case "request inside keep-alive is warm" `Quick (fun () ->
        let params = { Lambda_sim.default_params with keep_alive_s = 60.0 } in
        let sim = Lambda_sim.create ~params (tiny ()) in
        let _ = Lambda_sim.invoke sim ~now_s:0.0 () in
        let w = Lambda_sim.invoke sim ~now_s:59.0 () in
        Alcotest.(check string) "warm" "warm"
          (Lambda_sim.start_kind_name w.Lambda_sim.kind));
    Alcotest.test_case "evict forces cold start" `Quick (fun () ->
        let sim = Lambda_sim.create (tiny ()) in
        let _ = Lambda_sim.invoke sim ~now_s:0.0 () in
        Lambda_sim.evict sim;
        let c = Lambda_sim.invoke sim ~now_s:1.0 () in
        Alcotest.(check string) "cold" "cold"
          (Lambda_sim.start_kind_name c.Lambda_sim.kind));
    Alcotest.test_case "records accumulate in order" `Quick (fun () ->
        let sim = Lambda_sim.create (tiny ()) in
        let _ = Lambda_sim.invoke sim ~now_s:0.0 () in
        let _ = Lambda_sim.invoke sim ~now_s:1.0 () in
        let rs = Lambda_sim.records sim in
        Alcotest.(check int) "two" 2 (List.length rs);
        Alcotest.(check string) "first cold" "cold"
          (Lambda_sim.start_kind_name (List.hd rs).Lambda_sim.kind)) ]

let phases =
  [ Alcotest.test_case "fig1 billing boundary" `Quick (fun () ->
        let sim = Lambda_sim.create (tiny ()) in
        let c = Lambda_sim.invoke sim ~now_s:0.0 () in
        (* billed = init + exec (rounded up); platform phases unbilled *)
        Alcotest.(check bool) "billed >= init+exec" true
          (c.Lambda_sim.billed_ms >= c.Lambda_sim.init_ms +. c.Lambda_sim.exec_ms -. 1e-9);
        Alcotest.(check bool) "billed < init+exec+granularity" true
          (c.Lambda_sim.billed_ms < c.Lambda_sim.init_ms +. c.Lambda_sim.exec_ms +. 1.0);
        Alcotest.(check bool) "e2e includes unbilled phases" true
          (c.Lambda_sim.e2e_ms
           >= c.Lambda_sim.billed_ms +. c.Lambda_sim.instance_init_ms -. 1.0));
    Alcotest.test_case "warm start has no init phases" `Quick (fun () ->
        let sim = Lambda_sim.create (tiny ()) in
        let _ = Lambda_sim.invoke sim ~now_s:0.0 () in
        let w = Lambda_sim.invoke sim ~now_s:1.0 () in
        Alcotest.(check (float 1e-9)) "no instance init" 0.0 w.Lambda_sim.instance_init_ms;
        Alcotest.(check (float 1e-9)) "no transmission" 0.0 w.Lambda_sim.transmission_ms;
        Alcotest.(check (float 1e-9)) "no fn init" 0.0 w.Lambda_sim.init_ms;
        Alcotest.(check bool) "but executes" true (w.Lambda_sim.exec_ms > 0.0));
    Alcotest.test_case "transmission scales with image size" `Quick (fun () ->
        let d = tiny () in
        let sim = Lambda_sim.create d in
        let expected =
          Platform.Deployment.image_mb d
          /. Lambda_sim.default_params.Lambda_sim.transmission_mb_per_s *. 1000.0
        in
        Alcotest.(check (float 1e-6)) "ms" expected (Lambda_sim.transmission_ms sim));
    Alcotest.test_case "cold start costs more than warm" `Quick (fun () ->
        let sim = Lambda_sim.create (tiny ()) in
        let c = Lambda_sim.invoke sim ~now_s:0.0 () in
        let w = Lambda_sim.invoke sim ~now_s:1.0 () in
        Alcotest.(check bool) "cost" true (c.Lambda_sim.cost > w.Lambda_sim.cost));
    Alcotest.test_case "handler error is captured not raised" `Quick (fun () ->
        let d = tiny () in
        let sim = Lambda_sim.create d in
        let r = Lambda_sim.invoke sim ~now_s:0.0 ~event:"{\"x\": \"oops\"}" () in
        match r.Lambda_sim.outcome with
        | Lambda_sim.Error e ->
          Alcotest.(check string) "TypeError" "TypeError" e.Minipy.Value.exc_class
        | Lambda_sim.Ok _ -> Alcotest.fail "expected type error from str*int") ]



let init_crash =
  [ Alcotest.test_case "init crash surfaces as a function error" `Quick
      (fun () ->
        let d = tiny () in
        let broken = Platform.Deployment.copy d in
        Minipy.Vfs.add_file broken.Platform.Deployment.vfs
          "site-packages/tinylib/__init__.py" "raise OSError(\"no .so\")\n";
        let sim = Lambda_sim.create broken in
        let r = Lambda_sim.invoke sim ~now_s:0.0 () in
        (match r.Lambda_sim.outcome with
         | Lambda_sim.Error e ->
           Alcotest.(check string) "class" "OSError" e.Minipy.Value.exc_class
         | Lambda_sim.Ok _ -> Alcotest.fail "expected error");
        (* a crashed instance is not kept warm *)
        let r2 = Lambda_sim.invoke sim ~now_s:1.0 () in
        Alcotest.(check string) "cold again" "cold"
          (Lambda_sim.start_kind_name r2.Lambda_sim.kind)) ]

let suite =
  [ ("platform.lifecycle", lifecycle); ("platform.phases", phases);
    ("platform.init_crash", init_crash) ]
