(* Attribute enumeration and module rewriting (§6.1, Figure 7). *)

open Trim

let parse src = Minipy.Parser.parse ~file:"<t>" src

let attrs src = Attrs.attrs_of_program (parse src)

let restrict src keep =
  let keep =
    List.fold_left (fun s x -> Attrs.String_set.add x s) Attrs.String_set.empty keep
  in
  Minipy.Pretty.program_to_string (Attrs.restrict (parse src) ~keep)

let fig7_module =
  "from torch.nn import Linear, MSELoss\n\
   from torch.optim import SGD\n\
   class tensor:\n\
  \  def __init__(self, data):\n\
  \    self.data = data\n\
   def add(t1, t2):\n\
  \  return t1\n\
   def view(t, dim1, dim2):\n\
  \  return t\n"

let enumeration =
  [ Alcotest.test_case "all binding kinds enumerated" `Quick (fun () ->
        Alcotest.(check (list string)) "attrs"
          [ "Linear"; "MSELoss"; "SGD"; "tensor"; "add"; "view" ]
          (attrs fig7_module));
    Alcotest.test_case "import binds root or alias" `Quick (fun () ->
        Alcotest.(check (list string)) "attrs" [ "numpy"; "t" ]
          (attrs "import numpy\nimport torch.nn as t\n"));
    Alcotest.test_case "dotted import binds root" `Quick (fun () ->
        Alcotest.(check (list string)) "attrs" [ "torch" ] (attrs "import torch.nn\n"));
    Alcotest.test_case "assign binds name" `Quick (fun () ->
        Alcotest.(check (list string)) "attrs" [ "version"; "a"; "b" ]
          (attrs "version = 3\na, b = 1, 2\n"));
    Alcotest.test_case "magic attrs excluded" `Quick (fun () ->
        Alcotest.(check (list string)) "attrs" [ "x" ]
          (attrs "__version__ = \"1.0\"\n__all__ = []\nx = 1\n"));
    Alcotest.test_case "duplicates collapse" `Quick (fun () ->
        Alcotest.(check (list string)) "attrs" [ "x"; "y" ]
          (attrs "x = 1\ny = 2\nx = 3\n"));
    Alcotest.test_case "non-binding statements contribute nothing" `Quick
      (fun () ->
        Alcotest.(check (list string)) "attrs" []
          (attrs "import simrt\nsimrt.cpu_ms(5)\nif True:\n  pass\n" |> List.tl));
    Alcotest.test_case "is_magic" `Quick (fun () ->
        Alcotest.(check bool) "__name__" true (Attrs.is_magic "__name__");
        Alcotest.(check bool) "__x__" true (Attrs.is_magic "__x__");
        Alcotest.(check bool) "_x_" false (Attrs.is_magic "_x_");
        Alcotest.(check bool) "plain" false (Attrs.is_magic "plain");
        Alcotest.(check bool) "dunder-prefix only" false (Attrs.is_magic "__init"))
  ]

let rewriting =
  [ Alcotest.test_case "fig7 debloat drops MSELoss and SGD" `Quick (fun () ->
        let out = restrict fig7_module [ "Linear"; "tensor"; "add"; "view" ] in
        Alcotest.(check string) "rewritten"
          "from torch.nn import Linear\n\
           class tensor:\n\
          \  def __init__(self, data):\n\
          \    self.data = data\n\
           def add(t1, t2):\n\
          \  return t1\n\
           def view(t, dim1, dim2):\n\
          \  return t\n"
          out);
    Alcotest.test_case "from-import filtered name by name" `Quick (fun () ->
        Alcotest.(check string) "kept b only" "from m import b\n"
          (restrict "from m import a, b, c\n" [ "b" ]));
    Alcotest.test_case "whole from-import dropped when no name kept" `Quick
      (fun () ->
        Alcotest.(check string) "empty module prints pass" "pass\n"
          (restrict "from m import a, b\n" []));
    Alcotest.test_case "plain import dropped when unbound" `Quick (fun () ->
        Alcotest.(check string) "kept" "import numpy\n"
          (restrict "import numpy\nimport torch\n" [ "numpy" ]));
    Alcotest.test_case "magic assignments always survive" `Quick (fun () ->
        Alcotest.(check string) "kept" "__version__ = \"9\"\n"
          (restrict "__version__ = \"9\"\nx = 1\n" []));
    Alcotest.test_case "expression statements always survive" `Quick (fun () ->
        Alcotest.(check string) "kept"
          "import simrt\nsimrt.cpu_ms(10)\n"
          (restrict "import simrt\nsimrt.cpu_ms(10)\nx = 2\n" [ "simrt" ]));
    Alcotest.test_case "restrict to everything is identity modulo format" `Quick
      (fun () ->
        let all = attrs fig7_module in
        let out = restrict fig7_module all in
        Alcotest.(check bool) "same program" true
          (Minipy.Ast.program_equal (parse fig7_module) (parse out)));
    Alcotest.test_case "restricted module still parses and runs" `Quick (fun () ->
        let vfs = Minipy.Vfs.create () in
        Minipy.Vfs.add_file vfs "site-packages/m/__init__.py"
          (restrict "def f():\n  return 41\ndef g():\n  return f() + 1\nz = 0\n"
             [ "f"; "g" ]);
        let t = Minipy.Interp.create vfs in
        ignore
          (Minipy.Interp.exec_main t
             (Minipy.Parser.parse ~file:"<m>" "from m import g\nprint(g())"));
        Alcotest.(check string) "output" "42\n" (Minipy.Interp.stdout_contents t))
  ]

let suite = [ ("attrs.enumeration", enumeration); ("attrs.rewriting", rewriting) ]
