(* Fallback wrapper (§5.4, Table 4). *)

open Platform

(* A deliberately over-trimmed tiny app: remove an attribute the handler
   needs so the wrapper must fall back. *)
let over_trimmed () =
  let d = Workloads.Suite.tiny_app () in
  let d' = Platform.Deployment.copy d in
  let file = "site-packages/tinylib/__init__.py" in
  let src = Minipy.Vfs.read_exn d'.Platform.Deployment.vfs file in
  let src' =
    Str.global_replace (Str.regexp_string ", run_task, Engine") ", Engine" src
  in
  Minipy.Vfs.add_file d'.Platform.Deployment.vfs file src';
  (d, d')

let cases =
  [ Alcotest.test_case "normal operation: no fallback" `Quick (fun () ->
        let d = Workloads.Suite.tiny_app () in
        let trimmed_sim = Lambda_sim.create d in
        let original_sim = Lambda_sim.create d in
        let r =
          Trim.Fallback.invoke ~event:"{\"x\": 1}" ~trimmed_sim ~original_sim
            ~now_s:0.0 ()
        in
        Alcotest.(check bool) "no fallback" false r.Trim.Fallback.used_fallback;
        Alcotest.(check (option string)) "no notification" None
          r.Trim.Fallback.notification);
    Alcotest.test_case "missing attribute triggers fallback" `Quick (fun () ->
        let orig, trimmed = over_trimmed () in
        let trimmed_sim = Lambda_sim.create trimmed in
        let original_sim = Lambda_sim.create orig in
        let r =
          Trim.Fallback.invoke ~event:"{\"x\": 1}" ~trimmed_sim ~original_sim
            ~now_s:0.0 ()
        in
        Alcotest.(check bool) "fallback used" true r.Trim.Fallback.used_fallback;
        (match r.Trim.Fallback.outcome with
         | Lambda_sim.Ok _ -> ()
         | Lambda_sim.Error e ->
           Alcotest.failf "fallback should succeed: %s" e.Minipy.Value.exc_class);
        Alcotest.(check bool) "notifies the user" true
          (r.Trim.Fallback.notification <> None));
    Alcotest.test_case "fallback returns the original's answer" `Quick (fun () ->
        let orig, trimmed = over_trimmed () in
        let baseline =
          let sim = Lambda_sim.create orig in
          Lambda_sim.invoke sim ~now_s:0.0 ~event:"{\"x\": 1}" ()
        in
        let r =
          Trim.Fallback.invoke ~event:"{\"x\": 1}"
            ~trimmed_sim:(Lambda_sim.create trimmed)
            ~original_sim:(Lambda_sim.create orig) ~now_s:0.0 ()
        in
        match baseline.Lambda_sim.outcome, r.Trim.Fallback.outcome with
        | Lambda_sim.Ok a, Lambda_sim.Ok b ->
          Alcotest.(check string) "same answer" (Minipy.Value.to_repr a)
            (Minipy.Value.to_repr b)
        | _ -> Alcotest.fail "expected Ok outcomes");
    Alcotest.test_case "cold fallback dominates E2E (table 4)" `Quick (fun () ->
        let orig, trimmed = over_trimmed () in
        let r =
          Trim.Fallback.invoke ~event:"{\"x\": 1}"
            ~trimmed_sim:(Lambda_sim.create trimmed)
            ~original_sim:(Lambda_sim.create orig) ~now_s:0.0 ()
        in
        let fb = Option.get r.Trim.Fallback.fallback_record in
        Alcotest.(check string) "fallback cold" "cold"
          (Lambda_sim.start_kind_name fb.Lambda_sim.kind);
        Alcotest.(check bool) "e2e > 1.8x trimmed alone" true
          (r.Trim.Fallback.e2e_ms
           > 1.8 *. r.Trim.Fallback.trimmed_record.Lambda_sim.e2e_ms));
    Alcotest.test_case "warm fallback is much cheaper" `Quick (fun () ->
        let orig, trimmed = over_trimmed () in
        let original_sim = Lambda_sim.create orig in
        (* pre-warm the fallback instance *)
        let _ = Lambda_sim.invoke original_sim ~now_s:0.0 ~event:"{\"x\": 1}" () in
        let cold_orig, trimmed2 = over_trimmed () in
        let cold_fb =
          Trim.Fallback.invoke ~event:"{\"x\": 1}"
            ~trimmed_sim:(Lambda_sim.create trimmed2)
            ~original_sim:(Lambda_sim.create cold_orig) ~now_s:0.0 ()
        in
        let warm_fb =
          Trim.Fallback.invoke ~event:"{\"x\": 1}"
            ~trimmed_sim:(Lambda_sim.create trimmed) ~original_sim ~now_s:10.0 ()
        in
        Alcotest.(check bool) "warm < cold" true
          (warm_fb.Trim.Fallback.e2e_ms < cold_fb.Trim.Fallback.e2e_ms));
    Alcotest.test_case "non-removal errors do not trigger fallback" `Quick
      (fun () ->
        let d = Workloads.Suite.tiny_app () in
        let r =
          Trim.Fallback.invoke ~event:"{\"x\": \"bad\"}"
            ~trimmed_sim:(Lambda_sim.create d)
            ~original_sim:(Lambda_sim.create d) ~now_s:0.0 ()
        in
        Alcotest.(check bool) "no fallback on TypeError" false
          r.Trim.Fallback.used_fallback;
        match r.Trim.Fallback.outcome with
        | Lambda_sim.Error e ->
          Alcotest.(check string) "TypeError" "TypeError" e.Minipy.Value.exc_class
        | Lambda_sim.Ok _ -> Alcotest.fail "expected error") ]

let suite = [ ("fallback.wrapper", cases) ]
