(* Import machinery: resolution, caching, packages, hooks, from-import. *)

open Minipy

let make_vfs files =
  let vfs = Vfs.create () in
  List.iter (fun (p, c) -> Vfs.add_file vfs p c) files;
  vfs

let run vfs src =
  let t = Interp.create vfs in
  let prog = Parser.parse ~file:"<main>" src in
  ignore (Interp.exec_main t prog);
  (t, Interp.stdout_contents t)

let check_out name vfs src expected =
  Alcotest.test_case name `Quick (fun () ->
      let _, out = run vfs src in
      Alcotest.(check string) name expected out)

let simple_pkg =
  make_vfs
    [ ("site-packages/mylib/__init__.py",
       "version = 7\ndef greet(name):\n  return \"hi \" + name\n");
      ("site-packages/mylib/util.py", "def double(x):\n  return x * 2\n");
      ("site-packages/mylib/sub/__init__.py", "leaf = True\n");
      ("helpers.py", "def local_helper():\n  return 99\n") ]

let resolution =
  [ Alcotest.test_case "resolve package" `Quick (fun () ->
        match Importer.resolve simple_pkg [ "mylib" ] with
        | Importer.Package p ->
          Alcotest.(check string) "path" "site-packages/mylib/__init__.py" p
        | _ -> Alcotest.fail "expected package");
    Alcotest.test_case "resolve module" `Quick (fun () ->
        match Importer.resolve simple_pkg [ "mylib"; "util" ] with
        | Importer.Module p ->
          Alcotest.(check string) "path" "site-packages/mylib/util.py" p
        | _ -> Alcotest.fail "expected module");
    Alcotest.test_case "resolve root-level module" `Quick (fun () ->
        match Importer.resolve simple_pkg [ "helpers" ] with
        | Importer.Module p -> Alcotest.(check string) "path" "helpers.py" p
        | _ -> Alcotest.fail "expected module");
    Alcotest.test_case "missing module" `Quick (fun () ->
        match Importer.resolve simple_pkg [ "nope" ] with
        | Importer.Not_found -> ()
        | _ -> Alcotest.fail "expected Not_found");
    Alcotest.test_case "prefixes" `Quick (fun () ->
        Alcotest.(check (list (list string)))
          "prefixes"
          [ [ "a" ]; [ "a"; "b" ]; [ "a"; "b"; "c" ] ]
          (Importer.prefixes [ "a"; "b"; "c" ])) ]

let importing =
  [ check_out "import package attr" simple_pkg
      "import mylib\nprint(mylib.version)" "7\n";
    check_out "call package function" simple_pkg
      "import mylib\nprint(mylib.greet(\"bob\"))" "hi bob\n";
    check_out "import submodule" simple_pkg
      "import mylib.util\nprint(mylib.util.double(4))" "8\n";
    check_out "import as alias" simple_pkg
      "import mylib.util as u\nprint(u.double(5))" "10\n";
    check_out "from import name" simple_pkg
      "from mylib import greet\nprint(greet(\"x\"))" "hi x\n";
    check_out "from import with alias" simple_pkg
      "from mylib import version as v\nprint(v)" "7\n";
    check_out "from import submodule" simple_pkg
      "from mylib import util\nprint(util.double(3))" "6\n";
    check_out "nested package" simple_pkg
      "import mylib.sub\nprint(mylib.sub.leaf)" "True\n";
    check_out "root-level module import" simple_pkg
      "import helpers\nprint(helpers.local_helper())" "99\n";
    check_out "submodule access via attr after parent import" simple_pkg
      "import mylib\nprint(mylib.util.double(6))" "12\n" ]

let caching =
  [ Alcotest.test_case "module body runs once" `Quick (fun () ->
        let vfs =
          make_vfs [ ("site-packages/eff/__init__.py", "print(\"side\")\nx = 1\n") ]
        in
        let _, out = run vfs "import eff\nimport eff\nfrom eff import x\nprint(x)" in
        Alcotest.(check string) "one side effect" "side\n1\n" out);
    Alcotest.test_case "fresh interpreter re-runs module" `Quick (fun () ->
        let vfs =
          make_vfs [ ("site-packages/eff/__init__.py", "print(\"side\")\n") ]
        in
        let _, out1 = run vfs "import eff" in
        let _, out2 = run vfs "import eff" in
        Alcotest.(check string) "isolated" (out1 ^ out2) "side\nside\n");
    Alcotest.test_case "circular import tolerated" `Quick (fun () ->
        let vfs =
          make_vfs
            [ ("site-packages/a/__init__.py", "import b\nx = 1\n");
              ("site-packages/b/__init__.py", "import a\ny = 2\n") ]
        in
        let _, out = run vfs "import a\nprint(a.x, a.b.y)" in
        Alcotest.(check string) "works" "1 2\n" out) ]

let hooks =
  [ Alcotest.test_case "import hooks observe module names in order" `Quick (fun () ->
        let vfs =
          make_vfs
            [ ("site-packages/outer/__init__.py", "import inner\n");
              ("site-packages/inner/__init__.py", "x = 1\n") ]
        in
        let t = Interp.create vfs in
        let events = ref [] in
        Interp.add_import_hook t
          { Interp.on_before = (fun n -> events := ("before:" ^ n) :: !events);
            on_after = (fun n -> events := ("after:" ^ n) :: !events) };
        ignore (Interp.exec_main t (Parser.parse ~file:"<m>" "import outer"));
        Alcotest.(check (list string)) "nesting order"
          [ "before:outer"; "before:inner"; "after:inner"; "after:outer" ]
          (List.rev !events));
    Alcotest.test_case "hook sees time and memory window" `Quick (fun () ->
        let vfs =
          make_vfs
            [ ("site-packages/heavy/__init__.py",
               "import simrt\nsimrt.cpu_ms(50)\nsimrt.alloc_mb(10)\n") ]
        in
        let t = Interp.create vfs in
        let t0 = ref 0.0 and m0 = ref 0 in
        let dt = ref 0.0 and dm = ref 0 in
        Interp.add_import_hook t
          { Interp.on_before =
              (fun _ -> t0 := t.Interp.vtime_ms; m0 := t.Interp.heap_bytes);
            on_after =
              (fun _ ->
                 dt := t.Interp.vtime_ms -. !t0;
                 dm := t.Interp.heap_bytes - !m0) };
        ignore (Interp.exec_main t (Parser.parse ~file:"<m>" "import heavy"));
        Alcotest.(check bool) "time >= 50ms" true (!dt >= 50.0);
        Alcotest.(check bool) "mem >= 10MB" true (!dm >= 10 * 1024 * 1024)) ]

let errors =
  [ Alcotest.test_case "missing import raises ModuleNotFoundError" `Quick (fun () ->
        match run (make_vfs []) "import ghost" with
        | _ -> Alcotest.fail "expected error"
        | exception Value.Py_error e ->
          Alcotest.(check string) "class" "ModuleNotFoundError" e.Value.exc_class);
    Alcotest.test_case "from import missing name" `Quick (fun () ->
        match run simple_pkg "from mylib import missing_thing" with
        | _ -> Alcotest.fail "expected error"
        | exception Value.Py_error e ->
          Alcotest.(check string) "class" "ImportError" e.Value.exc_class);
    Alcotest.test_case "failed module not cached" `Quick (fun () ->
        let vfs =
          make_vfs [ ("site-packages/bad/__init__.py", "raise ValueError(\"init\")\n") ]
        in
        let t = Interp.create vfs in
        let src = "try:\n  import bad\nexcept ValueError:\n  print(\"failed\")\n" in
        ignore (Interp.exec_main t (Parser.parse ~file:"<m>" src));
        Alcotest.(check bool) "not cached" false
          (Hashtbl.mem t.Interp.modules "bad"));
    Alcotest.test_case "syntax error surfaces as SyntaxError" `Quick (fun () ->
        let vfs = make_vfs [ ("site-packages/synbad/__init__.py", "def f(:\n") ] in
        match run vfs "import synbad" with
        | _ -> Alcotest.fail "expected error"
        | exception Value.Py_error e ->
          Alcotest.(check string) "class" "SyntaxError" e.Value.exc_class) ]



let relative_imports =
  [ Alcotest.test_case "from . import sibling in __init__" `Quick (fun () ->
        let vfs =
          make_vfs
            [ ("site-packages/pkg/__init__.py", "from . import util\n");
              ("site-packages/pkg/util.py", "def f():\n  return 5\n") ]
        in
        let _, out = run vfs "import pkg\nprint(pkg.util.f())" in
        Alcotest.(check string) "works" "5\n" out);
    Alcotest.test_case "from ._mod import name" `Quick (fun () ->
        let vfs =
          make_vfs
            [ ("site-packages/pkg/__init__.py", "from ._core import f0\n");
              ("site-packages/pkg/_core.py", "def f0():\n  return 9\n") ]
        in
        let _, out = run vfs "from pkg import f0\nprint(f0())" in
        Alcotest.(check string) "works" "9\n" out);
    Alcotest.test_case "plain module resolves level-1 to parent" `Quick
      (fun () ->
        let vfs =
          make_vfs
            [ ("site-packages/pkg/__init__.py", "from .a import go\n");
              ("site-packages/pkg/a.py", "from .b import base\ndef go():\n  return base() + 1\n");
              ("site-packages/pkg/b.py", "def base():\n  return 10\n") ]
        in
        let _, out = run vfs "import pkg\nprint(pkg.go())" in
        Alcotest.(check string) "works" "11\n" out);
    Alcotest.test_case "two dots reach grandparent" `Quick (fun () ->
        let vfs =
          make_vfs
            [ ("site-packages/pkg/__init__.py", "shared = 7\n");
              ("site-packages/pkg/sub/__init__.py", "from ..helpers import read_shared\n");
              ("site-packages/pkg/helpers.py",
               "import pkg\ndef read_shared():\n  return pkg.shared\n") ]
        in
        let _, out = run vfs "import pkg.sub\nprint(pkg.sub.read_shared())" in
        Alcotest.(check string) "works" "7\n" out);
    Alcotest.test_case "relative import in __main__ fails" `Quick (fun () ->
        match run (make_vfs []) "from . import thing" with
        | _ -> Alcotest.fail "expected ImportError"
        | exception Minipy.Value.Py_error e ->
          Alcotest.(check string) "class" "ImportError" e.Minipy.Value.exc_class);
    Alcotest.test_case "too many dots fails" `Quick (fun () ->
        let vfs =
          make_vfs [ ("site-packages/pkg/__init__.py", "from ... import x\n") ]
        in
        match run vfs "import pkg" with
        | _ -> Alcotest.fail "expected ImportError"
        | exception Minipy.Value.Py_error e ->
          Alcotest.(check string) "class" "ImportError" e.Minipy.Value.exc_class);
    Alcotest.test_case "relative import round-trips through pretty" `Quick
      (fun () ->
        let src = "from . import a\nfrom .b import c, d as e\nfrom ..up import f\n" in
        let p1 = Minipy.Parser.parse ~file:"<t>" src in
        let printed = Minipy.Pretty.program_to_string p1 in
        Alcotest.(check string) "canonical" src printed);
    Alcotest.test_case "pycg resolves relative with module context" `Quick
      (fun () ->
        let prog =
          Minipy.Parser.parse ~file:"<t>" "from ._core import f0, f1\n"
        in
        let r =
          Callgraph.Pycg.analyze ~current_module:"pkg" ~is_package:true prog
        in
        Alcotest.(check bool) "f0 on pkg._core" true
          (Callgraph.Pycg.String_set.mem "f0"
             (Callgraph.Pycg.accessed_attrs r "pkg._core")));
    Alcotest.test_case "debloater trims relative from-imports per name" `Quick
      (fun () ->
        let vfs =
          make_vfs
            [ ("site-packages/pkg/__init__.py", "from ._core import used, unused\n");
              ("site-packages/pkg/_core.py",
               "def used():\n  return 1\ndef unused():\n  return 2\n") ]
        in
        Minipy.Vfs.add_file vfs "handler.py"
          "import pkg\ndef handler(event, context):\n  return pkg.used()\n";
        let app =
          Platform.Deployment.make ~name:"rel" ~vfs ~handler_file:"handler.py"
            ~handler_name:"handler"
            ~test_cases:[ Platform.Deployment.test_case ~name:"t" "{}" ]
        in
        let oracle, _ = Trim.Oracle.for_reference app in
        let d', r =
          Trim.Debloater.debloat_module ~oracle
            ~protected:Trim.Debloater.String_set.empty app ~module_name:"pkg"
        in
        Alcotest.(check bool) "unused removed" true
          (List.mem "unused" r.Trim.Debloater.removed_attrs);
        Alcotest.(check bool) "still passes" true (oracle d')) ]

let suite =
  [ ("importer.resolution", resolution);
    ("importer.importing", importing);
    ("importer.caching", caching);
    ("importer.hooks", hooks);
    ("importer.errors", errors);
    ("importer.relative", relative_imports) ]
