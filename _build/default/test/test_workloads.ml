(* Workload generation: the 21 Table-1 apps parse, run, and match their specs. *)

let run_cold name =
  let d = Workloads.Suite.deployment_of name in
  let sim = Platform.Lambda_sim.create d in
  Platform.Lambda_sim.invoke sim ~now_s:0.0
    ~event:(match (Workloads.Suite.spec_of name).Workloads.Apps.tests with
            | (_, e) :: _ -> e
            | [] -> "{}")
    ()

let suite_shape =
  [ Alcotest.test_case "21 applications" `Quick (fun () ->
        Alcotest.(check int) "count" 21 (List.length Workloads.Apps.all));
    Alcotest.test_case "sources partition as in the paper" `Quick (fun () ->
        let count origin =
          List.length
            (List.filter
               (fun (s : Workloads.Apps.spec) -> String.equal s.origin origin)
               Workloads.Apps.all)
        in
        Alcotest.(check int) "FaaSLight" 8 (count "FaaSLight");
        Alcotest.(check int) "RainbowCake" 6 (count "RainbowCake");
        Alcotest.(check int) "New" 7 (count "New"));
    Alcotest.test_case "faaslight comparison subset exists" `Quick (fun () ->
        List.iter
          (fun n -> ignore (Workloads.Apps.find n))
          Workloads.Apps.faaslight_apps);
    Alcotest.test_case "names unique" `Quick (fun () ->
        let names = Workloads.Suite.names in
        Alcotest.(check int) "no duplicates"
          (List.length names)
          (List.length (List.sort_uniq compare names))) ]

let generation =
  [ Alcotest.test_case "tiny app runs and answers" `Quick (fun () ->
        let d = Workloads.Suite.tiny_app () in
        let sim = Platform.Lambda_sim.create d in
        let r = Platform.Lambda_sim.invoke sim ~now_s:0.0 ~event:"{\"x\": 1}" () in
        (match r.Platform.Lambda_sim.outcome with
         | Platform.Lambda_sim.Ok _ -> ()
         | Platform.Lambda_sim.Error e ->
           Alcotest.failf "handler failed: %s: %s" e.Minipy.Value.exc_class
             e.Minipy.Value.exc_msg);
        Alcotest.(check bool) "printed a result" true
          (String.length r.Platform.Lambda_sim.stdout > 0));
    Alcotest.test_case "tiny app init cost near spec" `Quick (fun () ->
        let d = Workloads.Suite.tiny_app () in
        let sim = Platform.Lambda_sim.create d in
        let r = Platform.Lambda_sim.invoke sim ~now_s:0.0 () in
        (* spec: 100 ms import budget; generator spends ~97% of it *)
        Alcotest.(check bool)
          (Printf.sprintf "init %.1f in [80, 130]" r.Platform.Lambda_sim.init_ms)
          true
          (r.Platform.Lambda_sim.init_ms >= 80.0
           && r.Platform.Lambda_sim.init_ms <= 130.0));
    Alcotest.test_case "attr budget respected" `Quick (fun () ->
        let spec =
          Workloads.Libspec.spec ~name:"x" ~import_ms:10.0 ~alloc_mb:1.0
            ~image_mb:0.0 ~attrs:40 ()
        in
        let src = Workloads.Libspec.init_source spec in
        let prog = Minipy.Parser.parse ~file:"<x>" src in
        let attrs = Trim.Attrs.attrs_of_program prog in
        Alcotest.(check bool)
          (Printf.sprintf "%d attrs ~ 40" (List.length attrs))
          true
          (abs (List.length attrs - 40) <= 4)) ]

let all_apps_run =
  List.map
    (fun (s : Workloads.Apps.spec) ->
       Alcotest.test_case s.Workloads.Apps.name `Slow (fun () ->
           let r = run_cold s.Workloads.Apps.name in
           (match r.Platform.Lambda_sim.outcome with
            | Platform.Lambda_sim.Ok _ -> ()
            | Platform.Lambda_sim.Error e ->
              Alcotest.failf "handler failed: %s: %s" e.Minipy.Value.exc_class
                e.Minipy.Value.exc_msg);
           (* init time within 25% of the paper's import column *)
           let expected_ms =
             (s.Workloads.Apps.paper.Workloads.Apps.p_import_s *. 1000.0)
             +. s.Workloads.Apps.extra_init_ms
           in
           let actual = r.Platform.Lambda_sim.init_ms in
           Alcotest.(check bool)
             (Printf.sprintf "init %.0fms ~ %.0fms" actual expected_ms)
             true
             (actual >= 0.7 *. expected_ms && actual <= 1.3 *. expected_ms);
           (* memory footprint within 20% of the calibrated value *)
           let mem = r.Platform.Lambda_sim.peak_memory_mb in
           let expected_mb = s.Workloads.Apps.post_init_mb in
           Alcotest.(check bool)
             (Printf.sprintf "mem %.0fMB ~ %.0fMB" mem expected_mb)
             true
             (mem >= 0.8 *. expected_mb && mem <= 1.25 *. expected_mb)))
    Workloads.Apps.all



let paper_fidelity =
  [ Alcotest.test_case "oracle sets have 1-3 test cases" `Quick (fun () ->
        List.iter
          (fun (s : Workloads.Apps.spec) ->
             let n = List.length s.Workloads.Apps.tests in
             Alcotest.(check bool)
               (Printf.sprintf "%s has %d" s.Workloads.Apps.name n)
               true (n >= 1 && n <= 3))
          Workloads.Apps.all);
    Alcotest.test_case "table-1 library names present" `Quick (fun () ->
        let libs_of name =
          List.map
            (fun l -> l.Workloads.Libspec.l_name)
            (Workloads.Apps.find name).Workloads.Apps.libs
        in
        List.iter
          (fun (app, lib) ->
             Alcotest.(check bool)
               (Printf.sprintf "%s uses %s" app lib)
               true
               (List.mem lib (libs_of app)))
          [ ("huggingface", "torch"); ("huggingface", "transformers");
            ("resnet", "torch"); ("resnet", "numpy"); ("resnet", "PIL");
            ("wine", "pandas"); ("wine", "sklearn"); ("wine", "boto3");
            ("lxml", "requests"); ("spacy", "boto3");
            ("qiskit-nature", "qiskit_nature"); ("textblob", "nltk") ]);
    Alcotest.test_case "generated handlers follow the fig-4 shape" `Quick
      (fun () ->
        List.iter
          (fun (s : Workloads.Apps.spec) ->
             let src =
               Workloads.Codegen.handler_source s
             in
             let prog = Minipy.Parser.parse ~file:"<h>" src in
             (* imports + setup above; exactly one handler def *)
             let handlers =
               List.filter
                 (fun (st : Minipy.Ast.stmt) ->
                    match st.Minipy.Ast.sdesc with
                    | Minipy.Ast.Def { dname = "handler"; dparams; _ } ->
                      List.length dparams = 2
                    | _ -> false)
                 prog
             in
             Alcotest.(check int)
               (s.Workloads.Apps.name ^ " one handler(event, context)")
               1 (List.length handlers))
          Workloads.Apps.all);
    Alcotest.test_case "every app's event parses as an expression" `Quick
      (fun () ->
        List.iter
          (fun (s : Workloads.Apps.spec) ->
             List.iter
               (fun (_, ev) ->
                  ignore (Minipy.Parser.parse_expression ~file:"<e>" ev))
               s.Workloads.Apps.tests)
          Workloads.Apps.all);
    Alcotest.test_case "relative imports wire every generated package" `Quick
      (fun () ->
        let spec =
          Workloads.Libspec.spec ~name:"relcheck" ~import_ms:5.0 ~alloc_mb:1.0
            ~image_mb:0.0 ()
        in
        let src = Workloads.Libspec.init_source spec in
        let prog = Minipy.Parser.parse ~file:"<i>" src in
        let relative =
          List.exists
            (fun (st : Minipy.Ast.stmt) ->
               match st.Minipy.Ast.sdesc with
               | Minipy.Ast.From_import ({ Minipy.Ast.fc_level; _ }, _) ->
                 fc_level > 0
               | _ -> false)
            prog
        in
        Alcotest.(check bool) "uses relative imports" true relative) ]

let suite =
  [ ("workloads.suite_shape", suite_shape);
    ("workloads.generation", generation);
    ("workloads.all_apps_run", all_apps_run);
    ("workloads.paper_fidelity", paper_fidelity) ]
