(* Language extensions: slices, list comprehensions, json, and the
   intercepted cloud module. *)

open Minipy

let run ?(vfs = Vfs.create ()) src =
  let t = Interp.create vfs in
  let prog = Parser.parse ~file:"<test>" src in
  ignore (Interp.exec_main t prog);
  (t, Interp.stdout_contents t)

let check_out name src expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name expected (snd (run src)))

let slices =
  [ check_out "list slice" "xs = [0, 1, 2, 3, 4]\nprint(xs[1:3])" "[1, 2]\n";
    check_out "open-ended slices" "xs = [0, 1, 2, 3]\nprint(xs[2:], xs[:2], xs[:])"
      "[2, 3] [0, 1] [0, 1, 2, 3]\n";
    check_out "negative bounds" "xs = [0, 1, 2, 3]\nprint(xs[-2:], xs[:-1])"
      "[2, 3] [0, 1, 2]\n";
    check_out "string slice" "s = \"hello\"\nprint(s[1:4], s[:2], s[-3:])"
      "ell he llo\n";
    check_out "tuple slice" "t = (1, 2, 3, 4)\nprint(t[1:3])" "(2, 3)\n";
    check_out "out of range clamps" "xs = [1, 2]\nprint(xs[1:99], xs[5:])"
      "[2] []\n";
    check_out "crossed bounds empty" "xs = [1, 2, 3]\nprint(xs[2:1])" "[]\n";
    check_out "slice then index" "xs = [9, 8, 7, 6]\nprint(xs[1:3][0])" "8\n" ]

let comprehensions =
  [ check_out "map" "print([x * 2 for x in [1, 2, 3]])" "[2, 4, 6]\n";
    check_out "filter" "print([x for x in range(10) if x % 3 == 0])"
      "[0, 3, 6, 9]\n";
    check_out "map+filter" "print([x * x for x in range(6) if x % 2 == 1])"
      "[1, 9, 25]\n";
    check_out "over string" "print([c.upper() for c in \"abc\"])"
      "['A', 'B', 'C']\n";
    check_out "tuple unpack target"
      "pairs = [(1, \"a\"), (2, \"b\")]\nprint([k for k, v in pairs])" "[1, 2]\n";
    check_out "nested in function"
      "def evens(n):\n  return [i for i in range(n) if i % 2 == 0]\nprint(evens(7))"
      "[0, 2, 4, 6]\n";
    check_out "comprehension round-trips" "" "";
    Alcotest.test_case "pretty round-trip" `Quick (fun () ->
        let src = "ys = [f(x) for x in data if x > 0]\nzs = xs[1:]\n" in
        let p1 = Parser.parse ~file:"<t>" src in
        let p2 = Parser.parse ~file:"<t>" (Pretty.program_to_string p1) in
        Alcotest.(check bool) "equal" true (Ast.program_equal p1 p2)) ]

let json_tests =
  [ check_out "dumps scalars"
      "import json\nprint(json.dumps({\"a\": 1, \"b\": [True, None, 1.5]}))"
      "{\"a\": 1, \"b\": [true, null, 1.5]}\n";
    check_out "dumps string escapes"
      "import json\nprint(json.dumps(\"line\\nbreak\"))" "\"line\\nbreak\"\n";
    check_out "loads object"
      "import json\nd = json.loads(\"{\\\"k\\\": [1, 2]}\")\nprint(d[\"k\"][1])"
      "2\n";
    check_out "loads literals"
      "import json\nprint(json.loads(\"true\"), json.loads(\"null\"), json.loads(\"-3.5\"))"
      "True None -3.5\n";
    check_out "round trip"
      "import json\n\
       payload = {\"name\": \"bob\", \"tags\": [\"a\", \"b\"], \"n\": 3}\n\
       again = json.loads(json.dumps(payload))\n\
       print(again == payload)"
      "True\n";
    Alcotest.test_case "loads error is ValueError" `Quick (fun () ->
        match run "import json\njson.loads(\"{bad\")" with
        | _ -> Alcotest.fail "expected error"
        | exception Value.Py_error e ->
          Alcotest.(check string) "class" "ValueError" e.Value.exc_class);
    Alcotest.test_case "dumps rejects functions" `Quick (fun () ->
        match run "import json\ndef f():\n  pass\njson.dumps(f)" with
        | _ -> Alcotest.fail "expected error"
        | exception Value.Py_error e ->
          Alcotest.(check string) "class" "TypeError" e.Value.exc_class) ]

let cloud_tests =
  [ Alcotest.test_case "put/get round-trips within a run" `Quick (fun () ->
        let _, out =
          run
            "import cloud\n\
             cloud.put(\"s3\", \"k\", {\"v\": 7})\n\
             print(cloud.get(\"s3\", \"k\"))"
        in
        Alcotest.(check string) "value" "{'v': 7}\n" out);
    Alcotest.test_case "unseen key is deterministic" `Quick (fun () ->
        let _, o1 = run "import cloud\nprint(cloud.get(\"s3\", \"nope\"))" in
        let _, o2 = run "import cloud\nprint(cloud.get(\"s3\", \"nope\"))" in
        Alcotest.(check string) "same" o1 o2;
        Alcotest.(check string) "blob" "blob:s3/nope\n" o1);
    Alcotest.test_case "calls recorded in order" `Quick (fun () ->
        let t, _ =
          run
            "import cloud\n\
             cloud.put(\"s3\", \"a\", 1)\n\
             cloud.get(\"dynamo\", \"row\")\n\
             cloud.invoke(\"resize\", {\"w\": 2})"
        in
        Alcotest.(check (list string)) "calls"
          [ "put s3/a = 1"; "get dynamo/row"; "invoke resize({'w': 2})" ]
          (Interp.external_calls t));
    Alcotest.test_case "calls charge network time" `Quick (fun () ->
        let t, _ = run "import cloud\ncloud.put(\"s3\", \"k\", 1)" in
        Alcotest.(check bool) "time > 2ms" true (t.Interp.vtime_ms > 2.0)) ]

let oracle_external =
  [ Alcotest.test_case "oracle distinguishes changed external calls" `Quick
      (fun () ->
        let make payload =
          let vfs = Vfs.create () in
          Vfs.add_file vfs "handler.py"
            (Printf.sprintf
               "import cloud\n\
                def handler(event, context):\n\
               \  cloud.put(\"s3\", \"out\", %s)\n\
               \  return 0\n"
               payload);
          Platform.Deployment.make ~name:"x" ~vfs ~handler_file:"handler.py"
            ~handler_name:"handler"
            ~test_cases:[ Platform.Deployment.test_case ~name:"t" "{}" ]
        in
        (* same stdout and return value; only the uploaded payload differs *)
        let oracle, _ = Trim.Oracle.for_reference (make "1") in
        Alcotest.(check bool) "same passes" true (oracle (make "1"));
        Alcotest.(check bool) "different payload fails" false (oracle (make "2")));
    Alcotest.test_case "boto3-style workload records uploads" `Quick (fun () ->
        let d = Workloads.Suite.deployment_of "image-resize" in
        let sim = Platform.Lambda_sim.create d in
        let r = Platform.Lambda_sim.invoke sim ~now_s:0.0 ~event:"{\"x\": 1}" () in
        Alcotest.(check bool) "upload recorded" true
          (List.exists
             (fun c ->
                String.length c > 3 && String.sub c 0 3 = "put")
             r.Platform.Lambda_sim.external_calls));
    Alcotest.test_case "warm invocation calls attributed per request" `Quick
      (fun () ->
        let d = Workloads.Suite.deployment_of "image-resize" in
        let sim = Platform.Lambda_sim.create d in
        let c = Platform.Lambda_sim.invoke sim ~now_s:0.0 ~event:"{\"x\": 1}" () in
        let w = Platform.Lambda_sim.invoke sim ~now_s:1.0 ~event:"{\"x\": 1}" () in
        Alcotest.(check int) "same count per request"
          (List.length c.Platform.Lambda_sim.external_calls)
          (List.length w.Platform.Lambda_sim.external_calls));
    Alcotest.test_case "debloating preserves external calls" `Quick (fun () ->
        let d = Workloads.Suite.deployment_of "image-resize" in
        let report = Trim.Pipeline.run ~options:{ Trim.Pipeline.default_options with k = 5 } d in
        let calls dep =
          let sim = Platform.Lambda_sim.create dep in
          (Platform.Lambda_sim.invoke sim ~now_s:0.0 ~event:"{\"x\": 1}" ())
            .Platform.Lambda_sim.external_calls
        in
        Alcotest.(check (list string)) "identical" (calls d)
          (calls report.Trim.Pipeline.optimized)) ]



let dict_comprehensions =
  [ check_out "basic" "print({x: x * x for x in range(3)})"
      "{0: 0, 1: 1, 2: 4}\n";
    check_out "with condition"
      "print({w: len(w) for w in [\"a\", \"bb\", \"ccc\"] if len(w) > 1})"
      "{'bb': 2, 'ccc': 3}\n";
    check_out "tuple target"
      "pairs = [(\"a\", 1), (\"b\", 2)]\nprint({k: v * 10 for k, v in pairs})"
      "{'a': 10, 'b': 20}\n";
    check_out "invert a dict"
      "d = {\"x\": 1, \"y\": 2}\nprint({v: k for k, v in d.items()})"
      "{1: 'x', 2: 'y'}\n";
    check_out "duplicate keys keep last"
      "print({x % 2: x for x in range(4)})" "{0: 2, 1: 3}\n";
    Alcotest.test_case "dict comp round-trips" `Quick (fun () ->
        let src = "m = {k: f(k) for k in keys if k != 0}\n" in
        let p1 = Minipy.Parser.parse ~file:"<t>" src in
        let p2 =
          Minipy.Parser.parse ~file:"<t>" (Minipy.Pretty.program_to_string p1)
        in
        Alcotest.(check bool) "equal" true (Minipy.Ast.program_equal p1 p2)) ]

let string_methods =
  [ check_out "format positional"
      "print(\"{} + {} = {}\".format(1, 2, 3))" "1 + 2 = 3\n";
    check_out "format mixed types"
      "print(\"name={} ok={}\".format(\"bob\", True))" "name=bob ok=True\n";
    check_out "count" "print(\"banana\".count(\"an\"), \"banana\".count(\"z\"))"
      "2 0\n";
    check_out "find" "print(\"banana\".find(\"na\"), \"banana\".find(\"z\"))"
      "2 -1\n";
    Alcotest.test_case "format arity error" `Quick (fun () ->
        match run "print(\"{} {}\".format(1))" with
        | _ -> Alcotest.fail "expected IndexError"
        | exception Value.Py_error e ->
          Alcotest.(check string) "class" "IndexError" e.Value.exc_class) ]

let suite =
  [ ("lang.slices", slices);
    ("lang.comprehensions", comprehensions);
    ("lang.dict_comprehensions", dict_comprehensions);
    ("lang.string_methods", string_methods);
    ("lang.json", json_tests);
    ("lang.cloud", cloud_tests);
    ("lang.oracle_external", oracle_external) ]
