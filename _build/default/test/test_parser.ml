(* Parser: statement/expression structure, errors, and locations. *)

open Minipy

let parse src = Parser.parse ~file:"<t>" src

let parses name src =
  Alcotest.test_case name `Quick (fun () -> ignore (parse src))

(* Check the parse of [src] against its canonical re-print. *)
let check_pp name src expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name expected (Pretty.program_to_string (parse src)))

let fails name src =
  Alcotest.test_case name `Quick (fun () ->
      match parse src with
      | _ -> Alcotest.fail "expected parse error"
      | exception Parser.Error _ -> ()
      | exception Lexer.Error _ -> ())

let statements =
  [ check_pp "assignment" "x = 1" "x = 1\n";
    check_pp "aug assign" "x += 2" "x += 2\n";
    check_pp "import" "import torch" "import torch\n";
    check_pp "import dotted" "import torch.nn" "import torch.nn\n";
    check_pp "import as" "import numpy as np" "import numpy as np\n";
    check_pp "from import" "from torch.nn import Linear"
      "from torch.nn import Linear\n";
    check_pp "from import many" "from torch import add, view"
      "from torch import add, view\n";
    check_pp "from import as" "from torch import tensor as t"
      "from torch import tensor as t\n";
    check_pp "from import parens" "from torch import (add,\n    view)"
      "from torch import add, view\n";
    check_pp "def" "def f(x, y=1):\n  return x + y"
      "def f(x, y=1):\n  return x + y\n";
    check_pp "class" "class A(B):\n  def m(self):\n    pass"
      "class A(B):\n  def m(self):\n    pass\n";
    check_pp "empty class body" "class A:\n  pass" "class A:\n  pass\n";
    check_pp "if elif else"
      "if a:\n  x = 1\nelif b:\n  x = 2\nelse:\n  x = 3"
      "if a:\n  x = 1\nelif b:\n  x = 2\nelse:\n  x = 3\n";
    check_pp "while" "while x < 3:\n  x += 1" "while x < 3:\n  x += 1\n";
    check_pp "for" "for i in xs:\n  print(i)" "for i in xs:\n  print(i)\n";
    check_pp "for tuple target" "for k, v in d.items():\n  pass"
      "for k, v in d.items():\n  pass\n";
    check_pp "try except as"
      "try:\n  f()\nexcept ValueError as e:\n  pass"
      "try:\n  f()\nexcept ValueError as e:\n  pass\n";
    check_pp "try finally" "try:\n  f()\nfinally:\n  g()"
      "try:\n  f()\nfinally:\n  g()\n";
    check_pp "bare except" "try:\n  f()\nexcept:\n  pass"
      "try:\n  f()\nexcept:\n  pass\n";
    check_pp "raise" "raise ValueError(\"x\")" "raise ValueError(\"x\")\n";
    check_pp "global" "def f():\n  global a, b\n  a = 1"
      "def f():\n  global a, b\n  a = 1\n";
    check_pp "del" "del d[\"k\"]" "del d[\"k\"]\n";
    check_pp "assert with msg" "assert x, \"bad\"" "assert x, \"bad\"\n";
    check_pp "semicolons" "a = 1; b = 2" "a = 1\nb = 2\n";
    check_pp "tuple assign" "a, b = 1, 2" "a, b = (1, 2)\n";
    check_pp "attr target" "obj.field = 3" "obj.field = 3\n";
    check_pp "subscript target" "xs[0] = 3" "xs[0] = 3\n";
    check_pp "decorator discarded" "@decorate\ndef f():\n  pass"
      "def f():\n  pass\n";
    check_pp "return tuple" "def f():\n  return 1, 2"
      "def f():\n  return (1, 2)\n" ]

let expressions =
  [ check_pp "call kwargs" "f(1, x=2)" "f(1, x=2)\n";
    check_pp "nested call" "f(g(x))" "f(g(x))\n";
    check_pp "method chain" "a.b.c(1)" "a.b.c(1)\n";
    check_pp "subscript chain" "m[\"a\"][0]" "m[\"a\"][0]\n";
    check_pp "precedence kept" "x = 1 + 2 * 3" "x = 1 + 2 * 3\n";
    check_pp "parens preserved structurally" "x = (1 + 2) * 3" "x = (1 + 2) * 3\n";
    check_pp "unary" "x = -y + +z" "x = -y + +z\n";
    check_pp "not and or" "x = not a and b or c" "x = not a and b or c\n";
    check_pp "comparison" "b = x <= y" "b = x <= y\n";
    check_pp "in" "b = x in xs" "b = x in xs\n";
    check_pp "not in" "b = x not in xs" "b = x not in xs\n";
    check_pp "lambda" "f = lambda x, y: x + y" "f = lambda x, y: x + y\n";
    check_pp "ternary" "v = a if c else b" "v = a if c else b\n";
    check_pp "list" "xs = [1, 2, 3]" "xs = [1, 2, 3]\n";
    check_pp "empty tuple" "t = ()" "t = ()\n";
    check_pp "singleton tuple" "t = (1,)" "t = (1,)\n";
    check_pp "dict" "d = {\"a\": 1, \"b\": 2}" "d = {\"a\": 1, \"b\": 2}\n";
    check_pp "empty dict" "d = {}" "d = {}\n";
    check_pp "pow" "y = x ** 2" "y = x ** 2\n";
    check_pp "floor div" "y = x // 2" "y = x // 2\n" ]

let error_cases =
  [ fails "unclosed paren" "f(1";
    fails "bad target" "1 = x";
    fails "missing colon" "if x\n  y";
    fails "stray indent keywordless" "return return";
    fails "bad from import" "from import x" ]

let locations =
  [ Alcotest.test_case "statement locations recorded" `Quick (fun () ->
        match parse "x = 1\ny = 2\n" with
        | [ s1; s2 ] ->
          Alcotest.(check int) "line 1" 1 s1.Ast.sloc.Loc.line;
          Alcotest.(check int) "line 2" 2 s2.Ast.sloc.Loc.line
        | _ -> Alcotest.fail "expected two statements") ]

let suite =
  [ ("parser.statements", statements);
    ("parser.expressions", expressions);
    ("parser.errors", error_cases);
    ("parser.locations", locations) ]
