(* §9 extensions: parallel DD, seeded DD, continuous pipeline, and the
   statement-granularity ablation. *)

open Trim
module SS = Callgraph.Pycg.String_set

let needs needed subset = List.for_all (fun x -> List.mem x subset) needed

let parallel =
  [ Alcotest.test_case "parallel result equals sequential" `Quick (fun () ->
        List.iter
          (fun needed ->
             let items = List.init 40 Fun.id in
             let seq, _ = Dd.minimize ~oracle:(needs needed) items in
             let par, _ =
               Dd.minimize_parallel ~workers:8 ~oracle:(needs needed) items
             in
             Alcotest.(check (list int)) "same" (List.sort compare seq)
               (List.sort compare par))
          [ []; [ 0 ]; [ 7; 23 ]; [ 1; 2; 3 ]; List.init 40 Fun.id ]);
    Alcotest.test_case "rounds shrink with more workers" `Quick (fun () ->
        let items = List.init 64 Fun.id in
        let oracle = needs [ 5; 33; 60 ] in
        let _, s1 = Dd.minimize_parallel ~workers:1 ~oracle items in
        let _, s8 = Dd.minimize_parallel ~workers:8 ~oracle items in
        Alcotest.(check bool)
          (Printf.sprintf "rounds %d (w=8) < %d (w=1)" s8.Dd.p_rounds
             s1.Dd.p_rounds)
          true
          (s8.Dd.p_rounds < s1.Dd.p_rounds);
        Alcotest.(check int) "w=1 rounds = queries" s1.Dd.p_oracle_queries
          s1.Dd.p_rounds);
    Alcotest.test_case "batch width bounded by workers" `Quick (fun () ->
        let items = List.init 32 Fun.id in
        let _, s = Dd.minimize_parallel ~workers:4 ~oracle:(needs [ 3 ]) items in
        Alcotest.(check bool) "max batch <= 4" true (s.Dd.p_max_batch <= 4)) ]

let seeded =
  [ Alcotest.test_case "good seed cuts queries" `Quick (fun () ->
        let items = List.init 60 Fun.id in
        let oracle = needs [ 10; 20 ] in
        let _, fresh = Dd.minimize ~oracle items in
        let kept, with_seed, hit =
          Dd.minimize_with_seed ~oracle ~seed:[ 10; 20; 30 ] items
        in
        Alcotest.(check bool) "seed hit" true hit;
        Alcotest.(check (list int)) "same minimal set" [ 10; 20 ]
          (List.sort compare kept);
        Alcotest.(check bool)
          (Printf.sprintf "seeded %d < fresh %d" with_seed.Dd.oracle_queries
             fresh.Dd.oracle_queries)
          true
          (with_seed.Dd.oracle_queries < fresh.Dd.oracle_queries));
    Alcotest.test_case "stale seed falls back to full DD" `Quick (fun () ->
        let items = List.init 20 Fun.id in
        let oracle = needs [ 5 ] in
        let kept, _, hit =
          Dd.minimize_with_seed ~oracle ~seed:[ 1; 2 ] items
        in
        Alcotest.(check bool) "no hit" false hit;
        Alcotest.(check (list int)) "still correct" [ 5 ] (List.sort compare kept));
    Alcotest.test_case "empty seed behaves like plain DD" `Quick (fun () ->
        let items = List.init 12 Fun.id in
        let oracle = needs [ 2 ] in
        let kept, _, hit = Dd.minimize_with_seed ~oracle ~seed:[] items in
        Alcotest.(check bool) "empty seed passing counts as hit" true
          (hit = (oracle [] && true) || not hit);
        Alcotest.(check (list int)) "correct" [ 2 ] (List.sort compare kept)) ]

let continuous =
  [ Alcotest.test_case "re-run after no change uses far fewer queries" `Quick
      (fun () ->
        let app = Workloads.Suite.tiny_app () in
        let first = Pipeline.run ~options:{ Pipeline.default_options with k = 4 } app in
        let second =
          Pipeline.run_continuous
            ~options:{ Pipeline.default_options with k = 4 }
            ~previous:first app
        in
        Alcotest.(check bool) "some modules seeded" true
          (second.Pipeline.seed_hits > 0);
        Alcotest.(check bool)
          (Printf.sprintf "continuous %d < fresh %d"
             second.Pipeline.base.Pipeline.total_oracle_queries
             first.Pipeline.total_oracle_queries)
          true
          (second.Pipeline.base.Pipeline.total_oracle_queries
           < first.Pipeline.total_oracle_queries);
        let oracle, _ = Oracle.for_reference app in
        Alcotest.(check bool) "still passes" true
          (oracle second.Pipeline.base.Pipeline.optimized));
    Alcotest.test_case "handler update: result still correct" `Quick (fun () ->
        let app = Workloads.Suite.tiny_app () in
        let first = Pipeline.run ~options:{ Pipeline.default_options with k = 4 } app in
        (* the update makes the handler use one more function (f1 -> f0 chain
           extended); previous keep-set still covers it *)
        let updated = Platform.Deployment.copy app in
        let src = Platform.Deployment.handler_source updated in
        let src' =
          Str.global_replace
            (Str.regexp_string "  result = tinylib.run_task(acc)")
            "  acc = tinylib.f0(acc)\n  result = tinylib.run_task(acc)" src
        in
        Minipy.Vfs.add_file updated.Platform.Deployment.vfs "handler.py" src';
        let second =
          Pipeline.run_continuous
            ~options:{ Pipeline.default_options with k = 4 }
            ~previous:first updated
        in
        let oracle, _ = Oracle.for_reference updated in
        Alcotest.(check bool) "correct after update" true
          (oracle second.Pipeline.base.Pipeline.optimized)) ]

let granularity =
  [ Alcotest.test_case "statement DD passes the oracle" `Quick (fun () ->
        let app = Workloads.Suite.tiny_app () in
        let oracle, _ = Oracle.for_reference app in
        let analysis = Static_analyzer.analyze app in
        let protected = Static_analyzer.protected_attrs analysis
            ~module_name:"tinylib"
        in
        let d', _ =
          Debloater.debloat_module_statements ~oracle ~protected app
            ~module_name:"tinylib"
        in
        Alcotest.(check bool) "passes" true (oracle d'));
    Alcotest.test_case "attribute granularity removes at least as much" `Quick
      (fun () ->
        (* §6.1: finer from-import handling means attribute-level DD can
           never keep more than statement-level DD on the same module *)
        let app = Workloads.Suite.tiny_app () in
        let oracle, _ = Oracle.for_reference app in
        let analysis = Static_analyzer.analyze app in
        let protected = Static_analyzer.protected_attrs analysis
            ~module_name:"tinylib"
        in
        let _, attr_r =
          Debloater.debloat_module ~oracle ~protected app ~module_name:"tinylib"
        in
        let _, stmt_r =
          Debloater.debloat_module_statements ~oracle ~protected app
            ~module_name:"tinylib"
        in
        Alcotest.(check bool)
          (Printf.sprintf "attr kept %d <= stmt kept %d" attr_r.Debloater.attrs_after
             stmt_r.Debloater.attrs_after)
          true
          (attr_r.Debloater.attrs_after <= stmt_r.Debloater.attrs_after));
    Alcotest.test_case "mixed from-import shows the difference" `Quick (fun () ->
        (* a module whose single from-import mixes one needed and several
           unneeded names: statement granularity must keep all of them *)
        let vfs = Minipy.Vfs.create () in
        Minipy.Vfs.add_file vfs "site-packages/m/_impl.py"
          "def used(x=0):\n  return x + 1\n\
           def unused_a():\n  return 0\n\
           def unused_b():\n  return 0\n";
        Minipy.Vfs.add_file vfs "site-packages/m/__init__.py"
          "from m._impl import used, unused_a, unused_b\n";
        Minipy.Vfs.add_file vfs "handler.py"
          "import m\ndef handler(event, context):\n  return m.used(1)\n";
        let app =
          Platform.Deployment.make ~name:"mixed" ~vfs ~handler_file:"handler.py"
            ~handler_name:"handler"
            ~test_cases:[ Platform.Deployment.test_case ~name:"t" "{}" ]
        in
        let oracle, _ = Oracle.for_reference app in
        let _, attr_r =
          Debloater.debloat_module ~oracle ~protected:SS.empty app
            ~module_name:"m"
        in
        let _, stmt_r =
          Debloater.debloat_module_statements ~oracle ~protected:SS.empty app
            ~module_name:"m"
        in
        Alcotest.(check int) "attribute level keeps only `used`" 1
          attr_r.Debloater.attrs_after;
        Alcotest.(check int) "statement level keeps all three" 3
          stmt_r.Debloater.attrs_after) ]

let suite =
  [ ("dd_variants.parallel", parallel);
    ("dd_variants.seeded", seeded);
    ("dd_variants.continuous", continuous);
    ("dd_variants.granularity", granularity) ]
