bin/ltrim.ml: Arg Cmd Cmdliner Common_measure Experiments Filename Float Fmt List Logs Logs_fmt Platform Printf String Sys Term Trim Unix Workloads
