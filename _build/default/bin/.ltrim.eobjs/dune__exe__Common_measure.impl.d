bin/common_measure.ml: Platform Printf
