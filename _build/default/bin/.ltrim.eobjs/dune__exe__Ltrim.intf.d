bin/ltrim.mli:
