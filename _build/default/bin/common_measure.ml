(* Small measurement helpers for the CLI. *)

let cold (d : Platform.Deployment.t) : Platform.Lambda_sim.record =
  let sim = Platform.Lambda_sim.create d in
  let event =
    match d.Platform.Deployment.test_cases with
    | tc :: _ -> tc.Platform.Deployment.tc_event
    | [] -> "{}"
  in
  Platform.Lambda_sim.invoke sim ~now_s:0.0 ~event ()

let print_comparison ~(before : Platform.Lambda_sim.record)
    ~(after : Platform.Lambda_sim.record) =
  let open Platform.Lambda_sim in
  let pct = Platform.Metrics.improvement_pct in
  Printf.printf
    "Cold start:  E2E %.1f -> %.1f ms (%.1f%%), init %.1f -> %.1f ms \
     (%.1f%%),\n             memory %.1f -> %.1f MB (%.1f%%), cost $%.3e -> \
     $%.3e (%.1f%%)\n"
    before.e2e_ms after.e2e_ms
    (pct ~before:before.e2e_ms ~after:after.e2e_ms)
    before.init_ms after.init_ms
    (pct ~before:before.init_ms ~after:after.init_ms)
    before.peak_memory_mb after.peak_memory_mb
    (pct ~before:before.peak_memory_mb ~after:after.peak_memory_mb)
    before.cost after.cost
    (pct ~before:before.cost ~after:after.cost)
