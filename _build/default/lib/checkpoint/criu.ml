(* Checkpoint/Restore substrate modelled on the CRIU prototype of §8.6.

   Checkpointing freezes the process right after Function Initialization;
   restoring replays the process tree and maps the checkpoint image back in.
   The paper's observations, which this model encodes:

   - restore carries a fixed overhead (~0.1 s: fork + /proc state rebuild),
     which makes C/R *worse* than plain init for small apps (<0.2 s init);
   - for larger apps restore wins because loading memory pages from the
     image is much faster than file I/O and interpreter execution;
   - the checkpoint image holds the resident memory of the initialized
     process plus interpreter baseline pages, so debloating shrinks it
     (Table 3: average −11 %). *)

type params = {
  restore_base_ms : float;       (* fork + /proc restore overhead *)
  restore_mb_per_s : float;      (* page load bandwidth from image *)
  image_fraction : float;        (* fraction of peak RSS captured in image *)
  image_base_mb : float;         (* interpreter/runtime baseline pages *)
}

let default_params =
  { restore_base_ms = 100.0;
    restore_mb_per_s = 2200.0;
    image_fraction = 0.42;
    image_base_mb = 7.0 }

(* Size of the checkpoint taken after Function Initialization, given the
   measured post-init footprint. *)
let checkpoint_size_mb ?(params = default_params) ~post_init_memory_mb () =
  params.image_base_mb +. (params.image_fraction *. post_init_memory_mb)

(* Time to restore from a checkpoint (replaces Function Initialization). *)
let restore_ms ?(params = default_params) ~checkpoint_mb () =
  params.restore_base_ms +. (checkpoint_mb /. params.restore_mb_per_s *. 1000.0)

type variant = Original | Cr | Trimmed | Cr_and_trimmed

let variant_name = function
  | Original -> "original"
  | Cr -> "C/R"
  | Trimmed -> "lambda-trim"
  | Cr_and_trimmed -> "C/R + lambda-trim"

(* Effective initialization time of each Figure-12 variant, from the measured
   init time and post-init footprint of the original and trimmed apps. *)
let init_time_ms ?(params = default_params) ~variant ~orig_init_ms
    ~orig_post_init_mb ~trim_init_ms ~trim_post_init_mb () =
  match variant with
  | Original -> orig_init_ms
  | Trimmed -> trim_init_ms
  | Cr ->
    let ckpt = checkpoint_size_mb ~params ~post_init_memory_mb:orig_post_init_mb () in
    restore_ms ~params ~checkpoint_mb:ckpt ()
  | Cr_and_trimmed ->
    let ckpt = checkpoint_size_mb ~params ~post_init_memory_mb:trim_post_init_mb () in
    restore_ms ~params ~checkpoint_mb:ckpt ()
