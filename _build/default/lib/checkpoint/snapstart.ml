(* AWS SnapStart cost model (§8.6, Figures 13-14).

   SnapStart charges two line items on top of normal invocation costs:
   - caching: $/GB-second for keeping the encrypted snapshot available, paid
     for the *whole wall-clock period* the function version exists;
   - restore: $/GB of snapshot restored, paid per cold start (per restore).

   Rates follow AWS's published SnapStart pricing. Because caching accrues
   24/7 while compute accrues only during requests, rarely-invoked functions
   spend most of their budget on C/R support — the effect Figure 13 shows
   (median > 60 % even at long keep-alives). *)

type pricing = {
  cache_price_per_gb_s : float;
  restore_price_per_gb : float;
}

let aws_snapstart_pricing =
  { cache_price_per_gb_s = 0.0000015046; restore_price_per_gb = 0.0001397998 }

type costs = {
  invocation_cost : float;   (* normal compute cost over the window *)
  cache_cost : float;
  restore_cost : float;
}

let total c = c.invocation_cost +. c.cache_cost +. c.restore_cost

let snapstart_share c =
  let t = total c in
  if t = 0.0 then 0.0 else (c.cache_cost +. c.restore_cost) /. t

(* Costs of running a function over a trace window with SnapStart enabled.

   [snapshot_mb] — size of the VM snapshot (derived from the post-init
   footprint); [billed_ms_cold]/[billed_ms_warm] — billed duration per cold
   (with SnapStart, cold = restore + exec) and warm invocation;
   [memory_mb] — configured memory; the replay supplies cold/warm counts. *)
let costs_over_window ?(pricing = aws_snapstart_pricing)
    ~(lambda_pricing : Platform.Pricing.t) ~snapshot_mb ~memory_mb
    ~billed_ms_cold ~billed_ms_warm ~cold_starts ~warm_starts ~window_s () =
  let inv_cost n billed_ms =
    float_of_int n
    *. Platform.Pricing.invocation_cost lambda_pricing ~duration_ms:billed_ms
         ~memory_mb
  in
  let invocation_cost =
    inv_cost cold_starts billed_ms_cold +. inv_cost warm_starts billed_ms_warm
  in
  let snapshot_gb = snapshot_mb /. 1024.0 in
  let cache_cost = snapshot_gb *. window_s *. pricing.cache_price_per_gb_s in
  let restore_cost =
    float_of_int cold_starts *. snapshot_gb *. pricing.restore_price_per_gb
  in
  { invocation_cost; cache_cost; restore_cost }

(* VM-level snapshot: unlike a CRIU process image it includes the guest OS
   and runtime pages, hence larger than the process footprint alone. *)
let snapshot_size_mb ~post_init_memory_mb ~image_mb =
  60.0 +. (0.8 *. post_init_memory_mb) +. (0.08 *. image_mb)
