(** Checkpoint/Restore substrate modelled on the CRIU prototype of §8.6.

    Encodes the paper's observations: restore carries a fixed ~0.1 s overhead
    (fork + /proc state rebuild) that makes C/R lose to plain init on small
    apps; page loading wins on large ones; debloating shrinks the checkpoint
    (Table 3: −11 % average), so the combination dominates. *)

type params = {
  restore_base_ms : float;   (** fork + /proc restore overhead *)
  restore_mb_per_s : float;  (** page-load bandwidth from the image *)
  image_fraction : float;    (** fraction of post-init RSS captured *)
  image_base_mb : float;     (** interpreter/runtime baseline pages *)
}

val default_params : params

(** Size of the checkpoint taken right after Function Initialization. *)
val checkpoint_size_mb :
  ?params:params -> post_init_memory_mb:float -> unit -> float

(** Time to restore from a checkpoint (replaces Function Initialization). *)
val restore_ms : ?params:params -> checkpoint_mb:float -> unit -> float

type variant = Original | Cr | Trimmed | Cr_and_trimmed

val variant_name : variant -> string

(** Effective initialization time of each Figure-12 variant. *)
val init_time_ms :
  ?params:params ->
  variant:variant ->
  orig_init_ms:float ->
  orig_post_init_mb:float ->
  trim_init_ms:float ->
  trim_post_init_mb:float ->
  unit ->
  float
