(** AWS SnapStart cost model (§8.6, Figures 13-14).

    SnapStart charges caching ($/GB-s, accruing 24/7 while the function
    version exists) and restore ($/GB per cold start) on top of normal
    invocation costs. Because caching accrues around the clock, rarely-
    invoked functions spend most of their budget on C/R support. *)

type pricing = {
  cache_price_per_gb_s : float;
  restore_price_per_gb : float;
}

(** AWS's published SnapStart rates. *)
val aws_snapstart_pricing : pricing

type costs = {
  invocation_cost : float;  (** normal compute cost over the window *)
  cache_cost : float;
  restore_cost : float;
}

val total : costs -> float

(** Fraction of the total spent on SnapStart support (cache + restore). *)
val snapstart_share : costs -> float

(** Costs of running a function over a trace window with SnapStart enabled;
    the replay supplies cold/warm counts. *)
val costs_over_window :
  ?pricing:pricing ->
  lambda_pricing:Platform.Pricing.t ->
  snapshot_mb:float ->
  memory_mb:float ->
  billed_ms_cold:float ->
  billed_ms_warm:float ->
  cold_starts:int ->
  warm_starts:int ->
  window_s:float ->
  unit ->
  costs

(** VM-level snapshot size: guest OS + runtime pages on top of the process
    footprint, hence larger than a CRIU process image. *)
val snapshot_size_mb : post_init_memory_mb:float -> image_mb:float -> float
