lib/checkpoint/criu.ml:
