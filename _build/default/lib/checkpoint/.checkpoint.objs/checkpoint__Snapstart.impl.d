lib/checkpoint/snapstart.ml: Platform
