lib/checkpoint/snapstart.mli: Platform
