lib/checkpoint/criu.mli:
