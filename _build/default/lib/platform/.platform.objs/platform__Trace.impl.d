lib/platform/trace.ml: List Random
