lib/platform/azure_trace.ml: Float List Metrics Printf Random Trace
