lib/platform/metrics.mli:
