lib/platform/pricing.mli:
