lib/platform/deployment.ml: Minipy
