lib/platform/trace.mli:
