lib/platform/pricing.ml: Float
