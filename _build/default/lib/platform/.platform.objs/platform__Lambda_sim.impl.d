lib/platform/lambda_sim.ml: Buffer Deployment Hashtbl List Minipy Pricing Printf String
