lib/platform/metrics.ml: Float List
