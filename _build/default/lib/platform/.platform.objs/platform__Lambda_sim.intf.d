lib/platform/lambda_sim.mli: Deployment Minipy Pricing
