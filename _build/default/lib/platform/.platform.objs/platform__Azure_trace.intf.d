lib/platform/azure_trace.mli: Trace
