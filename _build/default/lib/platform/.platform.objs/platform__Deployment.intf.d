lib/platform/deployment.mli: Minipy
