(** Invocation traces: deterministic arrival-time generators and the analytic
    cold/warm replay used by Figures 13-14. A start is cold exactly when the
    gap since the previous request's completion exceeds the keep-alive
    (single-instance model, matching the paper's serial invocations). *)

type t = {
  trace_name : string;
  arrivals_s : float list;  (** sorted arrival times, seconds *)
}

val make : name:string -> float list -> t
val length : t -> int
val duration_s : t -> float

(** Poisson arrivals with exponential inter-arrival times. *)
val poisson :
  seed:int -> rate_per_s:float -> duration_s:float -> name:string -> t

(** On/off bursts — the scale-out pattern §1 cites as a cold-start driver. *)
val bursty :
  seed:int ->
  burst_size:int ->
  burst_rate_per_s:float ->
  idle_gap_s:float ->
  bursts:int ->
  name:string ->
  t

val periodic : period_s:float -> count:int -> name:string -> t

type replay = {
  cold_starts : int;
  warm_starts : int;
  resident_s : float;
      (** total seconds a warm instance (or cached snapshot) stays alive *)
}

(** [replay ?exec_s t ~keep_alive_s]: every arrival is classified cold/warm;
    [exec_s] extends the keep-alive timer from request completion. *)
val replay : ?exec_s:float -> t -> keep_alive_s:float -> replay

val cold_fraction : replay -> float

(** {1 Concurrent replay} *)

type concurrent_replay = {
  c_cold_starts : int;
  c_warm_starts : int;
  c_peak_instances : int;  (** maximum simultaneous live instances *)
}

(** Pool model: a request is warm iff some instance is idle and within
    keep-alive; overlapping requests force parallel cold starts — the bursty
    scale-out behaviour §1 identifies as a cold-start driver. [cold_extra_s]
    is the additional initialization latency a cold start pays before
    executing. *)
val replay_concurrent :
  ?exec_s:float ->
  ?cold_extra_s:float ->
  t ->
  keep_alive_s:float ->
  concurrent_replay
