(* Invocation traces: arrival-time generation and analytic cold/warm replay.

   The replay does not need to execute application code: given sorted arrival
   times and a keep-alive window, a start is cold exactly when the gap since
   the previous request's completion exceeds the keep-alive (single-instance
   model — λ-trim's evaluation invokes serially). *)

type t = {
  trace_name : string;
  arrivals_s : float list;   (* sorted arrival times, seconds *)
}

let make ~name arrivals_s =
  { trace_name = name; arrivals_s = List.sort compare arrivals_s }

let length t = List.length t.arrivals_s

let duration_s t =
  match List.rev t.arrivals_s with last :: _ -> last | [] -> 0.0

(* --- generators (all deterministic given the seed) ---------------------- *)

let poisson ~seed ~rate_per_s ~duration_s ~name =
  let rng = Random.State.make [| seed |] in
  let rec go acc now =
    (* exponential inter-arrival times *)
    let gap = -.log (1.0 -. Random.State.float rng 1.0) /. rate_per_s in
    let now = now +. gap in
    if now > duration_s then List.rev acc else go (now :: acc) now
  in
  make ~name (go [] 0.0)

(* Bursty on/off arrivals: bursts of [burst_size] requests at [burst_rate],
   separated by idle gaps of mean [idle_gap_s] — the scale-out pattern §1
   cites as a cold-start driver. *)
let bursty ~seed ~burst_size ~burst_rate_per_s ~idle_gap_s ~bursts ~name =
  let rng = Random.State.make [| seed |] in
  let rec gen_bursts acc now b =
    if b >= bursts then List.rev acc
    else
      let rec gen_burst acc now i =
        if i >= burst_size then (acc, now)
        else
          let gap = -.log (1.0 -. Random.State.float rng 1.0) /. burst_rate_per_s in
          let now = now +. gap in
          gen_burst (now :: acc) now (i + 1)
      in
      let acc, now = gen_burst acc now 0 in
      let idle = idle_gap_s *. (0.5 +. Random.State.float rng 1.0) in
      gen_bursts acc (now +. idle) (b + 1)
  in
  make ~name (gen_bursts [] 0.0 0)

let periodic ~period_s ~count ~name =
  make ~name (List.init count (fun i -> float_of_int i *. period_s))

(* --- analytic replay ----------------------------------------------------- *)

type replay = {
  cold_starts : int;
  warm_starts : int;
  (* total seconds during which a warm instance is kept alive (cache time for
     SnapStart-style storage costs, resident time for keep-alive costs) *)
  resident_s : float;
}

(* [exec_s] approximates the per-request busy time used to extend the
   keep-alive timer from request completion. *)
let replay ?(exec_s = 0.0) t ~keep_alive_s : replay =
  let rec go cold warm resident expires = function
    | [] -> { cold_starts = cold; warm_starts = warm; resident_s = resident }
    | arrival :: rest ->
      let is_warm = arrival <= expires in
      let completion = arrival +. exec_s in
      let new_expires = completion +. keep_alive_s in
      let resident =
        if is_warm then resident +. (new_expires -. expires)
        else resident +. (new_expires -. arrival)
      in
      if is_warm then go cold (warm + 1) resident new_expires rest
      else go (cold + 1) warm resident new_expires rest
  in
  go 0 0 0.0 neg_infinity t.arrivals_s

let cold_fraction r =
  let total = r.cold_starts + r.warm_starts in
  if total = 0 then 0.0 else float_of_int r.cold_starts /. float_of_int total

(* --- concurrent replay ----------------------------------------------------

   The single-instance replay above matches the paper's serial invocations;
   real bursts overlap, and each overflow request forces a parallel cold
   start (§1's "scale-out architectures that lead to very bursty
   workloads"). The pool model: a request is warm iff some instance is both
   idle (its previous request finished) and within keep-alive; otherwise a
   new instance cold-starts. *)

type concurrent_replay = {
  c_cold_starts : int;
  c_warm_starts : int;
  c_peak_instances : int;
}

let replay_concurrent ?(exec_s = 0.0) ?(cold_extra_s = 0.0) t ~keep_alive_s :
  concurrent_replay =
  (* each live instance: (busy_until, expires_at) *)
  let instances : (float * float) list ref = ref [] in
  let cold = ref 0 and warm = ref 0 and peak = ref 0 in
  List.iter
    (fun arrival ->
       (* drop expired instances *)
       instances :=
         List.filter (fun (_, expires) -> expires >= arrival) !instances;
       (* find an idle warm instance *)
       let rec pick acc = function
         | [] -> None
         | (busy_until, _) :: rest when busy_until <= arrival ->
           Some (acc @ rest)
         | inst :: rest -> pick (inst :: acc) rest
       in
       (match pick [] !instances with
        | Some others ->
          incr warm;
          let completion = arrival +. exec_s in
          instances := (completion, completion +. keep_alive_s) :: others
        | None ->
          incr cold;
          let completion = arrival +. cold_extra_s +. exec_s in
          instances := (completion, completion +. keep_alive_s) :: !instances);
       peak := max !peak (List.length !instances))
    t.arrivals_s;
  { c_cold_starts = !cold; c_warm_starts = !warm; c_peak_instances = !peak }
