(** Synthetic stand-in for the Microsoft Azure Functions trace (Shahrad et
    al., ATC'20) used by Figures 13-14: heavy-tailed per-function invocation
    rates (log-normal mean inter-arrival, seconds to hours), Poisson
    arrivals, log-normal memory and duration. Deterministic per seed. *)

type fn = {
  fn_id : int;
  memory_mb : float;
  exec_ms : float;
  trace : Trace.t;
}

type t = {
  functions : fn list;
  horizon_s : float;
}

val generate : ?n_functions:int -> ?horizon_s:float -> seed:int -> unit -> t

(** The function nearest to (memory, duration) in normalised L2 distance —
    the §8.6 matching rule for Figure 14. *)
val nearest_function : t -> memory_mb:float -> exec_ms:float -> fn
