(** Summary statistics for experiment reporting. *)

val mean : float list -> float

(** Linear-interpolated percentile; [percentile 50.0] is the median. *)
val percentile : float -> float list -> float

val median : float list -> float
val stddev : float list -> float

(** CDF sample points: (value, fraction ≤ value) over the sorted data. *)
val cdf : float list -> (float * float) list

(** Relative improvement in percent; positive = [after] is smaller. *)
val improvement_pct : before:float -> after:float -> float

val speedup : before:float -> after:float -> float
