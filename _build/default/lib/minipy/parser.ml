(* Recursive-descent parser for minipy.

   Precedence (low to high):
     lambda < ternary < or < and < not < comparison < +,- < *,/,//,% <
     unary -,+ < ** < trailers (call, attribute, subscript) < atom *)

exception Error of string * Loc.t

type state = {
  toks : (Token.t * Loc.t) array;
  mutable idx : int;
}

let make toks = { toks = Array.of_list toks; idx = 0 }

let current st = fst st.toks.(st.idx)
let current_loc st = snd st.toks.(st.idx)
let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let error st msg =
  raise (Error (Fmt.str "%s (found %a)" msg Token.pp (current st), current_loc st))

let eat st tok =
  if Token.equal (current st) tok then advance st
  else error st (Fmt.str "expected %a" Token.pp tok)

let eat_op st op = eat st (Token.Op op)
let eat_kw st kw = eat st (Token.Keyword kw)

let accept st tok =
  if Token.equal (current st) tok then begin advance st; true end else false

let accept_op st op = accept st (Token.Op op)
let accept_kw st kw = accept st (Token.Keyword kw)

let expect_name st =
  match current st with
  | Token.Name n -> advance st; n
  | _ -> error st "expected identifier"

(* Skip blank logical lines (stray newlines between statements). *)
let rec skip_newlines st =
  if Token.equal (current st) Token.Newline then begin advance st; skip_newlines st end

(* --- expressions ------------------------------------------------------- *)

let binop_of_op = function
  | "+" -> Ast.Add | "-" -> Ast.Sub | "*" -> Ast.Mul | "/" -> Ast.Div
  | "//" -> Ast.FloorDiv | "%" -> Ast.Mod | "**" -> Ast.Pow
  | "==" -> Ast.Eq | "!=" -> Ast.Ne | "<" -> Ast.Lt | "<=" -> Ast.Le
  | ">" -> Ast.Gt | ">=" -> Ast.Ge
  | op -> invalid_arg ("binop_of_op: " ^ op)

let rec parse_expr st : Ast.expr =
  match current st with
  | Token.Keyword "lambda" ->
    let loc = current_loc st in
    advance st;
    let params = parse_name_list st in
    eat_op st ":";
    let body = parse_expr st in
    Ast.e ~loc (Ast.Lambda (params, body))
  | _ -> parse_ternary st

and parse_name_list st =
  if Token.equal (current st) (Token.Op ":") then []
  else
    let rec go acc =
      let n = expect_name st in
      if accept_op st "," then go (n :: acc) else List.rev (n :: acc)
    in
    go []

and parse_ternary st =
  let body = parse_or st in
  if accept_kw st "if" then begin
    let cond = parse_or st in
    eat_kw st "else";
    let orelse = parse_expr st in
    Ast.e ~loc:body.Ast.eloc (Ast.IfExp (cond, body, orelse))
  end
  else body

and parse_or st =
  let lhs = parse_and st in
  if accept_kw st "or" then
    let rhs = parse_or st in
    Ast.e ~loc:lhs.Ast.eloc (Ast.Binop (Ast.Or, lhs, rhs))
  else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept_kw st "and" then
    let rhs = parse_and st in
    Ast.e ~loc:lhs.Ast.eloc (Ast.Binop (Ast.And, lhs, rhs))
  else lhs

and parse_not st =
  let loc = current_loc st in
  if accept_kw st "not" then
    let operand = parse_not st in
    Ast.e ~loc (Ast.Unop (Ast.Not, operand))
  else parse_comparison st

(* Python chains comparisons: a < b < c means (a < b) and (b < c). We
   desugar to the `and` form (middle operands are re-evaluated, a documented
   deviation from CPython's evaluate-once semantics). *)
and parse_comparison st =
  let lhs = parse_arith st in
  let next_op () =
    match current st with
    | Token.Op (("==" | "!=" | "<" | "<=" | ">" | ">=") as op) ->
      advance st;
      Some (binop_of_op op)
    | Token.Keyword "in" -> advance st; Some Ast.In
    | Token.Keyword "not" ->
      advance st;
      eat_kw st "in";
      Some Ast.NotIn
    | _ -> None
  in
  match next_op () with
  | None -> lhs
  | Some op0 ->
    let rhs0 = parse_arith st in
    let rec chain acc prev =
      match next_op () with
      | None -> acc
      | Some op ->
        let rhs = parse_arith st in
        let link = Ast.e ~loc:prev.Ast.eloc (Ast.Binop (op, prev, rhs)) in
        chain (Ast.e ~loc:acc.Ast.eloc (Ast.Binop (Ast.And, acc, link))) rhs
    in
    chain (Ast.e ~loc:lhs.Ast.eloc (Ast.Binop (op0, lhs, rhs0))) rhs0

and parse_arith st =
  let lhs = parse_term st in
  let rec go lhs =
    match current st with
    | Token.Op (("+" | "-") as op) ->
      advance st;
      let rhs = parse_term st in
      go (Ast.e ~loc:lhs.Ast.eloc (Ast.Binop (binop_of_op op, lhs, rhs)))
    | _ -> lhs
  in
  go lhs

and parse_term st =
  let lhs = parse_unary st in
  let rec go lhs =
    match current st with
    | Token.Op (("*" | "/" | "//" | "%") as op) ->
      advance st;
      let rhs = parse_unary st in
      go (Ast.e ~loc:lhs.Ast.eloc (Ast.Binop (binop_of_op op, lhs, rhs)))
    | _ -> lhs
  in
  go lhs

and parse_unary st =
  let loc = current_loc st in
  match current st with
  | Token.Op "-" -> advance st; Ast.e ~loc (Ast.Unop (Ast.Neg, parse_unary st))
  | Token.Op "+" -> advance st; Ast.e ~loc (Ast.Unop (Ast.Pos, parse_unary st))
  | _ -> parse_power st

and parse_power st =
  let base = parse_postfix st in
  if accept_op st "**" then
    let exp = parse_unary st in
    Ast.e ~loc:base.Ast.eloc (Ast.Binop (Ast.Pow, base, exp))
  else base

and parse_postfix st =
  let atom = parse_atom st in
  parse_trailers st atom

and parse_trailers st e =
  match current st with
  | Token.Op "." ->
    advance st;
    let name = expect_name st in
    parse_trailers st (Ast.e ~loc:e.Ast.eloc (Ast.Attr (e, name)))
  | Token.Op "(" ->
    advance st;
    let args, kwargs = parse_call_args st in
    parse_trailers st (Ast.e ~loc:e.Ast.eloc (Ast.Call (e, args, kwargs)))
  | Token.Op "[" ->
    advance st;
    (* subscript e[k], or slice e[a:b] with either bound optional *)
    let lo =
      match current st with
      | Token.Op ":" -> None
      | _ -> Some (parse_expr st)
    in
    if accept_op st ":" then begin
      let hi =
        match current st with
        | Token.Op "]" -> None
        | _ -> Some (parse_expr st)
      in
      eat_op st "]";
      parse_trailers st (Ast.e ~loc:e.Ast.eloc (Ast.Slice (e, lo, hi)))
    end
    else begin
      eat_op st "]";
      match lo with
      | Some idx ->
        parse_trailers st (Ast.e ~loc:e.Ast.eloc (Ast.Subscript (e, idx)))
      | None -> error st "empty subscript"
    end
  | _ -> e

and parse_call_args st =
  let args = ref [] and kwargs = ref [] in
  let rec go () =
    if Token.equal (current st) (Token.Op ")") then advance st
    else begin
      (match current st with
       | Token.Name n
         when Token.equal (fst st.toks.(st.idx + 1)) (Token.Op "=") ->
         advance st; advance st;
         kwargs := (n, parse_expr st) :: !kwargs
       | _ -> args := parse_expr st :: !args);
      if accept_op st "," then go () else eat_op st ")"
    end
  in
  go ();
  (List.rev !args, List.rev !kwargs)

and parse_atom st =
  let loc = current_loc st in
  match current st with
  | Token.Int i -> advance st; Ast.e ~loc (Ast.Const (Ast.Cint i))
  | Token.Float f -> advance st; Ast.e ~loc (Ast.Const (Ast.Cfloat f))
  | Token.Str s -> advance st; Ast.e ~loc (Ast.Const (Ast.Cstr s))
  | Token.Keyword "True" -> advance st; Ast.e ~loc (Ast.Const (Ast.Cbool true))
  | Token.Keyword "False" -> advance st; Ast.e ~loc (Ast.Const (Ast.Cbool false))
  | Token.Keyword "None" -> advance st; Ast.e ~loc (Ast.Const Ast.Cnone)
  | Token.Name n -> advance st; Ast.e ~loc (Ast.Name n)
  | Token.Op "(" ->
    advance st;
    if accept_op st ")" then Ast.e ~loc (Ast.TupleLit [])
    else begin
      let first = parse_expr st in
      if Token.equal (current st) (Token.Op ",") then begin
        let items = ref [ first ] in
        while accept_op st "," do
          if not (Token.equal (current st) (Token.Op ")")) then
            items := parse_expr st :: !items
        done;
        eat_op st ")";
        Ast.e ~loc (Ast.TupleLit (List.rev !items))
      end
      else begin eat_op st ")"; first end
    end
  | Token.Op "[" ->
    advance st;
    if accept_op st "]" then Ast.e ~loc (Ast.ListLit [])
    else begin
      let first = parse_expr st in
      match current st with
      | Token.Keyword "for" ->
        advance st;
        let cvar = parse_comp_target st in
        eat_kw st "in";
        (* the iterable and condition stop below the ternary level, so the
           comprehension's own `if` is not mistaken for a conditional expr *)
        let citer = parse_or st in
        let ccond = if accept_kw st "if" then Some (parse_or st) else None in
        eat_op st "]";
        Ast.e ~loc (Ast.ListComp { Ast.celt = first; cvar; citer; ccond })
      | _ ->
        let items = ref [ first ] in
        let rec go () =
          if accept_op st "]" then ()
          else begin
            items := parse_expr st :: !items;
            if accept_op st "," then go () else eat_op st "]"
          end
        in
        (if accept_op st "," then go () else eat_op st "]");
        Ast.e ~loc (Ast.ListLit (List.rev !items))
    end
  | Token.Op "{" ->
    advance st;
    if accept_op st "}" then Ast.e ~loc (Ast.DictLit [])
    else begin
      let k0 = parse_expr st in
      eat_op st ":";
      let v0 = parse_expr st in
      match current st with
      | Token.Keyword "for" ->
        advance st;
        let dcvar = parse_comp_target st in
        eat_kw st "in";
        let dciter = parse_or st in
        let dccond = if accept_kw st "if" then Some (parse_or st) else None in
        eat_op st "}";
        Ast.e ~loc
          (Ast.DictComp { Ast.dckey = k0; dcval = v0; dcvar; dciter; dccond })
      | _ ->
        let items = ref [ (k0, v0) ] in
        let rec go () =
          if accept_op st "}" then ()
          else begin
            let k = parse_expr st in
            eat_op st ":";
            let v = parse_expr st in
            items := (k, v) :: !items;
            if accept_op st "," then go () else eat_op st "}"
          end
        in
        (if accept_op st "," then go () else eat_op st "}");
        Ast.e ~loc (Ast.DictLit (List.rev !items))
    end
  | _ -> error st "expected expression"

(* comprehension / for-loop target: postfix expressions joined by commas,
   parsed below the comparison level so `in` is not consumed. *)
and parse_comp_target st : Ast.target =
  let first = parse_postfix st in
  let tgt_expr =
    if Token.equal (current st) (Token.Op ",") then begin
      let items = ref [ first ] in
      while accept_op st "," do
        items := parse_postfix st :: !items
      done;
      Ast.e ~loc:first.Ast.eloc (Ast.TupleLit (List.rev !items))
    end
    else first
  in
  target_of_expr_local tgt_expr

and target_of_expr_local (e : Ast.expr) : Ast.target =
  match e.Ast.desc with
  | Ast.Name n -> Ast.Tname n
  | Ast.Attr (base, a) -> Ast.Tattr (base, a)
  | Ast.Subscript (base, k) -> Ast.Tsubscript (base, k)
  | Ast.TupleLit items | Ast.ListLit items ->
    Ast.Ttuple (List.map target_of_expr_local items)
  | _ -> raise (Error ("invalid assignment target", e.Ast.eloc))

(* testlist: expr (',' expr)* — an unparenthesized tuple. *)
and parse_testlist st =
  let first = parse_expr st in
  if Token.equal (current st) (Token.Op ",") then begin
    let items = ref [ first ] in
    while accept_op st "," do
      match current st with
      | Token.Newline | Token.Eof | Token.Op ("=" | ")" | "]" | "}" | ";") -> ()
      | _ -> items := parse_expr st :: !items
    done;
    Ast.e ~loc:first.Ast.eloc (Ast.TupleLit (List.rev !items))
  end
  else first

(* --- statements -------------------------------------------------------- *)

let rec target_of_expr st (e : Ast.expr) : Ast.target =
  match e.Ast.desc with
  | Ast.Name n -> Ast.Tname n
  | Ast.Attr (base, a) -> Ast.Tattr (base, a)
  | Ast.Subscript (base, k) -> Ast.Tsubscript (base, k)
  | Ast.TupleLit items | Ast.ListLit items ->
    Ast.Ttuple (List.map (target_of_expr st) items)
  | _ -> raise (Error ("invalid assignment target", e.Ast.eloc))

let parse_dotted st =
  let rec go acc =
    let n = expect_name st in
    if accept_op st "." then go (n :: acc) else List.rev (n :: acc)
  in
  go []

let rec parse_program st : Ast.program =
  skip_newlines st;
  if Token.equal (current st) Token.Eof then []
  else
    let stmt = parse_stmt st in
    stmt @ parse_program st

(* A statement line can hold several ';'-separated small statements, so
   [parse_stmt] returns a list. *)
and parse_stmt st : Ast.stmt list =
  match current st with
  | Token.Keyword "if" -> [ parse_if st ]
  | Token.Keyword "while" -> [ parse_while st ]
  | Token.Keyword "for" -> [ parse_for st ]
  | Token.Keyword "def" -> [ parse_def st ]
  | Token.Keyword "class" -> [ parse_class st ]
  | Token.Keyword "try" -> [ parse_try st ]
  | Token.Op "@" ->
    (* decorators are parsed and discarded: minipy has no decorator semantics,
       but workload generators may emit them for realism *)
    advance st;
    let _ = parse_expr st in
    eat st Token.Newline;
    skip_newlines st;
    parse_stmt st
  | _ ->
    let stmts = parse_simple_line st in
    stmts

and parse_simple_line st =
  let first = parse_small_stmt st in
  let rec go acc =
    if accept_op st ";" then
      match current st with
      | Token.Newline | Token.Eof -> List.rev acc
      | _ -> go (parse_small_stmt st :: acc)
    else List.rev acc
  in
  let stmts = go [ first ] in
  (match current st with
   | Token.Eof -> ()
   | _ -> eat st Token.Newline);
  stmts

and parse_small_stmt st : Ast.stmt =
  let loc = current_loc st in
  match current st with
  | Token.Keyword "pass" -> advance st; Ast.s ~loc Ast.Pass
  | Token.Keyword "break" -> advance st; Ast.s ~loc Ast.Break
  | Token.Keyword "continue" -> advance st; Ast.s ~loc Ast.Continue
  | Token.Keyword "return" ->
    advance st;
    (match current st with
     | Token.Newline | Token.Eof | Token.Op ";" -> Ast.s ~loc (Ast.Return None)
     | _ -> Ast.s ~loc (Ast.Return (Some (parse_testlist st))))
  | Token.Keyword "raise" ->
    advance st;
    (match current st with
     | Token.Newline | Token.Eof | Token.Op ";" -> Ast.s ~loc (Ast.Raise None)
     | _ -> Ast.s ~loc (Ast.Raise (Some (parse_expr st))))
  | Token.Keyword "global" ->
    advance st;
    let rec names acc =
      let n = expect_name st in
      if accept_op st "," then names (n :: acc) else List.rev (n :: acc)
    in
    Ast.s ~loc (Ast.Global (names []))
  | Token.Keyword "del" ->
    advance st;
    let e = parse_expr st in
    Ast.s ~loc (Ast.Del (target_of_expr st e))
  | Token.Keyword "assert" ->
    advance st;
    let cond = parse_expr st in
    let msg = if accept_op st "," then Some (parse_expr st) else None in
    Ast.s ~loc (Ast.Assert (cond, msg))
  | Token.Keyword "import" ->
    advance st;
    let path = parse_dotted st in
    let alias = if accept_kw st "as" then Some (expect_name st) else None in
    Ast.s ~loc (Ast.Import (path, alias))
  | Token.Keyword "from" ->
    advance st;
    (* leading dots select the relative level *)
    let rec dots n = if accept_op st "." then dots (n + 1) else n in
    let fc_level = dots 0 in
    let fc_path =
      match current st with
      | Token.Keyword "import" when fc_level > 0 -> []
      | _ -> parse_dotted st
    in
    eat_kw st "import";
    let parenthesized = accept_op st "(" in
    let rec names acc =
      let n = expect_name st in
      let alias = if accept_kw st "as" then Some (expect_name st) else None in
      if accept_op st "," then names ((n, alias) :: acc)
      else List.rev ((n, alias) :: acc)
    in
    let imported = names [] in
    if parenthesized then eat_op st ")";
    Ast.s ~loc (Ast.From_import ({ Ast.fc_level; fc_path }, imported))
  | _ ->
    let e = parse_testlist st in
    (match current st with
     | Token.Op "=" ->
       advance st;
       let target = target_of_expr st e in
       let value = parse_testlist st in
       Ast.s ~loc (Ast.Assign (target, value))
     | Token.Op (("+=" | "-=" | "*=" | "/=" | "%=") as op) ->
       advance st;
       let target = target_of_expr st e in
       let value = parse_testlist st in
       let bop = binop_of_op (String.sub op 0 1) in
       Ast.s ~loc (Ast.AugAssign (target, bop, value))
     | _ -> Ast.s ~loc (Ast.Expr_stmt e))

and parse_block st : Ast.stmt list =
  eat_op st ":";
  if Token.equal (current st) Token.Newline then begin
    advance st;
    skip_newlines st;
    eat st Token.Indent;
    let rec go acc =
      skip_newlines st;
      if accept st Token.Dedent then List.rev acc
      else if Token.equal (current st) Token.Eof then List.rev acc
      else go (List.rev_append (parse_stmt st) acc)
    in
    go []
  end
  else
    (* inline suite: `if x: return y` *)
    parse_simple_line st

and parse_if st =
  let loc = current_loc st in
  eat_kw st "if";
  let cond = parse_expr st in
  let body = parse_block st in
  let rec elifs acc =
    skip_newlines_before_kw st "elif";
    if accept_kw st "elif" then begin
      let c = parse_expr st in
      let b = parse_block st in
      elifs ((c, b) :: acc)
    end
    else List.rev acc
  in
  let branches = (cond, body) :: elifs [] in
  skip_newlines_before_kw st "else";
  let orelse = if accept_kw st "else" then parse_block st else [] in
  Ast.s ~loc (Ast.If (branches, orelse))

(* else/elif/except/finally appear at the same indentation as their opener;
   no newline skipping is needed because dedent handling consumed the block. *)
and skip_newlines_before_kw _st _kw = ()

and parse_while st =
  let loc = current_loc st in
  eat_kw st "while";
  let cond = parse_expr st in
  let body = parse_block st in
  Ast.s ~loc (Ast.While (cond, body))

and parse_for st =
  let loc = current_loc st in
  eat_kw st "for";
  (* the target must stop before the `in` keyword, so parse below the
     comparison level (postfix expressions separated by commas) *)
  let first = parse_postfix st in
  let tgt_expr =
    if Token.equal (current st) (Token.Op ",") then begin
      let items = ref [ first ] in
      while accept_op st "," do
        items := parse_postfix st :: !items
      done;
      Ast.e ~loc:first.Ast.eloc (Ast.TupleLit (List.rev !items))
    end
    else first
  in
  let target = target_of_expr st tgt_expr in
  eat_kw st "in";
  let iter = parse_testlist st in
  let body = parse_block st in
  Ast.s ~loc (Ast.For (target, iter, body))

and parse_def st =
  let loc = current_loc st in
  eat_kw st "def";
  let name = expect_name st in
  eat_op st "(";
  let params = ref [] in
  let rec go () =
    if accept_op st ")" then ()
    else begin
      let pname = expect_name st in
      let pdefault = if accept_op st "=" then Some (parse_expr st) else None in
      params := { Ast.pname; pdefault } :: !params;
      if accept_op st "," then go () else eat_op st ")"
    end
  in
  go ();
  let body = parse_block st in
  Ast.s ~loc (Ast.Def { Ast.dname = name; dparams = List.rev !params; dbody = body })

and parse_class st =
  let loc = current_loc st in
  eat_kw st "class";
  let name = expect_name st in
  let bases =
    if accept_op st "(" then begin
      let bs = ref [] in
      let rec go () =
        if accept_op st ")" then ()
        else begin
          bs := parse_expr st :: !bs;
          if accept_op st "," then go () else eat_op st ")"
        end
      in
      go ();
      List.rev !bs
    end
    else []
  in
  let body = parse_block st in
  Ast.s ~loc (Ast.Class { Ast.cname = name; cbases = bases; cbody = body })

and parse_try st =
  let loc = current_loc st in
  eat_kw st "try";
  let body = parse_block st in
  let rec handlers acc =
    if accept_kw st "except" then begin
      let hexc =
        match current st with
        | Token.Name n -> advance st; Some n
        | _ -> None
      in
      let hbind = if accept_kw st "as" then Some (expect_name st) else None in
      let hbody = parse_block st in
      handlers ({ Ast.hexc; hbind; hbody } :: acc)
    end
    else List.rev acc
  in
  let hs = handlers [] in
  let finally = if accept_kw st "finally" then parse_block st else [] in
  Ast.s ~loc (Ast.Try (body, hs, finally))

(* --- entry points ------------------------------------------------------ *)

let parse ~file src : Ast.program =
  let toks = Lexer.tokenize ~file src in
  let st = make toks in
  parse_program st

let parse_expression ~file src : Ast.expr =
  let toks = Lexer.tokenize ~file src in
  let st = make toks in
  let e = parse_expr st in
  e
