(** Tokens produced by the indentation-aware lexer. *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Name of string
  | Keyword of string  (** one of [keywords] *)
  | Op of string       (** operators and punctuation *)
  | Newline
  | Indent
  | Dedent
  | Eof

val keywords : string list
val is_keyword : string -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
