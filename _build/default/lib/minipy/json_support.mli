(** JSON encoding/decoding between minipy values and text — backing the
    builtin [json] module (serverless events and responses are JSON). *)

exception Decode_error of string

(** Python-style JSON text. Tuples encode as arrays; non-string dict keys
    and non-data values raise a minipy [TypeError]. *)
val dumps : Value.value -> string

(** Parse JSON into minipy values (objects → dicts with string keys).
    @raise Decode_error on malformed input. *)
val loads : string -> Value.value
