(* Pretty-printer emitting valid minipy source.

   [Parser.parse (Pretty.program_to_string p)] is structurally equal to [p]
   (checked by property tests); the debloater relies on this round-trip when
   writing modified __init__ files back to the virtual filesystem. *)

open Ast

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | FloorDiv -> "//"
  | Mod -> "%" | Pow -> "**"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "and" | Or -> "or" | In -> "in" | NotIn -> "not in"

(* Precedence levels for minimal parenthesization. *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge | In | NotIn -> 4
  | Add | Sub -> 5
  | Mul | Div | FloorDiv | Mod -> 6
  | Pow -> 8

let prec (e : expr) =
  match e.desc with
  | Lambda _ -> 0
  | IfExp _ -> 0
  | Binop (op, _, _) -> binop_prec op
  | Unop (Not, _) -> 3
  | Unop ((Neg | Pos), _) -> 7
  | Const _ | Name _ | Attr _ | Subscript _ | Call _ | ListLit _ | TupleLit _
  | DictLit _ | Slice _ | ListComp _ | DictComp _ -> 10

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\\' -> Buffer.add_string buf "\\\\"
       | '"' -> Buffer.add_string buf "\\\""
       | '\000' -> Buffer.add_string buf "\\0"
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let const_str = function
  | Cint i -> if i < 0 then Printf.sprintf "(%d)" i else string_of_int i
  | Cfloat f ->
    let s = Printf.sprintf "%.17g" f in
    let s =
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
      then s
      else s ^ ".0"
    in
    if f < 0.0 then "(" ^ s ^ ")" else s
  | Cstr s -> "\"" ^ escape_string s ^ "\""
  | Cbool true -> "True"
  | Cbool false -> "False"
  | Cnone -> "None"

let rec expr_str ?(ctx = 0) (e : expr) =
  let p = prec e in
  let body =
    match e.desc with
    | Const c -> const_str c
    | Name n -> n
    | Attr (b, a) -> atom_str b ^ "." ^ a
    | Subscript (b, k) -> atom_str b ^ "[" ^ expr_str k ^ "]"
    | Call (f, args, kwargs) ->
      let args = List.map expr_str args in
      let kwargs = List.map (fun (n, v) -> n ^ "=" ^ expr_str v) kwargs in
      atom_str f ^ "(" ^ String.concat ", " (args @ kwargs) ^ ")"
    | Binop (((And | Or) as op), l, r) ->
      (* and/or are right-folded by the parser *)
      expr_str ~ctx:(binop_prec op + 1) l
      ^ " " ^ binop_str op ^ " "
      ^ expr_str ~ctx:(binop_prec op) r
    | Binop (Pow, l, r) ->
      expr_str ~ctx:9 l ^ " ** " ^ expr_str ~ctx:8 r
    | Binop (((Eq | Ne | Lt | Le | Gt | Ge | In | NotIn) as op), l, r) ->
      (* comparisons chain in the grammar (a < b < c desugars to `and`), so
         a comparison operand must be parenthesized on both sides *)
      expr_str ~ctx:(binop_prec op + 1) l
      ^ " " ^ binop_str op ^ " "
      ^ expr_str ~ctx:(binop_prec op + 1) r
    | Binop (op, l, r) ->
      expr_str ~ctx:(binop_prec op) l
      ^ " " ^ binop_str op ^ " "
      ^ expr_str ~ctx:(binop_prec op + 1) r
    | Unop (Not, x) -> "not " ^ expr_str ~ctx:3 x
    | Unop (Neg, x) -> "-" ^ expr_str ~ctx:8 x
    | Unop (Pos, x) -> "+" ^ expr_str ~ctx:8 x
    | ListLit items -> "[" ^ String.concat ", " (List.map expr_str items) ^ "]"
    | TupleLit [] -> "()"
    | TupleLit [ x ] -> "(" ^ expr_str x ^ ",)"
    | TupleLit items -> "(" ^ String.concat ", " (List.map expr_str items) ^ ")"
    | DictLit items ->
      "{"
      ^ String.concat ", "
          (List.map (fun (k, v) -> expr_str k ^ ": " ^ expr_str v) items)
      ^ "}"
    | Lambda (params, body) ->
      "lambda " ^ String.concat ", " params ^ ": " ^ expr_str body
    | IfExp (cond, then_, else_) ->
      expr_str ~ctx:1 then_ ^ " if " ^ expr_str ~ctx:1 cond ^ " else "
      ^ expr_str else_
    | Slice (b, lo, hi) ->
      let opt = function Some e -> expr_str e | None -> "" in
      atom_str b ^ "[" ^ opt lo ^ ":" ^ opt hi ^ "]"
    | ListComp { celt; cvar; citer; ccond } ->
      "[" ^ expr_str celt ^ " for " ^ target_str cvar ^ " in "
      ^ expr_str ~ctx:4 citer
      ^ (match ccond with
         | Some c -> " if " ^ expr_str ~ctx:4 c
         | None -> "")
      ^ "]"
    | DictComp { dckey; dcval; dcvar; dciter; dccond } ->
      "{" ^ expr_str dckey ^ ": " ^ expr_str dcval ^ " for "
      ^ target_str dcvar ^ " in " ^ expr_str ~ctx:4 dciter
      ^ (match dccond with
         | Some c -> " if " ^ expr_str ~ctx:4 c
         | None -> "")
      ^ "}"
  in
  if p < ctx then "(" ^ body ^ ")" else body

and target_str = function
  | Tname n -> n
  | Tattr (b, a) -> atom_str b ^ "." ^ a
  | Tsubscript (b, k) -> atom_str b ^ "[" ^ expr_str k ^ "]"
  | Ttuple items -> String.concat ", " (List.map target_str items)

(* Trailer bases (before '.', '[', '(') need full parenthesization of
   anything below atom precedence. *)
and atom_str e =
  match e.desc with
  | Const (Cint i) when i < 0 -> Printf.sprintf "(%d)" i
  | Const (Cfloat f) when f < 0.0 -> "(" ^ const_str (Cfloat f) ^ ")"
  | Const (Cint _ | Cfloat _) ->
    (* 1.x parses as a float followed by x; parenthesize to be safe *)
    "(" ^ expr_str e ^ ")"
  | _ -> expr_str ~ctx:10 e


let indent n = String.make (2 * n) ' '

let rec stmt_lines ~depth (s : stmt) : string list =
  let pad = indent depth in
  match s.sdesc with
  | Expr_stmt e -> [ pad ^ expr_str e ]
  | Assign (t, e) -> [ pad ^ target_str t ^ " = " ^ expr_str e ]
  | AugAssign (t, op, e) ->
    [ pad ^ target_str t ^ " " ^ binop_str op ^ "= " ^ expr_str e ]
  | Import (path, alias) ->
    let base = pad ^ "import " ^ dotted_to_string path in
    [ (match alias with Some a -> base ^ " as " ^ a | None -> base) ]
  | From_import ({ fc_level; fc_path }, names) ->
    let name_str (n, alias) =
      match alias with Some a -> n ^ " as " ^ a | None -> n
    in
    [ pad ^ "from " ^ String.make fc_level '.' ^ dotted_to_string fc_path
      ^ " import " ^ String.concat ", " (List.map name_str names) ]
  | Def { dname; dparams; dbody } ->
    let param_str { pname; pdefault } =
      match pdefault with
      | Some d -> pname ^ "=" ^ expr_str d
      | None -> pname
    in
    (pad ^ "def " ^ dname ^ "("
     ^ String.concat ", " (List.map param_str dparams)
     ^ "):")
    :: block_lines ~depth dbody
  | Class { cname; cbases; cbody } ->
    let bases =
      match cbases with
      | [] -> ""
      | bs -> "(" ^ String.concat ", " (List.map expr_str bs) ^ ")"
    in
    (pad ^ "class " ^ cname ^ bases ^ ":") :: block_lines ~depth cbody
  | Return None -> [ pad ^ "return" ]
  | Return (Some e) -> [ pad ^ "return " ^ expr_str e ]
  | If (branches, orelse) ->
    let rec branch_lines first = function
      | [] -> []
      | (cond, body) :: rest ->
        let kw = if first then "if" else "elif" in
        ((pad ^ kw ^ " " ^ expr_str cond ^ ":") :: block_lines ~depth body)
        @ branch_lines false rest
    in
    branch_lines true branches
    @ (match orelse with
       | [] -> []
       | body -> (pad ^ "else:") :: block_lines ~depth body)
  | While (cond, body) ->
    (pad ^ "while " ^ expr_str cond ^ ":") :: block_lines ~depth body
  | For (t, iter, body) ->
    (pad ^ "for " ^ target_str t ^ " in " ^ expr_str iter ^ ":")
    :: block_lines ~depth body
  | Try (body, handlers, finally) ->
    let handler_lines { hexc; hbind; hbody } =
      let head =
        match hexc, hbind with
        | Some e, Some b -> pad ^ "except " ^ e ^ " as " ^ b ^ ":"
        | Some e, None -> pad ^ "except " ^ e ^ ":"
        | None, _ -> pad ^ "except:"
      in
      head :: block_lines ~depth hbody
    in
    ((pad ^ "try:") :: block_lines ~depth body)
    @ List.concat_map handler_lines handlers
    @ (match finally with
       | [] -> []
       | body -> (pad ^ "finally:") :: block_lines ~depth body)
  | Raise None -> [ pad ^ "raise" ]
  | Raise (Some e) -> [ pad ^ "raise " ^ expr_str e ]
  | Pass -> [ pad ^ "pass" ]
  | Break -> [ pad ^ "break" ]
  | Continue -> [ pad ^ "continue" ]
  | Global names -> [ pad ^ "global " ^ String.concat ", " names ]
  | Del t -> [ pad ^ "del " ^ target_str t ]
  | Assert (cond, None) -> [ pad ^ "assert " ^ expr_str cond ]
  | Assert (cond, Some m) ->
    [ pad ^ "assert " ^ expr_str cond ^ ", " ^ expr_str m ]

and block_lines ~depth body =
  match body with
  | [] -> [ indent (depth + 1) ^ "pass" ]
  | _ -> List.concat_map (stmt_lines ~depth:(depth + 1)) body

let program_to_string (p : program) =
  match p with
  | [] -> "pass\n"
  | _ ->
    String.concat "\n" (List.concat_map (stmt_lines ~depth:0) p) ^ "\n"

let expr_to_string e = expr_str e
