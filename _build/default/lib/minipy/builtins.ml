(* Builtin functions and exception constructors installed into every
   interpreter. Exceptions are modelled as callables that build [Vexc]
   values carrying their class name, which `except E` matches by name. *)

open Value

let exception_names =
  [ "Exception"; "ValueError"; "TypeError"; "KeyError"; "AttributeError";
    "NameError"; "ImportError"; "ModuleNotFoundError"; "ZeroDivisionError";
    "IndexError"; "RuntimeError"; "NotImplementedError"; "AssertionError";
    "OSError"; "FileNotFoundError"; "StopIteration"; "SyntaxError";
    "ConnectionError"; "TimeoutError" ]

let iterable_values v : value list =
  match v with
  | Vlist l -> Array.to_list l.items
  | Vtuple a -> Array.to_list a
  | Vstr s -> List.init (String.length s) (fun i -> Vstr (String.make 1 s.[i]))
  | Vdict d -> List.map fst d.pairs
  | _ -> py_error "TypeError" "'%s' object is not iterable" (type_name v)

let as_int = function
  | Vint i -> i
  | Vbool true -> 1
  | Vbool false -> 0
  | v -> py_error "TypeError" "expected an int, got %s" (type_name v)

let install ~output ~charge_time ~charge_bytes (ns : namespace) =
  ignore charge_time;
  let def name f = Hashtbl.replace ns name (Vbuiltin { bname = name; bcall = f }) in
  let alloc v =
    charge_bytes (bytes_of_alloc v);
    v
  in

  def "print" (fun args kwargs ->
      let sep =
        match List.assoc_opt "sep" kwargs with
        | Some (Vstr s) -> s
        | Some v -> py_error "TypeError" "sep must be str, not %s" (type_name v)
        | None -> " "
      in
      let end_ =
        match List.assoc_opt "end" kwargs with
        | Some (Vstr s) -> s
        | Some Vnone | None -> "\n"
        | Some v -> py_error "TypeError" "end must be str, not %s" (type_name v)
      in
      output (String.concat sep (List.map to_display args) ^ end_);
      Vnone);

  def "len" (fun args _ ->
      match args with
      | [ Vstr s ] -> Vint (String.length s)
      | [ Vlist l ] -> Vint (Array.length l.items)
      | [ Vtuple a ] -> Vint (Array.length a)
      | [ Vdict d ] -> Vint (List.length d.pairs)
      | [ v ] -> py_error "TypeError" "object of type '%s' has no len()" (type_name v)
      | _ -> py_error "TypeError" "len() takes exactly one argument");

  def "range" (fun args _ ->
      let lo, hi, step =
        match args with
        | [ n ] -> (0, as_int n, 1)
        | [ a; b ] -> (as_int a, as_int b, 1)
        | [ a; b; c ] -> (as_int a, as_int b, as_int c)
        | _ -> py_error "TypeError" "range expected 1 to 3 arguments"
      in
      if step = 0 then py_error "ValueError" "range() arg 3 must not be zero";
      let count =
        if step > 0 then max 0 ((hi - lo + step - 1) / step)
        else max 0 ((lo - hi - step - 1) / -step)
      in
      alloc (Vlist { items = Array.init count (fun i -> Vint (lo + (i * step))) }));

  def "str" (fun args _ ->
      match args with
      | [] -> Vstr ""
      | [ v ] -> alloc (Vstr (to_display v))
      | _ -> py_error "TypeError" "str() takes at most one argument");

  def "repr" (fun args _ ->
      match args with
      | [ v ] -> alloc (Vstr (to_repr v))
      | _ -> py_error "TypeError" "repr() takes one argument");

  def "int" (fun args _ ->
      match args with
      | [ Vint i ] -> Vint i
      | [ Vfloat f ] -> Vint (int_of_float f)
      | [ Vbool b ] -> Vint (if b then 1 else 0)
      | [ Vstr s ] ->
        (match int_of_string_opt (String.trim s) with
         | Some i -> Vint i
         | None ->
           py_error "ValueError" "invalid literal for int() with base 10: '%s'" s)
      | [ v ] -> py_error "TypeError" "int() argument must be a number, not '%s'"
                   (type_name v)
      | _ -> py_error "TypeError" "int() takes one argument");

  def "float" (fun args _ ->
      match args with
      | [ Vint i ] -> Vfloat (float_of_int i)
      | [ Vfloat f ] -> Vfloat f
      | [ Vstr s ] ->
        (match float_of_string_opt (String.trim s) with
         | Some f -> Vfloat f
         | None -> py_error "ValueError" "could not convert string to float: '%s'" s)
      | _ -> py_error "TypeError" "float() takes one numeric argument");

  def "bool" (fun args _ ->
      match args with
      | [] -> Vbool false
      | [ v ] -> Vbool (truthy v)
      | _ -> py_error "TypeError" "bool() takes at most one argument");

  def "abs" (fun args _ ->
      match args with
      | [ Vint i ] -> Vint (abs i)
      | [ Vfloat f ] -> Vfloat (Float.abs f)
      | _ -> py_error "TypeError" "bad operand type for abs()");

  def "round" (fun args _ ->
      match args with
      | [ Vfloat f ] -> Vint (int_of_float (Float.round f))
      | [ Vint i ] -> Vint i
      | [ Vfloat f; Vint digits ] ->
        let m = Float.pow 10.0 (float_of_int digits) in
        Vfloat (Float.round (f *. m) /. m)
      | _ -> py_error "TypeError" "round: bad arguments");

  def "min" (fun args _ ->
      let vs = match args with
        | [ single ] -> iterable_values single
        | [] -> py_error "TypeError" "min expected at least 1 argument"
        | many -> many
      in
      (match vs with
       | [] -> py_error "ValueError" "min() arg is an empty sequence"
       | first :: rest ->
         List.fold_left (fun acc v -> if compare_values v acc < 0 then v else acc)
           first rest));

  def "max" (fun args _ ->
      let vs = match args with
        | [ single ] -> iterable_values single
        | [] -> py_error "TypeError" "max expected at least 1 argument"
        | many -> many
      in
      (match vs with
       | [] -> py_error "ValueError" "max() arg is an empty sequence"
       | first :: rest ->
         List.fold_left (fun acc v -> if compare_values v acc > 0 then v else acc)
           first rest));

  def "sum" (fun args _ ->
      match args with
      | [ v ] ->
        List.fold_left
          (fun acc v ->
             match acc, v with
             | Vint a, Vint b -> Vint (a + b)
             | (Vint _ | Vfloat _), (Vint _ | Vfloat _) ->
               let f = function
                 | Vint i -> float_of_int i
                 | Vfloat f -> f
                 | _ -> assert false
               in
               Vfloat (f acc +. f v)
             | _ -> py_error "TypeError" "unsupported operand type(s) for +")
          (Vint 0) (iterable_values v)
      | _ -> py_error "TypeError" "sum() takes one argument");

  def "sorted" (fun args _ ->
      match args with
      | [ v ] ->
        let arr = Array.of_list (iterable_values v) in
        Array.sort compare_values arr;
        alloc (Vlist { items = arr })
      | _ -> py_error "TypeError" "sorted() takes one argument");

  def "list" (fun args _ ->
      match args with
      | [] -> alloc (Vlist { items = [||] })
      | [ v ] -> alloc (Vlist { items = Array.of_list (iterable_values v) })
      | _ -> py_error "TypeError" "list() takes at most one argument");

  def "tuple" (fun args _ ->
      match args with
      | [] -> alloc (Vtuple [||])
      | [ v ] -> alloc (Vtuple (Array.of_list (iterable_values v)))
      | _ -> py_error "TypeError" "tuple() takes at most one argument");

  def "dict" (fun args kwargs ->
      match args with
      | [] ->
        let d = { pairs = List.map (fun (k, v) -> (Vstr k, v)) kwargs } in
        alloc (Vdict d)
      | [ Vdict d ] -> alloc (Vdict { pairs = d.pairs })
      | _ -> py_error "TypeError" "dict() takes keyword arguments");

  def "enumerate" (fun args _ ->
      match args with
      | [ v ] ->
        let items =
          List.mapi (fun i x -> Vtuple [| Vint i; x |]) (iterable_values v)
        in
        alloc (Vlist { items = Array.of_list items })
      | _ -> py_error "TypeError" "enumerate() takes one argument");

  def "zip" (fun args _ ->
      let lists = List.map iterable_values args in
      let rec go lists acc =
        if List.exists (fun l -> l = []) lists || lists = [] then List.rev acc
        else
          let heads = List.map List.hd lists in
          go (List.map List.tl lists) (Vtuple (Array.of_list heads) :: acc)
      in
      alloc (Vlist { items = Array.of_list (go lists []) }));

  def "type" (fun args _ ->
      match args with
      | [ v ] -> Vstr (type_name v)
      | _ -> py_error "TypeError" "type() takes one argument");

  def "isinstance" (fun args _ ->
      match args with
      | [ v; Vclass c ] ->
        (match v with
         | Vinstance i -> Vbool (is_subclass i.icls c.cname)
         | _ -> Vbool false)
      | [ v; Vbuiltin b ] ->
        (* isinstance(x, str/int/...) where the builtin constructor stands in *)
        Vbool (String.equal (type_name v) b.bname
               || (b.bname = "int" && type_name v = "bool"))
      | _ -> py_error "TypeError" "isinstance: bad arguments");

  def "hasattr" (fun args _ ->
      match args with
      | [ Vmodule m; Vstr name ] -> Vbool (Hashtbl.mem m.mattrs name)
      | [ Vinstance i; Vstr name ] ->
        Vbool (Hashtbl.mem i.iattrs name || class_lookup i.icls name <> None)
      | [ Vclass c; Vstr name ] -> Vbool (class_lookup c name <> None)
      | [ _; Vstr _ ] -> Vbool false
      | _ -> py_error "TypeError" "hasattr: bad arguments");

  List.iter
    (fun exc_name ->
       def exc_name (fun args _ ->
           let msg =
             match args with
             | [] -> ""
             | [ v ] -> to_display v
             | vs -> String.concat ", " (List.map to_display vs)
           in
           Vexc { exc_class = exc_name; exc_msg = msg }))
    exception_names
