(* Tokens produced by the indentation-aware lexer. *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Name of string
  | Keyword of string   (* one of [keywords] below *)
  | Op of string        (* operators and punctuation *)
  | Newline
  | Indent
  | Dedent
  | Eof

let keywords =
  [ "def"; "class"; "return"; "if"; "elif"; "else"; "while"; "for"; "in";
    "import"; "from"; "as"; "pass"; "break"; "continue"; "raise"; "try";
    "except"; "finally"; "and"; "or"; "not"; "True"; "False"; "None";
    "lambda"; "global"; "del"; "assert"; "with" ]

let is_keyword s = List.mem s keywords

let pp ppf = function
  | Int i -> Fmt.pf ppf "INT(%d)" i
  | Float f -> Fmt.pf ppf "FLOAT(%g)" f
  | Str s -> Fmt.pf ppf "STR(%S)" s
  | Name s -> Fmt.pf ppf "NAME(%s)" s
  | Keyword s -> Fmt.pf ppf "KW(%s)" s
  | Op s -> Fmt.pf ppf "OP(%s)" s
  | Newline -> Fmt.pf ppf "NEWLINE"
  | Indent -> Fmt.pf ppf "INDENT"
  | Dedent -> Fmt.pf ppf "DEDENT"
  | Eof -> Fmt.pf ppf "EOF"

let to_string t = Fmt.str "%a" pp t

let equal (a : t) (b : t) = a = b
