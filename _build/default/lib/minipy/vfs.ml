(* In-memory virtual filesystem holding a serverless application image:
   the handler file plus a site-packages tree of library sources.

   Paths are '/'-separated, relative, e.g. "site-packages/torch/__init__.py".
   The debloater copies the vfs, rewrites files, and re-runs the app, which
   mirrors λ-trim's manipulation of the real site-packages directory (§7). *)

type t = {
  files : (string, string) Hashtbl.t;
  (* phantom entries: binary payloads (shared objects, model weights)
     represented by size only — they contribute to the image footprint but
     are never read as source *)
  phantoms : (string, int) Hashtbl.t;
}

let create () = { files = Hashtbl.create 64; phantoms = Hashtbl.create 4 }

let add_file t path content = Hashtbl.replace t.files path content

let add_phantom t path ~bytes = Hashtbl.replace t.phantoms path bytes

let remove_file t path = Hashtbl.remove t.files path

let read t path = Hashtbl.find_opt t.files path

let read_exn t path =
  match read t path with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Vfs.read_exn: no such file %S" path)

let exists t path = Hashtbl.mem t.files path

let copy t =
  let t' = create () in
  Hashtbl.iter (fun p c -> Hashtbl.replace t'.files p c) t.files;
  Hashtbl.iter (fun p b -> Hashtbl.replace t'.phantoms p b) t.phantoms;
  t'

let paths t = Hashtbl.fold (fun p _ acc -> p :: acc) t.files [] |> List.sort compare

let file_count t = Hashtbl.length t.files

(* Total image size in bytes: source plus a per-file packaging overhead
   standing in for bytecode caches and package metadata. *)
let image_bytes t =
  Hashtbl.fold (fun _ c acc -> acc + String.length c + 512) t.files 0
  + Hashtbl.fold (fun _ b acc -> acc + b) t.phantoms 0

let image_mb t = float_of_int (image_bytes t) /. (1024.0 *. 1024.0)

(* Paths under a directory prefix, e.g. files_under t "site-packages/torch". *)
let files_under t prefix =
  let prefix = if String.length prefix > 0 then prefix ^ "/" else prefix in
  List.filter (fun p -> String.length p >= String.length prefix
                        && String.sub p 0 (String.length prefix) = prefix)
    (paths t)
