(* JSON encoding/decoding between minipy values and text — backing the
   builtin [json] module (serverless events and responses are JSON). *)

open Value

exception Decode_error of string

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec dumps (v : value) : string =
  match v with
  | Vnone -> "null"
  | Vbool true -> "true"
  | Vbool false -> "false"
  | Vint i -> string_of_int i
  | Vfloat f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%.12g" f
  | Vstr s -> "\"" ^ escape s ^ "\""
  | Vlist l ->
    "[" ^ String.concat ", " (Array.to_list (Array.map dumps l.items)) ^ "]"
  | Vtuple a ->
    "[" ^ String.concat ", " (Array.to_list (Array.map dumps a)) ^ "]"
  | Vdict d ->
    let pair (k, v) =
      match k with
      | Vstr s -> "\"" ^ escape s ^ "\": " ^ dumps v
      | other ->
        py_error "TypeError" "keys must be str, got %s" (type_name other)
    in
    "{" ^ String.concat ", " (List.map pair d.pairs) ^ "}"
  | (Vfunc _ | Vbuiltin _ | Vclass _ | Vinstance _ | Vmodule _ | Vexc _) as v ->
    py_error "TypeError" "Object of type %s is not JSON serializable"
      (type_name v)

(* --- decoder ------------------------------------------------------------- *)

type dstate = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') -> st.pos <- st.pos + 1; skip_ws st
  | _ -> ()

let fail st msg =
  raise (Decode_error (Printf.sprintf "%s at offset %d" msg st.pos))

let expect st c =
  if peek st = Some c then st.pos <- st.pos + 1
  else fail st (Printf.sprintf "expected %C" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin st.pos <- st.pos + n; v end
  else fail st (Printf.sprintf "expected %s" word)

let decode_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      st.pos <- st.pos + 1;
      (match peek st with
       | Some 'n' -> Buffer.add_char buf '\n'
       | Some 't' -> Buffer.add_char buf '\t'
       | Some 'r' -> Buffer.add_char buf '\r'
       | Some '"' -> Buffer.add_char buf '"'
       | Some '\\' -> Buffer.add_char buf '\\'
       | Some '/' -> Buffer.add_char buf '/'
       | Some 'u' ->
         (* decode BMP escapes as a single byte when <256, else '?' *)
         if st.pos + 4 >= String.length st.src then fail st "bad \\u escape";
         let hex = String.sub st.src (st.pos + 1) 4 in
         (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 256 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> Buffer.add_char buf '?'
          | None -> fail st "bad \\u escape");
         st.pos <- st.pos + 4
       | _ -> fail st "bad escape");
      st.pos <- st.pos + 1;
      go ()
    | Some c -> Buffer.add_char buf c; st.pos <- st.pos + 1; go ()
  in
  go ();
  Buffer.contents buf

let decode_number st =
  let start = st.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  while (match peek st with Some c when is_num_char c -> true | _ -> false) do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> Vint i
  | None ->
    (match float_of_string_opt text with
     | Some f -> Vfloat f
     | None -> fail st "invalid number")

let rec decode_value st : value =
  skip_ws st;
  match peek st with
  | Some 'n' -> literal st "null" Vnone
  | Some 't' -> literal st "true" (Vbool true)
  | Some 'f' -> literal st "false" (Vbool false)
  | Some '"' -> Vstr (decode_string st)
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin st.pos <- st.pos + 1; Vlist { items = [||] } end
    else begin
      let items = ref [] in
      let rec go () =
        items := decode_value st :: !items;
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1; go ()
        | Some ']' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or ']'"
      in
      go ();
      Vlist { items = Array.of_list (List.rev !items) }
    end
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin st.pos <- st.pos + 1; Vdict { pairs = [] } end
    else begin
      let pairs = ref [] in
      let rec go () =
        skip_ws st;
        let k = decode_string st in
        skip_ws st;
        expect st ':';
        let v = decode_value st in
        pairs := (Vstr k, v) :: !pairs;
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1; go ()
        | Some '}' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or '}'"
      in
      go ();
      Vdict { pairs = List.rev !pairs }
    end
  | Some _ -> decode_number st
  | None -> fail st "unexpected end of input"

let loads (s : string) : value =
  let st = { src = s; pos = 0 } in
  let v = decode_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v
