(** Module path resolution against the virtual filesystem.

    Search order mirrors a Lambda image: the application root first, then
    site-packages. A dotted path resolves each component in turn; packages
    are directories containing [__init__.py], plain modules are [.py] files. *)

type resolution =
  | Package of string  (** vfs path of the package's [__init__.py] *)
  | Module of string   (** vfs path of the module's [.py] file *)
  | Not_found

val search_roots : string list

val resolve : Vfs.t -> string list -> resolution

(** All dotted prefixes: [a.b.c] gives [[a]; [a;b]; [a;b;c]] — the import
    order CPython (and this interpreter) uses. *)
val prefixes : string list -> string list list

val dotted : Ast.dotted -> string

(** The file defining [module_name]'s namespace — the file the debloater
    rewrites — if the module is file-backed. *)
val init_file_of : Vfs.t -> string -> string option
