(* Abstract syntax for the minipy subset.

   The subset covers everything the λ-trim pipeline needs: module-level
   statements that build a namespace (imports, from-imports, defs, classes,
   assignments), plus enough expression/control-flow forms to write realistic
   handlers and library initialization code. *)

type binop =
  | Add | Sub | Mul | Div | FloorDiv | Mod | Pow
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | In | NotIn

type unop = Neg | Not | Pos

type const =
  | Cint of int
  | Cfloat of float
  | Cstr of string
  | Cbool of bool
  | Cnone

type expr = {
  desc : expr_desc;
  eloc : Loc.t;
}

and expr_desc =
  | Const of const
  | Name of string
  | Attr of expr * string                     (* e.attr *)
  | Subscript of expr * expr                  (* e[k] *)
  | Call of expr * expr list * (string * expr) list  (* f(args, kw=...) *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | ListLit of expr list
  | TupleLit of expr list
  | DictLit of (expr * expr) list
  | Lambda of string list * expr
  | IfExp of expr * expr * expr               (* a if cond else b *)
  | Slice of expr * expr option * expr option (* e[a:b] *)
  | ListComp of comp                          (* [elt for var in iter if cond] *)
  | DictComp of dict_comp                     (* {k: v for var in iter if cond} *)

and comp = {
  celt : expr;
  cvar : target;
  citer : expr;
  ccond : expr option;
}

and dict_comp = {
  dckey : expr;
  dcval : expr;
  dcvar : target;
  dciter : expr;
  dccond : expr option;
}

and target =
  | Tname of string
  | Tattr of expr * string
  | Tsubscript of expr * expr
  | Ttuple of target list

(* Imported dotted module path, e.g. ["torch"; "nn"]. *)
type dotted = string list

type param = { pname : string; pdefault : expr option }

type stmt = {
  sdesc : stmt_desc;
  sloc : Loc.t;
}

and stmt_desc =
  | Expr_stmt of expr
  | Assign of target * expr
  | AugAssign of target * binop * expr        (* x += e *)
  | Import of dotted * string option          (* import a.b [as c] *)
  | From_import of from_clause * (string * string option) list
      (* from [.]*a.b import x [as y], z — names with optional aliases;
         fc_level counts leading dots (0 = absolute import) *)
  | Def of def
  | Class of cls
  | Return of expr option
  | If of (expr * stmt list) list * stmt list (* if/elif chain, else block *)
  | While of expr * stmt list
  | For of target * expr * stmt list
  | Try of stmt list * handler list * stmt list  (* try/except*/finally *)
  | Raise of expr option
  | Pass
  | Break
  | Continue
  | Global of string list
  | Del of target
  | Assert of expr * expr option

and from_clause = {
  fc_level : int;   (* leading dots: 0 absolute, 1 current package, ... *)
  fc_path : dotted; (* may be empty for `from . import x` *)
}

and def = {
  dname : string;
  dparams : param list;
  dbody : stmt list;
}

and cls = {
  cname : string;
  cbases : expr list;
  cbody : stmt list;
}

and handler = {
  hexc : string option;       (* exception class name; None = bare except *)
  hbind : string option;      (* except E as x *)
  hbody : stmt list;
}

type program = stmt list

let dotted_to_string (d : dotted) = String.concat "." d

(* Constructors used by tests and generators. *)
let e ?(loc = Loc.dummy) desc = { desc; eloc = loc }
let s ?(loc = Loc.dummy) sdesc = { sdesc; sloc = loc }

let const_equal (a : const) (b : const) =
  match a, b with
  | Cfloat x, Cfloat y -> x = y || (Float.is_nan x && Float.is_nan y)
  | _ -> a = b

(* Structural equality ignoring locations — used by round-trip tests. *)
let rec expr_equal (a : expr) (b : expr) =
  match a.desc, b.desc with
  | Const x, Const y -> const_equal x y
  | Name x, Name y -> String.equal x y
  | Attr (e1, a1), Attr (e2, a2) -> expr_equal e1 e2 && String.equal a1 a2
  | Subscript (e1, k1), Subscript (e2, k2) -> expr_equal e1 e2 && expr_equal k1 k2
  | Call (f1, a1, k1), Call (f2, a2, k2) ->
    expr_equal f1 f2 && exprs_equal a1 a2
    && List.length k1 = List.length k2
    && List.for_all2
         (fun (n1, e1) (n2, e2) -> String.equal n1 n2 && expr_equal e1 e2)
         k1 k2
  | Binop (o1, l1, r1), Binop (o2, l2, r2) ->
    o1 = o2 && expr_equal l1 l2 && expr_equal r1 r2
  | Unop (o1, e1), Unop (o2, e2) -> o1 = o2 && expr_equal e1 e2
  | ListLit l1, ListLit l2 | TupleLit l1, TupleLit l2 -> exprs_equal l1 l2
  | DictLit l1, DictLit l2 ->
    List.length l1 = List.length l2
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> expr_equal k1 k2 && expr_equal v1 v2)
         l1 l2
  | Lambda (p1, b1), Lambda (p2, b2) -> p1 = p2 && expr_equal b1 b2
  | IfExp (c1, t1, f1), IfExp (c2, t2, f2) ->
    expr_equal c1 c2 && expr_equal t1 t2 && expr_equal f1 f2
  | Slice (b1, l1, h1), Slice (b2, l2, h2) ->
    expr_equal b1 b2 && Option.equal expr_equal l1 l2
    && Option.equal expr_equal h1 h2
  | ListComp c1, ListComp c2 ->
    expr_equal c1.celt c2.celt && target_equal c1.cvar c2.cvar
    && expr_equal c1.citer c2.citer
    && Option.equal expr_equal c1.ccond c2.ccond
  | DictComp c1, DictComp c2 ->
    expr_equal c1.dckey c2.dckey && expr_equal c1.dcval c2.dcval
    && target_equal c1.dcvar c2.dcvar && expr_equal c1.dciter c2.dciter
    && Option.equal expr_equal c1.dccond c2.dccond
  | ( ( Const _ | Name _ | Attr _ | Subscript _ | Call _ | Binop _ | Unop _
      | ListLit _ | TupleLit _ | DictLit _ | Lambda _ | IfExp _ | Slice _
      | ListComp _ | DictComp _ ),
      _ ) -> false

and exprs_equal l1 l2 =
  List.length l1 = List.length l2 && List.for_all2 expr_equal l1 l2

and target_equal (a : target) (b : target) =
  match a, b with
  | Tname x, Tname y -> String.equal x y
  | Tattr (e1, a1), Tattr (e2, a2) -> expr_equal e1 e2 && String.equal a1 a2
  | Tsubscript (e1, k1), Tsubscript (e2, k2) ->
    expr_equal e1 e2 && expr_equal k1 k2
  | Ttuple l1, Ttuple l2 ->
    List.length l1 = List.length l2 && List.for_all2 target_equal l1 l2
  | (Tname _ | Tattr _ | Tsubscript _ | Ttuple _), _ -> false

let rec stmt_equal (a : stmt) (b : stmt) =
  match a.sdesc, b.sdesc with
  | Expr_stmt e1, Expr_stmt e2 -> expr_equal e1 e2
  | Assign (t1, e1), Assign (t2, e2) -> target_equal t1 t2 && expr_equal e1 e2
  | AugAssign (t1, o1, e1), AugAssign (t2, o2, e2) ->
    target_equal t1 t2 && o1 = o2 && expr_equal e1 e2
  | Import (d1, a1), Import (d2, a2) -> d1 = d2 && a1 = a2
  | From_import (c1, n1), From_import (c2, n2) -> c1 = c2 && n1 = n2
  | Def d1, Def d2 ->
    String.equal d1.dname d2.dname
    && List.length d1.dparams = List.length d2.dparams
    && List.for_all2 param_equal d1.dparams d2.dparams
    && stmts_equal d1.dbody d2.dbody
  | Class c1, Class c2 ->
    String.equal c1.cname c2.cname
    && exprs_equal c1.cbases c2.cbases
    && stmts_equal c1.cbody c2.cbody
  | Return e1, Return e2 -> Option.equal expr_equal e1 e2
  | If (br1, el1), If (br2, el2) ->
    List.length br1 = List.length br2
    && List.for_all2
         (fun (c1, b1) (c2, b2) -> expr_equal c1 c2 && stmts_equal b1 b2)
         br1 br2
    && stmts_equal el1 el2
  | While (c1, b1), While (c2, b2) -> expr_equal c1 c2 && stmts_equal b1 b2
  | For (t1, e1, b1), For (t2, e2, b2) ->
    target_equal t1 t2 && expr_equal e1 e2 && stmts_equal b1 b2
  | Try (b1, h1, f1), Try (b2, h2, f2) ->
    stmts_equal b1 b2
    && List.length h1 = List.length h2
    && List.for_all2 handler_equal h1 h2
    && stmts_equal f1 f2
  | Raise e1, Raise e2 -> Option.equal expr_equal e1 e2
  | Pass, Pass | Break, Break | Continue, Continue -> true
  | Global n1, Global n2 -> n1 = n2
  | Del t1, Del t2 -> target_equal t1 t2
  | Assert (e1, m1), Assert (e2, m2) ->
    expr_equal e1 e2 && Option.equal expr_equal m1 m2
  | ( ( Expr_stmt _ | Assign _ | AugAssign _ | Import _ | From_import _
      | Def _ | Class _ | Return _ | If _ | While _ | For _ | Try _ | Raise _
      | Pass | Break | Continue | Global _ | Del _ | Assert _ ),
      _ ) -> false

and param_equal (p1 : param) (p2 : param) =
  String.equal p1.pname p2.pname && Option.equal expr_equal p1.pdefault p2.pdefault

and handler_equal (h1 : handler) (h2 : handler) =
  h1.hexc = h2.hexc && h1.hbind = h2.hbind && stmts_equal h1.hbody h2.hbody

and stmts_equal l1 l2 =
  List.length l1 = List.length l2 && List.for_all2 stmt_equal l1 l2

let program_equal = stmts_equal
