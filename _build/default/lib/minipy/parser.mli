(** Recursive-descent parser for minipy.

    Precedence (low to high): lambda < ternary < or < and < not < comparison
    < +,- < *,/,//,% < unary -,+ < ** < trailers (call, attribute, subscript,
    slice) < atom. *)

exception Error of string * Loc.t

(** Parse a whole module. [file] is used in locations and error messages. *)
val parse : file:string -> string -> Ast.program

(** Parse a single expression (test-case events are expression sources). *)
val parse_expression : file:string -> string -> Ast.expr
