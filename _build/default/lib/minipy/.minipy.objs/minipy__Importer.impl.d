lib/minipy/importer.ml: Ast List String Vfs
