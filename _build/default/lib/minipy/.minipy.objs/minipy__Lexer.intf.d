lib/minipy/lexer.mli: Loc Token
