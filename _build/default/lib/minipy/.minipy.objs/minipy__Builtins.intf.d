lib/minipy/builtins.mli: Value
