lib/minipy/parser.ml: Array Ast Fmt Lexer List Loc String Token
