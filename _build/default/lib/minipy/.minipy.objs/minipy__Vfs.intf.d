lib/minipy/vfs.mli:
