lib/minipy/builtins.ml: Array Float Hashtbl List String Value
