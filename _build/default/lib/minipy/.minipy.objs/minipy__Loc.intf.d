lib/minipy/loc.mli: Format
