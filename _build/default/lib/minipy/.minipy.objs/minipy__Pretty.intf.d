lib/minipy/pretty.mli: Ast
