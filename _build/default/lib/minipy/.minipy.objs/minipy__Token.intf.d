lib/minipy/token.mli: Format
