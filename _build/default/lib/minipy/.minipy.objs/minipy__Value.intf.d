lib/minipy/value.mli: Ast Format Hashtbl
