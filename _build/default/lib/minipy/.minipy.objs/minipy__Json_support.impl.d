lib/minipy/json_support.ml: Array Buffer Char Float List Printf String Value
