lib/minipy/vfs.ml: Hashtbl List Printf String
