lib/minipy/interp.mli: Ast Buffer Hashtbl Value Vfs
