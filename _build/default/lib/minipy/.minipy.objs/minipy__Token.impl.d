lib/minipy/token.ml: Fmt List
