lib/minipy/json_support.mli: Value
