lib/minipy/ast.ml: Float List Loc Option String
