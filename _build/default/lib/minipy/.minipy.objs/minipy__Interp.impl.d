lib/minipy/interp.ml: Array Ast Buffer Builtins Float Hashtbl Importer Json_support Lexer List Loc Option Parser Pretty Printf String Value Vfs
