lib/minipy/loc.ml: Fmt
