lib/minipy/lexer.ml: Buffer Fmt List Loc Printf String Token
