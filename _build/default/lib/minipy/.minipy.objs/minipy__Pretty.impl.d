lib/minipy/pretty.ml: Ast Buffer List Printf String
