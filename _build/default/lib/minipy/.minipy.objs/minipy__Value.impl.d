lib/minipy/value.ml: Array Ast Float Fmt Hashtbl List Option Printf String
