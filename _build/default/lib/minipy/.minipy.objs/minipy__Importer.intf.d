lib/minipy/importer.mli: Ast Vfs
