lib/minipy/ast.mli: Loc
