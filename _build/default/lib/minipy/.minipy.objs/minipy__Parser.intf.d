lib/minipy/parser.mli: Ast Loc
