(* Indentation-aware lexer for the minipy subset.

   Follows the CPython tokenizer structure: a stack of indentation levels
   producing Indent/Dedent tokens, implicit line joining inside brackets,
   '#' comments, and '\'-continued lines. *)

exception Error of string * Loc.t

type state = {
  src : string;
  file : string;
  mutable pos : int;          (* byte offset *)
  mutable line : int;
  mutable bol : int;          (* offset of beginning of current line *)
  mutable indents : int list; (* stack, head = current level *)
  mutable paren_depth : int;
  mutable pending : (Token.t * Loc.t) list; (* queued tokens (dedents) *)
  mutable at_line_start : bool;
  mutable emitted_eof : bool;
}

let make ~file src =
  { src; file; pos = 0; line = 1; bol = 0; indents = [ 0 ]; paren_depth = 0;
    pending = []; at_line_start = true; emitted_eof = false }

let loc st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol)

let error st msg = raise (Error (msg, loc st))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st = st.pos <- st.pos + 1

let newline st =
  st.line <- st.line + 1;
  st.bol <- st.pos

let is_digit c = c >= '0' && c <= '9'
let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_name_char c = is_name_start c || is_digit c

(* Skip spaces and comments within a logical line (not indentation). *)
let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t') -> advance st; skip_trivia st
  | Some '#' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ -> advance st; to_eol ()
    in
    to_eol (); skip_trivia st
  | Some '\\' when peek2 st = Some '\n' ->
    advance st; advance st; newline st; skip_trivia st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  let rec digits () =
    match peek st with Some c when is_digit c -> advance st; digits () | _ -> ()
  in
  digits ();
  let is_float =
    match peek st with
    | Some '.' when (match peek2 st with Some c -> is_digit c | None -> false) ->
      advance st; digits (); true
    | Some '.' when not (match peek2 st with Some c -> is_name_start c | None -> false) ->
      (* "1." literal *)
      advance st; digits (); true
    | _ -> false
  in
  let is_float =
    match peek st with
    | Some ('e' | 'E') ->
      let save = st.pos in
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      (match peek st with
       | Some c when is_digit c -> digits (); true
       | _ -> st.pos <- save; is_float)
    | _ -> is_float
  in
  let text = String.sub st.src start (st.pos - start) in
  if is_float then Token.Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Token.Int i
    | None -> error st (Fmt.str "invalid integer literal %S" text)

let lex_string st quote =
  advance st;
  (* triple-quoted? *)
  let triple = peek st = Some quote && peek2 st = Some quote in
  if triple then begin advance st; advance st end;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '\\' ->
      advance st;
      (match peek st with
       | None -> error st "unterminated string literal"
       | Some c ->
         advance st;
         let decoded =
           match c with
           | 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r'
           | '\\' -> '\\' | '\'' -> '\'' | '"' -> '"' | '0' -> '\000'
           | '\n' -> newline st; '\255' (* marker: skip *)
           | other -> Buffer.add_char buf '\\'; other
         in
         if decoded <> '\255' then Buffer.add_char buf decoded;
         go ())
    | Some c when c = quote ->
      if triple then begin
        if peek2 st = Some quote
           && (st.pos + 2 < String.length st.src && st.src.[st.pos + 2] = quote)
        then begin advance st; advance st; advance st end
        else begin advance st; Buffer.add_char buf c; go () end
      end
      else advance st
    | Some '\n' when not triple -> error st "newline in string literal"
    | Some '\n' ->
      advance st; newline st; Buffer.add_char buf '\n'; go ()
    | Some c -> advance st; Buffer.add_char buf c; go ()
  in
  go ();
  Token.Str (Buffer.contents buf)

let two_char_ops =
  [ "=="; "!="; "<="; ">="; "**"; "//"; "->"; "+="; "-="; "*="; "/="; "%=" ]

let one_char_ops = "+-*/%<>=.,:()[]{}@;"

let lex_operator st =
  let c = match peek st with Some c -> c | None -> assert false in
  let pair =
    match peek2 st with
    | Some c2 -> Printf.sprintf "%c%c" c c2
    | None -> ""
  in
  if List.mem pair two_char_ops then begin
    advance st; advance st; Token.Op pair
  end
  else if String.contains one_char_ops c then begin
    (match c with
     | '(' | '[' | '{' -> st.paren_depth <- st.paren_depth + 1
     | ')' | ']' | '}' -> st.paren_depth <- max 0 (st.paren_depth - 1)
     | _ -> ());
    advance st; Token.Op (String.make 1 c)
  end
  else error st (Fmt.str "unexpected character %C" c)

(* Measure indentation at line start; handle blank lines and comments by
   consuming them entirely. Returns [Some width] if the line has content. *)
let rec measure_indent st =
  let start = st.pos in
  let rec spaces n =
    match peek st with
    | Some ' ' -> advance st; spaces (n + 1)
    | Some '\t' -> advance st; spaces (n + 8 - (n mod 8))
    | _ -> n
  in
  let width = spaces 0 in
  match peek st with
  | Some '\n' -> advance st; newline st; measure_indent st
  | Some '#' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' -> advance st; newline st
      | None -> ()
      | Some _ -> advance st; to_eol ()
    in
    to_eol (); measure_indent st
  | None -> ignore start; None
  | Some _ -> Some width

let rec next st : Token.t * Loc.t =
  match st.pending with
  | tok :: rest -> st.pending <- rest; tok
  | [] ->
    if st.emitted_eof then (Token.Eof, loc st)
    else if st.at_line_start && st.paren_depth = 0 then handle_line_start st
    else lex_token st

and handle_line_start st =
  st.at_line_start <- false;
  match measure_indent st with
  | None ->
    (* EOF: close all open indents *)
    let l = loc st in
    let dedents =
      List.filter_map
        (fun lvl -> if lvl > 0 then Some (Token.Dedent, l) else None)
        st.indents
    in
    st.indents <- [ 0 ];
    st.emitted_eof <- true;
    (match dedents with
     | [] -> (Token.Eof, l)
     | d :: rest -> st.pending <- rest @ [ (Token.Eof, l) ]; d)
  | Some width ->
    let current = match st.indents with lvl :: _ -> lvl | [] -> 0 in
    if width > current then begin
      st.indents <- width :: st.indents;
      (Token.Indent, loc st)
    end
    else if width < current then begin
      let rec pop acc = function
        | lvl :: rest when lvl > width -> pop ((Token.Dedent, loc st) :: acc) rest
        | (lvl :: _) as stack ->
          if lvl <> width then error st "inconsistent dedent";
          (acc, stack)
        | [] -> error st "inconsistent dedent"
      in
      let dedents, stack = pop [] st.indents in
      st.indents <- stack;
      match dedents with
      | d :: rest -> st.pending <- rest; d
      | [] -> assert false
    end
    else lex_token st

and lex_token st =
  skip_trivia st;
  let l = loc st in
  match peek st with
  | None ->
    st.at_line_start <- true;
    if st.paren_depth > 0 then error st "unclosed bracket at end of file";
    (* emit a final Newline then let line-start logic close indents *)
    (Token.Newline, l)
  | Some '\n' ->
    advance st; newline st;
    if st.paren_depth > 0 then lex_token st
    else begin
      st.at_line_start <- true;
      (Token.Newline, l)
    end
  | Some c when is_digit c -> (lex_number st, l)
  | Some ('"' | '\'') as q ->
    let quote = match q with Some q -> q | None -> assert false in
    (lex_string st quote, l)
  | Some c when is_name_start c ->
    let start = st.pos in
    let rec go () =
      match peek st with
      | Some c when is_name_char c -> advance st; go ()
      | _ -> ()
    in
    go ();
    let text = String.sub st.src start (st.pos - start) in
    if Token.is_keyword text then (Token.Keyword text, l) else (Token.Name text, l)
  | Some _ -> (lex_operator st, l)

(* Tokenize a whole source string. The stream always ends with Eof; a Newline
   precedes the Eof when the file does not end in one. *)
let tokenize ~file src =
  let st = make ~file src in
  let rec go acc =
    let ((tok, _) as t) = next st in
    if tok = Token.Eof then List.rev (t :: acc) else go (t :: acc)
  in
  go []
