(** Builtin functions and exception constructors installed into every
    interpreter: [print], [len], [range], conversions, aggregates, [sorted],
    container constructors, [enumerate]/[zip], [type]/[isinstance]/[hasattr],
    and one constructor per exception class in {!exception_names} (raising
    builds a [Vexc] matched by name in [except] clauses). *)

(** Exception classes known to [except] matching; ["Exception"] catches all. *)
val exception_names : string list

val iterable_values : Value.value -> Value.value list

(** @raise Value.Py_error ([TypeError]) on non-integers. *)
val as_int : Value.value -> int

(** Install the builtins into a namespace. [output] receives [print]ed text;
    [charge_time]/[charge_bytes] connect allocations to the interpreter's
    virtual-resource ledger. *)
val install :
  output:(string -> unit) ->
  charge_time:(float -> unit) ->
  charge_bytes:(int -> unit) ->
  Value.namespace ->
  unit
