(** In-memory virtual filesystem holding a serverless application image: the
    handler file plus a site-packages tree of library sources.

    Paths are '/'-separated and relative, e.g.
    ["site-packages/torch/__init__.py"]. The debloater copies the vfs,
    rewrites files, and re-runs the app — mirroring λ-trim's manipulation of
    the real site-packages directory (§7). *)

type t

val create : unit -> t
val add_file : t -> string -> string -> unit

(** Register a binary payload (shared object, model weights) by size only:
    it contributes to the image footprint but is never read as source. *)
val add_phantom : t -> string -> bytes:int -> unit

val remove_file : t -> string -> unit
val read : t -> string -> string option

(** @raise Invalid_argument when the path is absent. *)
val read_exn : t -> string -> string

val exists : t -> string -> bool

(** A deep copy sharing no mutable state. *)
val copy : t -> t

(** Source paths, sorted (phantoms excluded). *)
val paths : t -> string list

val file_count : t -> int

(** Image size: source bytes plus per-file packaging overhead plus phantoms. *)
val image_bytes : t -> int

val image_mb : t -> float

(** Source paths under a directory prefix. *)
val files_under : t -> string -> string list
