(** Indentation-aware lexer following the CPython tokenizer structure: a
    stack of indentation levels producing [Indent]/[Dedent] tokens, implicit
    line joining inside brackets, ['#'] comments, ['\']-continued lines, and
    single/double/triple-quoted strings with escapes. *)

exception Error of string * Loc.t

(** Tokenize a whole source string. The stream always ends with [Eof]; a
    [Newline] precedes it when the file does not end in one; all open
    indentation levels are closed with [Dedent]s. *)
val tokenize : file:string -> string -> (Token.t * Loc.t) list
