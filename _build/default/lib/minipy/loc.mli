(** Source positions for error reporting across lexer/parser/interpreter. *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;   (** 0-based *)
}

val make : file:string -> line:int -> col:int -> t
val dummy : t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
