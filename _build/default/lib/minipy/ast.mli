(** Abstract syntax for the minipy subset.

    The subset covers everything the λ-trim pipeline needs: module-level
    statements that build a namespace (imports, from-imports, defs, classes,
    assignments) plus enough expression/control-flow forms to write realistic
    handlers and library initialization code. *)

type binop =
  | Add | Sub | Mul | Div | FloorDiv | Mod | Pow
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | In | NotIn

type unop = Neg | Not | Pos

type const =
  | Cint of int
  | Cfloat of float
  | Cstr of string
  | Cbool of bool
  | Cnone

type expr = {
  desc : expr_desc;
  eloc : Loc.t;
}

and expr_desc =
  | Const of const
  | Name of string
  | Attr of expr * string                      (** [e.attr] *)
  | Subscript of expr * expr                   (** [e[k]] *)
  | Call of expr * expr list * (string * expr) list
      (** [f(args, kw=...)] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | ListLit of expr list
  | TupleLit of expr list
  | DictLit of (expr * expr) list
  | Lambda of string list * expr
  | IfExp of expr * expr * expr                (** [a if cond else b] *)
  | Slice of expr * expr option * expr option  (** [e[a:b]] *)
  | ListComp of comp                           (** [[elt for var in it if c]] *)
  | DictComp of dict_comp                      (** [{k: v for var in it if c}] *)

and comp = {
  celt : expr;
  cvar : target;
  citer : expr;
  ccond : expr option;
}

and dict_comp = {
  dckey : expr;
  dcval : expr;
  dcvar : target;
  dciter : expr;
  dccond : expr option;
}

and target =
  | Tname of string
  | Tattr of expr * string
  | Tsubscript of expr * expr
  | Ttuple of target list

(** Dotted module path, e.g. [["torch"; "nn"]]. *)
type dotted = string list

type param = { pname : string; pdefault : expr option }

type stmt = {
  sdesc : stmt_desc;
  sloc : Loc.t;
}

and stmt_desc =
  | Expr_stmt of expr
  | Assign of target * expr
  | AugAssign of target * binop * expr          (** [x += e] *)
  | Import of dotted * string option            (** [import a.b [as c]] *)
  | From_import of from_clause * (string * string option) list
      (** [from [.]*a.b import x [as y], z] — one entry per imported name *)
  | Def of def
  | Class of cls
  | Return of expr option
  | If of (expr * stmt list) list * stmt list   (** if/elif chain, else *)
  | While of expr * stmt list
  | For of target * expr * stmt list
  | Try of stmt list * handler list * stmt list (** try/except*/finally *)
  | Raise of expr option
  | Pass
  | Break
  | Continue
  | Global of string list
  | Del of target
  | Assert of expr * expr option

and from_clause = {
  fc_level : int;   (** leading dots: 0 absolute, 1 current package, … *)
  fc_path : dotted; (** may be empty for [from . import x] *)
}

and def = {
  dname : string;
  dparams : param list;
  dbody : stmt list;
}

and cls = {
  cname : string;
  cbases : expr list;
  cbody : stmt list;
}

and handler = {
  hexc : string option;   (** exception class name; [None] = bare except *)
  hbind : string option;  (** [except E as x] *)
  hbody : stmt list;
}

type program = stmt list

val dotted_to_string : dotted -> string

(** Smart constructors with optional locations — used by tests, generators,
    and the parser. *)

val e : ?loc:Loc.t -> expr_desc -> expr
val s : ?loc:Loc.t -> stmt_desc -> stmt

(** Structural equality ignoring locations — the round-trip property's
    notion of "same program". *)

val const_equal : const -> const -> bool
val expr_equal : expr -> expr -> bool
val exprs_equal : expr list -> expr list -> bool
val target_equal : target -> target -> bool
val stmt_equal : stmt -> stmt -> bool
val param_equal : param -> param -> bool
val handler_equal : handler -> handler -> bool
val stmts_equal : stmt list -> stmt list -> bool
val program_equal : program -> program -> bool
