(** Pretty-printer emitting valid minipy source.

    [Parser.parse (program_to_string p)] is structurally equal to [p]
    (property-tested); the debloater relies on this round-trip when writing
    rewritten modules back to the virtual filesystem. *)

val binop_str : Ast.binop -> string
val const_str : Ast.const -> string
val expr_str : ?ctx:int -> Ast.expr -> string
val target_str : Ast.target -> string

(** Canonical source text; an empty program prints as ["pass\n"]. *)
val program_to_string : Ast.program -> string

val expr_to_string : Ast.expr -> string
