(* Source positions for error reporting across the lexer/parser/interpreter. *)

type t = {
  file : string;
  line : int;  (* 1-based *)
  col : int;   (* 0-based *)
}

let make ~file ~line ~col = { file; line; col }

let dummy = { file = "<unknown>"; line = 0; col = 0 }

let pp ppf { file; line; col } = Fmt.pf ppf "%s:%d:%d" file line col

let to_string t = Fmt.str "%a" pp t
