(* Convenience access to the benchmark suite. *)

let names = List.map (fun (s : Apps.spec) -> s.Apps.name) Apps.all

let deployment_of name = Codegen.deployment (Apps.find name)

let all_deployments () = List.map Codegen.deployment Apps.all

let spec_of = Apps.find

(* A reduced, fast application used across the unit tests: one small library,
   a couple of removable heavies, tiny costs. Deterministic. *)
let tiny_app ?(name = "tinyapp") ?(attrs = 18) ?(removable_time_frac = 0.7)
    ?(removable_mem_frac = 0.6) () : Platform.Deployment.t =
  let spec =
    { Apps.name;
      origin = "Test";
      libs =
        [ Libspec.spec ~name:"tinylib" ~import_ms:100.0 ~alloc_mb:20.0
            ~image_mb:2.0 ~attrs ~needed_funcs:2 ~removable_time_frac
            ~removable_mem_frac ~heavy_subs:2 ~exec_ms:10.0 () ];
      extra_init_ms = 0.0;
      post_init_mb = 23.0;
      tests = [ ("t1", "{\"x\": 1}"); ("t2", "{\"x\": 4}") ];
      logic = [];
      paper = { Apps.p_size_mb = 2.0; p_import_s = 0.1; p_exec_s = 0.01;
                p_e2e_s = 0.5 } }
  in
  Codegen.deployment spec
