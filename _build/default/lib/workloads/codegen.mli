(** Turns an application spec into a deployable image: synthesized library
    packages plus a generated handler module in the Figure-4 shape (imports
    and app-level setup above a [handler(event, context)] entry point). *)

val handler_file : string
val handler_name : string

(** The generated handler source: imports, optional untrimmable setup cost,
    a little dead code (for the Vulture baseline), library calls, the spec's
    domain logic, SDK uploads, and a printed + returned result. *)
val handler_source : Apps.spec -> string

val deployment : Apps.spec -> Platform.Deployment.t
