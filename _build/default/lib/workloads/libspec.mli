(** Synthetic library generator.

    Synthesizes minipy package trees with the structural properties λ-trim is
    sensitive to: a root [__init__] binding many attributes (re-exports from
    a needed core, re-exports from removable heavies, filler API surface,
    constants, and a dead GPU branch referencing heavies — the static-
    analysis trap of §4), import-time cost split between needed and removable
    code, and phantom binary payloads for on-disk size. Deterministic. *)

type t = {
  l_name : string;
  l_import_ms : float;            (** inclusive import-time budget *)
  l_alloc_mb : float;             (** inclusive import-memory budget *)
  l_attrs : int;                  (** approx. root-module attribute count *)
  l_needed_funcs : int;           (** core functions the app will call *)
  l_removable_time_frac : float;  (** share of time in removable submodules *)
  l_removable_mem_frac : float;
  l_heavy_subs : int;             (** number of removable heavy submodules *)
  l_image_mb : float;             (** on-disk size (phantom blobs) *)
  l_exec_ms : float;              (** cost inside the core run_task *)
  l_uses_cloud : bool;            (** SDK-style wrapper over the intercepted
                                      cloud module *)
}

val spec :
  ?attrs:int ->
  ?needed_funcs:int ->
  ?removable_time_frac:float ->
  ?removable_mem_frac:float ->
  ?heavy_subs:int ->
  ?exec_ms:float ->
  ?uses_cloud:bool ->
  name:string ->
  import_ms:float ->
  alloc_mb:float ->
  image_mb:float ->
  unit ->
  t

(** Generated sources — exposed for tests and calibration checks. *)

val core_source : t -> string
val heavy_source : t -> index:int -> string
val api_source : t -> count:int -> string
val filler_count : t -> int
val init_source : t -> string

(** Install the package under [site-packages/] in the given filesystem. *)
val install : t -> Minipy.Vfs.t -> unit
