(** The 21 Table-1 benchmark applications as declarative specs: the paper's
    measurements plus a calibrated library mix whose removable-fraction knobs
    reproduce the per-app Figure-8 improvement shapes. *)

type paper_metrics = {
  p_size_mb : float;
  p_import_s : float;
  p_exec_s : float;
  p_e2e_s : float;
}

type spec = {
  name : string;
  origin : string;            (** FaaSLight / RainbowCake / New *)
  libs : Libspec.t list;      (** first library is primary (carries exec) *)
  extra_init_ms : float;      (** untrimmable app-level init (spacy's
                                  language-model load) *)
  post_init_mb : float;       (** calibrated footprint after init *)
  tests : (string * string) list;  (** oracle set: name, event expression *)
  logic : string list;        (** domain-specific handler lines computing a
                                  [detail] value from the event *)
  paper : paper_metrics;
}

(** All 21 applications, Table-1 order. *)
val all : spec list

(** The 8 applications shared with FaaSLight's evaluation (Table 2). *)
val faaslight_apps : string list

(** @raise Invalid_argument on unknown names. *)
val find : string -> spec
