(* Turn an application spec into a deployable image: synthesized library
   packages plus a generated handler module in the Figure-4 shape (imports
   and app-level setup above a `handler(event, context)` entry point). *)

let handler_file = "handler.py"
let handler_name = "handler"

let handler_source (spec : Apps.spec) =
  let b = Buffer.create 1024 in
  let add = Buffer.add_string b in
  if spec.Apps.extra_init_ms > 0.0 then begin
    add "import simrt\n";
    add (Printf.sprintf "simrt.cpu_ms(%.3f)\n" spec.Apps.extra_init_ms)
  end;
  List.iter
    (fun (l : Libspec.t) -> add (Printf.sprintf "import %s\n" l.Libspec.l_name))
    spec.Apps.libs;
  (* A little dead application code: something for Vulture to find. *)
  add "_debug_mode = False\n";
  add "def _unused_debug_dump(payload):\n  print(\"debug:\", payload)\n  return payload\n";
  add "def handler(event, context):\n";
  add "  acc = event.get(\"x\", 1)\n";
  List.iter
    (fun (l : Libspec.t) ->
       let n = l.Libspec.l_name in
       for i = 0 to l.Libspec.l_needed_funcs - 1 do
         add (Printf.sprintf "  acc = %s.f%d(acc)\n" n i)
       done)
    spec.Apps.libs;
  (match spec.Apps.libs with
   | primary :: _ ->
     let n = primary.Libspec.l_name in
     add (Printf.sprintf "  engine = %s.Engine(2)\n" n);
     add "  acc = engine.apply(acc)\n";
     add (Printf.sprintf "  result = %s.run_task(acc)\n" n)
   | [] -> add "  result = acc\n");
  (* domain-specific logic: computes a `detail` value from the event *)
  (match spec.Apps.logic with
   | [] -> add "  detail = None\n"
   | lines -> List.iter (fun line -> add ("  " ^ line ^ "\n")) lines);
  List.iter
    (fun (l : Libspec.t) ->
       if l.Libspec.l_uses_cloud then
         add
           (Printf.sprintf "  _ack = %s.upload(\"results/out\", str(result))\n"
              l.Libspec.l_name))
    spec.Apps.libs;
  add (Printf.sprintf "  print(\"%s result:\", result, detail)\n" spec.Apps.name);
  add "  return {\"statusCode\": 200, \"result\": result, \"detail\": detail}\n";
  Buffer.contents b

let deployment (spec : Apps.spec) : Platform.Deployment.t =
  let vfs = Minipy.Vfs.create () in
  List.iter (fun l -> Libspec.install l vfs) spec.Apps.libs;
  Minipy.Vfs.add_file vfs handler_file (handler_source spec);
  Platform.Deployment.make ~name:spec.Apps.name ~vfs ~handler_file ~handler_name
    ~test_cases:
      (List.map
         (fun (tc_name, event) -> Platform.Deployment.test_case ~name:tc_name event)
         spec.Apps.tests)
