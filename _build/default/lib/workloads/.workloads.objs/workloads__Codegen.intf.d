lib/workloads/codegen.mli: Apps Platform
