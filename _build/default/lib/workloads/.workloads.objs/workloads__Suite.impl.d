lib/workloads/suite.ml: Apps Codegen Libspec List Platform
