lib/workloads/suite.mli: Apps Platform
