lib/workloads/codegen.ml: Apps Buffer Libspec List Minipy Platform Printf
