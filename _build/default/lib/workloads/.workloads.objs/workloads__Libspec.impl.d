lib/workloads/libspec.ml: Buffer Float List Minipy Printf String
