lib/workloads/apps.ml: Libspec List Printf String
