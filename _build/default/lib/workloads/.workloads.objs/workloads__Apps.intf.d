lib/workloads/apps.mli: Libspec
