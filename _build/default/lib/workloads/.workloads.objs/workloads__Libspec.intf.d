lib/workloads/libspec.mli: Minipy
