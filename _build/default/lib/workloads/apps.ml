(* The 21 benchmark applications of Table 1, synthesized as minipy projects.

   Each entry records the paper's measurements (image size, import time,
   execution time, E2E) and a library mix whose virtual costs are calibrated
   to them. Removable-fraction knobs encode how much of each library's init
   an oracle-preserving debloater can discard — chosen to reproduce the
   per-app improvement shapes of Figure 8 / Table 2 (e.g. lightgbm and
   skimage trim heavily; ffmpeg and image-resize barely move because their
   cost sits in execution, wrapping external binaries). *)

type paper_metrics = {
  p_size_mb : float;
  p_import_s : float;
  p_exec_s : float;
  p_e2e_s : float;
}

type spec = {
  name : string;
  origin : string;                     (* FaaSLight / RainbowCake / New *)
  libs : Libspec.t list;               (* first library is primary *)
  extra_init_ms : float;               (* untrimmable app-level init (e.g.
                                          spacy's language-model load) *)
  post_init_mb : float;                (* calibrated footprint after init *)
  tests : (string * string) list;      (* oracle set: name, event expr *)
  logic : string list;                 (* domain-specific handler lines
                                          (indent level 1), computing a
                                          `detail` value from the event *)
  paper : paper_metrics;
}

let default_tests =
  [ ("t1", "{\"x\": 1}"); ("t2", "{\"x\": 5}") ]

let lib = Libspec.spec

(* Footprint calibration: distribute [post_init_mb] minus the 3 MB runtime
   floor over the libraries proportionally to their weights. *)
let alloc_share ~total_mb weights =
  let sum = List.fold_left ( +. ) 0.0 weights in
  List.map (fun w -> (total_mb -. 3.0) *. w /. sum) weights

let mk ~name ~origin ~libs ?(extra_init_ms = 0.0) ~post_init_mb
    ?(tests = default_tests) ?(logic = []) ~paper () =
  { name; origin; libs; extra_init_ms; post_init_mb; tests; logic; paper }

let paper ~size ~import ~exec ~e2e =
  { p_size_mb = size; p_import_s = import; p_exec_s = exec; p_e2e_s = e2e }

(* --- FaaSLight applications --------------------------------------------- *)

let huggingface =
  let allocs = alloc_share ~total_mb:750.0 [ 0.62; 0.38 ] in
  mk ~name:"huggingface" ~origin:"FaaSLight"
    ~libs:
      [ lib ~name:"torch" ~import_ms:3500.0
          ~alloc_mb:(List.nth allocs 0) ~image_mb:500.0 ~attrs:140
          ~needed_funcs:5 ~removable_time_frac:0.10 ~removable_mem_frac:0.03
          ~heavy_subs:4 ~exec_ms:860.0 ();
        lib ~name:"transformers" ~import_ms:2020.0
          ~alloc_mb:(List.nth allocs 1) ~image_mb:299.0 ~attrs:120
          ~needed_funcs:4 ~removable_time_frac:0.12 ~removable_mem_frac:0.03
          ~heavy_subs:5 () ]
    ~post_init_mb:750.0
    ~logic:
    [
      "prompt = event.get(\"prompt\", \"the quick fox\")";
      "scores = [(len(w) * 7 + acc) % 10 for w in prompt.split(\" \")]";
      "label = \"positive\" if sum(scores) % 2 == 0 else \"negative\"";
      "detail = {\"label\": label, \"scores\": scores}";
    ]
    ~paper:(paper ~size:799.38 ~import:5.52 ~exec:0.86 ~e2e:10.12) ()

let image_resize =
  let allocs = alloc_share ~total_mb:120.0 [ 0.5; 0.5 ] in
  mk ~name:"image-resize" ~origin:"FaaSLight"
    ~libs:
      [ lib ~name:"wand" ~import_ms:250.0 ~alloc_mb:(List.nth allocs 0)
          ~image_mb:42.0 ~attrs:50 ~needed_funcs:4 ~removable_time_frac:0.04
          ~removable_mem_frac:0.05 ~heavy_subs:2 ~exec_ms:950.0 ();
        lib ~name:"boto3" ~import_ms:170.0 ~alloc_mb:(List.nth allocs 1)
          ~image_mb:60.0 ~attrs:45 ~needed_funcs:3 ~removable_time_frac:0.04
          ~removable_mem_frac:0.04 ~heavy_subs:2 ~uses_cloud:true () ]
    ~post_init_mb:120.0
    ~logic:
    [
      "width = event.get(\"width\", 1024)";
      "height = event.get(\"height\", 768)";
      "target = event.get(\"target\", 256)";
      "scale = target / max(width, height)";
      "detail = {\"w\": int(width * scale), \"h\": int(height * scale)}";
    ]
    ~paper:(paper ~size:102.05 ~import:0.42 ~exec:0.95 ~e2e:1.88) ()

let lightgbm =
  let allocs = alloc_share ~total_mb:160.0 [ 0.7; 0.3 ] in
  mk ~name:"lightgbm" ~origin:"FaaSLight"
    ~libs:
      [ lib ~name:"lightgbm" ~import_ms:420.0 ~alloc_mb:(List.nth allocs 0)
          ~image_mb:95.0 ~attrs:45 ~needed_funcs:3 ~removable_time_frac:0.70
          ~removable_mem_frac:0.60 ~heavy_subs:4 ~exec_ms:40.0 ();
        lib ~name:"numpy" ~import_ms:150.0 ~alloc_mb:(List.nth allocs 1)
          ~image_mb:25.0 ~attrs:90 ~needed_funcs:4 ~removable_time_frac:0.25
          ~removable_mem_frac:0.25 ~heavy_subs:3 () ]
    ~post_init_mb:160.0
    ~logic:
    [
      "features = event.get(\"features\", [0.5, 1.5, 2.5])";
      "score = sum(features) / len(features)";
      "detail = {\"prediction\": 1 if score > 1.0 else 0, \"score\": score}";
    ]
    ~paper:(paper ~size:120.22 ~import:0.57 ~exec:0.04 ~e2e:1.14) ()

let lxml =
  let allocs = alloc_share ~total_mb:75.0 [ 0.6; 0.4 ] in
  mk ~name:"lxml" ~origin:"FaaSLight"
    ~libs:
      [ lib ~name:"lxml" ~import_ms:140.0 ~alloc_mb:(List.nth allocs 0)
          ~image_mb:38.0 ~attrs:40 ~needed_funcs:3 ~removable_time_frac:0.55
          ~removable_mem_frac:0.10 ~heavy_subs:3 ~exec_ms:390.0 ();
        lib ~name:"requests" ~import_ms:100.0 ~alloc_mb:(List.nth allocs 1)
          ~image_mb:20.0 ~attrs:35 ~needed_funcs:2 ~removable_time_frac:0.25
          ~removable_mem_frac:0.05 ~heavy_subs:2 () ]
    ~post_init_mb:75.0
    ~logic:
    [
      "doc = event.get(\"html\", \"<a><b></b></a>\")";
      "opens = len([c for c in doc if c == \"<\"])";
      "closers = len(doc.split(\"</\")) - 1";
      "detail = {\"tags\": opens - closers, \"closers\": closers}";
    ]
    ~paper:(paper ~size:58.01 ~import:0.24 ~exec:0.39 ~e2e:1.12) ()

let scikit =
  mk ~name:"scikit" ~origin:"FaaSLight"
    ~libs:
      [ lib ~name:"sklearn" ~import_ms:300.0 ~alloc_mb:207.0 ~image_mb:177.0
          ~attrs:70 ~needed_funcs:4 ~removable_time_frac:0.25
          ~removable_mem_frac:0.12 ~heavy_subs:4 ~exec_ms:10.0 () ]
    ~post_init_mb:210.0
    ~logic:
    [
      "point = event.get(\"point\", [1.0, 2.0])";
      "centroids = [[0.0, 0.0], [2.0, 2.0], [5.0, 1.0]]";
      "dists = [sum([(a - b) ** 2 for a, b in zip(point, c)]) for c in centroids]";
      "detail = {\"cluster\": dists.index(min(dists))}";
    ]
    ~paper:(paper ~size:177.01 ~import:0.30 ~exec:0.01 ~e2e:1.93) ()

let skimage =
  mk ~name:"skimage" ~origin:"FaaSLight"
    ~libs:
      [ lib ~name:"skimage" ~import_ms:1870.0 ~alloc_mb:177.0 ~image_mb:155.0
          ~attrs:18 ~needed_funcs:2 ~removable_time_frac:0.48
          ~removable_mem_frac:0.48 ~heavy_subs:5 ~exec_ms:100.0 () ]
    ~post_init_mb:180.0
    ~logic:
    [
      "pixels = event.get(\"pixels\", [10, 200, 30, 240, 90])";
      "threshold = sum(pixels) / len(pixels)";
      "detail = {\"above\": len([p for p in pixels if p > threshold])}";
    ]
    ~paper:(paper ~size:155.37 ~import:1.87 ~exec:0.10 ~e2e:2.76) ()

let tensorflow =
  let allocs = alloc_share ~total_mb:680.0 [ 0.85; 0.15 ] in
  mk ~name:"tensorflow" ~origin:"FaaSLight"
    ~libs:
      [ lib ~name:"tensorflow" ~import_ms:4380.0 ~alloc_mb:(List.nth allocs 0)
          ~image_mb:561.0 ~attrs:120 ~needed_funcs:5 ~removable_time_frac:0.17
          ~removable_mem_frac:0.11 ~heavy_subs:6 ~exec_ms:40.0 ();
        lib ~name:"numpy" ~import_ms:150.0 ~alloc_mb:(List.nth allocs 1)
          ~image_mb:25.0 ~attrs:90 ~needed_funcs:4 ~removable_time_frac:0.25
          ~removable_mem_frac:0.20 ~heavy_subs:3 () ]
    ~post_init_mb:680.0
    ~logic:
    [
      "logits = event.get(\"logits\", [1.0, 3.0, 2.0])";
      "best = logits.index(max(logits))";
      "detail = {\"class\": best, \"margin\": max(logits) - min(logits)}";
    ]
    ~paper:(paper ~size:586.13 ~import:4.53 ~exec:0.04 ~e2e:5.33) ()

let wine =
  let allocs = alloc_share ~total_mb:300.0 [ 0.2; 0.35; 0.3; 0.15 ] in
  mk ~name:"wine" ~origin:"FaaSLight"
    ~libs:
      [ lib ~name:"pandas" ~import_ms:700.0 ~alloc_mb:(List.nth allocs 1)
          ~image_mb:90.0 ~attrs:70 ~needed_funcs:4 ~removable_time_frac:0.18
          ~removable_mem_frac:0.15 ~heavy_subs:4 ~exec_ms:290.0 ();
        lib ~name:"numpy" ~import_ms:260.0 ~alloc_mb:(List.nth allocs 0)
          ~image_mb:25.0 ~attrs:90 ~needed_funcs:6 ~removable_time_frac:0.08
          ~removable_mem_frac:0.08 ~heavy_subs:3 ();
        lib ~name:"sklearn" ~import_ms:800.0 ~alloc_mb:(List.nth allocs 2)
          ~image_mb:100.0 ~attrs:70 ~needed_funcs:4 ~removable_time_frac:0.14
          ~removable_mem_frac:0.12 ~heavy_subs:4 ();
        lib ~name:"boto3" ~import_ms:200.0 ~alloc_mb:(List.nth allocs 3)
          ~image_mb:56.0 ~attrs:45 ~needed_funcs:2 ~removable_time_frac:0.12
          ~removable_mem_frac:0.10 ~heavy_subs:2 ~uses_cloud:true () ]
    ~post_init_mb:300.0
    ~logic:
    [
      "sample = event.get(\"sample\", [7.2, 0.3, 3.2])";
      "normalized = [round(v / 10.0, 2) for v in sample]";
      "detail = {\"grade\": \"A\" if sum(normalized) > 1.0 else \"B\", \"norm\": normalized}";
    ]
    ~paper:(paper ~size:271.01 ~import:1.96 ~exec:0.29 ~e2e:2.81) ()

(* --- RainbowCake applications ------------------------------------------- *)

let dna_visualization =
  mk ~name:"dna-visualization" ~origin:"RainbowCake"
    ~libs:
      [ lib ~name:"squiggle" ~import_ms:180.0 ~alloc_mb:67.0 ~image_mb:57.0
          ~attrs:90 ~needed_funcs:2 ~removable_time_frac:0.50
          ~removable_mem_frac:0.35 ~heavy_subs:4 ~exec_ms:20.0 () ]
    ~post_init_mb:70.0
    ~tests:
      [ ("t1", "{\"x\": 2, \"sequence\": \"ACGT\"}");
        ("t2", "{\"x\": 7, \"sequence\": \"TTGACA\"}") ]
    ~logic:
    [
      "seq = event.get(\"sequence\", \"ACGT\")";
      "heights = {\"A\": 1, \"C\": -1, \"G\": 2, \"T\": -2}";
      "walk = [heights.get(base, 0) for base in seq]";
      "detail = {\"walk\": walk, \"gc\": len([b for b in seq if b == \"G\" or b == \"C\"])}";
    ]
    ~paper:(paper ~size:57.01 ~import:0.18 ~exec:0.02 ~e2e:0.72) ()

let ffmpeg =
  mk ~name:"ffmpeg" ~origin:"RainbowCake"
    ~libs:
      [ lib ~name:"ffmpeg" ~import_ms:60.0 ~alloc_mb:87.0 ~image_mb:297.0
          ~attrs:46 ~needed_funcs:3 ~removable_time_frac:0.08
          ~removable_mem_frac:0.02 ~heavy_subs:2 ~exec_ms:2500.0 () ]
    ~post_init_mb:90.0
    ~tests:[ ("t1", "{\"x\": 3}") ]
    ~logic:
    [
      "duration = event.get(\"duration_s\", 120)";
      "segments = [min(30, duration - start) for start in range(0, duration, 30)]";
      "detail = {\"segments\": len(segments), \"last\": segments[-1] if segments else 0}";
    ]
    ~paper:(paper ~size:297.00 ~import:0.06 ~exec:2.50 ~e2e:3.07) ()

let igraph =
  mk ~name:"igraph" ~origin:"RainbowCake"
    ~libs:
      [ lib ~name:"igraph" ~import_ms:90.0 ~alloc_mb:57.0 ~image_mb:40.0
          ~attrs:60 ~needed_funcs:3 ~removable_time_frac:0.40
          ~removable_mem_frac:0.14 ~heavy_subs:3 ~exec_ms:10.0 () ]
    ~post_init_mb:60.0
    ~logic:
    [
      "edges = event.get(\"edges\", [[0, 1], [1, 2], [1, 3]])";
      "degree = {}";
      "for u, v in edges:";
      "  degree[u] = degree.get(u, 0) + 1";
      "  degree[v] = degree.get(v, 0) + 1";
      "hubs = [n for n, d in degree.items() if d > 1]";
      "detail = {\"nodes\": len(degree.keys()), \"hubs\": hubs}";
    ]
    ~paper:(paper ~size:40.00 ~import:0.09 ~exec:0.01 ~e2e:0.59) ()

let markdown =
  mk ~name:"markdown" ~origin:"RainbowCake"
    ~libs:
      [ lib ~name:"markdown" ~import_ms:40.0 ~alloc_mb:37.0 ~image_mb:32.0
          ~attrs:28 ~needed_funcs:2 ~removable_time_frac:0.35
          ~removable_mem_frac:0.09 ~heavy_subs:2 ~exec_ms:30.0 () ]
    ~post_init_mb:40.0
    ~tests:[ ("t1", "{\"x\": 1, \"text\": \"# title\"}") ]
    ~logic:
    [
      "text = event.get(\"text\", \"plain\")";
      "if text.startswith(\"# \"):";
      "  detail = \"<h1>\" + text[2:] + \"</h1>\"";
      "else:";
      "  detail = \"<p>\" + text + \"</p>\"";
    ]
    ~paper:(paper ~size:32.21 ~import:0.04 ~exec:0.03 ~e2e:0.54) ()

let resnet =
  let allocs = alloc_share ~total_mb:620.0 [ 0.15; 0.75; 0.10 ] in
  mk ~name:"resnet" ~origin:"RainbowCake"
    ~libs:
      [ lib ~name:"torch" ~import_ms:5300.0 ~alloc_mb:(List.nth allocs 1)
          ~image_mb:600.0 ~attrs:140 ~needed_funcs:3 ~removable_time_frac:0.96
          ~removable_mem_frac:0.17 ~heavy_subs:8 ~exec_ms:5300.0 ();
        lib ~name:"numpy" ~import_ms:600.0 ~alloc_mb:(List.nth allocs 0)
          ~image_mb:25.0 ~attrs:90 ~needed_funcs:3 ~removable_time_frac:0.85
          ~removable_mem_frac:0.15 ~heavy_subs:3 ();
        lib ~name:"PIL" ~import_ms:400.0 ~alloc_mb:(List.nth allocs 2)
          ~image_mb:118.0 ~attrs:50 ~needed_funcs:2 ~removable_time_frac:0.85
          ~removable_mem_frac:0.15 ~heavy_subs:3 () ]
    ~post_init_mb:620.0
    ~logic:
    [
      "channels = event.get(\"channels\", [0.1, 0.9, 0.3])";
      "top = channels.index(max(channels))";
      "detail = {\"top1\": top, \"confidence\": round(max(channels), 2)}";
    ]
    ~paper:(paper ~size:742.56 ~import:6.30 ~exec:5.30 ~e2e:11.71) ()

let textblob =
  mk ~name:"textblob" ~origin:"RainbowCake"
    ~libs:
      [ lib ~name:"nltk" ~import_ms:420.0 ~alloc_mb:127.0 ~image_mb:104.0
          ~attrs:90 ~needed_funcs:3 ~removable_time_frac:0.42
          ~removable_mem_frac:0.12 ~heavy_subs:4 ~exec_ms:380.0 () ]
    ~post_init_mb:130.0
    ~tests:[ ("t1", "{\"x\": 1, \"text\": \"good day\"}") ]
    ~logic:
    [
      "words = event.get(\"text\", \"\").lower().split(\" \")";
      "positive = [\"good\", \"great\", \"fine\"]";
      "negative = [\"bad\", \"poor\"]";
      "score = sum([1 for w in words if w in positive]) - sum([1 for w in words if w in negative])";
      "detail = {\"words\": len(words), \"sentiment\": score}";
    ]
    ~paper:(paper ~size:104.00 ~import:0.42 ~exec:0.38 ~e2e:1.28) ()

(* --- new applications (PyPI) -------------------------------------------- *)

let chdb_olap =
  mk ~name:"chdb-olap" ~origin:"New"
    ~libs:
      [ lib ~name:"chdb" ~import_ms:1010.0 ~alloc_mb:247.0 ~image_mb:293.0
          ~attrs:32 ~needed_funcs:3 ~removable_time_frac:0.32
          ~removable_mem_frac:0.07 ~heavy_subs:3 ~exec_ms:80.0 () ]
    ~post_init_mb:250.0
    ~logic:
    [
      "rows = event.get(\"rows\", [{\"region\": \"eu\", \"v\": 4}, {\"region\": \"us\", \"v\": 6}, {\"region\": \"eu\", \"v\": 2}])";
      "eu = [r[\"v\"] for r in rows if r[\"region\"] == \"eu\"]";
      "detail = {\"count\": len(eu), \"total\": sum(eu)}";
    ]
    ~paper:(paper ~size:293.64 ~import:1.01 ~exec:0.08 ~e2e:1.77) ()

let epub_pdf =
  let allocs = alloc_share ~total_mb:150.0 [ 0.35; 0.25; 0.25; 0.15 ] in
  mk ~name:"epub-pdf" ~origin:"New"
    ~libs:
      [ lib ~name:"reportlab" ~import_ms:260.0 ~alloc_mb:(List.nth allocs 0)
          ~image_mb:50.0 ~attrs:55 ~needed_funcs:3 ~removable_time_frac:0.40
          ~removable_mem_frac:0.12 ~heavy_subs:3 ~exec_ms:1430.0 ();
        lib ~name:"pptx" ~import_ms:160.0 ~alloc_mb:(List.nth allocs 1)
          ~image_mb:30.0 ~attrs:38 ~needed_funcs:2 ~removable_time_frac:0.42
          ~removable_mem_frac:0.10 ~heavy_subs:3 ();
        lib ~name:"docx" ~import_ms:120.0 ~alloc_mb:(List.nth allocs 2)
          ~image_mb:24.0 ~attrs:35 ~needed_funcs:2 ~removable_time_frac:0.35
          ~removable_mem_frac:0.08 ~heavy_subs:2 ();
        lib ~name:"boto3" ~import_ms:80.0 ~alloc_mb:(List.nth allocs 3)
          ~image_mb:40.0 ~attrs:45 ~needed_funcs:2 ~removable_time_frac:0.15
          ~removable_mem_frac:0.05 ~heavy_subs:2 ~uses_cloud:true () ]
    ~post_init_mb:150.0
    ~logic:
    [
      "chapters = event.get(\"chapters\", [\"intro\", \"body\", \"end\"])";
      "pages = [\"<page>\" + c.upper() + \"</page>\" for c in chapters]";
      "detail = {\"pages\": len(pages), \"book\": \"\".join(pages)}";
    ]
    ~paper:(paper ~size:143.68 ~import:0.62 ~exec:1.43 ~e2e:2.54) ()

let jsym =
  mk ~name:"jsym" ~origin:"New"
    ~libs:
      [ lib ~name:"sympy" ~import_ms:560.0 ~alloc_mb:107.0 ~image_mb:83.0
          ~attrs:120 ~needed_funcs:4 ~removable_time_frac:0.38
          ~removable_mem_frac:0.14 ~heavy_subs:5 ~exec_ms:310.0 () ]
    ~post_init_mb:110.0
    ~logic:
    [
      "coeffs = event.get(\"coeffs\", [1, 0, -2])";
      "x0 = event.get(\"at\", 3)";
      "value = sum([c * x0 ** (len(coeffs) - 1 - i) for i, c in enumerate(coeffs)])";
      "derivative = [c * (len(coeffs) - 1 - i) for i, c in enumerate(coeffs)][:-1]";
      "detail = {\"value\": value, \"derivative\": derivative}";
    ]
    ~paper:(paper ~size:83.01 ~import:0.56 ~exec:0.31 ~e2e:1.36) ()

let pandas_app =
  let allocs = alloc_share ~total_mb:170.0 [ 0.65; 0.35 ] in
  mk ~name:"pandas" ~origin:"New"
    ~libs:
      [ lib ~name:"pandas" ~import_ms:500.0 ~alloc_mb:(List.nth allocs 0)
          ~image_mb:90.0 ~attrs:70 ~needed_funcs:4 ~removable_time_frac:0.35
          ~removable_mem_frac:0.12 ~heavy_subs:4 ~exec_ms:10.0 ();
        lib ~name:"numpy" ~import_ms:170.0 ~alloc_mb:(List.nth allocs 1)
          ~image_mb:25.0 ~attrs:90 ~needed_funcs:4 ~removable_time_frac:0.25
          ~removable_mem_frac:0.10 ~heavy_subs:3 () ]
    ~post_init_mb:170.0
    ~logic:
    [
      "column = event.get(\"column\", [3, 1, 4, 1, 5, 9])";
      "ordered = sorted(column)";
      "detail = {\"mean\": sum(column) / len(column), \"min\": ordered[0], \"max\": ordered[-1]}";
    ]
    ~paper:(paper ~size:114.27 ~import:0.67 ~exec:0.01 ~e2e:1.19) ()

let qiskit_nature =
  mk ~name:"qiskit-nature" ~origin:"New"
    ~libs:
      [ lib ~name:"qiskit_nature" ~import_ms:1960.0 ~alloc_mb:317.0
          ~image_mb:281.0 ~attrs:49 ~needed_funcs:3 ~removable_time_frac:0.45
          ~removable_mem_frac:0.10 ~heavy_subs:4 ~exec_ms:490.0 () ]
    ~post_init_mb:320.0
    ~logic:
    [
      "bits = event.get(\"bits\", \"1011\")";
      "ones = len([b for b in bits if b == \"1\"])";
      "detail = {\"parity\": ones % 2, \"ones\": ones}";
    ]
    ~paper:(paper ~size:281.15 ~import:1.96 ~exec:0.49 ~e2e:3.05) ()

let shapely_numpy =
  let allocs = alloc_share ~total_mb:85.0 [ 0.55; 0.45 ] in
  mk ~name:"shapely-numpy" ~origin:"New"
    ~libs:
      [ lib ~name:"shapely" ~import_ms:120.0 ~alloc_mb:(List.nth allocs 0)
          ~image_mb:33.0 ~attrs:60 ~needed_funcs:3 ~removable_time_frac:0.42
          ~removable_mem_frac:0.16 ~heavy_subs:3 ~exec_ms:10.0 ();
        lib ~name:"numpy" ~import_ms:80.0 ~alloc_mb:(List.nth allocs 1)
          ~image_mb:25.0 ~attrs:90 ~needed_funcs:4 ~removable_time_frac:0.30
          ~removable_mem_frac:0.12 ~heavy_subs:3 () ]
    ~post_init_mb:85.0
    ~logic:
    [
      "points = event.get(\"points\", [[0, 0], [2, 3], [1, 5]])";
      "xs = [p[0] for p in points]";
      "ys = [p[1] for p in points]";
      "detail = {\"bbox\": [min(xs), min(ys), max(xs), max(ys)]}";
    ]
    ~paper:(paper ~size:58.42 ~import:0.20 ~exec:0.01 ~e2e:0.71) ()

let spacy =
  let allocs = alloc_share ~total_mb:400.0 [ 0.85; 0.15 ] in
  mk ~name:"spacy" ~origin:"New"
    ~libs:
      [ lib ~name:"spacy" ~import_ms:1310.0 ~alloc_mb:(List.nth allocs 0)
          ~image_mb:160.0 ~attrs:60 ~needed_funcs:3 ~removable_time_frac:0.85
          ~removable_mem_frac:0.28 ~heavy_subs:5 ~exec_ms:20.0 ();
        lib ~name:"boto3" ~import_ms:120.0 ~alloc_mb:(List.nth allocs 1)
          ~image_mb:42.0 ~attrs:45 ~needed_funcs:2 ~removable_time_frac:0.20
          ~removable_mem_frac:0.10 ~heavy_subs:2 ~uses_cloud:true () ]
    ~extra_init_ms:630.0   (* language-model load: A-TRIM cannot trim this *)
    ~post_init_mb:400.0
    ~tests:[ ("t1", "{\"x\": 2, \"text\": \"hello world\"}") ]
    ~logic:
    [
      "tokens = event.get(\"text\", \"\").split(\" \")";
      "lengths = [len(tok) for tok in tokens]";
      "detail = {\"tokens\": len(tokens), \"longest\": max(lengths) if lengths else 0}";
    ]
    ~paper:(paper ~size:202.00 ~import:2.06 ~exec:0.02 ~e2e:2.60) ()

let all : spec list =
  [ huggingface; image_resize; lightgbm; lxml; scikit; skimage; tensorflow;
    wine; dna_visualization; ffmpeg; igraph; markdown; resnet; textblob;
    chdb_olap; epub_pdf; jsym; pandas_app; qiskit_nature; shapely_numpy; spacy ]

let faaslight_apps =
  [ "huggingface"; "image-resize"; "lightgbm"; "lxml"; "scikit"; "skimage";
    "tensorflow"; "wine" ]

let find name =
  match List.find_opt (fun s -> String.equal s.name name) all with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Workloads.Apps.find: unknown app %S" name)
