(** Convenience access to the benchmark suite. *)

val names : string list
val deployment_of : string -> Platform.Deployment.t
val all_deployments : unit -> Platform.Deployment.t list
val spec_of : string -> Apps.spec

(** A reduced, fast application used across the unit tests: one small
    library, a couple of removable heavies, tiny costs. Deterministic. *)
val tiny_app :
  ?name:string ->
  ?attrs:int ->
  ?removable_time_frac:float ->
  ?removable_mem_frac:float ->
  unit ->
  Platform.Deployment.t
